// Tests for the area/gain Pareto-frontier enumeration.
#include <gtest/gtest.h>

#include "dse/pareto.hpp"
#include "select/flow.hpp"
#include "support/strings.hpp"
#include "workloads/random_workload.hpp"
#include "workloads/workloads.hpp"

namespace partita::dse {
namespace {

TEST(Pareto, FrontierIsMonotone) {
  workloads::Workload w = workloads::fig10_case();
  select::Flow flow(w.module, w.library);
  const auto frontier = pareto_frontier(flow.selector());
  ASSERT_GE(frontier.size(), 3u);
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GT(frontier[i].gain, frontier[i - 1].gain);
    EXPECT_GT(frontier[i].selection.total_area(),
              frontier[i - 1].selection.total_area());
  }
}

TEST(Pareto, EndsAtMaxFeasibleGain) {
  workloads::Workload w = workloads::fig9_case();
  select::Flow flow(w.module, w.library);
  const auto frontier = pareto_frontier(flow.selector());
  ASSERT_FALSE(frontier.empty());
  EXPECT_EQ(frontier.back().gain, flow.max_feasible_gain());
}

TEST(Pareto, FirstPointIsCheapestPositiveGain) {
  workloads::Workload w = workloads::fig9_case();
  select::Flow flow(w.module, w.library);
  const auto frontier = pareto_frontier(flow.selector());
  ASSERT_FALSE(frontier.empty());
  // The cheapest design meeting gain >= 1 costs exactly the first area.
  const select::Selection one = flow.select(1);
  ASSERT_TRUE(one.feasible);
  EXPECT_DOUBLE_EQ(frontier.front().selection.total_area(), one.total_area());
}

TEST(Pareto, EveryPointOptimalForItsGain) {
  workloads::Workload w = workloads::fig10_case();
  select::Flow flow(w.module, w.library);
  const auto frontier = pareto_frontier(flow.selector());
  for (const ParetoPoint& p : frontier) {
    const select::Selection re = flow.select(p.gain);
    ASSERT_TRUE(re.feasible);
    EXPECT_NEAR(re.total_area(), p.selection.total_area(), 1e-9) << "gain " << p.gain;
  }
}

TEST(Pareto, RespectsMaxPoints) {
  workloads::Workload w = workloads::gsm_encoder();
  select::Flow flow(w.module, w.library);
  ParetoOptions opts;
  opts.max_points = 2;
  EXPECT_LE(pareto_frontier(flow.selector(), opts).size(), 2u);
}

TEST(Pareto, MinGainSkipsCheapDesigns) {
  workloads::Workload w = workloads::fig10_case();
  select::Flow flow(w.module, w.library);
  const std::int64_t gmax = flow.max_feasible_gain();
  ParetoOptions opts;
  opts.min_gain = gmax / 2;
  const auto frontier = pareto_frontier(flow.selector(), opts);
  ASSERT_FALSE(frontier.empty());
  EXPECT_GE(frontier.front().gain, gmax / 2);
}

TEST(Pareto, GainStepSubsamplesFrontier) {
  workloads::Workload w = workloads::gsm_decoder();
  select::Flow flow(w.module, w.library);
  const std::int64_t gmax = flow.max_feasible_gain();
  ParetoOptions coarse;
  coarse.gain_step = gmax / 8;
  const auto frontier = pareto_frontier(flow.selector(), coarse);
  ASSERT_FALSE(frontier.empty());
  EXPECT_LE(frontier.size(), 12u);
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GT(frontier[i].gain, frontier[i - 1].gain);
    EXPECT_GT(frontier[i].selection.total_area(),
              frontier[i - 1].selection.total_area());
  }
  // The subsampled frontier still tops out within a step of the maximum.
  EXPECT_GE(frontier.back().gain, gmax - coarse.gain_step);
}

TEST(Pareto, RenderedTableListsAllPoints) {
  workloads::Workload w = workloads::fig9_case();
  select::Flow flow(w.module, w.library);
  const auto frontier = pareto_frontier(flow.selector());
  const std::string table = render_frontier(frontier, flow.imp_database(), w.library);
  for (const ParetoPoint& p : frontier) {
    EXPECT_NE(table.find(partita::support::with_commas(p.gain)), std::string::npos);
  }
}

class ParetoRandomProperty : public ::testing::TestWithParam<int> {};

TEST_P(ParetoRandomProperty, NoDominatedPoints) {
  workloads::RandomWorkloadParams params;
  params.call_sites = 7;
  params.ips = 5;
  workloads::Workload w =
      workloads::random_workload(params, static_cast<std::uint64_t>(GetParam()));
  select::Flow flow(w.module, w.library);
  const auto frontier = pareto_frontier(flow.selector());
  for (std::size_t a = 0; a < frontier.size(); ++a) {
    for (std::size_t b = 0; b < frontier.size(); ++b) {
      if (a == b) continue;
      const bool dominated =
          frontier[b].gain >= frontier[a].gain &&
          frontier[b].selection.total_area() <= frontier[a].selection.total_area() - 1e-9;
      EXPECT_FALSE(dominated) << "point " << a << " dominated by " << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParetoRandomProperty, ::testing::Range(0, 8));

}  // namespace
}  // namespace partita::dse

// Tests for the KL lexer and parser, including error reporting and the
// printer round-trip property.
#include <gtest/gtest.h>

#include "frontend/lexer.hpp"
#include "frontend/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verify.hpp"

namespace partita::frontend {
namespace {

using support::DiagnosticEngine;

// --- lexer ---------------------------------------------------------------------

TEST(Lexer, TokenizesBasics) {
  DiagnosticEngine diags;
  const auto toks = lex("func f { seg 42; }", diags);
  ASSERT_FALSE(diags.has_errors());
  ASSERT_EQ(toks.size(), 8u);  // func f { seg 42 ; } EOF
  EXPECT_EQ(toks[0].kind, TokKind::kIdent);
  EXPECT_EQ(toks[4].kind, TokKind::kInt);
  EXPECT_EQ(toks[4].int_value, 42);
  EXPECT_EQ(toks.back().kind, TokKind::kEof);
}

TEST(Lexer, SkipsComments) {
  DiagnosticEngine diags;
  const auto toks = lex("a # comment to end\nb", diags);
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[1].loc.line, 2u);
}

TEST(Lexer, FloatsAndNegatives) {
  DiagnosticEngine diags;
  const auto toks = lex("0.5 -3 1e4", diags);
  ASSERT_FALSE(diags.has_errors());
  EXPECT_EQ(toks[0].kind, TokKind::kFloat);
  EXPECT_DOUBLE_EQ(toks[0].float_value, 0.5);
  EXPECT_EQ(toks[1].int_value, -3);
  EXPECT_DOUBLE_EQ(toks[2].float_value, 1e4);
}

TEST(Lexer, ReportsBadCharacter) {
  DiagnosticEngine diags;
  lex("a $ b", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Lexer, TracksLineAndColumn) {
  DiagnosticEngine diags;
  const auto toks = lex("a\n  b", diags);
  EXPECT_EQ(toks[1].loc.line, 2u);
  EXPECT_EQ(toks[1].loc.column, 3u);
}

// --- parser --------------------------------------------------------------------

constexpr std::string_view kSmall = R"(
module t;
func leaf scall sw_cycles 500;
func main {
  seg warmup 10 writes(a);
  call leaf reads(a) writes(b);
  if prob 0.25 {
    seg hot 20 reads(b);
  } else {
    seg cold 5 reads(b);
  }
  loop 3 {
    seg body 7;
  }
}
)";

TEST(Parser, ParsesSmallModule) {
  DiagnosticEngine diags;
  auto m = parse_module(kSmall, diags);
  ASSERT_TRUE(m.has_value()) << diags.render_all();
  EXPECT_EQ(m->name(), "t");
  EXPECT_EQ(m->function_count(), 2u);
  EXPECT_TRUE(m->entry().valid());
  const ir::Function& leaf = m->function(m->find_function("leaf"));
  EXPECT_TRUE(leaf.ip_mappable());
  EXPECT_EQ(leaf.declared_sw_cycles(), 500);

  support::DiagnosticEngine vd;
  EXPECT_TRUE(ir::verify_module(*m, vd)) << vd.render_all();
}

TEST(Parser, StatementDetails) {
  DiagnosticEngine diags;
  auto m = parse_module(kSmall, diags);
  ASSERT_TRUE(m);
  const ir::Function& main_fn = m->function(m->entry());
  ASSERT_EQ(main_fn.body().size(), 4u);
  const ir::Stmt& seg = main_fn.stmt(main_fn.body()[0]);
  EXPECT_EQ(seg.kind, ir::StmtKind::kSeg);
  EXPECT_EQ(seg.label, "warmup");
  EXPECT_EQ(seg.cycles, 10);
  ASSERT_EQ(seg.writes.size(), 1u);
  const ir::Stmt& iff = main_fn.stmt(main_fn.body()[2]);
  EXPECT_EQ(iff.kind, ir::StmtKind::kIf);
  EXPECT_DOUBLE_EQ(iff.taken_prob, 0.25);
  EXPECT_EQ(iff.then_stmts.size(), 1u);
  EXPECT_EQ(iff.else_stmts.size(), 1u);
  const ir::Stmt& loop = main_fn.stmt(main_fn.body()[3]);
  EXPECT_EQ(loop.trip_count, 3);
}

TEST(Parser, ForwardReferences) {
  DiagnosticEngine diags;
  auto m = parse_module(R"(
module t;
func main { call later; }
func later scall sw_cycles 9;
)",
                        diags);
  ASSERT_TRUE(m.has_value()) << diags.render_all();
  EXPECT_EQ(m->call_sites().size(), 1u);
}

TEST(Parser, ExplicitEntryDirective) {
  DiagnosticEngine diags;
  auto m = parse_module(R"(
module t;
func start { seg 1; }
entry start;
)",
                        diags);
  ASSERT_TRUE(m.has_value()) << diags.render_all();
  EXPECT_EQ(m->function(m->entry()).name(), "start");
}

TEST(Parser, ErrorOnUnknownCallee) {
  DiagnosticEngine diags;
  EXPECT_FALSE(parse_module("module t; func main { call ghost; }", diags).has_value());
  EXPECT_NE(diags.render_all().find("ghost"), std::string::npos);
}

TEST(Parser, ErrorOnDuplicateFunction) {
  DiagnosticEngine diags;
  EXPECT_FALSE(
      parse_module("module t; func f { seg 1; } func f { seg 2; }", diags).has_value());
}

TEST(Parser, ErrorOnMissingEntry) {
  DiagnosticEngine diags;
  EXPECT_FALSE(parse_module("module t; func not_main { seg 1; }", diags).has_value());
}

TEST(Parser, ErrorOnBadProbability) {
  DiagnosticEngine diags;
  EXPECT_FALSE(
      parse_module("module t; func main { if prob 1.5 { seg 1; } }", diags).has_value());
}

TEST(Parser, ErrorOnZeroTripLoop) {
  DiagnosticEngine diags;
  EXPECT_FALSE(parse_module("module t; func main { loop 0 { seg 1; } }", diags).has_value());
}

TEST(Parser, ErrorOnUnterminatedBlock) {
  DiagnosticEngine diags;
  EXPECT_FALSE(parse_module("module t; func main { seg 1;", diags).has_value());
}

// --- round-trip property ---------------------------------------------------------

TEST(Parser, PrintParseRoundTrip) {
  DiagnosticEngine diags;
  auto m1 = parse_module(kSmall, diags);
  ASSERT_TRUE(m1);
  const std::string printed1 = ir::print_module(*m1);
  auto m2 = parse_module(printed1, diags);
  ASSERT_TRUE(m2.has_value()) << diags.render_all() << "\n" << printed1;
  const std::string printed2 = ir::print_module(*m2);
  EXPECT_EQ(printed1, printed2);
}

}  // namespace
}  // namespace partita::frontend

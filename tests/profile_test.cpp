// Tests for the expected-value profiler and the Monte-Carlo sample executor,
// including the convergence property between the two.
#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "profile/interpreter.hpp"
#include "profile/profile.hpp"

namespace partita::profile {
namespace {

ir::Module parse(std::string_view kl) {
  support::DiagnosticEngine diags;
  auto m = frontend::parse_module(kl, diags);
  EXPECT_TRUE(m.has_value()) << diags.render_all();
  return std::move(*m);
}

TEST(Profile, StraightLineCycles) {
  const ir::Module m = parse("module t; func main { seg a 10; seg b 32; }");
  const ModuleProfile p = profile_module(m);
  EXPECT_EQ(p.total_cycles, 42);
}

TEST(Profile, LoopMultipliesCycles) {
  const ir::Module m = parse("module t; func main { loop 6 { seg a 10; } }");
  EXPECT_EQ(profile_module(m).total_cycles, 60);
}

TEST(Profile, BranchesAreProbabilityWeighted) {
  const ir::Module m = parse(R"(
module t;
func main { if prob 0.25 { seg a 100; } else { seg b 20; } }
)");
  EXPECT_EQ(profile_module(m).total_cycles, 40);  // 0.25*100 + 0.75*20
}

TEST(Profile, DeclaredLeafCyclesUsed) {
  const ir::Module m = parse(R"(
module t;
func leaf scall sw_cycles 777;
func main { call leaf; }
)");
  const ModuleProfile p = profile_module(m);
  EXPECT_EQ(p.total_cycles, 777);
  EXPECT_EQ(p.cycles_of(m.find_function("leaf")), 777);
}

TEST(Profile, BodiedFunctionComputedBottomUp) {
  const ir::Module m = parse(R"(
module t;
func inner scall sw_cycles 100;
func mid scall { loop 3 { call inner; } seg glue 50; }
func main { call mid; call mid; }
)");
  const ModuleProfile p = profile_module(m);
  EXPECT_EQ(p.cycles_of(m.find_function("mid")), 350);
  EXPECT_EQ(p.total_cycles, 700);
}

TEST(Profile, CallSiteFrequencies) {
  const ir::Module m = parse(R"(
module t;
func leaf scall sw_cycles 10;
func main {
  call leaf;
  loop 4 { call leaf; }
  if prob 0.5 { call leaf; }
}
)");
  const ModuleProfile p = profile_module(m);
  ASSERT_EQ(p.call_site_frequency.size(), 3u);
  EXPECT_DOUBLE_EQ(p.call_site_frequency[0], 1.0);
  EXPECT_DOUBLE_EQ(p.call_site_frequency[1], 4.0);
  EXPECT_DOUBLE_EQ(p.call_site_frequency[2], 0.5);
  EXPECT_DOUBLE_EQ(p.function_frequency[m.find_function("leaf").value()], 5.5);
}

TEST(Profile, NestedCallSiteFrequencies) {
  const ir::Module m = parse(R"(
module t;
func inner scall sw_cycles 10;
func mid { loop 8 { call inner; } }
func main { loop 2 { call mid; } }
)");
  const ModuleProfile p = profile_module(m);
  // inner's site: 2 * 8 executions per run.
  bool found = false;
  for (const ir::CallSite& cs : m.call_sites()) {
    if (m.function(cs.callee).name() == "inner") {
      EXPECT_DOUBLE_EQ(p.frequency_of(cs.id), 16.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// --- interpreter -------------------------------------------------------------------

TEST(Interpreter, DeterministicWithoutBranches) {
  const ir::Module m = parse(R"(
module t;
func leaf scall sw_cycles 5;
func main { seg a 10; loop 3 { call leaf; } }
)");
  support::Rng rng(1);
  const SampleRun run = sample_execute(m, rng);
  EXPECT_EQ(run.cycles, 25);
  EXPECT_EQ(run.call_site_executions[0], 3);
}

TEST(Interpreter, DegenerateBranchProbabilities) {
  const ir::Module m = parse(R"(
module t;
func main { if prob 1.0 { seg a 100; } else { seg b 7; } }
)");
  support::Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(sample_execute(m, rng).cycles, 100);
  }
}

// Property: Monte-Carlo averages converge to the analytic expectation.
class ProfileConvergence : public ::testing::TestWithParam<int> {};

TEST_P(ProfileConvergence, SampleAverageMatchesExpectation) {
  const ir::Module m = parse(R"(
module t;
func leaf scall sw_cycles 50;
func main {
  seg a 10;
  if prob 0.3 { seg hot 200; call leaf; } else { seg cold 40; }
  loop 5 { if prob 0.5 { seg x 10; } else { seg y 30; } }
}
)");
  const ModuleProfile expected = profile_module(m);
  support::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const SampleRun avg = sample_execute_average(m, rng, 4000);
  EXPECT_NEAR(static_cast<double>(avg.cycles), static_cast<double>(expected.total_cycles),
              0.03 * static_cast<double>(expected.total_cycles));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfileConvergence, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace partita::profile

// Tests for hardware in/out-controller FSM synthesis (types 2/3).
#include <gtest/gtest.h>

#include "iface/fsm.hpp"
#include "iface/model.hpp"

namespace partita::iface {
namespace {

iplib::IpDescriptor make_ip(int in_rate = 4, int out_rate = 4, std::int64_t n_in = 64,
                            std::int64_t n_out = 64) {
  iplib::IpDescriptor ip;
  ip.name = "T";
  ip.area = 10;
  ip.in_rate = in_rate;
  ip.out_rate = out_rate;
  ip.latency = 16;
  ip.functions.push_back({"f", 5000, n_in, n_out});
  return ip;
}

TEST(Fsm, SynthesizesStatesPerTemplateLine) {
  const KernelParams k;
  const iplib::IpDescriptor ip = make_ip();
  const InterfaceProgram prog = expand_template(InterfaceType::kType2, ip, ip.functions[0], k);
  const ControllerFsm fsm = ControllerFsm::synthesize(prog);
  // One state per line of every section.
  std::size_t lines = 0;
  for (const IfSection& s : prog.sections) lines += s.body.size();
  EXPECT_EQ(fsm.states().size(), lines);
  EXPECT_GT(fsm.counter_count(), 0u);  // counted DMA loops
}

TEST(Fsm, SimulationMatchesTemplateCycles) {
  const KernelParams k;
  for (InterfaceType type : {InterfaceType::kType2, InterfaceType::kType3}) {
    for (const auto& [in_rate, out_rate] : std::vector<std::pair<int, int>>{
             {4, 4}, {2, 4}, {1, 2}, {1, 1}}) {
      const iplib::IpDescriptor ip = make_ip(in_rate, out_rate);
      const InterfaceProgram prog = expand_template(type, ip, ip.functions[0], k);
      const ControllerFsm fsm = ControllerFsm::synthesize(prog);
      EXPECT_EQ(fsm.simulate(), prog.execution_cycles())
          << to_string(type) << " rates " << in_rate << '/' << out_rate;
    }
  }
}

TEST(Fsm, SingleBatchHasNoLoops) {
  const KernelParams k;
  const iplib::IpDescriptor ip = make_ip(4, 4, /*n_in=*/2, /*n_out=*/2);
  const InterfaceProgram prog = expand_template(InterfaceType::kType3, ip, ip.functions[0], k);
  const ControllerFsm fsm = ControllerFsm::synthesize(prog);
  EXPECT_EQ(fsm.counter_count(), 0u);  // one batch per direction: no back edges
  EXPECT_EQ(fsm.simulate(), prog.execution_cycles());
}

TEST(Fsm, AreaScalesWithStates) {
  const KernelParams k;
  const iplib::IpDescriptor small = make_ip(1, 1);
  const iplib::IpDescriptor big = make_ip(8, 8);  // padded strobe bodies
  const auto fsm_small = ControllerFsm::synthesize(
      expand_template(InterfaceType::kType2, small, small.functions[0], k));
  const auto fsm_big = ControllerFsm::synthesize(
      expand_template(InterfaceType::kType2, big, big.functions[0], k));
  EXPECT_GT(fsm_big.estimated_area(), fsm_small.estimated_area());
}

TEST(Fsm, DumpListsStates) {
  const KernelParams k;
  const iplib::IpDescriptor ip = make_ip();
  const auto fsm = ControllerFsm::synthesize(
      expand_template(InterfaceType::kType2, ip, ip.functions[0], k));
  const std::string d = fsm.dump();
  EXPECT_NE(d.find("dma_in"), std::string::npos);
  EXPECT_NE(d.find("loop ->"), std::string::npos);
}

}  // namespace
}  // namespace partita::iface

// Tests for C-instruction candidate mining and the knapsack planner.
#include <gtest/gtest.h>

#include "cinst/cinst.hpp"
#include "frontend/parser.hpp"
#include "ir/lower.hpp"
#include "profile/profile.hpp"

namespace partita::cinst {
namespace {

struct Fixture {
  ir::Module module;
  ir::LoweredModule lowered;
  profile::ModuleProfile prof;

  explicit Fixture(std::string_view kl) {
    support::DiagnosticEngine diags;
    auto m = frontend::parse_module(kl, diags);
    EXPECT_TRUE(m.has_value()) << diags.render_all();
    module = std::move(*m);
    lowered = ir::lower_module(module);
    prof = profile::profile_module(module);
  }
};

TEST(Mine, FindsRepeatingPatterns) {
  // A 40-cycle segment cycles through the 4-phase lowering pattern ten
  // times: plenty of repeated windows.
  Fixture f("module t; func main { seg hot 40 writes(x); }");
  const auto cands = mine_candidates(f.module, f.lowered, f.prof);
  ASSERT_FALSE(cands.empty());
  for (const Candidate& c : cands) {
    EXPECT_GE(c.length(), 2);
    EXPECT_LE(c.length(), 6);
    EXPECT_GE(c.static_occurrences, 2);
    EXPECT_GT(c.fetch_cycles_saved(), 0.0);
  }
}

TEST(Mine, WeighsByFunctionFrequency) {
  Fixture hot(R"(
module t;
func work { seg body 40 writes(x); }
func main { loop 50 { call work; } }
)");
  Fixture cold(R"(
module t;
func work { seg body 40 writes(x); }
func main { call work; }
)");
  const auto c_hot = mine_candidates(hot.module, hot.lowered, hot.prof);
  const auto c_cold = mine_candidates(cold.module, cold.lowered, cold.prof);
  ASSERT_FALSE(c_hot.empty());
  ASSERT_FALSE(c_cold.empty());
  EXPECT_GT(c_hot.front().dynamic_occurrences, c_cold.front().dynamic_occurrences * 10);
}

TEST(Mine, ControlOpsBreakWindows) {
  // A function whose straight-line runs are all length 1 (call after every
  // segment cycle) yields no candidates.
  Fixture f(R"(
module t;
func leaf sw_cycles 10;
func main {
  seg a 1 writes(x);
  call leaf;
  seg b 1 reads(x);
  call leaf;
  seg c 1 reads(x);
}
)");
  MineOptions opts;
  opts.min_length = 4;  // single-cycle patterns emit at most 4 MOPs
  const auto cands = mine_candidates(f.module, f.lowered, f.prof, opts);
  // Runs are too short for length-4 windows spanning statement boundaries
  // broken by calls.
  for (const Candidate& c : cands) {
    EXPECT_LE(c.length() * c.static_occurrences, 12);
  }
}

TEST(Mine, RespectsCandidateCap) {
  Fixture f("module t; func main { seg hot 100 writes(x); }");
  MineOptions opts;
  opts.max_candidates = 3;
  EXPECT_LE(mine_candidates(f.module, f.lowered, f.prof, opts).size(), 3u);
}

TEST(Mine, DeterministicOrdering) {
  Fixture f("module t; func main { seg hot 60 writes(x); }");
  const auto a = mine_candidates(f.module, f.lowered, f.prof);
  const auto b = mine_candidates(f.module, f.lowered, f.prof);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].pattern, b[i].pattern);
}

// --- planner ------------------------------------------------------------------

Candidate make_candidate(int len, std::int64_t stat, double dyn) {
  Candidate c;
  for (int i = 0; i < len; ++i) c.pattern.push_back(ir::MopKind::kAdd);
  c.pattern[0] = static_cast<ir::MopKind>(len % 8);  // make patterns distinct
  c.static_occurrences = stat;
  c.dynamic_occurrences = dyn;
  return c;
}

TEST(Plan, EmptyInputEmptyPlan) {
  const CInstPlan plan = plan_cinstructions({});
  EXPECT_TRUE(plan.chosen.empty());
  EXPECT_EQ(plan.urom_words, 0);
}

TEST(Plan, RespectsUromBudget) {
  std::vector<Candidate> cands = {make_candidate(6, 10, 100), make_candidate(5, 10, 90),
                                  make_candidate(4, 10, 80)};
  PlanOptions opts;
  opts.urom_word_budget = 9;  // fits 5+4 or 6 alone
  const CInstPlan plan = plan_cinstructions(cands, opts);
  EXPECT_LE(plan.urom_words, 9);
  EXPECT_DOUBLE_EQ(plan.fetch_cycles_saved, 90 * 4 + 80 * 3);  // 5+4 beats 6
}

TEST(Plan, RespectsCountCap) {
  std::vector<Candidate> cands;
  for (int i = 0; i < 6; ++i) cands.push_back(make_candidate(2 + (i % 3), 5, 50 + i));
  PlanOptions opts;
  opts.max_cinstructions = 2;
  const CInstPlan plan = plan_cinstructions(cands, opts);
  EXPECT_LE(plan.chosen.size(), 2u);
}

TEST(Plan, PicksOptimalSubset) {
  // Knapsack: budget 6; items (words, value): (4, 10), (3, 7), (3, 7).
  // Optimal = the two 3-word items (14) not the 4-word item.
  std::vector<Candidate> cands = {make_candidate(4, 5, 10.0 / 3.0),
                                  make_candidate(3, 5, 3.5), make_candidate(3, 5, 3.5)};
  // fetch savings: len-1 multiplier -> (4-1)*10/3 = 10, (3-1)*3.5 = 7 each.
  PlanOptions opts;
  opts.urom_word_budget = 6;
  const CInstPlan plan = plan_cinstructions(cands, opts);
  EXPECT_EQ(plan.chosen.size(), 2u);
  EXPECT_NEAR(plan.fetch_cycles_saved, 14.0, 1e-9);
}

TEST(Plan, NameIsStable) {
  Candidate c;
  c.pattern = {ir::MopKind::kLoad, ir::MopKind::kMac};
  EXPECT_EQ(c.name(), "c_load_mac");
}

}  // namespace
}  // namespace partita::cinst

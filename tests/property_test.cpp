// Cross-module property tests on randomized inputs: LP relaxation bounds,
// path-probability algebra, print/parse round-trips, Huffman optimality
// bounds, and per-path selection behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "cdfg/paths.hpp"
#include "frontend/parser.hpp"
#include "ilp/branch_bound.hpp"
#include "ilp/simplex.hpp"
#include "ir/printer.hpp"
#include "profile/profile.hpp"
#include "select/flow.hpp"
#include "ucode/isa.hpp"
#include "workloads/random_workload.hpp"

namespace partita {
namespace {

// --- LP / ILP algebraic properties -------------------------------------------

ilp::Model random_binary_model(std::mt19937& rng, int n, int rows) {
  std::uniform_int_distribution<int> coef(1, 15);
  ilp::Model m;
  m.set_sense(ilp::Sense::kMaximize);
  for (int j = 0; j < n; ++j) m.add_binary("x" + std::to_string(j), coef(rng));
  for (int r = 0; r < rows; ++r) {
    std::vector<ilp::Term> terms;
    double total = 0;
    for (int j = 0; j < n; ++j) {
      if (rng() % 2) {
        const double c = coef(rng);
        terms.push_back({static_cast<ilp::VarIndex>(j), c});
        total += c;
      }
    }
    if (terms.empty()) continue;
    m.add_row("r" + std::to_string(r), std::move(terms), ilp::RowSense::kLessEqual,
              std::floor(total * 0.6));
  }
  return m;
}

class LpBoundProperty : public ::testing::TestWithParam<int> {};

TEST_P(LpBoundProperty, RelaxationBoundsInteger) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  const ilp::Model m = random_binary_model(rng, 8, 4);
  const ilp::LpResult lp = ilp::solve_lp(m);
  const ilp::IlpResult ip = ilp::solve_ilp(m);
  ASSERT_EQ(lp.status, ilp::LpStatus::kOptimal);
  ASSERT_EQ(ip.status, ilp::IlpStatus::kOptimal);
  // Maximize: the relaxation is an upper bound.
  EXPECT_GE(lp.objective + 1e-6, ip.objective);
}

TEST_P(LpBoundProperty, RedundantRowDoesNotChangeOptimum) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) + 1000);
  ilp::Model m = random_binary_model(rng, 7, 3);
  const ilp::IlpResult before = ilp::solve_ilp(m);
  // sum of all vars <= n is implied by the binaries.
  std::vector<ilp::Term> all;
  for (std::size_t j = 0; j < m.var_count(); ++j) {
    all.push_back({static_cast<ilp::VarIndex>(j), 1.0});
  }
  m.add_row("redundant", std::move(all), ilp::RowSense::kLessEqual,
            static_cast<double>(m.var_count()));
  const ilp::IlpResult after = ilp::solve_ilp(m);
  ASSERT_EQ(before.status, after.status);
  if (before.has_solution) {
    EXPECT_NEAR(before.objective, after.objective, 1e-6);
  }
}

TEST_P(LpBoundProperty, ObjectiveScalingScalesOptimum) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) + 2000);
  ilp::Model m = random_binary_model(rng, 6, 3);
  const ilp::IlpResult base = ilp::solve_ilp(m);
  for (std::size_t j = 0; j < m.var_count(); ++j) {
    m.var(static_cast<ilp::VarIndex>(j)).objective *= 3.0;
  }
  const ilp::IlpResult scaled = ilp::solve_ilp(m);
  ASSERT_TRUE(base.has_solution && scaled.has_solution);
  EXPECT_NEAR(scaled.objective, 3.0 * base.objective, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpBoundProperty, ::testing::Range(0, 15));

// --- path algebra on random workloads -----------------------------------------

class PathProperty : public ::testing::TestWithParam<int> {};

TEST_P(PathProperty, ProbabilitiesPartitionToOne) {
  workloads::RandomWorkloadParams p;
  workloads::Workload w =
      workloads::random_workload(p, static_cast<std::uint64_t>(GetParam()));
  cdfg::Cdfg g(w.module, w.module.function(w.module.entry()));
  const auto paths = cdfg::enumerate_paths(g);
  double total = 0;
  for (const cdfg::ExecPath& path : paths) total += path.probability;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(PathProperty, EveryNodeOnSomePath) {
  workloads::RandomWorkloadParams p;
  workloads::Workload w =
      workloads::random_workload(p, static_cast<std::uint64_t>(GetParam()) + 100);
  cdfg::Cdfg g(w.module, w.module.function(w.module.entry()));
  const auto paths = cdfg::enumerate_paths(g);
  for (cdfg::NodeIndex n = 0; n < g.node_count(); ++n) {
    bool covered = false;
    for (const cdfg::ExecPath& path : paths) covered |= path.contains(n);
    EXPECT_TRUE(covered) << "node " << n;
  }
}

TEST_P(PathProperty, ExpectedPathCyclesMatchProfile) {
  // E[path software cycles] over path probabilities == the analytic profile
  // of the entry function (call nodes annotated with callee cycles).
  workloads::RandomWorkloadParams p;
  workloads::Workload w =
      workloads::random_workload(p, static_cast<std::uint64_t>(GetParam()) + 200);
  const profile::ModuleProfile prof = profile::profile_module(w.module);
  cdfg::Cdfg g(w.module, w.module.function(w.module.entry()));
  g.annotate_call_cycles([&](ir::FuncId f) { return prof.cycles_of(f); });
  const auto paths = cdfg::enumerate_paths(g);
  double expected = 0;
  for (const cdfg::ExecPath& path : paths) {
    expected += path.probability * static_cast<double>(path.software_cycles(g));
  }
  // The profiler rounds per-if; allow proportional slack.
  EXPECT_NEAR(expected, static_cast<double>(prof.total_cycles),
              2.0 + 0.01 * expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathProperty, ::testing::Range(0, 12));

// --- frontend round-trip on random workloads ------------------------------------

class RoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripProperty, PrintParsePrintFixpoint) {
  workloads::RandomWorkloadParams p;
  workloads::Workload w =
      workloads::random_workload(p, static_cast<std::uint64_t>(GetParam()) + 500);
  const std::string printed1 = ir::print_module(w.module);
  support::DiagnosticEngine diags;
  auto reparsed = frontend::parse_module(printed1, diags);
  ASSERT_TRUE(reparsed.has_value()) << diags.render_all() << printed1;
  EXPECT_EQ(ir::print_module(*reparsed), printed1);
  // Semantics preserved: identical profile.
  EXPECT_EQ(profile::profile_module(*reparsed).total_cycles,
            profile::profile_module(w.module).total_cycles);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripProperty, ::testing::Range(0, 10));

// --- Huffman optimality bounds ---------------------------------------------------

class HuffmanProperty : public ::testing::TestWithParam<int> {};

TEST_P(HuffmanProperty, ExpectedBitsWithinEntropyPlusOne) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::uniform_real_distribution<double> freq(0.5, 500.0);
  ucode::InstructionSet isa;
  const int n = 3 + static_cast<int>(rng() % 20);
  double total = 0;
  std::vector<double> f(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    f[static_cast<std::size_t>(i)] = freq(rng);
    total += f[static_cast<std::size_t>(i)];
    ucode::Instruction instr;
    instr.name = "i" + std::to_string(i);
    instr.frequency = f[static_cast<std::size_t>(i)];
    isa.add(instr);
  }
  isa.encode();
  ASSERT_TRUE(isa.codes_are_prefix_free());
  double entropy = 0;
  for (double w : f) {
    const double q = w / total;
    entropy -= q * std::log2(q);
  }
  const double expected = isa.expected_opcode_bits();
  EXPECT_GE(expected + 1e-9, entropy);
  EXPECT_LE(expected, entropy + 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HuffmanProperty, ::testing::Range(0, 20));

// --- per-path required gains ------------------------------------------------------

TEST(PerPathSelection, DifferentRequirementsPerPath) {
  workloads::Workload w = workloads::fig10_case();
  select::Flow flow(w.module, w.library);
  ASSERT_EQ(flow.paths().size(), 2u);

  // Demand a lot on one path and nothing on the other; then swap. Both must
  // be cheaper (or equal) than demanding the max on both.
  const std::int64_t gmax = flow.max_feasible_gain();
  const select::Selection both = flow.selector().select_per_path({gmax, gmax});
  ASSERT_TRUE(both.feasible);
  for (std::size_t p = 0; p < 2; ++p) {
    std::vector<std::int64_t> rgs{0, 0};
    rgs[p] = gmax / 2;
    const select::Selection one = flow.selector().select_per_path(rgs);
    ASSERT_TRUE(one.feasible);
    EXPECT_LE(one.total_area(), both.total_area() + 1e-9);
    EXPECT_GE(select::path_gain(one.chosen, flow.imp_database(), flow.entry_cdfg(),
                                flow.paths()[p]),
              rgs[p]);
  }
}

}  // namespace
}  // namespace partita

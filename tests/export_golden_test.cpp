// Golden-file regression tests for the JSON selection export.
//
// Each case runs a fixed workload at a fixed required gain (single-threaded,
// so the canonical tie-break makes the selection bit-stable) and compares
// the full JSON document against tests/golden/*.json. The only scrubbed
// field is solver.peak_arena_bytes, which tracks allocator behavior rather
// than solver decisions. Regenerate after an intentional schema change with:
//
//   ./export_golden_test --update-golden
//
// The degraded case arms the "ilp.deadline" fault site so the degradation
// object (rung / termination / detail) and the truncated SolverStats are
// covered without real wall-clock pressure.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>

#include "select/export.hpp"
#include "select/flow.hpp"
#include "support/fault_injection.hpp"
#include "workloads/workloads.hpp"

namespace partita {

// Set from main(); not in the anonymous namespace so main can reach it.
bool g_update_golden = false;

namespace {

std::string golden_path(const std::string& name) {
  return std::string(PARTITA_TEST_SOURCE_DIR) + "/golden/" + name + ".json";
}

std::string scrub(std::string json) {
  static const std::regex arena("\"peak_arena_bytes\": \\d+");
  return std::regex_replace(json, arena, "\"peak_arena_bytes\": 0");
}

void check_golden(const std::string& name, const std::string& raw_json) {
  const std::string json = scrub(raw_json);
  const std::string path = golden_path(name);
  if (g_update_golden) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << json;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " -- run ./export_golden_test --update-golden";
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(json, buf.str())
      << "export JSON drifted from " << path
      << "; if intentional, regenerate with --update-golden";
}

std::string select_json(workloads::Workload (*make)(), std::int64_t rg_num,
                        std::int64_t rg_den) {
  const workloads::Workload w = make();
  const select::Flow flow(w.module, w.library);
  select::SelectOptions opt;  // threads = 1: canonical, thread-independent
  const std::int64_t rg = rg_den ? flow.max_feasible_gain(opt) * rg_num / rg_den
                                 : rg_num;
  const select::Selection sel = flow.select(rg, opt);
  return select::to_json(sel, flow.imp_database(), w.library, rg);
}

TEST(ExportGolden, GsmDecoderHalfGain) {
  check_golden("gsm_decoder_half_gain", select_json(workloads::gsm_decoder, 1, 2));
}

TEST(ExportGolden, Fig9ProblemTwoOptimum) {
  check_golden("fig9_rg12000", select_json(workloads::fig9_case, 12000, 0));
}

TEST(ExportGolden, JpegEncoderHierarchy) {
  check_golden("jpeg_encoder_half_gain", select_json(workloads::jpeg_encoder, 1, 2));
}

TEST(ExportGolden, InfeasibleSelection) {
  check_golden("fig9_infeasible",
               select_json(workloads::fig9_case, 1'000'000'000'000, 0));
}

TEST(ExportGolden, DegradedDeadlineFallback) {
  // The armed deadline trips at the first wave boundary: the ILP truncates,
  // the greedy rung answers, and the export must carry the degradation
  // object plus truncated solver stats.
  support::ScopedFault fault("ilp.deadline");
  check_golden("gsm_encoder_degraded",
               select_json(workloads::gsm_encoder, 1000, 0));
}

}  // namespace
}  // namespace partita

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") partita::g_update_golden = true;
  }
  return RUN_ALL_TESTS();
}

// SolveService request lifecycle: differential equivalence against one-shot
// solves, admission control (queue depth + aggregate memory), queued and
// mid-solve cancellation, transient-fault retry on a FakeClock, permanent
// failure with a replayable quarantine fixture, and graceful drain. Every
// test is deterministic: queues fill while the pool is parked
// (start_paused), timing runs on fake clocks, and faults are injected.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "oracle/fixture.hpp"
#include "select/flow.hpp"
#include "service/journal.hpp"
#include "service/solve_service.hpp"
#include "support/clock.hpp"
#include "support/fault_injection.hpp"
#include "workloads/random_workload.hpp"
#include "workloads/workloads.hpp"

namespace partita {
namespace {

service::SolveRequest builtin_request(workloads::Workload w) {
  service::SolveRequest req;
  req.workload = std::move(w);
  return req;
}

// --- differential: a service solve is bit-identical to a one-shot solve ---------

TEST(SolveServiceDifferential, MatchesOneShotSelectionOnEveryBuiltin) {
  const std::vector<workloads::Workload> workloads = {
      workloads::gsm_encoder(), workloads::gsm_decoder(),
      workloads::jpeg_encoder(), workloads::fig9_case(),
      workloads::fig10_case(),  workloads::adpcm_codec()};

  service::ServiceConfig cfg;
  cfg.workers = 3;
  service::SolveService svc(cfg);

  std::vector<std::uint64_t> tickets;
  for (const workloads::Workload& w : workloads) {
    tickets.push_back(svc.submit(builtin_request(w)));
  }
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const service::SolveResponse r = svc.wait(tickets[i]);
    ASSERT_EQ(r.state, service::RequestState::kCompleted)
        << workloads[i].name << ": " << r.error.render();
    EXPECT_EQ(r.attempts, 1);

    // One-shot reference under the same (default) options and the same
    // derived required gain.
    const auto flow =
        select::Flow::create(workloads[i].module, workloads[i].library);
    ASSERT_TRUE(flow.ok());
    const std::int64_t rg = flow.value()->max_feasible_gain() / 2;
    const select::Selection ref = flow.value()->select(rg);

    EXPECT_EQ(r.selection.feasible, ref.feasible) << workloads[i].name;
    EXPECT_EQ(r.selection.chosen, ref.chosen) << workloads[i].name;
    EXPECT_DOUBLE_EQ(r.selection.total_area(), ref.total_area())
        << workloads[i].name;
    EXPECT_EQ(r.selection.min_path_gain, ref.min_path_gain) << workloads[i].name;
    EXPECT_EQ(r.selection.rung, ref.rung) << workloads[i].name;
  }
}

TEST(SolveServiceDifferential, ConcurrentIdenticalRequestsAgreeExactly) {
  service::ServiceConfig cfg;
  cfg.workers = 4;
  service::SolveService svc(cfg);

  constexpr int kCopies = 8;
  std::vector<std::uint64_t> tickets;
  for (int i = 0; i < kCopies; ++i) {
    tickets.push_back(svc.submit(builtin_request(workloads::gsm_encoder())));
  }
  const service::SolveResponse first = svc.wait(tickets[0]);
  ASSERT_EQ(first.state, service::RequestState::kCompleted);
  for (int i = 1; i < kCopies; ++i) {
    const service::SolveResponse r = svc.wait(tickets[static_cast<std::size_t>(i)]);
    ASSERT_EQ(r.state, service::RequestState::kCompleted);
    EXPECT_EQ(r.selection.chosen, first.selection.chosen);
    EXPECT_DOUBLE_EQ(r.selection.total_area(), first.selection.total_area());
    EXPECT_EQ(r.selection.rung, first.selection.rung);
  }
}

// --- admission control -----------------------------------------------------------

TEST(SolveServiceAdmission, QueueDepthOverflowShedsWithRetryAfter) {
  service::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_queue_depth = 2;
  cfg.start_paused = true;  // queue fills race-free
  service::SolveService svc(cfg);

  const std::uint64_t t1 = svc.submit(builtin_request(workloads::fig9_case()));
  const std::uint64_t t2 = svc.submit(builtin_request(workloads::fig9_case()));
  const std::uint64_t t3 = svc.submit(builtin_request(workloads::fig9_case()));

  const auto rejected = svc.poll(t3);
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ(rejected->state, service::RequestState::kRejected);
  EXPECT_GT(rejected->retry_after_seconds, 0.0);
  EXPECT_EQ(rejected->error.kind, support::ErrorKind::kTransient);
  EXPECT_NE(rejected->error.message.find("queue full"), std::string::npos);

  svc.resume();
  EXPECT_EQ(svc.wait(t1).state, service::RequestState::kCompleted);
  EXPECT_EQ(svc.wait(t2).state, service::RequestState::kCompleted);

  const service::ServiceStats st = svc.stats();
  EXPECT_EQ(st.submitted, 3u);
  EXPECT_EQ(st.completed, 2u);
  EXPECT_EQ(st.rejected, 1u);
  EXPECT_EQ(st.peak_queue_depth, 2u);
}

TEST(SolveServiceAdmission, AggregateMemoryBudgetShedsDeclaredCharges) {
  service::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_queue_depth = 64;
  cfg.max_admitted_memory_bytes = std::size_t{100} << 20;
  cfg.default_memory_charge = std::size_t{64} << 20;
  cfg.start_paused = true;
  service::SolveService svc(cfg);

  // Undeclared charge: the 64 MiB default. 64 + 64 > 100 -> second is shed.
  const std::uint64_t t1 = svc.submit(builtin_request(workloads::fig9_case()));
  const std::uint64_t t2 = svc.submit(builtin_request(workloads::fig9_case()));
  const auto r2 = svc.poll(t2);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->state, service::RequestState::kRejected);
  EXPECT_NE(r2->error.message.find("memory"), std::string::npos);

  // A small *declared* cap still fits next to the 64 MiB default charge.
  service::SolveRequest small = builtin_request(workloads::fig10_case());
  small.options.ilp.budget.memory_limit_bytes = std::size_t{8} << 20;
  const std::uint64_t t3 = svc.submit(std::move(small));
  {
    const auto r3 = svc.poll(t3);
    ASSERT_TRUE(r3.has_value());
    EXPECT_EQ(r3->state, service::RequestState::kQueued);
  }

  svc.resume();
  EXPECT_EQ(svc.wait(t1).state, service::RequestState::kCompleted);
  EXPECT_EQ(svc.wait(t3).state, service::RequestState::kCompleted);
  // Terminal requests release their charge: after the drain the full budget
  // is available again (peak recorded while both were admitted).
  const service::ServiceStats st = svc.stats();
  EXPECT_EQ(st.peak_admitted_memory_bytes, (std::size_t{64} << 20) + (std::size_t{8} << 20));
}

// --- cancellation ----------------------------------------------------------------

TEST(SolveServiceCancel, QueuedRequestCancelsImmediately) {
  service::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.start_paused = true;
  service::SolveService svc(cfg);

  const std::uint64_t t1 = svc.submit(builtin_request(workloads::fig9_case()));
  const std::uint64_t t2 = svc.submit(builtin_request(workloads::fig9_case()));

  EXPECT_TRUE(svc.cancel(t2));
  const auto r2 = svc.poll(t2);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->state, service::RequestState::kCancelled);
  EXPECT_EQ(r2->error.kind, support::ErrorKind::kCancelled);

  EXPECT_FALSE(svc.cancel(t2));      // already terminal
  EXPECT_FALSE(svc.cancel(999999));  // unknown ticket

  svc.resume();
  EXPECT_EQ(svc.wait(t1).state, service::RequestState::kCompleted);
  const service::ServiceStats st = svc.stats();
  EXPECT_EQ(st.cancelled, 1u);
  EXPECT_EQ(st.completed, 1u);
}

// A clock that cancels a ticket on its Nth observation, from inside the
// solver's own deadline checkpoint: the cancel lands mid-solve by
// construction, deterministically, with no real timing involved.
class TicketCancellingClock final : public support::Clock {
 public:
  std::int64_t now_micros() override {
    if (++calls_ == cancel_at_call_) svc_->cancel(ticket_);
    return calls_;
  }
  void sleep_micros(std::int64_t) override {}

  void arm(service::SolveService* svc, std::uint64_t ticket, int at_call) {
    svc_ = svc;
    ticket_ = ticket;
    cancel_at_call_ = at_call;
  }

 private:
  service::SolveService* svc_ = nullptr;
  std::uint64_t ticket_ = 0;
  int cancel_at_call_ = -1;
  int calls_ = 0;
};

TEST(SolveServiceCancel, MidSolveCancelReachesTerminalCancelled) {
  TicketCancellingClock clock;
  service::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.clock = &clock;
  cfg.start_paused = true;  // arm the clock before the worker starts
  service::SolveService svc(cfg);

  workloads::RandomWorkloadParams params;
  params.leaf_functions = 12;
  params.call_sites = 48;
  params.ips = 16;
  service::SolveRequest req =
      builtin_request(workloads::random_workload(params, /*seed=*/3));
  // An enormous (but enabled) deadline keeps the per-wave clock read live.
  req.options.ilp.budget.time_limit_seconds = 1e9;
  const std::uint64_t t = svc.submit(std::move(req));
  clock.arm(&svc, t, /*at_call=*/4);
  svc.resume();

  const service::SolveResponse r = svc.wait(t);
  EXPECT_EQ(r.state, service::RequestState::kCancelled);
  EXPECT_EQ(r.error.kind, support::ErrorKind::kCancelled);
  EXPECT_EQ(svc.stats().cancelled, 1u);
}

// --- retry on transient faults ---------------------------------------------------

TEST(SolveServiceRetry, OneShotTransientFaultRetriesAndSucceeds) {
  support::FakeClock clock;
  service::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.clock = &clock;
  cfg.retry.max_attempts = 3;
  cfg.retry.base_backoff_micros = 5000;
  cfg.retry.jitter = 0.0;  // exact backoff assertion below
  service::SolveService svc(cfg);

  // Non-sticky: only the first checkpoint trips; the retry recovers.
  support::ScopedFault fault("service.transient", /*trip_at=*/1, /*sticky=*/false);
  const std::uint64_t t = svc.submit(builtin_request(workloads::fig9_case()));
  const service::SolveResponse r = svc.wait(t);

  ASSERT_EQ(r.state, service::RequestState::kCompleted) << r.error.render();
  EXPECT_EQ(r.attempts, 2);
  EXPECT_TRUE(r.selection.feasible);
  // The backoff between the attempts ran on the fake clock: exactly one
  // first-retry interval, zero real sleeping.
  EXPECT_EQ(clock.slept_micros(), 5000);
  const service::ServiceStats st = svc.stats();
  EXPECT_EQ(st.completed, 1u);
  EXPECT_EQ(st.retries, 1u);
}

TEST(SolveServiceRetry, StickyTransientFaultExhaustsAttemptsAndFails) {
  support::FakeClock clock;
  service::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.clock = &clock;
  cfg.retry.max_attempts = 3;
  cfg.retry.base_backoff_micros = 1000;
  cfg.retry.multiplier = 2.0;
  cfg.retry.max_backoff_micros = 1 << 20;
  cfg.retry.jitter = 0.0;
  service::SolveService svc(cfg);

  support::ScopedFault fault("service.transient", /*trip_at=*/1, /*sticky=*/true);
  const std::uint64_t t = svc.submit(builtin_request(workloads::fig9_case()));
  const service::SolveResponse r = svc.wait(t);

  EXPECT_EQ(r.state, service::RequestState::kFailed);
  EXPECT_EQ(r.attempts, 3);
  EXPECT_EQ(r.error.kind, support::ErrorKind::kTransient);
  // Backoffs after attempts 1 and 2: 1000 + 2000.
  EXPECT_EQ(clock.slept_micros(), 3000);
  const service::ServiceStats st = svc.stats();
  EXPECT_EQ(st.failed, 1u);
  EXPECT_EQ(st.retries, 2u);
}

// --- permanent failure + quarantine ----------------------------------------------

TEST(SolveServiceQuarantine, PermanentFailureDumpsReplayableFixture) {
  const std::string qdir =
      (std::filesystem::path(::testing::TempDir()) / "partita_quarantine").string();
  std::filesystem::create_directories(qdir);

  service::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.quarantine_dir = qdir;
  service::SolveService svc(cfg);

  // A spec whose real rendering is valid -- but the request carries a broken
  // module (fails Flow verification => permanent error), exactly the
  // "solver rejected something the generator produced" shape quarantine is
  // for.
  const workloads::InstanceSpec spec =
      workloads::random_instance_spec(workloads::InstanceGenParams{}, /*seed=*/11);
  service::SolveRequest req;
  req.label = "broken";
  req.workload.name = "broken";
  req.workload.module = ir::Module("no_entry");  // no functions: unverifiable
  req.spec = spec;
  const std::uint64_t t = svc.submit(std::move(req));
  const service::SolveResponse r = svc.wait(t);

  EXPECT_EQ(r.state, service::RequestState::kFailed);
  EXPECT_EQ(r.error.kind, support::ErrorKind::kPermanent);
  EXPECT_EQ(r.attempts, 1);  // permanent errors are never retried
  ASSERT_FALSE(r.quarantine_fixture.empty());

  // The file is one CRC-framed journal quarantine record embedding the PR-3
  // oracle document, and round-trips to the same spec -- so both
  // `partita_fuzz --replay <fixture>` and the journal tooling can re-run
  // the exact instance.
  std::string err;
  std::string doc;
  ASSERT_TRUE(
      service::Journal::read_quarantine_file(r.quarantine_fixture, &doc, &err))
      << err;
  const auto reloaded = oracle::parse_fixture(doc, &err);
  ASSERT_TRUE(reloaded.has_value()) << err;
  EXPECT_TRUE(workloads::spec_valid(*reloaded));
  EXPECT_EQ(oracle::fixture_json(*reloaded), oracle::fixture_json(spec));
}

// --- drain / shutdown ------------------------------------------------------------

TEST(SolveServiceDrain, FlushesEverythingThenRejectsLateSubmits) {
  service::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.start_paused = true;
  service::SolveService svc(cfg);

  std::vector<std::uint64_t> tickets;
  for (int i = 0; i < 5; ++i) {
    tickets.push_back(svc.submit(builtin_request(workloads::fig9_case())));
  }
  svc.drain();  // unparks, flushes, and only returns when all are terminal

  for (std::uint64_t t : tickets) {
    EXPECT_EQ(svc.wait(t).state, service::RequestState::kCompleted);
  }
  const std::uint64_t late = svc.submit(builtin_request(workloads::fig9_case()));
  const auto r = svc.poll(late);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->state, service::RequestState::kRejected);
  EXPECT_NE(r->error.message.find("draining"), std::string::npos);

  const service::ServiceStats st = svc.stats();
  EXPECT_EQ(st.submitted, 6u);
  EXPECT_EQ(st.completed, 5u);
  EXPECT_EQ(st.rejected, 1u);
}

TEST(SolveServiceDrain, WaitOnUnknownTicketFailsStructurally) {
  service::ServiceConfig cfg;
  cfg.workers = 1;
  service::SolveService svc(cfg);
  EXPECT_FALSE(svc.poll(12345).has_value());
  const service::SolveResponse r = svc.wait(12345);
  EXPECT_EQ(r.state, service::RequestState::kFailed);
  EXPECT_NE(r.error.message.find("unknown ticket"), std::string::npos);
}

}  // namespace
}  // namespace partita

// Metamorphic and serialization properties of the selection problem,
// checked through the exhaustive oracle:
//   * optimal area is monotone in the required gain;
//   * relabeling IPs or kernels never changes the optimal area;
//   * a shared IP's fixed-charge area is counted exactly once (Eq. 3);
//   * flattening a wrapper hierarchy can only help (the direct instance
//     dominates: its Gmax is no smaller and its optimal area no larger,
//     because the wrapper's residual software overhead disappears);
//   * fixtures round-trip byte-identically through JSON.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>

#include "oracle/differential.hpp"
#include "oracle/exhaustive.hpp"
#include "oracle/fixture.hpp"
#include "select/flow.hpp"
#include "workloads/random_workload.hpp"

namespace partita {
namespace {

using workloads::InstanceGenParams;
using workloads::InstanceSpec;

InstanceGenParams small_params() {
  InstanceGenParams p;
  p.scalls = 6;
  p.kernels = 4;
  p.ips = 5;
  p.branch_groups = 1;
  return p;
}

struct OracleRun {
  std::int64_t gmax = 0;
  oracle::OracleResult result;
};

OracleRun run_oracle(const InstanceSpec& spec, std::int64_t rg_or_zero,
                     double fraction = 0.6) {
  const workloads::Workload wl = workloads::spec_workload(spec);
  const select::Flow flow(wl.module, wl.library);
  OracleRun run;
  run.gmax = flow.max_feasible_gain();
  const std::int64_t rg =
      rg_or_zero > 0
          ? rg_or_zero
          : static_cast<std::int64_t>(fraction * static_cast<double>(run.gmax));
  run.result = oracle::exhaustive_select(flow.imp_database(), flow.library(),
                                         flow.entry_cdfg(), flow.paths(), rg);
  return run;
}

TEST(OracleProperties, OptimalAreaIsMonotoneInRequiredGain) {
  for (std::uint64_t seed = 400; seed < 420; ++seed) {
    const InstanceSpec spec = workloads::random_instance_spec(small_params(), seed);
    double prev_area = -1.0;
    for (double fraction : {0.25, 0.5, 0.75, 1.0}) {
      const OracleRun run = run_oracle(spec, 0, fraction);
      ASSERT_TRUE(run.result.exhausted);
      if (!run.result.feasible) continue;  // later rungs only get harder
      EXPECT_GE(run.result.total_area + 1e-9, prev_area)
          << "seed " << seed << " fraction " << fraction
          << ": a larger required gain can never need less area";
      prev_area = run.result.total_area;
    }
  }
}

TEST(OracleProperties, IpRelabelingLeavesOptimalAreaUnchanged) {
  for (std::uint64_t seed = 430; seed < 445; ++seed) {
    const InstanceSpec spec = workloads::random_instance_spec(small_params(), seed);
    InstanceSpec relabeled = spec;
    std::reverse(relabeled.ips.begin(), relabeled.ips.end());

    // Pin the same absolute gain on both (the derived Gmax is identical, but
    // pinning makes the comparison independent of that).
    const OracleRun base = run_oracle(spec, 0);
    ASSERT_TRUE(base.result.exhausted);
    const std::int64_t rg =
        static_cast<std::int64_t>(0.6 * static_cast<double>(base.gmax));
    const OracleRun perm = run_oracle(relabeled, rg);
    ASSERT_TRUE(perm.result.exhausted);

    ASSERT_EQ(base.result.feasible, perm.result.feasible) << "seed " << seed;
    if (base.result.feasible) {
      EXPECT_NEAR(base.result.total_area, perm.result.total_area, 1e-9)
          << "seed " << seed;
    }
  }
}

TEST(OracleProperties, KernelRelabelingLeavesOptimalAreaUnchanged) {
  for (std::uint64_t seed = 450; seed < 465; ++seed) {
    const InstanceSpec spec = workloads::random_instance_spec(small_params(), seed);
    ASSERT_GE(spec.kernel_cycles.size(), 2u);
    InstanceSpec relabeled = spec;
    std::swap(relabeled.kernel_cycles[0], relabeled.kernel_cycles[1]);
    const auto remap = [](int k) { return k == 0 ? 1 : (k == 1 ? 0 : k); };
    for (workloads::SpecCallSite& s : relabeled.sites) s.kernel = remap(s.kernel);
    for (workloads::SpecIp& ip : relabeled.ips) {
      for (workloads::SpecIpFunction& f : ip.functions) f.kernel = remap(f.kernel);
    }

    const OracleRun base = run_oracle(spec, 0);
    ASSERT_TRUE(base.result.exhausted);
    const std::int64_t rg =
        static_cast<std::int64_t>(0.6 * static_cast<double>(base.gmax));
    const OracleRun perm = run_oracle(relabeled, rg);
    ASSERT_TRUE(perm.result.exhausted);

    ASSERT_EQ(base.result.feasible, perm.result.feasible) << "seed " << seed;
    if (base.result.feasible) {
      EXPECT_NEAR(base.result.total_area, perm.result.total_area, 1e-9)
          << "seed " << seed;
    }
  }
}

// Two s-calls served by the same IP: the fixed charge appears once in the
// oracle's Eq. 3 accounting, not once per selected IMP.
TEST(OracleProperties, SharedIpAreaIsCountedOnce) {
  InstanceSpec spec;
  spec.name = "shared_ip";
  spec.kernel_cycles = {20000, 24000};
  spec.sites.resize(2);
  spec.sites[0].kernel = 0;
  spec.sites[1].kernel = 1;
  workloads::SpecIp ip;
  ip.area = 9.0;
  ip.functions.push_back({0, 4000, 8, 8});
  ip.functions.push_back({1, 5000, 8, 8});
  spec.ips.push_back(ip);
  ASSERT_TRUE(workloads::spec_valid(spec));

  const workloads::Workload wl = workloads::spec_workload(spec);
  const select::Flow flow(wl.module, wl.library);
  // Gmax needs both s-calls in hardware; both IMPs then share the one IP.
  const std::int64_t gmax = flow.max_feasible_gain();
  const oracle::OracleResult r = oracle::exhaustive_select(
      flow.imp_database(), flow.library(), flow.entry_cdfg(), flow.paths(), gmax);
  ASSERT_TRUE(r.exhausted);
  ASSERT_TRUE(r.feasible);
  ASSERT_EQ(r.chosen.size(), 2u);
  EXPECT_NEAR(r.ip_area, 9.0, 1e-9)
      << "the shared IP's area must be charged exactly once";
  EXPECT_NEAR(r.total_area, r.ip_area + r.interface_area, 1e-12);
}

// Removing pure wrapper chains (depth -> 0) produces an instance that
// dominates the hierarchical one: the wrapper's leftover software overhead
// is gone, so the max feasible gain cannot drop and the optimal area at a
// gain both can reach cannot grow.
TEST(OracleProperties, FlatteningAWrapperHierarchyOnlyHelps) {
  InstanceGenParams p = small_params();
  p.max_hierarchy_depth = 2;
  p.hierarchy_probability = 1.0;
  for (std::uint64_t seed = 470; seed < 485; ++seed) {
    const InstanceSpec hier = workloads::random_instance_spec(p, seed);
    InstanceSpec flat = hier;
    for (workloads::SpecCallSite& s : flat.sites) s.depth = 0;

    const OracleRun h = run_oracle(hier, 0);
    ASSERT_TRUE(h.result.exhausted);
    if (!h.result.feasible) continue;
    const std::int64_t rg =
        static_cast<std::int64_t>(0.6 * static_cast<double>(h.gmax));
    const OracleRun f = run_oracle(flat, rg);
    ASSERT_TRUE(f.result.exhausted);

    // Gains are integers built from rounded path-frequency products, so the
    // dominance holds up to one cycle of quantization slack.
    EXPECT_GE(f.gmax + 1, h.gmax) << "seed " << seed;
    ASSERT_TRUE(f.result.feasible) << "seed " << seed;
    EXPECT_LE(f.result.total_area, h.result.total_area + 1e-9) << "seed " << seed;
  }
}

TEST(OracleProperties, FixtureRoundTripsByteIdentically) {
  for (std::uint64_t seed = 490; seed < 500; ++seed) {
    InstanceGenParams p = small_params();
    p.max_hierarchy_depth = 1;
    const InstanceSpec spec = workloads::random_instance_spec(p, seed);
    const std::string json = oracle::fixture_json(spec);
    std::string error;
    const auto parsed = oracle::parse_fixture(json, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(oracle::fixture_json(*parsed), json);
    // The reparsed spec renders the same instance.
    EXPECT_EQ(workloads::spec_kl(*parsed), workloads::spec_kl(spec));
    EXPECT_EQ(workloads::spec_library(*parsed), workloads::spec_library(spec));
  }
}

TEST(OracleProperties, FixtureParserRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(oracle::parse_fixture("{", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(oracle::parse_fixture("[1, 2]", &error).has_value());
  // Structurally valid JSON that is not a loadable instance (no sites).
  EXPECT_FALSE(oracle::parse_fixture(R"({"kernel_cycles": [100]})", &error).has_value());
}

}  // namespace
}  // namespace partita

// Tests for sensitivity analysis and the IP-library linter.
#include <gtest/gtest.h>

#include "dse/sensitivity.hpp"
#include "iface/lint.hpp"
#include "iplib/loader.hpp"
#include "select/flow.hpp"
#include "workloads/workloads.hpp"

namespace partita {
namespace {

// --- sensitivity -----------------------------------------------------------------

TEST(Sensitivity, EssentialIpDetected) {
  // fig9 has a single IP: banning it must be reported as essential.
  workloads::Workload w = workloads::fig9_case();
  select::Flow flow(w.module, w.library);
  const dse::SensitivityReport rep =
      dse::analyze_sensitivity(flow.selector(), flow.max_feasible_gain() / 2);
  ASSERT_TRUE(rep.baseline.feasible);
  ASSERT_EQ(rep.per_ip.size(), 1u);
  EXPECT_FALSE(rep.per_ip[0].feasible_without);
}

TEST(Sensitivity, ReplaceableIpHasPenalty) {
  // The decoder's workhorse IP5 has alternatives (IP3/IP4): banning it stays
  // feasible but costs area.
  workloads::Workload w = workloads::gsm_decoder();
  select::Flow flow(w.module, w.library);
  const std::int64_t rg = flow.max_feasible_gain() / 2;
  const dse::SensitivityReport rep = dse::analyze_sensitivity(flow.selector(), rg);
  ASSERT_TRUE(rep.baseline.feasible);
  ASSERT_FALSE(rep.per_ip.empty());
  for (const dse::IpCriticality& c : rep.per_ip) {
    if (!c.feasible_without) continue;
    EXPECT_GE(c.area_penalty, -1e-9) << "banning an IP cannot reduce the optimum";
    EXPECT_GE(c.alternative.min_path_gain, rg);
    // The banned IP truly vanished from the alternative.
    for (iplib::IpId used : c.alternative.ips_used) EXPECT_NE(used, c.ip);
  }
}

TEST(Sensitivity, GainSlackMatchesAchievedMinusRequired) {
  workloads::Workload w = workloads::gsm_decoder();
  select::Flow flow(w.module, w.library);
  const std::int64_t rg = flow.max_feasible_gain() / 3;
  const dse::SensitivityReport rep = dse::analyze_sensitivity(flow.selector(), rg);
  EXPECT_EQ(rep.gain_slack, rep.baseline.min_path_gain - rg);
}

TEST(Sensitivity, InfeasibleBaseline) {
  workloads::Workload w = workloads::fig9_case();
  select::Flow flow(w.module, w.library);
  const dse::SensitivityReport rep =
      dse::analyze_sensitivity(flow.selector(), flow.max_feasible_gain() * 2);
  EXPECT_FALSE(rep.baseline.feasible);
  EXPECT_TRUE(rep.per_ip.empty());
  EXPECT_NE(dse::render_sensitivity(rep, w.library).find("infeasible"),
            std::string::npos);
}

TEST(Sensitivity, RenderListsEveryIp) {
  workloads::Workload w = workloads::gsm_decoder();
  select::Flow flow(w.module, w.library);
  const dse::SensitivityReport rep =
      dse::analyze_sensitivity(flow.selector(), flow.max_feasible_gain() / 2);
  const std::string text = dse::render_sensitivity(rep, w.library);
  for (const dse::IpCriticality& c : rep.per_ip) {
    EXPECT_NE(text.find(w.library.ip(c.ip).name), std::string::npos);
  }
}

// --- lint ------------------------------------------------------------------------

iplib::IpLibrary load(std::string_view text) {
  support::DiagnosticEngine diags;
  auto lib = iplib::load_library(text, diags);
  EXPECT_TRUE(lib.has_value()) << diags.render_all();
  return std::move(*lib);
}

TEST(Lint, CleanLibraryIsClean) {
  const iplib::IpLibrary lib = load(R"(
ip GOOD {
  area 5
  ports in 2 out 2
  rate in 4 out 4
  latency 8
  pipelined
  protocol sync
  fn f cycles 100 in 16 out 16
}
)");
  const auto findings = iface::lint_library(lib);
  EXPECT_TRUE(findings.empty()) << iface::render_lint(findings);
}

TEST(Lint, ZeroAreaIsError) {
  const iplib::IpLibrary lib = load(R"(
ip FREE {
  area 0
  fn f cycles 100 in 8 out 8
}
)");
  const auto findings = iface::lint_library(lib);
  EXPECT_TRUE(iface::has_lint_errors(findings));
  EXPECT_NE(iface::render_lint(findings).find("area must be positive"), std::string::npos);
}

TEST(Lint, SubTemplateRateWarned) {
  const iplib::IpLibrary lib = load(R"(
ip FAST {
  area 3
  rate in 2 out 2
  latency 4
  fn f cycles 100 in 8 out 8
}
)");
  const auto findings = iface::lint_library(lib);
  EXPECT_FALSE(iface::has_lint_errors(findings));
  EXPECT_NE(iface::render_lint(findings).find("slow the IP clock"), std::string::npos);
}

TEST(Lint, WidePortsWarned) {
  const iplib::IpLibrary lib = load(R"(
ip WIDE {
  area 3
  ports in 4 out 4
  rate in 2 out 2
  latency 4
  fn f cycles 100 in 8 out 8
}
)");
  const auto findings = iface::lint_library(lib);
  EXPECT_NE(iface::render_lint(findings).find("buffered interfaces"), std::string::npos);
}

TEST(Lint, DerivedCyclesNoted) {
  const iplib::IpLibrary lib = load(R"(
ip DERIVED {
  area 3
  rate in 4 out 4
  latency 4
  fn f cycles 0 in 8 out 8
}
)");
  const auto findings = iface::lint_library(lib);
  EXPECT_NE(iface::render_lint(findings).find("derives T_IP"), std::string::npos);
}

TEST(Lint, CrowdedFunctionWarned) {
  std::string text;
  for (int i = 0; i < 4; ++i) {
    text += "ip IP" + std::to_string(i) + R"( {
  area 3
  rate in 4 out 4
  latency 4
  fn f cycles 100 in 8 out 8
}
)";
  }
  const auto findings = iface::lint_library(load(text));
  EXPECT_NE(iface::render_lint(findings).find("4 implementors"), std::string::npos);
}

TEST(Lint, PaperWorkloadLibrariesHaveNoErrors) {
  for (auto make : {workloads::gsm_encoder, workloads::gsm_decoder,
                    workloads::jpeg_encoder, workloads::adpcm_codec}) {
    workloads::Workload w = make();
    const auto findings = iface::lint_library(w.library);
    EXPECT_FALSE(iface::has_lint_errors(findings))
        << w.name << ":\n" << iface::render_lint(findings);
  }
}

}  // namespace
}  // namespace partita

// Tests for IP descriptors, the library container and the text loader.
#include <gtest/gtest.h>

#include "iplib/ip.hpp"
#include "iplib/library.hpp"
#include "iplib/loader.hpp"

namespace partita::iplib {
namespace {

IpDescriptor sample_ip() {
  IpDescriptor ip;
  ip.name = "FIR16";
  ip.area = 7.5;
  ip.in_ports = 2;
  ip.out_ports = 2;
  ip.in_rate = 4;
  ip.out_rate = 4;
  ip.latency = 12;
  ip.pipelined = true;
  ip.functions.push_back({"fir", 2000, 64, 64});
  return ip;
}

TEST(IpDescriptor, FindFunction) {
  const IpDescriptor ip = sample_ip();
  EXPECT_NE(ip.find_function("fir"), nullptr);
  EXPECT_EQ(ip.find_function("dct"), nullptr);
  EXPECT_FALSE(ip.is_multi_function());
}

TEST(IpDescriptor, DeclaredExecutionCycles) {
  const IpDescriptor ip = sample_ip();
  EXPECT_EQ(ip.execution_cycles(ip.functions[0]), 2000);
}

TEST(IpDescriptor, DerivedExecutionCycles) {
  IpDescriptor ip = sample_ip();
  ip.functions[0].ip_cycles = 0;  // derive: latency + max(64*4, 64*4)
  EXPECT_EQ(ip.execution_cycles(ip.functions[0]), 12 + 64 * 4);
}

TEST(IpLibrary, AddAndFind) {
  IpLibrary lib;
  const IpId id = lib.add(sample_ip());
  EXPECT_TRUE(lib.find("FIR16").valid());
  EXPECT_EQ(lib.find("FIR16"), id);
  EXPECT_FALSE(lib.find("nope").valid());
  EXPECT_EQ(lib.ip(id).area, 7.5);
}

TEST(IpLibrary, ImplementorsOf) {
  IpLibrary lib;
  lib.add(sample_ip());
  IpDescriptor multi = sample_ip();
  multi.name = "MULTI";
  multi.functions.push_back({"dct", 4000, 64, 64});
  lib.add(multi);
  EXPECT_EQ(lib.implementors_of("fir").size(), 2u);
  EXPECT_EQ(lib.implementors_of("dct").size(), 1u);
  EXPECT_TRUE(lib.implementors_of("fft").empty());
  const auto funcs = lib.supported_functions();
  EXPECT_EQ(funcs.size(), 2u);  // fir, dct
}

// --- loader ---------------------------------------------------------------------

constexpr std::string_view kLibText = R"(
# test library
ip ACC1 {
  area 3.5
  ports in 4 out 2
  rate in 2 out 4
  latency 16
  pipelined
  protocol handshake
  fn fir cycles 2000 in 64 out 64
  fn iir cycles 0 in 32 out 32
}
ip ACC2 {
  area 1
  ports in 1 out 1
  rate in 4 out 4
  latency 4
  combinational
  protocol sync
  fn quant cycles 100 in 8 out 8
}
)";

TEST(Loader, ParsesFullLibrary) {
  support::DiagnosticEngine diags;
  auto lib = load_library(kLibText, diags);
  ASSERT_TRUE(lib.has_value()) << diags.render_all();
  EXPECT_EQ(lib->size(), 2u);
  const IpDescriptor& acc1 = lib->ip(lib->find("ACC1"));
  EXPECT_DOUBLE_EQ(acc1.area, 3.5);
  EXPECT_EQ(acc1.in_ports, 4);
  EXPECT_EQ(acc1.in_rate, 2);
  EXPECT_EQ(acc1.out_rate, 4);
  EXPECT_EQ(acc1.latency, 16);
  EXPECT_TRUE(acc1.pipelined);
  EXPECT_EQ(acc1.protocol, Protocol::kHandshake);
  ASSERT_EQ(acc1.functions.size(), 2u);
  EXPECT_TRUE(acc1.is_multi_function());
  const IpDescriptor& acc2 = lib->ip(lib->find("ACC2"));
  EXPECT_FALSE(acc2.pipelined);
  EXPECT_EQ(acc2.protocol, Protocol::kSynchronous);
}

TEST(Loader, RejectsDuplicateName) {
  support::DiagnosticEngine diags;
  const std::string text = std::string(kLibText) + R"(
ip ACC1 {
  area 1
  fn x cycles 1 in 1 out 1
}
)";
  EXPECT_FALSE(load_library(text, diags).has_value());
}

TEST(Loader, RejectsMissingFunctions) {
  support::DiagnosticEngine diags;
  EXPECT_FALSE(load_library("ip EMPTY {\n area 1\n}\n", diags).has_value());
}

TEST(Loader, RejectsBadRate) {
  support::DiagnosticEngine diags;
  EXPECT_FALSE(load_library(R"(
ip X {
  rate in 0 out 4
  fn f cycles 1 in 1 out 1
}
)",
                            diags)
                   .has_value());
}

TEST(Loader, RejectsUnknownProtocol) {
  support::DiagnosticEngine diags;
  EXPECT_FALSE(load_library(R"(
ip X {
  protocol carrier_pigeon
  fn f cycles 1 in 1 out 1
}
)",
                            diags)
                   .has_value());
}

TEST(Loader, RejectsUnterminatedBlock) {
  support::DiagnosticEngine diags;
  EXPECT_FALSE(load_library("ip X {\n area 1\n fn f cycles 1 in 1 out 1\n", diags).has_value());
}

TEST(Loader, SaveLoadRoundTrip) {
  support::DiagnosticEngine diags;
  auto lib1 = load_library(kLibText, diags);
  ASSERT_TRUE(lib1);
  const std::string saved1 = save_library(*lib1);
  auto lib2 = load_library(saved1, diags);
  ASSERT_TRUE(lib2.has_value()) << diags.render_all() << saved1;
  EXPECT_EQ(save_library(*lib2), saved1);
}

}  // namespace
}  // namespace partita::iplib

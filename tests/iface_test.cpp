// Tests for the interface templates and the Section 3 timing/area model.
#include <gtest/gtest.h>

#include <cmath>

#include "iface/model.hpp"
#include "iface/program.hpp"
#include "iface/types.hpp"

namespace partita::iface {
namespace {

iplib::IpDescriptor make_ip(int in_ports = 2, int out_ports = 2, int in_rate = 4,
                            int out_rate = 4, int latency = 16, bool pipelined = true) {
  iplib::IpDescriptor ip;
  ip.name = "T";
  ip.area = 10;
  ip.in_ports = in_ports;
  ip.out_ports = out_ports;
  ip.in_rate = in_rate;
  ip.out_rate = out_rate;
  ip.latency = latency;
  ip.pipelined = pipelined;
  ip.functions.push_back({"f", 5000, 64, 64});
  return ip;
}

const iplib::IpFunction& fn_of(const iplib::IpDescriptor& ip) { return ip.functions[0]; }

// --- type metadata ------------------------------------------------------------

TEST(Types, Classification) {
  EXPECT_TRUE(is_software(InterfaceType::kType0));
  EXPECT_TRUE(is_software(InterfaceType::kType1));
  EXPECT_FALSE(is_software(InterfaceType::kType2));
  EXPECT_TRUE(is_buffered(InterfaceType::kType1));
  EXPECT_TRUE(is_buffered(InterfaceType::kType3));
  EXPECT_FALSE(supports_parallel_execution(InterfaceType::kType0));
  EXPECT_FALSE(supports_parallel_execution(InterfaceType::kType2));
  EXPECT_TRUE(supports_parallel_execution(InterfaceType::kType3));
  EXPECT_EQ(short_name(InterfaceType::kType2), "IF2");
}

// --- applicability (Section 3 rules) --------------------------------------------

TEST(Applicability, UnbufferedTypesRejectWideIps) {
  const KernelParams k;
  const iplib::IpDescriptor wide = make_ip(/*in_ports=*/4);
  EXPECT_FALSE(applicable(InterfaceType::kType0, wide, k).ok);
  EXPECT_FALSE(applicable(InterfaceType::kType2, wide, k).ok);
  EXPECT_TRUE(applicable(InterfaceType::kType1, wide, k).ok);
  EXPECT_TRUE(applicable(InterfaceType::kType3, wide, k).ok);
}

TEST(Applicability, Type0RejectsRateMismatch) {
  const KernelParams k;
  const iplib::IpDescriptor mismatch = make_ip(2, 2, /*in_rate=*/2, /*out_rate=*/4);
  EXPECT_FALSE(applicable(InterfaceType::kType0, mismatch, k).ok);
  EXPECT_TRUE(applicable(InterfaceType::kType2, mismatch, k).ok);  // split FSM
  EXPECT_TRUE(applicable(InterfaceType::kType1, mismatch, k).ok);
}

// --- templates (Figs. 4-7) -------------------------------------------------------

TEST(Templates, Type0HasFillSteadyDrain) {
  const KernelParams k;
  const iplib::IpDescriptor ip = make_ip();
  const InterfaceProgram p = expand_template(InterfaceType::kType0, ip, fn_of(ip), k);
  EXPECT_EQ(p.type, InterfaceType::kType0);
  ASSERT_NE(p.find_section("init"), nullptr);
  ASSERT_NE(p.find_section("steady"), nullptr);
  // fill + steady == input batches; steady + drain == output batches.
  const std::int64_t in_b = batches(64, 2);
  const std::int64_t fill = p.find_section("fill") ? p.find_section("fill")->iterations : 0;
  const std::int64_t steady = p.find_section("steady")->iterations;
  const std::int64_t drain =
      p.find_section("drain") ? p.find_section("drain")->iterations : 0;
  EXPECT_EQ(fill + steady, in_b);
  EXPECT_EQ(steady + drain, batches(64, 2));
}

TEST(Templates, Type0PadsSlowIps) {
  const KernelParams k;
  const iplib::IpDescriptor slow = make_ip(2, 2, /*in_rate=*/8, /*out_rate=*/8);
  const InterfaceProgram p = expand_template(InterfaceType::kType0, slow, fn_of(slow), k);
  // Every loop section body must be padded to 8 lines (one batch per 8 cycles).
  for (const IfSection& s : p.sections) {
    if (s.name == "init") continue;
    EXPECT_EQ(s.words(), 8) << s.name;
  }
}

TEST(Templates, Type1SplitsIntoBufferPhases) {
  const KernelParams k;
  const iplib::IpDescriptor ip = make_ip();
  const InterfaceProgram p = expand_template(InterfaceType::kType1, ip, fn_of(ip), k);
  ASSERT_NE(p.find_section("buffer_in"), nullptr);
  ASSERT_NE(p.find_section("start"), nullptr);
  ASSERT_NE(p.find_section("buffer_out"), nullptr);
  EXPECT_EQ(p.find_section("buffer_in")->iterations, batches(64, 2));
  // The kernel moves one batch per sw_buffer_rate cycles.
  EXPECT_EQ(p.find_section("buffer_in")->words(), k.sw_buffer_rate);
}

TEST(Templates, Type2UsesDmaStrobes) {
  const KernelParams k;
  const iplib::IpDescriptor ip = make_ip();
  const InterfaceProgram p = expand_template(InterfaceType::kType2, ip, fn_of(ip), k);
  ASSERT_NE(p.find_section("setup"), nullptr);
  ASSERT_NE(p.find_section("dma_in"), nullptr);
  // One strobe line padded to the IP's native rate.
  EXPECT_EQ(p.find_section("dma_in")->words(), 4);
  EXPECT_EQ(p.find_section("dma_in")->iterations, batches(64, 2));
  bool has_read = false;
  for (const IfLine& l : p.find_section("dma_in")->body) {
    for (IfOp op : l.ops) has_read |= op == IfOp::kDmaRead;
  }
  EXPECT_TRUE(has_read);
}

TEST(Templates, Type3MovesOneBatchPerCycle) {
  const KernelParams k;
  const iplib::IpDescriptor ip = make_ip();
  const InterfaceProgram p = expand_template(InterfaceType::kType3, ip, fn_of(ip), k);
  EXPECT_EQ(p.find_section("dma_in")->words(), 1);
  EXPECT_EQ(p.section_cycles("dma_in"), batches(64, 2));
}

TEST(Templates, DumpIsReadable) {
  const KernelParams k;
  const iplib::IpDescriptor ip = make_ip();
  const std::string dump = expand_template(InterfaceType::kType0, ip, fn_of(ip), k).dump();
  EXPECT_NE(dump.find("section"), std::string::npos);
  EXPECT_NE(dump.find("load_x"), std::string::npos);
}

// --- timing model (Section 3 equations) --------------------------------------------

TEST(Timing, Type0IsMaxOfIpAndTransfer) {
  const KernelParams k;
  const iplib::IpDescriptor ip = make_ip();  // t_ip = 5000 dominates
  const InterfaceTiming t = interface_timing(InterfaceType::kType0, ip, fn_of(ip), 0, k);
  EXPECT_EQ(t.t_ip, 5000);
  EXPECT_GT(t.t_if, 0);
  EXPECT_EQ(t.total_cycles, std::max(t.t_ip, t.t_if));
  EXPECT_EQ(t.overlap, 0);
  EXPECT_DOUBLE_EQ(t.clock_slowdown, 1.0);
}

TEST(Timing, Type0TransferBoundWhenIpFast) {
  const KernelParams k;
  iplib::IpDescriptor ip = make_ip();
  ip.functions[0].ip_cycles = 10;  // trivial IP work; transfer dominates
  const InterfaceTiming t = interface_timing(InterfaceType::kType0, ip, fn_of(ip), 0, k);
  EXPECT_EQ(t.total_cycles, t.t_if);
}

TEST(Timing, Type0SlowsClockForFastIps) {
  const KernelParams k;
  const iplib::IpDescriptor fast = make_ip(2, 2, /*in_rate=*/2, /*out_rate=*/2);
  const InterfaceTiming t = interface_timing(InterfaceType::kType0, fast, fn_of(fast), 0, k);
  EXPECT_DOUBLE_EQ(t.clock_slowdown, 2.0);
  EXPECT_EQ(t.t_ip, 10000);  // 5000 stretched by 2x
}

TEST(Timing, Type2AvoidsClockSlowdown) {
  const KernelParams k;
  const iplib::IpDescriptor fast = make_ip(2, 2, 2, 2);
  const InterfaceTiming t0 = interface_timing(InterfaceType::kType0, fast, fn_of(fast), 0, k);
  const InterfaceTiming t2 = interface_timing(InterfaceType::kType2, fast, fn_of(fast), 0, k);
  EXPECT_LT(t2.total_cycles, t0.total_cycles);  // the Table 2 SC10 effect
  EXPECT_EQ(t2.t_ip, 5000);
}

TEST(Timing, BufferedFollowsAdditiveFormula) {
  const KernelParams k;
  const iplib::IpDescriptor ip = make_ip();
  const InterfaceTiming t = interface_timing(InterfaceType::kType1, ip, fn_of(ip), 0, k);
  EXPECT_EQ(t.total_cycles, t.t_if_in + std::max(t.t_ip, t.t_b) + t.t_if_out);
  EXPECT_GT(t.t_if_in, 0);
  EXPECT_GT(t.t_if_out, 0);
}

TEST(Timing, ParallelCodeCreditIsMinOfIpAndPc) {
  const KernelParams k;
  const iplib::IpDescriptor ip = make_ip();
  const InterfaceTiming small =
      interface_timing(InterfaceType::kType3, ip, fn_of(ip), 1200, k);
  EXPECT_EQ(small.overlap, 1200);  // T_C < T_IP
  const InterfaceTiming big =
      interface_timing(InterfaceType::kType3, ip, fn_of(ip), 99999, k);
  EXPECT_EQ(big.overlap, 5000);  // capped at T_IP
  EXPECT_EQ(big.total_cycles, small.total_cycles - (5000 - 1200));
}

TEST(Timing, UnbufferedTypesIgnoreParallelCode) {
  const KernelParams k;
  const iplib::IpDescriptor ip = make_ip();
  const InterfaceTiming t0 = interface_timing(InterfaceType::kType0, ip, fn_of(ip), 5000, k);
  const InterfaceTiming t2 = interface_timing(InterfaceType::kType2, ip, fn_of(ip), 5000, k);
  EXPECT_EQ(t0.overlap, 0);
  EXPECT_EQ(t2.overlap, 0);
}

TEST(Timing, NonPipelinedIpSerializesTransfer) {
  const KernelParams k;
  const iplib::IpDescriptor np = make_ip(2, 2, 4, 4, 16, /*pipelined=*/false);
  const InterfaceTiming t = interface_timing(InterfaceType::kType0, np, fn_of(np), 0, k);
  EXPECT_EQ(t.total_cycles, t.t_if + t.t_ip);
  const InterfaceTiming t1 = interface_timing(InterfaceType::kType1, np, fn_of(np), 0, k);
  EXPECT_GT(t1.t_b, 0);
  EXPECT_EQ(t1.total_cycles, t1.t_if_in + t1.t_b + t1.t_ip + t1.t_if_out);
}

TEST(Timing, BufferStreamRateUsesAllPorts) {
  const KernelParams k;
  // 4 input ports at rate 1: 64 items stream in 16 cycles.
  iplib::IpDescriptor wide = make_ip(4, 4, 1, 1);
  wide.functions[0].ip_cycles = 10;
  const InterfaceTiming t = interface_timing(InterfaceType::kType3, wide, fn_of(wide), 0, k);
  EXPECT_EQ(t.t_b, 16);
}

// --- cost model ----------------------------------------------------------------------

TEST(Cost, SoftwareControllersCostCodeMemory) {
  const KernelParams k;
  const iplib::IpDescriptor ip = make_ip();
  const InterfaceProgram p = expand_template(InterfaceType::kType0, ip, fn_of(ip), k);
  const InterfaceCost c = interface_cost(InterfaceType::kType0, ip, fn_of(ip), k);
  EXPECT_DOUBLE_EQ(c.controller, k.ucode_word_area * static_cast<double>(p.static_words()));
  EXPECT_DOUBLE_EQ(c.buffers, 0.0);
}

TEST(Cost, BufferedTypesPayForBuffers) {
  const KernelParams k;
  const iplib::IpDescriptor ip = make_ip();
  const InterfaceCost c1 = interface_cost(InterfaceType::kType1, ip, fn_of(ip), k);
  const InterfaceCost c3 = interface_cost(InterfaceType::kType3, ip, fn_of(ip), k);
  EXPECT_GT(c1.buffers, 0.0);
  EXPECT_GT(c3.buffers, 0.0);
  // Buffer area scales with the data footprint.
  EXPECT_NEAR(c1.buffers,
              k.buffer_word_area * 128 + k.buffer_port_area * 4, 1e-12);
}

TEST(Cost, FsmSplitRateSurcharge) {
  const KernelParams k;
  const iplib::IpDescriptor even = make_ip();
  const iplib::IpDescriptor split = make_ip(2, 2, 2, 4);
  const double c_even = interface_cost(InterfaceType::kType2, even, fn_of(even), k).controller;
  const double c_split =
      interface_cost(InterfaceType::kType2, split, fn_of(split), k).controller;
  EXPECT_NEAR(c_split - c_even, k.fsm_split_rate_area, 1e-12);
}

TEST(Cost, ProtocolTransformerArea) {
  const KernelParams k;
  iplib::IpDescriptor hs = make_ip();
  hs.protocol = iplib::Protocol::kHandshake;
  const InterfaceCost c = interface_cost(InterfaceType::kType0, hs, fn_of(hs), k);
  EXPECT_DOUBLE_EQ(c.transformer, k.protocol_transformer_area(iplib::Protocol::kHandshake));
  EXPECT_GT(c.total(), c.controller);
}

TEST(Cost, CheapestTypeIsType0) {
  // The paper's premise: the software unbuffered interface is the cheapest.
  const KernelParams k;
  const iplib::IpDescriptor ip = make_ip();
  const double a0 = interface_cost(InterfaceType::kType0, ip, fn_of(ip), k).total();
  for (InterfaceType t :
       {InterfaceType::kType1, InterfaceType::kType2, InterfaceType::kType3}) {
    EXPECT_LE(a0, interface_cost(t, ip, fn_of(ip), k).total()) << to_string(t);
  }
}

TEST(Cost, Type3MostExpensive) {
  const KernelParams k;
  const iplib::IpDescriptor ip = make_ip();
  const double a3 = interface_cost(InterfaceType::kType3, ip, fn_of(ip), k).total();
  for (InterfaceType t :
       {InterfaceType::kType0, InterfaceType::kType1, InterfaceType::kType2}) {
    EXPECT_GE(a3, interface_cost(t, ip, fn_of(ip), k).total()) << to_string(t);
  }
}

}  // namespace
}  // namespace partita::iface

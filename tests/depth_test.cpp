// Second-round depth tests: template phase accounting, packer properties on
// random MOP lists, MiniC scoping corners, flattening-depth behaviour.
#include <gtest/gtest.h>

#include <random>

#include "iface/model.hpp"
#include "ir/lower.hpp"
#include "minic/mc_codegen.hpp"
#include "select/flow.hpp"
#include "workloads/workloads.hpp"

namespace partita {
namespace {

// --- interface template phase accounting ----------------------------------------

iplib::IpDescriptor ip_with(int in_rate, int out_rate, int latency, bool pipelined,
                            std::int64_t n_in, std::int64_t n_out) {
  iplib::IpDescriptor ip;
  ip.name = "T";
  ip.in_rate = in_rate;
  ip.out_rate = out_rate;
  ip.latency = latency;
  ip.pipelined = pipelined;
  ip.functions.push_back({"f", 5000, n_in, n_out});
  return ip;
}

TEST(TemplatePhases, NonPipelinedType0FeedsEverythingFirst) {
  // A combinational array consumes all inputs before the first output: the
  // template must have no steady section (fill covers every input batch).
  const iface::KernelParams k;
  const iplib::IpDescriptor ip = ip_with(4, 4, 24, /*pipelined=*/false, 64, 64);
  const iface::InterfaceProgram p =
      iface::expand_template(iface::InterfaceType::kType0, ip, ip.functions[0], k);
  EXPECT_EQ(p.find_section("steady"), nullptr);
  ASSERT_NE(p.find_section("fill"), nullptr);
  EXPECT_EQ(p.find_section("fill")->iterations, 32);  // all input batches
  ASSERT_NE(p.find_section("drain"), nullptr);
  EXPECT_EQ(p.find_section("drain")->iterations, 32);
}

TEST(TemplatePhases, AsymmetricOutputCounts) {
  // Few results (correlator-style): drain is short, fill long.
  const iface::KernelParams k;
  const iplib::IpDescriptor ip = ip_with(4, 4, 8, true, 320, 8);
  const iface::InterfaceProgram p =
      iface::expand_template(iface::InterfaceType::kType0, ip, ip.functions[0], k);
  std::int64_t in_iters = 0, out_iters = 0;
  if (const auto* s = p.find_section("fill")) in_iters += s->iterations;
  if (const auto* s = p.find_section("steady")) {
    in_iters += s->iterations;
    out_iters += s->iterations;
  }
  if (const auto* s = p.find_section("drain")) out_iters += s->iterations;
  EXPECT_EQ(in_iters, 160);  // 320/2 batches in
  EXPECT_EQ(out_iters, 4);   // 8/2 batches out
}

TEST(TemplatePhases, Type2SplitRatesScheduleIndependently) {
  const iface::KernelParams k;
  const iplib::IpDescriptor ip = ip_with(1, 4, 8, true, 64, 64);
  const iface::InterfaceProgram p =
      iface::expand_template(iface::InterfaceType::kType2, ip, ip.functions[0], k);
  ASSERT_NE(p.find_section("dma_in"), nullptr);
  ASSERT_NE(p.find_section("dma_out"), nullptr);
  EXPECT_EQ(p.find_section("dma_in")->words(), 1);   // strobe every cycle
  EXPECT_EQ(p.find_section("dma_out")->words(), 4);  // strobe every 4th
}

// --- packer properties on random MOP lists ---------------------------------------

class PackerProperty : public ::testing::TestWithParam<int> {};

TEST_P(PackerProperty, ScheduleIsCompleteAndFieldSafe) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::uniform_int_distribution<int> kind_d(0, 19);

  ir::MopList mops;
  for (int i = 0; i < 200; ++i) {
    ir::Mop m;
    m.kind = static_cast<ir::MopKind>(kind_d(rng));
    if (m.kind == ir::MopKind::kLoad || m.kind == ir::MopKind::kStore ||
        m.kind == ir::MopKind::kAguAdd) {
      m.mem = (rng() % 2) ? ir::Memory::kX : ir::Memory::kY;
    }
    if (m.kind == ir::MopKind::kCall || m.kind == ir::MopKind::kIpDispatch) {
      m.callee = ir::FuncId{0};
    }
    mops.add(m);
  }
  const std::size_t cycles = mops.pack_schedule();
  EXPECT_LE(cycles, mops.size());
  EXPECT_GE(cycles * ir::kNumUFields, mops.size());

  // Every MOP appears exactly once and no word double-books a field.
  std::vector<int> seen(mops.size(), 0);
  for (const ir::MicroWord& w : mops.schedule()) {
    for (std::size_t f = 0; f < ir::kNumUFields; ++f) {
      if (w.field[f].valid()) seen[w.field[f].value()]++;
    }
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackerProperty, ::testing::Range(0, 10));

// --- MiniC scoping corners ---------------------------------------------------------

TEST(McScoping, BlockLocalsVisibleAfterBlock) {
  // MiniC has function scope (like pre-C99 C): a block-local decl stays
  // visible for the rest of the function.
  support::DiagnosticEngine diags;
  auto m = minic::mc_compile_source(R"(
void main() {
  { int t; t = 1; }
  t = 2;
}
)",
                                    "t", diags);
  EXPECT_TRUE(m.has_value()) << diags.render_all();
}

TEST(McScoping, LoopVarUsableInBody) {
  support::DiagnosticEngine diags;
  auto m = minic::mc_compile_source(R"(
int a[8];
void main() {
  for (i = 0; i < 8; i = i + 1) { a[i] = i; }
}
)",
                                    "t", diags);
  ASSERT_TRUE(m.has_value()) << diags.render_all();
}

TEST(McScoping, StaticallyEmptyLoopDropped) {
  support::DiagnosticEngine diags;
  auto m = minic::mc_compile_source(R"(
int a;
void main() {
  a = 1;
  for (i = 5; i < 5; i = i + 1) { a = 2; }
}
)",
                                    "t", diags);
  ASSERT_TRUE(m.has_value()) << diags.render_all();
  const ir::Function& main_fn = m->function(m->entry());
  for (const ir::StmtId id : main_fn.body()) {
    EXPECT_NE(main_fn.stmt(id).kind, ir::StmtKind::kLoop);
  }
}

// --- flattening depth cap -----------------------------------------------------------

TEST(FlattenDepth, CapRemovesDeepImps) {
  workloads::Workload w = workloads::jpeg_encoder();
  isel::EnumerateOptions shallow;
  shallow.max_flatten_depth = 1;
  select::Flow flow(w.module, w.library, shallow);
  for (const isel::Imp& imp : flow.imp_database().imps()) {
    EXPECT_LE(imp.flatten_depth, 1) << imp.describe(w.library);
  }
}

TEST(FlattenDepth, DeeperFlatteningNeverReducesMaxGain) {
  workloads::Workload w = workloads::jpeg_encoder();
  std::int64_t prev = -1;
  for (int cap : {0, 1, 2, 3}) {
    isel::EnumerateOptions opts;
    opts.max_flatten_depth = cap;
    select::Flow flow(w.module, w.library, opts);
    const std::int64_t gmax = flow.max_feasible_gain();
    EXPECT_GE(gmax, prev) << "cap " << cap;
    prev = gmax;
  }
}

}  // namespace
}  // namespace partita

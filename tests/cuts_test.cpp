// Cut-validity property tests for the root cutting planes (ilp/cuts.hpp).
//
// The contract under test: separation never returns an inequality that cuts
// off an integer-feasible point of the original model. On small all-binary
// models this is checked exhaustively (every 0/1 point); on the real
// selection models it is checked against the ILP optimum, the independent
// exhaustive oracle (src/oracle), and the cuts-on/cuts-off answer equality
// that canonical tie-breaking guarantees.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "ilp/branch_bound.hpp"
#include "ilp/cuts.hpp"
#include "ilp/model.hpp"
#include "ilp/presolve.hpp"
#include "ilp/simplex.hpp"
#include "oracle/exhaustive.hpp"
#include "select/flow.hpp"
#include "workloads/random_workload.hpp"
#include "workloads/workloads.hpp"

namespace partita::ilp {
namespace {

double cut_activity(const Cut& cut, const std::vector<double>& x) {
  double a = 0.0;
  for (const Term& t : cut.terms) a += t.coeff * x[t.var];
  return a;
}

bool cut_satisfied(const Cut& cut, const std::vector<double>& x, double tol = 1e-7) {
  const double a = cut_activity(cut, x);
  switch (cut.sense) {
    case RowSense::kLessEqual:
      return a <= cut.rhs + tol;
    case RowSense::kGreaterEqual:
      return a >= cut.rhs - tol;
    case RowSense::kEqual:
      return std::abs(a - cut.rhs) <= tol;
  }
  return false;
}

/// Separates at the LP-relaxation optimum and checks every returned cut
/// against every integer-feasible 0/1 point of the (all-binary) model.
/// Returns the number of cuts separated so callers can assert coverage.
std::size_t check_cuts_exhaustively(const Model& m) {
  const std::size_t n = m.var_count();
  EXPECT_LE(n, 20u) << "exhaustive check needs a small model";
  std::vector<double> lo(n), hi(n);
  for (std::size_t j = 0; j < n; ++j) {
    lo[j] = m.var(static_cast<VarIndex>(j)).lower;
    hi[j] = m.var(static_cast<VarIndex>(j)).upper;
  }
  const PresolveResult pre = presolve(m, lo, hi);
  if (pre.infeasible) return 0;
  const LpResult r = solve_lp(m, pre.lower, pre.upper, {});
  if (r.status != LpStatus::kOptimal) return 0;
  const std::vector<Cut> cuts = separate_cuts(m, pre.cliques, r.x, pre.lower, pre.upper);

  // Every cut must be violated by the fractional point it was separated at...
  for (const Cut& cut : cuts) {
    EXPECT_FALSE(cut_satisfied(cut, r.x, 1e-9))
        << cut.name << " returned but not violated at the fractional point";
  }
  // ...and satisfied by every integer-feasible point of the original model.
  std::vector<double> x(n, 0.0);
  for (std::uint32_t bits = 0; bits < (1u << n); ++bits) {
    for (std::size_t j = 0; j < n; ++j) x[j] = (bits >> j) & 1u ? 1.0 : 0.0;
    if (!m.is_feasible(x)) continue;
    for (const Cut& cut : cuts) {
      EXPECT_TRUE(cut_satisfied(cut, x))
          << cut.name << " cuts off feasible point bits=" << bits;
    }
  }
  return cuts.size();
}

TEST(Cuts, ImplicationCutsFromFixedChargeRow) {
  // min -3 x1 - 2 x2 + 10 z  st  x1 + x2 - 4 z <= 0. The LP relaxation sets
  // z = (x1 + x2) / 4 fractional, so the disaggregated x_j <= z cuts fire.
  Model m;
  const VarIndex x1 = m.add_binary("x1", -3.0);
  const VarIndex x2 = m.add_binary("x2", -2.0);
  const VarIndex z = m.add_binary("z", 10.0);
  m.add_row("fc", {{x1, 1.0}, {x2, 1.0}, {z, -4.0}}, RowSense::kLessEqual, 0.0);
  EXPECT_GT(check_cuts_exhaustively(m), 0u);
}

TEST(Cuts, CliqueCutFromPairwiseConflicts) {
  // Pairwise at-most-ones over {x1,x2,x3}; LP optimum is all-half, which the
  // merged 3-clique  x1 + x2 + x3 <= 1  cuts off.
  Model m;
  const VarIndex x1 = m.add_binary("x1", -1.0);
  const VarIndex x2 = m.add_binary("x2", -1.0);
  const VarIndex x3 = m.add_binary("x3", -1.0);
  m.add_row("c12", {{x1, 1.0}, {x2, 1.0}}, RowSense::kLessEqual, 1.0);
  m.add_row("c23", {{x2, 1.0}, {x3, 1.0}}, RowSense::kLessEqual, 1.0);
  m.add_row("c13", {{x1, 1.0}, {x3, 1.0}}, RowSense::kLessEqual, 1.0);
  EXPECT_GT(check_cuts_exhaustively(m), 0u);
}

TEST(Cuts, LiftedCoverCutFromKnapsackRow) {
  // max 5 x1 + 5 x2 + 4 x3  st  3 x1 + 3 x2 + 3 x3 <= 7: the LP packs one
  // variable fractionally (7/3 total weight), and the minimal cover
  // {x1, x2, x3} yields  x1 + x2 + x3 <= 2, violated at the fractional point.
  Model m;
  const VarIndex x1 = m.add_binary("x1", -5.0);
  const VarIndex x2 = m.add_binary("x2", -5.0);
  const VarIndex x3 = m.add_binary("x3", -4.0);
  m.add_row("cap", {{x1, 3.0}, {x2, 3.0}, {x3, 3.0}}, RowSense::kLessEqual, 7.0);
  EXPECT_GT(check_cuts_exhaustively(m), 0u);
}

TEST(Cuts, RandomSmallModelsNeverCutFeasiblePoints) {
  // Random all-binary models mixing the three row shapes the separator
  // understands. The property (no feasible point cut off) must hold no
  // matter whether any particular instance separates cuts.
  std::mt19937 rng(20260808u);
  std::size_t separated = 0;
  for (int inst = 0; inst < 40; ++inst) {
    const int n = 6 + static_cast<int>(rng() % 7);  // 6..12 binaries
    Model m;
    std::uniform_int_distribution<int> coeff(1, 6);
    std::uniform_int_distribution<int> obj(-8, -1);
    for (int j = 0; j < n; ++j)
      m.add_binary("x" + std::to_string(j), static_cast<double>(obj(rng)));
    const int rows = 2 + static_cast<int>(rng() % 4);
    for (int r = 0; r < rows; ++r) {
      const int shape = static_cast<int>(rng() % 3);
      std::vector<Term> terms;
      if (shape == 0) {  // at-most-one over a random subset
        for (int j = 0; j < n; ++j)
          if (rng() % 3 == 0) terms.push_back({static_cast<VarIndex>(j), 1.0});
        if (terms.size() < 2) continue;
        m.add_row("amo" + std::to_string(r), std::move(terms),
                  RowSense::kLessEqual, 1.0);
      } else if (shape == 1) {  // knapsack
        double total = 0.0;
        for (int j = 0; j < n; ++j) {
          if (rng() % 2) continue;
          const double c = coeff(rng);
          total += c;
          terms.push_back({static_cast<VarIndex>(j), c});
        }
        if (terms.size() < 3) continue;
        m.add_row("cap" + std::to_string(r), std::move(terms),
                  RowSense::kLessEqual, std::max(1.0, total / 2.0));
      } else {  // fixed charge onto the last binary
        const VarIndex z = static_cast<VarIndex>(n - 1);
        for (int j = 0; j + 1 < n; ++j)
          if (rng() % 2) terms.push_back({static_cast<VarIndex>(j), 1.0});
        if (terms.size() < 2) continue;
        terms.push_back({z, -static_cast<double>(n)});
        m.add_row("fc" + std::to_string(r), std::move(terms),
                  RowSense::kLessEqual, 0.0);
      }
    }
    separated += check_cuts_exhaustively(m);
  }
  EXPECT_GT(separated, 0u) << "property run never exercised a separated cut";
}

TEST(Cuts, SeparationIsDeterministic) {
  Model m;
  const VarIndex x1 = m.add_binary("x1", -5.0);
  const VarIndex x2 = m.add_binary("x2", -5.0);
  const VarIndex x3 = m.add_binary("x3", -4.0);
  const VarIndex z = m.add_binary("z", 6.0);
  m.add_row("cap", {{x1, 4.0}, {x2, 4.0}, {x3, 3.0}}, RowSense::kLessEqual, 7.0);
  m.add_row("fc", {{x1, 1.0}, {x2, 1.0}, {x3, 1.0}, {z, -3.0}},
            RowSense::kLessEqual, 0.0);
  std::vector<double> lo(m.var_count(), 0.0), hi(m.var_count(), 1.0);
  const PresolveResult pre = presolve(m, lo, hi);
  const LpResult r = solve_lp(m, pre.lower, pre.upper, {});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  const std::vector<Cut> a = separate_cuts(m, pre.cliques, r.x, pre.lower, pre.upper);
  const std::vector<Cut> b = separate_cuts(m, pre.cliques, r.x, pre.lower, pre.upper);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].rhs, b[i].rhs);
    ASSERT_EQ(a[i].terms.size(), b[i].terms.size());
    for (std::size_t t = 0; t < a[i].terms.size(); ++t) {
      EXPECT_EQ(a[i].terms[t].var, b[i].terms[t].var);
      EXPECT_EQ(a[i].terms[t].coeff, b[i].terms[t].coeff);
    }
  }
}

// --- selection models -------------------------------------------------------

TEST(Cuts, SelectionModelOptimumSurvivesSeparation) {
  // Cuts separated at the selection root must keep the true integer optimum
  // (solved without cuts) feasible -- on the seed apps and a random model.
  struct Case {
    const char* name;
    workloads::Workload w;
  };
  workloads::RandomWorkloadParams p;
  p.call_sites = 16;
  p.leaf_functions = 5;
  p.ips = 8;
  const Case cases[] = {
      {"gsm_decoder", workloads::gsm_decoder()},
      {"random_16site", workloads::random_workload(p, 4242)},
  };
  for (const Case& c : cases) {
    select::Flow flow(c.w.module, c.w.library);
    const std::int64_t gmax = flow.max_feasible_gain();
    const Model m = flow.selector().build_model(
        std::vector<std::int64_t>(flow.paths().size(), gmax / 2), {});
    std::vector<double> lo(m.var_count()), hi(m.var_count());
    for (std::size_t j = 0; j < m.var_count(); ++j) {
      lo[j] = m.var(static_cast<VarIndex>(j)).lower;
      hi[j] = m.var(static_cast<VarIndex>(j)).upper;
    }
    const PresolveResult pre = presolve(m, lo, hi);
    ASSERT_FALSE(pre.infeasible) << c.name;
    const LpResult root = solve_lp(m, pre.lower, pre.upper, {});
    ASSERT_EQ(root.status, LpStatus::kOptimal) << c.name;
    const std::vector<Cut> cuts =
        separate_cuts(m, pre.cliques, root.x, pre.lower, pre.upper);

    IlpOptions no_cuts;
    no_cuts.cuts = false;
    const IlpResult exact = solve_ilp(m, no_cuts);
    ASSERT_TRUE(exact.has_solution) << c.name;
    for (const Cut& cut : cuts) {
      EXPECT_TRUE(cut_satisfied(cut, exact.x))
          << c.name << ": " << cut.name << " cuts off the integer optimum";
    }
  }
}

TEST(Cuts, CutsPreserveCanonicalSelection) {
  // With canonical tie-breaking the reported selection must be bit-identical
  // with cuts on and off: cuts shrink the search, never the answer.
  workloads::RandomWorkloadParams p;
  p.call_sites = 20;
  p.leaf_functions = 6;
  p.ips = 10;
  const workloads::Workload w = workloads::random_workload(p, 777);
  select::Flow flow(w.module, w.library);
  const std::int64_t gmax = flow.max_feasible_gain();
  for (const std::int64_t rg : {gmax / 4, gmax / 2, gmax}) {
    select::SelectOptions on, off;
    off.ilp.cuts = false;
    const select::Selection a = flow.select(rg, on);
    const select::Selection b = flow.select(rg, off);
    EXPECT_EQ(a.feasible, b.feasible) << "rg=" << rg;
    EXPECT_EQ(a.chosen, b.chosen) << "rg=" << rg;
    EXPECT_EQ(a.min_path_gain, b.min_path_gain) << "rg=" << rg;
    EXPECT_DOUBLE_EQ(a.total_area(), b.total_area()) << "rg=" << rg;
  }
}

TEST(Cuts, OracleOptimumNeverCutOff) {
  // Differential audit against the independent exhaustive oracle: on small
  // random instances the cut-enabled ILP must land exactly on the oracle's
  // optimal area, and its decoded selection must pass the oracle's
  // feasibility checker.
  for (const std::uint64_t seed : {11u, 23u, 58u}) {
    workloads::RandomWorkloadParams p;
    p.call_sites = 10;
    p.leaf_functions = 4;
    p.ips = 6;
    const workloads::Workload w = workloads::random_workload(p, seed);
    select::Flow flow(w.module, w.library);
    const std::int64_t gmax = flow.max_feasible_gain();
    for (const std::int64_t rg : {gmax / 3, (2 * gmax) / 3, gmax}) {
      const select::Selection sel = flow.select(rg, {});  // cuts on by default
      const oracle::OracleResult ref = oracle::exhaustive_select(
          flow.imp_database(), flow.library(), flow.entry_cdfg(), flow.paths(), rg);
      ASSERT_TRUE(ref.exhausted) << "seed=" << seed << " rg=" << rg;
      ASSERT_EQ(sel.feasible, ref.feasible) << "seed=" << seed << " rg=" << rg;
      if (!ref.feasible) continue;
      EXPECT_NEAR(sel.total_area(), ref.total_area, 1e-6)
          << "seed=" << seed << " rg=" << rg
          << ": a cut (or the search) lost the oracle optimum";
      EXPECT_EQ(oracle::check_selection(flow.imp_database(), flow.entry_cdfg(),
                                        flow.paths(), rg, sel.chosen),
                "")
          << "seed=" << seed << " rg=" << rg;
    }
  }
}

}  // namespace
}  // namespace partita::ilp

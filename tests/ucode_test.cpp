// Tests for instruction encoding (P/C/S classes, Huffman opcodes) and the
// u-ROM two-level optimization.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "iface/program.hpp"
#include "ir/mop.hpp"
#include "ucode/isa.hpp"
#include "ucode/urom.hpp"

namespace partita::ucode {
namespace {

// --- instruction set ------------------------------------------------------------

TEST(Isa, SeedsPClass) {
  InstructionSet isa;
  isa.seed_p_class();
  EXPECT_EQ(isa.count_of(InstrClass::kP), isa.size());
  EXPECT_GE(isa.size(), 16u);  // add..ret primitives
}

TEST(Isa, WeightedPClassSeed) {
  InstructionSet isa;
  std::vector<double> freq(32, 0.0);
  freq[static_cast<std::size_t>(ir::MopKind::kMac)] = 500.0;
  isa.seed_p_class_weighted(freq, /*fallback=*/2.0);
  bool found_mac = false;
  for (const Instruction& i : isa.instructions()) {
    if (i.name == "mac") {
      EXPECT_DOUBLE_EQ(i.frequency, 500.0);
      found_mac = true;
    } else {
      EXPECT_DOUBLE_EQ(i.frequency, 2.0);
    }
  }
  EXPECT_TRUE(found_mac);
  // The hot MAC must get one of the shortest opcodes.
  isa.encode();
  int min_bits = 99;
  for (const Instruction& i : isa.instructions()) min_bits = std::min(min_bits, i.opcode_bits);
  for (const Instruction& i : isa.instructions()) {
    if (i.name == "mac") {
      EXPECT_EQ(i.opcode_bits, min_bits);
    }
  }
}

TEST(Isa, FixedWidthBits) {
  InstructionSet isa;
  isa.seed_p_class();  // 18 instructions -> 5 bits
  EXPECT_EQ(isa.fixed_opcode_bits(), 5);
  for (int i = 0; i < 14; ++i) {
    Instruction extra;
    extra.name = "x" + std::to_string(i);
    extra.cls = InstrClass::kC;
    isa.add(extra);
  }
  EXPECT_EQ(isa.fixed_opcode_bits(), 5);  // 32 exactly
  Instruction one_more;
  one_more.name = "y";
  isa.add(one_more);
  EXPECT_EQ(isa.fixed_opcode_bits(), 6);  // 33 -> 6 bits
}

TEST(Isa, HuffmanCodesArePrefixFree) {
  InstructionSet isa;
  isa.seed_p_class(1.0);
  Instruction hot;
  hot.name = "hot_s";
  hot.cls = InstrClass::kS;
  hot.frequency = 1000;
  isa.add(hot);
  isa.encode();
  EXPECT_TRUE(isa.codes_are_prefix_free());
}

TEST(Isa, HotInstructionsGetShortCodes) {
  InstructionSet isa;
  Instruction hot, cold1, cold2;
  hot.name = "hot";
  hot.frequency = 100;
  cold1.name = "c1";
  cold1.frequency = 1;
  cold2.name = "c2";
  cold2.frequency = 1;
  isa.add(hot);
  isa.add(cold1);
  isa.add(cold2);
  isa.encode();
  EXPECT_EQ(isa.instructions()[0].opcode_bits, 1);
  EXPECT_EQ(isa.instructions()[1].opcode_bits, 2);
  EXPECT_EQ(isa.instructions()[2].opcode_bits, 2);
}

TEST(Isa, ExpectedBitsBeatFixedOnSkewedFrequencies) {
  InstructionSet isa;
  for (int i = 0; i < 16; ++i) {
    Instruction instr;
    instr.name = "i" + std::to_string(i);
    instr.frequency = i == 0 ? 10000 : 1;
    isa.add(instr);
  }
  isa.encode();
  EXPECT_LT(isa.expected_opcode_bits(), isa.fixed_opcode_bits());
}

TEST(Isa, UniformFrequenciesNearFixed) {
  InstructionSet isa;
  for (int i = 0; i < 16; ++i) {
    Instruction instr;
    instr.name = "i" + std::to_string(i);
    instr.frequency = 1;
    isa.add(instr);
  }
  isa.encode();
  EXPECT_NEAR(isa.expected_opcode_bits(), 4.0, 1e-9);  // 16 equal -> 4 bits
}

TEST(Isa, SingleInstructionEdgeCase) {
  InstructionSet isa;
  Instruction only;
  only.name = "solo";
  isa.add(only);
  isa.encode();
  EXPECT_EQ(isa.instructions()[0].opcode_bits, 1);
  EXPECT_TRUE(isa.codes_are_prefix_free());
}

TEST(Isa, DumpShowsClassesAndCodes) {
  InstructionSet isa;
  isa.seed_p_class();
  isa.encode();
  const std::string d = isa.dump();
  EXPECT_NE(d.find("P | add"), std::string::npos);
  EXPECT_NE(d.find("opcode"), std::string::npos);
}

// --- u-ROM -------------------------------------------------------------------

TEST(Urom, WordSignatures) {
  iface::IfLine line{{iface::IfOp::kLoadX, iface::IfOp::kLoadY}};
  EXPECT_EQ(word_from_line(line).signature, "load_x+load_y");
  EXPECT_EQ(word_from_line(iface::IfLine{}).signature, "nop");
}

TEST(Urom, DeduplicatesAcrossSequences) {
  Urom rom(64);
  rom.add_sequence("a", {{"w1"}, {"w2"}, {"w1"}});
  rom.add_sequence("b", {{"w2"}, {"w3"}});
  rom.optimize();
  EXPECT_EQ(rom.nano_store().size(), 3u);  // w1 w2 w3
  const UromStats s = rom.stats();
  EXPECT_EQ(s.raw_words, 5);
  EXPECT_EQ(s.unique_words, 3);
  EXPECT_EQ(s.pointer_bits, 2);
  EXPECT_EQ(s.raw_bits, 5 * 64);
  EXPECT_EQ(s.optimized_bits, 3 * 64 + 5 * 2);
  EXPECT_LT(s.compression_ratio(), 1.0);
}

TEST(Urom, PointerRowsReconstructSequences) {
  Urom rom;
  rom.add_sequence("a", {{"x"}, {"y"}, {"x"}});
  rom.optimize();
  const auto& row = rom.pointer_row(0);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(rom.nano_store()[row[0]].signature, "x");
  EXPECT_EQ(rom.nano_store()[row[1]].signature, "y");
  EXPECT_EQ(rom.nano_store()[row[2]].signature, "x");
}

TEST(Urom, InterfaceTemplatesShareVocabulary) {
  // Two different IPs' type-0 templates share most micro-words.
  iplib::IpDescriptor a;
  a.name = "A";
  a.functions.push_back({"f", 1000, 64, 64});
  iplib::IpDescriptor b = a;
  b.name = "B";
  b.functions[0].n_in = 32;
  const iface::KernelParams k;

  Urom rom;
  rom.add_sequence(
      "a", words_from_program(iface::expand_template(iface::InterfaceType::kType0, a,
                                                     a.functions[0], k)));
  rom.add_sequence(
      "b", words_from_program(iface::expand_template(iface::InterfaceType::kType0, b,
                                                     b.functions[0], k)));
  rom.optimize();
  const UromStats s = rom.stats();
  EXPECT_LT(s.unique_words, s.raw_words);  // sharing happened
  EXPECT_LT(s.compression_ratio(), 0.8);
}

TEST(Urom, EmptyRomStats) {
  Urom rom;
  rom.optimize();
  const UromStats s = rom.stats();
  EXPECT_EQ(s.raw_words, 0);
  EXPECT_EQ(s.optimized_bits, 0);
  EXPECT_DOUBLE_EQ(s.compression_ratio(), 1.0);
}

}  // namespace
}  // namespace partita::ucode

// Retry policy, injectable clock, cooperative cancellation and the
// thread-safety contract of the fault injector -- the deterministic building
// blocks under the solve service. Everything here runs on fake or counting
// clocks: no real sleeps, no timing margins.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "ilp/branch_bound.hpp"
#include "select/flow.hpp"
#include "support/cancel.hpp"
#include "support/clock.hpp"
#include "support/fault_injection.hpp"
#include "support/result.hpp"
#include "support/retry.hpp"
#include "workloads/random_workload.hpp"
#include "workloads/workloads.hpp"

namespace partita {
namespace {

// --- RetryPolicy ---------------------------------------------------------------

TEST(RetryPolicy, BackoffIsGeometricAndClampedWithoutJitter) {
  support::RetryPolicy p;
  p.base_backoff_micros = 1000;
  p.multiplier = 3.0;
  p.max_backoff_micros = 7000;
  p.jitter = 0.0;
  EXPECT_EQ(p.backoff_micros(1), 1000);  // base * 3^0
  EXPECT_EQ(p.backoff_micros(2), 3000);  // base * 3^1
  EXPECT_EQ(p.backoff_micros(3), 7000);  // base * 3^2 = 9000, clamped
  EXPECT_EQ(p.backoff_micros(4), 7000);  // stays at the cap
}

TEST(RetryPolicy, JitterIsDeterministicInSeedAndAttempt) {
  support::RetryPolicy p;
  p.base_backoff_micros = 10000;
  p.jitter = 0.25;
  p.jitter_seed = 42;
  // Pure in (policy, attempt): same inputs, same backoff, every call.
  for (int attempt = 1; attempt <= 5; ++attempt) {
    EXPECT_EQ(p.backoff_micros(attempt), p.backoff_micros(attempt));
  }
  // Bounded by the jitter band around the nominal (pre-jitter) backoff.
  support::RetryPolicy nominal = p;
  nominal.jitter = 0.0;
  for (int attempt = 1; attempt <= 5; ++attempt) {
    const double nom = static_cast<double>(nominal.backoff_micros(attempt));
    const double got = static_cast<double>(p.backoff_micros(attempt));
    EXPECT_GE(got, nom * 0.75 - 1.0);
    EXPECT_LE(got, nom * 1.25 + 1.0);
  }
  // A different seed scatters differently somewhere in the first attempts.
  support::RetryPolicy other = p;
  other.jitter_seed = 43;
  bool differs = false;
  for (int attempt = 1; attempt <= 5; ++attempt) {
    differs |= other.backoff_micros(attempt) != p.backoff_micros(attempt);
  }
  EXPECT_TRUE(differs);
}

TEST(RetryPolicy, RetriesOnlyTransientErrorsBelowTheAttemptCap) {
  support::RetryPolicy p;
  p.max_attempts = 3;
  const support::Error transient = support::Error::transient("flaky");
  const support::Error permanent{"bad input", {}};
  const support::Error cancelled = support::Error::cancelled("stop");
  EXPECT_TRUE(p.should_retry(transient, 1));
  EXPECT_TRUE(p.should_retry(transient, 2));
  EXPECT_FALSE(p.should_retry(transient, 3));  // cap counts total attempts
  EXPECT_FALSE(p.should_retry(permanent, 1));
  EXPECT_FALSE(p.should_retry(cancelled, 1));
}

TEST(RetryPolicy, ErrorKindRoundTrips) {
  EXPECT_EQ(support::Error::transient("x").kind, support::ErrorKind::kTransient);
  EXPECT_EQ(support::Error::cancelled("x").kind, support::ErrorKind::kCancelled);
  EXPECT_EQ((support::Error{"x", {}}).kind, support::ErrorKind::kPermanent);
  EXPECT_STREQ(support::to_string(support::ErrorKind::kTransient), "transient");
  EXPECT_STREQ(support::to_string(support::ErrorKind::kPermanent), "permanent");
  EXPECT_STREQ(support::to_string(support::ErrorKind::kCancelled), "cancelled");
}

// --- FakeClock -----------------------------------------------------------------

TEST(FakeClock, SleepAdvancesTimeInstantlyAndRecordsIt) {
  support::FakeClock clock(1000);
  EXPECT_EQ(clock.now_micros(), 1000);
  clock.advance_micros(500);
  EXPECT_EQ(clock.now_micros(), 1500);
  clock.sleep_micros(2500);  // returns immediately, no real blocking
  EXPECT_EQ(clock.now_micros(), 4000);
  EXPECT_EQ(clock.slept_micros(), 2500);
  clock.sleep_micros(-10);  // non-positive sleeps are ignored
  EXPECT_EQ(clock.slept_micros(), 2500);
}

// --- cooperative cancellation ----------------------------------------------------

TEST(Cancellation, DefaultTokenNeverCancels) {
  const support::CancelToken token;
  EXPECT_FALSE(token.cancelled());
}

TEST(Cancellation, SourceSignalsEveryToken) {
  support::CancelSource src;
  const support::CancelToken t1 = src.token();
  const support::CancelToken t2 = src.token();
  EXPECT_FALSE(t1.cancelled());
  src.cancel();
  EXPECT_TRUE(t1.cancelled());
  EXPECT_TRUE(t2.cancelled());
}

TEST(Cancellation, PreCancelledTokenStopsBeforeTheFirstWave) {
  const workloads::Workload w = workloads::gsm_encoder();
  const auto flow = select::Flow::create(w.module, w.library);
  ASSERT_TRUE(flow.ok());

  support::CancelSource src;
  src.cancel();
  select::SelectOptions opt;
  opt.ilp.budget.cancel = src.token();
  const select::Selection sel =
      flow.value()->select(flow.value()->max_feasible_gain() / 2, opt);
  EXPECT_TRUE(sel.truncated);
  EXPECT_EQ(sel.solver.termination, ilp::TerminationReason::kCancelled);
  EXPECT_EQ(sel.solver.waves, 0);
  // Cancellation asked the work to stop, not for a cheaper answer: the
  // greedy fallback rung must NOT fire.
  EXPECT_FALSE(sel.greedy_fallback);
  EXPECT_FALSE(sel.feasible);
  EXPECT_EQ(sel.rung, select::DegradationRung::kInfeasible);
}

// A clock that flips a cancel source on its Nth observation. The solver
// reads the clock once at solve start and once per wave-boundary checkpoint,
// so "cancel at the Nth read" bounds the observable cancellation latency in
// *waves* -- the contract the service relies on -- with zero wall-clock time.
class CancellingClock final : public support::Clock {
 public:
  CancellingClock(support::CancelSource* src, int cancel_at_call)
      : src_(src), cancel_at_call_(cancel_at_call) {}

  std::int64_t now_micros() override {
    if (++calls_ == cancel_at_call_) src_->cancel();
    return calls_;  // creeps forward 1us per read: never expires a deadline
  }
  void sleep_micros(std::int64_t) override {}

  int calls() const { return calls_; }

 private:
  support::CancelSource* src_;
  int cancel_at_call_;
  int calls_ = 0;
};

TEST(Cancellation, MidSolveCancelTerminatesWithinOneWaveBoundary) {
  // A larger random instance so the search runs for many waves when left
  // alone; the cancelling clock stops it after N clock reads.
  workloads::RandomWorkloadParams params;
  params.leaf_functions = 12;
  params.call_sites = 48;
  params.ips = 16;
  const workloads::Workload w = workloads::random_workload(params, /*seed=*/3);
  const auto flow = select::Flow::create(w.module, w.library);
  ASSERT_TRUE(flow.ok());
  const std::int64_t rg = flow.value()->max_feasible_gain() / 2;

  // Sanity: uncancelled, the search needs well over N waves.
  const select::Selection free_run = flow.value()->select(rg);
  ASSERT_GT(free_run.solver.waves, 8);

  constexpr int kCancelAtCall = 5;
  support::CancelSource src;
  CancellingClock clock(&src, kCancelAtCall);
  select::SelectOptions opt;
  // A huge (but enabled) time limit keeps the deadline check -- and with it
  // the per-boundary clock read -- live without ever expiring.
  opt.ilp.budget.time_limit_seconds = 1e9;
  opt.ilp.budget.clock = &clock;
  opt.ilp.budget.cancel = src.token();
  const select::Selection sel = flow.value()->select(rg, opt);

  EXPECT_EQ(sel.solver.termination, ilp::TerminationReason::kCancelled);
  EXPECT_TRUE(sel.truncated);
  // Reads: 1 at solve start + 1 per boundary; the cancel lands at read
  // kCancelAtCall and must be observed at the *next* boundary check, i.e.
  // within one wave -- never later.
  EXPECT_LE(sel.solver.waves, kCancelAtCall);
  EXPECT_GE(clock.calls(), kCancelAtCall);
}

// --- FaultInjector thread safety -------------------------------------------------

TEST(FaultInjectorThreads, StickyTripIsVisibleToEveryThreadAndLosesNoHits) {
  auto& fi = support::FaultInjector::instance();
  fi.arm("test.sticky", /*trip_at=*/64, /*sticky=*/true);
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 100;
  std::atomic<int> trips{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        if (support::fault_should_trip("test.sticky")) ++trips;
      }
    });
  }
  for (std::thread& t : pool) t.join();
  // fetch_add never loses a checkpoint...
  EXPECT_EQ(fi.hits("test.sticky"), kThreads * kCallsPerThread);
  // ...and once tripped, sticky stays tripped: everything from the trip_at-th
  // hit on fires, and the site keeps firing after the threads are gone.
  EXPECT_EQ(trips.load(), kThreads * kCallsPerThread - 63);
  EXPECT_TRUE(support::fault_should_trip("test.sticky"));
  fi.disarm("test.sticky");
  EXPECT_FALSE(support::fault_should_trip("test.sticky"));
}

TEST(FaultInjectorThreads, NonStickyTripFiresExactlyOnceAcrossThreads) {
  auto& fi = support::FaultInjector::instance();
  fi.arm("test.oneshot", /*trip_at=*/37, /*sticky=*/false);
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 50;
  std::atomic<int> trips{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        if (support::fault_should_trip("test.oneshot")) ++trips;
      }
    });
  }
  for (std::thread& t : pool) t.join();
  // Exactly one checkpoint -- whichever thread drew hit #37 -- observed the
  // fault; a one-shot transient never fires twice.
  EXPECT_EQ(trips.load(), 1);
  EXPECT_EQ(fi.hits("test.oneshot"), kThreads * kCallsPerThread);
  fi.disarm("test.oneshot");
}

TEST(FaultInjectorThreads, RearmResetsTheHitCount) {
  auto& fi = support::FaultInjector::instance();
  fi.arm("test.rearm", /*trip_at=*/3);
  EXPECT_FALSE(support::fault_should_trip("test.rearm"));
  EXPECT_FALSE(support::fault_should_trip("test.rearm"));
  EXPECT_TRUE(support::fault_should_trip("test.rearm"));
  fi.arm("test.rearm", /*trip_at=*/2);  // fresh site: count starts over
  EXPECT_FALSE(support::fault_should_trip("test.rearm"));
  EXPECT_TRUE(support::fault_should_trip("test.rearm"));
  fi.disarm("test.rearm");
}

}  // namespace
}  // namespace partita

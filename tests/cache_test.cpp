// Cross-request solution cache, tier 1: fingerprint invariances (row
// permutation, term order) and sensitivities (values, flags, column order),
// LRU + byte eviction order, counter consistency (hits + misses == lookups,
// monotone evictions), per-tenant namespacing, invalidation (generation
// bump and option change), and the service-level read-through contract:
// hit/neighbor/miss answers bit-identical to cold solves. The heavier
// randomized stream proof lives in `partita_fuzz --mode cache` (tier 2 + CI).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ilp/fingerprint.hpp"
#include "select/flow.hpp"
#include "service/solution_cache.hpp"
#include "service/solve_service.hpp"
#include "workloads/random_workload.hpp"
#include "workloads/workloads.hpp"

namespace partita {
namespace {

// --- fingerprint ----------------------------------------------------------

/// Small reference model: 3 binaries, two rows.
ilp::Model base_model() {
  ilp::Model m;
  m.set_sense(ilp::Sense::kMinimize);
  const ilp::VarIndex a = m.add_binary("a", 2.0);
  const ilp::VarIndex b = m.add_binary("b", 3.0);
  const ilp::VarIndex c = m.add_binary("c", 5.0);
  m.add_row("r0", {{a, 1.0}, {b, 1.0}}, ilp::RowSense::kLessEqual, 1.0);
  m.add_row("r1", {{b, 4.0}, {c, 7.0}}, ilp::RowSense::kGreaterEqual, 6.0);
  return m;
}

TEST(Fingerprint, DeterministicAcrossRebuilds) {
  EXPECT_EQ(ilp::fingerprint_model(base_model()), ilp::fingerprint_model(base_model()));
  EXPECT_EQ(ilp::fingerprint_model(base_model()).hex().size(), 32u);
}

TEST(Fingerprint, RowPermutationAndTermOrderInvariant) {
  ilp::Model m = base_model();

  // Same constraints: rows swapped, terms within each row reversed, names
  // completely different (names must not matter).
  ilp::Model p;
  p.set_sense(ilp::Sense::kMinimize);
  const ilp::VarIndex a = p.add_binary("x", 2.0);
  const ilp::VarIndex b = p.add_binary("y", 3.0);
  const ilp::VarIndex c = p.add_binary("z", 5.0);
  p.add_row("other1", {{c, 7.0}, {b, 4.0}}, ilp::RowSense::kGreaterEqual, 6.0);
  p.add_row("other0", {{b, 1.0}, {a, 1.0}}, ilp::RowSense::kLessEqual, 1.0);

  EXPECT_EQ(ilp::fingerprint_model(m), ilp::fingerprint_model(p));
}

TEST(Fingerprint, SensitiveToEverythingMathematical) {
  const ilp::Fingerprint ref = ilp::fingerprint_model(base_model());

  {  // rhs change
    ilp::Model m = base_model();
    m.set_rhs(1, 7.0);
    EXPECT_NE(ilp::fingerprint_model(m), ref);
  }
  {  // objective change
    ilp::Model m = base_model();
    m.var(0).objective = 2.5;
    EXPECT_NE(ilp::fingerprint_model(m), ref);
  }
  {  // bound change (e.g. an imp_filter forcing a variable to 0)
    ilp::Model m = base_model();
    m.var(2).upper = 0.0;
    EXPECT_NE(ilp::fingerprint_model(m), ref);
  }
  {  // sense change
    ilp::Model m = base_model();
    m.set_sense(ilp::Sense::kMaximize);
    EXPECT_NE(ilp::fingerprint_model(m), ref);
  }
  {  // extra row
    ilp::Model m = base_model();
    m.add_row("r2", {{0, 1.0}}, ilp::RowSense::kLessEqual, 1.0);
    EXPECT_NE(ilp::fingerprint_model(m), ref);
  }
}

TEST(Fingerprint, ColumnOrderSensitiveByDesign) {
  // Same mathematical content, columns a/b swapped: the canonical
  // (lex-smallest) optimum depends on column order, so the fingerprint MUST
  // differ -- a permuted-equivalent instance may not share a cache entry.
  ilp::Model m = base_model();

  ilp::Model p;
  p.set_sense(ilp::Sense::kMinimize);
  const ilp::VarIndex b = p.add_binary("b", 3.0);
  const ilp::VarIndex a = p.add_binary("a", 2.0);
  const ilp::VarIndex c = p.add_binary("c", 5.0);
  p.add_row("r0", {{a, 1.0}, {b, 1.0}}, ilp::RowSense::kLessEqual, 1.0);
  p.add_row("r1", {{b, 4.0}, {c, 7.0}}, ilp::RowSense::kGreaterEqual, 6.0);

  EXPECT_NE(ilp::fingerprint_model(m), ilp::fingerprint_model(p));
}

TEST(Fingerprint, OptionsDigestCoversAnswerAffectingKnobsOnly) {
  ilp::IlpOptions opt;
  const std::uint64_t ref = ilp::digest_options(opt);

  ilp::IlpOptions o1 = opt;
  o1.max_nodes /= 2;
  EXPECT_NE(ilp::digest_options(o1), ref);

  ilp::IlpOptions o2 = opt;
  o2.canonical_ties = false;
  EXPECT_NE(ilp::digest_options(o2), ref);

  ilp::IlpOptions o3 = opt;
  o3.budget.time_limit_seconds = 1.0;
  EXPECT_NE(ilp::digest_options(o3), ref);

  // Thread count is answer-neutral (wave reduction is lane-ordered) and must
  // NOT fragment the cache.
  ilp::IlpOptions o4 = opt;
  o4.threads = 7;
  EXPECT_EQ(ilp::digest_options(o4), ref);
}

// --- SolutionCache mechanics ---------------------------------------------

service::SolutionCache::Key key_for(const std::string& tenant, std::uint64_t salt,
                                    std::int64_t gain) {
  service::SolutionCache::Key k;
  k.tenant = tenant;
  k.structure.hi = ilp::fp_mix(salt);
  k.structure.lo = ilp::fp_mix(salt + 1);
  k.options_digest = 42;
  k.gains = {gain};
  return k;
}

select::Selection dummy_selection(int tag) {
  select::Selection s;
  s.feasible = true;
  s.chosen = {static_cast<isel::ImpIndex>(tag)};
  s.rung = select::DegradationRung::kOptimal;
  return s;
}

TEST(SolutionCache, LruEvictionOrderAndRecencyRefresh) {
  service::SolutionCache::Config cc;
  cc.capacity = 3;
  cc.shards = 1;  // single shard: global LRU order is observable
  cc.max_bytes = 0;
  service::SolutionCache cache(cc);

  for (int i = 0; i < 3; ++i) {
    cache.insert(key_for("t", 7, i), dummy_selection(i), {}, {i});
  }
  // Touch key 0 so key 1 becomes the LRU victim.
  ASSERT_TRUE(cache.lookup(key_for("t", 7, 0)).has_value());
  cache.insert(key_for("t", 7, 3), dummy_selection(3), {}, {3});

  EXPECT_TRUE(cache.lookup(key_for("t", 7, 0)).has_value());
  EXPECT_FALSE(cache.lookup(key_for("t", 7, 1)).has_value());  // evicted
  EXPECT_TRUE(cache.lookup(key_for("t", 7, 2)).has_value());
  EXPECT_TRUE(cache.lookup(key_for("t", 7, 3)).has_value());

  const service::CacheStats st = cache.stats();
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.entries, 3u);
  EXPECT_EQ(st.hits + st.misses, st.lookups);
}

TEST(SolutionCache, ByteBudgetBoundsResidency) {
  service::SolutionCache::Config cc;
  cc.capacity = 1000;
  cc.shards = 1;
  cc.max_bytes = 4096;  // far below 100 entries' footprint
  service::SolutionCache cache(cc);

  select::Selection fat = dummy_selection(0);
  fat.degradation_detail.assign(512, 'x');
  for (int i = 0; i < 100; ++i) cache.insert(key_for("t", 9, i), fat, {}, {i});

  const service::CacheStats st = cache.stats();
  EXPECT_GT(st.evictions, 0u);
  EXPECT_LE(st.bytes, 4096u + 2048u);  // one oversize entry of slack
  EXPECT_GE(st.entries, 1u);           // never evicts below one entry
}

TEST(SolutionCache, CounterConsistencyUnderMixedTraffic) {
  service::SolutionCache::Config cc;
  cc.capacity = 8;
  cc.shards = 2;
  service::SolutionCache cache(cc);

  std::uint64_t prev_evictions = 0;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 16; ++i) {
      const auto k = key_for("t", 11, i);
      if (!cache.lookup(k).has_value()) {
        cache.insert(k, dummy_selection(i), {}, {i});
      }
    }
    const service::CacheStats st = cache.stats();
    EXPECT_EQ(st.hits + st.misses, st.lookups);
    EXPECT_GE(st.evictions, prev_evictions);  // monotone
    prev_evictions = st.evictions;
  }
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(SolutionCache, TenantNamespacingIsolatesEntries) {
  service::SolutionCache cache({});
  cache.insert(key_for("alice", 13, 5), dummy_selection(1), {}, {5});

  EXPECT_TRUE(cache.lookup(key_for("alice", 13, 5)).has_value());
  EXPECT_FALSE(cache.lookup(key_for("bob", 13, 5)).has_value());
  EXPECT_FALSE(cache.lookup(key_for("", 13, 5)).has_value());
}

TEST(SolutionCache, OptionChangeMissesAndInvalidationDropsStale) {
  service::SolutionCache cache({});
  const auto k = key_for("t", 17, 3);
  cache.insert(k, dummy_selection(1), {}, {3});

  // Different options digest: clean miss, entry untouched.
  auto k2 = k;
  k2.options_digest = 43;
  EXPECT_FALSE(cache.lookup(k2).has_value());
  EXPECT_TRUE(cache.lookup(k).has_value());

  // Generation invalidation: the same key now drops as stale.
  cache.invalidate_all();
  EXPECT_FALSE(cache.lookup(k).has_value());
  const service::CacheStats st = cache.stats();
  EXPECT_EQ(st.stale, 1u);
  EXPECT_GE(st.invalidations, 1u);
  EXPECT_EQ(st.hits + st.misses, st.lookups);

  // Re-insert after invalidation: serves again.
  cache.insert(k, dummy_selection(2), {}, {3});
  EXPECT_TRUE(cache.lookup(k).has_value());
}

TEST(SolutionCache, NearestPrefersClosestGainAndStaysInGroup) {
  service::SolutionCache cache({});
  ilp::BatchContext near_ctx;
  near_ctx.items = 7;  // marker to recognize the returned copy
  cache.insert(key_for("t", 19, 100), dummy_selection(1), {}, {100});
  cache.insert(key_for("t", 19, 140), dummy_selection(2), near_ctx, {140});
  cache.insert(key_for("t", 23, 130), dummy_selection(3), {}, {130});  // other group

  const service::CacheSeed seed = cache.nearest(key_for("t", 19, -1), {132});
  ASSERT_TRUE(seed.valid);
  EXPECT_EQ(seed.distance, 8);            // picked gains=140, not 100 or the
  EXPECT_EQ(seed.artifacts.items, 7);     // other-group 130
  EXPECT_TRUE(seed.artifacts.carry_search_state);

  EXPECT_FALSE(cache.nearest(key_for("t", 29, -1), {132}).valid);  // empty group
}

// --- service read-through: answers bit-identical to cold solves ----------

TEST(SolveServiceCache, RepeatHitsServeBitIdenticalAnswers) {
  service::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.cache_enabled = true;
  service::SolveService svc(cfg);

  const workloads::Workload w = workloads::fig9_case();
  const auto flow = select::Flow::create(w.module, w.library);
  ASSERT_TRUE(flow.ok());
  const std::int64_t rg = flow.value()->max_feasible_gain() / 2;
  const select::Selection cold = flow.value()->select(rg);

  std::string expected_marker = "miss";
  for (int i = 0; i < 3; ++i) {
    service::SolveRequest req;
    req.workload = workloads::fig9_case();
    req.required_gain = rg;
    const service::SolveResponse r = svc.wait(svc.submit(std::move(req)));
    ASSERT_EQ(r.state, service::RequestState::kCompleted) << r.error.render();
    EXPECT_EQ(r.cache, expected_marker) << "iteration " << i;
    EXPECT_EQ(select::solution_signature(r.selection),
              select::solution_signature(cold))
        << "iteration " << i;
    expected_marker = "hit";
  }

  const service::ServiceStats st = svc.stats();
  EXPECT_EQ(st.cache_lookups, 3u);
  EXPECT_EQ(st.cache_hits, 2u);
  EXPECT_EQ(st.cache_misses, 1u);
  EXPECT_EQ(st.cache_insertions, 1u);
}

TEST(SolveServiceCache, DerivedGainRequestsShareOneEntry) {
  service::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.cache_enabled = true;
  service::SolveService svc(cfg);

  for (int i = 0; i < 2; ++i) {
    service::SolveRequest req;
    req.workload = workloads::fig10_case();
    req.required_gain = -1;  // derived: max_feasible_gain/2
    const service::SolveResponse r = svc.wait(svc.submit(std::move(req)));
    ASSERT_EQ(r.state, service::RequestState::kCompleted) << r.error.render();
    EXPECT_EQ(r.cache, i == 0 ? "miss" : "hit");
  }
  EXPECT_EQ(svc.stats().cache_hits, 1u);
}

TEST(SolveServiceCache, NeighborSeedingAnswersMatchColdSolves) {
  service::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.cache_enabled = true;
  service::SolveService svc(cfg);

  const workloads::Workload w = workloads::gsm_encoder();
  const auto flow = select::Flow::create(w.module, w.library);
  ASSERT_TRUE(flow.ok());
  const std::int64_t rg = flow.value()->max_feasible_gain() / 2;

  // Warm the group, then near-repeat at perturbed gains: every answer must
  // match its own cold solve exactly, seeded or not.
  for (const std::int64_t g : {rg, rg - 1, rg + 3, rg / 2}) {
    service::SolveRequest req;
    req.workload = workloads::gsm_encoder();
    req.required_gain = g;
    const service::SolveResponse r = svc.wait(svc.submit(std::move(req)));
    ASSERT_EQ(r.state, service::RequestState::kCompleted) << r.error.render();
    const select::Selection cold = flow.value()->select(g);
    EXPECT_EQ(select::solution_signature(r.selection),
              select::solution_signature(cold))
        << "gain " << g << " (cache=" << r.cache << ")";
    if (g != rg) {
      EXPECT_EQ(r.cache, "neighbor");
    }
  }
  const service::ServiceStats st = svc.stats();
  EXPECT_EQ(st.cache_neighbor_seeds, 3u);
  EXPECT_EQ(st.cache_insertions, 4u);
}

TEST(SolveServiceCache, DifferentTenantsAndOptionsNeverShareAnswers) {
  service::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.cache_enabled = true;
  cfg.cache_neighbor_seeding = false;
  service::SolveService svc(cfg);

  const auto run = [&](const std::string& tenant, int max_nodes) {
    service::SolveRequest req;
    req.workload = workloads::fig9_case();
    req.required_gain = 50;
    req.tenant = tenant;
    req.options.ilp.max_nodes = max_nodes;
    const service::SolveResponse r = svc.wait(svc.submit(std::move(req)));
    EXPECT_EQ(r.state, service::RequestState::kCompleted) << r.error.render();
    return r.cache;
  };

  EXPECT_EQ(run("alice", 200000), "miss");
  EXPECT_EQ(run("alice", 200000), "hit");
  EXPECT_EQ(run("bob", 200000), "miss");      // tenant namespacing
  EXPECT_EQ(run("alice", 100000), "miss");    // option change invalidates
  EXPECT_EQ(run("alice", 100000), "hit");

  svc.invalidate_cache();
  EXPECT_EQ(run("alice", 200000), "miss");    // stale after invalidation
  EXPECT_GE(svc.stats().cache_stale, 1u);
}

// Regression (found by `partita_fuzz --mode cache`): two specs can build
// bit-identical ILP models while their libraries index the physical IPs
// differently -- here an IP that implements only a never-called kernel sits
// on either side of the used one. Serving the first spec's cached Selection
// for the second would report the wrong library slot in ips_used, so the
// cache key must cover the column -> (s-call, IP, interface) decode map and
// force a miss.
TEST(SolveServiceCache, ModelIdenticalSpecsWithDifferentIpIndicesMiss) {
  workloads::InstanceSpec base;
  base.name = "decode_map_a";
  base.kernel_cycles = {4000, 9000};
  workloads::SpecCallSite site;
  site.kernel = 0;
  base.sites = {site};

  workloads::SpecIp used;  // implements the called kernel
  used.area = 5.0;
  used.functions = {{/*kernel=*/0, /*cycles=*/400, /*n_in=*/8, /*n_out=*/8}};
  workloads::SpecIp decoy;  // implements only the never-called kernel
  decoy.area = 5.0;
  decoy.functions = {{/*kernel=*/1, /*cycles=*/900, /*n_in=*/8, /*n_out=*/8}};

  workloads::InstanceSpec swapped = base;
  swapped.name = "decode_map_b";
  base.ips = {used, decoy};
  swapped.ips = {decoy, used};

  const workloads::Workload wa = workloads::spec_workload(base);
  const workloads::Workload wb = workloads::spec_workload(swapped);
  const auto fa = select::Flow::create(wa.module, wa.library);
  const auto fb = select::Flow::create(wb.module, wb.library);
  ASSERT_TRUE(fa.ok());
  ASSERT_TRUE(fb.ok());

  // The premise of the regression: the models collide, the decode maps do
  // not. If either assert fails the test no longer covers the collision.
  const select::SelectOptions opt;
  ASSERT_EQ(ilp::fingerprint_model(fa.value()->selector().build_model({1}, opt)),
            ilp::fingerprint_model(fb.value()->selector().build_model({1}, opt)));
  ASSERT_NE(fa.value()->selector().answer_map_digest(),
            fb.value()->selector().answer_map_digest());

  const select::Selection cold_a = fa.value()->select(1);
  const select::Selection cold_b = fb.value()->select(1);
  ASSERT_TRUE(cold_a.feasible);
  ASSERT_TRUE(cold_b.feasible);
  // Same physical answer, different library indices -- the signatures differ.
  ASSERT_NE(select::solution_signature(cold_a), select::solution_signature(cold_b));

  service::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.cache_enabled = true;
  service::SolveService svc(cfg);

  const auto ask = [&](const workloads::Workload& w) {
    service::SolveRequest req;
    req.workload = w;
    req.required_gain = 1;
    const service::SolveResponse r = svc.wait(svc.submit(std::move(req)));
    EXPECT_EQ(r.state, service::RequestState::kCompleted) << r.error.render();
    return r;
  };

  const service::SolveResponse ra = ask(wa);
  EXPECT_EQ(ra.cache, "miss");
  EXPECT_EQ(select::solution_signature(ra.selection),
            select::solution_signature(cold_a));

  const service::SolveResponse rb = ask(wb);
  EXPECT_EQ(rb.cache, "miss");  // a hit here would serve the wrong decode map
  EXPECT_EQ(select::solution_signature(rb.selection),
            select::solution_signature(cold_b));
  svc.shutdown();
}

TEST(SolveServiceCache, DisabledCacheLeavesBehaviorAndCountersUntouched) {
  service::ServiceConfig cfg;
  cfg.workers = 1;
  service::SolveService svc(cfg);

  service::SolveRequest req;
  req.workload = workloads::fig9_case();
  req.required_gain = 50;
  const service::SolveResponse r = svc.wait(svc.submit(std::move(req)));
  ASSERT_EQ(r.state, service::RequestState::kCompleted);
  EXPECT_EQ(r.cache, "");
  const service::ServiceStats st = svc.stats();
  EXPECT_EQ(st.cache_lookups, 0u);
  EXPECT_EQ(st.cache_hits + st.cache_misses, 0u);
}

}  // namespace
}  // namespace partita

// Edge cases of the Section-3 interface timing/area model (DESIGN.md lines
// "The interface timing model (Section 3)"):
//
//   * applicability rules: type 0/2 cap at two in/out ports, type 0 also
//     requires matched in/out data rates; buffered types take anything;
//   * type-0 clock slowdown at the sw_template_rate boundary (in_rate < 4
//     divides the IP clock, in_rate >= 4 leaves it alone);
//   * pipelined vs non-pipelined composition: MAX(T_IP, T_IF) vs T_IF + T_IP
//     for unbuffered types, T_IF_IN + MAX(T_IP, T_B) + T_IF_OUT for buffered;
//   * parallel-code overlap credit MIN(T_IP, T_C, core), granted only to the
//     buffered types 1/3 (type-2 DMA occupies the data memories);
//   * zero-operand and single-sample transfers, and the buffer batching
//     boundary (one extra item costs one full rate period);
//   * the cost model: µ-code words vs FSM area, the split-rate FSM surcharge,
//     per-word + per-port buffer area, protocol-transformer area and power.
#include <gtest/gtest.h>

#include <cstdint>

#include "iface/kernel.hpp"
#include "iface/model.hpp"
#include "iface/program.hpp"
#include "iplib/ip.hpp"

namespace partita {
namespace {

using iface::InterfaceType;

iplib::IpDescriptor make_ip(int in_ports, int out_ports, int in_rate,
                            int out_rate, int latency, bool pipelined) {
  iplib::IpDescriptor ip;
  ip.name = "test_ip";
  ip.in_ports = in_ports;
  ip.out_ports = out_ports;
  ip.in_rate = in_rate;
  ip.out_rate = out_rate;
  ip.latency = latency;
  ip.pipelined = pipelined;
  return ip;
}

iplib::IpFunction make_fn(std::int64_t ip_cycles, std::int64_t n_in,
                          std::int64_t n_out) {
  iplib::IpFunction fn;
  fn.function = "kern";
  fn.ip_cycles = ip_cycles;
  fn.n_in = n_in;
  fn.n_out = n_out;
  return fn;
}

TEST(IfaceEdge, ApplicabilityPortAndRateRules) {
  const iface::KernelParams k;

  // Two ports, matched rates: every type applies.
  const iplib::IpDescriptor ok = make_ip(2, 2, 4, 4, 0, true);
  for (InterfaceType t : iface::kAllInterfaceTypes) {
    EXPECT_TRUE(iface::applicable(t, ok, k).ok) << iface::to_string(t);
  }

  // Three input ports exceed the one-operand-per-data-memory limit for the
  // unbuffered types; buffers lift the restriction.
  const iplib::IpDescriptor wide = make_ip(3, 1, 4, 4, 0, true);
  EXPECT_FALSE(iface::applicable(InterfaceType::kType0, wide, k).ok);
  EXPECT_FALSE(iface::applicable(InterfaceType::kType2, wide, k).ok);
  EXPECT_TRUE(iface::applicable(InterfaceType::kType1, wide, k).ok);
  EXPECT_TRUE(iface::applicable(InterfaceType::kType3, wide, k).ok);

  // Split in/out rates break only the type-0 software template; the type-2
  // FSM splits its controllers instead (and pays area for it, tested below).
  const iplib::IpDescriptor split = make_ip(2, 2, 4, 8, 0, true);
  const iface::Applicability a0 =
      iface::applicable(InterfaceType::kType0, split, k);
  EXPECT_FALSE(a0.ok);
  EXPECT_FALSE(a0.reason.empty());
  EXPECT_TRUE(iface::applicable(InterfaceType::kType2, split, k).ok);
  EXPECT_TRUE(iface::applicable(InterfaceType::kType1, split, k).ok);
  EXPECT_TRUE(iface::applicable(InterfaceType::kType3, split, k).ok);
}

TEST(IfaceEdge, Type0ClockSlowdownBoundary) {
  const iface::KernelParams k;
  const iplib::IpFunction fn = make_fn(101, 8, 8);

  // At exactly the template rate (4 cycles/batch) the IP runs full speed.
  const iplib::IpDescriptor at_rate = make_ip(2, 2, 4, 4, 0, true);
  const iface::InterfaceTiming t4 =
      iface::interface_timing(InterfaceType::kType0, at_rate, fn, 0, k);
  EXPECT_DOUBLE_EQ(t4.clock_slowdown, 1.0);
  EXPECT_EQ(t4.t_ip, 101);

  // A rate-2 IP wants data twice as fast as the template can move it: the
  // IP clock is halved and T_IP doubles.
  const iplib::IpDescriptor fast = make_ip(2, 2, 2, 2, 0, true);
  const iface::InterfaceTiming t2 =
      iface::interface_timing(InterfaceType::kType0, fast, fn, 0, k);
  EXPECT_DOUBLE_EQ(t2.clock_slowdown, 2.0);
  EXPECT_EQ(t2.t_ip, 202);

  // Non-integer slowdown rounds the stretched T_IP up (ceil).
  const iplib::IpDescriptor rate3 = make_ip(2, 2, 3, 3, 0, true);
  const iface::InterfaceTiming t3 =
      iface::interface_timing(InterfaceType::kType0, rate3, fn, 0, k);
  EXPECT_DOUBLE_EQ(t3.clock_slowdown, 4.0 / 3.0);
  EXPECT_EQ(t3.t_ip, 135);  // ceil(101 * 4/3) = ceil(134.67)

  // Slower-than-template IPs (rate > 4) are never slowed further.
  const iplib::IpDescriptor slow = make_ip(2, 2, 8, 8, 0, true);
  const iface::InterfaceTiming t8 =
      iface::interface_timing(InterfaceType::kType0, slow, fn, 0, k);
  EXPECT_DOUBLE_EQ(t8.clock_slowdown, 1.0);
  EXPECT_EQ(t8.t_ip, 101);
}

TEST(IfaceEdge, Type0PipelinedOverlapsTransferWithExecution) {
  const iface::KernelParams k;
  const iplib::IpDescriptor pipelined = make_ip(2, 2, 4, 4, 2, true);
  const iplib::IpDescriptor blocking = make_ip(2, 2, 4, 4, 2, false);

  // A fully pipelined IP hides the transfer schedule entirely once T_IP
  // dominates: total == T_IP exactly.
  const iplib::IpFunction big = make_fn(100000, 4, 4);
  const iface::InterfaceTiming tp =
      iface::interface_timing(InterfaceType::kType0, pipelined, big, 0, k);
  EXPECT_EQ(tp.total_cycles, std::max(tp.t_ip, tp.t_if));
  EXPECT_EQ(tp.total_cycles, tp.t_ip);
  EXPECT_GT(tp.t_if, 0);

  // The same IP without pipelining serializes: total == T_IF + T_IP.
  const iface::InterfaceTiming tn =
      iface::interface_timing(InterfaceType::kType0, blocking, big, 0, k);
  EXPECT_EQ(tn.total_cycles, tn.t_if + tn.t_ip);
  EXPECT_GT(tn.total_cycles, tp.total_cycles);
}

TEST(IfaceEdge, Type2ConcurrentDmaControllersAndNoParallelCredit) {
  const iface::KernelParams k;
  const iplib::IpFunction fn = make_fn(40, 8, 8);

  // Pipelined: in- and out-DMA run concurrently; the out stream trails the
  // IP latency. T_IF = setup + MAX(in, latency + out), total = MAX(T_IP, T_IF).
  const iplib::IpDescriptor pip = make_ip(2, 2, 4, 4, 6, true);
  const iface::InterfaceProgram prog =
      iface::expand_template(InterfaceType::kType2, pip, fn, k);
  const std::int64_t setup = prog.section_cycles("setup");
  const std::int64_t in_sched = prog.section_cycles("dma_in");
  const std::int64_t out_sched = prog.section_cycles("dma_out");
  const iface::InterfaceTiming tp =
      iface::interface_timing(InterfaceType::kType2, pip, fn, 0, k);
  EXPECT_EQ(tp.t_if, setup + std::max(in_sched, pip.latency + out_sched));
  EXPECT_EQ(tp.total_cycles, std::max(tp.t_ip, tp.t_if));

  // Non-pipelined: the phases serialize around the IP run.
  const iplib::IpDescriptor seq = make_ip(2, 2, 4, 4, 6, false);
  const iface::InterfaceTiming ts =
      iface::interface_timing(InterfaceType::kType2, seq, fn, 0, k);
  EXPECT_EQ(ts.total_cycles, ts.t_if + ts.t_ip);

  // Type-2 DMA occupies both data memories, so parallel kernel code earns
  // no overlap credit no matter how much is available.
  EXPECT_FALSE(iface::supports_parallel_execution(InterfaceType::kType2));
  const iface::InterfaceTiming tc =
      iface::interface_timing(InterfaceType::kType2, pip, fn, 1000000, k);
  EXPECT_EQ(tc.overlap, 0);
  EXPECT_EQ(tc.total_cycles, tp.total_cycles);
}

TEST(IfaceEdge, BufferedOverlapCreditIsMinOfIpParallelAndCore) {
  const iface::KernelParams k;
  const iplib::IpDescriptor ip = make_ip(2, 2, 4, 4, 3, true);
  const iplib::IpFunction fn = make_fn(60, 8, 8);

  for (InterfaceType t : {InterfaceType::kType1, InterfaceType::kType3}) {
    const iface::InterfaceTiming none = iface::interface_timing(t, ip, fn, 0, k);
    EXPECT_EQ(none.overlap, 0) << iface::to_string(t);
    const std::int64_t core = std::max(none.t_ip, none.t_b);
    EXPECT_EQ(none.total_cycles, none.t_if_in + core + none.t_if_out);

    // Small parallel code: the credit is exactly T_C.
    const iface::InterfaceTiming small = iface::interface_timing(t, ip, fn, 7, k);
    EXPECT_EQ(small.overlap, 7);
    EXPECT_EQ(small.total_cycles, none.total_cycles - 7);

    // Unlimited parallel code: the credit saturates at MIN(T_IP, core) --
    // the kernel can never hide more than the IP actually runs.
    const iface::InterfaceTiming big =
        iface::interface_timing(t, ip, fn, 1000000, k);
    EXPECT_EQ(big.overlap, std::min(big.t_ip, core));
    EXPECT_EQ(big.total_cycles, none.total_cycles - big.overlap);
  }
}

TEST(IfaceEdge, BufferedNonPipelinedSerializesBufferPhases) {
  const iface::KernelParams k;
  const iplib::IpFunction fn = make_fn(60, 8, 6);

  // Pipelined: buffer streams run concurrently, T_B = MAX(in, out).
  const iplib::IpDescriptor pip = make_ip(2, 2, 4, 4, 3, true);
  const iface::InterfaceTiming tp =
      iface::interface_timing(InterfaceType::kType3, pip, fn, 0, k);
  const std::int64_t tb_in = iface::batches(fn.n_in, pip.in_ports) * pip.in_rate;
  const std::int64_t tb_out =
      iface::batches(fn.n_out, pip.out_ports) * pip.out_rate;
  EXPECT_EQ(tp.t_b, std::max(tb_in, tb_out));
  EXPECT_EQ(tp.total_cycles,
            tp.t_if_in + std::max(tp.t_ip, tp.t_b) + tp.t_if_out);

  // Non-pipelined: fill, run, drain in sequence -- T_B is the sum and the
  // core is tb_in + T_IP + tb_out.
  const iplib::IpDescriptor seq = make_ip(2, 2, 4, 4, 3, false);
  const iface::InterfaceTiming ts =
      iface::interface_timing(InterfaceType::kType3, seq, fn, 0, k);
  EXPECT_EQ(ts.t_b, tb_in + tb_out);
  EXPECT_EQ(ts.total_cycles,
            ts.t_if_in + (tb_in + ts.t_ip + tb_out) + ts.t_if_out);
}

TEST(IfaceEdge, ZeroOperandTransferLeavesOnlyControlOverhead) {
  const iface::KernelParams k;
  const iplib::IpDescriptor ip = make_ip(1, 1, 4, 4, 0, true);
  // An S-instruction that moves no data (e.g. a pure state-machine step):
  // declared T_IP, nothing to buffer.
  const iplib::IpFunction fn = make_fn(50, 0, 0);

  for (InterfaceType t : {InterfaceType::kType1, InterfaceType::kType3}) {
    const iface::InterfaceTiming tt = iface::interface_timing(t, ip, fn, 0, k);
    EXPECT_EQ(tt.t_b, 0) << iface::to_string(t);
    EXPECT_EQ(tt.total_cycles, tt.t_if_in + tt.t_ip + tt.t_if_out);

    // No buffered words, but the per-port buffer controllers remain.
    const iface::InterfaceCost c = iface::interface_cost(t, ip, fn, k);
    EXPECT_DOUBLE_EQ(c.buffers, k.buffer_port_area * 2.0);
  }
}

TEST(IfaceEdge, SingleSampleTransferCostsOneRatePeriod) {
  const iface::KernelParams k;
  const iplib::IpDescriptor ip = make_ip(2, 2, 6, 6, 0, true);
  const iplib::IpFunction fn = make_fn(100, 1, 1);

  // One sample still occupies a full batch slot: T_B = 1 batch * rate.
  const iface::InterfaceTiming tt =
      iface::interface_timing(InterfaceType::kType3, ip, fn, 0, k);
  EXPECT_EQ(iface::batches(1, ip.in_ports), 1);
  EXPECT_EQ(tt.t_b, ip.in_rate);
}

TEST(IfaceEdge, BufferBatchBoundaryAddsOneFullRatePeriod) {
  const iface::KernelParams k;
  const iplib::IpDescriptor ip = make_ip(2, 1, 6, 6, 0, true);

  // 8 items over 2 ports = 4 batches; one extra item opens a 5th batch and
  // costs exactly one more rate period. (n_out = 0 keeps T_B = tb_in.)
  const iface::InterfaceTiming exact = iface::interface_timing(
      InterfaceType::kType3, ip, make_fn(1, 8, 0), 0, k);
  const iface::InterfaceTiming plus_one = iface::interface_timing(
      InterfaceType::kType3, ip, make_fn(1, 9, 0), 0, k);
  EXPECT_EQ(exact.t_b, 4 * ip.in_rate);
  EXPECT_EQ(plus_one.t_b, 5 * ip.in_rate);
  EXPECT_EQ(plus_one.t_b - exact.t_b, static_cast<std::int64_t>(ip.in_rate));
}

TEST(IfaceEdge, CostModelSoftwareVsFsmAndSplitRateSurcharge) {
  const iface::KernelParams k;
  const iplib::IpFunction fn = make_fn(40, 8, 8);

  // Software controllers cost code memory only: ucode_word_area per word.
  const iplib::IpDescriptor ip = make_ip(2, 2, 4, 4, 0, true);
  const iface::InterfaceCost c0 =
      iface::interface_cost(InterfaceType::kType0, ip, fn, k);
  const iface::InterfaceProgram p0 =
      iface::expand_template(InterfaceType::kType0, ip, fn, k);
  EXPECT_DOUBLE_EQ(c0.controller,
                   k.ucode_word_area * static_cast<double>(p0.static_words()));
  EXPECT_DOUBLE_EQ(c0.buffers, 0.0);
  EXPECT_DOUBLE_EQ(c0.transformer, 0.0);  // synchronous protocol

  // Type 1 adds per-word + per-port buffer area on top of its µ-code.
  const iface::InterfaceCost c1 =
      iface::interface_cost(InterfaceType::kType1, ip, fn, k);
  EXPECT_DOUBLE_EQ(c1.buffers,
                   k.buffer_word_area * static_cast<double>(fn.n_in + fn.n_out) +
                       k.buffer_port_area *
                           static_cast<double>(ip.in_ports + ip.out_ports));

  // Matched-rate FSM: base + per-port terms, no split surcharge.
  const iface::InterfaceCost c2 =
      iface::interface_cost(InterfaceType::kType2, ip, fn, k);
  EXPECT_DOUBLE_EQ(c2.controller,
                   k.fsm_base_area + k.fsm_per_port_area * 4.0);
  EXPECT_DOUBLE_EQ(c2.buffers, 0.0);

  // Rate-mismatched IP forces split in/out controllers: exactly
  // fsm_split_rate_area more, for both FSM types.
  const iplib::IpDescriptor split = make_ip(2, 2, 4, 8, 0, true);
  const iface::InterfaceCost c2s =
      iface::interface_cost(InterfaceType::kType2, split, fn, k);
  EXPECT_DOUBLE_EQ(c2s.controller, c2.controller + k.fsm_split_rate_area);
  const iface::InterfaceCost c3 =
      iface::interface_cost(InterfaceType::kType3, split, fn, k);
  EXPECT_DOUBLE_EQ(c3.controller, c2s.controller);
  EXPECT_DOUBLE_EQ(c3.buffers, c1.buffers);  // same word/port counts
}

TEST(IfaceEdge, ProtocolTransformerAreaAndPower) {
  const iface::KernelParams k;
  const iplib::IpFunction fn = make_fn(40, 4, 4);

  iplib::IpDescriptor ip = make_ip(2, 2, 4, 4, 0, true);
  ip.protocol = iplib::Protocol::kHandshake;
  EXPECT_DOUBLE_EQ(
      iface::interface_cost(InterfaceType::kType0, ip, fn, k).transformer, 0.3);
  ip.protocol = iplib::Protocol::kStream;
  EXPECT_DOUBLE_EQ(
      iface::interface_cost(InterfaceType::kType0, ip, fn, k).transformer, 0.15);

  // Power: software + synchronous draws nothing; FSMs add fsm_power, buffers
  // add per-port draw, non-synchronous protocols add the transformer.
  ip.protocol = iplib::Protocol::kSynchronous;
  EXPECT_DOUBLE_EQ(iface::interface_power(InterfaceType::kType0, ip, k), 0.0);
  EXPECT_DOUBLE_EQ(iface::interface_power(InterfaceType::kType2, ip, k),
                   k.fsm_power);
  EXPECT_DOUBLE_EQ(iface::interface_power(InterfaceType::kType1, ip, k),
                   k.buffer_power_per_port * 4.0);
  EXPECT_DOUBLE_EQ(iface::interface_power(InterfaceType::kType3, ip, k),
                   k.fsm_power + k.buffer_power_per_port * 4.0);
  ip.protocol = iplib::Protocol::kHandshake;
  EXPECT_DOUBLE_EQ(iface::interface_power(InterfaceType::kType3, ip, k),
                   k.fsm_power + k.buffer_power_per_port * 4.0 +
                       k.transformer_power);
}

TEST(IfaceEdge, ExecutionCyclesFallsBackToStreamingEstimate) {
  const iplib::IpDescriptor ip = make_ip(2, 2, 4, 6, 5, true);

  // A declared cycle count wins outright.
  EXPECT_EQ(ip.execution_cycles(make_fn(123, 8, 8)), 123);

  // Declared as 0: latency + MAX(n_in*in_rate, n_out*out_rate).
  EXPECT_EQ(ip.execution_cycles(make_fn(0, 8, 4)), 5 + 8 * 4);   // input bound
  EXPECT_EQ(ip.execution_cycles(make_fn(0, 4, 8)), 5 + 8 * 6);   // output bound
  EXPECT_EQ(ip.execution_cycles(make_fn(0, 0, 0)), 5);           // latency only
}

}  // namespace
}  // namespace partita

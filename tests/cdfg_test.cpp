// Tests for the CDFG: dependence edges, transitive closure, execution paths,
// and the Definition 3-5 parallel-code extraction.
#include <gtest/gtest.h>

#include "cdfg/cdfg.hpp"
#include "cdfg/parallel.hpp"
#include "cdfg/paths.hpp"
#include "frontend/parser.hpp"

namespace partita::cdfg {
namespace {

ir::Module parse(std::string_view kl) {
  support::DiagnosticEngine diags;
  auto m = frontend::parse_module(kl, diags);
  EXPECT_TRUE(m.has_value()) << diags.render_all();
  return std::move(*m);
}

Cdfg build(const ir::Module& m) { return Cdfg(m, m.function(m.entry())); }

// --- dependence -----------------------------------------------------------------

TEST(Cdfg, RawDependence) {
  const ir::Module m = parse(R"(
module t;
func main {
  seg a 10 writes(x);
  seg b 10 reads(x);
  seg c 10 reads(y);
}
)");
  const Cdfg g = build(m);
  ASSERT_EQ(g.node_count(), 3u);
  EXPECT_TRUE(g.direct_edge(0, 1));   // RAW on x
  EXPECT_FALSE(g.direct_edge(0, 2));  // disjoint symbols
  EXPECT_TRUE(g.independent(0, 2));
  EXPECT_FALSE(g.independent(0, 1));
}

TEST(Cdfg, WarAndWawDependence) {
  const ir::Module m = parse(R"(
module t;
func main {
  seg a 10 reads(x);
  seg b 10 writes(x);
  seg c 10 writes(x);
}
)");
  const Cdfg g = build(m);
  EXPECT_TRUE(g.direct_edge(0, 1));  // WAR
  EXPECT_TRUE(g.direct_edge(1, 2));  // WAW
}

TEST(Cdfg, TransitiveClosure) {
  const ir::Module m = parse(R"(
module t;
func main {
  seg a 10 writes(x);
  seg b 10 reads(x) writes(y);
  seg c 10 reads(y);
}
)");
  const Cdfg g = build(m);
  EXPECT_FALSE(g.direct_edge(0, 2));
  EXPECT_TRUE(g.depends(0, 2));  // a -> b -> c
}

TEST(Cdfg, LoopAndBranchContext) {
  const ir::Module m = parse(R"(
module t;
func main {
  loop 5 {
    seg body 10 writes(x);
  }
  if prob 0.5 {
    seg t1 10 reads(x);
  } else {
    seg e1 10 reads(x);
  }
}
)");
  const Cdfg g = build(m);
  ASSERT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.node(0).loop_frequency, 5);
  EXPECT_EQ(g.node(0).loop_ctx.size(), 1u);
  EXPECT_EQ(g.node(1).branch_ctx.size(), 1u);
  EXPECT_TRUE(g.node(1).branch_ctx[0].then_arm);
  EXPECT_FALSE(g.node(2).branch_ctx[0].then_arm);
  EXPECT_FALSE(g.same_branch(1, 2));
  EXPECT_TRUE(g.same_loop_ctx(1, 2));
  EXPECT_FALSE(g.same_loop_ctx(0, 1));
}

TEST(Cdfg, CallNodeCyclesAnnotated) {
  const ir::Module m = parse(R"(
module t;
func leaf scall sw_cycles 123;
func main { call leaf; }
)");
  Cdfg g = build(m);
  EXPECT_EQ(g.node(0).cycles, 0);
  g.annotate_call_cycles([](ir::FuncId) { return std::int64_t{123}; });
  EXPECT_EQ(g.node(0).cycles, 123);
  EXPECT_EQ(g.node_of_call(ir::CallSiteId{0}), 0u);
}

// --- path enumeration --------------------------------------------------------------

TEST(Paths, StraightLineHasOnePath) {
  const ir::Module m = parse("module t; func main { seg a 5; seg b 6; }");
  const Cdfg g = build(m);
  const auto paths = enumerate_paths(g);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].nodes.size(), 2u);
  EXPECT_DOUBLE_EQ(paths[0].probability, 1.0);
  EXPECT_EQ(paths[0].software_cycles(g), 11);
}

TEST(Paths, TwoArmedIfMakesTwoPaths) {
  const ir::Module m = parse(R"(
module t;
func main {
  seg pre 1;
  if prob 0.3 { seg hot 10; } else { seg cold 20; }
  seg post 2;
}
)");
  const Cdfg g = build(m);
  const auto paths = enumerate_paths(g);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_DOUBLE_EQ(paths[0].probability + paths[1].probability, 1.0);
  // Both paths contain pre and post.
  for (const ExecPath& p : paths) {
    EXPECT_EQ(p.nodes.size(), 3u);
  }
  EXPECT_EQ(paths[0].software_cycles(g) + paths[1].software_cycles(g), 13 + 23);
}

TEST(Paths, NestedIfsDeduplicate) {
  const ir::Module m = parse(R"(
module t;
func main {
  if prob 0.5 {
    if prob 0.5 { seg a 1; } else { seg b 2; }
  } else {
    seg c 3;
  }
}
)");
  const Cdfg g = build(m);
  const auto paths = enumerate_paths(g);
  // a | b | c -- the inner decision is irrelevant on the else arm.
  ASSERT_EQ(paths.size(), 3u);
  double total = 0;
  for (const ExecPath& p : paths) total += p.probability;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Paths, LoopBodyOnEveryPathWithFrequency) {
  const ir::Module m = parse(R"(
module t;
func main {
  loop 7 { seg body 10; }
  if prob 0.5 { seg a 1; } else { seg b 1; }
}
)");
  const Cdfg g = build(m);
  const auto paths = enumerate_paths(g);
  ASSERT_EQ(paths.size(), 2u);
  for (const ExecPath& p : paths) {
    EXPECT_TRUE(p.contains(0));
    EXPECT_EQ(p.software_cycles(g), 71);
  }
}

// --- parallel code (Definitions 3-5) -------------------------------------------------

struct PcFixture {
  ir::Module module;
  Cdfg g;
  std::vector<ExecPath> paths;

  explicit PcFixture(std::string_view kl)
      : module(parse(kl)), g(module, module.function(module.entry())),
        paths(enumerate_paths(g)) {
    g.annotate_call_cycles([](ir::FuncId) { return std::int64_t{1000}; });
  }
};

TEST(ParallelCode, CollectsIndependentTrailingSegments) {
  PcFixture f(R"(
module t;
func fir scall sw_cycles 1000;
func main {
  seg pre 10 writes(a);
  call fir reads(a) writes(x);
  seg indep 300 reads(a) writes(c);
  seg dep 100 reads(x);
}
)");
  const NodeIndex call = f.g.node_of_call(ir::CallSiteId{0});
  const ParallelCode pc = parallel_code(f.g, call, f.paths);
  EXPECT_EQ(pc.cycles, 300);
  ASSERT_EQ(pc.nodes.size(), 1u);
  EXPECT_TRUE(pc.consumed_scalls.empty());
}

TEST(ParallelCode, BlockedBySkippedPredecessor) {
  // indep2 depends on dep, which cannot move; so indep2 cannot join either.
  PcFixture f(R"(
module t;
func fir scall sw_cycles 1000;
func main {
  seg pre 10 writes(a);
  call fir reads(a) writes(x);
  seg dep 100 reads(x) writes(y);
  seg indep2 300 reads(y) writes(z);
}
)");
  const NodeIndex call = f.g.node_of_call(ir::CallSiteId{0});
  const ParallelCode pc = parallel_code(f.g, call, f.paths);
  EXPECT_EQ(pc.cycles, 0);
}

TEST(ParallelCode, SkipsDifferentLoopContext) {
  PcFixture f(R"(
module t;
func fir scall sw_cycles 1000;
func main {
  seg pre 10 writes(a);
  call fir reads(a) writes(x);
  loop 4 { seg inloop 50 reads(a); }
}
)");
  const NodeIndex call = f.g.node_of_call(ir::CallSiteId{0});
  const ParallelCode pc = parallel_code(f.g, call, f.paths);
  EXPECT_EQ(pc.cycles, 0);  // the loop body runs under a different loop nest
}

TEST(ParallelCode, MinOverPaths) {
  // Definition 5: with two execution paths after the call, the shorter PC
  // guarantees the gain on both.
  PcFixture f(R"(
module t;
func fir scall sw_cycles 1000;
func main {
  seg pre 10 writes(a);
  call fir reads(a) writes(x);
  if prob 0.5 {
    seg big 500 reads(a);
  } else {
    seg small 100 reads(a);
  }
}
)");
  const NodeIndex call = f.g.node_of_call(ir::CallSiteId{0});
  const ParallelCode pc = parallel_code(f.g, call, f.paths);
  EXPECT_EQ(pc.cycles, 100);
}

TEST(ParallelCode, ScallSoftwareOnlyUnderProblem2) {
  PcFixture f(R"(
module t;
func fir scall sw_cycles 1000;
func dct scall sw_cycles 1000;
func main {
  seg pre 10 writes(a);
  call dct reads(a) writes(x);
  call fir reads(a) writes(y);
  seg post 20 reads(x, y);
}
)");
  const NodeIndex call = f.g.node_of_call(ir::CallSiteId{0});

  PcOptions p1;  // Problem 1: s-calls excluded
  EXPECT_EQ(parallel_code(f.g, call, f.paths, p1).cycles, 0);

  PcOptions p2;
  p2.allow_scall_software = true;
  const ParallelCode pc = parallel_code(f.g, call, f.paths, p2);
  EXPECT_EQ(pc.cycles, 1000);
  ASSERT_EQ(pc.consumed_scalls.size(), 1u);
  EXPECT_EQ(pc.consumed_scalls[0], ir::CallSiteId{1});
}

TEST(ParallelCode, NonScallCallsJoinFreely) {
  PcFixture f(R"(
module t;
func helper sw_cycles 700;
func dct scall sw_cycles 1000;
func main {
  seg pre 10 writes(a);
  call dct reads(a) writes(x);
  call helper reads(a) writes(h);
  seg post 20 reads(x, h);
}
)");
  const NodeIndex call = f.g.node_of_call(ir::CallSiteId{0});
  PcOptions opt;  // Problem 1 semantics...
  opt.is_scall = [](ir::CallSiteId c) { return c == ir::CallSiteId{0}; };
  const ParallelCode pc = parallel_code(f.g, call, f.paths, opt);
  EXPECT_EQ(pc.cycles, 1000);  // annotate gave every call 1000 cycles
  EXPECT_TRUE(pc.consumed_scalls.empty());
}

TEST(ParallelCode, MaxConsumedPrefix) {
  PcFixture f(R"(
module t;
func fir scall sw_cycles 1000;
func main {
  call fir writes(x);
  call fir writes(y);
  call fir writes(z);
  seg post 20 reads(x, y, z);
}
)");
  const NodeIndex call = f.g.node_of_call(ir::CallSiteId{0});
  PcOptions opt;
  opt.allow_scall_software = true;
  opt.max_consumed = 1;
  const ParallelCode pc1 = parallel_code(f.g, call, f.paths, opt);
  EXPECT_EQ(pc1.consumed_scalls.size(), 1u);
  EXPECT_EQ(pc1.cycles, 1000);
  opt.max_consumed = 2;
  const ParallelCode pc2 = parallel_code(f.g, call, f.paths, opt);
  EXPECT_EQ(pc2.consumed_scalls.size(), 2u);
  EXPECT_EQ(pc2.cycles, 2000);
}

}  // namespace
}  // namespace partita::cdfg

// Tests for the power model: IP power, interface power, and the optional
// power budget in the selector.
#include <gtest/gtest.h>

#include "iface/model.hpp"
#include "iplib/loader.hpp"
#include "select/flow.hpp"
#include "workloads/workloads.hpp"

namespace partita {
namespace {

TEST(Power, LoaderRoundTripsPower) {
  support::DiagnosticEngine diags;
  auto lib = iplib::load_library(R"(
ip P1 {
  area 4
  power 0.75
  fn f cycles 100 in 8 out 8
}
)",
                                 diags);
  ASSERT_TRUE(lib.has_value()) << diags.render_all();
  EXPECT_DOUBLE_EQ(lib->ip(lib->find("P1")).power, 0.75);
  auto lib2 = iplib::load_library(iplib::save_library(*lib), diags);
  ASSERT_TRUE(lib2.has_value());
  EXPECT_DOUBLE_EQ(lib2->ip(lib2->find("P1")).power, 0.75);
}

TEST(Power, InterfacePowerByType) {
  iface::KernelParams k;
  iplib::IpDescriptor ip;
  ip.name = "X";
  ip.functions.push_back({"f", 100, 8, 8});
  // Software controllers draw nothing extra.
  EXPECT_DOUBLE_EQ(iface::interface_power(iface::InterfaceType::kType0, ip, k), 0.0);
  // FSM types draw the FSM constant; buffered add per-port draw.
  EXPECT_DOUBLE_EQ(iface::interface_power(iface::InterfaceType::kType2, ip, k), k.fsm_power);
  EXPECT_GT(iface::interface_power(iface::InterfaceType::kType3, ip, k), k.fsm_power);
  EXPECT_GT(iface::interface_power(iface::InterfaceType::kType1, ip, k), 0.0);
  // Exotic protocols pay the transformer.
  ip.protocol = iplib::Protocol::kHandshake;
  EXPECT_DOUBLE_EQ(iface::interface_power(iface::InterfaceType::kType0, ip, k),
                   k.transformer_power);
}

TEST(Power, SelectionAccumulatesPower) {
  workloads::Workload w = workloads::gsm_decoder();
  select::Flow flow(w.module, w.library);
  const select::Selection sel = flow.select(flow.max_feasible_gain() / 2);
  ASSERT_TRUE(sel.feasible);
  double expected_ip_power = 0;
  for (iplib::IpId ip : sel.ips_used) expected_ip_power += w.library.ip(ip).power;
  EXPECT_DOUBLE_EQ(sel.ip_power, expected_ip_power);
  EXPECT_GT(sel.total_power(), 0.0);  // workload IPs carry power annotations
}

TEST(Power, BudgetConstrainsSelection) {
  workloads::Workload w = workloads::gsm_decoder();
  select::Flow flow(w.module, w.library);
  const std::int64_t rg = flow.max_feasible_gain() / 2;

  const select::Selection unconstrained = flow.select(rg);
  ASSERT_TRUE(unconstrained.feasible);

  select::SelectOptions tight;
  tight.max_power = unconstrained.total_power() * 0.6;
  const select::Selection constrained = flow.select(rg, tight);
  if (constrained.feasible) {
    EXPECT_LE(constrained.total_power(), *tight.max_power + 1e-9);
    // Meeting the same gain with less power can only cost area.
    EXPECT_GE(constrained.total_area() + 1e-9, unconstrained.total_area());
  }

  select::SelectOptions impossible;
  impossible.max_power = 1e-6;
  EXPECT_FALSE(flow.select(rg, impossible).feasible);
}

TEST(Power, ZeroBudgetStillAllowsSoftwareOnly) {
  workloads::Workload w = workloads::gsm_decoder();
  select::Flow flow(w.module, w.library);
  select::SelectOptions opt;
  opt.max_power = 0.0;
  const select::Selection sel = flow.select(0, opt);
  ASSERT_TRUE(sel.feasible);
  EXPECT_TRUE(sel.chosen.empty());
}

}  // namespace
}  // namespace partita

// Checkpoint/resume of the branch & bound search (ilp/checkpoint.hpp):
// differential bit-identity -- a search interrupted at ANY wave boundary and
// resumed from its checkpoint must report exactly the status, objective and
// canonical solution vector of the uninterrupted run -- plus codec round
// trips, the compatibility guard (wrong model / wrong options = cold start,
// not a wrong answer), and torn-checkpoint-file totality.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include <unistd.h>

#include "ilp/branch_bound.hpp"
#include "ilp/checkpoint.hpp"
#include "ilp/fingerprint.hpp"
#include "ilp/model.hpp"
#include "support/io.hpp"

namespace partita::ilp {
namespace {

std::string fresh_path(const std::string& tag) {
  static int counter = 0;
  return ::testing::TempDir() + "partita_ckpt_" + std::to_string(::getpid()) +
         "_" + tag + "_" + std::to_string(counter++) + ".bin";
}

/// Seeded random set-packing-flavoured model, hard enough to run for several
/// waves (so checkpoints actually capture a live frontier).
Model random_model(std::mt19937& rng, int n, int rows) {
  std::uniform_int_distribution<int> coef(1, 20);
  Model m;
  m.set_sense(Sense::kMaximize);
  for (int j = 0; j < n; ++j) m.add_binary("x" + std::to_string(j), coef(rng));
  for (int r = 0; r < rows; ++r) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) {
      if (rng() % 2) terms.push_back({static_cast<VarIndex>(j), double(coef(rng))});
    }
    if (terms.empty()) continue;
    double total = 0;
    for (const Term& t : terms) total += t.coeff;
    m.add_row("r" + std::to_string(r), terms, RowSense::kLessEqual,
              std::floor(total / 2.0));
  }
  return m;
}

void expect_same_answer(const IlpResult& got, const IlpResult& want,
                        const Model& m, const std::string& what) {
  ASSERT_EQ(got.status, want.status) << what << "\n" << m.dump();
  if (want.status != IlpStatus::kOptimal) return;
  EXPECT_EQ(got.objective, want.objective) << what << "\n" << m.dump();
  ASSERT_EQ(got.x.size(), want.x.size()) << what;
  for (std::size_t j = 0; j < got.x.size(); ++j) {
    EXPECT_EQ(got.x[j], want.x[j]) << what << ": var " << j << "\n" << m.dump();
  }
}

// --- the differential: resume == uninterrupted, at every wave boundary -----

TEST(CheckpointResume, ResumedAnswerIsBitIdenticalAtEveryWaveBoundary) {
  std::mt19937 rng(20260808);
  int resumed_runs = 0;
  for (int instance = 0; instance < 12; ++instance) {
    const Model m = random_model(rng, 14, 7);

    IlpOptions base;
    const IlpResult uninterrupted = solve_ilp(m, base);

    // Capture a checkpoint at every wave boundary of a reference search.
    std::vector<SearchCheckpoint> snaps;
    IlpOptions capture;
    capture.checkpoint_every_waves = 1;
    capture.checkpoint_sink = [&snaps](const SearchCheckpoint& cp) {
      snaps.push_back(cp);
    };
    const IlpResult captured = solve_ilp(m, capture);
    expect_same_answer(captured, uninterrupted, m, "checkpointing run");
    EXPECT_EQ(captured.stats.checkpoints_written,
              static_cast<int>(snaps.size()));

    // Resume from every snapshot: kill-at-any-wave, recover, same answer.
    for (std::size_t i = 0; i < snaps.size(); ++i) {
      IlpOptions resume;
      resume.resume = &snaps[i];
      const IlpResult r = solve_ilp(m, resume);
      expect_same_answer(r, uninterrupted, m,
                         "resume from wave snapshot " + std::to_string(i));
      if (!snaps[i].frontier.empty()) {
        EXPECT_GT(r.stats.resumed_frontier, 0)
            << "snapshot " << i << " had a frontier but the solve went cold";
        ++resumed_runs;
      }
    }
  }
  // The suite must actually exercise warm resumes, not just empty frontiers.
  EXPECT_GT(resumed_runs, 0);
}

TEST(CheckpointResume, RoundTripThroughCodecPreservesTheAnswer) {
  std::mt19937 rng(7);
  const Model m = random_model(rng, 13, 6);
  const IlpResult want = solve_ilp(m, {});

  std::vector<SearchCheckpoint> snaps;
  IlpOptions capture;
  capture.checkpoint_every_waves = 1;
  capture.checkpoint_sink = [&snaps](const SearchCheckpoint& cp) {
    snaps.push_back(cp);
  };
  solve_ilp(m, capture);
  ASSERT_FALSE(snaps.empty());

  for (const SearchCheckpoint& cp : snaps) {
    // JSON document round trip.
    SearchCheckpoint decoded;
    std::string error;
    ASSERT_TRUE(decode_checkpoint(encode_checkpoint(cp), &decoded, &error))
        << error;
    EXPECT_EQ(decoded.frontier.size(), cp.frontier.size());
    EXPECT_EQ(decoded.options_digest, cp.options_digest);
    EXPECT_EQ(decoded.has_incumbent, cp.has_incumbent);
    EXPECT_EQ(decoded.incumbent, cp.incumbent);  // bit-exact doubles

    // File round trip (CRC frame + atomic replace), then resume from it.
    const std::string path = fresh_path("roundtrip");
    ASSERT_TRUE(write_checkpoint_file(path, cp));
    SearchCheckpoint loaded;
    ASSERT_TRUE(load_checkpoint_file(path, &loaded, &error)) << error;
    IlpOptions resume;
    resume.resume = &loaded;
    expect_same_answer(solve_ilp(m, resume), want, m, "resume from file");
    std::remove(path.c_str());
  }
}

// --- compatibility guard ----------------------------------------------------

TEST(CheckpointResume, WrongModelOrOptionsFallsBackToColdStart) {
  std::mt19937 rng(99);
  const Model m = random_model(rng, 12, 6);
  const Model other = random_model(rng, 12, 6);

  std::vector<SearchCheckpoint> snaps;
  IlpOptions capture;
  capture.checkpoint_every_waves = 1;
  capture.checkpoint_sink = [&snaps](const SearchCheckpoint& cp) {
    snaps.push_back(cp);
  };
  solve_ilp(m, capture);
  ASSERT_FALSE(snaps.empty());
  const SearchCheckpoint& cp = snaps.back();

  EXPECT_TRUE(resume_compatible(cp, fingerprint_model(m), cp.options_digest));
  EXPECT_FALSE(
      resume_compatible(cp, fingerprint_model(other), cp.options_digest));
  EXPECT_FALSE(resume_compatible(cp, fingerprint_model(m), cp.options_digest ^ 1));

  // A stale checkpoint handed to a different model's solve is ignored, not
  // trusted: the answer must match that model's own cold solve.
  const IlpResult cold = solve_ilp(other, {});
  IlpOptions resume;
  resume.resume = &cp;
  const IlpResult guarded = solve_ilp(other, resume);
  expect_same_answer(guarded, cold, other, "guarded resume");
  EXPECT_EQ(guarded.stats.resumed_frontier, 0);
}

// --- torn files: loading is total -------------------------------------------

TEST(CheckpointResume, TornOrCorruptFileNeverCrashesAndNeverLies) {
  std::mt19937 rng(5);
  const Model m = random_model(rng, 12, 5);
  std::vector<SearchCheckpoint> snaps;
  IlpOptions capture;
  capture.checkpoint_every_waves = 1;
  capture.checkpoint_sink = [&snaps](const SearchCheckpoint& cp) {
    snaps.push_back(cp);
  };
  solve_ilp(m, capture);
  ASSERT_FALSE(snaps.empty());

  const std::string path = fresh_path("torn");
  ASSERT_TRUE(write_checkpoint_file(path, snaps.back()));
  std::string bytes;
  ASSERT_TRUE(support::io::read_file(path, &bytes));

  std::mt19937_64 fuzz(31337);
  SearchCheckpoint out;
  std::string error;
  for (int trial = 0; trial < 150; ++trial) {
    std::string mutated = bytes;
    switch (trial % 3) {
      case 0:  // truncate
        mutated.resize(fuzz() % mutated.size());
        break;
      case 1:  // flip a bit
        mutated[fuzz() % mutated.size()] ^= static_cast<char>(1u << (fuzz() % 8));
        break;
      default:  // random garbage
        for (char& c : mutated) c = static_cast<char>(fuzz());
        break;
    }
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    f.close();
    if (load_checkpoint_file(path, &out, &error)) {
      // A bit flip the CRC missed is astronomically unlikely; if the load
      // succeeded the content must still resume to the right answer.
      IlpOptions resume;
      resume.resume = &out;
      expect_same_answer(solve_ilp(m, resume), solve_ilp(m, {}), m,
                         "resume from surviving mutation");
    } else {
      EXPECT_FALSE(error.empty());
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace partita::ilp

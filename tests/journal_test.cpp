// Write-ahead journal (service/journal.hpp) + durable-file primitives
// (support/io.hpp): CRC frame round trips, record codec totality,
// append/recover pairing, segment rotation, compaction, quarantine files in
// both formats, the "journal.append" fault site, and -- the durability
// claim under attack -- torn, truncated, bit-flipped and random-garbage
// tails that recovery must salvage up to the last valid frame without ever
// crashing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include <unistd.h>

#include "service/journal.hpp"
#include "support/fault_injection.hpp"
#include "support/io.hpp"

namespace partita {
namespace {

namespace io = support::io;
using service::Journal;
using service::JournalRecord;
using service::JournalRecovery;
using service::JournalTerminal;

/// Fresh per-test directory under the gtest temp root.
std::string fresh_dir(const std::string& tag) {
  static int counter = 0;
  const std::string d = ::testing::TempDir() + "partita_journal_" +
                        std::to_string(::getpid()) + "_" + tag + "_" +
                        std::to_string(counter++);
  EXPECT_TRUE(io::make_dirs(d));
  return d;
}

/// The (sorted) segment file paths of a journal directory.
std::vector<std::string> segment_paths(const std::string& dir) {
  std::vector<std::string> out;
  for (const std::string& name : io::list_dir(dir)) {
    if (name.rfind("wal_", 0) == 0) out.push_back(dir + "/" + name);
  }
  return out;
}

// --- support/io frames ------------------------------------------------------

TEST(IoFrames, RoundTripAndTornPrefix) {
  std::string stream;
  io::encode_frame("alpha", &stream);
  io::encode_frame("", &stream);
  io::encode_frame(std::string(1000, 'z'), &stream);

  std::size_t dropped = 0;
  const std::vector<std::string> payloads = io::decode_frames(stream, &dropped);
  ASSERT_EQ(payloads.size(), 3u);
  EXPECT_EQ(payloads[0], "alpha");
  EXPECT_EQ(payloads[1], "");
  EXPECT_EQ(payloads[2], std::string(1000, 'z'));
  EXPECT_EQ(dropped, 0u);

  // Every proper prefix of a frame is kNeedMore, never kCorrupt or a crash.
  std::string one;
  io::encode_frame("payload", &one);
  for (std::size_t cut = 0; cut < one.size(); ++cut) {
    std::string payload;
    std::size_t consumed = 0;
    EXPECT_EQ(io::decode_frame(one.substr(0, cut), 0, &payload, &consumed),
              io::FrameStatus::kNeedMore)
        << "prefix length " << cut;
  }
}

TEST(IoFrames, EveryFlippedBitIsCorruptOrStillAFrame) {
  std::string one;
  io::encode_frame("signature-material", &one);
  for (std::size_t i = 0; i < one.size(); ++i) {
    std::string mutated = one;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x40);
    std::string payload;
    std::size_t consumed = 0;
    const io::FrameStatus st = io::decode_frame(mutated, 0, &payload, &consumed);
    // A flip in the length field may turn the stream into a longer frame's
    // prefix (kNeedMore); anything else must be flagged, and a flip in the
    // payload must never decode back to the original bytes unnoticed.
    if (st == io::FrameStatus::kOk) {
      ADD_FAILURE() << "flip at byte " << i << " decoded as a valid frame";
    }
  }
}

// --- record codec -----------------------------------------------------------

TEST(JournalCodec, AdmitTerminalQuarantineRoundTrip) {
  const std::string payload = "{\"v\":\"wire\",\"verb\":\"submit\" \n\t\\\"}";
  const std::string admit = Journal::encode_admit(7, 3, payload);
  Journal::Record rec;
  std::string error;
  ASSERT_TRUE(Journal::decode_record(admit, &rec, &error)) << error;
  EXPECT_EQ(rec.type, Journal::RecordType::kAdmit);
  EXPECT_EQ(rec.seq, 7u);
  EXPECT_EQ(rec.items, 3u);
  EXPECT_EQ(rec.payload, payload);  // byte-faithful through json::quote

  JournalTerminal t{9, 2, "completed", "label-x", "sig:abc"};
  ASSERT_TRUE(Journal::decode_record(Journal::encode_terminal(t), &rec, &error))
      << error;
  EXPECT_EQ(rec.type, Journal::RecordType::kTerminal);
  EXPECT_EQ(rec.terminal.seq, 9u);
  EXPECT_EQ(rec.terminal.item, 2u);
  EXPECT_EQ(rec.terminal.state, "completed");
  EXPECT_EQ(rec.terminal.label, "label-x");
  EXPECT_EQ(rec.terminal.signature, "sig:abc");

  const std::string fixture = "{\"v\":\"partita-oracle-fixture-v1\"}";
  ASSERT_TRUE(Journal::decode_record(Journal::encode_quarantine(4, fixture),
                                     &rec, &error))
      << error;
  EXPECT_EQ(rec.type, Journal::RecordType::kQuarantine);
  EXPECT_EQ(rec.seq, 4u);
  EXPECT_EQ(rec.payload, fixture);
}

TEST(JournalCodec, DecodeIsTotalOnMalformedInput) {
  Journal::Record rec;
  std::string error;
  for (const char* bad :
       {"", "not json", "[]", "{}", "{\"v\":\"other\",\"type\":\"admit\"}",
        "{\"v\":\"partita-journal-v1\"}",
        "{\"v\":\"partita-journal-v1\",\"type\":\"mystery\",\"seq\":1}",
        "{\"v\":\"partita-journal-v1\",\"type\":\"admit\"}"}) {
    EXPECT_FALSE(Journal::decode_record(bad, &rec, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

// --- append / recover -------------------------------------------------------

TEST(Journal, AppendRecoverPairsAdmitsWithTerminals) {
  const std::string dir = fresh_dir("pairs");
  Journal j;
  Journal::Config cfg;
  cfg.dir = dir;
  ASSERT_TRUE(j.open(cfg));

  const std::uint64_t a = j.append_admit("req-a");
  const std::uint64_t b = j.append_admit("req-b", 3);
  const std::uint64_t c = j.append_admit("req-c");
  ASSERT_EQ(a, 1u);
  ASSERT_EQ(b, 2u);
  ASSERT_EQ(c, 3u);
  EXPECT_TRUE(j.append_terminal({a, 0, "completed", "la", "sig-a"}));
  // Batch b: two of three items decided -- the admit must stay undecided.
  EXPECT_TRUE(j.append_terminal({b, 0, "completed", "lb", "sig-b0"}));
  EXPECT_TRUE(j.append_terminal({b, 2, "cancelled", "lb", ""}));
  j.close();

  const JournalRecovery rec = Journal::recover(dir);
  ASSERT_EQ(rec.undecided.size(), 2u);
  EXPECT_EQ(rec.undecided[0].seq, b);
  EXPECT_EQ(rec.undecided[0].items, 3u);
  EXPECT_EQ(rec.undecided[0].payload, "req-b");
  EXPECT_EQ(rec.undecided[1].seq, c);
  EXPECT_EQ(rec.undecided[1].payload, "req-c");
  EXPECT_EQ(rec.terminals.size(), 3u);
  EXPECT_EQ(rec.next_seq, 4u);
  EXPECT_EQ(rec.records_dropped, 0u);
  EXPECT_EQ(rec.bytes_dropped, 0u);
}

TEST(Journal, RotationSpreadsHistoryAcrossSegments) {
  const std::string dir = fresh_dir("rotate");
  Journal j;
  Journal::Config cfg;
  cfg.dir = dir;
  cfg.rotate_bytes = 64;  // force a rotation nearly every admit
  cfg.sync = false;       // keep the test fast; durability is not under test
  ASSERT_TRUE(j.open(cfg));
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(j.append_admit("payload-" + std::to_string(i)),
              static_cast<std::uint64_t>(i + 1));
  }
  EXPECT_GE(j.stats().rotations, 1u);
  j.close();

  EXPECT_GT(segment_paths(dir).size(), 1u);
  const JournalRecovery rec = Journal::recover(dir);
  ASSERT_EQ(rec.undecided.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rec.undecided[i].seq, static_cast<std::uint64_t>(i + 1));
    EXPECT_EQ(rec.undecided[i].payload, "payload-" + std::to_string(i));
  }
  EXPECT_EQ(rec.next_seq, 11u);
}

TEST(Journal, CompactionDropsDecidedAndPreservesSeqs) {
  const std::string dir = fresh_dir("compact");
  Journal j;
  Journal::Config cfg;
  cfg.dir = dir;
  cfg.rotate_bytes = 64;
  cfg.sync = false;
  ASSERT_TRUE(j.open(cfg));
  for (int i = 0; i < 6; ++i) j.append_admit("p" + std::to_string(i));
  for (std::uint64_t seq : {1u, 2u, 4u})
    j.append_terminal({seq, 0, "completed", "l", "s"});
  const std::size_t before = segment_paths(dir).size();
  ASSERT_TRUE(j.compact());
  EXPECT_LT(segment_paths(dir).size(), before);

  // Seqs survive compaction verbatim, and the journal keeps appending with
  // no seq reuse.
  EXPECT_EQ(j.append_admit("p-post"), 7u);
  j.close();

  const JournalRecovery rec = Journal::recover(dir);
  ASSERT_EQ(rec.undecided.size(), 4u);
  EXPECT_EQ(rec.undecided[0].seq, 3u);
  EXPECT_EQ(rec.undecided[0].payload, "p2");
  EXPECT_EQ(rec.undecided[1].seq, 5u);
  EXPECT_EQ(rec.undecided[2].seq, 6u);
  EXPECT_EQ(rec.undecided[3].seq, 7u);
  EXPECT_EQ(rec.undecided[3].payload, "p-post");
}

TEST(Journal, AppendFaultSiteRejectsWithoutCrashing) {
  const std::string dir = fresh_dir("fault");
  Journal j;
  Journal::Config cfg;
  cfg.dir = dir;
  ASSERT_TRUE(j.open(cfg));
  ASSERT_EQ(j.append_admit("before"), 1u);
  {
    support::ScopedFault fault("journal.append");
    EXPECT_EQ(j.append_admit("doomed"), 0u);
    EXPECT_EQ(j.stats().append_failures, 1u);
  }
  // Past the fault the journal keeps working and never reuses a seq.
  EXPECT_EQ(j.append_admit("after"), 2u);
  j.close();
  const JournalRecovery rec = Journal::recover(dir);
  ASSERT_EQ(rec.undecided.size(), 2u);
  EXPECT_EQ(rec.undecided[0].payload, "before");
  EXPECT_EQ(rec.undecided[1].payload, "after");
}

// --- quarantine files -------------------------------------------------------

TEST(Journal, QuarantineFileRoundTripsBothFormats) {
  const std::string dir = fresh_dir("quarantine");
  const std::string fixture = "{\"v\":\"partita-oracle-fixture-v1\",\"n\":3}";

  const std::string framed = dir + "/framed.journal";
  ASSERT_TRUE(Journal::write_quarantine_file(framed, 42, fixture));
  std::string got, error;
  ASSERT_TRUE(Journal::read_quarantine_file(framed, &got, &error)) << error;
  EXPECT_EQ(got, fixture);

  // Legacy PR-4 fixtures are bare JSON; the reader must pass them through.
  const std::string legacy = dir + "/legacy.json";
  {
    std::ofstream f(legacy);
    f << fixture;
  }
  ASSERT_TRUE(Journal::read_quarantine_file(legacy, &got, &error)) << error;
  EXPECT_EQ(got, fixture);

  EXPECT_FALSE(Journal::read_quarantine_file(dir + "/absent", &got, &error));
}

// --- corrupt tails: salvage up to the last valid frame, never crash ---------

TEST(JournalCorruptTail, TruncationKeepsEveryWholeFrame) {
  const std::string dir = fresh_dir("truncate");
  {
    Journal j;
    Journal::Config cfg;
    cfg.dir = dir;
    ASSERT_TRUE(j.open(cfg));
    for (int i = 0; i < 3; ++i) j.append_admit("keep-" + std::to_string(i));
  }
  const std::vector<std::string> segs = segment_paths(dir);
  ASSERT_EQ(segs.size(), 1u);
  std::string bytes;
  ASSERT_TRUE(io::read_file(segs[0], &bytes));

  // Chop the tail at every possible point: recovery must keep exactly the
  // frames that survived whole, and account for the dropped suffix. The
  // three frames are identically sized (equal payload lengths).
  ASSERT_EQ(bytes.size() % 3, 0u);
  const std::size_t frame = bytes.size() / 3;
  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    std::ofstream f(segs[0], std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(cut));
    f.close();
    const JournalRecovery rec = Journal::recover(dir);
    ASSERT_EQ(rec.undecided.size(), cut / frame) << "cut at " << cut;
    EXPECT_EQ(rec.bytes_dropped, cut - (cut / frame) * frame) << "cut at " << cut;
    for (std::size_t i = 0; i < rec.undecided.size(); ++i) {
      EXPECT_EQ(rec.undecided[i].payload, "keep-" + std::to_string(i));
    }
  }
}

TEST(JournalCorruptTail, BitFlipStopsAtLastValidFrame) {
  const std::string dir = fresh_dir("bitflip");
  {
    Journal j;
    Journal::Config cfg;
    cfg.dir = dir;
    ASSERT_TRUE(j.open(cfg));
    j.append_admit("first");
    j.append_admit("second");
    j.append_admit("third");
  }
  const std::vector<std::string> segs = segment_paths(dir);
  ASSERT_EQ(segs.size(), 1u);
  std::string clean;
  ASSERT_TRUE(io::read_file(segs[0], &clean));

  std::mt19937_64 rng(20260808);
  for (int trial = 0; trial < 200; ++trial) {
    std::string bytes = clean;
    const std::size_t at = rng() % bytes.size();
    bytes[at] = static_cast<char>(bytes[at] ^ (1u << (rng() % 8)));
    std::ofstream f(segs[0], std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    f.close();
    const JournalRecovery rec = Journal::recover(dir);  // must never crash
    // Whatever was salvaged must be an exact prefix of the real history.
    static const char* kExpected[] = {"first", "second", "third"};
    ASSERT_LE(rec.undecided.size(), 3u);
    for (std::size_t i = 0; i < rec.undecided.size(); ++i) {
      EXPECT_EQ(rec.undecided[i].payload, kExpected[i]) << "trial " << trial;
      EXPECT_EQ(rec.undecided[i].seq, i + 1) << "trial " << trial;
    }
  }
}

TEST(JournalCorruptTail, RandomGarbageNeverCrashesRecovery) {
  const std::string dir = fresh_dir("garbage");
  std::mt19937_64 rng(987654321);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t len = rng() % 512;
    std::string bytes(len, '\0');
    for (char& c : bytes) c = static_cast<char>(rng());
    // Occasionally lead with the frame magic so the fuzz also walks the
    // header-parses-but-payload-lies paths.
    if (trial % 3 == 0 && bytes.size() >= 4) {
      bytes[0] = '1';
      bytes[1] = 'L';
      bytes[2] = 'J';
      bytes[3] = 'P';
    }
    std::ofstream f(dir + "/wal_000000000001.log",
                    std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    f.close();
    // Surviving the scan is the assertion; whatever parsed must be
    // internally consistent.
    const JournalRecovery rec = Journal::recover(dir);
    EXPECT_GE(rec.next_seq, 1u);
    EXPECT_LE(rec.undecided.size(), rec.records_salvaged);
  }
}

TEST(JournalCorruptTail, ValidFrameWithMalformedJsonIsDroppedNotFatal) {
  const std::string dir = fresh_dir("badjson");
  std::string stream;
  io::encode_frame(Journal::encode_admit(1, 1, "good"), &stream);
  io::encode_frame("this is not a journal record", &stream);
  io::encode_frame(Journal::encode_admit(2, 1, "also-good"), &stream);
  {
    std::ofstream f(dir + "/wal_000000000001.log", std::ios::binary);
    f.write(stream.data(), static_cast<std::streamsize>(stream.size()));
  }
  const JournalRecovery rec = Journal::recover(dir);
  // The CRC frame was intact, so decoding continues past the bad record.
  ASSERT_EQ(rec.undecided.size(), 2u);
  EXPECT_EQ(rec.undecided[0].payload, "good");
  EXPECT_EQ(rec.undecided[1].payload, "also-good");
  EXPECT_EQ(rec.records_dropped, 1u);
  EXPECT_EQ(rec.bytes_dropped, 0u);
}

TEST(JournalCorruptTail, ReopenAfterTornTailContinuesCleanly) {
  const std::string dir = fresh_dir("reopen");
  {
    Journal j;
    Journal::Config cfg;
    cfg.dir = dir;
    ASSERT_TRUE(j.open(cfg));
    j.append_admit("survivor");
    j.append_admit("torn-away");
  }
  // Tear the tail mid-frame (simulated power loss during the second append).
  const std::vector<std::string> segs = segment_paths(dir);
  ASSERT_EQ(segs.size(), 1u);
  std::string bytes;
  ASSERT_TRUE(io::read_file(segs[0], &bytes));
  {
    std::ofstream f(segs[0], std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 7));
  }

  // A reopened journal compacts the salvage and keeps serving appends with
  // fresh seqs; the torn admit is gone (it was never acknowledged).
  const JournalRecovery rec = Journal::recover(dir);
  ASSERT_EQ(rec.undecided.size(), 1u);
  EXPECT_EQ(rec.undecided[0].payload, "survivor");
  Journal j;
  Journal::Config cfg;
  cfg.dir = dir;
  ASSERT_TRUE(j.open(cfg, rec));
  EXPECT_EQ(j.append_admit("fresh"), 2u);
  j.close();
  const JournalRecovery again = Journal::recover(dir);
  ASSERT_EQ(again.undecided.size(), 2u);
  EXPECT_EQ(again.undecided[0].payload, "survivor");
  EXPECT_EQ(again.undecided[1].payload, "fresh");
}

}  // namespace
}  // namespace partita

// Durable serving end to end, minus the actual SIGKILL (the CI recover job
// and the loadgen harness own real process death): a journaled SolveService
// writes an admit record before acknowledging and a terminal record per
// finished item; admits journaled-but-undecided (a simulated crash) replay
// through from_journal_payload into a fresh service and answer bit-identical
// to an uninterrupted control run; a failing journal append rejects the
// submit with a transient, unacknowledged error; the solution-cache snapshot
// survives a drain/boot cycle; and checkpoint files are cleaned up once
// their request completes.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include <unistd.h>

#include "net/protocol.hpp"
#include "select/selection.hpp"
#include "service/journal.hpp"
#include "service/solve_service.hpp"
#include "support/fault_injection.hpp"
#include "support/io.hpp"

namespace partita {
namespace {

namespace io = support::io;
using service::Journal;
using service::JournalRecovery;

std::string fresh_dir(const std::string& tag) {
  static int counter = 0;
  const std::string d = ::testing::TempDir() + "partita_recovery_" +
                        std::to_string(::getpid()) + "_" + tag + "_" +
                        std::to_string(counter++);
  EXPECT_TRUE(io::make_dirs(d));
  return d;
}

/// One wire-level submit, the unit both the journal and the replayer speak.
net::WireRequest wire_submit(const std::string& workload, const std::string& label,
                             int priority = service::kPriorityStandard) {
  net::WireRequest w;
  w.verb = "submit";
  w.workload = workload;
  w.label = label;
  w.tenant = "tenant-r";
  w.priority = priority;
  return w;
}

service::SolveRequest to_request(const net::WireRequest& w) {
  service::SolveRequest req;
  std::string error;
  EXPECT_TRUE(net::to_service_request(w, &req, &error)) << error;
  return req;
}

TEST(ServiceRecovery, JournaledLifecycleWritesAdmitThenTerminalThenCompacts) {
  const std::string dir = fresh_dir("lifecycle");
  Journal journal;
  Journal::Config jc;
  jc.dir = dir;
  ASSERT_TRUE(journal.open(jc));

  service::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.journal = &journal;
  service::SolveService svc(cfg);

  const std::uint64_t t1 = svc.submit(to_request(wire_submit("fig9", "r1")));
  const std::uint64_t t2 = svc.submit(to_request(wire_submit("fig10", "r2")));
  const service::SolveResponse r1 = svc.wait(t1);
  const service::SolveResponse r2 = svc.wait(t2);
  ASSERT_EQ(r1.state, service::RequestState::kCompleted) << r1.error.render();
  ASSERT_EQ(r2.state, service::RequestState::kCompleted) << r2.error.render();
  EXPECT_FALSE(r1.recovered);

  // Both admits are decided; their terminal records carry the signatures.
  std::map<std::string, std::string> sig;
  const JournalRecovery mid = Journal::recover(dir);
  EXPECT_EQ(mid.undecided.size(), 0u);
  ASSERT_EQ(mid.terminals.size(), 2u);
  for (const service::JournalTerminal& t : mid.terminals) {
    EXPECT_EQ(t.state, "completed");
    sig[t.label] = t.signature;
  }
  EXPECT_EQ(sig["r1"], select::solution_signature(r1.selection));
  EXPECT_EQ(sig["r2"], select::solution_signature(r2.selection));
  EXPECT_EQ(journal.stats().admits, 2u);
  EXPECT_EQ(journal.stats().terminals, 2u);

  // Graceful drain compacts the decided history away.
  svc.drain();
  const JournalRecovery after = Journal::recover(dir);
  EXPECT_EQ(after.undecided.size(), 0u);
  EXPECT_EQ(after.terminals.size(), 0u);
  // Seq continuity survives the compaction (no reuse after reboot).
  EXPECT_EQ(after.next_seq, mid.next_seq);
}

TEST(ServiceRecovery, UndecidedAdmitsReplayBitIdenticallyToControl) {
  // Control: an uninterrupted service answers these exact submits.
  const std::vector<net::WireRequest> wires = {
      wire_submit("fig9", "a"), wire_submit("gsm_decoder", "b"),
      wire_submit("jpeg_encoder", "c"),
      wire_submit("fig10", "d", service::kPriorityInteractive)};
  std::map<std::string, std::string> control;
  {
    service::ServiceConfig cfg;
    cfg.workers = 2;
    service::SolveService svc(cfg);
    std::vector<std::uint64_t> tickets;
    for (const net::WireRequest& w : wires) tickets.push_back(svc.submit(to_request(w)));
    for (std::size_t i = 0; i < wires.size(); ++i) {
      const service::SolveResponse r = svc.wait(tickets[i]);
      ASSERT_EQ(r.state, service::RequestState::kCompleted) << r.error.render();
      control[wires[i].label] = select::solution_signature(r.selection);
    }
  }

  // "Crash": the admits made it to the journal -- they were acknowledged --
  // but the process died before any terminal record.
  const std::string dir = fresh_dir("replay");
  {
    Journal journal;
    Journal::Config jc;
    jc.dir = dir;
    ASSERT_TRUE(journal.open(jc));
    for (const net::WireRequest& w : wires) {
      ASSERT_NE(journal.append_admit(net::encode_request(w)), 0u);
    }
    // No close-side compaction here: dropping the object mid-flight is the
    // closest in-process stand-in for SIGKILL.
  }

  // Boot: recover, re-open, replay through normal admission.
  JournalRecovery rec = Journal::recover(dir);
  ASSERT_EQ(rec.undecided.size(), wires.size());
  Journal journal;
  Journal::Config jc;
  jc.dir = dir;
  ASSERT_TRUE(journal.open(jc, rec));
  service::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.journal = &journal;
  service::SolveService svc(cfg);

  std::vector<std::uint64_t> tickets;
  std::vector<std::string> labels;
  for (const service::JournalRecord& r : rec.undecided) {
    service::SolveRequest req;
    std::string error;
    ASSERT_TRUE(net::from_journal_payload(r.payload, r.seq, &req, &error)) << error;
    EXPECT_TRUE(req.recovered);
    EXPECT_EQ(req.journal_seq, r.seq);
    labels.push_back(req.label);
    const service::SubmitOutcome out = svc.submit(std::move(req));
    ASSERT_TRUE(out.admitted()) << out.reject_reason;
    tickets.push_back(out.ticket());
  }
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const service::SolveResponse r = svc.wait(tickets[i]);
    ASSERT_EQ(r.state, service::RequestState::kCompleted) << r.error.render();
    EXPECT_TRUE(r.recovered) << labels[i];
    // The recovery guarantee: bit-identical to the uninterrupted answer.
    EXPECT_EQ(select::solution_signature(r.selection), control[labels[i]])
        << labels[i];
  }
  EXPECT_EQ(svc.stats().recovered_requests, wires.size());

  // Replays reuse their original seqs: no duplicate admits, and every item
  // is now decided exactly once.
  const JournalRecovery settled = Journal::recover(dir);
  EXPECT_EQ(settled.undecided.size(), 0u);
  EXPECT_EQ(journal.stats().admits, 0u);  // nothing re-journaled
  EXPECT_EQ(journal.stats().terminals, wires.size());
}

TEST(ServiceRecovery, BatchReplayKeepsPerItemSignatures) {
  net::WireRequest batch = wire_submit("gsm_encoder", "ladder");
  batch.gains = {-1, -1, -1};

  std::vector<std::string> control;
  {
    service::ServiceConfig cfg;
    cfg.workers = 2;
    service::SolveService svc(cfg);
    const service::SubmitOutcome out = svc.submit(to_request(batch));
    ASSERT_EQ(out.tickets.size(), 3u);
    for (const std::uint64_t t : out.tickets) {
      const service::SolveResponse r = svc.wait(t);
      ASSERT_EQ(r.state, service::RequestState::kCompleted) << r.error.render();
      control.push_back(select::solution_signature(r.selection));
    }
  }

  const std::string dir = fresh_dir("batch");
  {
    Journal journal;
    Journal::Config jc;
    jc.dir = dir;
    ASSERT_TRUE(journal.open(jc));
    ASSERT_NE(journal.append_admit(net::encode_request(batch), 3), 0u);
  }
  JournalRecovery rec = Journal::recover(dir);
  ASSERT_EQ(rec.undecided.size(), 1u);
  ASSERT_EQ(rec.undecided[0].items, 3u);

  Journal journal;
  Journal::Config jc;
  jc.dir = dir;
  ASSERT_TRUE(journal.open(jc, rec));
  service::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.journal = &journal;
  service::SolveService svc(cfg);
  service::SolveRequest req;
  std::string error;
  ASSERT_TRUE(
      net::from_journal_payload(rec.undecided[0].payload, rec.undecided[0].seq,
                                &req, &error))
      << error;
  const service::SubmitOutcome out = svc.submit(std::move(req));
  ASSERT_EQ(out.tickets.size(), 3u);
  for (std::size_t i = 0; i < out.tickets.size(); ++i) {
    const service::SolveResponse r = svc.wait(out.tickets[i]);
    ASSERT_EQ(r.state, service::RequestState::kCompleted) << r.error.render();
    EXPECT_EQ(select::solution_signature(r.selection), control[i]) << "item " << i;
  }
  const JournalRecovery settled = Journal::recover(dir);
  EXPECT_EQ(settled.undecided.size(), 0u);
}

TEST(ServiceRecovery, JournalAppendFailureRejectsUnacknowledged) {
  const std::string dir = fresh_dir("reject");
  Journal journal;
  Journal::Config jc;
  jc.dir = dir;
  ASSERT_TRUE(journal.open(jc));
  service::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.journal = &journal;
  service::SolveService svc(cfg);

  {
    support::ScopedFault fault("journal.append");
    const service::SubmitOutcome out = svc.submit(to_request(wire_submit("fig9", "doomed")));
    ASSERT_EQ(out.state, service::RequestState::kRejected);
    ASSERT_EQ(out.tickets.size(), 1u);
    const service::SolveResponse r = svc.wait(out.ticket());
    EXPECT_EQ(r.state, service::RequestState::kRejected);
    // The client was never acknowledged; the error says so and is
    // retryable.
    EXPECT_EQ(r.error.kind, support::ErrorKind::kTransient) << r.error.render();
  }
  EXPECT_EQ(svc.stats().journal_rejects, 1u);
  // Nothing hit the journal: a rejected submit must not replay after a
  // crash (the client never got an acknowledgment to rely on).
  EXPECT_EQ(Journal::recover(dir).undecided.size(), 0u);

  // With the fault gone the same request is admitted and journaled.
  const std::uint64_t t = svc.submit(to_request(wire_submit("fig9", "ok")));
  EXPECT_EQ(svc.wait(t).state, service::RequestState::kCompleted);
  EXPECT_EQ(journal.stats().admits, 1u);
}

TEST(ServiceRecovery, CacheSnapshotSurvivesDrainBootCycle) {
  net::WireRequest probe = wire_submit("fig9", "warm");
  probe.required_gain = 10000;

  std::string snapshot;
  std::string warm_sig;
  {
    service::ServiceConfig cfg;
    cfg.workers = 1;
    cfg.cache_enabled = true;
    service::SolveService svc(cfg);
    const service::SolveResponse first = svc.wait(svc.submit(to_request(probe)));
    ASSERT_EQ(first.state, service::RequestState::kCompleted);
    EXPECT_EQ(first.cache, "miss");
    const service::SolveResponse second = svc.wait(svc.submit(to_request(probe)));
    ASSERT_EQ(second.state, service::RequestState::kCompleted);
    EXPECT_EQ(second.cache, "hit");
    warm_sig = select::solution_signature(second.selection);
    svc.drain();
    snapshot = svc.export_cache_snapshot();
    ASSERT_FALSE(snapshot.empty());
  }

  // "Reboot": a fresh service imports the snapshot and answers from cache,
  // bit-identically.
  service::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.cache_enabled = true;
  service::SolveService svc(cfg);
  EXPECT_GT(svc.import_cache_snapshot(snapshot), 0u);
  const service::SolveResponse r = svc.wait(svc.submit(to_request(probe)));
  ASSERT_EQ(r.state, service::RequestState::kCompleted);
  EXPECT_EQ(r.cache, "hit");
  EXPECT_EQ(select::solution_signature(r.selection), warm_sig);

  // A garbage snapshot is refused wholesale, never half-imported.
  service::SolveService svc2(cfg);
  EXPECT_EQ(svc2.import_cache_snapshot("not a snapshot"), 0u);
  EXPECT_EQ(svc2.import_cache_snapshot(""), 0u);
}

TEST(ServiceRecovery, CheckpointFilesAreRemovedOnceDecided) {
  const std::string dir = fresh_dir("ckpt");
  Journal journal;
  Journal::Config jc;
  jc.dir = dir;
  ASSERT_TRUE(journal.open(jc));
  service::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.journal = &journal;
  cfg.checkpoint_dir = dir + "/checkpoints";
  cfg.checkpoint_every_waves = 1;
  service::SolveService svc(cfg);

  const std::uint64_t t = svc.submit(to_request(wire_submit("gsm_encoder", "ck")));
  const service::SolveResponse r = svc.wait(t);
  ASSERT_EQ(r.state, service::RequestState::kCompleted) << r.error.render();
  // Whatever checkpoints the solve wrote, the decided request must leave no
  // orphan behind.
  for (const std::string& name : io::list_dir(cfg.checkpoint_dir)) {
    EXPECT_TRUE(name.rfind("ckpt_", 0) != 0) << "orphan checkpoint " << name;
  }
}

}  // namespace
}  // namespace partita

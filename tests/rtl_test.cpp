// Tests for the Verilog emitter: structure, naming, and consistency with
// the models it renders.
#include <gtest/gtest.h>

#include "iface/model.hpp"
#include "rtl/verilog.hpp"

namespace partita::rtl {
namespace {

iplib::IpDescriptor make_ip() {
  iplib::IpDescriptor ip;
  ip.name = "T";
  ip.in_rate = 2;
  ip.out_rate = 4;
  ip.latency = 16;
  ip.functions.push_back({"f", 5000, 64, 32});
  return ip;
}

iface::ControllerFsm make_fsm(iface::InterfaceType type = iface::InterfaceType::kType2) {
  const iface::KernelParams k;
  const iplib::IpDescriptor ip = make_ip();
  return iface::ControllerFsm::synthesize(
      iface::expand_template(type, ip, ip.functions[0], k));
}

TEST(Sanitize, Identifiers) {
  EXPECT_EQ(sanitize_identifier("IP12-IF0"), "IP12_IF0");
  EXPECT_EQ(sanitize_identifier("1bad"), "m_1bad");
  EXPECT_EQ(sanitize_identifier(""), "m_");
  EXPECT_EQ(sanitize_identifier("fine_name"), "fine_name");
}

TEST(Controller, EmitsModuleSkeleton) {
  const std::string v = emit_controller(make_fsm(), "ctrl_t");
  EXPECT_NE(v.find("module ctrl_t"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("input  wire clk"), std::string::npos);
  EXPECT_NE(v.find("output reg  done"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk"), std::string::npos);
}

TEST(Controller, OneLocalparamPerState) {
  const iface::ControllerFsm fsm = make_fsm();
  const std::string v = emit_controller(fsm, "ctrl_t");
  for (std::size_t i = 0; i < fsm.states().size(); ++i) {
    EXPECT_NE(v.find("] S" + std::to_string(i) + " ="), std::string::npos) << i;
  }
  EXPECT_NE(v.find("S_DONE"), std::string::npos);
}

TEST(Controller, LoopCountersEmitted) {
  const iface::ControllerFsm fsm = make_fsm();
  ASSERT_GT(fsm.counter_count(), 0u);
  const std::string v = emit_controller(fsm, "ctrl_t");
  for (std::size_t c = 0; c < fsm.counter_count(); ++c) {
    EXPECT_NE(v.find("reg [15:0] cnt" + std::to_string(c)), std::string::npos);
    EXPECT_NE(v.find("CNT" + std::to_string(c) + "_INIT"), std::string::npos);
  }
}

TEST(Controller, StrobesForDmaOps) {
  const std::string v = emit_controller(make_fsm(), "ctrl_t");
  EXPECT_NE(v.find("do_dma_read"), std::string::npos);
  EXPECT_NE(v.find("do_dma_write"), std::string::npos);
  EXPECT_NE(v.find("do_bus_connect"), std::string::npos);
}

TEST(Controller, Type3EmitsStartStrobe) {
  const std::string v = emit_controller(make_fsm(iface::InterfaceType::kType3), "c3");
  EXPECT_NE(v.find("do_start_ip"), std::string::npos);
}

// --- u-ROM ---------------------------------------------------------------------

TEST(UromRtl, EmitsPointerCase) {
  ucode::Urom urom;
  urom.add_sequence("seq_a", {{"w1"}, {"w2"}, {"w1"}});
  urom.add_sequence("seq_b", {{"w2"}});
  urom.optimize();
  const std::string v = emit_urom(urom, "urom_t");
  EXPECT_NE(v.find("module urom_t"), std::string::npos);
  EXPECT_NE(v.find("nano_sel"), std::string::npos);
  // 4 micro words total; addresses 0..3 present.
  for (int a = 0; a < 4; ++a) {
    EXPECT_NE(v.find("'d" + std::to_string(a) + ": nano_sel"), std::string::npos) << a;
  }
  // Sequence base comments.
  EXPECT_NE(v.find("// seq_a starts at 0"), std::string::npos);
  EXPECT_NE(v.find("// seq_b starts at 3"), std::string::npos);
  // Nano-store contents documented.
  EXPECT_NE(v.find("w1"), std::string::npos);
}

// --- decoder --------------------------------------------------------------------

TEST(DecoderRtl, PrefixPatternsAndPriority) {
  ucode::InstructionSet isa;
  ucode::Instruction hot, cold1, cold2;
  hot.name = "hot";
  hot.frequency = 100;
  cold1.name = "c1";
  cold1.frequency = 1;
  cold2.name = "c2";
  cold2.frequency = 1;
  isa.add(hot);
  isa.add(cold1);
  isa.add(cold2);
  isa.encode();

  const std::string v = emit_decoder(isa, "dec_t");
  EXPECT_NE(v.find("module dec_t"), std::string::npos);
  EXPECT_NE(v.find("casez (opcode)"), std::string::npos);
  // hot has the 1-bit code "0" -> pattern 0?; colds have 2-bit codes.
  EXPECT_NE(v.find("2'b0?"), std::string::npos);
  EXPECT_NE(v.find("2'b10"), std::string::npos);
  EXPECT_NE(v.find("2'b11"), std::string::npos);
  // The shortest pattern must appear before the longer ones (priority).
  EXPECT_LT(v.find("2'b0?"), v.find("2'b10"));
}

TEST(DecoderRtl, SelectWidthMatchesInstructionCount) {
  ucode::InstructionSet isa;
  isa.seed_p_class();
  isa.encode();
  const std::string v = emit_decoder(isa, "dec_p");
  EXPECT_NE(v.find("output reg  [" + std::to_string(isa.size() - 1) + ":0] select"),
            std::string::npos);
}

}  // namespace
}  // namespace partita::rtl

// Tests for the MiniC frontend: lexer, parser, semantic checks and the
// cycle/dependence derivation of the code generator.
#include <gtest/gtest.h>

#include "cdfg/parallel.hpp"
#include "cdfg/paths.hpp"
#include "ir/verify.hpp"
#include "minic/mc_codegen.hpp"
#include "minic/mc_lexer.hpp"
#include "minic/mc_parser.hpp"
#include "profile/profile.hpp"

namespace partita::minic {
namespace {

using support::DiagnosticEngine;

std::optional<ir::Module> compile(std::string_view src) {
  DiagnosticEngine diags;
  auto m = mc_compile_source(src, "t", diags);
  EXPECT_TRUE(m.has_value()) << diags.render_all();
  if (m) {
    DiagnosticEngine vd;
    EXPECT_TRUE(ir::verify_module(*m, vd)) << vd.render_all();
  }
  return m;
}

// --- lexer --------------------------------------------------------------------

TEST(McLexer, OperatorsAndKeywords) {
  DiagnosticEngine diags;
  const auto toks = mc_lex("int a; a = b << 2 != -c /* x */ // y", diags);
  ASSERT_FALSE(diags.has_errors());
  EXPECT_EQ(toks[0].kind, McTok::kKwInt);
  EXPECT_EQ(toks[3].kind, McTok::kIdent);  // a
  EXPECT_EQ(toks[4].kind, McTok::kAssign);
  EXPECT_EQ(toks[6].kind, McTok::kShl);
  EXPECT_EQ(toks[8].kind, McTok::kNe);
  EXPECT_EQ(toks[9].kind, McTok::kMinus);
  EXPECT_EQ(toks.back().kind, McTok::kEof);
}

TEST(McLexer, DunderKeywords) {
  DiagnosticEngine diags;
  const auto toks = mc_lex("__scall __cycles __prob __other", diags);
  EXPECT_EQ(toks[0].kind, McTok::kKwScall);
  EXPECT_EQ(toks[1].kind, McTok::kKwCycles);
  EXPECT_EQ(toks[2].kind, McTok::kKwProb);
  EXPECT_EQ(toks[3].kind, McTok::kIdent);
}

TEST(McLexer, RejectsBadChar) {
  DiagnosticEngine diags;
  mc_lex("a $ b", diags);
  EXPECT_TRUE(diags.has_errors());
}

// --- parser --------------------------------------------------------------------

TEST(McParser, FullTranslationUnit) {
  DiagnosticEngine diags;
  auto prog = mc_parse(R"(
int frame[160];
int gain;

__scall __cycles(14000) void fir(in int x[], out int y[]);

void main() {
  int acc;
  acc = 0;
  for (i = 0; i < 160; i = i + 1) {
    acc = acc + frame[i] * 3;
  }
  if (__prob(0.25)) {
    gain = acc >> 2;
  } else {
    gain = acc;
  }
  fir(frame, frame);
}
)",
                       diags);
  ASSERT_TRUE(prog.has_value()) << diags.render_all();
  EXPECT_EQ(prog->globals.size(), 2u);
  EXPECT_EQ(prog->globals[0].array_size, 160);
  ASSERT_EQ(prog->functions.size(), 2u);
  const Function& fir = prog->functions[0];
  EXPECT_TRUE(fir.is_scall);
  EXPECT_EQ(fir.declared_cycles, 14000);
  EXPECT_FALSE(fir.has_body);
  ASSERT_EQ(fir.params.size(), 2u);
  EXPECT_EQ(fir.params[0].dir, ParamDir::kIn);
  EXPECT_EQ(fir.params[1].dir, ParamDir::kOut);
  EXPECT_TRUE(fir.params[0].is_array);
}

TEST(McParser, PrototypeWithoutCyclesRejected) {
  DiagnosticEngine diags;
  EXPECT_FALSE(mc_parse("void f();", diags).has_value());
}

TEST(McParser, NonCanonicalForRejected) {
  DiagnosticEngine diags;
  EXPECT_FALSE(
      mc_parse("void main() { for (i = 0; j < 10; i = i + 1) { i = 0; } }", diags)
          .has_value());
}

TEST(McParser, ProbOutOfRangeRejected) {
  DiagnosticEngine diags;
  EXPECT_FALSE(
      mc_parse("void main() { if (__prob(1.5)) { } }", diags).has_value());
}

// --- expression cost model --------------------------------------------------------

TEST(McCost, CountsOpsAndMemoryAccesses) {
  DiagnosticEngine diags;
  auto prog = mc_parse(R"(
int a[8];
int x;
void main() {
  x = a[x] * 3 + 2;
}
)",
                       diags);
  ASSERT_TRUE(prog);
  const Stmt& assign = *prog->functions[0].body[0];
  // a[x]: 1 load; *: 1; +: 1 -> value cost 3; scalar store 1 -> total 4.
  EXPECT_EQ(expr_cost(*assign.value), 3);
}

// --- codegen -------------------------------------------------------------------

TEST(McCodegen, StraightLineRunsBecomeOneSeg) {
  auto m = compile(R"(
int a; int b; int c;
void main() {
  a = 1;
  b = a + 2;
  c = a * b;
}
)");
  ASSERT_TRUE(m);
  const ir::Function& main_fn = m->function(m->entry());
  ASSERT_EQ(main_fn.body().size(), 1u);
  const ir::Stmt& seg = main_fn.stmt(main_fn.body()[0]);
  EXPECT_EQ(seg.kind, ir::StmtKind::kSeg);
  // a=1 (1), b=a+2 (1+1), c=a*b (1+1) -> 5 cycles.
  EXPECT_EQ(seg.cycles, 5);
  // writes: a, b, c; reads: a, b.
  EXPECT_EQ(seg.writes.size(), 3u);
  EXPECT_EQ(seg.reads.size(), 2u);
}

TEST(McCodegen, ForLoopTripCount) {
  auto m = compile(R"(
int s;
void main() {
  for (i = 0; i < 37; i = i + 4) {
    s = s + 1;
  }
}
)");
  ASSERT_TRUE(m);
  const ir::Function& main_fn = m->function(m->entry());
  ASSERT_EQ(main_fn.body().size(), 1u);
  const ir::Stmt& loop = main_fn.stmt(main_fn.body()[0]);
  EXPECT_EQ(loop.kind, ir::StmtKind::kLoop);
  EXPECT_EQ(loop.trip_count, 10);  // ceil(37/4)
}

TEST(McCodegen, CallDirectionsBecomeReadsWrites) {
  auto m = compile(R"(
int x[16]; int y[16]; int z[16];
__scall __cycles(900) void fir(in int a[], out int b[], inout int c[]);
void main() {
  fir(x, y, z);
}
)");
  ASSERT_TRUE(m);
  const ir::Function& main_fn = m->function(m->entry());
  const ir::Stmt& call = main_fn.stmt(main_fn.body()[0]);
  ASSERT_EQ(call.kind, ir::StmtKind::kCall);
  ASSERT_EQ(call.reads.size(), 2u);   // x, z
  ASSERT_EQ(call.writes.size(), 2u);  // y, z
  EXPECT_EQ(m->symbol_name(call.reads[0]), "x");
  EXPECT_EQ(m->symbol_name(call.writes[0]), "y");
}

TEST(McCodegen, ProbAnnotationSetsBranchProbability) {
  auto m = compile(R"(
int a;
void main() {
  if (__prob(0.125)) { a = 1; } else { a = 2; }
}
)");
  ASSERT_TRUE(m);
  const ir::Function& main_fn = m->function(m->entry());
  const ir::Stmt& iff = main_fn.stmt(main_fn.body()[0]);
  ASSERT_EQ(iff.kind, ir::StmtKind::kIf);
  EXPECT_DOUBLE_EQ(iff.taken_prob, 0.125);
}

TEST(McCodegen, SemanticErrors) {
  DiagnosticEngine diags;
  EXPECT_FALSE(mc_compile_source("void main() { x = 1; }", "t", diags).has_value());
  diags.clear();
  EXPECT_FALSE(mc_compile_source("void main() { ghost(); }", "t", diags).has_value());
  diags.clear();
  EXPECT_FALSE(mc_compile_source(R"(
__scall __cycles(10) void f(in int a);
void main() { f(); }
)",
                                 "t", diags)
                   .has_value());
  diags.clear();
  EXPECT_FALSE(mc_compile_source("__scall __cycles(5) void f();", "t", diags).has_value())
      << "missing main must be rejected";
}

TEST(McCodegen, ProfileAndDependenceFlowThrough) {
  // End-to-end: compiled MiniC supports profiling and PC extraction.
  auto m = compile(R"(
int frame[64]; int out1[64]; int hist[64]; int packed;
__scall __cycles(9000) void fir(in int x[], out int y[]);
void main() {
  for (i = 0; i < 64; i = i + 1) {
    frame[i] = frame[i] + 1;
  }
  fir(frame, out1);
  for (j = 0; j < 32; j = j + 1) {
    hist[j] = frame[j] * 2;
  }
  packed = out1[0] + hist[0];
}
)");
  ASSERT_TRUE(m);
  const profile::ModuleProfile prof = profile::profile_module(*m);
  EXPECT_GT(prof.total_cycles, 9000);

  cdfg::Cdfg g(*m, m->function(m->entry()));
  g.annotate_call_cycles([&](ir::FuncId f) { return prof.cycles_of(f); });
  const auto paths = cdfg::enumerate_paths(g);
  const cdfg::NodeIndex call = g.node_of_call(ir::CallSiteId{0});
  ASSERT_NE(call, cdfg::kInvalidNode);
  // The hist loop reads frame but not out1: it cannot be the PC (different
  // loop context), but the trailing scalar pack depends on out1 -> no PC.
  const cdfg::ParallelCode pc = cdfg::parallel_code(g, call, paths);
  EXPECT_EQ(pc.cycles, 0);
}

}  // namespace
}  // namespace partita::minic

// Pricing-mode determinism: candidate-list pricing is a performance knob,
// never an answer knob. Under canonical tie-breaking every (pricing mode,
// candidate-list size, stall threshold) combination must report the exact
// same selection -- the list only restricts which improving column enters,
// and optimality is only ever certified by a full scan.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ilp/simplex.hpp"
#include "select/flow.hpp"
#include "workloads/random_workload.hpp"
#include "workloads/workloads.hpp"

namespace partita {
namespace {

struct Case {
  std::string name;
  workloads::Workload w;
};

std::vector<Case> cases() {
  std::vector<Case> out;
  out.push_back({"gsm_encoder", workloads::gsm_encoder()});
  out.push_back({"gsm_decoder", workloads::gsm_decoder()});
  out.push_back({"jpeg_encoder", workloads::jpeg_encoder()});
  workloads::RandomWorkloadParams p;
  p.call_sites = 24;
  p.leaf_functions = 8;
  p.ips = 12;
  out.push_back({"random_24site", workloads::random_workload(p, 4242)});
  return out;
}

void expect_same_selection(const select::Selection& a, const select::Selection& b,
                           const std::string& what) {
  EXPECT_EQ(a.feasible, b.feasible) << what;
  EXPECT_EQ(a.chosen, b.chosen) << what;
  EXPECT_EQ(a.ips_used, b.ips_used) << what;
  EXPECT_EQ(a.min_path_gain, b.min_path_gain) << what;
  EXPECT_DOUBLE_EQ(a.ip_area, b.ip_area) << what;
  EXPECT_DOUBLE_EQ(a.interface_area, b.interface_area) << what;
  EXPECT_EQ(a.rung, b.rung) << what;
}

TEST(PricingDeterminism, DantzigAndCandidateListSelectIdentically) {
  for (const Case& c : cases()) {
    select::Flow flow(c.w.module, c.w.library);
    const std::int64_t gmax = flow.max_feasible_gain();
    for (const std::int64_t rg : {gmax / 4, gmax / 2, gmax}) {
      select::SelectOptions dantzig, cand;
      dantzig.ilp.lp.pricing = ilp::PricingMode::kDantzig;
      cand.ilp.lp.pricing = ilp::PricingMode::kCandidateList;
      const select::Selection a = flow.select(rg, dantzig);
      const select::Selection b = flow.select(rg, cand);
      expect_same_selection(a, b, c.name + " rg=" + std::to_string(rg));
    }
  }
}

TEST(PricingDeterminism, LpOptimaAgreeAcrossPricingModes) {
  for (const Case& c : cases()) {
    select::Flow flow(c.w.module, c.w.library);
    const std::int64_t gmax = flow.max_feasible_gain();
    const ilp::Model m = flow.selector().build_model(
        std::vector<std::int64_t>(flow.paths().size(), gmax / 2), {});
    ilp::LpOptions dantzig, cand;
    dantzig.pricing = ilp::PricingMode::kDantzig;
    cand.pricing = ilp::PricingMode::kCandidateList;
    const ilp::LpResult a = ilp::solve_lp(m, dantzig);
    const ilp::LpResult b = ilp::solve_lp(m, cand);
    ASSERT_EQ(a.status, ilp::LpStatus::kOptimal) << c.name;
    ASSERT_EQ(b.status, ilp::LpStatus::kOptimal) << c.name;
    EXPECT_NEAR(a.objective, b.objective, 1e-6 * (1.0 + std::abs(a.objective)))
        << c.name;
    // The candidate list must actually have been exercised, not silently
    // degraded to full scans.
    EXPECT_GT(b.candidate_scans + b.pricing_refreshes, 0) << c.name;
  }
}

TEST(PricingDeterminism, CandidateListSizeIsAnswerNeutral) {
  const Case c = cases()[3];  // random_24site: widest model, most pricing work
  select::Flow flow(c.w.module, c.w.library);
  const std::int64_t rg = flow.max_feasible_gain() / 2;
  const select::Selection baseline = flow.select(rg, {});
  for (const int size : {4, 8, 64, 512}) {
    select::SelectOptions opt;
    opt.ilp.lp.candidate_list_size = size;
    expect_same_selection(baseline, flow.select(rg, opt),
                          "candidate_list_size=" + std::to_string(size));
  }
}

TEST(PricingDeterminism, StallLimitIsAnswerNeutral) {
  // The Bland's-rule stall threshold changes when the anti-cycling fallback
  // engages, never what the solve converges to.
  const Case c = cases()[1];  // gsm_decoder
  select::Flow flow(c.w.module, c.w.library);
  const std::int64_t rg = flow.max_feasible_gain() / 2;
  const select::Selection baseline = flow.select(rg, {});
  for (const int stall : {1, 8, 256}) {
    select::SelectOptions opt;
    opt.ilp.lp.stall_limit = stall;
    expect_same_selection(baseline, flow.select(rg, opt),
                          "stall_limit=" + std::to_string(stall));
  }
}

TEST(PricingDeterminism, RepeatedSolvesAreBitIdentical) {
  // Same flow object, same options, back-to-back: candidate-list state must
  // not leak between solves.
  const Case c = cases()[3];
  select::Flow flow(c.w.module, c.w.library);
  const std::int64_t rg = flow.max_feasible_gain() / 2;
  const select::Selection a = flow.select(rg, {});
  const select::Selection b = flow.select(rg, {});
  expect_same_selection(a, b, "repeat");
  EXPECT_EQ(a.solver.nodes, b.solver.nodes);
  EXPECT_EQ(a.solver.lp_iterations, b.solver.lp_iterations);
}

}  // namespace
}  // namespace partita

// End-to-end shrinker demo: inject a real selector bug via the
// "select.objective_skew" fault site (the ILP objective silently drops
// interface areas, so the solver returns feasible-but-suboptimal answers),
// let the differential oracle catch it on a 10-s-call instance, and
// delta-debug the failure down to a <= 4-s-call minimal repro that survives
// a JSON round trip.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <optional>

#include "oracle/differential.hpp"
#include "oracle/fixture.hpp"
#include "oracle/shrink.hpp"
#include "support/fault_injection.hpp"
#include "workloads/random_workload.hpp"

namespace partita {
namespace {

using workloads::InstanceGenParams;
using workloads::InstanceSpec;

InstanceGenParams demo_params() {
  InstanceGenParams p;
  p.scalls = 10;
  p.kernels = 5;
  p.ips = 7;
  p.branch_groups = 2;
  return p;
}

bool diff_fails(const InstanceSpec& spec) {
  const oracle::DiffResult r = oracle::differential_check_spec(spec);
  return !r.ok && !r.skipped;
}

std::optional<InstanceSpec> first_failing_seed(std::uint64_t* seed_out) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const InstanceSpec spec = workloads::random_instance_spec(demo_params(), seed);
    if (diff_fails(spec)) {
      if (seed_out) *seed_out = seed;
      return spec;
    }
  }
  return std::nullopt;
}

TEST(OracleShrink, InjectedObjectiveSkewIsCaughtAndShrunkToMinimalRepro) {
  // Trip every build_model call while armed: the selector keeps producing
  // feasible selections whose decoded (true) area exceeds the optimum.
  support::ScopedFault fault("select.objective_skew");

  std::uint64_t seed = 0;
  const std::optional<InstanceSpec> failing = first_failing_seed(&seed);
  ASSERT_TRUE(failing.has_value())
      << "the skewed objective must diverge on at least one of 30 seeds";

  oracle::ShrinkStats stats;
  const InstanceSpec shrunk = oracle::shrink_spec(*failing, diff_fails, &stats);

  EXPECT_GT(stats.predicate_calls, 0);
  EXPECT_GT(stats.accepted_steps, 0);
  ASSERT_TRUE(diff_fails(shrunk)) << "shrinking must preserve the failure";
  EXPECT_LE(shrunk.sites.size(), 4u)
      << "seed " << seed << " should reduce from 10 s-calls to a tiny repro";
  EXPECT_LE(shrunk.ips.size(), failing->ips.size());

  // The minimal repro must survive fixture serialization and still fail when
  // replayed from JSON -- this is the loadable artifact a bug report ships.
  const std::string json = oracle::fixture_json(shrunk);
  std::string error;
  const std::optional<InstanceSpec> replayed = oracle::parse_fixture(json, &error);
  ASSERT_TRUE(replayed.has_value()) << error;
  EXPECT_TRUE(diff_fails(*replayed));
}

TEST(OracleShrink, SameSeedsPassWithFaultDisarmed) {
  // Control experiment: with the injector disarmed the selector is optimal
  // again and the very same corpus agrees with the oracle.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const InstanceSpec spec = workloads::random_instance_spec(demo_params(), seed);
    const oracle::DiffResult r = oracle::differential_check_spec(spec);
    ASSERT_FALSE(r.skipped);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.detail;
  }
}

TEST(OracleShrink, ShrinkerIsIdempotentOnMinimalSpecs) {
  // A spec that is already minimal for a trivially-true predicate (always
  // failing) can only shrink to one site and one IP, and re-shrinking it
  // changes nothing.
  InstanceGenParams p = demo_params();
  const InstanceSpec spec = workloads::random_instance_spec(p, 3);
  const auto always = [](const InstanceSpec&) { return true; };
  InstanceSpec once = oracle::shrink_spec(spec, always);
  EXPECT_EQ(once.sites.size(), 1u);
  EXPECT_EQ(once.ips.size(), 1u);
  InstanceSpec twice = oracle::shrink_spec(once, always);
  // The shrinker tags the name; normalize it before the structural compare.
  once.name = twice.name = "idempotent";
  EXPECT_EQ(workloads::spec_kl(once), workloads::spec_kl(twice));
  EXPECT_EQ(workloads::spec_library(once), workloads::spec_library(twice));
}

}  // namespace
}  // namespace partita

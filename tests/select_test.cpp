// Tests for the core contribution: the ILP formulation (Problems 1 and 2),
// solution decoding, the selection rule, and the baselines.
#include <gtest/gtest.h>

#include "select/flow.hpp"
#include "workloads/random_workload.hpp"
#include "workloads/workloads.hpp"

namespace partita::select {
namespace {

// --- formulation invariants on the built model ------------------------------------

TEST(Formulation, HasEq1RowsPerSCall) {
  workloads::Workload w = workloads::gsm_decoder();
  Flow flow(w.module, w.library);
  const ilp::Model m =
      flow.selector().build_model(std::vector<std::int64_t>(flow.paths().size(), 1), {});
  std::size_t eq1 = 0, gain_rows = 0, fc = 0;
  for (const ilp::Row& row : m.rows()) {
    if (row.name.rfind("one_imp_", 0) == 0) {
      ++eq1;
      EXPECT_EQ(row.sense, ilp::RowSense::kLessEqual);
      EXPECT_DOUBLE_EQ(row.rhs, 1.0);
    } else if (row.name.rfind("gain_path", 0) == 0) {
      ++gain_rows;
      EXPECT_EQ(row.sense, ilp::RowSense::kGreaterEqual);
    } else if (row.name.rfind("fc_ip", 0) == 0) {
      ++fc;
    }
  }
  EXPECT_EQ(eq1, flow.scalls().size());
  EXPECT_EQ(gain_rows, flow.paths().size());
  EXPECT_GT(fc, 0u);
}

TEST(Formulation, SelectionSatisfiesEverything) {
  workloads::Workload w = workloads::gsm_decoder();
  Flow flow(w.module, w.library);
  const std::int64_t rg = flow.max_feasible_gain() / 2;
  const Selection sel = flow.select(rg);
  ASSERT_TRUE(sel.feasible);

  // Every path actually meets the requirement.
  for (const cdfg::ExecPath& p : flow.paths()) {
    EXPECT_GE(path_gain(sel.chosen, flow.imp_database(), flow.entry_cdfg(), p), rg);
  }
  EXPECT_GE(sel.min_path_gain, rg);

  // At most one IMP per s-call.
  std::set<std::uint32_t> seen;
  for (isel::ImpIndex idx : sel.chosen) {
    const auto site = flow.imp_database().imps()[idx].scall.value();
    EXPECT_TRUE(seen.insert(site).second);
  }
}

TEST(Formulation, FixedChargeCountsIpOnce) {
  // The decoder's shared synthesis-filter IP serves several s-calls; the IP
  // area must appear once.
  workloads::Workload w = workloads::gsm_decoder();
  Flow flow(w.module, w.library);
  const Selection sel = flow.select(flow.max_feasible_gain() * 3 / 4);
  ASSERT_TRUE(sel.feasible);
  double expected_ip_area = 0;
  for (iplib::IpId ip : sel.ips_used) expected_ip_area += w.library.ip(ip).area;
  EXPECT_DOUBLE_EQ(sel.ip_area, expected_ip_area);
  // ips_used has no duplicates by construction; selected s-calls can exceed
  // the IP count only through sharing.
  std::set<std::uint32_t> distinct;
  for (iplib::IpId ip : sel.ips_used) EXPECT_TRUE(distinct.insert(ip.value).second);
}

TEST(Formulation, MergingRuleSLeO) {
  // S (S-instructions) <= O (implemented s-calls), always.
  workloads::Workload w = workloads::gsm_encoder();
  Flow flow(w.module, w.library);
  const std::int64_t gmax = flow.max_feasible_gain();
  for (int k = 1; k <= 4; ++k) {
    const Selection sel = flow.select(gmax * k / 4);
    ASSERT_TRUE(sel.feasible);
    EXPECT_LE(sel.s_instructions, sel.selected_scalls);
  }
}

TEST(Formulation, InfeasibleAboveMaxGain) {
  workloads::Workload w = workloads::gsm_decoder();
  Flow flow(w.module, w.library);
  const std::int64_t gmax = flow.max_feasible_gain();
  EXPECT_TRUE(flow.select(gmax).feasible);
  EXPECT_FALSE(flow.select(gmax + gmax / 10 + 1000).feasible);
}

TEST(Formulation, AreaMonotoneInRequiredGain) {
  workloads::Workload w = workloads::gsm_decoder();
  Flow flow(w.module, w.library);
  const std::int64_t gmax = flow.max_feasible_gain();
  double prev = -1;
  for (int k = 1; k <= 8; ++k) {
    const Selection sel = flow.select(gmax * k / 8);
    ASSERT_TRUE(sel.feasible) << "k=" << k;
    EXPECT_GE(sel.total_area(), prev - 1e-9) << "k=" << k;
    prev = sel.total_area();
  }
}

TEST(Formulation, ZeroRequiredGainSelectsNothing) {
  workloads::Workload w = workloads::gsm_decoder();
  Flow flow(w.module, w.library);
  const Selection sel = flow.select(0);
  ASSERT_TRUE(sel.feasible);
  EXPECT_TRUE(sel.chosen.empty());
  EXPECT_DOUBLE_EQ(sel.total_area(), 0.0);
}

// --- Problem 1 vs Problem 2 ----------------------------------------------------------

TEST(Problem2, Fig9NeedsSoftwareScallAsParallelCode) {
  workloads::Workload w = workloads::fig9_case();
  Flow flow(w.module, w.library);

  SelectOptions p1;
  p1.problem2 = false;
  SelectOptions p2;
  p2.problem2 = true;

  // All three fir() on the IP via the cheapest interface: 3 * 4000.
  const std::int64_t p1_max = flow.selector().max_feasible_gain(p1);
  const std::int64_t p2_max = flow.selector().max_feasible_gain(p2);
  EXPECT_GT(p2_max, p1_max);  // Fig. 9's claim

  const std::int64_t rg = (p1_max + p2_max) / 2;
  EXPECT_FALSE(flow.select(rg, p1).feasible);
  const Selection sel = flow.select(rg, p2);
  ASSERT_TRUE(sel.feasible);

  // The winning solution keeps one fir in software as someone's PC.
  bool consumed = false;
  for (isel::ImpIndex idx : sel.chosen) {
    consumed |= !flow.imp_database().imps()[idx].pc_consumed_scalls.empty();
  }
  EXPECT_TRUE(consumed);
}

TEST(Problem2, Fig10CommonScallSplitsImplementations) {
  workloads::Workload w = workloads::fig10_case();
  Flow flow(w.module, w.library);

  SelectOptions p1;
  p1.problem2 = false;
  SelectOptions p2;

  const std::int64_t p2_max = flow.selector().max_feasible_gain(p2);
  const std::int64_t p1_max = flow.selector().max_feasible_gain(p1);
  ASSERT_GT(p2_max, p1_max);
  const std::int64_t rg = (p1_max + p2_max) / 2;

  EXPECT_FALSE(flow.select(rg, p1).feasible);
  const Selection sel = flow.select(rg, p2);
  ASSERT_TRUE(sel.feasible);

  // The dct IMP must exploit the common fir's software body...
  bool dct_with_pc = false;
  std::set<std::uint32_t> implemented_sites;
  for (isel::ImpIndex idx : sel.chosen) {
    const isel::Imp& imp = flow.imp_database().imps()[idx];
    implemented_sites.insert(imp.scall.value());
    if (imp.ip_function->function == "dct" &&
        imp.pc_use == isel::PcUse::kWithScallSw) {
      dct_with_pc = true;
      // ...and the consumed site must stay in software.
      for (ir::CallSiteId c : imp.pc_consumed_scalls) {
        EXPECT_FALSE(implemented_sites.count(c.value()));
      }
    }
  }
  EXPECT_TRUE(dct_with_pc);
}

TEST(Problem2, SelectionRuleEnforced) {
  // No chosen IMP pair may violate the SC-PC conflict.
  workloads::Workload w = workloads::fig10_case();
  Flow flow(w.module, w.library);
  const std::int64_t gmax = flow.max_feasible_gain();
  const Selection sel = flow.select(gmax);
  ASSERT_TRUE(sel.feasible);
  std::set<std::uint32_t> implemented;
  for (isel::ImpIndex idx : sel.chosen) {
    implemented.insert(flow.imp_database().imps()[idx].scall.value());
  }
  for (isel::ImpIndex idx : sel.chosen) {
    for (ir::CallSiteId consumed : flow.imp_database().imps()[idx].pc_consumed_scalls) {
      EXPECT_FALSE(implemented.count(consumed.value()))
          << "IMP consumes a hardware-implemented s-call";
    }
  }
}

TEST(Problem1, SameFunctionSameImplementation) {
  workloads::Workload w = workloads::fig9_case();  // three calls to fir
  Flow flow(w.module, w.library);
  SelectOptions p1;
  p1.problem2 = false;
  const std::int64_t rg = flow.selector().max_feasible_gain(p1);
  const Selection sel = flow.select(rg, p1);
  ASSERT_TRUE(sel.feasible);
  // All implemented fir sites share (IP, interface).
  std::set<std::pair<std::uint32_t, int>> ways;
  for (isel::ImpIndex idx : sel.chosen) {
    const isel::Imp& imp = flow.imp_database().imps()[idx];
    ways.insert({imp.ip.value, static_cast<int>(imp.iface_type)});
  }
  EXPECT_LE(ways.size(), 1u);
  EXPECT_EQ(sel.chosen.size(), 3u);  // all or none under the coupling
}

// --- baselines ------------------------------------------------------------------------

TEST(Baselines, GreedyFeasibleButNeverCheaperThanIlp) {
  workloads::Workload w = workloads::gsm_decoder();
  Flow flow(w.module, w.library);
  const std::int64_t gmax = flow.max_feasible_gain();
  for (int k = 1; k <= 3; ++k) {
    const std::int64_t rg = gmax * k / 4;
    const Selection ilp_sel = flow.select(rg);
    const Selection greedy_sel = flow.greedy(rg);
    ASSERT_TRUE(ilp_sel.feasible);
    if (greedy_sel.feasible) {
      EXPECT_GE(greedy_sel.min_path_gain, rg);
      EXPECT_GE(greedy_sel.total_area(), ilp_sel.total_area() - 1e-9);
    }
  }
}

TEST(Baselines, PriorArtRestrictedToType0NoPc) {
  workloads::Workload w = workloads::gsm_decoder();
  Flow flow(w.module, w.library);
  const Selection sel = flow.prior_art(flow.max_feasible_gain() / 4);
  ASSERT_TRUE(sel.feasible);
  for (isel::ImpIndex idx : sel.chosen) {
    const isel::Imp& imp = flow.imp_database().imps()[idx];
    EXPECT_TRUE(prior_art_allows(imp)) << imp.describe(w.library);
  }
}

TEST(Baselines, PriorArtFailsWhereFullMethodSucceeds) {
  // Fig. 9 again: without buffered interfaces + PC the top of the gain range
  // is unreachable.
  workloads::Workload w = workloads::fig9_case();
  Flow flow(w.module, w.library);
  const std::int64_t gmax = flow.max_feasible_gain();
  EXPECT_TRUE(flow.select(gmax).feasible);
  EXPECT_FALSE(flow.prior_art(gmax).feasible);
}

// --- describe / decode -------------------------------------------------------------------

TEST(Decode, DescribeUsesPaperNotation) {
  workloads::Workload w = workloads::gsm_decoder();
  Flow flow(w.module, w.library);
  const Selection sel = flow.select(flow.max_feasible_gain() / 4);
  ASSERT_TRUE(sel.feasible);
  const std::string desc = sel.describe(flow.imp_database(), w.library);
  EXPECT_NE(desc.find("SC"), std::string::npos);
  EXPECT_NE(desc.find("IF"), std::string::npos);
  EXPECT_NE(desc.find("IP"), std::string::npos);
}

// --- property: on random workloads the ILP never loses to greedy -----------------------

class RandomSelection : public ::testing::TestWithParam<int> {};

TEST_P(RandomSelection, IlpBeatsOrMatchesGreedyAndStaysFeasible) {
  workloads::RandomWorkloadParams params;
  params.call_sites = 8;
  params.leaf_functions = 4;
  params.ips = 5;
  workloads::Workload w =
      workloads::random_workload(params, static_cast<std::uint64_t>(GetParam()));
  Flow flow(w.module, w.library);
  const std::int64_t gmax = flow.max_feasible_gain();
  if (gmax <= 0) return;  // library happened to be useless for this app

  const std::int64_t rg = gmax / 2;
  const Selection ilp_sel = flow.select(rg);
  ASSERT_TRUE(ilp_sel.feasible);
  EXPECT_GE(ilp_sel.min_path_gain, rg);
  for (const cdfg::ExecPath& p : flow.paths()) {
    EXPECT_GE(path_gain(ilp_sel.chosen, flow.imp_database(), flow.entry_cdfg(), p), rg);
  }
  const Selection greedy_sel = flow.greedy(rg);
  if (greedy_sel.feasible) {
    EXPECT_GE(greedy_sel.total_area(), ilp_sel.total_area() - 1e-9);
  }
  // The exact optimum at gmax must also exist.
  EXPECT_TRUE(flow.select(gmax).feasible);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSelection, ::testing::Range(0, 25));

}  // namespace
}  // namespace partita::select

// Tests for the JSON selection export.
#include <gtest/gtest.h>

#include "select/export.hpp"
#include "select/flow.hpp"
#include "workloads/workloads.hpp"

namespace partita::select {
namespace {

bool balanced(const std::string& s) {
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') ++braces;
    else if (c == '}') --braces;
    else if (c == '[') ++brackets;
    else if (c == ']') --brackets;
    if (braces < 0 || brackets < 0) return false;
  }
  return braces == 0 && brackets == 0 && !in_string;
}

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_escape("plain"), "plain");
}

TEST(Export, FeasibleSelectionSerializes) {
  workloads::Workload w = workloads::gsm_decoder();
  Flow flow(w.module, w.library);
  const std::int64_t rg = flow.max_feasible_gain() / 2;
  const Selection sel = flow.select(rg);
  ASSERT_TRUE(sel.feasible);
  const std::string json = to_json(sel, flow.imp_database(), w.library, rg);

  EXPECT_TRUE(balanced(json)) << json;
  EXPECT_NE(json.find("\"feasible\": true"), std::string::npos);
  EXPECT_NE(json.find("\"guaranteed_gain\": " + std::to_string(sel.min_path_gain)),
            std::string::npos);
  EXPECT_NE(json.find("\"s_instructions\": " + std::to_string(sel.s_instructions)),
            std::string::npos);
  // Every chosen IMP appears with its callee name.
  for (isel::ImpIndex idx : sel.chosen) {
    const isel::SCall* sc = flow.imp_database().scall_of(flow.imp_database().imps()[idx].scall);
    ASSERT_NE(sc, nullptr);
    EXPECT_NE(json.find("\"callee\": \"" + sc->callee_name + "\""), std::string::npos);
  }
}

TEST(Export, InfeasibleSelectionSerializes) {
  workloads::Workload w = workloads::gsm_decoder();
  Flow flow(w.module, w.library);
  const std::int64_t rg = flow.max_feasible_gain() * 2;
  const Selection sel = flow.select(rg);
  ASSERT_FALSE(sel.feasible);
  const std::string json = to_json(sel, flow.imp_database(), w.library, rg);
  EXPECT_TRUE(balanced(json));
  EXPECT_NE(json.find("\"feasible\": false"), std::string::npos);
  EXPECT_EQ(json.find("\"imps\""), std::string::npos);
}

TEST(Export, ConsumedScallsListed) {
  workloads::Workload w = workloads::fig9_case();
  Flow flow(w.module, w.library);
  const Selection sel = flow.select(flow.max_feasible_gain());
  ASSERT_TRUE(sel.feasible);
  const std::string json = to_json(sel, flow.imp_database(), w.library, 0);
  EXPECT_TRUE(balanced(json));
  // The top design consumes an s-call as parallel code.
  EXPECT_NE(json.find("\"consumed_scalls\": [1]"), std::string::npos) << json;
}

}  // namespace
}  // namespace partita::select

#include "ir/printer.hpp"
#include "select/accel_lower.hpp"

namespace partita::select {
namespace {

TEST(AccelLower, DirectSelectionsBecomeDispatches) {
  workloads::Workload w = workloads::gsm_decoder();
  Flow flow(w.module, w.library);
  const Selection sel = flow.select(flow.max_feasible_gain() / 2);
  ASSERT_TRUE(sel.feasible);

  const AcceleratedLowering acc = lower_accelerated(w.module, sel, flow.imp_database());
  int direct = 0, flattened = 0;
  for (isel::ImpIndex idx : sel.chosen) {
    (flow.imp_database().imps()[idx].flattened ? flattened : direct)++;
  }
  EXPECT_EQ(acc.dispatch_mops, direct);
  EXPECT_EQ(acc.flattened_calls, flattened);

  // The dump shows the dispatches with their callee names.
  const std::string dump = ir::print_mops(w.module, acc.lowered);
  if (direct > 0) {
    EXPECT_NE(dump.find("ip_dispatch"), std::string::npos);
  }
}

TEST(AccelLower, JpegFlattenedKeepsSoftwareCall) {
  workloads::Workload w = workloads::jpeg_encoder();
  Flow flow(w.module, w.library);
  const Selection sel = flow.select(flow.max_feasible_gain() / 3);  // cmul-flatten row
  ASSERT_TRUE(sel.feasible);
  bool any_flat = false;
  for (isel::ImpIndex idx : sel.chosen) {
    any_flat |= flow.imp_database().imps()[idx].flattened;
  }
  ASSERT_TRUE(any_flat);
  const AcceleratedLowering acc = lower_accelerated(w.module, sel, flow.imp_database());
  EXPECT_GT(acc.flattened_calls, 0);
}

}  // namespace
}  // namespace partita::select

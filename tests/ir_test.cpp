// Tests for the IR: MOPs and micro-word packing, modules/functions,
// lowering, verification and printing.
#include <gtest/gtest.h>

#include "ir/function.hpp"
#include "ir/lower.hpp"
#include "ir/mop.hpp"
#include "ir/printer.hpp"
#include "ir/verify.hpp"

namespace partita::ir {
namespace {

// --- MOP / micro-word packing -------------------------------------------------

TEST(Mop, InfoTableConsistent) {
  EXPECT_TRUE(mop_info(MopKind::kLoad).is_memory);
  EXPECT_TRUE(mop_info(MopKind::kCall).is_control);
  EXPECT_TRUE(mop_info(MopKind::kMac).is_arith);
  EXPECT_EQ(to_string(MopKind::kAguAdd), "agu_add");
}

TEST(MicroWord, FieldAssignment) {
  Mop load;
  load.kind = MopKind::kLoad;
  load.mem = Memory::kX;
  EXPECT_EQ(field_for(load), UField::kMoveX);
  load.mem = Memory::kY;
  EXPECT_EQ(field_for(load), UField::kMoveY);

  Mop mul;
  mul.kind = MopKind::kMul;
  EXPECT_EQ(field_for(mul), UField::kMul);

  Mop br;
  br.kind = MopKind::kBranch;
  EXPECT_EQ(field_for(br), UField::kSeq);
}

TEST(MopList, PacksParallelOpsIntoOneWord) {
  // loadX + loadY + mac fit one micro-word: the classic dual-fetch MAC cycle.
  MopList mops;
  Mop lx;
  lx.kind = MopKind::kLoad;
  lx.mem = Memory::kX;
  mops.add(lx);
  Mop ly;
  ly.kind = MopKind::kLoad;
  ly.mem = Memory::kY;
  mops.add(ly);
  Mop mac;
  mac.kind = MopKind::kMac;
  mops.add(mac);
  EXPECT_EQ(mops.pack_schedule(), 1u);
  EXPECT_EQ(mops.schedule()[0].occupancy(), 3u);
}

TEST(MopList, FieldConflictForcesNewWord) {
  MopList mops;
  for (int i = 0; i < 3; ++i) {
    Mop add;
    add.kind = MopKind::kAdd;
    mops.add(add);
  }
  EXPECT_EQ(mops.pack_schedule(), 3u);  // one ALU op per word
}

TEST(MopList, ControlOpsTerminateWord) {
  MopList mops;
  Mop add;
  add.kind = MopKind::kAdd;
  mops.add(add);
  Mop call;
  call.kind = MopKind::kCall;
  mops.add(call);
  Mop add2;
  add2.kind = MopKind::kAdd;
  mops.add(add2);
  EXPECT_EQ(mops.pack_schedule(), 2u);  // [add, call] | [add2]
}

TEST(MopList, RegisterMovesFallBackToYPort) {
  MopList mops;
  Mop m1;
  m1.kind = MopKind::kMove;
  mops.add(m1);
  Mop m2;
  m2.kind = MopKind::kMove;
  mops.add(m2);
  EXPECT_EQ(mops.pack_schedule(), 1u);  // X port + Y port
}

// --- module / function ----------------------------------------------------------

Module simple_module() {
  Module m("t");
  Function& leaf = m.create_function("leaf");
  leaf.set_ip_mappable(true);
  leaf.set_declared_sw_cycles(100);
  Function& main_fn = m.create_function("main");
  Stmt seg;
  seg.kind = StmtKind::kSeg;
  seg.cycles = 10;
  const StmtId s0 = main_fn.add_stmt(seg);
  Stmt call;
  call.kind = StmtKind::kCall;
  call.callee = leaf.id();
  const StmtId s1 = main_fn.add_stmt(call);
  main_fn.body() = {s0, s1};
  m.register_call_site(main_fn.id(), s1, leaf.id());
  m.set_entry(main_fn.id());
  return m;
}

TEST(Module, SymbolInterning) {
  Module m("t");
  const SymbolId a = m.intern_symbol("x");
  const SymbolId b = m.intern_symbol("x");
  const SymbolId c = m.intern_symbol("y");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(m.symbol_name(c), "y");
}

TEST(Module, FindFunction) {
  Module m = simple_module();
  EXPECT_TRUE(m.find_function("leaf").valid());
  EXPECT_FALSE(m.find_function("nope").valid());
}

TEST(Module, CallSiteRegistration) {
  Module m = simple_module();
  ASSERT_EQ(m.call_sites().size(), 1u);
  const CallSite& cs = m.call_site(CallSiteId{0});
  EXPECT_EQ(m.function(cs.callee).name(), "leaf");
  EXPECT_EQ(m.function(cs.caller).name(), "main");
}

TEST(Module, BottomUpOrderPutsCalleesFirst) {
  Module m = simple_module();
  const auto order = m.bottom_up_order();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(m.function(order[0]).name(), "leaf");
  EXPECT_EQ(m.function(order[1]).name(), "main");
}

// --- verification ----------------------------------------------------------------

TEST(Verify, AcceptsWellFormedModule) {
  Module m = simple_module();
  support::DiagnosticEngine diags;
  EXPECT_TRUE(verify_module(m, diags)) << diags.render_all();
}

TEST(Verify, RejectsMissingEntry) {
  Module m("t");
  m.create_function("f");
  support::DiagnosticEngine diags;
  EXPECT_FALSE(verify_module(m, diags));
}

TEST(Verify, RejectsRecursion) {
  Module m("t");
  Function& f = m.create_function("f");
  Stmt call;
  call.kind = StmtKind::kCall;
  call.callee = f.id();
  const StmtId s = f.add_stmt(call);
  f.body() = {s};
  m.register_call_site(f.id(), s, f.id());
  m.set_entry(f.id());
  support::DiagnosticEngine diags;
  EXPECT_FALSE(verify_module(m, diags));
  EXPECT_NE(diags.render_all().find("recursive"), std::string::npos);
}

TEST(Verify, RejectsBadProbability) {
  Module m("t");
  Function& f = m.create_function("main");
  Stmt iff;
  iff.kind = StmtKind::kIf;
  iff.taken_prob = 1.5;
  const StmtId s = f.add_stmt(iff);
  f.body() = {s};
  m.set_entry(f.id());
  support::DiagnosticEngine diags;
  EXPECT_FALSE(verify_module(m, diags));
}

TEST(Verify, RejectsUnregisteredCall) {
  Module m("t");
  Function& leaf = m.create_function("leaf");
  leaf.set_declared_sw_cycles(10);
  Function& f = m.create_function("main");
  Stmt call;
  call.kind = StmtKind::kCall;
  call.callee = leaf.id();
  const StmtId s = f.add_stmt(call);  // never registered as a call site
  f.body() = {s};
  m.set_entry(f.id());
  support::DiagnosticEngine diags;
  EXPECT_FALSE(verify_module(m, diags));
}

TEST(Verify, RejectsLeafScallWithoutCycles) {
  Module m("t");
  Function& leaf = m.create_function("leaf");
  leaf.set_ip_mappable(true);  // no body, no declared cycles
  Function& f = m.create_function("main");
  (void)f;
  m.set_entry(m.find_function("main"));
  support::DiagnosticEngine diags;
  EXPECT_FALSE(verify_module(m, diags));
}

// --- lowering ----------------------------------------------------------------------

TEST(Lower, SegmentPacksToDeclaredCycles) {
  Module m("t");
  Function& f = m.create_function("main");
  Stmt seg;
  seg.kind = StmtKind::kSeg;
  seg.cycles = 37;
  const StmtId s = f.add_stmt(seg);
  f.body() = {s};
  m.set_entry(f.id());
  const LoweredFunction lowered = lower_function(m, f);
  EXPECT_EQ(lowered.schedule_cycles, 37u);
}

TEST(Lower, CallBecomesSingleCallMop) {
  Module m = simple_module();
  const LoweredFunction lowered = lower_function(m, m.function(m.entry()));
  int calls = 0;
  for (const Mop& mop : lowered.mops.mops()) {
    if (mop.kind == MopKind::kCall) {
      ++calls;
      EXPECT_EQ(m.function(mop.callee).name(), "leaf");
      EXPECT_TRUE(mop.call_site.valid());
    }
  }
  EXPECT_EQ(calls, 1);
}

TEST(Lower, StmtRangesCoverAllMops) {
  Module m = simple_module();
  const LoweredFunction lowered = lower_function(m, m.function(m.entry()));
  std::size_t covered = 0;
  for (const auto& [stmt, range] : lowered.stmt_range) covered += range.size();
  EXPECT_EQ(covered, lowered.mops.size());
}

TEST(Lower, WholeModule) {
  Module m = simple_module();
  const LoweredModule lowered = lower_module(m);
  EXPECT_EQ(lowered.functions.size(), 2u);
  EXPECT_TRUE(lowered.of(m.entry()).mops.size() > 0);
}

// --- printing ------------------------------------------------------------------------

TEST(Printer, MentionsAllFunctions) {
  Module m = simple_module();
  const std::string text = print_module(m);
  EXPECT_NE(text.find("func leaf scall sw_cycles 100;"), std::string::npos);
  EXPECT_NE(text.find("func main"), std::string::npos);
  EXPECT_NE(text.find("call leaf"), std::string::npos);
}

TEST(Printer, DumpsMopsWithSchedule) {
  Module m = simple_module();
  LoweredFunction lowered = lower_function(m, m.function(m.entry()));
  const std::string text = print_mops(m, lowered);
  EXPECT_NE(text.find("call leaf"), std::string::npos);
  EXPECT_NE(text.find("schedule"), std::string::npos);
}

}  // namespace
}  // namespace partita::ir

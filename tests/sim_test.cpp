// Tests for the kernel+IP co-simulator: software reference runs, analytic
// model validation for all four interface types, and the Fig. 2 overlap.
#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "iplib/loader.hpp"
#include "select/flow.hpp"
#include "sim/cosim.hpp"
#include "workloads/workloads.hpp"

namespace partita::sim {
namespace {

struct SimFixture {
  workloads::Workload w;
  select::Flow flow;
  CoSimulator cosim;

  explicit SimFixture(workloads::Workload wl, const isel::EnumerateOptions& opts = {})
      : w(std::move(wl)),
        flow(w.module, w.library, opts),
        cosim(w.module, w.library, flow.imp_database(), flow.entry_cdfg(), flow.paths()) {}
};

workloads::Workload make_workload(std::string_view kl, std::string_view lib_text) {
  support::DiagnosticEngine diags;
  auto m = frontend::parse_module(kl, diags);
  EXPECT_TRUE(m.has_value()) << diags.render_all();
  auto lib = iplib::load_library(lib_text, diags);
  EXPECT_TRUE(lib.has_value()) << diags.render_all();
  return {"inline", std::move(*m), std::move(*lib)};
}

TEST(CoSim, SoftwareRunMatchesProfile) {
  // With no selection, simulated cycles equal the analytic profile on a
  // branch-free program.
  SimFixture f(make_workload(R"(
module t;
func fir scall sw_cycles 5000;
func main {
  seg a 100 writes(x);
  call fir reads(x) writes(y);
  loop 3 { seg b 10 reads(y); }
}
)",
                             R"(
ip FIR_IP {
  area 8
  ports in 2 out 2
  rate in 4 out 4
  latency 16
  pipelined
  protocol sync
  fn fir cycles 1000 in 64 out 64
}
)"));
  support::Rng rng(1);
  const SimResult sw = f.cosim.run(nullptr, rng);
  EXPECT_EQ(sw.total_cycles, f.flow.profile().total_cycles);
  EXPECT_EQ(sw.overlap_cycles, 0);
}

TEST(CoSim, Type0SelectionMatchesAnalyticGain) {
  SimFixture f(make_workload(R"(
module t;
func fir scall sw_cycles 5000;
func main {
  seg a 100 writes(x);
  call fir reads(x) writes(y);
  seg b 200 reads(y);
}
)",
                             R"(
ip FIR_IP {
  area 8
  ports in 2 out 2
  rate in 4 out 4
  latency 16
  pipelined
  protocol sync
  fn fir cycles 1000 in 64 out 64
}
)"));
  isel::EnumerateOptions opts;  // default
  (void)opts;
  const std::int64_t gmax = f.flow.max_feasible_gain();
  const select::Selection sel = f.flow.select(gmax);
  ASSERT_TRUE(sel.feasible);

  support::Rng rng(1);
  const SimResult sw = f.cosim.run(nullptr, rng);
  const SimResult hw = f.cosim.run(&sel, rng);
  EXPECT_EQ(sw.total_cycles - hw.total_cycles, sel.min_path_gain);
}

TEST(CoSim, BufferedOverlapRealizesFig2) {
  // Buffered IMP with PC: the simulator must reproduce the analytic
  // T_IF_IN + MAX(T_IP, T_B) + T_IF_OUT - MIN(T_IP, T_C) exactly when the PC
  // is control-equivalent to the call.
  SimFixture f(make_workload(R"(
module t;
func fir scall sw_cycles 50000;
func main {
  seg a 100 writes(x);
  call fir reads(x) writes(y);
  seg pc_mat 2000 reads(x) writes(z);
  seg b 200 reads(y, z);
}
)",
                             R"(
ip FIR_IP {
  area 8
  ports in 4 out 4
  rate in 1 out 1
  latency 16
  pipelined
  protocol sync
  fn fir cycles 30000 in 64 out 64
}
)"));
  const std::int64_t gmax = f.flow.max_feasible_gain();
  const select::Selection sel = f.flow.select(gmax);
  ASSERT_TRUE(sel.feasible);
  ASSERT_EQ(sel.chosen.size(), 1u);
  const isel::Imp& imp = f.flow.imp_database().imps()[sel.chosen[0]];
  EXPECT_NE(imp.pc_use, isel::PcUse::kNone);
  EXPECT_EQ(imp.parallel_cycles, 2000);

  support::Rng rng(1);
  const SimResult sw = f.cosim.run(nullptr, rng);
  const SimResult hw = f.cosim.run(&sel, rng);
  EXPECT_EQ(hw.overlap_cycles, 2000);  // MIN(T_IP, T_C) = T_C
  EXPECT_EQ(sw.total_cycles - hw.total_cycles, sel.min_path_gain);
}

TEST(CoSim, OverlapCappedByIpTime) {
  // T_C > T_IP: only T_IP cycles actually overlap.
  SimFixture f(make_workload(R"(
module t;
func fir scall sw_cycles 50000;
func main {
  seg a 100 writes(x);
  call fir reads(x) writes(y);
  seg pc_mat 40000 reads(x) writes(z);
  seg b 200 reads(y, z);
}
)",
                             R"(
ip FIR_IP {
  area 8
  ports in 4 out 4
  rate in 1 out 1
  latency 16
  pipelined
  protocol sync
  fn fir cycles 3000 in 64 out 64
}
)"));
  const select::Selection sel = f.flow.select(f.flow.max_feasible_gain());
  ASSERT_TRUE(sel.feasible);
  support::Rng rng(1);
  const SimResult hw = f.cosim.run(&sel, rng);
  EXPECT_EQ(hw.overlap_cycles, 3000);
}

TEST(CoSim, FlattenedImpAcceleratesInnerCalls) {
  SimFixture f(make_workload(R"(
module t;
func cmul scall sw_cycles 40;
func fft scall { loop 32 { call cmul; } seg glue 720; }
func main { loop 10 { call fft; } }
)",
                             R"(
ip CMUL_IP {
  area 3
  ports in 2 out 2
  rate in 4 out 4
  latency 2
  pipelined
  protocol sync
  fn cmul cycles 6 in 4 out 2
}
)"));
  const select::Selection sel = f.flow.select(f.flow.max_feasible_gain());
  ASSERT_TRUE(sel.feasible);
  ASSERT_EQ(sel.chosen.size(), 1u);
  EXPECT_TRUE(f.flow.imp_database().imps()[sel.chosen[0]].flattened);

  support::Rng rng(1);
  const SimResult sw = f.cosim.run(nullptr, rng);
  const SimResult hw = f.cosim.run(&sel, rng);
  EXPECT_EQ(sw.total_cycles - hw.total_cycles, sel.min_path_gain);
  EXPECT_GT(hw.ip_active_cycles, 0);
}

TEST(CoSim, PerSiteStatsTracked) {
  SimFixture f(make_workload(R"(
module t;
func fir scall sw_cycles 5000;
func main { loop 4 { call fir; } }
)",
                             R"(
ip FIR_IP {
  area 8
  ports in 2 out 2
  rate in 4 out 4
  latency 16
  pipelined
  protocol sync
  fn fir cycles 1000 in 64 out 64
}
)"));
  const select::Selection sel = f.flow.select(f.flow.max_feasible_gain());
  ASSERT_TRUE(sel.feasible);
  support::Rng rng(1);
  const SimResult hw = f.cosim.run(&sel, rng);
  ASSERT_EQ(hw.per_site.size(), 1u);
  EXPECT_EQ(hw.per_site.begin()->second.executions, 4);
}

TEST(CoSim, AverageRunsStable) {
  // Monte-Carlo averaging over branches converges near the expectation.
  SimFixture f(make_workload(R"(
module t;
func fir scall sw_cycles 5000;
func main {
  if prob 0.5 { seg a 1000; } else { seg b 3000; }
  call fir;
}
)",
                             R"(
ip FIR_IP {
  area 8
  ports in 2 out 2
  rate in 4 out 4
  latency 16
  pipelined
  protocol sync
  fn fir cycles 1000 in 64 out 64
}
)"));
  support::Rng rng(7);
  const SimResult avg = f.cosim.run_average(nullptr, rng, 2000);
  EXPECT_NEAR(static_cast<double>(avg.total_cycles),
              static_cast<double>(f.flow.profile().total_cycles), 150.0);
}

TEST(CoSim, GsmEncoderEndToEnd) {
  // Full workload: accelerated run must beat software by at least the
  // guaranteed (min-path) gain on every sampled path.
  SimFixture f(workloads::gsm_encoder());
  const std::int64_t gmax = f.flow.max_feasible_gain();
  const select::Selection sel = f.flow.select(gmax / 2);
  ASSERT_TRUE(sel.feasible);
  support::Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    support::Rng r1(1000 + i), r2(1000 + i);  // same branch draws
    const SimResult sw = f.cosim.run(nullptr, r1);
    const SimResult hw = f.cosim.run(&sel, r2);
    EXPECT_GE(sw.total_cycles - hw.total_cycles, sel.min_path_gain)
        << "sampled path fell short of the guaranteed gain";
  }
}

}  // namespace
}  // namespace partita::sim

// Tests for the generated-ASIP report: instruction classes, u-ROM content,
// consistency with the selection it describes.
#include <gtest/gtest.h>

#include "report/chip_report.hpp"
#include "workloads/workloads.hpp"

namespace partita::report {
namespace {

struct Fixture {
  workloads::Workload w;
  select::Flow flow;
  select::Selection sel;

  explicit Fixture(workloads::Workload wl, int pct = 60)
      : w(std::move(wl)), flow(w.module, w.library),
        sel(flow.select(flow.max_feasible_gain() * pct / 100)) {
    EXPECT_TRUE(sel.feasible);
  }
};

TEST(Report, InstructionClassesPresent) {
  Fixture f(workloads::gsm_encoder());
  const ChipReport rep = generate_report(f.flow, f.sel);
  EXPECT_GE(rep.isa.count_of(ucode::InstrClass::kP), 16u);
  EXPECT_GT(rep.isa.count_of(ucode::InstrClass::kC), 0u);
  // One S-instruction per merged (IP, interface) pair.
  EXPECT_EQ(rep.isa.count_of(ucode::InstrClass::kS),
            static_cast<std::size_t>(f.sel.s_instructions));
}

TEST(Report, OpcodesEncodedAndPrefixFree) {
  Fixture f(workloads::gsm_decoder());
  const ChipReport rep = generate_report(f.flow, f.sel);
  EXPECT_TRUE(rep.isa.codes_are_prefix_free());
  EXPECT_GT(rep.expected_opcode_bits, 0.0);
  EXPECT_LE(rep.expected_opcode_bits, rep.isa.fixed_opcode_bits() + 2.0);
}

TEST(Report, UromCompresses) {
  Fixture f(workloads::gsm_encoder());
  const ChipReport rep = generate_report(f.flow, f.sel);
  EXPECT_GT(rep.urom.raw_words, 0);
  EXPECT_LE(rep.urom.unique_words, rep.urom.raw_words);
  EXPECT_LE(rep.urom.optimized_bits, rep.urom.raw_bits);
}

TEST(Report, TotalsConsistentWithSelection) {
  Fixture f(workloads::jpeg_encoder());
  ReportOptions opts;
  const ChipReport rep = generate_report(f.flow, f.sel, opts);
  EXPECT_DOUBLE_EQ(rep.accelerator_area, f.sel.total_area());
  EXPECT_DOUBLE_EQ(rep.total_area, opts.kernel_base_area + f.sel.total_area());
  EXPECT_EQ(rep.guaranteed_cycles, rep.software_cycles - f.sel.min_path_gain);
  EXPECT_GT(rep.total_power, opts.kernel_base_power - 1e-9);
}

TEST(Report, HardwareInterfacesSynthesizeFsms) {
  // At full throttle the decoder uses type-2/3 interfaces -> FSM states > 0.
  workloads::Workload w = workloads::gsm_decoder();
  select::Flow flow(w.module, w.library);
  const select::Selection sel = flow.select(flow.max_feasible_gain());
  ASSERT_TRUE(sel.feasible);
  const ChipReport rep = generate_report(flow, sel);
  EXPECT_GT(rep.fsm_states, 0);
}

TEST(Report, RenderedTextMentionsEverything) {
  Fixture f(workloads::gsm_encoder());
  const ChipReport rep = generate_report(f.flow, f.sel);
  for (const char* needle :
       {"instruction set", "u-ROM", "IPs instantiated", "area", "power", "cycles"}) {
    EXPECT_NE(rep.text.find(needle), std::string::npos) << needle;
  }
}

}  // namespace
}  // namespace partita::report

// Parameterized simulator-vs-analytic matrix: IP rate/latency/pipelining
// configurations crossed with the interface repertoire. For each
// configuration the co-simulated end-to-end gain must equal the selection's
// guaranteed gain on a straight-line program -- exact, cycle for cycle --
// for both the cheapest and the most powerful feasible design point.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "frontend/parser.hpp"
#include "iplib/loader.hpp"
#include "select/flow.hpp"
#include "sim/cosim.hpp"

namespace partita::sim {
namespace {

struct IpConfig {
  int in_rate;
  int out_rate;
  int latency;
  bool pipelined;
  int in_ports;
  std::int64_t t_ip;
};

std::string config_name(const IpConfig& c) {
  std::ostringstream os;
  os << "r" << c.in_rate << "_" << c.out_rate << "_lat" << c.latency
     << (c.pipelined ? "_pipe" : "_comb") << "_p" << c.in_ports << "_t" << c.t_ip;
  return os.str();
}

class SimMatrix : public ::testing::TestWithParam<IpConfig> {};

TEST_P(SimMatrix, SimulatedGainEqualsGuaranteed) {
  const IpConfig& c = GetParam();

  std::ostringstream lib;
  lib << "ip ACC {\n  area 9\n  ports in " << c.in_ports << " out 2\n  rate in "
      << c.in_rate << " out " << c.out_rate << "\n  latency " << c.latency << "\n  "
      << (c.pipelined ? "pipelined" : "combinational")
      << "\n  protocol sync\n  fn f cycles " << c.t_ip << " in 64 out 64\n}\n";

  constexpr std::string_view kApp = R"(
module m;
func f scall sw_cycles 20000;
func main {
  seg pre 500 writes(a);
  call f reads(a) writes(x);
  seg pc_mat 3000 reads(a) writes(z);
  seg post 700 reads(x, z);
}
)";

  support::DiagnosticEngine diags;
  auto module = frontend::parse_module(kApp, diags);
  auto library = iplib::load_library(lib.str(), diags);
  ASSERT_TRUE(module && library) << diags.render_all();

  select::Flow flow(*module, *library);
  CoSimulator cosim(*module, *library, flow.imp_database(), flow.entry_cdfg(),
                    flow.paths());
  const std::int64_t gmax = flow.max_feasible_gain();
  if (gmax <= 0) GTEST_SKIP() << "IP useless for this configuration";

  for (const std::int64_t rg : {std::int64_t{1}, gmax}) {
    const select::Selection sel = flow.select(rg);
    ASSERT_TRUE(sel.feasible) << config_name(c) << " rg=" << rg;
    support::Rng r1(1), r2(1);
    const SimResult sw = cosim.run(nullptr, r1);
    const SimResult hw = cosim.run(&sel, r2);
    EXPECT_EQ(sw.total_cycles - hw.total_cycles, sel.min_path_gain)
        << config_name(c) << " rg=" << rg;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SimMatrix,
    ::testing::Values(
        // classic template-rate pipelined IP
        IpConfig{4, 4, 16, true, 2, 5000},
        // fast IP: type 0 must slow its clock, hardware types win
        IpConfig{1, 1, 16, true, 2, 5000},
        IpConfig{2, 2, 8, true, 2, 3000},
        // slow IP: template pads NOPs
        IpConfig{8, 8, 32, true, 2, 5000},
        // asymmetric rates: type 0 excluded
        IpConfig{2, 4, 16, true, 2, 5000},
        IpConfig{1, 2, 8, true, 2, 2500},
        // wide IP: buffered interfaces only
        IpConfig{2, 2, 16, true, 4, 5000},
        IpConfig{1, 1, 8, true, 4, 12000},
        // non-pipelined (combinational array)
        IpConfig{4, 4, 24, false, 2, 4000},
        IpConfig{2, 2, 12, false, 2, 8000},
        // IP slower than software: only overlap saves it
        IpConfig{4, 4, 16, true, 2, 18000},
        // trivially fast IP: transfer-bound
        IpConfig{4, 4, 4, true, 2, 50}),
    [](const ::testing::TestParamInfo<IpConfig>& info) {
      return config_name(info.param);
    });

}  // namespace
}  // namespace partita::sim

// Batch-vs-serial differential tests: Selector::select_batch (and the
// service's batched admission on top of it) amortizes the model build, the
// presolve clique table and chained root bases -- and must stay bit-identical
// to the equivalent serial solves while doing so. Feasible items are also
// audited against the independent exhaustive oracle.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "oracle/exhaustive.hpp"
#include "select/flow.hpp"
#include "service/solve_service.hpp"
#include "workloads/random_workload.hpp"
#include "workloads/workloads.hpp"

namespace partita {
namespace {

void expect_same_selection(const select::Selection& a, const select::Selection& b,
                           const std::string& what) {
  EXPECT_EQ(a.feasible, b.feasible) << what;
  EXPECT_EQ(a.chosen, b.chosen) << what;
  EXPECT_EQ(a.ips_used, b.ips_used) << what;
  EXPECT_EQ(a.min_path_gain, b.min_path_gain) << what;
  EXPECT_DOUBLE_EQ(a.ip_area, b.ip_area) << what;
  EXPECT_DOUBLE_EQ(a.interface_area, b.interface_area) << what;
  EXPECT_EQ(a.rung, b.rung) << what;
  EXPECT_EQ(a.solver.termination, b.solver.termination) << what;
}

/// Gain ladder covering easy, hard and infeasible items.
std::vector<std::int64_t> ladder(std::int64_t gmax) {
  return {gmax / 4, gmax / 2, (3 * gmax) / 4, gmax, 2 * gmax + 1};
}

TEST(BatchSolve, BitIdenticalToSerialOnSeedApps) {
  struct Case {
    std::string name;
    workloads::Workload w;
  };
  workloads::RandomWorkloadParams p;
  p.call_sites = 24;
  p.leaf_functions = 8;
  p.ips = 12;
  const Case cases[] = {
      {"gsm_encoder", workloads::gsm_encoder()},
      {"gsm_decoder", workloads::gsm_decoder()},
      {"jpeg_encoder", workloads::jpeg_encoder()},
      {"random_24site", workloads::random_workload(p, 4242)},
  };
  for (const Case& c : cases) {
    select::Flow flow(c.w.module, c.w.library);
    const std::vector<std::int64_t> rgs = ladder(flow.max_feasible_gain());
    std::vector<select::Selection> serial;
    for (const std::int64_t rg : rgs) serial.push_back(flow.select(rg, {}));
    const std::vector<select::Selection> batched = flow.select_batch(rgs, {});
    ASSERT_EQ(batched.size(), rgs.size()) << c.name;
    for (std::size_t i = 0; i < rgs.size(); ++i) {
      expect_same_selection(serial[i], batched[i],
                            c.name + " item " + std::to_string(i));
    }
  }
}

TEST(BatchSolve, ReusesAmortizedArtifacts) {
  workloads::RandomWorkloadParams p;
  p.call_sites = 24;
  p.leaf_functions = 8;
  p.ips = 12;
  const workloads::Workload w = workloads::random_workload(p, 4242);
  select::Flow flow(w.module, w.library);
  const std::int64_t gmax = flow.max_feasible_gain();
  const std::vector<std::int64_t> rgs = {gmax / 4, gmax / 2, (3 * gmax) / 4};
  const std::vector<select::Selection> batched = flow.select_batch(rgs, {});
  ASSERT_EQ(batched.size(), rgs.size());
  // Items after the first must have hit the shared clique table / root basis
  // at least once -- otherwise the batch path silently degraded to serial.
  long long hits = 0;
  for (std::size_t i = 1; i < batched.size(); ++i) hits += batched[i].solver.batch_hits;
  EXPECT_GT(hits, 0);
}

TEST(BatchSolve, PerPathVariantMatchesSerial) {
  const workloads::Workload w = workloads::gsm_encoder();
  select::Flow flow(w.module, w.library);
  const std::int64_t gmax = flow.max_feasible_gain();
  const std::size_t paths = flow.paths().size();
  // Non-uniform per-path targets, including one all-easy and one stressed.
  std::vector<std::vector<std::int64_t>> items;
  items.push_back(std::vector<std::int64_t>(paths, gmax / 4));
  std::vector<std::int64_t> mixed(paths, gmax / 2);
  if (!mixed.empty()) mixed[0] = gmax;
  items.push_back(mixed);
  std::vector<select::Selection> serial;
  for (const auto& gains : items)
    serial.push_back(flow.selector().select_per_path(gains, {}));
  const std::vector<select::Selection> batched =
      flow.selector().select_batch_per_path(items, {});
  ASSERT_EQ(batched.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    expect_same_selection(serial[i], batched[i], "per-path item " + std::to_string(i));
  }
}

TEST(BatchSolve, PerItemHookRunsInOrder) {
  const workloads::Workload w = workloads::gsm_decoder();
  select::Flow flow(w.module, w.library);
  const std::int64_t gmax = flow.max_feasible_gain();
  const std::vector<std::int64_t> rgs = {gmax / 2, gmax};
  std::vector<std::size_t> seen;
  const std::vector<select::Selection> batched = flow.selector().select_batch(
      rgs, {}, [&](std::size_t item, ilp::IlpOptions& opt) {
        seen.push_back(item);
        opt.budget.time_limit_seconds = 60.0;  // per-item budget install works
      });
  ASSERT_EQ(batched.size(), rgs.size());
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1}));
  for (const select::Selection& sel : batched) EXPECT_TRUE(sel.feasible);
}

TEST(BatchSolve, FeasibleItemsPassOracleAudit) {
  workloads::RandomWorkloadParams p;
  p.call_sites = 10;
  p.leaf_functions = 4;
  p.ips = 6;
  const workloads::Workload w = workloads::random_workload(p, 58);
  select::Flow flow(w.module, w.library);
  const std::int64_t gmax = flow.max_feasible_gain();
  const std::vector<std::int64_t> rgs = ladder(gmax);
  const std::vector<select::Selection> batched = flow.select_batch(rgs, {});
  for (std::size_t i = 0; i < rgs.size(); ++i) {
    const oracle::OracleResult ref = oracle::exhaustive_select(
        flow.imp_database(), flow.library(), flow.entry_cdfg(), flow.paths(), rgs[i]);
    ASSERT_TRUE(ref.exhausted) << "item " << i;
    EXPECT_EQ(batched[i].feasible, ref.feasible) << "item " << i;
    if (!ref.feasible) continue;
    EXPECT_NEAR(batched[i].total_area(), ref.total_area, 1e-6) << "item " << i;
    EXPECT_EQ(oracle::check_selection(flow.imp_database(), flow.entry_cdfg(),
                                      flow.paths(), rgs[i], batched[i].chosen),
              "")
        << "item " << i;
  }
}

// --- service batched admission ---------------------------------------------

TEST(BatchSolve, ServiceBatchMatchesSerialSubmits) {
  const workloads::Workload w = workloads::gsm_decoder();
  select::Flow flow(w.module, w.library);
  const std::int64_t gmax = flow.max_feasible_gain();
  const std::vector<std::int64_t> rgs = {gmax / 4, gmax / 2, gmax};

  service::ServiceConfig cfg;
  cfg.workers = 2;
  service::SolveService svc(cfg);

  service::BatchSolveRequest batch;
  batch.label = "batch";
  batch.workload = workloads::gsm_decoder();
  batch.required_gains = rgs;
  const std::vector<std::uint64_t> tickets = svc.submit_batch(std::move(batch));
  ASSERT_EQ(tickets.size(), rgs.size());

  for (std::size_t i = 0; i < rgs.size(); ++i) {
    const service::SolveResponse r = svc.wait(tickets[i]);
    ASSERT_EQ(r.state, service::RequestState::kCompleted) << "item " << i;
    expect_same_selection(flow.select(rgs[i], {}), r.selection,
                          "service item " + std::to_string(i));
  }
  const service::ServiceStats st = svc.stats();
  EXPECT_EQ(st.batches, 1u);
  EXPECT_EQ(st.batch_items, rgs.size());
  EXPECT_GT(st.batch_amortized_hits, 0u);
  svc.shutdown();
}

TEST(BatchSolve, EmptyBatchYieldsNoTickets) {
  service::ServiceConfig cfg;
  cfg.workers = 1;
  service::SolveService svc(cfg);
  service::BatchSolveRequest batch;
  batch.label = "empty";
  batch.workload = workloads::gsm_decoder();
  EXPECT_TRUE(svc.submit_batch(std::move(batch)).empty());
  svc.shutdown();
}

}  // namespace
}  // namespace partita

// Unit and property tests for the 0/1 ILP solver (model, simplex, B&B).
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "ilp/branch_bound.hpp"
#include "ilp/model.hpp"
#include "ilp/simplex.hpp"

namespace partita::ilp {
namespace {

TEST(Model, MergesDuplicateTerms) {
  Model m;
  const VarIndex x = m.add_binary("x");
  m.add_row("r", {{x, 1.0}, {x, 2.0}}, RowSense::kLessEqual, 2.0);
  ASSERT_EQ(m.row(0).terms.size(), 1u);
  EXPECT_DOUBLE_EQ(m.row(0).terms[0].coeff, 3.0);
}

TEST(Model, FeasibilityChecker) {
  Model m;
  const VarIndex x = m.add_binary("x");
  const VarIndex y = m.add_binary("y");
  m.add_row("r1", {{x, 1.0}, {y, 1.0}}, RowSense::kLessEqual, 1.0);
  EXPECT_TRUE(m.is_feasible({1.0, 0.0}));
  EXPECT_FALSE(m.is_feasible({1.0, 1.0}));
  EXPECT_FALSE(m.is_feasible({0.5, 0.0}));  // binary must be integral
}

// --- pure LP ----------------------------------------------------------------

TEST(Simplex, SolvesTwoVarLp) {
  // max 3x + 2y st x + y <= 4, x <= 2, x,y in [0, 10]: optimum x=2, y=2 -> 10.
  Model m;
  m.set_sense(Sense::kMaximize);
  const VarIndex x = m.add_continuous("x", 0, 10, 3.0);
  const VarIndex y = m.add_continuous("y", 0, 10, 2.0);
  m.add_row("cap", {{x, 1.0}, {y, 1.0}}, RowSense::kLessEqual, 4.0);
  m.add_row("xcap", {{x, 1.0}}, RowSense::kLessEqual, 2.0);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 10.0, 1e-7);
  EXPECT_NEAR(r.x[x], 2.0, 1e-7);
  EXPECT_NEAR(r.x[y], 2.0, 1e-7);
}

TEST(Simplex, HandlesGreaterEqualAndEquality) {
  // min x + y st x + 2y >= 4, x - y = 1 -> y=1, x=2, obj 3.
  Model m;
  const VarIndex x = m.add_continuous("x", 0, kInfinity, 1.0);
  const VarIndex y = m.add_continuous("y", 0, kInfinity, 1.0);
  m.add_row("ge", {{x, 1.0}, {y, 2.0}}, RowSense::kGreaterEqual, 4.0);
  m.add_row("eq", {{x, 1.0}, {y, -1.0}}, RowSense::kEqual, 1.0);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-7);
  EXPECT_NEAR(r.x[x], 2.0, 1e-7);
  EXPECT_NEAR(r.x[y], 1.0, 1e-7);
}

TEST(Simplex, DetectsInfeasible) {
  Model m;
  const VarIndex x = m.add_continuous("x", 0, 1, 1.0);
  m.add_row("lo", {{x, 1.0}}, RowSense::kGreaterEqual, 2.0);
  EXPECT_EQ(solve_lp(m).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m;
  m.set_sense(Sense::kMaximize);
  const VarIndex x = m.add_continuous("x", 0, kInfinity, 1.0);
  const VarIndex y = m.add_continuous("y", 0, kInfinity, 0.0);
  m.add_row("r", {{x, 1.0}, {y, -1.0}}, RowSense::kLessEqual, 1.0);
  EXPECT_EQ(solve_lp(m).status, LpStatus::kUnbounded);
}

TEST(Simplex, RespectsUpperBoundsWithoutRows) {
  Model m;
  m.set_sense(Sense::kMaximize);
  const VarIndex x = m.add_continuous("x", 0, 7, 1.0);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 7.0, 1e-7);
  EXPECT_NEAR(r.x[x], 7.0, 1e-7);
}

TEST(Simplex, BoundOverridesFixVariables) {
  Model m;
  m.set_sense(Sense::kMaximize);
  const VarIndex x = m.add_binary("x", 5.0);
  const VarIndex y = m.add_binary("y", 3.0);
  m.add_row("r", {{x, 1.0}, {y, 1.0}}, RowSense::kLessEqual, 2.0);
  const LpResult r = solve_lp(m, {0.0, 0.0}, {0.0, 1.0});  // x fixed to 0
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-7);
  EXPECT_NEAR(r.x[x], 0.0, 1e-9);
}

TEST(Simplex, EmptyDomainIsInfeasible) {
  Model m;
  m.add_binary("x", 1.0);
  EXPECT_EQ(solve_lp(m, {1.0}, {0.0}).status, LpStatus::kInfeasible);
}

// --- ILP ---------------------------------------------------------------------

TEST(BranchBound, SolvesSmallKnapsack) {
  // max 10a + 13b + 7c st 3a + 4b + 2c <= 6 -> a + c (17) vs b + c (20): b+c.
  Model m;
  m.set_sense(Sense::kMaximize);
  const VarIndex a = m.add_binary("a", 10);
  const VarIndex b = m.add_binary("b", 13);
  const VarIndex c = m.add_binary("c", 7);
  m.add_row("w", {{a, 3}, {b, 4}, {c, 2}}, RowSense::kLessEqual, 6);
  const IlpResult r = solve_ilp(m);
  ASSERT_EQ(r.status, IlpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 20.0, 1e-6);
  EXPECT_NEAR(r.x[a], 0.0, 1e-6);
  EXPECT_NEAR(r.x[b], 1.0, 1e-6);
  EXPECT_NEAR(r.x[c], 1.0, 1e-6);
}

TEST(BranchBound, MinimizationWithCover) {
  // min 2a + 3b + 4c st a + b >= 1, b + c >= 1, a + c >= 1: pick a + c = 6?
  // a+b = 5, but then b+c unmet unless b covers it: a=1,b=1 -> 5 covers all.
  Model m;
  const VarIndex a = m.add_binary("a", 2);
  const VarIndex b = m.add_binary("b", 3);
  const VarIndex c = m.add_binary("c", 4);
  m.add_row("r1", {{a, 1}, {b, 1}}, RowSense::kGreaterEqual, 1);
  m.add_row("r2", {{b, 1}, {c, 1}}, RowSense::kGreaterEqual, 1);
  m.add_row("r3", {{a, 1}, {c, 1}}, RowSense::kGreaterEqual, 1);
  const IlpResult r = solve_ilp(m);
  ASSERT_EQ(r.status, IlpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 5.0, 1e-6);
}

TEST(BranchBound, InfeasibleIlp) {
  Model m;
  const VarIndex a = m.add_binary("a", 1);
  const VarIndex b = m.add_binary("b", 1);
  m.add_row("need3", {{a, 1}, {b, 1}}, RowSense::kGreaterEqual, 3);
  EXPECT_EQ(solve_ilp(m).status, IlpStatus::kInfeasible);
}

TEST(BranchBound, FixedChargeLinearization) {
  // The paper's Eq. 3 pattern: z=1 iff any user x_i selected.
  // min 10z + 1*x1 + 1*x2 st x1 + x2 <= 2z, x1 + x2 >= 1.
  Model m;
  const VarIndex z = m.add_binary("z", 10);
  const VarIndex x1 = m.add_binary("x1", 1);
  const VarIndex x2 = m.add_binary("x2", 1);
  m.add_row("fc", {{x1, 1}, {x2, 1}, {z, -2}}, RowSense::kLessEqual, 0);
  m.add_row("use", {{x1, 1}, {x2, 1}}, RowSense::kGreaterEqual, 1);
  const IlpResult r = solve_ilp(m);
  ASSERT_EQ(r.status, IlpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 11.0, 1e-6);
  EXPECT_NEAR(r.x[z], 1.0, 1e-6);
}

TEST(BranchBound, EqualityConstrainedAssignment) {
  // Assign 2 tasks to 2 workers, each exactly once; costs force the
  // off-diagonal.
  Model m;
  const VarIndex x00 = m.add_binary("x00", 5);
  const VarIndex x01 = m.add_binary("x01", 1);
  const VarIndex x10 = m.add_binary("x10", 1);
  const VarIndex x11 = m.add_binary("x11", 5);
  m.add_row("t0", {{x00, 1}, {x01, 1}}, RowSense::kEqual, 1);
  m.add_row("t1", {{x10, 1}, {x11, 1}}, RowSense::kEqual, 1);
  m.add_row("w0", {{x00, 1}, {x10, 1}}, RowSense::kEqual, 1);
  m.add_row("w1", {{x01, 1}, {x11, 1}}, RowSense::kEqual, 1);
  const IlpResult r = solve_ilp(m);
  ASSERT_EQ(r.status, IlpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-6);
  EXPECT_NEAR(r.x[x01], 1.0, 1e-6);
  EXPECT_NEAR(r.x[x10], 1.0, 1e-6);
}

// Property: on random knapsack-family instances the B&B optimum matches
// exhaustive enumeration.
class RandomIlpProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomIlpProperty, MatchesBruteForce) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::uniform_int_distribution<int> coef(1, 20);
  std::uniform_int_distribution<int> nvars_d(2, 10);
  std::uniform_int_distribution<int> nrows_d(1, 5);
  std::uniform_int_distribution<int> sense_d(0, 2);

  const int n = nvars_d(rng);
  const int rows = nrows_d(rng);

  Model m;
  m.set_sense(GetParam() % 2 == 0 ? Sense::kMaximize : Sense::kMinimize);
  for (int j = 0; j < n; ++j) {
    m.add_binary("x" + std::to_string(j), coef(rng));
  }
  for (int r = 0; r < rows; ++r) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) {
      if (rng() % 2) terms.push_back({static_cast<VarIndex>(j), double(coef(rng))});
    }
    if (terms.empty()) continue;
    double total = 0;
    for (const Term& t : terms) total += t.coeff;
    // RHS chosen so the row is restrictive but not trivially infeasible.
    const double rhs = std::floor(total / 2.0);
    const RowSense sense =
        sense_d(rng) == 0 ? RowSense::kLessEqual
                          : (sense_d(rng) == 1 ? RowSense::kGreaterEqual : RowSense::kLessEqual);
    m.add_row("r" + std::to_string(r), terms, sense, rhs);
  }

  // Brute force.
  bool any = false;
  double best = 0;
  for (int mask = 0; mask < (1 << n); ++mask) {
    std::vector<double> x(n);
    for (int j = 0; j < n; ++j) x[j] = (mask >> j) & 1;
    if (!m.is_feasible(x)) continue;
    const double obj = m.objective_value(x);
    if (!any || (m.sense() == Sense::kMaximize ? obj > best : obj < best)) {
      best = obj;
      any = true;
    }
  }

  const IlpResult r = solve_ilp(m);
  if (!any) {
    EXPECT_EQ(r.status, IlpStatus::kInfeasible) << m.dump();
  } else {
    ASSERT_EQ(r.status, IlpStatus::kOptimal) << m.dump();
    EXPECT_NEAR(r.objective, best, 1e-6) << m.dump();
    EXPECT_TRUE(m.is_feasible(r.x));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomIlpProperty, ::testing::Range(0, 60));

TEST(Simplex, BasisExportImportWarmStart) {
  // min x + 2y  s.t.  x + y >= 3,  x - y <= 1,  x,y in [0, 10].
  Model m;
  m.set_sense(Sense::kMinimize);
  const VarIndex x = m.add_continuous("x", 0.0, 10.0, 1.0);
  const VarIndex y = m.add_continuous("y", 0.0, 10.0, 2.0);
  m.add_row("r1", {{x, 1.0}, {y, 1.0}}, RowSense::kGreaterEqual, 3.0);
  m.add_row("r2", {{x, 1.0}, {y, -1.0}}, RowSense::kLessEqual, 1.0);

  SimplexSolver solver(m);
  std::vector<double> lo{0.0, 0.0}, hi{10.0, 10.0};
  const LpResult cold = solver.solve(lo, hi);
  ASSERT_EQ(cold.status, LpStatus::kOptimal);
  EXPECT_NEAR(cold.objective, 4.0, 1e-7);  // (x, y) = (2, 1)
  const Basis basis = solver.last_basis();
  ASSERT_FALSE(basis.empty());

  // Tighten x's domain (the branch & bound move) and re-solve from the
  // exported basis: the dual simplex must reach the new optimum.
  lo[0] = 3.0;
  const LpResult warm = solver.solve_warm(lo, hi, basis);
  ASSERT_EQ(warm.status, LpStatus::kOptimal);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_NEAR(warm.objective, 7.0, 1e-7);  // (x, y) = (3, 2)

  SimplexSolver fresh(m);
  const LpResult check = fresh.solve(lo, hi);
  ASSERT_EQ(check.status, LpStatus::kOptimal);
  EXPECT_NEAR(warm.objective, check.objective, 1e-7);
}

// Presolve and warm starts are pure accelerations: every combination must
// report the same status, objective, and (canonical) solution vector, and
// the stats must reflect which features actually ran.
TEST(BranchBound, OptionTogglesPreserveTheOptimum) {
  std::mt19937 rng(4242);
  std::uniform_int_distribution<int> coef(1, 20);
  std::uniform_int_distribution<int> nvars_d(3, 12);
  std::uniform_int_distribution<int> nrows_d(1, 6);

  for (int instance = 0; instance < 25; ++instance) {
    const int n = nvars_d(rng);
    const int rows = nrows_d(rng);
    Model m;
    m.set_sense(instance % 2 == 0 ? Sense::kMaximize : Sense::kMinimize);
    for (int j = 0; j < n; ++j) m.add_binary("x" + std::to_string(j), coef(rng));
    for (int r = 0; r < rows; ++r) {
      std::vector<Term> terms;
      for (int j = 0; j < n; ++j) {
        if (rng() % 2) terms.push_back({static_cast<VarIndex>(j), double(coef(rng))});
      }
      if (terms.empty()) continue;
      double total = 0;
      for (const Term& t : terms) total += t.coeff;
      m.add_row("r" + std::to_string(r), terms,
                rng() % 2 ? RowSense::kLessEqual : RowSense::kGreaterEqual,
                std::floor(total / 2.0));
    }

    IlpResult reference;
    bool have_reference = false;
    for (const bool presolve : {true, false}) {
      for (const bool warm : {true, false}) {
        IlpOptions opt;
        opt.presolve = presolve;
        opt.warm_start = warm;
        const IlpResult r = solve_ilp(m, opt);
        // Presolve may prove infeasibility before any node is explored.
        if (r.status == IlpStatus::kOptimal) {
          EXPECT_GE(r.stats.nodes, 1) << m.dump();
        }
        if (!warm) {
          EXPECT_EQ(r.stats.warm_starts, 0) << m.dump();
        }
        if (!presolve) {
          EXPECT_EQ(r.stats.presolve_fixed, 0) << m.dump();
          EXPECT_EQ(r.stats.presolve_rounds, 0) << m.dump();
        }
        if (!have_reference) {
          reference = r;
          have_reference = true;
          continue;
        }
        EXPECT_EQ(r.status, reference.status) << m.dump();
        if (r.status == IlpStatus::kOptimal) {
          EXPECT_NEAR(r.objective, reference.objective, 1e-6) << m.dump();
          ASSERT_EQ(r.x.size(), reference.x.size());
          for (std::size_t j = 0; j < r.x.size(); ++j) {
            EXPECT_NEAR(r.x[j], reference.x[j], 1e-6)
                << "var " << j << " differs (presolve=" << presolve
                << " warm=" << warm << ")\n"
                << m.dump();
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace partita::ilp

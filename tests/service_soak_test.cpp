// Concurrency soak for the solve service: a storm of concurrent requests
// (built-ins + random generated instances) with random cancellations and
// armed fault-injection sites. The assertions are lifecycle invariants, not
// outcomes: every request reaches exactly one terminal state, the stats
// ledger balances, and after the storm -- faults disarmed -- the pool still
// serves a fresh request cleanly. CI runs this binary under both
// AddressSanitizer and ThreadSanitizer.
//
//   service_soak [--quick] [--requests N] [--seed S]
//
// --quick (the tier-1 registration) runs a 12-request storm; the default
// (tier-2) runs 72. Exit 0 on success, 1 with a message on any violation.
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "select/flow.hpp"
#include "service/solve_service.hpp"
#include "support/fault_injection.hpp"
#include "workloads/random_workload.hpp"
#include "workloads/workloads.hpp"

using namespace partita;

namespace {

int g_failures = 0;

#define SOAK_CHECK(cond, ...)                               \
  do {                                                      \
    if (!(cond)) {                                          \
      std::fprintf(stderr, "soak: FAIL %s:%d: ", __FILE__, __LINE__); \
      std::fprintf(stderr, __VA_ARGS__);                    \
      std::fprintf(stderr, "\n");                           \
      ++g_failures;                                         \
    }                                                       \
  } while (0)

service::SolveRequest make_request(std::mt19937_64& rng, int index) {
  service::SolveRequest req;
  switch (rng() % 5) {
    case 0: req.workload = workloads::fig9_case(); break;
    case 1: req.workload = workloads::fig10_case(); break;
    case 2: req.workload = workloads::gsm_decoder(); break;
    case 3: req.workload = workloads::jpeg_encoder(); break;
    default: {
      // A generated instance that carries its spec, so a failure would leave
      // a replayable quarantine fixture.
      workloads::InstanceGenParams p;
      p.scalls = 5 + static_cast<int>(rng() % 4);
      p.kernels = 3 + static_cast<int>(rng() % 3);
      p.ips = 4 + static_cast<int>(rng() % 4);
      const std::uint64_t seed = rng();
      workloads::InstanceSpec spec = workloads::random_instance_spec(p, seed);
      req.workload = workloads::spec_workload(spec);
      req.spec = std::move(spec);
      break;
    }
  }
  req.label = "soak_" + std::to_string(index);
  // A few requests solve multi-threaded inside one worker slot.
  req.options.ilp.threads = 1 + static_cast<int>(rng() % 2) * 2;
  return req;
}

// Cache-enabled storm: random repeats of a small base set (so hits are
// frequent), random cancels, a transient service fault, random per-request
// thread counts and a mid-storm invalidation. The invariants: every
// completed answer -- hit, neighbor-seeded or cold -- is bit-identical to
// the precomputed cold solve of its (workload, gain), so no stale or torn
// entry is ever served; a cancelled solve never populates the cache; and the
// cache counters balance (hits + misses == lookups).
void cache_storm(int requests, std::uint64_t seed) {
  struct Base {
    workloads::Workload (*make)();
    std::int64_t gain = 0;
    std::string cold_sig;
  };
  std::vector<Base> bases;
  for (workloads::Workload (*make)() :
       {workloads::fig9_case, workloads::fig10_case, workloads::gsm_decoder}) {
    const workloads::Workload w = make();
    const auto flow = select::Flow::create(w.module, w.library);
    SOAK_CHECK(flow.ok(), "cache storm: base workload failed verification");
    if (!flow.ok()) continue;
    const std::int64_t gmax = flow.value()->max_feasible_gain();
    for (const std::int64_t g : {gmax / 2, gmax / 2 - 3}) {
      bases.push_back(
          {make, g, select::solution_signature(flow.value()->select(g))});
    }
  }

  auto& fi = support::FaultInjector::instance();
  fi.arm("service.transient", /*trip_at=*/5, /*sticky=*/false);

  service::ServiceConfig cfg;
  cfg.workers = 4;
  cfg.max_queue_depth = static_cast<std::size_t>(requests);
  cfg.cache_enabled = true;
  cfg.cache_capacity = 16;
  service::SolveService svc(cfg);

  std::mt19937_64 rng(seed ^ 0xcafef00dULL);
  std::vector<std::uint64_t> tickets;
  std::vector<std::size_t> base_of;
  for (int i = 0; i < requests; ++i) {
    const std::size_t b = rng() % bases.size();
    service::SolveRequest req;
    req.workload = bases[b].make();
    req.required_gain = bases[b].gain;
    req.label = "cache_storm_" + std::to_string(i);
    // Thread count must neither fragment the cache nor change answers.
    req.options.ilp.threads = 1 + static_cast<int>(rng() % 2) * 2;
    tickets.push_back(svc.submit(std::move(req)));
    base_of.push_back(b);
    if (rng() % 5 == 0) svc.cancel(tickets[rng() % tickets.size()]);
    if (i == requests / 2) svc.invalidate_cache();
  }

  std::uint64_t completed = 0, cancelled = 0, other = 0;
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const service::SolveResponse r = svc.wait(tickets[i]);
    switch (r.state) {
      case service::RequestState::kCompleted:
        ++completed;
        SOAK_CHECK(select::solution_signature(r.selection) ==
                       bases[base_of[i]].cold_sig,
                   "cache storm: ticket %llu (cache=%s) diverged from cold solve",
                   static_cast<unsigned long long>(tickets[i]), r.cache.c_str());
        break;
      case service::RequestState::kCancelled: ++cancelled; break;
      default: ++other; break;
    }
  }
  fi.reset();

  const service::ServiceStats st = svc.stats();
  SOAK_CHECK(st.cache_hits + st.cache_misses == st.cache_lookups,
             "cache storm: hits %llu + misses %llu != lookups %llu",
             static_cast<unsigned long long>(st.cache_hits),
             static_cast<unsigned long long>(st.cache_misses),
             static_cast<unsigned long long>(st.cache_lookups));
  SOAK_CHECK(st.cache_neighbor_seeds <= st.cache_misses,
             "cache storm: more neighbor seeds than misses");
  // Only completed solves insert (cancelled/failed attempts must not), and
  // retried attempts may look up more than once.
  SOAK_CHECK(st.cache_insertions <= completed + st.retries,
             "cache storm: %llu insertions from %llu completions",
             static_cast<unsigned long long>(st.cache_insertions),
             static_cast<unsigned long long>(completed));
  SOAK_CHECK(completed > 0 && st.cache_hits > 0,
             "cache storm: served no cached answers (completed %llu, hits %llu)",
             static_cast<unsigned long long>(completed),
             static_cast<unsigned long long>(st.cache_hits));

  svc.shutdown();
  std::printf(
      "soak: cache storm %d requests -> %llu completed, %llu cancelled, "
      "%llu other; %llu hits / %llu neighbor / %llu misses, %llu stale, "
      "%llu insertions\n",
      requests, static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(cancelled),
      static_cast<unsigned long long>(other),
      static_cast<unsigned long long>(st.cache_hits),
      static_cast<unsigned long long>(st.cache_neighbor_seeds),
      static_cast<unsigned long long>(st.cache_misses),
      static_cast<unsigned long long>(st.cache_stale),
      static_cast<unsigned long long>(st.cache_insertions));
}

// Deterministic cancelled-never-populates check: a paused service queues a
// request, the cancel lands while it is still queued (never runs), and the
// identical follow-up must therefore MISS -- a hit would mean the cancelled
// request reached the cache.
void cancelled_populates_nothing() {
  service::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.cache_enabled = true;
  cfg.start_paused = true;
  service::SolveService svc(cfg);

  service::SolveRequest req;
  req.workload = workloads::adpcm_codec();
  req.required_gain = 100;
  const std::uint64_t doomed = svc.submit(std::move(req));
  SOAK_CHECK(svc.cancel(doomed), "paused cancel refused");
  svc.resume();
  SOAK_CHECK(svc.wait(doomed).state == service::RequestState::kCancelled,
             "queued cancel did not turn terminal kCancelled");

  service::SolveRequest again;
  again.workload = workloads::adpcm_codec();
  again.required_gain = 100;
  const service::SolveResponse r = svc.wait(svc.submit(std::move(again)));
  SOAK_CHECK(r.state == service::RequestState::kCompleted,
             "follow-up after cancel did not complete");
  SOAK_CHECK(r.cache == "miss",
             "cancelled request populated the cache (follow-up served '%s')",
             r.cache.c_str());
  svc.shutdown();
}

}  // namespace

int main(int argc, char** argv) {
  int requests = 72;
  std::uint64_t seed = 2026;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      requests = 12;
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--requests N] [--seed S]\n", argv[0]);
      return 2;
    }
  }
  std::mt19937_64 rng(seed);

  // One-shot transient faults at every governed site: one request somewhere
  // in the storm hits a spurious deadline, a failed arena allocation, a
  // failed warm-basis refactorization, and a transient service fault (which
  // drives the retry path). Non-sticky arming keeps the rest of the storm
  // healthy while still forcing every recovery path to run.
  auto& fi = support::FaultInjector::instance();
  fi.arm("ilp.deadline", /*trip_at=*/101, /*sticky=*/false);
  fi.arm("ilp.node_arena", /*trip_at=*/211, /*sticky=*/false);
  fi.arm("simplex.warm_refactor", /*trip_at=*/61, /*sticky=*/false);
  fi.arm("service.transient", /*trip_at=*/3, /*sticky=*/false);

  service::ServiceConfig cfg;
  cfg.workers = 4;
  cfg.max_queue_depth = static_cast<std::size_t>(requests);  // admit the storm
  service::SolveService svc(cfg);

  std::vector<std::uint64_t> tickets;
  tickets.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    tickets.push_back(svc.submit(make_request(rng, i)));
    // Random cancels land while earlier requests are queued or running.
    if (rng() % 4 == 0 && !tickets.empty()) {
      svc.cancel(tickets[rng() % tickets.size()]);
    }
  }

  std::uint64_t completed = 0, cancelled = 0, rejected = 0, failed = 0;
  for (std::uint64_t t : tickets) {
    const service::SolveResponse r = svc.wait(t);
    SOAK_CHECK(service::is_terminal(r.state), "ticket %llu non-terminal (%s)",
               static_cast<unsigned long long>(t), service::to_string(r.state));
    switch (r.state) {
      case service::RequestState::kCompleted:
        ++completed;
        SOAK_CHECK(r.selection.feasible, "ticket %llu completed infeasible",
                   static_cast<unsigned long long>(t));
        break;
      case service::RequestState::kCancelled: ++cancelled; break;
      case service::RequestState::kRejected: ++rejected; break;
      case service::RequestState::kFailed:
        ++failed;
        std::fprintf(stderr, "soak: note: ticket %llu failed: %s\n",
                     static_cast<unsigned long long>(t), r.error.message.c_str());
        break;
      default: break;
    }
  }

  // The ledger must balance: every submission is in exactly one terminal
  // bucket, both in our tally and in the service's own stats.
  const service::ServiceStats st = svc.stats();
  SOAK_CHECK(st.submitted == static_cast<std::uint64_t>(requests),
             "submitted %llu != %d", static_cast<unsigned long long>(st.submitted),
             requests);
  SOAK_CHECK(completed + cancelled + rejected + failed ==
                 static_cast<std::uint64_t>(requests),
             "terminal buckets do not sum to %d", requests);
  SOAK_CHECK(st.completed == completed && st.cancelled == cancelled &&
                 st.rejected == rejected && st.failed == failed,
             "service stats disagree with observed outcomes");
  SOAK_CHECK(completed > 0, "storm completed nothing");

  // After the storm: faults disarmed, the pool must serve a fresh request
  // cleanly -- no worker died, no charge leaked, no queue slot stuck.
  fi.reset();
  const std::uint64_t fresh = svc.submit([&] {
    service::SolveRequest req;
    req.workload = workloads::gsm_encoder();
    req.label = "fresh_after_storm";
    return req;
  }());
  const service::SolveResponse r = svc.wait(fresh);
  SOAK_CHECK(r.state == service::RequestState::kCompleted,
             "fresh request after storm: %s (%s)", service::to_string(r.state),
             r.error.message.c_str());
  SOAK_CHECK(r.attempts == 1, "fresh request needed %d attempts", r.attempts);

  svc.shutdown();

  // Second act: the cache-enabled storm plus the deterministic
  // cancelled-never-populates check (see the function comments).
  cache_storm(requests, seed);
  cancelled_populates_nothing();

  std::printf(
      "soak: %d requests -> %llu completed, %llu cancelled, %llu rejected, "
      "%llu failed, %llu retries (peak queue %zu)\n",
      requests, static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(cancelled),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(st.retries), st.peak_queue_depth);
  if (g_failures != 0) {
    std::fprintf(stderr, "soak: %d failure(s)\n", g_failures);
    return 1;
  }
  std::printf("soak: OK\n");
  return 0;
}

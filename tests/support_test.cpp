// Tests for the support utilities: diagnostics, RNG, strings, text tables.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "support/diagnostics.hpp"
#include "support/fault_injection.hpp"
#include "support/result.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/text_table.hpp"

namespace partita::support {
namespace {

// --- diagnostics -------------------------------------------------------------

TEST(Diagnostics, CountsBySeverity) {
  DiagnosticEngine d;
  d.note("fyi");
  d.warning("hmm");
  d.error("bad", {3, 7});
  EXPECT_TRUE(d.has_errors());
  EXPECT_EQ(d.error_count(), 1u);
  EXPECT_EQ(d.warning_count(), 1u);
  EXPECT_EQ(d.diagnostics().size(), 3u);
}

TEST(Diagnostics, RendersLocation) {
  Diagnostic d{Severity::kError, "unexpected token", {12, 5}};
  EXPECT_EQ(d.render(), "error at 12:5: unexpected token");
  Diagnostic no_loc{Severity::kWarning, "w", {}};
  EXPECT_EQ(no_loc.render(), "warning: w");
}

TEST(Diagnostics, ClearResets) {
  DiagnosticEngine d;
  d.error("x");
  d.clear();
  EXPECT_FALSE(d.has_errors());
  EXPECT_TRUE(d.diagnostics().empty());
}

// --- rng ----------------------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng r(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(r.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, Uniform01Bounds) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng r(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.chance(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, WeightedIndexRespectsZeros) {
  Rng r(9);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(r.weighted_index({0.0, 5.0, 0.0}), 1u);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  r.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

// --- strings -------------------------------------------------------------------

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  a b\t"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \n "), "");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitWsDropsEmpty) {
  const auto parts = split_ws("  foo\t bar \n baz ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[2], "baz");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, ParseInt) {
  std::int64_t v = 0;
  EXPECT_TRUE(parse_int("-42", v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(parse_int("12x", v));
  EXPECT_FALSE(parse_int("", v));
}

TEST(Strings, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(parse_double("3.5e2", v));
  EXPECT_DOUBLE_EQ(v, 350.0);
  EXPECT_FALSE(parse_double("nope", v));
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(-1000), "-1,000");
}

TEST(Strings, CompactDouble) {
  EXPECT_EQ(compact_double(3.0), "3");
  EXPECT_EQ(compact_double(3.5), "3.5");
}

// --- text table -----------------------------------------------------------------

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"RG", "G"});
  t.set_alignment({Align::kRight, Align::kRight});
  t.add_row({"1", "22"});
  t.add_row({"333", "4"});
  const std::string out = t.render();
  EXPECT_NE(out.find(" RG |  G"), std::string::npos);
  EXPECT_NE(out.find("333 |  4"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, HeaderRuleMatchesWidth) {
  TextTable t({"ab"});
  t.add_row({"xyzw"});
  const auto out = t.render();
  EXPECT_NE(out.find("----"), std::string::npos);
}

// --- Result ---------------------------------------------------------------------

Result<int> parse_positive(int v) {
  if (v > 0) return v;
  DiagnosticEngine diags;
  diags.error("value must be positive");
  return Error::from("bad value", diags);
}

TEST(Result, HoldsValueOrError) {
  Result<int> good = parse_positive(7);
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(static_cast<bool>(good));
  EXPECT_EQ(good.value(), 7);
  EXPECT_EQ(good.take(), 7);

  Result<int> bad = parse_positive(-1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message, "bad value");
  ASSERT_EQ(bad.error().diagnostics.size(), 1u);
}

TEST(Result, RenderIncludesDiagnostics) {
  const Result<int> bad = parse_positive(0);
  const std::string text = bad.error().render();
  EXPECT_NE(text.find("bad value"), std::string::npos);
  EXPECT_NE(text.find("value must be positive"), std::string::npos);
}

TEST(Result, WorksWithMoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(42);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = r.take();
  EXPECT_EQ(*owned, 42);
}

// --- fault injection ------------------------------------------------------------

TEST(FaultInjection, DisarmedSitesNeverFire) {
  FaultInjector::instance().reset();
  EXPECT_FALSE(fault_should_trip("nothing.armed"));
  EXPECT_EQ(FaultInjector::instance().hits("nothing.armed"), 0u);
}

TEST(FaultInjection, TripsAtNthCheckpointAndStays) {
  FaultInjector::instance().reset();
  {
    ScopedFault f("unit.site", /*trip_at=*/3);
    EXPECT_FALSE(fault_should_trip("unit.site"));
    EXPECT_FALSE(fault_should_trip("unit.site"));
    EXPECT_TRUE(fault_should_trip("unit.site"));   // 3rd checkpoint fires...
    EXPECT_TRUE(fault_should_trip("unit.site"));   // ...and stays tripped
    EXPECT_EQ(FaultInjector::instance().hits("unit.site"), 4u);
    // An armed injector never fires sites it was not armed for.
    EXPECT_FALSE(fault_should_trip("unit.other"));
  }
  // ScopedFault disarms on scope exit.
  EXPECT_FALSE(fault_should_trip("unit.site"));
}

TEST(FaultInjection, RearmingResetsHitCount) {
  FaultInjector::instance().reset();
  FaultInjector::instance().arm("unit.rearm", 2);
  EXPECT_FALSE(fault_should_trip("unit.rearm"));
  FaultInjector::instance().arm("unit.rearm", 2);  // re-arm: count starts over
  EXPECT_FALSE(fault_should_trip("unit.rearm"));
  EXPECT_TRUE(fault_should_trip("unit.rearm"));
  FaultInjector::instance().reset();
  EXPECT_FALSE(fault_should_trip("unit.rearm"));
}

}  // namespace
}  // namespace partita::support

// End-to-end integration tests: the three paper experiments run through the
// whole pipeline and must exhibit the qualitative results of Tables 1-3,
// cross-checked by the co-simulator.
#include <gtest/gtest.h>

#include <set>

#include "select/flow.hpp"
#include "sim/cosim.hpp"
#include "workloads/workloads.hpp"

namespace partita {
namespace {

using select::Flow;
using select::Selection;

/// RG sweep rows k/8 * Gmax for k = 1..8 (the paper's Table 1/2 pattern).
std::vector<std::int64_t> rg_sweep(std::int64_t gmax) {
  std::vector<std::int64_t> rgs;
  for (int k = 1; k <= 8; ++k) rgs.push_back(gmax * k / 8);
  return rgs;
}

TEST(Table1, GsmEncoderSweep) {
  workloads::Workload w = workloads::gsm_encoder();
  Flow flow(w.module, w.library);
  const std::int64_t gmax = flow.max_feasible_gain();
  ASSERT_GT(gmax, 0);

  double prev_area = -1;
  std::set<iface::InterfaceType> types_low, types_high;
  for (std::size_t i = 0; i < rg_sweep(gmax).size(); ++i) {
    const std::int64_t rg = rg_sweep(gmax)[i];
    const Selection sel = flow.select(rg);
    ASSERT_TRUE(sel.feasible) << "RG=" << rg;
    // Meets the requirement and stays weakly monotone in area.
    EXPECT_GE(sel.min_path_gain, rg);
    EXPECT_GE(sel.total_area(), prev_area - 1e-9);
    prev_area = sel.total_area();
    EXPECT_LE(sel.s_instructions, sel.selected_scalls);
    for (isel::ImpIndex idx : sel.chosen) {
      (i < 2 ? types_low : types_high)
          .insert(flow.imp_database().imps()[idx].iface_type);
    }
  }
  // Paper observation 1: at low RG the cheap type-0 interface dominates.
  EXPECT_TRUE(types_low.count(iface::InterfaceType::kType0) ||
              types_low.size() <= 1);
  // Paper observation 3: higher RG brings in more powerful interfaces.
  bool high_has_powerful = false;
  for (iface::InterfaceType t : types_high) {
    high_has_powerful |= t != iface::InterfaceType::kType0;
  }
  EXPECT_TRUE(high_has_powerful);
}

TEST(Table1, IpSharingReducesSInstructions) {
  workloads::Workload w = workloads::gsm_encoder();
  Flow flow(w.module, w.library);
  const std::int64_t gmax = flow.max_feasible_gain();
  // Somewhere in the sweep several s-calls share one IP (S < O).
  bool shared = false;
  for (int k = 2; k <= 8; k += 2) {
    const Selection sel = flow.select(gmax * k / 8);
    ASSERT_TRUE(sel.feasible);
    shared |= sel.s_instructions < sel.selected_scalls;
  }
  EXPECT_TRUE(shared);
}

TEST(Table2, GsmDecoderSweepAndType0ToType2Switch) {
  workloads::Workload w = workloads::gsm_decoder();
  Flow flow(w.module, w.library);
  const std::int64_t gmax = flow.max_feasible_gain();
  ASSERT_GT(gmax, 0);

  // The rate-2 postfilter IP must be served by type-0 at low RG (clock
  // slowdown accepted) and upgrade to type-2 when the requirement tightens
  // -- Table 2's SC10 transition.
  std::set<iface::InterfaceType> postfilter_types;
  for (const std::int64_t rg : rg_sweep(gmax)) {
    const Selection sel = flow.select(rg);
    ASSERT_TRUE(sel.feasible) << "RG=" << rg;
    for (isel::ImpIndex idx : sel.chosen) {
      const isel::Imp& imp = flow.imp_database().imps()[idx];
      if (imp.ip_function->function == "postfilter") {
        postfilter_types.insert(imp.iface_type);
      }
    }
  }
  EXPECT_TRUE(postfilter_types.count(iface::InterfaceType::kType2))
      << "the hardware interface never kicked in for the rate-2 IP";
}

TEST(Table3, JpegHierarchyLadder) {
  workloads::Workload w = workloads::jpeg_encoder();
  Flow flow(w.module, w.library);
  const std::int64_t gmax = flow.max_feasible_gain();
  ASSERT_GT(gmax, 0);

  // Table 3's ladder: low RG satisfied deep in the hierarchy (C-MUL/FFT
  // flattened IMPs), top RG only by the full 2D-DCT IP.
  const Selection low = flow.select(gmax / 3);
  ASSERT_TRUE(low.feasible);
  bool low_flattened = false;
  for (isel::ImpIndex idx : low.chosen) {
    low_flattened |= flow.imp_database().imps()[idx].flattened;
  }
  EXPECT_TRUE(low_flattened);

  const Selection top = flow.select(gmax);
  ASSERT_TRUE(top.feasible);
  bool top_uses_dct2d_ip = false;
  for (isel::ImpIndex idx : top.chosen) {
    const isel::Imp& imp = flow.imp_database().imps()[idx];
    top_uses_dct2d_ip |= !imp.flattened && imp.ip_function->function == "dct2d";
  }
  EXPECT_TRUE(top_uses_dct2d_ip);
  EXPECT_GT(top.total_area(), low.total_area());
}

TEST(Ablation, IlpNeverWorseThanGreedyAcrossWorkloads) {
  for (auto make :
       {workloads::gsm_encoder, workloads::gsm_decoder, workloads::jpeg_encoder}) {
    workloads::Workload w = make();
    Flow flow(w.module, w.library);
    const std::int64_t gmax = flow.max_feasible_gain();
    for (int k = 1; k <= 3; ++k) {
      const std::int64_t rg = gmax * k / 4;
      const Selection ilp_sel = flow.select(rg);
      const Selection greedy_sel = flow.greedy(rg);
      ASSERT_TRUE(ilp_sel.feasible) << w.name;
      if (greedy_sel.feasible) {
        EXPECT_GE(greedy_sel.total_area() + 1e-9, ilp_sel.total_area()) << w.name;
      }
    }
  }
}

TEST(Ablation, PriorArtCapsBelowFullMethod) {
  // Without interface co-selection and parallel execution, the reachable
  // gain is strictly lower on every paper workload.
  for (auto make :
       {workloads::gsm_encoder, workloads::gsm_decoder, workloads::jpeg_encoder}) {
    workloads::Workload w = make();
    Flow flow(w.module, w.library);
    select::SelectOptions prior;
    prior.imp_filter = select::prior_art_allows;
    const std::int64_t full = flow.max_feasible_gain();
    const std::int64_t prior_max = flow.selector().max_feasible_gain(prior);
    EXPECT_LT(prior_max, full) << w.name;
  }
}

TEST(CrossCheck, SimulatorConfirmsGuaranteedGain) {
  for (auto make : {workloads::gsm_decoder, workloads::jpeg_encoder}) {
    workloads::Workload w = make();
    Flow flow(w.module, w.library);
    sim::CoSimulator cosim(w.module, w.library, flow.imp_database(), flow.entry_cdfg(),
                           flow.paths());
    const Selection sel = flow.select(flow.max_feasible_gain() / 2);
    ASSERT_TRUE(sel.feasible) << w.name;
    for (int i = 0; i < 5; ++i) {
      support::Rng r1(42 + i), r2(42 + i);
      const sim::SimResult sw = cosim.run(nullptr, r1);
      const sim::SimResult hw = cosim.run(&sel, r2);
      EXPECT_GE(sw.total_cycles - hw.total_cycles, sel.min_path_gain) << w.name;
    }
  }
}

TEST(Problem2, StrictlyExtendsProblem1OnPaperWorkloads) {
  // Problem 2's feasible region contains Problem 1's: max gain never drops.
  for (auto make : {workloads::gsm_encoder, workloads::gsm_decoder,
                    workloads::fig9_case, workloads::fig10_case}) {
    workloads::Workload w = make();
    Flow flow(w.module, w.library);
    select::SelectOptions p1;
    p1.problem2 = false;
    EXPECT_GE(flow.max_feasible_gain(), flow.selector().max_feasible_gain(p1)) << w.name;
  }
}

}  // namespace
}  // namespace partita

// Robustness: random-input fuzzing of the two text frontends and the IP
// loader (must diagnose, never crash), solver stress on degenerate and
// larger random instances, and the resource-governed solve pipeline:
// deadline/memory budgets, the staged degradation ladder, and deterministic
// fault injection.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "frontend/parser.hpp"
#include "ilp/branch_bound.hpp"
#include "iplib/loader.hpp"
#include "minic/mc_codegen.hpp"
#include "report/chip_report.hpp"
#include "select/export.hpp"
#include "select/flow.hpp"
#include "support/clock.hpp"
#include "support/fault_injection.hpp"
#include "workloads/random_workload.hpp"
#include "workloads/workloads.hpp"

namespace partita {
namespace {

// --- fuzzing -------------------------------------------------------------------

std::string random_token_soup(std::mt19937& rng, bool kl_flavored) {
  static const char* kKlWords[] = {"module", "func",  "seg",   "call", "if",
                                   "loop",   "reads", "writes", "prob", "scall",
                                   "sw_cycles", "entry", "else"};
  static const char* kMcWords[] = {"int",  "void", "for",     "if",      "else",
                                   "in",   "out",  "inout",   "__scall", "__cycles",
                                   "__prob"};
  static const char* kPunct[] = {"{", "}", "(", ")", "[", "]", ";", ",", "=",
                                 "+", "-", "*", "<", ">", "<<", "!=", "|"};
  std::string out;
  const int n = 5 + static_cast<int>(rng() % 120);
  for (int i = 0; i < n; ++i) {
    switch (rng() % 4) {
      case 0:
        out += kl_flavored ? kKlWords[rng() % std::size(kKlWords)]
                           : kMcWords[rng() % std::size(kMcWords)];
        break;
      case 1:
        out += kPunct[rng() % std::size(kPunct)];
        break;
      case 2:
        out += "v" + std::to_string(rng() % 9);
        break;
      case 3:
        out += std::to_string(rng() % 10000);
        break;
    }
    out += (rng() % 6 == 0) ? "\n" : " ";
  }
  return out;
}

class FuzzFrontends : public ::testing::TestWithParam<int> {};

TEST_P(FuzzFrontends, KlParserNeverCrashes) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  for (int i = 0; i < 50; ++i) {
    support::DiagnosticEngine diags;
    auto m = frontend::parse_module(random_token_soup(rng, true), diags);
    if (!m) {
      EXPECT_TRUE(diags.has_errors());  // rejection must be explained
    }
  }
}

TEST_P(FuzzFrontends, MiniCCompilerNeverCrashes) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) + 9000);
  for (int i = 0; i < 50; ++i) {
    support::DiagnosticEngine diags;
    auto m = minic::mc_compile_source(random_token_soup(rng, false), "fuzz", diags);
    if (!m) {
      EXPECT_TRUE(diags.has_errors());
    }
  }
}

TEST_P(FuzzFrontends, IpLoaderNeverCrashes) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) + 5000);
  static const char* kWords[] = {"ip",       "area",    "ports", "rate", "in",
                                 "out",      "latency", "fn",    "cycles", "{",
                                 "}",        "pipelined", "protocol", "sync"};
  for (int i = 0; i < 50; ++i) {
    std::string soup;
    const int n = 5 + static_cast<int>(rng() % 60);
    for (int k = 0; k < n; ++k) {
      soup += (rng() % 3 == 0) ? std::to_string(rng() % 100)
                               : kWords[rng() % std::size(kWords)];
      soup += (rng() % 5 == 0) ? "\n" : " ";
    }
    support::DiagnosticEngine diags;
    auto lib = iplib::load_library(soup, diags);
    if (!lib) {
      EXPECT_TRUE(diags.has_errors());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzFrontends, ::testing::Range(0, 6));

// --- solver stress --------------------------------------------------------------

TEST(SolverStress, HighlyDegenerateEqualitySystem) {
  // Many redundant equalities around one feasible point: phase-1 heavy,
  // degenerate pivots; must still terminate at the optimum.
  ilp::Model m;
  m.set_sense(ilp::Sense::kMaximize);
  std::vector<ilp::VarIndex> x;
  for (int j = 0; j < 10; ++j) x.push_back(m.add_binary("x" + std::to_string(j), j + 1));
  for (int r = 0; r < 8; ++r) {
    std::vector<ilp::Term> terms;
    for (int j = r; j < 10; j += 2) terms.push_back({x[static_cast<std::size_t>(j)], 1.0});
    m.add_row("eq" + std::to_string(r), std::move(terms), ilp::RowSense::kEqual,
              r % 2 ? 2.0 : 1.0);
  }
  const ilp::IlpResult r = ilp::solve_ilp(m);
  // May be infeasible depending on parity structure; it must terminate with
  // a definite answer either way.
  EXPECT_NE(r.status, ilp::IlpStatus::kNodeLimit);
  if (r.has_solution) {
    EXPECT_TRUE(m.is_feasible(r.x));
  }
}

TEST(SolverStress, WideKnapsackCloses) {
  // 60 binaries, one knapsack row: B&B with the rounding heuristic must
  // close quickly (fractional LP + one branch level typically suffices).
  std::mt19937 rng(7);
  ilp::Model m;
  m.set_sense(ilp::Sense::kMaximize);
  std::vector<double> weight(60);
  std::vector<ilp::Term> row;
  double total = 0;
  for (int j = 0; j < 60; ++j) {
    const double v = 1 + static_cast<double>(rng() % 40);
    weight[static_cast<std::size_t>(j)] = 1 + static_cast<double>(rng() % 20);
    m.add_binary("x" + std::to_string(j), v);
    row.push_back({static_cast<ilp::VarIndex>(j), weight[static_cast<std::size_t>(j)]});
    total += weight[static_cast<std::size_t>(j)];
  }
  m.add_row("cap", std::move(row), ilp::RowSense::kLessEqual, total / 3);
  const ilp::IlpResult r = ilp::solve_ilp(m);
  ASSERT_EQ(r.status, ilp::IlpStatus::kOptimal);
  EXPECT_TRUE(m.is_feasible(r.x));
  EXPECT_LT(r.nodes_explored, 50000);
}

// --- resource budgets & degradation ladder --------------------------------------

// An injected deadline that trips at the second wave-boundary checkpoint
// cancels the search right after the root wave -- which solves only the root
// node at ANY thread count -- so the truncated result must be bit-identical
// across 1/2/4 threads.
TEST(ResourceGovernance, InjectedDeadlineDeterministicAcrossThreads) {
  const workloads::Workload w = workloads::gsm_encoder();
  const auto flow = select::Flow::create(w.module, w.library);
  ASSERT_TRUE(flow.ok());
  const std::int64_t rg = flow.value()->max_feasible_gain() / 2;

  std::vector<select::Selection> runs;
  for (int threads : {1, 2, 4}) {
    support::ScopedFault deadline("ilp.deadline", /*trip_at=*/2);
    select::SelectOptions opt;
    opt.ilp.threads = threads;
    runs.push_back(flow.value()->select(rg, opt));
  }
  for (const select::Selection& sel : runs) {
    EXPECT_TRUE(sel.truncated);
    EXPECT_EQ(sel.solver.termination, ilp::TerminationReason::kDeadline);
    EXPECT_LE(sel.solver.waves, 1);
    EXPECT_EQ(sel.feasible, runs[0].feasible);
    EXPECT_EQ(sel.chosen, runs[0].chosen);
    EXPECT_EQ(sel.rung, runs[0].rung);
    EXPECT_EQ(sel.greedy_fallback, runs[0].greedy_fallback);
  }
}

// A 1-byte arena cap trips at the very first checkpoint (the root node is
// already allocated), before any incumbent exists: the ladder must answer
// with the deterministic greedy baseline, identically at every thread count.
TEST(ResourceGovernance, ArenaCapFallsBackToGreedy) {
  const workloads::Workload w = workloads::gsm_encoder();
  const auto flow = select::Flow::create(w.module, w.library);
  ASSERT_TRUE(flow.ok());
  const std::int64_t rg = flow.value()->max_feasible_gain() / 4;

  std::vector<select::Selection> runs;
  for (int threads : {1, 2, 4}) {
    select::SelectOptions opt;
    opt.ilp.threads = threads;
    opt.ilp.budget.memory_limit_bytes = 1;
    runs.push_back(flow.value()->select(rg, opt));
  }
  for (const select::Selection& sel : runs) {
    EXPECT_TRUE(sel.truncated);
    EXPECT_EQ(sel.solver.termination, ilp::TerminationReason::kMemoryLimit);
    ASSERT_TRUE(sel.feasible);
    EXPECT_TRUE(sel.greedy_fallback);
    EXPECT_EQ(sel.rung, select::DegradationRung::kGreedyFallback);
    EXPECT_EQ(sel.chosen, runs[0].chosen);
    EXPECT_GE(sel.min_path_gain, rg);
  }
}

// Forcing every warm-basis refactorization to fail must route node LPs
// through the cold-start fallback without changing the answer.
TEST(ResourceGovernance, WarmRefactorFaultFallsBackToColdStart) {
  const workloads::Workload w = workloads::fig9_case();
  const auto flow = select::Flow::create(w.module, w.library);
  ASSERT_TRUE(flow.ok());
  const std::int64_t rg = flow.value()->max_feasible_gain() / 2;

  const select::Selection clean = flow.value()->select(rg);
  select::Selection faulted;
  {
    support::ScopedFault refactor("simplex.warm_refactor", /*trip_at=*/1);
    faulted = flow.value()->select(rg);
  }
  EXPECT_EQ(faulted.solver.warm_starts, 0);
  EXPECT_FALSE(faulted.truncated);
  EXPECT_EQ(faulted.rung, select::DegradationRung::kOptimal);
  ASSERT_TRUE(faulted.feasible);
  EXPECT_EQ(faulted.chosen, clean.chosen);
}

// An impossible requirement lands on the bottom rung: a structured
// infeasibility report (never an abort) from both the chip report and the
// JSON export.
TEST(ResourceGovernance, InfeasibleGainProducesStructuredReport) {
  const workloads::Workload w = workloads::fig10_case();
  const auto flow = select::Flow::create(w.module, w.library);
  ASSERT_TRUE(flow.ok());
  const std::int64_t rg = flow.value()->max_feasible_gain() * 10 + 1;

  const select::Selection sel = flow.value()->select(rg);
  EXPECT_FALSE(sel.feasible);
  EXPECT_EQ(sel.rung, select::DegradationRung::kInfeasible);
  EXPECT_EQ(sel.solver.termination, ilp::TerminationReason::kCompleted);
  EXPECT_FALSE(sel.degradation_detail.empty());

  const report::ChipReport rep = report::generate_report(*flow.value(), sel);
  EXPECT_NE(rep.text.find("NO FEASIBLE SELECTION"), std::string::npos);
  EXPECT_NE(rep.text.find("infeasible"), std::string::npos);

  const std::string json =
      select::to_json(sel, flow.value()->imp_database(), w.library, rg);
  EXPECT_NE(json.find("\"feasible\": false"), std::string::npos);
  EXPECT_NE(json.find("\"rung\": \"infeasible\""), std::string::npos);
}

// The deadline path on a larger random instance, driven by the injected
// clock instead of a razor-thin real time limit: a clock that jumps two
// seconds per observation expires a one-second budget at the very first
// wave-boundary checkpoint -- deterministically, with zero real waiting and
// zero flaky timing margin.
TEST(ResourceGovernance, DeadlineTruncatesLargeInstanceOnInjectedClock) {
  workloads::RandomWorkloadParams params;
  params.leaf_functions = 12;
  params.call_sites = 48;
  params.ips = 16;
  const workloads::Workload w = workloads::random_workload(params, /*seed=*/3);
  const auto flow = select::Flow::create(w.module, w.library);
  ASSERT_TRUE(flow.ok());
  const std::int64_t rg = flow.value()->max_feasible_gain() / 2;

  class SteppingClock final : public support::Clock {
   public:
    std::int64_t now_micros() override { return t_ += 2'000'000; }
    void sleep_micros(std::int64_t) override {}

   private:
    std::int64_t t_ = 0;
  } clock;

  select::SelectOptions opt;
  opt.ilp.budget.time_limit_seconds = 1.0;
  opt.ilp.budget.clock = &clock;
  const select::Selection sel = flow.value()->select(rg, opt);
  EXPECT_TRUE(sel.truncated);
  EXPECT_EQ(sel.solver.termination, ilp::TerminationReason::kDeadline);
  EXPECT_EQ(sel.solver.waves, 0);
}

// Budget bookkeeping surfaces in the stats even when nothing trips.
TEST(ResourceGovernance, UntruncatedRunReportsCompletion) {
  const workloads::Workload w = workloads::fig9_case();
  const auto flow = select::Flow::create(w.module, w.library);
  ASSERT_TRUE(flow.ok());
  select::SelectOptions opt;
  opt.ilp.budget.time_limit_seconds = 3600.0;
  opt.ilp.budget.memory_limit_bytes = std::size_t{1} << 30;
  const select::Selection sel =
      flow.value()->select(flow.value()->max_feasible_gain() / 2, opt);
  ASSERT_TRUE(sel.feasible);
  EXPECT_FALSE(sel.truncated);
  EXPECT_EQ(sel.rung, select::DegradationRung::kOptimal);
  EXPECT_EQ(sel.solver.termination, ilp::TerminationReason::kCompleted);
  EXPECT_GT(sel.solver.peak_arena_bytes, 0u);
  EXPECT_GT(sel.solver.waves, 0);
}

// --- fallible construction ------------------------------------------------------

TEST(ResourceGovernance, FlowCreateRejectsUnverifiableModule) {
  ir::Module bad("no_entry");  // no functions, no entry point
  iplib::IpLibrary lib;
  const auto flow = select::Flow::create(bad, lib);
  ASSERT_FALSE(flow.ok());
  EXPECT_FALSE(flow.error().diagnostics.empty());
  EXPECT_NE(flow.error().render().find("verification"), std::string::npos);
}

TEST(SolverStress, AlternatingSignsObjective) {
  ilp::Model m;
  for (int j = 0; j < 12; ++j) {
    m.add_binary("x" + std::to_string(j), (j % 2 ? 1.0 : -1.0) * (j + 1));
  }
  // Minimize: picks all negative-coefficient (even-index) variables.
  const ilp::IlpResult r = ilp::solve_ilp(m);
  ASSERT_EQ(r.status, ilp::IlpStatus::kOptimal);
  double expected = 0;
  for (int j = 0; j < 12; j += 2) expected -= (j + 1);
  EXPECT_NEAR(r.objective, expected, 1e-9);
}

}  // namespace
}  // namespace partita

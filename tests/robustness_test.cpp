// Robustness: random-input fuzzing of the two text frontends and the IP
// loader (must diagnose, never crash), plus solver stress on degenerate and
// larger random instances.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "frontend/parser.hpp"
#include "ilp/branch_bound.hpp"
#include "iplib/loader.hpp"
#include "minic/mc_codegen.hpp"

namespace partita {
namespace {

// --- fuzzing -------------------------------------------------------------------

std::string random_token_soup(std::mt19937& rng, bool kl_flavored) {
  static const char* kKlWords[] = {"module", "func",  "seg",   "call", "if",
                                   "loop",   "reads", "writes", "prob", "scall",
                                   "sw_cycles", "entry", "else"};
  static const char* kMcWords[] = {"int",  "void", "for",     "if",      "else",
                                   "in",   "out",  "inout",   "__scall", "__cycles",
                                   "__prob"};
  static const char* kPunct[] = {"{", "}", "(", ")", "[", "]", ";", ",", "=",
                                 "+", "-", "*", "<", ">", "<<", "!=", "|"};
  std::string out;
  const int n = 5 + static_cast<int>(rng() % 120);
  for (int i = 0; i < n; ++i) {
    switch (rng() % 4) {
      case 0:
        out += kl_flavored ? kKlWords[rng() % std::size(kKlWords)]
                           : kMcWords[rng() % std::size(kMcWords)];
        break;
      case 1:
        out += kPunct[rng() % std::size(kPunct)];
        break;
      case 2:
        out += "v" + std::to_string(rng() % 9);
        break;
      case 3:
        out += std::to_string(rng() % 10000);
        break;
    }
    out += (rng() % 6 == 0) ? "\n" : " ";
  }
  return out;
}

class FuzzFrontends : public ::testing::TestWithParam<int> {};

TEST_P(FuzzFrontends, KlParserNeverCrashes) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  for (int i = 0; i < 50; ++i) {
    support::DiagnosticEngine diags;
    auto m = frontend::parse_module(random_token_soup(rng, true), diags);
    if (!m) {
      EXPECT_TRUE(diags.has_errors());  // rejection must be explained
    }
  }
}

TEST_P(FuzzFrontends, MiniCCompilerNeverCrashes) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) + 9000);
  for (int i = 0; i < 50; ++i) {
    support::DiagnosticEngine diags;
    auto m = minic::mc_compile_source(random_token_soup(rng, false), "fuzz", diags);
    if (!m) {
      EXPECT_TRUE(diags.has_errors());
    }
  }
}

TEST_P(FuzzFrontends, IpLoaderNeverCrashes) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) + 5000);
  static const char* kWords[] = {"ip",       "area",    "ports", "rate", "in",
                                 "out",      "latency", "fn",    "cycles", "{",
                                 "}",        "pipelined", "protocol", "sync"};
  for (int i = 0; i < 50; ++i) {
    std::string soup;
    const int n = 5 + static_cast<int>(rng() % 60);
    for (int k = 0; k < n; ++k) {
      soup += (rng() % 3 == 0) ? std::to_string(rng() % 100)
                               : kWords[rng() % std::size(kWords)];
      soup += (rng() % 5 == 0) ? "\n" : " ";
    }
    support::DiagnosticEngine diags;
    auto lib = iplib::load_library(soup, diags);
    if (!lib) {
      EXPECT_TRUE(diags.has_errors());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzFrontends, ::testing::Range(0, 6));

// --- solver stress --------------------------------------------------------------

TEST(SolverStress, HighlyDegenerateEqualitySystem) {
  // Many redundant equalities around one feasible point: phase-1 heavy,
  // degenerate pivots; must still terminate at the optimum.
  ilp::Model m;
  m.set_sense(ilp::Sense::kMaximize);
  std::vector<ilp::VarIndex> x;
  for (int j = 0; j < 10; ++j) x.push_back(m.add_binary("x" + std::to_string(j), j + 1));
  for (int r = 0; r < 8; ++r) {
    std::vector<ilp::Term> terms;
    for (int j = r; j < 10; j += 2) terms.push_back({x[static_cast<std::size_t>(j)], 1.0});
    m.add_row("eq" + std::to_string(r), std::move(terms), ilp::RowSense::kEqual,
              r % 2 ? 2.0 : 1.0);
  }
  const ilp::IlpResult r = ilp::solve_ilp(m);
  // May be infeasible depending on parity structure; it must terminate with
  // a definite answer either way.
  EXPECT_NE(r.status, ilp::IlpStatus::kNodeLimit);
  if (r.has_solution) {
    EXPECT_TRUE(m.is_feasible(r.x));
  }
}

TEST(SolverStress, WideKnapsackCloses) {
  // 60 binaries, one knapsack row: B&B with the rounding heuristic must
  // close quickly (fractional LP + one branch level typically suffices).
  std::mt19937 rng(7);
  ilp::Model m;
  m.set_sense(ilp::Sense::kMaximize);
  std::vector<double> weight(60);
  std::vector<ilp::Term> row;
  double total = 0;
  for (int j = 0; j < 60; ++j) {
    const double v = 1 + static_cast<double>(rng() % 40);
    weight[static_cast<std::size_t>(j)] = 1 + static_cast<double>(rng() % 20);
    m.add_binary("x" + std::to_string(j), v);
    row.push_back({static_cast<ilp::VarIndex>(j), weight[static_cast<std::size_t>(j)]});
    total += weight[static_cast<std::size_t>(j)];
  }
  m.add_row("cap", std::move(row), ilp::RowSense::kLessEqual, total / 3);
  const ilp::IlpResult r = ilp::solve_ilp(m);
  ASSERT_EQ(r.status, ilp::IlpStatus::kOptimal);
  EXPECT_TRUE(m.is_feasible(r.x));
  EXPECT_LT(r.nodes_explored, 50000);
}

TEST(SolverStress, AlternatingSignsObjective) {
  ilp::Model m;
  for (int j = 0; j < 12; ++j) {
    m.add_binary("x" + std::to_string(j), (j % 2 ? 1.0 : -1.0) * (j + 1));
  }
  // Minimize: picks all negative-coefficient (even-index) variables.
  const ilp::IlpResult r = ilp::solve_ilp(m);
  ASSERT_EQ(r.status, ilp::IlpStatus::kOptimal);
  double expected = 0;
  for (int j = 0; j < 12; j += 2) expected -= (j + 1);
  EXPECT_NEAR(r.objective, expected, 1e-9);
}

}  // namespace
}  // namespace partita

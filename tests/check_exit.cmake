# Exit-code matrix helper: runs ${PARTITA_BIN} ${ARGS} and fails unless the
# exit code is exactly ${EXPECTED}. The comparison is STREQUAL on purpose --
# a crash or signal yields a non-numeric RESULT_VARIABLE ("Segmentation
# fault") that must never satisfy a numeric expectation. FAULT, when set,
# arms the named fault-injection site via PARTITA_FAULT (see
# support/fault_injection.hpp).
if(FAULT)
  set(ENV{PARTITA_FAULT} "${FAULT}")
endif()
execute_process(COMMAND ${PARTITA_BIN} ${ARGS}
  RESULT_VARIABLE rc
  OUTPUT_QUIET ERROR_QUIET)
if(NOT rc STREQUAL "${EXPECTED}")
  message(FATAL_ERROR
    "expected exit ${EXPECTED}, got '${rc}' for: ${PARTITA_BIN} ${ARGS}")
endif()

// The parallel branch & bound promises a thread-count-independent answer
// (wave-synchronous search + canonical lex tie-breaking) and the warm-start
// path promises the same optimum as a cold search. Both claims are pinned
// here on the seed workloads and on random instances.
#include <gtest/gtest.h>

#include <cstdint>

#include "select/flow.hpp"
#include "workloads/random_workload.hpp"
#include "workloads/workloads.hpp"

namespace partita::select {
namespace {

Selection solve_with(const Flow& flow, std::int64_t rg, int threads) {
  SelectOptions opt;
  opt.ilp.threads = threads;
  return flow.select(rg, opt);
}

TEST(SolverDeterminism, ThreadCountInvariant) {
  for (std::uint64_t seed : {7u, 21u, 1234u}) {
    workloads::Workload w = workloads::random_workload({}, seed);
    Flow flow(w.module, w.library);
    const std::int64_t rg = flow.max_feasible_gain() / 2;
    const Selection base = solve_with(flow, rg, 1);
    for (int threads : {2, 4}) {
      const Selection sel = solve_with(flow, rg, threads);
      EXPECT_EQ(base.feasible, sel.feasible) << "seed=" << seed << " threads=" << threads;
      EXPECT_EQ(base.chosen, sel.chosen) << "seed=" << seed << " threads=" << threads;
      EXPECT_DOUBLE_EQ(base.total_area(), sel.total_area());
      EXPECT_EQ(sel.solver.threads, threads);
    }
  }
}

TEST(SolverDeterminism, RepeatedRunsIdentical) {
  workloads::Workload w = workloads::random_workload({}, 99);
  Flow flow(w.module, w.library);
  const std::int64_t rg = flow.max_feasible_gain() / 2;
  const Selection first = solve_with(flow, rg, 2);
  for (int run = 0; run < 3; ++run) {
    const Selection again = solve_with(flow, rg, 2);
    EXPECT_EQ(first.chosen, again.chosen) << "run=" << run;
    EXPECT_EQ(first.solver.nodes, again.solver.nodes) << "run=" << run;
    EXPECT_EQ(first.solver.lp_iterations, again.solver.lp_iterations) << "run=" << run;
  }
}

TEST(SolverDeterminism, WarmAndColdAgreeOnSeedWorkloads) {
  workloads::Workload (*factories[])() = {
      workloads::gsm_encoder, workloads::gsm_decoder, workloads::jpeg_encoder,
      workloads::fig9_case,   workloads::fig10_case,  workloads::adpcm_codec,
  };
  for (auto* factory : factories) {
    workloads::Workload w = factory();
    Flow flow(w.module, w.library);
    const std::int64_t rg = flow.max_feasible_gain() / 2;

    SelectOptions warm;  // defaults: presolve + warm starts on
    SelectOptions cold;
    cold.ilp.presolve = false;
    cold.ilp.warm_start = false;

    const Selection sw = flow.select(rg, warm);
    const Selection sc = flow.select(rg, cold);
    EXPECT_EQ(sw.feasible, sc.feasible) << w.name;
    EXPECT_EQ(sw.chosen, sc.chosen) << w.name;
    EXPECT_DOUBLE_EQ(sw.total_area(), sc.total_area()) << w.name;
    // The cold run never warm-starts; the warm run must report its reuse.
    EXPECT_EQ(sc.solver.warm_starts, 0) << w.name;
    if (sw.solver.nodes > 1) {
      EXPECT_GT(sw.solver.warm_starts, 0) << w.name;
    }
  }
}

TEST(SolverDeterminism, NodeLimitSetsGapAndKeepsSelectionUsable) {
  workloads::Workload w = workloads::random_workload({}, 7);
  Flow flow(w.module, w.library);
  const std::int64_t rg = flow.max_feasible_gain() / 2;

  SelectOptions opt;
  opt.ilp.max_nodes = 1;  // force truncation on any nontrivial search
  const Selection sel = flow.select(rg, opt);

  const Selection full = flow.select(rg);
  if (full.solver.nodes > 1) {
    EXPECT_TRUE(sel.truncated);
    if (sel.feasible) {
      // The greedy fallback (or the partial incumbent) stays usable and the
      // remaining optimality gap is reported.
      EXPECT_GE(sel.optimality_gap, 0.0);
      EXPECT_GE(sel.total_area(), full.total_area());
    }
  } else {
    EXPECT_FALSE(sel.truncated);  // solved at the root within the limit
  }
}

}  // namespace
}  // namespace partita::select

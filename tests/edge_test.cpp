// Edge cases and negative paths across the pipeline: empty programs, useless
// libraries, trivial ILPs, determinism.
#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "ilp/branch_bound.hpp"
#include "iplib/loader.hpp"
#include "select/flow.hpp"
#include "workloads/workloads.hpp"

namespace partita {
namespace {

workloads::Workload make(std::string_view kl, std::string_view lib) {
  support::DiagnosticEngine diags;
  auto m = frontend::parse_module(kl, diags);
  EXPECT_TRUE(m.has_value()) << diags.render_all();
  auto l = iplib::load_library(lib, diags);
  EXPECT_TRUE(l.has_value()) << diags.render_all();
  return {"edge", std::move(*m), std::move(*l)};
}

constexpr std::string_view kUselessLib = R"(
ip NOPE {
  area 1
  fn unrelated cycles 10 in 2 out 2
}
)";

TEST(Edge, NoScallsMeansNoGain) {
  workloads::Workload w = make(R"(
module t;
func helper sw_cycles 500;
func main { seg a 100 writes(x); call helper reads(x); }
)",
                               kUselessLib);
  select::Flow flow(w.module, w.library);
  EXPECT_TRUE(flow.scalls().empty());
  EXPECT_TRUE(flow.imp_database().imps().empty());
  EXPECT_EQ(flow.max_feasible_gain(), 0);
  EXPECT_TRUE(flow.select(0).feasible);
  EXPECT_FALSE(flow.select(1).feasible);
  EXPECT_FALSE(flow.greedy(1).feasible);
}

TEST(Edge, EmptyMainBody) {
  workloads::Workload w = make("module t; func main { }", kUselessLib);
  select::Flow flow(w.module, w.library);
  EXPECT_EQ(flow.profile().total_cycles, 0);
  ASSERT_EQ(flow.paths().size(), 1u);
  EXPECT_TRUE(flow.paths()[0].nodes.empty());
  EXPECT_TRUE(flow.select(0).feasible);
}

TEST(Edge, ScallWithoutMatchingIp) {
  workloads::Workload w = make(R"(
module t;
func fir scall sw_cycles 1000;
func main { call fir; }
)",
                               kUselessLib);
  select::Flow flow(w.module, w.library);
  EXPECT_TRUE(flow.scalls().empty());  // the library cannot execute fir
  EXPECT_FALSE(flow.select(100).feasible);
}

TEST(Edge, IpSlowerThanSoftwareEverywhereIsUseless) {
  // No buffer material to overlap: every IMP has non-positive gain.
  workloads::Workload w = make(R"(
module t;
func fir scall sw_cycles 100;
func main { call fir writes(x); seg post 10 reads(x); }
)",
                               R"(
ip SLOW {
  area 3
  ports in 2 out 2
  rate in 4 out 4
  latency 4
  pipelined
  protocol sync
  fn fir cycles 5000 in 8 out 8
}
)");
  select::Flow flow(w.module, w.library);
  EXPECT_TRUE(flow.imp_database().imps().empty());
  EXPECT_EQ(flow.max_feasible_gain(), 0);
}

TEST(Edge, DeterministicSelection) {
  for (int run = 0; run < 2; ++run) {
    static std::string first;
    workloads::Workload w = workloads::gsm_encoder();
    select::Flow flow(w.module, w.library);
    const select::Selection sel = flow.select(flow.max_feasible_gain() / 2);
    ASSERT_TRUE(sel.feasible);
    const std::string desc = sel.describe(flow.imp_database(), w.library);
    if (run == 0) first = desc;
    else EXPECT_EQ(desc, first);
  }
}

// --- ILP edge cases -------------------------------------------------------------

TEST(Edge, IlpWithNoRows) {
  ilp::Model m;
  m.set_sense(ilp::Sense::kMaximize);
  m.add_binary("a", 3.0);
  m.add_binary("b", -2.0);
  const ilp::IlpResult r = ilp::solve_ilp(m);
  ASSERT_EQ(r.status, ilp::IlpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-9);  // take a, skip b
}

TEST(Edge, IlpAllVariablesFixedByBounds) {
  ilp::Model m;
  const ilp::VarIndex a = m.add_binary("a", 5.0);
  m.var(a).upper = 0.0;  // forced off
  m.add_row("r", {{a, 1.0}}, ilp::RowSense::kLessEqual, 1.0);
  const ilp::IlpResult r = ilp::solve_ilp(m);
  ASSERT_EQ(r.status, ilp::IlpStatus::kOptimal);
  EXPECT_NEAR(r.x[a], 0.0, 1e-9);
}

TEST(Edge, ContinuousOnlyIlp) {
  // No binaries: branch & bound must terminate at the root relaxation.
  ilp::Model m;
  m.set_sense(ilp::Sense::kMaximize);
  const ilp::VarIndex x = m.add_continuous("x", 0, 10, 2.0);
  m.add_row("r", {{x, 1.0}}, ilp::RowSense::kLessEqual, 4.0);
  const ilp::IlpResult r = ilp::solve_ilp(m);
  ASSERT_EQ(r.status, ilp::IlpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 8.0, 1e-6);
  EXPECT_LE(r.nodes_explored, 2);
}

TEST(Edge, ZeroCoefficientRowsHarmless) {
  ilp::Model m;
  const ilp::VarIndex a = m.add_binary("a", 1.0);
  m.add_row("zero", {{a, 0.0}}, ilp::RowSense::kLessEqual, 0.0);
  m.set_sense(ilp::Sense::kMaximize);
  const ilp::IlpResult r = ilp::solve_ilp(m);
  ASSERT_EQ(r.status, ilp::IlpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, 1e-9);
}

TEST(Edge, EqualityWithZeroRhs) {
  ilp::Model m;
  const ilp::VarIndex a = m.add_binary("a", 1.0);
  const ilp::VarIndex b = m.add_binary("b", 1.0);
  m.add_row("balance", {{a, 1.0}, {b, -1.0}}, ilp::RowSense::kEqual, 0.0);
  m.set_sense(ilp::Sense::kMaximize);
  const ilp::IlpResult r = ilp::solve_ilp(m);
  ASSERT_EQ(r.status, ilp::IlpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-9);  // both on together
}

// --- interface edge cases ----------------------------------------------------------

TEST(Edge, ZeroOutputIpStillWorks) {
  // An IP that only consumes data (e.g. a detector raising a flag register).
  workloads::Workload w = make(R"(
module t;
func detect scall sw_cycles 4000;
func main { call detect writes(flag); seg post 50 reads(flag); }
)",
                               R"(
ip DET {
  area 4
  ports in 2 out 1
  rate in 4 out 4
  latency 8
  pipelined
  protocol sync
  fn detect cycles 800 in 64 out 1
}
)");
  select::Flow flow(w.module, w.library);
  ASSERT_FALSE(flow.imp_database().imps().empty());
  EXPECT_TRUE(flow.select(flow.max_feasible_gain()).feasible);
}

}  // namespace
}  // namespace partita

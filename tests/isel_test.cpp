// Tests for s-call discovery and IMP enumeration, including hierarchy
// flattening and parallel-code variants.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "cdfg/paths.hpp"
#include "frontend/parser.hpp"
#include "iplib/loader.hpp"
#include "isel/enumerate.hpp"
#include "isel/scall.hpp"
#include "profile/profile.hpp"
#include "workloads/workloads.hpp"

namespace partita::isel {
namespace {

struct Fixture {
  ir::Module module;
  iplib::IpLibrary library;
  profile::ModuleProfile prof;
  std::unique_ptr<cdfg::Cdfg> g;
  std::vector<cdfg::ExecPath> paths;
  std::vector<SCall> scalls;
  std::unique_ptr<ImpDatabase> db;

  Fixture(std::string_view kl, std::string_view lib_text, EnumerateOptions opts = {}) {
    support::DiagnosticEngine diags;
    auto m = frontend::parse_module(kl, diags);
    EXPECT_TRUE(m.has_value()) << diags.render_all();
    module = std::move(*m);
    auto lib = iplib::load_library(lib_text, diags);
    EXPECT_TRUE(lib.has_value()) << diags.render_all();
    library = std::move(*lib);
    prof = profile::profile_module(module);
    g = std::make_unique<cdfg::Cdfg>(module, module.function(module.entry()));
    g->annotate_call_cycles([this](ir::FuncId f) { return prof.cycles_of(f); });
    paths = cdfg::enumerate_paths(*g);
    scalls = find_scalls(module, prof, library, *g);
    db = std::make_unique<ImpDatabase>(module, prof, library, *g, paths, scalls, opts);
  }
};

constexpr std::string_view kTwoCallsKl = R"(
module t;
func fir scall sw_cycles 10000;
func other sw_cycles 500;
func main {
  seg pre 100 writes(a);
  call fir reads(a) writes(x);
  call other reads(a) writes(h);
  seg post 50 reads(x, h);
}
)";

constexpr std::string_view kFirLib = R"(
ip FIR_IP {
  area 8
  ports in 2 out 2
  rate in 4 out 4
  latency 16
  pipelined
  protocol sync
  fn fir cycles 3000 in 64 out 64
}
)";

TEST(SCallDiscovery, OnlyIpMappableCallsCount) {
  Fixture f(kTwoCallsKl, kFirLib);
  ASSERT_EQ(f.scalls.size(), 1u);
  EXPECT_EQ(f.scalls[0].callee_name, "fir");
  EXPECT_EQ(f.scalls[0].t_sw, 10000);
  EXPECT_DOUBLE_EQ(f.scalls[0].frequency, 1.0);
  EXPECT_NE(f.scalls[0].node, cdfg::kInvalidNode);
}

TEST(SCallDiscovery, ScallWithoutLibrarySupportIsDropped) {
  Fixture f(kTwoCallsKl, R"(
ip OTHER_IP {
  area 1
  fn somethingelse cycles 1 in 1 out 1
}
)");
  EXPECT_TRUE(f.scalls.empty());
}

TEST(SCallDiscovery, FrequencyFromLoops) {
  Fixture f(R"(
module t;
func fir scall sw_cycles 1000;
func main { loop 6 { call fir; } }
)",
            kFirLib);
  ASSERT_EQ(f.scalls.size(), 1u);
  EXPECT_DOUBLE_EQ(f.scalls[0].frequency, 6.0);
}

TEST(Enumerate, GeneratesPositiveGainImpsOnly) {
  Fixture f(kTwoCallsKl, kFirLib);
  ASSERT_FALSE(f.db->imps().empty());
  for (const Imp& imp : f.db->imps()) {
    EXPECT_GT(imp.gain_per_exec, 0);
    EXPECT_GT(imp.gain, 0);
    EXPECT_GE(imp.interface_area, 0.0);
  }
}

TEST(Enumerate, SkipsInapplicableInterfaces) {
  // 4-port IP: type 0 and type 2 must not appear.
  Fixture f(kTwoCallsKl, R"(
ip WIDE {
  area 8
  ports in 4 out 4
  rate in 2 out 2
  latency 8
  pipelined
  protocol sync
  fn fir cycles 3000 in 64 out 64
}
)");
  ASSERT_FALSE(f.db->imps().empty());
  for (const Imp& imp : f.db->imps()) {
    EXPECT_TRUE(iface::is_buffered(imp.iface_type)) << imp.describe(f.library);
  }
}

TEST(Enumerate, RespectsAllowedTypesOption) {
  EnumerateOptions opts;
  opts.allowed_types = {iface::InterfaceType::kType0};
  Fixture f(kTwoCallsKl, kFirLib, opts);
  for (const Imp& imp : f.db->imps()) {
    EXPECT_EQ(imp.iface_type, iface::InterfaceType::kType0);
  }
}

TEST(Enumerate, ParallelCodeVariantOnBufferedTypes) {
  // `other` is not an s-call (no IP), so it joins the PC freely.
  Fixture f(kTwoCallsKl, kFirLib);
  bool found_pc = false;
  for (const Imp& imp : f.db->imps()) {
    if (imp.pc_use == PcUse::kPlain) {
      EXPECT_TRUE(iface::is_buffered(imp.iface_type));
      EXPECT_EQ(imp.parallel_cycles, 500);
      found_pc = true;
    }
  }
  EXPECT_TRUE(found_pc);
}

TEST(Enumerate, Problem2PrefixVariants) {
  // The IP is *slower* than software (the paper: "a slower IP with a
  // parallel code may be better than a faster IP without a parallel code"):
  // consuming a second s-call keeps paying because T_IP exceeds one body.
  Fixture f(R"(
module t;
func fir scall sw_cycles 10000;
func main {
  call fir writes(x);
  call fir writes(y);
  call fir writes(z);
  seg post 20 reads(x, y, z);
}
)",
            R"(
ip SLOW_FIR {
  area 8
  ports in 2 out 2
  rate in 4 out 4
  latency 16
  pipelined
  protocol sync
  fn fir cycles 15000 in 64 out 64
}
)");
  // Variants consuming one and two s-calls must both exist for the first
  // call.
  std::set<std::size_t> consumed_sizes;
  for (const Imp& imp : f.db->imps()) {
    if (imp.scall == ir::CallSiteId{0} && imp.pc_use == PcUse::kWithScallSw) {
      consumed_sizes.insert(imp.pc_consumed_scalls.size());
    }
  }
  EXPECT_TRUE(consumed_sizes.count(1));
  EXPECT_TRUE(consumed_sizes.count(2));
}

TEST(Enumerate, Problem1DisablesScallConsumption) {
  EnumerateOptions opts;
  opts.problem2 = false;
  Fixture f(R"(
module t;
func fir scall sw_cycles 10000;
func main {
  call fir writes(x);
  call fir writes(y);
  seg post 20 reads(x, y);
}
)",
            kFirLib, opts);
  for (const Imp& imp : f.db->imps()) {
    EXPECT_NE(imp.pc_use, PcUse::kWithScallSw);
  }
}

TEST(Enumerate, DominancePruningKeepsBestPerIp) {
  Fixture f(kTwoCallsKl, kFirLib);
  // For a 2-port rate-4 IP, type 0 has the same gain as type 2 with less
  // area: type 2's no-PC IMP must have been pruned.
  for (const Imp& imp : f.db->imps()) {
    if (imp.pc_use == PcUse::kNone) {
      EXPECT_NE(imp.iface_type, iface::InterfaceType::kType2) << imp.describe(f.library);
    }
  }
}

// --- hierarchy / IMP flattening -------------------------------------------------

constexpr std::string_view kHierKl = R"(
module t;
func cmul scall sw_cycles 40;
func fft scall {
  loop 32 { call cmul; }
  seg glue 720;
}
func main {
  loop 10 { call fft reads(sig) writes(spec); }
  seg post 100 reads(spec);
}
)";

constexpr std::string_view kHierLib = R"(
ip FFT_IP {
  area 12
  ports in 2 out 2
  rate in 4 out 4
  latency 16
  pipelined
  protocol sync
  fn fft cycles 400 in 64 out 64
}
ip CMUL_IP {
  area 3
  ports in 2 out 2
  rate in 4 out 4
  latency 2
  pipelined
  protocol sync
  fn cmul cycles 6 in 4 out 2
}
)";

TEST(Flatten, GeneratesLiftedImps) {
  Fixture f(kHierKl, kHierLib);
  ASSERT_EQ(f.scalls.size(), 1u);  // only the fft site is top-level
  EXPECT_EQ(f.scalls[0].t_sw, 32 * 40 + 720);

  bool direct = false, flattened = false;
  for (const Imp& imp : f.db->imps()) {
    if (imp.flattened) {
      flattened = true;
      EXPECT_EQ(imp.ip_function->function, "cmul");
      EXPECT_DOUBLE_EQ(imp.inner_calls_per_exec, 32.0);
      EXPECT_EQ(imp.flatten_depth, 1);
    } else {
      direct = true;
      EXPECT_EQ(imp.ip_function->function, "fft");
    }
  }
  EXPECT_TRUE(direct);
  EXPECT_TRUE(flattened);
}

TEST(Flatten, GainScalesWithInnerCallCount) {
  Fixture f(kHierKl, kHierLib);
  for (const Imp& imp : f.db->imps()) {
    if (!imp.flattened) continue;
    // cmul: T_SW 40, IP total = max(6, t_if); t_if = 1 + 4 * (2 batches + 1
    // fill) = small; saved per cmul * 32 inner calls.
    const std::int64_t per_cmul = imp.gain_per_exec / 32;
    EXPECT_GT(per_cmul, 20);
    EXPECT_LT(per_cmul, 40);
    // Top-level frequency 10 multiplies into the total gain.
    EXPECT_EQ(imp.gain, imp.gain_per_exec * 10);
  }
}

TEST(Flatten, JpegLadderHasAllLevels) {
  workloads::Workload w = workloads::jpeg_encoder();
  profile::ModuleProfile prof = profile::profile_module(w.module);
  cdfg::Cdfg g(w.module, w.module.function(w.module.entry()));
  g.annotate_call_cycles([&](ir::FuncId f) { return prof.cycles_of(f); });
  auto paths = cdfg::enumerate_paths(g);
  auto scalls = find_scalls(w.module, prof, w.library, g);
  ImpDatabase db(w.module, prof, w.library, g, paths, scalls, {});

  // The dct2d s-call must offer IMPs at depth 0 (2D-DCT IP), 1 (1D-DCT),
  // 2 (FFT) and 3 (C-MUL).
  std::set<int> depths;
  for (const Imp& imp : db.imps()) {
    const SCall* sc = db.scall_of(imp.scall);
    ASSERT_NE(sc, nullptr);
    if (sc->callee_name == "dct2d") depths.insert(imp.flatten_depth);
  }
  EXPECT_TRUE(depths.count(0));
  EXPECT_TRUE(depths.count(1));
  EXPECT_TRUE(depths.count(2));
  EXPECT_TRUE(depths.count(3));
}

TEST(Enumerate, DumpMentionsEverySCall) {
  Fixture f(kHierKl, kHierLib);
  const std::string dump = f.db->dump(f.library);
  EXPECT_NE(dump.find("fft"), std::string::npos);
  EXPECT_NE(dump.find("IMP"), std::string::npos);
}

}  // namespace
}  // namespace partita::isel

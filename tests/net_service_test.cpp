// End-to-end tests of the socket front-end (net/server.hpp + net/client.hpp)
// against a live SolveService on a loopback TCP port.
//
// The headline test is the differential one: for every built-in workload and
// every scheduling policy, the Selection obtained through the socket must be
// bit-identical (WireSelection::key(), doubles via %.17g) to the in-process
// service's and to a one-shot select::Flow with the same options. The
// transport and the scheduler may reorder *when* work runs, never *what* it
// computes.
//
// The malformed-peer tests speak raw bytes on a hand-rolled socket: a framing
// error must kill only that connection (after one error frame); a JSON error
// must not even do that. The server survives both.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "select/flow.hpp"
#include "service/solve_service.hpp"
#include "workloads/workloads.hpp"

namespace partita::net {
namespace {

constexpr std::int64_t kGain = 1000;

const std::vector<std::string>& builtin_names() {
  static const std::vector<std::string> names = {
      "gsm_encoder", "gsm_decoder", "jpeg_encoder", "fig9", "fig10", "adpcm_codec"};
  return names;
}

workloads::Workload builtin(const std::string& name) {
  service::SolveRequest req;
  WireRequest wire;
  wire.workload = name;
  std::string err;
  EXPECT_TRUE(resolve_workload(wire, &req, &err)) << err;
  return std::move(req.workload);
}

/// One service + wire server on an ephemeral loopback port.
struct ServerFixture {
  explicit ServerFixture(service::ServiceConfig cfg = {}) : svc(std::move(cfg)), server(svc) {
    std::string err;
    EXPECT_TRUE(server.start(&err)) << err;
  }
  ~ServerFixture() {
    // Drain before stop so in-flight `wait` verbs answer and join cleanly.
    svc.drain();
    server.stop();
  }

  service::SolveService svc;
  WireServer server;
};

WireRequest submit_builtin(const std::string& name) {
  WireRequest req;
  req.verb = "submit";
  req.workload = name;
  req.required_gain = kGain;
  return req;
}

/// submit + wait over the socket; returns the terminal WireResult.
WireResult solve_over_wire(WireClient& client, const std::string& workload) {
  std::string err;
  const auto submitted = client.call(submit_builtin(workload), &err);
  EXPECT_TRUE(submitted.has_value()) << err;
  EXPECT_TRUE(submitted->ok) << submitted->error.message;
  EXPECT_EQ(submitted->state, "queued") << submitted->reject_reason;
  EXPECT_EQ(submitted->tickets.size(), 1u);

  WireRequest wait;
  wait.verb = "wait";
  wait.ticket = submitted->tickets.front();
  const auto done = client.call(wait, &err);
  EXPECT_TRUE(done.has_value()) << err;
  EXPECT_TRUE(done->result.has_value());
  return *done->result;
}

// --- differential: socket == in-process == one-shot, every policy -----------

TEST(Differential, BitIdenticalAcrossTransportsAndPolicies) {
  // Reference leg: one-shot Flow::select per builtin.
  std::map<std::string, std::string> reference;
  for (const std::string& name : builtin_names()) {
    const workloads::Workload w = builtin(name);
    const select::Flow flow(w.module, w.library);
    reference[name] = to_wire(flow.select(kGain)).key();
  }

  // In-process service leg (default fifo).
  {
    service::ServiceConfig cfg;
    cfg.workers = 2;
    service::SolveService svc(cfg);
    for (const std::string& name : builtin_names()) {
      service::SolveRequest req;
      req.label = name;
      req.workload = builtin(name);
      req.required_gain = kGain;
      const service::SubmitOutcome out = svc.submit(std::move(req));
      ASSERT_TRUE(out.admitted()) << name << ": " << out.reject_reason;
      const service::SolveResponse resp = svc.wait(out.ticket());
      ASSERT_EQ(resp.state, service::RequestState::kCompleted) << name;
      EXPECT_EQ(to_wire(resp.selection).key(), reference[name])
          << name << ": in-process service diverged from one-shot Flow";
    }
  }

  // Socket leg, once per scheduling policy.
  for (const std::string& policy : service::SchedulerPolicy::known_policies()) {
    service::ServiceConfig cfg;
    cfg.workers = 2;
    cfg.policy = policy;
    ServerFixture fx(cfg);
    WireClient client;
    std::string err;
    ASSERT_TRUE(client.connect(fx.server.endpoint(), &err)) << err;
    for (const std::string& name : builtin_names()) {
      const WireResult r = solve_over_wire(client, name);
      ASSERT_EQ(r.state, "completed") << policy << "/" << name << ": " << r.error.message;
      ASSERT_TRUE(r.selection.has_value());
      EXPECT_EQ(r.selection->key(), reference[name])
          << policy << "/" << name << ": socket result diverged from one-shot Flow";
    }
  }
}

// --- cancel over the wire ----------------------------------------------------

TEST(WireCancel, QueuedRequestCancelsDeterministically) {
  service::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.start_paused = true;  // nothing runs: the cancel races nothing
  ServerFixture fx(cfg);
  WireClient client;
  std::string err;
  ASSERT_TRUE(client.connect(fx.server.endpoint(), &err)) << err;

  const auto submitted = client.call(submit_builtin("fig9"), &err);
  ASSERT_TRUE(submitted.has_value()) << err;
  ASSERT_EQ(submitted->state, "queued");
  const std::uint64_t ticket = submitted->tickets.front();

  WireRequest cancel;
  cancel.verb = "cancel";
  cancel.ticket = ticket;
  const auto cancelled = client.call(cancel, &err);
  ASSERT_TRUE(cancelled.has_value()) << err;
  EXPECT_TRUE(cancelled->cancelled);

  WireRequest wait;
  wait.verb = "wait";
  wait.ticket = ticket;
  const auto done = client.call(wait, &err);
  ASSERT_TRUE(done.has_value()) << err;
  ASSERT_TRUE(done->result.has_value());
  EXPECT_EQ(done->result->state, "cancelled");

  // A second cancel of a terminal ticket is a no-op, not an error.
  const auto again = client.call(cancel, &err);
  ASSERT_TRUE(again.has_value()) << err;
  EXPECT_FALSE(again->cancelled);
  fx.svc.resume();
}

// --- tenant quota over the wire ----------------------------------------------

TEST(TenantQuota, EnforcedOverTheWireWithRetryAfter) {
  service::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_live_per_tenant = 1;
  cfg.start_paused = true;
  ServerFixture fx(cfg);
  WireClient client;
  std::string err;
  ASSERT_TRUE(client.connect(fx.server.endpoint(), &err)) << err;

  WireRequest first = submit_builtin("fig9");
  first.tenant = "alice";
  const auto ok1 = client.call(first, &err);
  ASSERT_TRUE(ok1.has_value()) << err;
  EXPECT_EQ(ok1->state, "queued");

  WireRequest second = submit_builtin("fig10");
  second.tenant = "alice";
  const auto over = client.call(second, &err);
  ASSERT_TRUE(over.has_value()) << err;
  EXPECT_EQ(over->state, "rejected");
  EXPECT_GT(over->retry_after_seconds, 0.0);
  EXPECT_NE(over->reject_reason.find("tenant"), std::string::npos);

  WireRequest other = submit_builtin("fig10");
  other.tenant = "bob";
  const auto ok2 = client.call(other, &err);
  ASSERT_TRUE(ok2.has_value()) << err;
  EXPECT_EQ(ok2->state, "queued") << "quota must not spill across tenants";

  fx.svc.resume();
  WireRequest wait;
  wait.verb = "wait";
  wait.ticket = ok1->tickets.front();
  const auto done = client.call(wait, &err);
  ASSERT_TRUE(done.has_value()) << err;
  EXPECT_EQ(done->result->state, "completed");
}

// --- drain verb ---------------------------------------------------------------

TEST(DrainVerb, DrainsThenRejectsFurtherSubmits) {
  ServerFixture fx;
  WireClient client;
  std::string err;
  ASSERT_TRUE(client.connect(fx.server.endpoint(), &err)) << err;

  const auto submitted = client.call(submit_builtin("fig9"), &err);
  ASSERT_TRUE(submitted.has_value()) << err;
  ASSERT_EQ(submitted->state, "queued");

  WireRequest drain;
  drain.verb = "drain";
  const auto drained = client.call(drain, &err);
  ASSERT_TRUE(drained.has_value()) << err;
  EXPECT_EQ(drained->state, "drained");

  // The admitted request reached its natural terminal state...
  WireRequest status;
  status.verb = "status";
  status.ticket = submitted->tickets.front();
  const auto st = client.call(status, &err);
  ASSERT_TRUE(st.has_value()) << err;
  ASSERT_TRUE(st->result.has_value());
  EXPECT_EQ(st->result->state, "completed");

  // ...and the pool now sheds everything new.
  const auto late = client.call(submit_builtin("fig10"), &err);
  ASSERT_TRUE(late.has_value()) << err;
  EXPECT_EQ(late->state, "rejected");
  EXPECT_FALSE(late->reject_reason.empty());
}

// --- correlation-id multiplexing ---------------------------------------------

TEST(Multiplexing, BlockedWaitsDoNotStallTheConnection) {
  service::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.start_paused = true;
  ServerFixture fx(cfg);
  WireClient client;
  std::string err;
  ASSERT_TRUE(client.connect(fx.server.endpoint(), &err)) << err;

  const auto a = client.call(submit_builtin("fig9"), &err);
  const auto b = client.call(submit_builtin("fig10"), &err);
  ASSERT_TRUE(a && b);
  ASSERT_EQ(a->state, "queued");
  ASSERT_EQ(b->state, "queued");

  // Two waits go out first; both block server-side (workers are paused).
  WireRequest wait_a;
  wait_a.id = 101;
  wait_a.verb = "wait";
  wait_a.ticket = a->tickets.front();
  WireRequest wait_b;
  wait_b.id = 102;
  wait_b.verb = "wait";
  wait_b.ticket = b->tickets.front();
  ASSERT_EQ(client.send(wait_a, &err), 101u) << err;
  ASSERT_EQ(client.send(wait_b, &err), 102u) << err;

  // A ping sent *after* both waits answers first: the reader thread is not
  // stalled behind the blocking verbs.
  WireRequest ping;
  ping.id = 103;
  ping.verb = "ping";
  ASSERT_EQ(client.send(ping, &err), 103u) << err;
  const auto pong = client.wait_for(103, &err);
  ASSERT_TRUE(pong.has_value()) << err;
  EXPECT_TRUE(pong->ok);

  // Unpark the worker; collect the wait answers in reverse submission order.
  fx.svc.resume();
  const auto done_b = client.wait_for(102, &err);
  ASSERT_TRUE(done_b.has_value()) << err;
  EXPECT_EQ(done_b->result->state, "completed");
  const auto done_a = client.wait_for(101, &err);
  ASSERT_TRUE(done_a.has_value()) << err;
  EXPECT_EQ(done_a->result->state, "completed");
}

// --- malformed peers ----------------------------------------------------------

/// Minimal raw TCP client for speaking deliberately broken bytes.
struct RawConn {
  int fd = -1;

  explicit RawConn(int port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      fd = -1;
    }
  }
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }

  void send_bytes(const std::string& bytes) const {
    ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Reads one response frame off the raw socket; nullopt on EOF.
  std::optional<WireResponse> read_response() {
    std::string payload;
    while (!decoder.next(&payload)) {
      if (decoder.error() != FrameDecoder::Error::kNone) return std::nullopt;
      char buf[512];
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) return std::nullopt;
      decoder.feed(buf, static_cast<std::size_t>(n));
    }
    std::string err;
    return decode_response(payload, &err);
  }

  /// True when the server closed its end (EOF).
  bool peer_closed() const {
    char buf[64];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    return n == 0;
  }

  FrameDecoder decoder;
};

TEST(MalformedPeer, BadVersionByteGetsErrorFrameThenClose) {
  ServerFixture fx;
  RawConn conn(fx.server.port());
  ASSERT_GE(conn.fd, 0);

  std::string frame = encode_frame(R"({"v":"partita-wire-v1","verb":"ping"})");
  frame[4] = 0x7f;  // corrupt the version byte
  conn.send_bytes(frame);

  const auto resp = conn.read_response();
  ASSERT_TRUE(resp.has_value()) << "expected one final error frame";
  EXPECT_FALSE(resp->ok);
  EXPECT_EQ(resp->error.kind, kProtocolErrorKind);
  EXPECT_TRUE(conn.peer_closed()) << "framing error must close the connection";

  // The server itself survives: a fresh, well-behaved client still works.
  WireClient client;
  std::string err;
  ASSERT_TRUE(client.connect(fx.server.endpoint(), &err)) << err;
  WireRequest ping;
  ping.verb = "ping";
  const auto pong = client.call(ping, &err);
  ASSERT_TRUE(pong.has_value()) << err;
  EXPECT_TRUE(pong->ok);
  EXPECT_GE(fx.server.stats().protocol_errors, 1u);
}

TEST(MalformedPeer, OversizedLengthPrefixClosesConnection) {
  ServerFixture fx;
  RawConn conn(fx.server.port());
  ASSERT_GE(conn.fd, 0);
  // Claims a 2 GiB frame; the server must refuse from the header alone.
  const char header[4] = {0x7f, char(0xff), char(0xff), char(0xff)};
  conn.send_bytes(std::string(header, 4));
  const auto resp = conn.read_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_FALSE(resp->ok);
  EXPECT_TRUE(conn.peer_closed());
}

TEST(MalformedPeer, BadJsonKeepsConnectionAlive) {
  ServerFixture fx;
  RawConn conn(fx.server.port());
  ASSERT_GE(conn.fd, 0);

  conn.send_bytes(encode_frame("{definitely not json"));
  const auto err_resp = conn.read_response();
  ASSERT_TRUE(err_resp.has_value());
  EXPECT_FALSE(err_resp->ok);
  EXPECT_EQ(err_resp->error.kind, kProtocolErrorKind);

  // Same connection, now a well-formed ping: the JSON error was contained.
  conn.send_bytes(encode_frame(R"({"v":"partita-wire-v1","id":5,"verb":"ping"})"));
  const auto pong = conn.read_response();
  ASSERT_TRUE(pong.has_value()) << "connection must survive a JSON error";
  EXPECT_TRUE(pong->ok);
  EXPECT_EQ(pong->id, 5u);
}

TEST(MalformedPeer, UnknownVerbAndWorkloadAreContained) {
  ServerFixture fx;
  WireClient client;
  std::string err;
  ASSERT_TRUE(client.connect(fx.server.endpoint(), &err)) << err;

  WireRequest bad_verb;
  bad_verb.verb = "frobnicate";
  const auto r1 = client.call(bad_verb, &err);
  ASSERT_TRUE(r1.has_value()) << err;
  EXPECT_FALSE(r1->ok);
  EXPECT_EQ(r1->error.kind, kProtocolErrorKind);

  WireRequest bad_workload = submit_builtin("no_such_workload");
  const auto r2 = client.call(bad_workload, &err);
  ASSERT_TRUE(r2.has_value()) << err;
  EXPECT_FALSE(r2->ok);
  EXPECT_NE(r2->error.message.find("unknown workload"), std::string::npos);

  // Connection still healthy after both.
  WireRequest ping;
  ping.verb = "ping";
  const auto pong = client.call(ping, &err);
  ASSERT_TRUE(pong.has_value()) << err;
  EXPECT_TRUE(pong->ok);
}

// --- stats verb ---------------------------------------------------------------

TEST(StatsVerb, ExposesServiceSchedulerAndNetCounters) {
  service::ServiceConfig cfg;
  cfg.policy = "priority";
  ServerFixture fx(cfg);
  WireClient client;
  std::string err;
  ASSERT_TRUE(client.connect(fx.server.endpoint(), &err)) << err;

  const WireResult r = solve_over_wire(client, "fig9");
  ASSERT_EQ(r.state, "completed");

  WireRequest stats;
  stats.verb = "stats";
  const auto resp = client.call(stats, &err);
  ASSERT_TRUE(resp.has_value()) << err;
  ASSERT_TRUE(resp->ok);
  EXPECT_EQ(resp->policy, "priority");
  EXPECT_GE(resp->stats.at("submitted"), 1.0);
  EXPECT_GE(resp->stats.at("completed"), 1.0);
  EXPECT_GE(resp->stats.at("sched_picked"), 1.0);
  EXPECT_GE(resp->stats.at("net_frames_in"), 1.0);
  EXPECT_GE(resp->stats.at("net_sessions_accepted"), 1.0);
}

}  // namespace
}  // namespace partita::net

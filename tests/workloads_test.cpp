// Tests that the built-in workloads have the paper's problem-instance shape
// and that the random generator produces valid, deterministic instances.
#include <gtest/gtest.h>

#include "ir/verify.hpp"
#include "select/flow.hpp"
#include "workloads/random_workload.hpp"
#include "workloads/workloads.hpp"

namespace partita::workloads {
namespace {

TEST(GsmEncoder, PaperShape) {
  Workload w = gsm_encoder();
  support::DiagnosticEngine diags;
  EXPECT_TRUE(ir::verify_module(w.module, diags)) << diags.render_all();
  // Paper: 18 s-calls and 23 IPs for the encoder.
  EXPECT_EQ(w.library.size(), 23u);
  select::Flow flow(w.module, w.library);
  EXPECT_EQ(flow.scalls().size(), 18u);
  EXPECT_GE(flow.imp_database().imps().size(), 40u);  // paper had 42 IMPs
  EXPECT_EQ(flow.paths().size(), 2u);  // voiced/unvoiced conditional
}

TEST(GsmEncoder, HasParallelCodeAndSwScallImps) {
  Workload w = gsm_encoder();
  select::Flow flow(w.module, w.library);
  int pc = 0, pc_sw = 0;
  for (const isel::Imp& imp : flow.imp_database().imps()) {
    pc += imp.pc_use == isel::PcUse::kPlain;
    pc_sw += imp.pc_use == isel::PcUse::kWithScallSw;
  }
  // The paper reports IMPs exploiting parallel code, one of which uses the
  // software implementation of another s-call.
  EXPECT_GT(pc, 0);
  EXPECT_GT(pc_sw, 0);
}

TEST(GsmEncoder, SomeFunctionsHaveAlternativeIps) {
  Workload w = gsm_encoder();
  int multi_alternative = 0;
  for (const std::string& fn : w.library.supported_functions()) {
    if (w.library.implementors_of(fn).size() >= 2) ++multi_alternative;
  }
  EXPECT_GE(multi_alternative, 3);  // "two or three different IPs available"
}

TEST(GsmDecoder, PaperShape) {
  Workload w = gsm_decoder();
  support::DiagnosticEngine diags;
  EXPECT_TRUE(ir::verify_module(w.module, diags)) << diags.render_all();
  EXPECT_EQ(w.library.size(), 10u);  // paper: 10 IPs
  select::Flow flow(w.module, w.library);
  EXPECT_EQ(flow.scalls().size(), 11u);  // paper: 11 s-calls
}

TEST(GsmDecoder, HasSubTemplateRateIp) {
  // The SC10 story needs an IP whose native rate is below the type-0
  // template rate (4).
  Workload w = gsm_decoder();
  bool found = false;
  for (const iplib::IpDescriptor& ip : w.library.all()) {
    if (ip.in_rate < 4 && ip.in_rate == ip.out_rate) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(JpegEncoder, HierarchyPresent) {
  Workload w = jpeg_encoder();
  support::DiagnosticEngine diags;
  EXPECT_TRUE(ir::verify_module(w.module, diags)) << diags.render_all();
  EXPECT_EQ(w.library.size(), 5u);  // 2D-DCT, 1D-DCT, FFT, C-MUL, zig-zag
  // dct2d -> dct1d -> fft -> cmul chain.
  const ir::FuncId dct2d = w.module.find_function("dct2d");
  ASSERT_TRUE(dct2d.valid());
  const auto below = w.module.callees_of(dct2d);
  ASSERT_EQ(below.size(), 1u);
  EXPECT_EQ(w.module.function(below[0]).name(), "dct1d");
}

TEST(JpegEncoder, ZigzagExcludesType0) {
  Workload w = jpeg_encoder();
  const iplib::IpDescriptor& zz = w.library.ip(w.library.find("IP5"));
  EXPECT_NE(zz.in_rate, zz.out_rate);
  iface::KernelParams k;
  EXPECT_FALSE(iface::applicable(iface::InterfaceType::kType0, zz, k).ok);
}

TEST(AdpcmCodec, ExercisesModelCorners) {
  Workload w = adpcm_codec();
  support::DiagnosticEngine diags;
  EXPECT_TRUE(ir::verify_module(w.module, diags)) << diags.render_all();
  // Non-pipelined, handshake-protocol and multi-function IPs all present.
  bool non_pipelined = false, handshake = false, multi = false;
  for (const iplib::IpDescriptor& ip : w.library.all()) {
    non_pipelined |= !ip.pipelined;
    handshake |= ip.protocol == iplib::Protocol::kHandshake;
    multi |= ip.is_multi_function();
  }
  EXPECT_TRUE(non_pipelined);
  EXPECT_TRUE(handshake);
  EXPECT_TRUE(multi);
}

TEST(AdpcmCodec, SweepIsFeasibleAndMonotone) {
  Workload w = adpcm_codec();
  select::Flow flow(w.module, w.library);
  const std::int64_t gmax = flow.max_feasible_gain();
  ASSERT_GT(gmax, 0);
  double prev = -1;
  for (int k = 1; k <= 5; ++k) {
    const select::Selection sel = flow.select(gmax * k / 5);
    ASSERT_TRUE(sel.feasible) << k;
    EXPECT_GE(sel.total_area(), prev - 1e-9);
    prev = sel.total_area();
  }
}

TEST(AdpcmCodec, NonPipelinedIpTimingSerializes) {
  // The combinational predictor array must be charged T_IF + T_IP under
  // type 0 -- check the database agrees with the analytic model.
  Workload w = adpcm_codec();
  select::Flow flow(w.module, w.library);
  const iplib::IpDescriptor& pred = w.library.ip(w.library.find("PRED_ARRAY"));
  ASSERT_FALSE(pred.pipelined);
  iface::KernelParams k;
  const iface::InterfaceTiming t =
      iface::interface_timing(iface::InterfaceType::kType0, pred, pred.functions[0], 0, k);
  EXPECT_EQ(t.total_cycles, t.t_if + t.t_ip);
  bool found = false;
  for (const isel::Imp& imp : flow.imp_database().imps()) {
    if (imp.ip == pred.id && imp.iface_type == iface::InterfaceType::kType0 &&
        !imp.flattened) {
      EXPECT_EQ(imp.timing.total_cycles, t.total_cycles);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(FigCases, ParseAndVerify) {
  for (auto make : {fig9_case, fig10_case}) {
    Workload w = make();
    support::DiagnosticEngine diags;
    EXPECT_TRUE(ir::verify_module(w.module, diags)) << w.name << ": " << diags.render_all();
  }
}

TEST(WorkloadSource, ExposesKlText) {
  EXPECT_NE(workload_source("gsm_encoder").find("module gsm_encoder"), std::string::npos);
  EXPECT_NE(workload_source("jpeg_encoder").find("dct2d"), std::string::npos);
  EXPECT_TRUE(workload_source("nope").empty());
}

// --- random workloads ---------------------------------------------------------------

TEST(RandomWorkload, DeterministicForSeed) {
  RandomWorkloadParams p;
  const std::string a = random_workload_kl(p, 17);
  const std::string b = random_workload_kl(p, 17);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, random_workload_kl(p, 18));
}

class RandomWorkloadValid : public ::testing::TestWithParam<int> {};

TEST_P(RandomWorkloadValid, ParsesVerifiesAndFlows) {
  RandomWorkloadParams p;
  Workload w = random_workload(p, static_cast<std::uint64_t>(GetParam()));
  support::DiagnosticEngine diags;
  ASSERT_TRUE(ir::verify_module(w.module, diags)) << diags.render_all();
  select::Flow flow(w.module, w.library);
  // Profile and paths must be coherent.
  EXPECT_GT(flow.profile().total_cycles, 0);
  EXPECT_GE(flow.paths().size(), 1u);
  for (const isel::Imp& imp : flow.imp_database().imps()) {
    EXPECT_GT(imp.gain_per_exec, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkloadValid, ::testing::Range(0, 20));

}  // namespace
}  // namespace partita::workloads

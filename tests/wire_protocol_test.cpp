// Wire-level tests for partita-wire-v1: framing (net/frame.hpp) and the
// JSON codec (net/protocol.hpp). Everything here is pure in-memory byte
// pushing -- no sockets -- which is exactly what makes the malformed-frame
// fuzzing cheap: the decoder must never crash, never allocate an
// attacker-chosen amount, and must poison the stream on the first framing
// error instead of resynchronizing on garbage.
#include "net/frame.hpp"
#include "net/protocol.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace partita::net {
namespace {

// --- framing: round trip ----------------------------------------------------

TEST(Frame, EncodeLayout) {
  const std::string f = encode_frame("ab");
  ASSERT_EQ(f.size(), 4u + 1u + 2u);
  // Big-endian length counts version byte + payload = 3.
  EXPECT_EQ(static_cast<unsigned char>(f[0]), 0);
  EXPECT_EQ(static_cast<unsigned char>(f[1]), 0);
  EXPECT_EQ(static_cast<unsigned char>(f[2]), 0);
  EXPECT_EQ(static_cast<unsigned char>(f[3]), 3);
  EXPECT_EQ(static_cast<unsigned char>(f[4]), kWireVersion);
  EXPECT_EQ(f.substr(5), "ab");
}

TEST(Frame, RoundTripSingle) {
  const std::string frame = encode_frame(R"({"v":"partita-wire-v1"})");
  FrameDecoder dec;
  dec.feed(frame.data(), frame.size());
  std::string payload;
  ASSERT_TRUE(dec.next(&payload));
  EXPECT_EQ(payload, R"({"v":"partita-wire-v1"})");
  EXPECT_FALSE(dec.next(&payload));
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kNone);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(Frame, RoundTripEmptyPayload) {
  // A zero-byte payload is legal (length field 1: just the version byte).
  const std::string frame = encode_frame("");
  FrameDecoder dec;
  dec.feed(frame.data(), frame.size());
  std::string payload = "sentinel";
  ASSERT_TRUE(dec.next(&payload));
  EXPECT_EQ(payload, "");
}

TEST(Frame, BackToBackFramesInOneFeed) {
  const std::string bytes = encode_frame("one") + encode_frame("two") + encode_frame("three");
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  std::string p;
  ASSERT_TRUE(dec.next(&p));
  EXPECT_EQ(p, "one");
  ASSERT_TRUE(dec.next(&p));
  EXPECT_EQ(p, "two");
  ASSERT_TRUE(dec.next(&p));
  EXPECT_EQ(p, "three");
  EXPECT_FALSE(dec.next(&p));
}

TEST(Frame, ByteAtATimeFeeding) {
  const std::string frame = encode_frame("incremental payload");
  FrameDecoder dec;
  std::string p;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    dec.feed(&frame[i], 1);
    EXPECT_FALSE(dec.next(&p)) << "frame complete too early at byte " << i;
    EXPECT_EQ(dec.error(), FrameDecoder::Error::kNone);
  }
  dec.feed(&frame[frame.size() - 1], 1);
  ASSERT_TRUE(dec.next(&p));
  EXPECT_EQ(p, "incremental payload");
}

// --- framing: malformed streams ---------------------------------------------

TEST(Frame, TruncatedLengthPrefixIsJustIncomplete) {
  // Two bytes of a four-byte prefix: not an error, merely not yet a frame.
  const char bytes[2] = {0, 0};
  FrameDecoder dec;
  dec.feed(bytes, 2);
  std::string p;
  EXPECT_FALSE(dec.next(&p));
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kNone);
  EXPECT_EQ(dec.buffered(), 2u);
}

TEST(Frame, TruncatedBodyIsJustIncomplete) {
  const std::string frame = encode_frame("payload");
  FrameDecoder dec;
  dec.feed(frame.data(), frame.size() - 3);
  std::string p;
  EXPECT_FALSE(dec.next(&p));
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kNone);
}

TEST(Frame, BadVersionByteIsStickyPoison) {
  std::string frame = encode_frame("payload");
  frame[4] = 0x7f;  // not kWireVersion
  FrameDecoder dec;
  dec.feed(frame.data(), frame.size());
  std::string p;
  EXPECT_FALSE(dec.next(&p));
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kBadVersion);
  // The stream stays poisoned: a well-formed follow-up frame is never parsed.
  const std::string good = encode_frame("good");
  dec.feed(good.data(), good.size());
  EXPECT_FALSE(dec.next(&p));
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kBadVersion);
  EXPECT_NE(std::string(dec.error_message()).find("version"), std::string::npos);
}

TEST(Frame, OversizedLengthRejectedFromHeaderAlone) {
  // The decoder must refuse before the body arrives -- a hostile length
  // prefix never causes a matching allocation.
  FrameDecoder dec(/*max_frame_bytes=*/64);
  const unsigned char header[4] = {0x7f, 0xff, 0xff, 0xff};
  dec.feed(reinterpret_cast<const char*>(header), 4);
  std::string p;
  EXPECT_FALSE(dec.next(&p));
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kOversized);
}

TEST(Frame, DefaultCeilingIsOneMiB) {
  FrameDecoder dec;
  // length = 1 MiB + 1: one past the ceiling.
  const unsigned char header[4] = {0x00, 0x10, 0x00, 0x01};
  dec.feed(reinterpret_cast<const char*>(header), 4);
  std::string p;
  EXPECT_FALSE(dec.next(&p));
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kOversized);
}

TEST(Frame, ZeroLengthFrameIsAnError) {
  // length 0 leaves no room for the version byte.
  const char header[4] = {0, 0, 0, 0};
  FrameDecoder dec;
  dec.feed(header, 4);
  std::string p;
  EXPECT_FALSE(dec.next(&p));
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kEmpty);
}

TEST(Frame, FeedAfterErrorDropsBytes) {
  std::string frame = encode_frame("x");
  frame[4] = 0x02;
  FrameDecoder dec;
  dec.feed(frame.data(), frame.size());
  std::string p;
  EXPECT_FALSE(dec.next(&p));
  const std::size_t buffered = dec.buffered();
  dec.feed("more bytes", 10);
  EXPECT_EQ(dec.buffered(), buffered);  // dropped, not accumulated
}

// Random-bytes fuzz: whatever arrives, the decoder must not crash and must
// either produce version-checked frames or park on a sticky error.
TEST(FrameFuzz, RandomBytesNeverCrash) {
  std::mt19937 rng(20260808);
  for (int round = 0; round < 200; ++round) {
    FrameDecoder dec(/*max_frame_bytes=*/4096);
    std::uniform_int_distribution<int> len_dist(1, 64);
    std::uniform_int_distribution<int> byte_dist(0, 255);
    for (int chunk = 0; chunk < 20; ++chunk) {
      std::string bytes(static_cast<std::size_t>(len_dist(rng)), '\0');
      for (char& c : bytes) c = static_cast<char>(byte_dist(rng));
      dec.feed(bytes.data(), bytes.size());
      std::string p;
      while (dec.next(&p)) {
        EXPECT_LT(p.size(), 4096u);
      }
      if (dec.error() != FrameDecoder::Error::kNone) break;
    }
  }
}

// Adversarial split fuzz: well-formed frames chopped at random boundaries
// must always reassemble bit-exactly.
TEST(FrameFuzz, RandomSplitsReassembleExactly) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> size_dist(0, 300);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (int round = 0; round < 100; ++round) {
    std::vector<std::string> payloads;
    std::string stream;
    const int frames = 1 + round % 5;
    for (int i = 0; i < frames; ++i) {
      std::string payload(static_cast<std::size_t>(size_dist(rng)), '\0');
      for (char& c : payload) c = static_cast<char>(byte_dist(rng));
      payloads.push_back(payload);
      stream += encode_frame(payload);
    }
    FrameDecoder dec;
    std::vector<std::string> got;
    std::size_t off = 0;
    std::uniform_int_distribution<std::size_t> chunk_dist(1, 17);
    while (off < stream.size()) {
      const std::size_t n = std::min(chunk_dist(rng), stream.size() - off);
      dec.feed(stream.data() + off, n);
      off += n;
      std::string p;
      while (dec.next(&p)) got.push_back(p);
    }
    EXPECT_EQ(dec.error(), FrameDecoder::Error::kNone);
    EXPECT_EQ(got, payloads);
  }
}

// --- codec: requests ---------------------------------------------------------

TEST(Codec, SubmitRequestRoundTrip) {
  WireRequest req;
  req.id = 42;
  req.verb = "submit";
  req.workload = "gsm_encoder";
  req.label = "my label \"quoted\"";
  req.tenant = "tenant-a";
  req.priority = service::kPriorityInteractive;
  req.deadline_seconds = 1.5;
  req.required_gain = 12345;
  req.time_limit_seconds = 1.0 / 3.0;  // exercises %.17g round-tripping
  req.memory_limit_mb = 256;

  std::string err;
  const auto back = decode_request(encode_request(req), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->id, 42u);
  EXPECT_EQ(back->verb, "submit");
  EXPECT_EQ(back->workload, "gsm_encoder");
  EXPECT_FALSE(back->spec.has_value());
  EXPECT_EQ(back->label, req.label);
  EXPECT_EQ(back->tenant, "tenant-a");
  EXPECT_EQ(back->priority, service::kPriorityInteractive);
  EXPECT_EQ(back->deadline_seconds, 1.5);
  EXPECT_EQ(back->required_gain, 12345);
  EXPECT_TRUE(back->gains.empty());
  EXPECT_EQ(back->time_limit_seconds, 1.0 / 3.0);  // exact, not approximate
  EXPECT_EQ(back->memory_limit_mb, 256u);
}

TEST(Codec, SpecAndBatchRequestRoundTrip) {
  WireRequest req;
  req.verb = "submit";
  req.spec = SpecRef{987654321, 14, 5, 7, 4, 2};
  req.gains = {100, -1, 2500, 0};
  req.priority = service::kPriorityBatch;

  std::string err;
  const auto back = decode_request(encode_request(req), &err);
  ASSERT_TRUE(back.has_value()) << err;
  ASSERT_TRUE(back->spec.has_value());
  EXPECT_EQ(back->spec->seed, 987654321u);
  EXPECT_EQ(back->spec->scalls, 14);
  EXPECT_EQ(back->spec->kernels, 5);
  EXPECT_EQ(back->spec->ips, 7);
  EXPECT_EQ(back->spec->branch_groups, 4);
  EXPECT_EQ(back->spec->hierarchy_depth, 2);
  EXPECT_EQ(back->gains, (std::vector<std::int64_t>{100, -1, 2500, 0}));
  EXPECT_EQ(back->priority, service::kPriorityBatch);
}

TEST(Codec, TicketVerbsRoundTrip) {
  for (const char* verb : {"cancel", "status", "wait"}) {
    WireRequest req;
    req.id = 7;
    req.verb = verb;
    req.ticket = 991;
    std::string err;
    const auto back = decode_request(encode_request(req), &err);
    ASSERT_TRUE(back.has_value()) << verb << ": " << err;
    EXPECT_EQ(back->verb, verb);
    EXPECT_EQ(back->ticket, 991u);
  }
}

TEST(Codec, PriorityAcceptsNameOrNumeral) {
  std::string err;
  const auto by_name = decode_request(
      R"({"v":"partita-wire-v1","verb":"submit","workload":"fig9","priority":"batch"})", &err);
  ASSERT_TRUE(by_name.has_value()) << err;
  EXPECT_EQ(by_name->priority, service::kPriorityBatch);
  const auto by_number = decode_request(
      R"({"v":"partita-wire-v1","verb":"submit","workload":"fig9","priority":0})", &err);
  ASSERT_TRUE(by_number.has_value()) << err;
  EXPECT_EQ(by_number->priority, service::kPriorityInteractive);
}

TEST(Codec, DecodeRequestRejections) {
  std::string err;
  EXPECT_FALSE(decode_request("not json at all", &err).has_value());
  EXPECT_NE(err.find("malformed JSON"), std::string::npos);
  EXPECT_FALSE(decode_request("[1,2,3]", &err).has_value());
  EXPECT_FALSE(decode_request(R"({"verb":"ping"})", &err).has_value());
  EXPECT_NE(err.find("schema"), std::string::npos);
  EXPECT_FALSE(decode_request(R"({"v":"partita-wire-v2","verb":"ping"})", &err).has_value());
  EXPECT_FALSE(decode_request(R"({"v":"partita-wire-v1","id":3})", &err).has_value());
  EXPECT_NE(err.find("verb"), std::string::npos);
  EXPECT_FALSE(decode_request(
      R"({"v":"partita-wire-v1","verb":"submit","priority":"urgent"})", &err).has_value());
  EXPECT_NE(err.find("priority"), std::string::npos);
}

// --- codec: responses --------------------------------------------------------

TEST(Codec, ResponseWithResultRoundTrip) {
  WireResponse resp;
  resp.id = 9;
  resp.verb = "wait";
  resp.ok = true;
  WireResult r;
  r.ticket = 17;
  r.label = "gsm_encoder";
  r.state = "completed";
  r.attempts = 2;
  r.cache = "neighbor";
  WireSelection s;
  s.feasible = true;
  s.chosen = {0, 3, 5};
  s.ips_used = {1, 4};
  s.ip_area = 12345.6789012345678;  // needs all 17 significant digits
  s.interface_area = 1.0 / 7.0;
  s.ip_power = 0.1 + 0.2;  // the canonical not-0.3 double
  s.interface_power = 2.25;
  s.min_path_gain = 987654321;
  s.s_instructions = 4;
  s.selected_scalls = 6;
  s.rung = "full";
  s.optimality_gap = 1e-9;
  r.selection = s;
  resp.result = r;

  std::string err;
  const auto back = decode_response(encode_response(resp), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->id, 9u);
  EXPECT_TRUE(back->ok);
  ASSERT_TRUE(back->result.has_value());
  EXPECT_EQ(back->result->ticket, 17u);
  EXPECT_EQ(back->result->state, "completed");
  EXPECT_EQ(back->result->attempts, 2);
  EXPECT_EQ(back->result->cache, "neighbor");
  ASSERT_TRUE(back->result->selection.has_value());
  const WireSelection& b = *back->result->selection;
  // key() compares every solution-defining field; doubles must be
  // bit-identical after the trip, not merely close.
  EXPECT_EQ(b.key(), s.key());
  EXPECT_EQ(b.ip_area, s.ip_area);
  EXPECT_EQ(b.interface_area, s.interface_area);
  EXPECT_EQ(b.ip_power, s.ip_power);
  EXPECT_EQ(b.optimality_gap, s.optimality_gap);
  EXPECT_EQ(b.chosen, s.chosen);
  EXPECT_EQ(b.ips_used, s.ips_used);
}

TEST(Codec, ErrorResponseRoundTrip) {
  WireResponse resp;
  resp.id = 3;
  resp.verb = "submit";
  resp.ok = false;
  resp.error = {"protocol", "unknown workload 'nope'"};
  std::string err;
  const auto back = decode_response(encode_response(resp), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_FALSE(back->ok);
  EXPECT_EQ(back->error.kind, "protocol");
  EXPECT_EQ(back->error.message, "unknown workload 'nope'");
}

TEST(Codec, RejectedSubmitResponseRoundTrip) {
  WireResponse resp;
  resp.verb = "submit";
  resp.ok = true;
  resp.tickets = {5, 6, 7};
  resp.state = "rejected";
  resp.retry_after_seconds = 0.075;
  resp.reject_reason = "admission queue full";
  std::string err;
  const auto back = decode_response(encode_response(resp), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->tickets, (std::vector<std::uint64_t>{5, 6, 7}));
  EXPECT_EQ(back->state, "rejected");
  EXPECT_EQ(back->retry_after_seconds, 0.075);
  EXPECT_EQ(back->reject_reason, "admission queue full");
}

TEST(Codec, StatsResponseRoundTrip) {
  WireResponse resp;
  resp.verb = "stats";
  resp.ok = true;
  resp.stats = {{"submitted", 12}, {"completed", 11}, {"sched_backfills", 3}};
  resp.policy = "priority";
  std::string err;
  const auto back = decode_response(encode_response(resp), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->stats.at("submitted"), 12.0);
  EXPECT_EQ(back->stats.at("sched_backfills"), 3.0);
  EXPECT_EQ(back->policy, "priority");
}

TEST(Codec, CacheMarkerDefaultsEmptyAndOmitted) {
  // A cacheless server sends no "cache" field at all; the decoder must leave
  // the marker empty rather than inventing one.
  WireResponse resp;
  resp.verb = "wait";
  resp.ok = true;
  WireResult r;
  r.ticket = 4;
  r.state = "completed";
  resp.result = r;
  const std::string payload = encode_response(resp);
  EXPECT_EQ(payload.find("\"cache\""), std::string::npos);
  std::string err;
  const auto back = decode_response(payload, &err);
  ASSERT_TRUE(back.has_value()) << err;
  ASSERT_TRUE(back->result.has_value());
  EXPECT_EQ(back->result->cache, "");
}

TEST(Codec, CacheStatsPayloadRoundTripsExactDoubles) {
  // The stats verb carries the solution-cache counters as doubles; they must
  // survive the trip bit-identically even at the integer-precision edge
  // (2^53 - 1) and for awkward fractions.
  WireResponse resp;
  resp.verb = "stats";
  resp.ok = true;
  resp.stats = {{"cache_lookups", 9007199254740991.0},
                {"cache_hits", 1.0 / 3.0},
                {"cache_misses", 12345678901234.0},
                {"cache_neighbor_seeds", 7.0},
                {"cache_insertions", 42.0},
                {"cache_evictions", 0.0},
                {"cache_stale", 3.0},
                {"cache_seed_fallbacks", 1.0}};
  std::string err;
  const auto back = decode_response(encode_response(resp), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->stats.at("cache_lookups"), 9007199254740991.0);
  EXPECT_EQ(back->stats.at("cache_hits"), 1.0 / 3.0);
  EXPECT_EQ(back->stats.at("cache_misses"), 12345678901234.0);
  EXPECT_EQ(back->stats.at("cache_neighbor_seeds"), 7.0);
  EXPECT_EQ(back->stats.at("cache_insertions"), 42.0);
  EXPECT_EQ(back->stats.at("cache_evictions"), 0.0);
  EXPECT_EQ(back->stats.at("cache_stale"), 3.0);
  EXPECT_EQ(back->stats.at("cache_seed_fallbacks"), 1.0);
}

TEST(Codec, SelectionKeyDistinguishesSolutions) {
  WireSelection a;
  a.feasible = true;
  a.chosen = {1, 2};
  a.min_path_gain = 100;
  WireSelection b = a;
  EXPECT_EQ(a.key(), b.key());
  b.chosen = {1, 3};
  EXPECT_NE(a.key(), b.key());
  b = a;
  b.ip_area = a.ip_area + 1e-13;
  EXPECT_NE(a.key(), b.key());
}

// Codec fuzz: decode must never crash on mutated valid payloads.
TEST(CodecFuzz, MutatedPayloadsNeverCrash) {
  WireRequest req;
  req.verb = "submit";
  req.workload = "fig9";
  req.gains = {1, 2, 3};
  const std::string base = encode_request(req);
  std::mt19937 rng(99);
  std::uniform_int_distribution<std::size_t> pos_dist(0, base.size() - 1);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = base;
    mutated[pos_dist(rng)] = static_cast<char>(byte_dist(rng));
    std::string err;
    (void)decode_request(mutated, &err);  // any outcome but a crash is fine
    (void)decode_response(mutated, &err);
  }
}

}  // namespace
}  // namespace partita::net

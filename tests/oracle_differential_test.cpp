// Differential verification of the ILP selection pipeline against the
// exhaustive oracle (src/oracle/): hundreds of seeded random instances must
// agree *exactly* on the optimal area; larger instances must respect the
// LP-relaxation / greedy sandwich; results must not depend on the solver
// thread count.
#include <gtest/gtest.h>

#include <cstdint>

#include "oracle/differential.hpp"
#include "oracle/exhaustive.hpp"
#include "select/flow.hpp"
#include "workloads/random_workload.hpp"

namespace partita {
namespace {

using workloads::InstanceGenParams;
using workloads::InstanceSpec;

struct ExactConfig {
  const char* name;
  InstanceGenParams params;
  std::uint64_t seed_base;
  int count;
};

InstanceGenParams make_params(int scalls, int kernels, int ips, int branch_groups,
                              int depth, double sharing) {
  InstanceGenParams p;
  p.scalls = scalls;
  p.kernels = kernels;
  p.ips = ips;
  p.branch_groups = branch_groups;
  p.max_hierarchy_depth = depth;
  p.ip_sharing = sharing;
  return p;
}

// 500 exhaustively-checked instances across the generator's dimensions:
// flat/hierarchical call trees, 1-4 execution paths, lean and dense IP
// sharing, up to 10 s-calls.
const ExactConfig kExactConfigs[] = {
    {"flat_small", make_params(6, 4, 5, 1, 0, 0.35), 1000, 150},
    {"two_branches", make_params(8, 4, 6, 2, 0, 0.35), 2000, 125},
    {"hierarchy", make_params(8, 5, 6, 1, 2, 0.35), 3000, 125},
    {"dense_sharing", make_params(10, 5, 7, 2, 1, 0.6), 4000, 100},
};

TEST(OracleDifferential, FiveHundredSeededInstancesAgreeExactly) {
  int checked = 0, skipped = 0;
  for (const ExactConfig& cfg : kExactConfigs) {
    for (int i = 0; i < cfg.count; ++i) {
      const std::uint64_t seed = cfg.seed_base + static_cast<std::uint64_t>(i);
      const InstanceSpec spec =
          workloads::random_instance_spec(cfg.params, seed);
      const oracle::DiffResult r = oracle::differential_check_spec(spec);
      if (r.skipped) {
        ++skipped;
        continue;
      }
      ++checked;
      ASSERT_TRUE(r.ok) << cfg.name << " seed " << seed << ": " << r.detail;
    }
  }
  // The enumeration guard may skip a handful of worst-case instances, but
  // the bulk of the corpus must actually be verified.
  EXPECT_GE(checked, 480) << "skipped " << skipped << " of 500";
}

TEST(OracleDifferential, InfeasibleInstancesAgree) {
  InstanceGenParams p = make_params(6, 4, 5, 1, 0, 0.35);
  for (std::uint64_t seed = 50; seed < 60; ++seed) {
    InstanceSpec spec = workloads::random_instance_spec(p, seed);
    // No assignment reaches this gain; both sides must prove it.
    spec.required_gain = 1'000'000'000'000;
    const oracle::DiffResult r = oracle::differential_check_spec(spec);
    ASSERT_FALSE(r.skipped);
    ASSERT_TRUE(r.ok) << "seed " << seed << ": " << r.detail;
    EXPECT_FALSE(r.oracle_feasible);
    EXPECT_FALSE(r.ilp_feasible);
  }
}

TEST(OracleDifferential, HundredLargerInstancesRespectSandwichBounds) {
  const InstanceGenParams configs[] = {
      make_params(16, 8, 12, 2, 0, 0.4),
      make_params(18, 8, 12, 3, 2, 0.4),
  };
  int violations = 0;
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 50; ++i) {
      const std::uint64_t seed = 9000 + static_cast<std::uint64_t>(c * 50 + i);
      const InstanceSpec spec = workloads::random_instance_spec(configs[c], seed);
      const workloads::Workload wl = workloads::spec_workload(spec);
      const oracle::SandwichResult r = oracle::sandwich_check(wl);
      EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.detail;
      if (!r.ok) ++violations;
      if (r.feasible) {
        EXPECT_LE(r.lp_bound, r.ilp_area + 1e-6);
        if (r.greedy_feasible) {
          EXPECT_LE(r.ilp_area, r.greedy_area + 1e-6);
        }
      }
    }
  }
  EXPECT_EQ(violations, 0);
}

TEST(OracleDifferential, SelectionIsThreadCountInvariant) {
  const InstanceGenParams p = make_params(10, 5, 7, 2, 1, 0.5);
  for (std::uint64_t seed = 300; seed < 320; ++seed) {
    const InstanceSpec spec = workloads::random_instance_spec(p, seed);
    const workloads::Workload wl = workloads::spec_workload(spec);
    const select::Flow flow(wl.module, wl.library);
    select::SelectOptions so;
    const std::int64_t rg =
        static_cast<std::int64_t>(0.6 * static_cast<double>(flow.max_feasible_gain(so)));

    so.ilp.threads = 1;
    const select::Selection one = flow.select(rg, so);
    so.ilp.threads = 4;
    const select::Selection four = flow.select(rg, so);

    ASSERT_EQ(one.feasible, four.feasible) << "seed " << seed;
    if (!one.feasible) continue;
    EXPECT_EQ(one.chosen, four.chosen)
        << "seed " << seed << ": canonical tie-break must make the selected "
        << "IMP set independent of the thread count";
    EXPECT_NEAR(one.total_area(), four.total_area(), 1e-9);
  }
}

// The oracle's audit must also accept what the oracle itself selects (the
// two halves of exhaustive.cpp agree with each other), and reject a
// deliberately broken assignment.
TEST(OracleDifferential, AuditAcceptsOracleOptimumAndRejectsDoubleImp) {
  const InstanceGenParams p = make_params(6, 4, 5, 1, 0, 0.35);
  const InstanceSpec spec = workloads::random_instance_spec(p, 77);
  const workloads::Workload wl = workloads::spec_workload(spec);
  const select::Flow flow(wl.module, wl.library);
  select::SelectOptions so;
  const std::int64_t rg =
      static_cast<std::int64_t>(0.6 * static_cast<double>(flow.max_feasible_gain(so)));

  const oracle::OracleResult best = oracle::exhaustive_select(
      flow.imp_database(), flow.library(), flow.entry_cdfg(), flow.paths(), rg);
  ASSERT_TRUE(best.exhausted);
  ASSERT_TRUE(best.feasible);
  EXPECT_EQ(oracle::check_selection(flow.imp_database(), flow.entry_cdfg(),
                                    flow.paths(), rg, best.chosen),
            "");

  // Duplicating an IMP for the same s-call must trip the Eq. 1 audit.
  ASSERT_FALSE(best.chosen.empty());
  std::vector<isel::ImpIndex> doubled = best.chosen;
  doubled.push_back(doubled.front());
  EXPECT_NE(oracle::check_selection(flow.imp_database(), flow.entry_cdfg(),
                                    flow.paths(), rg, doubled),
            "");
}

}  // namespace
}  // namespace partita

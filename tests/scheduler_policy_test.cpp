// Unit tests for the pluggable scheduling policies (service/scheduler.hpp).
//
// Every policy decision runs on caller-supplied timestamps, so these tests
// drive synthetic SchedEntry streams with simulated micros and assert the
// ordering/starvation invariants directly -- no service, no threads, no real
// clock. The service-integration side (quotas, retry-after on a live
// service) uses a start_paused SolveService to fill the queue race-free.
#include "service/scheduler.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "service/solve_service.hpp"
#include "support/clock.hpp"
#include "workloads/workloads.hpp"

namespace partita::service {
namespace {

constexpr std::int64_t kSecond = 1'000'000;

/// Builds one synthetic entry. seq mirrors ticket: the service hands both
/// out monotonically.
SchedEntry entry(std::uint64_t ticket, int priority, std::int64_t submit_micros,
                 double declared = 0.0, std::int64_t deadline_micros = -1) {
  SchedEntry e;
  e.ticket = ticket;
  e.seq = ticket;
  e.priority = priority;
  e.submit_micros = submit_micros;
  e.declared_time_seconds = declared;
  e.deadline_micros = deadline_micros;
  return e;
}

/// Admits, asserting the policy accepted.
void must_admit(SchedulerPolicy& p, const SchedEntry& e,
                const SchedulerLoad& load = {}) {
  const AdmitDecision d = p.admit(e, load);
  ASSERT_TRUE(d.admitted) << "ticket " << e.ticket << ": " << d.reject_reason;
  ASSERT_TRUE(d.evicted.empty());
}

/// Drains the pending set in pick order at a fixed `now`.
std::vector<std::uint64_t> drain_order(SchedulerPolicy& p, std::int64_t now) {
  std::vector<std::uint64_t> order;
  while (auto t = p.pick_next(now)) {
    order.push_back(*t);
    p.on_complete(*t, RequestState::kCompleted, now);
  }
  return order;
}

// --- catalog ----------------------------------------------------------------

TEST(SchedulerCatalog, KnownPoliciesConstruct) {
  const auto names = SchedulerPolicy::known_policies();
  ASSERT_EQ(names.size(), 4u);
  for (const std::string& n : names) {
    auto p = SchedulerPolicy::create(n, {});
    ASSERT_NE(p, nullptr) << n;
    EXPECT_EQ(p->name(), n);
    EXPECT_EQ(p->queued(), 0u);
  }
}

TEST(SchedulerCatalog, UnknownPolicyIsNull) {
  EXPECT_EQ(SchedulerPolicy::create("round_robin", {}), nullptr);
  EXPECT_EQ(SchedulerPolicy::create("FIFO", {}), nullptr);
}

TEST(SchedulerCatalog, EmptyNameIsFifoDefault) {
  auto p = SchedulerPolicy::create("", {});
  ASSERT_NE(p, nullptr);
  EXPECT_STREQ(p->name(), "fifo");
}

TEST(SchedulerCatalog, AliasesResolve) {
  EXPECT_STREQ(SchedulerPolicy::create("priority_backfill", {})->name(), "priority");
  EXPECT_STREQ(SchedulerPolicy::create("deadline", {})->name(), "edf");
}

TEST(PriorityNames, ParseClampAndName) {
  EXPECT_EQ(parse_priority("interactive"), kPriorityInteractive);
  EXPECT_EQ(parse_priority("standard"), kPriorityStandard);
  EXPECT_EQ(parse_priority("batch"), kPriorityBatch);
  EXPECT_EQ(parse_priority("2"), kPriorityBatch);
  EXPECT_EQ(parse_priority("urgent"), -1);
  EXPECT_EQ(clamp_priority(-5), kPriorityInteractive);
  EXPECT_EQ(clamp_priority(99), kPriorityBatch);
  EXPECT_STREQ(priority_name(kPriorityInteractive), "interactive");
  EXPECT_STREQ(priority_name(99), "batch");
}

// --- fifo -------------------------------------------------------------------

TEST(FifoPolicy, PicksInArrivalOrderRegardlessOfClass) {
  auto p = SchedulerPolicy::create("fifo", {});
  must_admit(*p, entry(1, kPriorityBatch, 0));
  must_admit(*p, entry(2, kPriorityInteractive, 10));
  must_admit(*p, entry(3, kPriorityStandard, 20));
  EXPECT_EQ(drain_order(*p, 100), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(p->stats().backfills, 0u);
}

TEST(FifoPolicy, ShedsAtQueueDepth) {
  SchedulerLimits lim;
  lim.max_queue_depth = 2;
  auto p = SchedulerPolicy::create("fifo", lim);
  must_admit(*p, entry(1, kPriorityStandard, 0));
  must_admit(*p, entry(2, kPriorityStandard, 0));
  const AdmitDecision d = p->admit(entry(3, kPriorityInteractive, 0), {});
  EXPECT_FALSE(d.admitted);
  EXPECT_NE(d.reject_reason.find("queue full"), std::string::npos);
  EXPECT_EQ(p->stats().rejected, 1u);
  EXPECT_EQ(p->queued(), 2u);
}

TEST(FifoPolicy, ShedsOverAggregateMemoryBudget) {
  SchedulerLimits lim;
  lim.max_admitted_memory_bytes = 100;
  auto p = SchedulerPolicy::create("fifo", lim);
  SchedEntry small = entry(1, kPriorityStandard, 0);
  small.memory_charge = 60;
  must_admit(*p, small, {});
  SchedEntry big = entry(2, kPriorityStandard, 0);
  big.memory_charge = 60;
  SchedulerLoad load;
  load.admitted_memory_bytes = 60;  // the service's aggregate, charge excluded
  const AdmitDecision d = p->admit(big, load);
  EXPECT_FALSE(d.admitted);
  EXPECT_NE(d.reject_reason.find("memory"), std::string::npos);
}

TEST(FifoPolicy, QueuedCancelLeavesPendingSet) {
  auto p = SchedulerPolicy::create("fifo", {});
  must_admit(*p, entry(1, kPriorityStandard, 0));
  must_admit(*p, entry(2, kPriorityStandard, 0));
  p->on_complete(1, RequestState::kCancelled, 5);
  EXPECT_EQ(p->queued(), 1u);
  EXPECT_EQ(drain_order(*p, 10), (std::vector<std::uint64_t>{2}));
}

// --- priority + backfill ----------------------------------------------------

TEST(PriorityPolicy, StrictClassOrderThenFifoWithinClass) {
  auto p = SchedulerPolicy::create("priority", {});
  must_admit(*p, entry(1, kPriorityBatch, 0));
  must_admit(*p, entry(2, kPriorityStandard, 0));
  must_admit(*p, entry(3, kPriorityInteractive, 0));
  must_admit(*p, entry(4, kPriorityInteractive, 0));
  // Drain at t=0: no aging in play, pure class order.
  EXPECT_EQ(drain_order(*p, 0), (std::vector<std::uint64_t>{3, 4, 2, 1}));
}

TEST(PriorityPolicy, BackfillsSmallDeclaredBudgetWithinClass) {
  auto p = SchedulerPolicy::create("priority", {});
  must_admit(*p, entry(1, kPriorityStandard, 0, /*declared=*/5.0));
  must_admit(*p, entry(2, kPriorityStandard, 0, /*declared=*/0.1));
  must_admit(*p, entry(3, kPriorityStandard, 0, /*declared=*/0.0));  // undeclared: last
  EXPECT_EQ(drain_order(*p, 0), (std::vector<std::uint64_t>{2, 1, 3}));
  // Ticket 2 jumped ticket 1 => one backfill recorded.
  EXPECT_GE(p->stats().backfills, 1u);
}

TEST(PriorityPolicy, BackfillNeverCrossesAClassBoundary) {
  auto p = SchedulerPolicy::create("priority", {});
  must_admit(*p, entry(1, kPriorityInteractive, 0, /*declared=*/60.0));
  must_admit(*p, entry(2, kPriorityStandard, 0, /*declared=*/0.01));
  // The tiny standard job still waits for the big interactive one.
  EXPECT_EQ(drain_order(*p, 0), (std::vector<std::uint64_t>{1, 2}));
}

TEST(PriorityPolicy, AgingPromotesOneClassPerInterval) {
  SchedulerLimits lim;
  lim.age_promote_seconds = 5.0;
  lim.max_wait_seconds = 1000.0;  // starvation valve out of the way
  auto p = SchedulerPolicy::create("priority", lim);
  must_admit(*p, entry(1, kPriorityBatch, 0));
  // 6 s later a standard request arrives; the batch one has aged batch ->
  // standard and holds the earlier seq, so it wins FIFO within the class.
  must_admit(*p, entry(2, kPriorityStandard, 6 * kSecond));
  EXPECT_EQ(p->pick_next(6 * kSecond), std::uint64_t{1});
  EXPECT_GE(p->stats().aged_promotions, 1u);
  p->on_complete(1, RequestState::kCompleted, 6 * kSecond);
  EXPECT_EQ(drain_order(*p, 6 * kSecond), (std::vector<std::uint64_t>{2}));
}

TEST(PriorityPolicy, MaxWaitOutranksEveryClass) {
  SchedulerLimits lim;
  lim.age_promote_seconds = 0.0;  // aging off: only the absolute valve
  lim.max_wait_seconds = 30.0;
  auto p = SchedulerPolicy::create("priority", lim);
  must_admit(*p, entry(1, kPriorityBatch, 0));
  must_admit(*p, entry(2, kPriorityInteractive, 31 * kSecond));
  // At t=31s the batch request has starved past the cap and beats the fresh
  // interactive arrival.
  EXPECT_EQ(drain_order(*p, 31 * kSecond), (std::vector<std::uint64_t>{1, 2}));
}

// No-starvation property: under a continuous stream of fresh interactive
// arrivals, a single batch request is still picked within a bounded number
// of picks once aging has promoted it to the top class (seq then breaks the
// tie in its favor).
TEST(PriorityPolicy, BatchRequestIsNotStarvedByInteractiveStream) {
  SchedulerLimits lim;
  lim.age_promote_seconds = 2.0;
  lim.max_wait_seconds = 30.0;
  auto p = SchedulerPolicy::create("priority", lim);
  must_admit(*p, entry(1, kPriorityBatch, 0));

  std::uint64_t next_ticket = 2;
  std::int64_t now = 0;
  bool batch_picked = false;
  int picks = 0;
  // One interactive arrival and one pick per simulated second.
  for (int s = 1; s <= 40 && !batch_picked; ++s) {
    now = s * kSecond;
    must_admit(*p, entry(next_ticket++, kPriorityInteractive, now));
    const auto t = p->pick_next(now);
    ASSERT_TRUE(t.has_value());
    ++picks;
    p->on_complete(*t, RequestState::kCompleted, now);
    batch_picked = (*t == 1);
  }
  EXPECT_TRUE(batch_picked) << "batch request starved for " << picks << " picks";
  // Promotion covers two classes in ~4s; one extra pick for the tie round.
  EXPECT_LE(picks, 8) << "aging took effect too late";
}

// --- edf --------------------------------------------------------------------

TEST(EdfPolicy, EarliestDeadlineFirst) {
  auto p = SchedulerPolicy::create("edf", {});
  must_admit(*p, entry(1, kPriorityStandard, 0, 0.0, /*deadline=*/9 * kSecond));
  must_admit(*p, entry(2, kPriorityStandard, 0, 0.0, /*deadline=*/3 * kSecond));
  must_admit(*p, entry(3, kPriorityStandard, 0, 0.0, /*deadline=*/6 * kSecond));
  EXPECT_EQ(drain_order(*p, 0), (std::vector<std::uint64_t>{2, 3, 1}));
}

TEST(EdfPolicy, DeadlinelessRunsFifoBehindAllDeadlines) {
  auto p = SchedulerPolicy::create("edf", {});
  must_admit(*p, entry(1, kPriorityStandard, 0));  // no deadline, first in
  must_admit(*p, entry(2, kPriorityStandard, 0));  // no deadline
  must_admit(*p, entry(3, kPriorityStandard, 0, 0.0, /*deadline=*/60 * kSecond));
  // Even a far deadline beats every deadline-less request; those then run in
  // arrival order.
  EXPECT_EQ(drain_order(*p, 0), (std::vector<std::uint64_t>{3, 1, 2}));
}

TEST(EdfPolicy, DeadlineTieBreaksByArrival) {
  auto p = SchedulerPolicy::create("edf", {});
  must_admit(*p, entry(1, kPriorityStandard, 0, 0.0, /*deadline=*/5 * kSecond));
  must_admit(*p, entry(2, kPriorityStandard, 0, 0.0, /*deadline=*/5 * kSecond));
  EXPECT_EQ(drain_order(*p, 0), (std::vector<std::uint64_t>{1, 2}));
}

// --- rejecter ---------------------------------------------------------------

TEST(RejecterPolicy, EvictsYoungestLowestClassForHigherArrival) {
  SchedulerLimits lim;
  lim.max_queue_depth = 3;
  auto p = SchedulerPolicy::create("rejecter", lim);
  must_admit(*p, entry(1, kPriorityBatch, 0));
  must_admit(*p, entry(2, kPriorityStandard, 0));
  must_admit(*p, entry(3, kPriorityBatch, 0));  // youngest batch
  const AdmitDecision d = p->admit(entry(4, kPriorityInteractive, 0), {});
  ASSERT_TRUE(d.admitted);
  // Worst class present is batch; the *youngest* batch entry goes.
  EXPECT_EQ(d.evicted, (std::vector<std::uint64_t>{3}));
  EXPECT_EQ(p->queued(), 3u);
  EXPECT_EQ(p->stats().evicted, 1u);
  // Pick order stays FIFO over the survivors.
  EXPECT_EQ(drain_order(*p, 0), (std::vector<std::uint64_t>{1, 2, 4}));
}

TEST(RejecterPolicy, LowestClassArrivalIsTheOneRejected) {
  SchedulerLimits lim;
  lim.max_queue_depth = 2;
  auto p = SchedulerPolicy::create("rejecter", lim);
  must_admit(*p, entry(1, kPriorityStandard, 0));
  must_admit(*p, entry(2, kPriorityInteractive, 0));
  // A batch arrival is itself the worst class present: shed it, evict nobody.
  const AdmitDecision d = p->admit(entry(3, kPriorityBatch, 0), {});
  EXPECT_FALSE(d.admitted);
  EXPECT_TRUE(d.evicted.empty());
  EXPECT_NE(d.reject_reason.find("arrival is lowest class"), std::string::npos);
  EXPECT_EQ(p->queued(), 2u);
}

TEST(RejecterPolicy, EqualClassArrivalDoesNotEvictPeers) {
  SchedulerLimits lim;
  lim.max_queue_depth = 1;
  auto p = SchedulerPolicy::create("rejecter", lim);
  must_admit(*p, entry(1, kPriorityStandard, 0));
  // Same class: eviction only targets *strictly* lower classes.
  const AdmitDecision d = p->admit(entry(2, kPriorityStandard, 0), {});
  EXPECT_FALSE(d.admitted);
  EXPECT_TRUE(d.evicted.empty());
}

TEST(RejecterPolicy, EvictsRepeatedlyUnderMemoryPressure) {
  SchedulerLimits lim;
  lim.max_queue_depth = 16;
  lim.max_admitted_memory_bytes = 100;
  auto p = SchedulerPolicy::create("rejecter", lim);
  SchedEntry a = entry(1, kPriorityBatch, 0);
  a.memory_charge = 40;
  SchedEntry b = entry(2, kPriorityBatch, 0);
  b.memory_charge = 40;
  must_admit(*p, a, {});
  SchedulerLoad load;
  load.admitted_memory_bytes = 40;
  must_admit(*p, b, load);
  // An interactive arrival needing 90 bytes must displace both batch jobs.
  SchedEntry big = entry(3, kPriorityInteractive, 0);
  big.memory_charge = 90;
  load.admitted_memory_bytes = 80;
  const AdmitDecision d = p->admit(big, load);
  ASSERT_TRUE(d.admitted);
  EXPECT_EQ(d.evicted.size(), 2u);
  EXPECT_EQ(p->queued(), 1u);
}

// --- drain-rate estimator ---------------------------------------------------

TEST(DrainRate, SeedIntervalBeforeAnyObservation) {
  DrainRateEstimator est(0.05);
  EXPECT_DOUBLE_EQ(est.interval_seconds(), 0.05);
  // Backlog of 4 across 2 workers: 1 + 4/2 = 3 drain rounds.
  EXPECT_DOUBLE_EQ(est.retry_after_seconds(4, 2), 0.05 * 3.0);
}

TEST(DrainRate, ConvergesTowardObservedGap) {
  DrainRateEstimator est(0.05);
  std::int64_t now = 0;
  est.record_terminal(now);
  for (int i = 0; i < 40; ++i) {
    now += 10'000;  // a terminal every 10 ms
    est.record_terminal(now);
  }
  EXPECT_NEAR(est.interval_seconds(), 0.010, 0.002);
}

TEST(DrainRate, WedgedServiceRaisesTheHint) {
  DrainRateEstimator est(0.05);
  est.record_terminal(0);
  est.record_terminal(10 * kSecond);  // one 10 s gap
  EXPECT_GT(est.interval_seconds(), 1.0);
  EXPECT_GT(est.retry_after_seconds(0, 2), 1.0);
}

TEST(DrainRate, HintIsClampedAt300Seconds) {
  DrainRateEstimator est(200.0);
  EXPECT_DOUBLE_EQ(est.retry_after_seconds(100, 1), 300.0);
}

TEST(DrainRate, NonPositiveSeedFallsBackToDefault) {
  DrainRateEstimator est(0.0);
  EXPECT_GT(est.interval_seconds(), 0.0);
}

// --- service integration: quotas + retry-after on a paused service ----------

service::SolveRequest tiny_request(const std::string& tenant, int priority) {
  service::SolveRequest req;
  req.label = "tiny";
  req.workload = workloads::fig9_case();
  req.required_gain = 1000;
  req.tenant = tenant;
  req.priority = priority;
  return req;
}

TEST(ServiceScheduling, PerTenantQuotaRejectsOnlyTheOverQuotaTenant) {
  support::FakeClock clock;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_live_per_tenant = 1;
  cfg.start_paused = true;
  cfg.clock = &clock;
  SolveService svc(cfg);

  const SubmitOutcome a1 = svc.submit(tiny_request("alice", kPriorityStandard));
  ASSERT_TRUE(a1.admitted());
  const SubmitOutcome a2 = svc.submit(tiny_request("alice", kPriorityStandard));
  EXPECT_FALSE(a2.admitted());
  EXPECT_GT(a2.retry_after_seconds, 0.0);
  EXPECT_NE(a2.reject_reason.find("tenant"), std::string::npos);
  // The quota is per tenant: bob is unaffected.
  const SubmitOutcome b1 = svc.submit(tiny_request("bob", kPriorityStandard));
  EXPECT_TRUE(b1.admitted());

  svc.resume();
  EXPECT_EQ(svc.wait(a1.ticket()).state, RequestState::kCompleted);
  EXPECT_EQ(svc.wait(a2.ticket()).state, RequestState::kRejected);
  EXPECT_EQ(svc.wait(b1.ticket()).state, RequestState::kCompleted);
  // alice's slot freed: she may submit again.
  const SubmitOutcome a3 = svc.submit(tiny_request("alice", kPriorityStandard));
  EXPECT_TRUE(a3.admitted());
  EXPECT_EQ(svc.wait(a3.ticket()).state, RequestState::kCompleted);
}

TEST(ServiceScheduling, RejecterServiceShedsQueuedBatchForInteractive) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.policy = "rejecter";
  cfg.max_queue_depth = 1;
  cfg.start_paused = true;
  SolveService svc(cfg);

  const SubmitOutcome batch = svc.submit(tiny_request("t", kPriorityBatch));
  ASSERT_TRUE(batch.admitted());
  const SubmitOutcome inter = svc.submit(tiny_request("t", kPriorityInteractive));
  ASSERT_TRUE(inter.admitted());
  // The queued batch request was evicted to terminal kRejected.
  const SolveResponse shed = svc.wait(batch.ticket());
  EXPECT_EQ(shed.state, RequestState::kRejected);
  EXPECT_GT(shed.retry_after_seconds, 0.0);
  EXPECT_EQ(svc.stats().evicted, 1u);

  svc.resume();
  EXPECT_EQ(svc.wait(inter.ticket()).state, RequestState::kCompleted);
  EXPECT_EQ(svc.scheduler_stats().evicted, 1u);
}

TEST(ServiceScheduling, PolicyNameAndStatsAreExposed) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.policy = "edf";
  SolveService svc(cfg);
  EXPECT_STREQ(svc.policy_name(), "edf");
  const SubmitOutcome t = svc.submit(tiny_request("", kPriorityStandard));
  ASSERT_TRUE(t.admitted());
  EXPECT_EQ(svc.wait(t.ticket()).state, RequestState::kCompleted);
  const PolicyStats ps = svc.scheduler_stats();
  EXPECT_EQ(ps.name, "edf");
  EXPECT_EQ(ps.admitted, 1u);
  EXPECT_EQ(ps.picked, 1u);
}

}  // namespace
}  // namespace partita::service

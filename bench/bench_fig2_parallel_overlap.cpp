// Fig. 2: parallel execution of the kernel and an IP. The figure's claim is
// that buffered interfaces overlap kernel code with the IP run, shortening
// the total schedule by MIN(T_IP, T_C). We regenerate the series two ways:
//
//   analytic -- the Section 3 timing model (interface_timing), sweeping the
//               parallel-code length T_C for a fixed IP;
//   simulated -- the cycle-level co-simulator executing a one-s-call
//               application with exactly that much independent trailing code.
//
// The two series must coincide, and the no-overlap interfaces (type 0/2)
// must stay flat.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "frontend/parser.hpp"
#include "iplib/loader.hpp"
#include "sim/cosim.hpp"
#include "support/text_table.hpp"

namespace {

using namespace partita;

constexpr std::int64_t kTip = 6000;

workloads::Workload make_case(std::int64_t pc_cycles) {
  char kl[512];
  std::snprintf(kl, sizeof kl, R"(
module fig2;
func fir scall sw_cycles 20000;
func main {
  seg pre 100 writes(a);
  call fir reads(a) writes(x);
  seg pc_material %lld reads(a) writes(z);
  seg post 100 reads(x, z);
}
)",
                static_cast<long long>(pc_cycles));
  const char* lib = R"(
ip FIR_IP {
  area 8
  ports in 4 out 4
  rate in 1 out 1
  latency 16
  pipelined
  protocol sync
  fn fir cycles 6000 in 64 out 64
}
)";
  support::DiagnosticEngine diags;
  auto m = frontend::parse_module(kl, diags);
  auto l = iplib::load_library(lib, diags);
  if (!m || !l) {
    std::fprintf(stderr, "fig2 case failed to build:\n%s", diags.render_all().c_str());
    std::abort();
  }
  return {"fig2", std::move(*m), std::move(*l)};
}

void BM_Fig2_SimulatedRun(benchmark::State& state) {
  workloads::Workload w = make_case(state.range(0));
  select::Flow flow(w.module, w.library);
  sim::CoSimulator cosim(w.module, w.library, flow.imp_database(), flow.entry_cdfg(),
                         flow.paths());
  const select::Selection sel = flow.select(flow.max_feasible_gain());
  support::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cosim.run(&sel, rng).total_cycles);
  }
}
BENCHMARK(BM_Fig2_SimulatedRun)->Arg(0)->Arg(2000)->Arg(8000)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Fig. 2: overlap of kernel (parallel code) and IP execution ===\n");
  std::printf("fixed IP: T_IP = %lld cycles; buffered interface (type 3)\n\n",
              static_cast<long long>(kTip));

  support::TextTable table({"T_C (parallel code)", "analytic total", "simulated total",
                            "overlap credit", "expected MIN(T_IP, T_C)"});
  table.set_alignment({support::Align::kRight, support::Align::kRight,
                       support::Align::kRight, support::Align::kRight,
                       support::Align::kRight});

  bool all_match = true;
  for (std::int64_t tc : {0, 1000, 2000, 4000, 6000, 8000, 12000}) {
    workloads::Workload w = make_case(tc);
    select::Flow flow(w.module, w.library);
    sim::CoSimulator cosim(w.module, w.library, flow.imp_database(), flow.entry_cdfg(),
                           flow.paths());

    // Pick the best buffered IMP (the selector will, at max gain).
    const select::Selection sel = flow.select(flow.max_feasible_gain());
    const isel::Imp& imp = flow.imp_database().imps()[sel.chosen.at(0)];

    support::Rng r1(1), r2(1);
    const std::int64_t sim_sw = cosim.run(nullptr, r1).total_cycles;
    const sim::SimResult hw = cosim.run(&sel, r2);
    const std::int64_t analytic_total = sim_sw - sel.min_path_gain;
    const std::int64_t expected_credit = std::min<std::int64_t>(kTip, tc);

    table.add_row({std::to_string(tc), std::to_string(analytic_total),
                   std::to_string(hw.total_cycles), std::to_string(hw.overlap_cycles),
                   std::to_string(expected_credit)});
    all_match &= analytic_total == hw.total_cycles && hw.overlap_cycles == expected_credit;
    (void)imp;
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nanalytic model %s the cycle-level simulation\n\n",
              all_match ? "MATCHES" : "DIVERGES FROM");

  return bench::finish_benchmarks(argc, argv);
}

// Machine / build provenance for benchmark JSON records.
//
// Every bench JSON record carries a `partita-bench-v1` schema tag plus the
// machine metadata needed to interpret a number a month later: git SHA, CPU
// model, core count and the compiler flags the binary was built with. The
// perf trajectory (BENCH_<date>.json files at the repo root) is only
// comparable when this block says the runs are.
#pragma once

#include <string>

namespace partita::bench {

/// Schema tag stamped into every bench JSON record.
inline constexpr const char* kBenchSchema = "partita-bench-v1";

struct MachineMeta {
  std::string schema = kBenchSchema;
  std::string git_sha;     // "unknown" outside a git checkout
  std::string cpu_model;   // /proc/cpuinfo model name; "unknown" elsewhere
  int cores = 0;           // std::thread::hardware_concurrency
  std::string build_type;  // CMAKE_BUILD_TYPE
  std::string build_flags; // compiler id + CXX flags
  std::string date;        // ISO-8601 UTC date of the run
};

/// Collects the metadata once (runs `git rev-parse`, reads /proc/cpuinfo).
MachineMeta collect_machine_meta();

/// Renders the block as a JSON object (no trailing newline).
std::string meta_json(const MachineMeta& meta);

}  // namespace partita::bench

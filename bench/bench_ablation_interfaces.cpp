// Ablation C: value of the interface repertoire. The GSM encoder selection
// re-runs with the allowed interface set restricted:
//
//   type-0 only          -- software, unbuffered (the cheapest);
//   unbuffered (0+2)     -- adds the hardware FSM but no buffers;
//   software (0+1)       -- adds buffers but no FSMs;
//   all four             -- the paper's full repertoire.
//
// Reported: top reachable gain and area at matched RG. Expected shape: each
// extension weakly raises the reachable gain; the full set needs the least
// area at any common RG.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "support/strings.hpp"
#include "support/text_table.hpp"

namespace {

using namespace partita;

struct Variant {
  const char* name;
  std::vector<iface::InterfaceType> allowed;
};

const std::vector<Variant>& variants() {
  using IT = iface::InterfaceType;
  static const std::vector<Variant> v = {
      {"type-0 only", {IT::kType0}},
      {"unbuffered (0+2)", {IT::kType0, IT::kType2}},
      {"software (0+1)", {IT::kType0, IT::kType1}},
      {"all four", {IT::kType0, IT::kType1, IT::kType2, IT::kType3}},
  };
  return v;
}

void report(const workloads::Workload& w) {
  std::printf("--- %s ---\n", w.name.c_str());

  // Common comparison RG: half of the most-restricted variant's max.
  std::vector<std::unique_ptr<select::Flow>> flows;
  std::vector<std::int64_t> maxima;
  for (const Variant& v : variants()) {
    isel::EnumerateOptions opts;
    opts.allowed_types = v.allowed;
    flows.push_back(std::make_unique<select::Flow>(w.module, w.library, opts));
    maxima.push_back(flows.back()->max_feasible_gain());
  }
  const std::int64_t common_rg = maxima[0] / 2;

  support::TextTable t({"interface set", "max gain", "area @ common RG", "IMPs"});
  t.set_alignment({support::Align::kLeft, support::Align::kRight, support::Align::kRight,
                   support::Align::kRight});
  for (std::size_t i = 0; i < variants().size(); ++i) {
    const select::Selection sel = flows[i]->select(common_rg);
    t.add_row({variants()[i].name, support::with_commas(maxima[i]),
               sel.feasible ? support::compact_double(sel.total_area())
                            : std::string("infeas"),
               std::to_string(flows[i]->imp_database().imps().size())});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("(common RG = %s)\n\n", support::with_commas(common_rg).c_str());
}

void BM_Interfaces_FullRepertoire(benchmark::State& state) {
  workloads::Workload w = workloads::gsm_encoder();
  for (auto _ : state) {
    select::Flow flow(w.module, w.library);
    benchmark::DoNotOptimize(flow.max_feasible_gain());
  }
}
BENCHMARK(BM_Interfaces_FullRepertoire)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Ablation C: interface-type repertoire ===\n\n");
  report(workloads::gsm_encoder());
  report(workloads::gsm_decoder());
  report(workloads::jpeg_encoder());

  return bench::finish_benchmarks(argc, argv);
}

// Solver bench: scaling of the from-scratch LP/ILP machinery on random
// selection instances (the paper solved its ILPs with an unspecified solver
// on a SPARC-20; this documents that our reproduction's solver is not the
// bottleneck at the paper's problem sizes and beyond), plus a warm-started +
// presolved vs cold ablation of the branch & bound on the seed workloads.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "ilp/branch_bound.hpp"
#include "ilp/simplex.hpp"
#include "support/text_table.hpp"
#include "workloads/random_workload.hpp"

namespace {

using namespace partita;

workloads::Workload sized_workload(int sites, std::uint64_t seed) {
  workloads::RandomWorkloadParams p;
  p.call_sites = sites;
  p.leaf_functions = std::max(3, sites / 3);
  p.ips = std::max(4, sites / 2);
  return workloads::random_workload(p, seed);
}

void BM_SelectScaling(benchmark::State& state) {
  workloads::Workload w = sized_workload(static_cast<int>(state.range(0)), 1234);
  select::Flow flow(w.module, w.library);
  const std::int64_t gmax = flow.max_feasible_gain();
  const std::int64_t rg = gmax / 2;
  select::Selection last;
  for (auto _ : state) {
    last = flow.select(rg);
    benchmark::DoNotOptimize(last.feasible);
  }
  state.counters["imps"] = static_cast<double>(flow.imp_database().imps().size());
  bench::set_solver_counters(state, last);
}
BENCHMARK(BM_SelectScaling)->Arg(6)->Arg(12)->Arg(24)->Arg(48)->Unit(benchmark::kMillisecond);

void BM_LpRelaxation(benchmark::State& state) {
  workloads::Workload w = sized_workload(static_cast<int>(state.range(0)), 77);
  select::Flow flow(w.module, w.library);
  const ilp::Model m = flow.selector().build_model(
      std::vector<std::int64_t>(flow.paths().size(), 1), {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ilp::solve_lp(m).objective);
  }
  state.counters["vars"] = static_cast<double>(m.var_count());
  state.counters["rows"] = static_cast<double>(m.row_count());
}
BENCHMARK(BM_LpRelaxation)->Arg(12)->Arg(24)->Arg(48)->Unit(benchmark::kMicrosecond);

void BM_MaxFeasibleGain(benchmark::State& state) {
  workloads::Workload w = sized_workload(static_cast<int>(state.range(0)), 5);
  select::Flow flow(w.module, w.library);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow.max_feasible_gain());
  }
}
BENCHMARK(BM_MaxFeasibleGain)->Arg(12)->Arg(24)->Unit(benchmark::kMillisecond);

// --- warm+presolve vs cold ablation ----------------------------------------

ilp::IlpOptions cold_options() {
  ilp::IlpOptions o;
  o.presolve = false;
  o.warm_start = false;
  return o;
}

void BM_IlpWarmPresolve(benchmark::State& state) {
  workloads::Workload w = sized_workload(static_cast<int>(state.range(0)), 99);
  select::Flow flow(w.module, w.library);
  const std::int64_t rg = flow.max_feasible_gain() / 2;
  const bool cold = state.range(1) != 0;
  select::SelectOptions opt;
  if (cold) opt.ilp = cold_options();
  select::Selection last;
  for (auto _ : state) {
    last = flow.select(rg, opt);
    benchmark::DoNotOptimize(last.feasible);
  }
  state.SetLabel(cold ? "cold" : "warm+presolve");
  bench::set_solver_counters(state, last);
}
// The 48-site instance runs once and only warm: each of its ~65 node LPs
// has 3000+ rows, so the cold configuration (full phase 1 + 2 per node,
// measured in the tens of minutes) is exactly the regime warm-starting
// exists to avoid and would dominate the whole bench binary.
BENCHMARK(BM_IlpWarmPresolve)
    ->Args({24, 0})
    ->Args({24, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IlpWarmPresolve)
    ->Args({48, 0})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

/// Runs every seed workload with the full machinery and with a cold solver
/// (no warm starts, no presolve) and prints the paper-style ablation: the
/// optima must agree, the LP-iteration ratio is the payoff.
void print_warm_vs_cold_table() {
  support::TextTable t({"workload", "RG", "area", "LP iters (cold)",
                        "LP iters (warm+presolve)", "ratio", "warm hit"});
  t.set_alignment({support::Align::kLeft, support::Align::kRight, support::Align::kRight,
                   support::Align::kRight, support::Align::kRight,
                   support::Align::kRight, support::Align::kRight});
  long total_cold = 0, total_warm = 0;
  for (workloads::Workload (*make)() :
       {workloads::gsm_encoder, workloads::gsm_decoder, workloads::jpeg_encoder,
        workloads::fig9_case, workloads::fig10_case, workloads::adpcm_codec}) {
    workloads::Workload w = make();
    select::Flow flow(w.module, w.library);
    const std::int64_t rg = flow.max_feasible_gain() / 2;
    select::SelectOptions cold_opt;
    cold_opt.ilp = cold_options();
    const select::Selection warm = flow.select(rg);
    const select::Selection cold = flow.select(rg, cold_opt);
    const bool same = warm.feasible == cold.feasible &&
                      std::abs(warm.total_area() - cold.total_area()) < 1e-6;
    char ratio[32], hit[32];
    std::snprintf(ratio, sizeof ratio, "%.1fx",
                  static_cast<double>(cold.solver.lp_iterations) /
                      std::max(1, warm.solver.lp_iterations));
    std::snprintf(hit, sizeof hit, "%.0f%%", warm.solver.warm_start_hit_rate() * 100.0);
    char area[32];
    std::snprintf(area, sizeof area, "%.2f%s", warm.total_area(),
                  same ? "" : " (MISMATCH!)");
    t.add_row({w.name, std::to_string(rg), area,
               std::to_string(cold.solver.lp_iterations),
               std::to_string(warm.solver.lp_iterations), ratio, hit});
    total_cold += cold.solver.lp_iterations;
    total_warm += warm.solver.lp_iterations;
  }
  char total_ratio[32];
  std::snprintf(total_ratio, sizeof total_ratio, "%.1fx",
                static_cast<double>(total_cold) / std::max(1L, total_warm));
  t.add_row({"TOTAL", "", "", std::to_string(total_cold), std::to_string(total_warm),
             total_ratio, ""});
  std::printf("%s\n", t.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Solver scaling on random IP-selection instances ===\n");
  std::printf("(paper-scale problems: 18 s-calls / 42 IMPs; swept to ~4x that)\n\n");
  std::printf("--- warm-started + presolved B&B vs cold solves (seed workloads) ---\n");
  print_warm_vs_cold_table();
  return bench::finish_benchmarks(argc, argv);
}

// Solver bench: scaling of the from-scratch LP/ILP machinery on random
// selection instances (the paper solved its ILPs with an unspecified solver
// on a SPARC-20; this documents that our reproduction's solver is not the
// bottleneck at the paper's problem sizes and beyond).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "ilp/branch_bound.hpp"
#include "ilp/simplex.hpp"
#include "workloads/random_workload.hpp"

namespace {

using namespace partita;

workloads::Workload sized_workload(int sites, std::uint64_t seed) {
  workloads::RandomWorkloadParams p;
  p.call_sites = sites;
  p.leaf_functions = std::max(3, sites / 3);
  p.ips = std::max(4, sites / 2);
  return workloads::random_workload(p, seed);
}

void BM_SelectScaling(benchmark::State& state) {
  workloads::Workload w = sized_workload(static_cast<int>(state.range(0)), 1234);
  select::Flow flow(w.module, w.library);
  const std::int64_t gmax = flow.max_feasible_gain();
  const std::int64_t rg = gmax / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow.select(rg).feasible);
  }
  state.counters["imps"] = static_cast<double>(flow.imp_database().imps().size());
}
BENCHMARK(BM_SelectScaling)->Arg(6)->Arg(12)->Arg(24)->Arg(48)->Unit(benchmark::kMillisecond);

void BM_LpRelaxation(benchmark::State& state) {
  workloads::Workload w = sized_workload(static_cast<int>(state.range(0)), 77);
  select::Flow flow(w.module, w.library);
  const ilp::Model m = flow.selector().build_model(
      std::vector<std::int64_t>(flow.paths().size(), 1), {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ilp::solve_lp(m).objective);
  }
  state.counters["vars"] = static_cast<double>(m.var_count());
  state.counters["rows"] = static_cast<double>(m.row_count());
}
BENCHMARK(BM_LpRelaxation)->Arg(12)->Arg(24)->Arg(48)->Unit(benchmark::kMicrosecond);

void BM_MaxFeasibleGain(benchmark::State& state) {
  workloads::Workload w = sized_workload(static_cast<int>(state.range(0)), 5);
  select::Flow flow(w.module, w.library);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow.max_feasible_gain());
  }
}
BENCHMARK(BM_MaxFeasibleGain)->Arg(12)->Arg(24)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Solver scaling on random IP-selection instances ===\n");
  std::printf("(paper-scale problems: 18 s-calls / 42 IMPs; swept to ~4x that)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

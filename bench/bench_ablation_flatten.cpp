// Ablation E: value of IMP flattening (the paper's hierarchy handling,
// Fig. 11). The JPEG encoder re-runs with the flattening depth capped:
//
//   depth 0 -- only IPs that implement a top-level callee directly are
//              usable (the 2D-DCT block alone);
//   depth 1..3 -- progressively deeper lifting (1D-DCT, FFT, C-MUL);
//   unlimited -- the paper's "IMP flatten".
//
// Reported per cap: IMP count, max reachable gain, and the area needed at a
// low common RG. Expected shape: without flattening the cheap deep-level
// IPs are unreachable, so low requirements already cost the full 2D-DCT
// block's area.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "support/strings.hpp"
#include "support/text_table.hpp"

namespace {

using namespace partita;

void report(const workloads::Workload& w) {
  std::printf("--- %s ---\n", w.name.c_str());

  std::vector<std::unique_ptr<select::Flow>> flows;
  std::vector<std::int64_t> maxima;
  const int caps[] = {0, 1, 2, 3, 6};
  for (int cap : caps) {
    isel::EnumerateOptions opts;
    opts.max_flatten_depth = cap;
    flows.push_back(std::make_unique<select::Flow>(w.module, w.library, opts));
    maxima.push_back(flows.back()->max_feasible_gain());
  }
  // Common RG: a third of the *unflattened* maximum -- reachable everywhere.
  const std::int64_t common_rg = maxima[0] / 3;

  support::TextTable t({"flatten depth", "IMPs", "max gain", "area @ common RG"});
  t.set_alignment({support::Align::kLeft, support::Align::kRight, support::Align::kRight,
                   support::Align::kRight});
  for (std::size_t i = 0; i < std::size(caps); ++i) {
    const select::Selection sel = flows[i]->select(common_rg);
    t.add_row({caps[i] == 6 ? std::string("unlimited") : std::to_string(caps[i]),
               std::to_string(flows[i]->imp_database().imps().size()),
               support::with_commas(maxima[i]),
               sel.feasible ? support::compact_double(sel.total_area())
                            : std::string("infeas")});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("(common RG = %s)\n\n", support::with_commas(common_rg).c_str());
}

void BM_Flatten_FullDepthEnumeration(benchmark::State& state) {
  workloads::Workload w = workloads::jpeg_encoder();
  for (auto _ : state) {
    select::Flow flow(w.module, w.library);
    benchmark::DoNotOptimize(flow.imp_database().imps().size());
  }
}
BENCHMARK(BM_Flatten_FullDepthEnumeration)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Ablation E: IMP flattening depth (hierarchy handling) ===\n\n");
  report(workloads::jpeg_encoder());

  return bench::finish_benchmarks(argc, argv);
}

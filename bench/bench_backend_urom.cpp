// Back-end bench: instruction encoding and u-ROM optimization for the
// generated ASIP (Section 2's final step). For each paper workload at 60% of
// its top gain, reports the instruction-class mix, the Huffman-vs-fixed
// opcode width, and the u-ROM bits before/after two-level optimization.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "report/chip_report.hpp"
#include "support/strings.hpp"
#include "support/text_table.hpp"

namespace {

using namespace partita;

void report_row(support::TextTable& t, const workloads::Workload& w) {
  select::Flow flow(w.module, w.library);
  const select::Selection sel = flow.select(flow.max_feasible_gain() * 3 / 5);
  if (!sel.feasible) {
    t.add_row({w.name, "-", "-", "-", "-", "-", "-"});
    return;
  }
  const report::ChipReport rep = report::generate_report(flow, sel);
  t.add_row({w.name,
             std::to_string(rep.isa.count_of(ucode::InstrClass::kP)) + "/" +
                 std::to_string(rep.isa.count_of(ucode::InstrClass::kC)) + "/" +
                 std::to_string(rep.isa.count_of(ucode::InstrClass::kS)),
             std::to_string(rep.isa.fixed_opcode_bits()),
             support::compact_double(rep.expected_opcode_bits),
             support::with_commas(rep.urom.raw_bits),
             support::with_commas(rep.urom.optimized_bits),
             support::compact_double(rep.urom.compression_ratio())});
}

void BM_Backend_GenerateReport(benchmark::State& state) {
  workloads::Workload w = workloads::gsm_encoder();
  select::Flow flow(w.module, w.library);
  const select::Selection sel = flow.select(flow.max_feasible_gain() * 3 / 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(report::generate_report(flow, sel).total_area);
  }
}
BENCHMARK(BM_Backend_GenerateReport)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Back-end: instruction encoding + u-ROM optimization ===\n\n");
  support::TextTable t({"workload", "P/C/S", "fixed bits", "huffman bits", "uROM raw bits",
                        "uROM opt bits", "ratio"});
  t.set_alignment({support::Align::kLeft, support::Align::kRight, support::Align::kRight,
                   support::Align::kRight, support::Align::kRight, support::Align::kRight,
                   support::Align::kRight});
  report_row(t, workloads::gsm_encoder());
  report_row(t, workloads::gsm_decoder());
  report_row(t, workloads::jpeg_encoder());
  std::fputs(t.render().c_str(), stdout);
  std::printf("\n");

  return bench::finish_benchmarks(argc, argv);
}

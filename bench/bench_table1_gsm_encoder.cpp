// Table 1: GSM(TDMA) encoder -- selected s-calls and implementation methods
// as the required gain RG sweeps k/8 * Gmax, k = 1..8 (the paper's eight
// rows step 47,740 ~= Gmax/8 with Gmax = 381,923).
//
// Expected shape versus the paper (absolute numbers differ -- synthetic
// substrate, see DESIGN.md):
//  * the cheapest type-0 interface dominates low-RG rows;
//  * s-calls sharing one IP merge into fewer S-instructions (S <= O);
//  * as RG grows, bigger IPs and buffered interfaces (type 1/3) appear, and
//    the top row exploits parallel execution.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench_util.hpp"

namespace {

using namespace partita;

struct Context {
  workloads::Workload w = workloads::gsm_encoder();
  select::Flow flow{w.module, w.library};
  std::int64_t gmax = flow.max_feasible_gain();
};

Context& ctx() {
  static Context c;
  return c;
}

void BM_Table1_SelectAtRg(benchmark::State& state) {
  Context& c = ctx();
  const std::int64_t rg = c.gmax * state.range(0) / 8;
  for (auto _ : state) {
    select::Selection sel = c.flow.select(rg);
    benchmark::DoNotOptimize(sel.min_path_gain);
  }
  state.counters["RG"] = static_cast<double>(rg);
}
BENCHMARK(BM_Table1_SelectAtRg)->DenseRange(1, 8)->Unit(benchmark::kMillisecond);

void BM_Table1_MaxFeasibleGain(benchmark::State& state) {
  Context& c = ctx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.flow.max_feasible_gain());
  }
}
BENCHMARK(BM_Table1_MaxFeasibleGain)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  Context& c = ctx();
  bench::print_experiment_header("Table 1: GSM encoder, optimal IP/interface selection",
                                 c.w, c.flow);
  std::printf("max feasible gain (Gmax): %lld\n\n", static_cast<long long>(c.gmax));
  const auto rows = bench::run_sweep(c.flow, bench::rg_ladder(c.gmax, 8));
  std::fputs(bench::render_paper_table(c.flow, rows, c.w.library).c_str(), stdout);
  std::fputs("\n", stdout);

  return bench::finish_benchmarks(argc, argv);
}

// B&B throughput scaling: sweeps synthetic selection-instance sizes and
// reports nodes/sec and LP-iterations/sec of the branch & bound core, plus
// the single-threaded vs multi-threaded wave search. Complements
// bench_ilp_solver (which times whole selection calls): this bench isolates
// the solver loop on a pre-built model so the rates are directly
// comparable across sizes and thread counts.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "ilp/branch_bound.hpp"
#include "workloads/random_workload.hpp"

namespace {

using namespace partita;

workloads::Workload sized_workload(int sites, std::uint64_t seed) {
  workloads::RandomWorkloadParams p;
  p.call_sites = sites;
  p.leaf_functions = std::max(3, sites / 3);
  p.ips = std::max(4, sites / 2);
  return workloads::random_workload(p, seed);
}

/// One solve of the mid-ladder selection ILP at the given size; publishes
/// node and LP-iteration throughput as rate counters.
void BM_BranchBoundThroughput(benchmark::State& state) {
  workloads::Workload w = sized_workload(static_cast<int>(state.range(0)), 4242);
  select::Flow flow(w.module, w.library);
  const std::int64_t rg = flow.max_feasible_gain() / 2;
  const ilp::Model m = flow.selector().build_model(
      std::vector<std::int64_t>(flow.paths().size(), rg), {});

  std::int64_t nodes = 0, lp_iters = 0;
  for (auto _ : state) {
    const ilp::IlpResult r = ilp::solve_ilp(m);
    benchmark::DoNotOptimize(r.objective);
    nodes += r.stats.nodes;
    lp_iters += r.stats.lp_iterations;
  }
  state.counters["vars"] = static_cast<double>(m.var_count());
  state.counters["rows"] = static_cast<double>(m.row_count());
  state.counters["nodes_per_sec"] =
      benchmark::Counter(static_cast<double>(nodes), benchmark::Counter::kIsRate);
  state.counters["lp_iters_per_sec"] =
      benchmark::Counter(static_cast<double>(lp_iters), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BranchBoundThroughput)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

/// Same instance, swept over worker-thread counts (the wave search must
/// return identical optima; see solver_determinism_test).
void BM_BranchBoundThreads(benchmark::State& state) {
  workloads::Workload w = sized_workload(48, 4242);
  select::Flow flow(w.module, w.library);
  const std::int64_t rg = flow.max_feasible_gain() / 2;
  const ilp::Model m = flow.selector().build_model(
      std::vector<std::int64_t>(flow.paths().size(), rg), {});
  ilp::IlpOptions opt;
  opt.threads = static_cast<int>(state.range(0));

  std::int64_t nodes = 0, lp_iters = 0;
  for (auto _ : state) {
    const ilp::IlpResult r = ilp::solve_ilp(m, opt);
    benchmark::DoNotOptimize(r.objective);
    nodes += r.stats.nodes;
    lp_iters += r.stats.lp_iterations;
  }
  state.counters["nodes_per_sec"] =
      benchmark::Counter(static_cast<double>(nodes), benchmark::Counter::kIsRate);
  state.counters["lp_iters_per_sec"] =
      benchmark::Counter(static_cast<double>(lp_iters), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BranchBoundThreads)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Branch & bound throughput on synthetic selection ILPs ===\n");
  std::printf("(rates are nodes/sec and simplex-iterations/sec of the search loop)\n\n");
  return bench::finish_benchmarks(argc, argv);
}

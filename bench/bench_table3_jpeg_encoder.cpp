// Table 3: JPEG encoder -- the hierarchy experiment. The paper sweeps five
// RG points (roughly 32%, 54%, 98%, 98.5% and 100% of the top gain) and
// watches the chosen IP climb the 2D-DCT > 1D-DCT > FFT > C-MUL hierarchy:
//
//   RG 12.1M -> C-MUL IP through the flattened IMP (cheap, area 4);
//   RG 20.2M -> 1D-DCT IP with a buffered interface;
//   RG 37.2M -> 1D-DCT + zig-zag (IF2, asymmetric rates);
//   RG 37.3M -> full 2D-DCT block;
//   RG 37.8M -> 2D-DCT on IF3 with parallel code + zig-zag.
//
// We reproduce the same fractions of our Gmax and print the ladder.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace partita;

struct Context {
  workloads::Workload w = workloads::jpeg_encoder();
  select::Flow flow{w.module, w.library};
  std::int64_t gmax = flow.max_feasible_gain();
};

Context& ctx() {
  static Context c;
  return c;
}

std::vector<std::int64_t> table3_rgs(std::int64_t gmax) {
  // Five RG points patterned on the paper's Table 3 fractions of Gmax
  // (12.1M / 20.3M / 37.2M / 37.3M / 37.8M of 37,843,700). The third point
  // sits where the 1D-DCT level is the cheapest feasible choice in our
  // calibration (84%; the authors' IPs put it at 98%).
  return {
      static_cast<std::int64_t>(gmax * 0.321), static_cast<std::int64_t>(gmax * 0.535),
      static_cast<std::int64_t>(gmax * 0.84), static_cast<std::int64_t>(gmax * 0.985),
      gmax};
}

void BM_Table3_SelectAtRg(benchmark::State& state) {
  Context& c = ctx();
  const std::int64_t rg = table3_rgs(c.gmax)[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    select::Selection sel = c.flow.select(rg);
    benchmark::DoNotOptimize(sel.min_path_gain);
  }
  state.counters["RG"] = static_cast<double>(rg);
}
BENCHMARK(BM_Table3_SelectAtRg)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

void BM_Table3_ImpFlattening(benchmark::State& state) {
  // Cost of building the IMP database including the hierarchy flattening.
  Context& c = ctx();
  for (auto _ : state) {
    select::Flow flow(c.w.module, c.w.library);
    benchmark::DoNotOptimize(flow.imp_database().imps().size());
  }
}
BENCHMARK(BM_Table3_ImpFlattening)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  Context& c = ctx();
  bench::print_experiment_header(
      "Table 3: JPEG encoder, hierarchy (2D-DCT > 1D-DCT > FFT > C-MUL)", c.w, c.flow);
  std::printf("max feasible gain (Gmax): %lld\n\n", static_cast<long long>(c.gmax));
  const auto rows = bench::run_sweep(c.flow, table3_rgs(c.gmax));
  std::fputs(bench::render_paper_table(c.flow, rows, c.w.library).c_str(), stdout);

  std::printf("\nhierarchy level chosen for the dct2d s-call per row:");
  for (const bench::SweepRow& row : rows) {
    const char* level = "sw";
    if (row.selection.feasible) {
      for (isel::ImpIndex idx : row.selection.chosen) {
        const isel::Imp& imp = c.flow.imp_database().imps()[idx];
        const isel::SCall* sc = c.flow.imp_database().scall_of(imp.scall);
        if (sc && sc->callee_name == "dct2d") level = imp.ip_function->function.c_str();
      }
    }
    std::printf(" %s", level);
  }
  std::printf("   (expect the ladder cmul/fft -> dct1d -> dct2d)\n\n");

  return bench::finish_benchmarks(argc, argv);
}

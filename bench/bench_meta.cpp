#include "bench_meta.hpp"

#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>
#include <thread>

namespace partita::bench {

namespace {

std::string run_command(const char* cmd) {
  std::string out;
  FILE* pipe = ::popen(cmd, "r");
  if (pipe == nullptr) return out;
  char buf[256];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
  ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) out.pop_back();
  return out;
}

std::string cpu_model_name() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    const auto pos = line.find("model name");
    if (pos == std::string::npos) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) break;
    auto start = line.find_first_not_of(" \t", colon + 1);
    if (start == std::string::npos) break;
    return line.substr(start);
  }
  return "unknown";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }
  }
  return out;
}

}  // namespace

MachineMeta collect_machine_meta() {
  MachineMeta m;
  m.git_sha = run_command("git rev-parse --short HEAD 2>/dev/null");
  if (m.git_sha.empty()) m.git_sha = "unknown";
  m.cpu_model = cpu_model_name();
  m.cores = static_cast<int>(std::thread::hardware_concurrency());
#ifdef PARTITA_BUILD_TYPE
  m.build_type = PARTITA_BUILD_TYPE;
#endif
#ifdef PARTITA_BUILD_FLAGS
  m.build_flags = PARTITA_BUILD_FLAGS;
#endif
  std::time_t now = std::time(nullptr);
  char buf[32];
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  std::strftime(buf, sizeof(buf), "%Y-%m-%d", &tm_utc);
  m.date = buf;
  return m;
}

std::string meta_json(const MachineMeta& m) {
  std::ostringstream os;
  os << "{\"schema\": \"" << json_escape(m.schema) << "\", \"git_sha\": \""
     << json_escape(m.git_sha) << "\", \"cpu_model\": \"" << json_escape(m.cpu_model)
     << "\", \"cores\": " << m.cores << ", \"build_type\": \""
     << json_escape(m.build_type) << "\", \"build_flags\": \""
     << json_escape(m.build_flags) << "\", \"date\": \"" << json_escape(m.date)
     << "\"}";
  return os.str();
}

}  // namespace partita::bench

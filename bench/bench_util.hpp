// Shared helpers for the benchmark harness: paper-style table printing for
// RG sweeps and a common custom main that prints the table before handing
// control to google-benchmark.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "select/flow.hpp"
#include "workloads/workloads.hpp"

namespace partita::bench {

/// One row of a Table 1/2/3-style sweep.
struct SweepRow {
  std::int64_t rg = 0;
  select::Selection selection;
};

/// Runs the optimal selection for each required gain.
std::vector<SweepRow> run_sweep(const select::Flow& flow,
                                const std::vector<std::int64_t>& rgs,
                                const select::SelectOptions& opt = {});

/// The paper's RG ladder: k/steps * gmax for k = 1..steps.
std::vector<std::int64_t> rg_ladder(std::int64_t gmax, int steps);

/// Renders the sweep in the paper's table format:
///   RG | Implementation Method | G | A | S | O
std::string render_paper_table(const select::Flow& flow,
                               const std::vector<SweepRow>& rows,
                               const iplib::IpLibrary& lib);

/// Prints a banner + the workload inventory line (s-calls / IPs / IMPs),
/// mirroring the counts reported in Section 5.
void print_experiment_header(const std::string& title, const workloads::Workload& w,
                             const select::Flow& flow);

/// Publishes a selection's SolverStats as benchmark counters so they land in
/// the JSON output (--benchmark_format=json): nodes, LP iterations,
/// warm-start hit rate, presolve fixings, threads, and the optimality gap
/// when the search was truncated.
void set_solver_counters(benchmark::State& state, const select::Selection& sel);

/// Common main tail: strips a `--smoke` flag (CI mode -- registration is
/// exercised via --benchmark_list_tests instead of timed runs), then hands
/// the remaining arguments to google-benchmark. Returns the process exit
/// code.
int finish_benchmarks(int argc, char** argv);

}  // namespace partita::bench

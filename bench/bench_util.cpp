#include "bench_util.hpp"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_meta.hpp"
#include "support/strings.hpp"
#include "support/text_table.hpp"

namespace partita::bench {

std::vector<std::int64_t> rg_ladder(std::int64_t gmax, int steps) {
  std::vector<std::int64_t> rgs;
  for (int k = 1; k <= steps; ++k) rgs.push_back(gmax * k / steps);
  return rgs;
}

std::vector<SweepRow> run_sweep(const select::Flow& flow,
                                const std::vector<std::int64_t>& rgs,
                                const select::SelectOptions& opt) {
  std::vector<SweepRow> rows;
  rows.reserve(rgs.size());
  for (std::int64_t rg : rgs) {
    rows.push_back({rg, flow.select(rg, opt)});
  }
  return rows;
}

std::string render_paper_table(const select::Flow& flow, const std::vector<SweepRow>& rows,
                               const iplib::IpLibrary& lib) {
  support::TextTable table({"RG", "Implementation Method", "G", "A", "S", "O"});
  table.set_alignment({support::Align::kRight, support::Align::kLeft,
                       support::Align::kRight, support::Align::kRight,
                       support::Align::kRight, support::Align::kRight});
  for (const SweepRow& row : rows) {
    if (!row.selection.feasible) {
      table.add_row({support::with_commas(row.rg), "(infeasible)", "-", "-", "-", "-"});
      continue;
    }
    table.add_row({support::with_commas(row.rg),
                   row.selection.describe(flow.imp_database(), lib),
                   support::with_commas(row.selection.min_path_gain),
                   support::compact_double(row.selection.total_area()),
                   std::to_string(row.selection.s_instructions),
                   std::to_string(row.selection.selected_scalls)});
  }
  return table.render();
}

void set_solver_counters(benchmark::State& state, const select::Selection& sel) {
  state.counters["ilp_nodes"] = static_cast<double>(sel.solver.nodes);
  state.counters["lp_iters"] = static_cast<double>(sel.solver.lp_iterations);
  state.counters["warm_hit_rate"] = sel.solver.warm_start_hit_rate();
  state.counters["presolve_fixed"] = static_cast<double>(sel.solver.presolve_fixed);
  state.counters["clique_props"] = static_cast<double>(sel.solver.clique_propagations);
  state.counters["solver_threads"] = static_cast<double>(sel.solver.threads);
  if (sel.truncated) state.counters["optimality_gap"] = sel.optimality_gap;
}

void print_experiment_header(const std::string& title, const workloads::Workload& w,
                             const select::Flow& flow) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("workload: %s | s-calls: %zu | IPs: %zu | IMPs generated: %zu | paths: %zu\n",
              w.name.c_str(), flow.scalls().size(), w.library.size(),
              flow.imp_database().imps().size(), flow.paths().size());
  std::printf("software cycles per run (profile): %s\n\n",
              support::with_commas(flow.profile().total_cycles).c_str());
}

int finish_benchmarks(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  static char list_flag[] = "--benchmark_list_tests=true";
  if (smoke) args.push_back(list_flag);
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  // Provenance in every JSON record (--benchmark_format=json "context"):
  // schema tag + the machine/build identity the numbers were measured on.
  const MachineMeta meta = collect_machine_meta();
  benchmark::AddCustomContext("partita_bench_schema", meta.schema);
  benchmark::AddCustomContext("git_sha", meta.git_sha);
  benchmark::AddCustomContext("cpu_model", meta.cpu_model);
  benchmark::AddCustomContext("cores", std::to_string(meta.cores));
  benchmark::AddCustomContext("build_type", meta.build_type);
  benchmark::AddCustomContext("build_flags", meta.build_flags);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

}  // namespace partita::bench

// Table 2: GSM(TDMA) decoder -- RG sweep as in Table 1 (the paper uses eight
// rows up to Gmax = 211,286). The workload-specific check is the SC10 story:
// the postfilter IP's native data rate (2) is below the type-0 software
// template's rate, so type-0 serves it only by slowing the IP clock; when RG
// tightens, the selector upgrades that s-call to the type-2 hardware
// interface for the extra gain.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace partita;

struct Context {
  workloads::Workload w = workloads::gsm_decoder();
  select::Flow flow{w.module, w.library};
  std::int64_t gmax = flow.max_feasible_gain();
};

Context& ctx() {
  static Context c;
  return c;
}

void BM_Table2_SelectAtRg(benchmark::State& state) {
  Context& c = ctx();
  const std::int64_t rg = c.gmax * state.range(0) / 8;
  for (auto _ : state) {
    select::Selection sel = c.flow.select(rg);
    benchmark::DoNotOptimize(sel.min_path_gain);
  }
  state.counters["RG"] = static_cast<double>(rg);
}
BENCHMARK(BM_Table2_SelectAtRg)->DenseRange(1, 8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  Context& c = ctx();
  bench::print_experiment_header("Table 2: GSM decoder, optimal IP/interface selection",
                                 c.w, c.flow);
  std::printf("max feasible gain (Gmax): %lld\n\n", static_cast<long long>(c.gmax));
  const auto rows = bench::run_sweep(c.flow, bench::rg_ladder(c.gmax, 8));
  std::fputs(bench::render_paper_table(c.flow, rows, c.w.library).c_str(), stdout);

  // Highlight the SC10-style interface upgrade.
  std::printf("\npostfilter interface by row:");
  for (const bench::SweepRow& row : rows) {
    const char* tag = "sw";
    if (row.selection.feasible) {
      for (isel::ImpIndex idx : row.selection.chosen) {
        const isel::Imp& imp = c.flow.imp_database().imps()[idx];
        if (imp.ip_function->function == "postfilter") {
          tag = iface::short_name(imp.iface_type).data();
        }
      }
    }
    std::printf(" %s", tag);
  }
  std::printf("   (expect IF0 at low RG, IF2 at the top -- the paper's SC10 switch)\n\n");

  return bench::finish_benchmarks(argc, argv);
}

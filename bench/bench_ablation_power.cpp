// Ablation D: the power budget (the paper's IMP records carry "area, power
// and performance gain"; this bench exercises power as a first-class
// constraint). For each workload at 50% of top gain, sweeps the power budget
// downward from the unconstrained draw and reports the area the optimizer
// must spend to stay under it -- the area/power trade-off curve.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "support/strings.hpp"
#include "support/text_table.hpp"

namespace {

using namespace partita;

void report(const workloads::Workload& w) {
  select::Flow flow(w.module, w.library);
  const std::int64_t rg = flow.max_feasible_gain() / 2;
  const select::Selection base = flow.select(rg);
  if (!base.feasible) return;

  std::printf("--- %s (RG = %s, unconstrained power %.2f, area %.2f) ---\n",
              w.name.c_str(), support::with_commas(rg).c_str(), base.total_power(),
              base.total_area());
  support::TextTable t({"power budget", "feasible", "power used", "area"});
  t.set_alignment({support::Align::kRight, support::Align::kLeft, support::Align::kRight,
                   support::Align::kRight});
  for (int pct : {120, 100, 80, 60, 40, 20}) {
    select::SelectOptions opt;
    opt.max_power = base.total_power() * pct / 100.0;
    const select::Selection sel = flow.select(rg, opt);
    t.add_row({support::compact_double(*opt.max_power), sel.feasible ? "yes" : "no",
               sel.feasible ? support::compact_double(sel.total_power()) : "-",
               sel.feasible ? support::compact_double(sel.total_area()) : "-"});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("\n");
}

void BM_PowerConstrainedSelect(benchmark::State& state) {
  workloads::Workload w = workloads::gsm_decoder();
  select::Flow flow(w.module, w.library);
  const std::int64_t rg = flow.max_feasible_gain() / 2;
  const select::Selection base = flow.select(rg);
  select::SelectOptions opt;
  opt.max_power = base.total_power() * 0.8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow.select(rg, opt).feasible);
  }
}
BENCHMARK(BM_PowerConstrainedSelect)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Ablation D: power-budgeted selection ===\n\n");
  report(workloads::gsm_encoder());
  report(workloads::gsm_decoder());
  report(workloads::jpeg_encoder());

  return bench::finish_benchmarks(argc, argv);
}

// Whole-stack perf driver: one binary, one JSON record, the full hot path.
//
// Measures, for the pre-PR solver configuration (full Dantzig pricing, no
// root cuts, serial solves) and the current one (candidate-list pricing,
// root cuts, batch solve):
//
//   * lp        -- raw simplex throughput (LP iterations/sec) on the seed
//                  apps' root relaxations;
//   * bnb       -- branch & bound throughput (nodes/sec) on full selections;
//   * end_to_end-- wall clock of an RG-ladder sweep per workload (the Fig. 9
//                  use case), old serial-vs-new batched, with the speedup;
//   * service   -- SolveService throughput and p50/p99 latency over a burst
//                  of requests (batched admission vs one-shot);
//   * cache     -- cross-request solution cache: median latency of exact
//                  repeats vs the cold solve, and LP-iteration savings from
//                  neighbor-seeded near-repeats. Every cached / seeded answer
//                  is checked bit-identical to a cold solve; a disagreement
//                  exits 2 (the same answer gate as the batch sweep);
//   * durability-- cost and payoff of the write-ahead journal
//                  (docs/durability.md): closed-loop submit->complete p50/p99
//                  against a journaled service vs a journal-less control
//                  (every request pays an fsynced admit + terminal record),
//                  gated at <10% overhead, and the wall clock a
//                  checkpoint-resume saves vs a cold re-solve of the sized
//                  random workload (the kill-mid-search recovery scenario).
//                  Resumed answers are held to the same bit-identity gate.
//
// Output: a partita-bench-v1 JSON record (schema in docs/benchmarks.md),
// default BENCH_<date>.json in the working directory.
//
//   bench_all [--smoke] [--out <path>] [--check <baseline.json>]
//
// --smoke shrinks repetitions and workload sizes for CI;
// --check compares lp.iters_per_sec / bnb.nodes_per_sec against a committed
// baseline record and exits 1 on a >20% regression (the CI gate).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_meta.hpp"
#include "ilp/branch_bound.hpp"
#include "ilp/checkpoint.hpp"
#include "ilp/presolve.hpp"
#include "ilp/simplex.hpp"
#include "select/flow.hpp"
#include "service/journal.hpp"
#include "service/solve_service.hpp"
#include "support/io.hpp"
#include "workloads/random_workload.hpp"
#include "workloads/workloads.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using partita::select::Flow;
using partita::select::SelectOptions;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Pre-PR solver configuration: the hot path as it was before this change.
SelectOptions old_config() {
  SelectOptions opt;
  opt.ilp.lp.pricing = partita::ilp::PricingMode::kDantzig;
  opt.ilp.cuts = false;
  return opt;
}

/// Current defaults: candidate-list pricing + root cuts (+ batching where
/// the scenario uses select_batch).
SelectOptions new_config() { return SelectOptions{}; }

partita::workloads::Workload sized_workload(int sites, std::uint64_t seed) {
  partita::workloads::RandomWorkloadParams p;
  p.call_sites = sites;
  p.leaf_functions = std::max(3, sites / 3);
  p.ips = std::max(4, sites / 2);
  return partita::workloads::random_workload(p, seed);
}

struct Scenario {
  std::string name;
  partita::workloads::Workload workload;
};

std::vector<Scenario> scenarios(bool smoke) {
  std::vector<Scenario> out;
  out.push_back({"gsm_encoder", partita::workloads::gsm_encoder()});
  out.push_back({"gsm_decoder", partita::workloads::gsm_decoder()});
  out.push_back({"jpeg_encoder", partita::workloads::jpeg_encoder()});
  out.push_back({"random_24site", sized_workload(24, 4242)});
  if (!smoke) out.push_back({"random_48site", sized_workload(48, 4242)});
  return out;
}

// --- section results -------------------------------------------------------

struct LpResultRow {
  std::string name;
  long long iterations = 0;
  double seconds = 0.0;
  double iters_per_sec = 0.0;
};

struct BnbResultRow {
  std::string name;
  long long nodes = 0;
  long long cuts_applied = 0;
  double seconds = 0.0;
  double nodes_per_sec = 0.0;
};

struct EndToEndRow {
  std::string name;
  int items = 0;
  double old_seconds = 0.0;
  double new_seconds = 0.0;
  double speedup = 0.0;
  long long batch_hits = 0;
  long long cuts_applied = 0;
};

struct ServiceResult {
  int requests = 0;
  double seconds = 0.0;
  double requests_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  long long amortized_hits = 0;
};

/// Repeated root-relaxation solves of the workload's full-gain model.
LpResultRow bench_lp(const Scenario& sc, const partita::ilp::LpOptions& lp_opt,
                     int reps) {
  Flow flow(sc.workload.module, sc.workload.library);
  const std::int64_t gmax = flow.max_feasible_gain();
  partita::ilp::Model m = flow.selector().build_model(
      std::vector<std::int64_t>(flow.paths().size(), std::max<std::int64_t>(1, gmax)),
      {});
  std::vector<double> lo(m.var_count()), hi(m.var_count());
  for (std::size_t j = 0; j < m.var_count(); ++j) {
    lo[j] = m.var(static_cast<partita::ilp::VarIndex>(j)).lower;
    hi[j] = m.var(static_cast<partita::ilp::VarIndex>(j)).upper;
  }
  const partita::ilp::PresolveResult pre = partita::ilp::presolve(m, lo, hi);

  LpResultRow row;
  row.name = sc.name;
  const Clock::time_point t0 = Clock::now();
  for (int r = 0; r < reps; ++r) {
    const partita::ilp::LpResult res =
        partita::ilp::solve_lp(m, pre.lower, pre.upper, lp_opt);
    row.iterations += res.iterations;
  }
  row.seconds = seconds_since(t0);
  row.iters_per_sec = row.seconds > 0 ? row.iterations / row.seconds : 0.0;
  return row;
}

/// Full selections at gmax/2 (the CLI default operating point).
BnbResultRow bench_bnb(const Scenario& sc, const SelectOptions& opt, int reps) {
  Flow flow(sc.workload.module, sc.workload.library);
  const std::int64_t rg = flow.max_feasible_gain() / 2;
  BnbResultRow row;
  row.name = sc.name;
  const Clock::time_point t0 = Clock::now();
  for (int r = 0; r < reps; ++r) {
    const partita::select::Selection sel = flow.select(rg, opt);
    row.nodes += sel.solver.nodes;
    row.cuts_applied += sel.solver.cuts_applied;
  }
  row.seconds = seconds_since(t0);
  row.nodes_per_sec = row.seconds > 0 ? row.nodes / row.seconds : 0.0;
  return row;
}

/// RG-ladder sweep: old = serial selects under the pre-PR config, new =
/// one select_batch under current defaults.
EndToEndRow bench_end_to_end(const Scenario& sc, int steps) {
  Flow flow(sc.workload.module, sc.workload.library);
  const std::int64_t gmax = flow.max_feasible_gain();
  std::vector<std::int64_t> rgs;
  for (int k = 1; k <= steps; ++k) rgs.push_back(gmax * k / steps);

  EndToEndRow row;
  row.name = sc.name;
  row.items = steps;

  const SelectOptions oldc = old_config();
  Clock::time_point t0 = Clock::now();
  std::vector<partita::select::Selection> serial;
  serial.reserve(rgs.size());
  for (const std::int64_t rg : rgs) serial.push_back(flow.select(rg, oldc));
  row.old_seconds = seconds_since(t0);

  t0 = Clock::now();
  const std::vector<partita::select::Selection> batched =
      flow.select_batch(rgs, new_config());
  row.new_seconds = seconds_since(t0);

  for (const partita::select::Selection& sel : batched) {
    row.batch_hits += sel.solver.batch_hits;
    row.cuts_applied += sel.solver.cuts_applied;
  }
  row.speedup = row.new_seconds > 0 ? row.old_seconds / row.new_seconds : 0.0;

  // Paranoia: the two configurations must agree on every answer (the
  // determinism tests pin this; the bench double-checks the instances it
  // actually timed).
  for (std::size_t i = 0; i < batched.size(); ++i) {
    if (serial[i].feasible != batched[i].feasible ||
        serial[i].chosen != batched[i].chosen) {
      std::fprintf(stderr, "bench_all: %s item %zu: serial/batch disagree\n",
                   sc.name.c_str(), i);
      std::exit(2);
    }
  }
  return row;
}

/// Burst of batched requests against a SolveService; per-item wait latency.
ServiceResult bench_service(bool smoke) {
  const int batches = smoke ? 2 : 4;
  const int items = smoke ? 3 : 6;

  partita::service::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.max_queue_depth = 64;
  partita::service::SolveService service(cfg);

  ServiceResult res;
  const Clock::time_point t0 = Clock::now();
  std::vector<std::uint64_t> tickets;
  std::vector<Clock::time_point> submit_times;
  for (int b = 0; b < batches; ++b) {
    partita::service::BatchSolveRequest req;
    req.label = "bench_batch" + std::to_string(b);
    req.workload = sized_workload(12, 1000 + static_cast<std::uint64_t>(b));
    req.required_gains.assign(static_cast<std::size_t>(items), -1);
    const std::vector<std::uint64_t> ts = service.submit_batch(std::move(req));
    for (const std::uint64_t t : ts) {
      tickets.push_back(t);
      submit_times.push_back(Clock::now());
    }
  }
  std::vector<double> latencies_ms;
  latencies_ms.reserve(tickets.size());
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const partita::service::SolveResponse r = service.wait(tickets[i]);
    latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - submit_times[i])
            .count());
    if (r.state != partita::service::RequestState::kCompleted) {
      std::fprintf(stderr, "bench_all: service request %llu not completed\n",
                   static_cast<unsigned long long>(tickets[i]));
    }
  }
  res.seconds = seconds_since(t0);
  res.requests = static_cast<int>(tickets.size());
  res.requests_per_sec = res.seconds > 0 ? res.requests / res.seconds : 0.0;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  if (!latencies_ms.empty()) {
    res.p50_ms = latencies_ms[latencies_ms.size() / 2];
    res.p99_ms = latencies_ms[std::min(latencies_ms.size() - 1,
                                       latencies_ms.size() * 99 / 100)];
  }
  res.amortized_hits =
      static_cast<long long>(service.stats().batch_amortized_hits);
  service.shutdown();
  return res;
}

struct CacheResult {
  int repeats = 0;
  double cold_ms_median = 0.0;
  double warm_ms_median = 0.0;
  double repeat_speedup = 0.0;
  long long cold_lp_iterations = 0;
  long long seeded_lp_iterations = 0;
  long long cold_nodes = 0;
  long long seeded_nodes = 0;
  double iteration_savings = 0.0;  // fraction of near-repeat LP work avoided
  double node_savings = 0.0;       // fraction of near-repeat B&B nodes avoided
  long long hits = 0;
  long long neighbor_seeds = 0;
};

double median_ms(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Exact-repeat and near-repeat traffic against a cache-enabled service.
///
/// Exact repeats: the same (workload, gain) request over and over; the first
/// is the cold solve, the rest must be served as "hit" at a fraction of the
/// latency. Near repeats: a gain a step away from a cached entry; the solve
/// is seeded from the neighbor's exported basis/pseudo-costs and must spend
/// fewer LP iterations than the cold solve of the same instance.
CacheResult bench_cache(bool smoke) {
  const int repeats = smoke ? 6 : 24;

  partita::service::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.max_queue_depth = 64;
  cfg.cache_enabled = true;
  partita::service::SolveService service(cfg);

  CacheResult res;
  res.repeats = repeats;
  std::vector<double> cold_ms, warm_ms;

  // One submit-and-wait round trip; the answer gate compares against the
  // caller's cold signature.
  const auto round_trip = [&](const partita::workloads::Workload& w,
                              std::int64_t gain, const std::string& cold_sig,
                              const char* what) {
    partita::service::SolveRequest req;
    req.label = "bench_cache";
    req.workload = w;
    req.required_gain = gain;
    const Clock::time_point t0 = Clock::now();
    const std::uint64_t ticket = service.submit(std::move(req));
    const partita::service::SolveResponse r = service.wait(ticket);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    if (r.state != partita::service::RequestState::kCompleted) {
      std::fprintf(stderr, "bench_all: cache %s request not completed\n", what);
      std::exit(2);
    }
    if (partita::select::solution_signature(r.selection) != cold_sig) {
      std::fprintf(stderr,
                   "bench_all: ANSWER GATE: cache %s answer differs from cold "
                   "solve (marker '%s')\n",
                   what, r.cache.c_str());
      std::exit(2);
    }
    return std::make_pair(ms, r);
  };

  for (const Scenario& sc : scenarios(true)) {  // seed apps only; sized for ms
    Flow flow(sc.workload.module, sc.workload.library);
    const std::int64_t gain = flow.max_feasible_gain() / 2;

    // Exact repeats. Cold reference outside the service, then the first
    // request populates the cache and every repeat must hit it.
    const partita::select::Selection cold = flow.select(gain);
    const std::string sig = partita::select::solution_signature(cold);
    cold_ms.push_back(round_trip(sc.workload, gain, sig, "cold").first);
    for (int r = 0; r < repeats; ++r)
      warm_ms.push_back(round_trip(sc.workload, gain, sig, "repeat").first);

    // Near repeat: one gain step away from the entry just cached.
    const std::int64_t near_gain = gain - std::max<std::int64_t>(1, gain / 256);
    const partita::select::Selection near_cold = flow.select(near_gain);
    res.cold_lp_iterations += near_cold.solver.lp_iterations;
    res.cold_nodes += near_cold.solver.nodes;
    const auto [ms, r] =
        round_trip(sc.workload, near_gain,
                   partita::select::solution_signature(near_cold), "near");
    (void)ms;
    res.seeded_lp_iterations += r.selection.solver.lp_iterations;
    res.seeded_nodes += r.selection.solver.nodes;
  }

  res.cold_ms_median = median_ms(cold_ms);
  res.warm_ms_median = median_ms(warm_ms);
  res.repeat_speedup =
      res.warm_ms_median > 0 ? res.cold_ms_median / res.warm_ms_median : 0.0;
  res.iteration_savings =
      res.cold_lp_iterations > 0
          ? 1.0 - static_cast<double>(res.seeded_lp_iterations) /
                      static_cast<double>(res.cold_lp_iterations)
          : 0.0;
  res.node_savings =
      res.cold_nodes > 0 ? 1.0 - static_cast<double>(res.seeded_nodes) /
                                     static_cast<double>(res.cold_nodes)
                         : 0.0;
  const partita::service::ServiceStats st = service.stats();
  res.hits = static_cast<long long>(st.cache_hits);
  res.neighbor_seeds = static_cast<long long>(st.cache_neighbor_seeds);
  service.shutdown();
  return res;
}

struct DurabilityResult {
  // Journal overhead: closed-loop submit->complete latency, journaled vs not.
  int requests = 0;
  double plain_p50_ms = 0.0;
  double plain_p99_ms = 0.0;
  double journaled_p50_ms = 0.0;
  double journaled_p99_ms = 0.0;
  double overhead_p50 = 0.0;  // journaled / plain
  double overhead_p99 = 0.0;
  long long admits = 0;
  long long terminals = 0;
  bool gate_failed = false;
  // Checkpoint-resume payoff: wall clock vs a cold re-solve of the same
  // instance (the recovery path after a kill mid-search).
  int sites = 0;
  double cold_seconds = 0.0;
  double resume_seconds = 0.0;
  double saved_seconds = 0.0;
  double saved_fraction = 0.0;
  int frontier_nodes = 0;
  int waves = 0;
};

double percentile_ms(std::vector<double> v, std::size_t pct) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[std::min(v.size() - 1, v.size() * pct / 100)];
}

/// One closed-loop round trip; submit->complete latency in ms. A non-empty
/// payload is the envelope the wire front end would persist -- the service
/// treats it as opaque bytes, so a representative blob prices the append
/// honestly.
double durability_round_trip(partita::service::SolveService& service,
                             const partita::workloads::Workload& w,
                             std::int64_t gain, int i, bool journaled) {
  partita::service::SolveRequest req;
  req.label = "durability" + std::to_string(i);
  req.workload = w;
  req.required_gain = gain;
  if (journaled) {
    req.journal_payload =
        "{\"v\": \"partita-wire-v1\", \"verb\": \"submit\", \"workload\": \"" +
        w.name + "\", \"required_gain\": " + std::to_string(gain) +
        ", \"label\": " + "\"" + req.label + "\"}";
  }
  const Clock::time_point t0 = Clock::now();
  const partita::service::SubmitOutcome sub = service.submit(std::move(req));
  if (!sub.admitted()) {
    std::fprintf(stderr, "bench_all: durability request %d rejected: %s\n", i,
                 sub.reject_reason.c_str());
    std::exit(1);
  }
  const partita::service::SolveResponse r = service.wait(sub.ticket());
  const double ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  if (r.state != partita::service::RequestState::kCompleted) {
    std::fprintf(stderr, "bench_all: durability request %d not completed\n", i);
    std::exit(1);
  }
  return ms;
}

void remove_journal_dir(const std::string& dir) {
  for (const std::string& name : partita::support::io::list_dir(dir)) {
    partita::support::io::remove_file(dir + "/" + name);
  }
  ::rmdir(dir.c_str());
}

/// Write-ahead-journal overhead and checkpoint-resume payoff.
DurabilityResult bench_durability(bool smoke) {
  DurabilityResult res;
  res.requests = smoke ? 24 : 64;

  // Overhead leg. Closed loop so every latency sample carries the request's
  // full durable cost: one fsynced admit record before acknowledgment plus
  // one fsynced terminal record before completion. The two legs are held
  // open side by side and the request stream alternates between them (order
  // flipping each round), so machine-load noise lands on both and the p50/p99
  // comparison stays paired rather than run-vs-run.
  const partita::workloads::Workload w = sized_workload(smoke ? 20 : 28, 777);
  Flow flow(w.module, w.library);
  const std::int64_t gain = flow.max_feasible_gain() / 2;

  const std::string jdir =
      "bench_journal_tmp." + std::to_string(static_cast<long>(::getpid()));
  partita::service::Journal journal;
  partita::service::Journal::Config jc;
  jc.dir = jdir;
  if (!journal.open(jc)) {
    std::fprintf(stderr, "bench_all: cannot open journal in %s\n", jdir.c_str());
    std::exit(1);
  }
  std::vector<double> plain, journaled;
  plain.reserve(static_cast<std::size_t>(res.requests));
  journaled.reserve(static_cast<std::size_t>(res.requests));
  {
    partita::service::ServiceConfig pcfg;
    pcfg.workers = 2;
    pcfg.max_queue_depth = 64;
    partita::service::ServiceConfig jcfg = pcfg;
    jcfg.journal = &journal;
    partita::service::SolveService plain_svc(pcfg);
    partita::service::SolveService journaled_svc(jcfg);
    for (int i = 0; i < res.requests; ++i) {
      if (i % 2 == 0) {
        plain.push_back(durability_round_trip(plain_svc, w, gain, i, false));
        journaled.push_back(durability_round_trip(journaled_svc, w, gain, i, true));
      } else {
        journaled.push_back(durability_round_trip(journaled_svc, w, gain, i, true));
        plain.push_back(durability_round_trip(plain_svc, w, gain, i, false));
      }
    }
    journaled_svc.shutdown();
    plain_svc.shutdown();
  }
  const partita::service::JournalStats jstats = journal.stats();
  journal.close();
  remove_journal_dir(jdir);

  res.plain_p50_ms = percentile_ms(plain, 50);
  res.plain_p99_ms = percentile_ms(plain, 99);
  res.journaled_p50_ms = percentile_ms(journaled, 50);
  res.journaled_p99_ms = percentile_ms(journaled, 99);
  res.overhead_p50 =
      res.plain_p50_ms > 0 ? res.journaled_p50_ms / res.plain_p50_ms : 0.0;
  res.overhead_p99 =
      res.plain_p99_ms > 0 ? res.journaled_p99_ms / res.plain_p99_ms : 0.0;
  res.admits = static_cast<long long>(jstats.admits);
  res.terminals = static_cast<long long>(jstats.terminals);
  // <10% regression gate, with a 2ms absolute epsilon so scheduler jitter on
  // near-identical magnitudes cannot flake the gate.
  res.gate_failed =
      res.journaled_p50_ms > res.plain_p50_ms * 1.10 + 2.0 ||
      res.journaled_p99_ms > res.plain_p99_ms * 1.10 + 2.0;

  // Payoff leg: cold-select the sized random workload at the gmax/2
  // operating point while capturing a checkpoint at every wave boundary --
  // the same IlpOptions plumbing the journaled service uses -- then resume
  // from the last snapshot that still had open nodes (the state a restarted
  // daemon loads after a kill mid-search). Auxiliary solves inside select()
  // also feed the sink; resume_compatible sorts that out exactly as it does
  // in production, cold-starting every solve the snapshot does not fit.
  res.sites = smoke ? 24 : 48;
  const partita::workloads::Workload cw = sized_workload(res.sites, 4242);
  Flow cflow(cw.module, cw.library);
  const std::int64_t rg = cflow.max_feasible_gain() / 2;

  Clock::time_point t0 = Clock::now();
  const partita::select::Selection cold = cflow.select(rg, SelectOptions{});
  res.cold_seconds = seconds_since(t0);

  std::vector<partita::ilp::SearchCheckpoint> snaps;
  SelectOptions capture;
  capture.ilp.checkpoint_every_waves = 1;
  capture.ilp.checkpoint_sink =
      [&snaps](const partita::ilp::SearchCheckpoint& cp) { snaps.push_back(cp); };
  cflow.select(rg, capture);
  const partita::ilp::SearchCheckpoint* pick = nullptr;
  for (const partita::ilp::SearchCheckpoint& cp : snaps) {
    if (!cp.frontier.empty()) pick = &cp;
  }
  if (pick == nullptr && !snaps.empty()) pick = &snaps.back();
  if (pick != nullptr) {
    res.waves = pick->waves;
    res.frontier_nodes = static_cast<int>(pick->frontier.size());
    SelectOptions resume;
    resume.ilp.resume = pick;
    t0 = Clock::now();
    const partita::select::Selection warm = cflow.select(rg, resume);
    res.resume_seconds = seconds_since(t0);
    if (partita::select::solution_signature(warm) !=
        partita::select::solution_signature(cold)) {
      std::fprintf(stderr,
                   "bench_all: ANSWER GATE: checkpoint-resume answer differs "
                   "from cold solve\n");
      std::exit(2);
    }
    res.saved_seconds = res.cold_seconds - res.resume_seconds;
    res.saved_fraction =
        res.cold_seconds > 0 ? res.saved_seconds / res.cold_seconds : 0.0;
  }
  return res;
}

// --- JSON ------------------------------------------------------------------

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", std::isfinite(v) ? v : 0.0);
  return buf;
}

std::string render_json(const partita::bench::MachineMeta& meta, bool smoke,
                        const std::vector<LpResultRow>& lp_old,
                        const std::vector<LpResultRow>& lp_new,
                        const std::vector<BnbResultRow>& bnb_old,
                        const std::vector<BnbResultRow>& bnb_new,
                        const std::vector<EndToEndRow>& e2e,
                        const ServiceResult& svc, const CacheResult& cache,
                        const DurabilityResult& dur) {
  std::ostringstream os;
  os << "{\n  \"metadata\": " << partita::bench::meta_json(meta) << ",\n";
  os << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";

  auto lp_section = [&](const char* key, const std::vector<LpResultRow>& rows) {
    os << "  \"" << key << "\": {";
    long long iters = 0;
    double secs = 0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      iters += rows[i].iterations;
      secs += rows[i].seconds;
      os << (i ? ", " : "") << "\"" << rows[i].name
         << "\": {\"iterations\": " << rows[i].iterations
         << ", \"seconds\": " << fmt(rows[i].seconds)
         << ", \"iters_per_sec\": " << fmt(rows[i].iters_per_sec) << "}";
    }
    os << ", \"iters_per_sec\": " << fmt(secs > 0 ? iters / secs : 0.0) << "},\n";
  };
  lp_section("lp_dantzig", lp_old);
  lp_section("lp", lp_new);

  auto bnb_section = [&](const char* key, const std::vector<BnbResultRow>& rows) {
    os << "  \"" << key << "\": {";
    long long nodes = 0;
    double secs = 0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      nodes += rows[i].nodes;
      secs += rows[i].seconds;
      os << (i ? ", " : "") << "\"" << rows[i].name
         << "\": {\"nodes\": " << rows[i].nodes
         << ", \"cuts_applied\": " << rows[i].cuts_applied
         << ", \"seconds\": " << fmt(rows[i].seconds)
         << ", \"nodes_per_sec\": " << fmt(rows[i].nodes_per_sec) << "}";
    }
    os << ", \"nodes_per_sec\": " << fmt(secs > 0 ? nodes / secs : 0.0) << "},\n";
  };
  bnb_section("bnb_baseline", bnb_old);
  bnb_section("bnb", bnb_new);

  os << "  \"end_to_end\": {";
  for (std::size_t i = 0; i < e2e.size(); ++i) {
    os << (i ? ", " : "") << "\"" << e2e[i].name << "\": {\"items\": " << e2e[i].items
       << ", \"old_seconds\": " << fmt(e2e[i].old_seconds)
       << ", \"new_seconds\": " << fmt(e2e[i].new_seconds)
       << ", \"speedup\": " << fmt(e2e[i].speedup)
       << ", \"batch_hits\": " << e2e[i].batch_hits
       << ", \"cuts_applied\": " << e2e[i].cuts_applied << "}";
  }
  os << "},\n";

  os << "  \"service\": {\"requests\": " << svc.requests
     << ", \"seconds\": " << fmt(svc.seconds)
     << ", \"requests_per_sec\": " << fmt(svc.requests_per_sec)
     << ", \"p50_ms\": " << fmt(svc.p50_ms) << ", \"p99_ms\": " << fmt(svc.p99_ms)
     << ", \"amortized_hits\": " << svc.amortized_hits << "},\n";

  os << "  \"cache\": {\"repeats\": " << cache.repeats
     << ", \"cold_ms_median\": " << fmt(cache.cold_ms_median)
     << ", \"warm_ms_median\": " << fmt(cache.warm_ms_median)
     << ", \"repeat_speedup\": " << fmt(cache.repeat_speedup)
     << ", \"cold_lp_iterations\": " << cache.cold_lp_iterations
     << ", \"seeded_lp_iterations\": " << cache.seeded_lp_iterations
     << ", \"iteration_savings\": " << fmt(cache.iteration_savings)
     << ", \"cold_nodes\": " << cache.cold_nodes
     << ", \"seeded_nodes\": " << cache.seeded_nodes
     << ", \"node_savings\": " << fmt(cache.node_savings)
     << ", \"hits\": " << cache.hits
     << ", \"neighbor_seeds\": " << cache.neighbor_seeds << "},\n";

  os << "  \"durability\": {\"requests\": " << dur.requests
     << ", \"plain_p50_ms\": " << fmt(dur.plain_p50_ms)
     << ", \"plain_p99_ms\": " << fmt(dur.plain_p99_ms)
     << ", \"journaled_p50_ms\": " << fmt(dur.journaled_p50_ms)
     << ", \"journaled_p99_ms\": " << fmt(dur.journaled_p99_ms)
     << ", \"overhead_p50\": " << fmt(dur.overhead_p50)
     << ", \"overhead_p99\": " << fmt(dur.overhead_p99)
     << ", \"admits\": " << dur.admits << ", \"terminals\": " << dur.terminals
     << ", \"checkpoint_sites\": " << dur.sites
     << ", \"cold_seconds\": " << fmt(dur.cold_seconds)
     << ", \"resume_seconds\": " << fmt(dur.resume_seconds)
     << ", \"saved_seconds\": " << fmt(dur.saved_seconds)
     << ", \"saved_fraction\": " << fmt(dur.saved_fraction)
     << ", \"frontier_nodes\": " << dur.frontier_nodes
     << ", \"waves\": " << dur.waves << "}\n";
  os << "}\n";
  return os.str();
}

/// Minimal extractor for our own schema: finds `"key": <number>` at the
/// given nesting context by scanning for `"section"` first.
double extract_metric(const std::string& json, const std::string& section,
                      const std::string& key) {
  const auto spos = json.find("\"" + section + "\"");
  if (spos == std::string::npos) return -1.0;
  // Last occurrence of the key inside the section object (the aggregate).
  const auto end = json.find("\n  \"", spos + 1);
  const std::string scope =
      json.substr(spos, end == std::string::npos ? std::string::npos : end - spos);
  const std::string needle = "\"" + key + "\": ";
  const auto kpos = scope.rfind(needle);
  if (kpos == std::string::npos) return -1.0;
  return std::atof(scope.c_str() + kpos + needle.size());
}

int check_regression(const std::string& current, const std::string& baseline_path) {
  std::ifstream in(baseline_path);
  if (!in) {
    std::fprintf(stderr, "bench_all: cannot read baseline %s\n",
                 baseline_path.c_str());
    return 1;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string baseline = ss.str();

  int failures = 0;
  const struct {
    const char* section;
    const char* key;
  } gates[] = {{"lp", "iters_per_sec"}, {"bnb", "nodes_per_sec"}};
  for (const auto& g : gates) {
    const double base = extract_metric(baseline, g.section, g.key);
    const double cur = extract_metric(current, g.section, g.key);
    if (base <= 0) {
      std::fprintf(stderr, "bench_all: baseline lacks %s.%s; skipping gate\n",
                   g.section, g.key);
      continue;
    }
    const double ratio = cur / base;
    std::printf("gate %s.%s: baseline %.0f, current %.0f (%.2fx)\n", g.section,
                g.key, base, cur, ratio);
    if (ratio < 0.8) {
      std::fprintf(stderr, "bench_all: REGRESSION: %s.%s dropped >20%% (%.2fx)\n",
                   g.section, g.key, ratio);
      ++failures;
    }
  }
  return failures > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path;
  std::string check_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      check_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_all [--smoke] [--out <path>] [--check <baseline>]\n");
      return 1;
    }
  }

  const partita::bench::MachineMeta meta = partita::bench::collect_machine_meta();
  if (out_path.empty()) out_path = "BENCH_" + meta.date + ".json";

  const int lp_reps = smoke ? 3 : 20;
  const int bnb_reps = smoke ? 1 : 5;
  const int sweep_steps = smoke ? 4 : 8;

  const std::vector<Scenario> scs = scenarios(smoke);

  std::vector<LpResultRow> lp_old, lp_new;
  partita::ilp::LpOptions dantzig;
  dantzig.pricing = partita::ilp::PricingMode::kDantzig;
  for (const Scenario& sc : scs) {
    lp_old.push_back(bench_lp(sc, dantzig, lp_reps));
    lp_new.push_back(bench_lp(sc, {}, lp_reps));
    std::printf("lp %-14s dantzig %8.0f it/s  candidate %8.0f it/s\n",
                sc.name.c_str(), lp_old.back().iters_per_sec,
                lp_new.back().iters_per_sec);
  }

  std::vector<BnbResultRow> bnb_old, bnb_new;
  for (const Scenario& sc : scs) {
    bnb_old.push_back(bench_bnb(sc, old_config(), bnb_reps));
    bnb_new.push_back(bench_bnb(sc, new_config(), bnb_reps));
    std::printf("bnb %-14s old %8.0f nodes/s  new %8.0f nodes/s (%lld cuts)\n",
                sc.name.c_str(), bnb_old.back().nodes_per_sec,
                bnb_new.back().nodes_per_sec, bnb_new.back().cuts_applied);
  }

  std::vector<EndToEndRow> e2e;
  for (const Scenario& sc : scs) {
    e2e.push_back(bench_end_to_end(sc, sweep_steps));
    std::printf("e2e %-14s old %.3fs  new %.3fs  speedup %.2fx (%lld batch hits)\n",
                sc.name.c_str(), e2e.back().old_seconds, e2e.back().new_seconds,
                e2e.back().speedup, e2e.back().batch_hits);
  }

  const ServiceResult svc = bench_service(smoke);
  std::printf("service %d requests %.2f req/s  p50 %.1fms  p99 %.1fms\n",
              svc.requests, svc.requests_per_sec, svc.p50_ms, svc.p99_ms);

  const CacheResult cache = bench_cache(smoke);
  std::printf(
      "cache repeat %.3fms -> %.3fms (%.1fx), near-repeat lp iters %lld -> "
      "%lld (%.1f%% saved), nodes %lld -> %lld (%.1f%% saved), %lld hits / "
      "%lld neighbor seeds\n",
      cache.cold_ms_median, cache.warm_ms_median, cache.repeat_speedup,
      cache.cold_lp_iterations, cache.seeded_lp_iterations,
      cache.iteration_savings * 100.0, cache.cold_nodes, cache.seeded_nodes,
      cache.node_savings * 100.0, cache.hits, cache.neighbor_seeds);

  const DurabilityResult dur = bench_durability(smoke);
  std::printf(
      "durability submit->complete p50 %.2fms -> %.2fms (%.2fx) p99 %.2fms -> "
      "%.2fms (%.2fx), %lld admits / %lld terminals journaled\n",
      dur.plain_p50_ms, dur.journaled_p50_ms, dur.overhead_p50, dur.plain_p99_ms,
      dur.journaled_p99_ms, dur.overhead_p99, dur.admits, dur.terminals);
  std::printf(
      "durability checkpoint-resume %d-site: cold %.3fs, resume %.3fs "
      "(%.1f%% saved; %d open nodes at wave %d)\n",
      dur.sites, dur.cold_seconds, dur.resume_seconds,
      dur.saved_fraction * 100.0, dur.frontier_nodes, dur.waves);

  const std::string json = render_json(meta, smoke, lp_old, lp_new, bnb_old,
                                       bnb_new, e2e, svc, cache, dur);
  std::ofstream out(out_path);
  out << json;
  out.close();
  std::printf("wrote %s\n", out_path.c_str());

  if (dur.gate_failed) {
    std::fprintf(stderr,
                 "bench_all: REGRESSION: journal overhead on submit->complete "
                 "exceeds 10%% (p50 %.2fx, p99 %.2fx)\n",
                 dur.overhead_p50, dur.overhead_p99);
    return 1;
  }
  if (!check_path.empty()) return check_regression(json, check_path);
  return 0;
}

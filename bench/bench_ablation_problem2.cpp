// Ablation B: Problem 1 versus Problem 2 (Section 4). The Fig. 9 and
// Fig. 10 motivating cases are run under both formulations:
//
//  * Fig. 9 -- three independent calls to the same fir(); the IP is slower
//    than 2x software, so the best point keeps one fir on the kernel as the
//    parallel code of another's IP run. Problem 1 (same function => same
//    implementation, no s-call software in a PC) cannot express this.
//  * Fig. 10 -- two paths share a common fir(); only Problem 2 may leave the
//    shared call in software (as the dct IP's parallel code) while the other
//    path's fir()s use the IP.
//
// Also sweeps the GSM encoder under both to show Problem 2 never loses.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "support/strings.hpp"
#include "support/text_table.hpp"

namespace {

using namespace partita;

void report_case(const workloads::Workload& w) {
  select::Flow flow(w.module, w.library);
  select::SelectOptions p1;
  p1.problem2 = false;
  select::SelectOptions p2;

  const std::int64_t p1_max = flow.selector().max_feasible_gain(p1);
  const std::int64_t p2_max = flow.selector().max_feasible_gain(p2);

  std::printf("--- %s ---\n", w.name.c_str());
  std::printf("max guaranteed gain: Problem 1 = %s | Problem 2 = %s\n",
              support::with_commas(p1_max).c_str(), support::with_commas(p2_max).c_str());

  if (p2_max > p1_max) {
    const std::int64_t rg = (p1_max + p2_max) / 2;
    const select::Selection s1 = flow.select(rg, p1);
    const select::Selection s2 = flow.select(rg, p2);
    std::printf("at RG=%s: Problem 1 %s, Problem 2 %s\n", support::with_commas(rg).c_str(),
                s1.feasible ? "feasible" : "INFEASIBLE",
                s2.feasible ? "feasible" : "INFEASIBLE");
    if (s2.feasible) {
      std::printf("Problem 2 solution: %s\n",
                  s2.describe(flow.imp_database(), w.library).c_str());
    }
  }
  std::printf("\n");
}

void BM_Problem1_Select(benchmark::State& state) {
  workloads::Workload w = workloads::gsm_encoder();
  select::Flow flow(w.module, w.library);
  select::SelectOptions p1;
  p1.problem2 = false;
  const std::int64_t rg = flow.selector().max_feasible_gain(p1) / 2;
  for (auto _ : state) benchmark::DoNotOptimize(flow.select(rg, p1).feasible);
}
BENCHMARK(BM_Problem1_Select)->Unit(benchmark::kMillisecond);

void BM_Problem2_Select(benchmark::State& state) {
  workloads::Workload w = workloads::gsm_encoder();
  select::Flow flow(w.module, w.library);
  const std::int64_t rg = flow.max_feasible_gain() / 2;
  for (auto _ : state) benchmark::DoNotOptimize(flow.select(rg).feasible);
}
BENCHMARK(BM_Problem2_Select)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Ablation B: Problem 1 vs Problem 2 ===\n\n");
  report_case(workloads::fig9_case());
  report_case(workloads::fig10_case());
  report_case(workloads::gsm_encoder());
  report_case(workloads::gsm_decoder());

  return bench::finish_benchmarks(argc, argv);
}

// Ablation A: the exact ILP versus (a) the greedy gain/area heuristic and
// (b) the prior-art baseline ([8]-style selection: no interface
// co-optimization -- everything through the cheapest software interface --
// and no parallel execution). Reported per workload at 25/50/75/100% of each
// method's top gain:
//
//  * area at equal RG (ILP <= greedy wherever greedy is feasible);
//  * the highest reachable gain (prior art caps strictly below the full
//    method, which is the paper's core claim).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "support/strings.hpp"
#include "support/text_table.hpp"

namespace {

using namespace partita;

void report_workload(const workloads::Workload& w) {
  select::Flow flow(w.module, w.library);
  const std::int64_t gmax = flow.max_feasible_gain();
  select::SelectOptions prior;
  prior.imp_filter = select::prior_art_allows;
  const std::int64_t prior_max = flow.selector().max_feasible_gain(prior);

  std::printf("--- %s ---\n", w.name.c_str());
  std::printf("top gain: full method %s | prior art %s (%.1f%%)\n",
              support::with_commas(gmax).c_str(), support::with_commas(prior_max).c_str(),
              gmax ? 100.0 * static_cast<double>(prior_max) / static_cast<double>(gmax)
                   : 0.0);

  support::TextTable t({"RG", "ILP area", "greedy area", "prior-art area"});
  t.set_alignment({support::Align::kRight, support::Align::kRight, support::Align::kRight,
                   support::Align::kRight});
  for (int k = 1; k <= 4; ++k) {
    const std::int64_t rg = gmax * k / 4;
    const select::Selection ilp_sel = flow.select(rg);
    const select::Selection greedy_sel = flow.greedy(rg);
    const select::Selection prior_sel = flow.prior_art(rg);
    auto cell = [](const select::Selection& s) {
      return s.feasible ? support::compact_double(s.total_area()) : std::string("infeas");
    };
    t.add_row({support::with_commas(rg), cell(ilp_sel), cell(greedy_sel), cell(prior_sel)});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("\n");
}

void BM_Baseline_Ilp(benchmark::State& state) {
  workloads::Workload w = workloads::gsm_decoder();
  select::Flow flow(w.module, w.library);
  const std::int64_t rg = flow.max_feasible_gain() / 2;
  for (auto _ : state) benchmark::DoNotOptimize(flow.select(rg).feasible);
}
BENCHMARK(BM_Baseline_Ilp)->Unit(benchmark::kMillisecond);

void BM_Baseline_Greedy(benchmark::State& state) {
  workloads::Workload w = workloads::gsm_decoder();
  select::Flow flow(w.module, w.library);
  const std::int64_t rg = flow.max_feasible_gain() / 2;
  for (auto _ : state) benchmark::DoNotOptimize(flow.greedy(rg).feasible);
}
BENCHMARK(BM_Baseline_Greedy)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Ablation A: ILP vs greedy vs prior-art baseline ===\n\n");
  report_workload(workloads::gsm_encoder());
  report_workload(workloads::gsm_decoder());
  report_workload(workloads::jpeg_encoder());

  return bench::finish_benchmarks(argc, argv);
}

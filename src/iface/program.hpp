// Interface program templates (Figs. 4-7 of the paper).
//
// Every interface type has a template that, instantiated for a concrete
// (IP, function) pair, yields the in/out-controller program: micro-code for
// the software types (0/1), the FSM's DMA schedule for the hardware types
// (2/3). The expansion is used three ways:
//
//   * its code size gives A_CNT for software interfaces (code-memory words);
//   * its section structure gives the timing terms (T_IF, T_IF_IN, T_IF_OUT);
//   * the co-simulator executes it cycle by cycle to validate the analytic
//     model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "iface/kernel.hpp"
#include "iface/types.hpp"
#include "iplib/ip.hpp"

namespace partita::iface {

/// Primitive operations appearing in interface programs. One program line
/// (micro-word / FSM state) carries several of them, mirroring the multi-op
/// lines of Figs. 4-7.
enum class IfOp : std::uint8_t {
  kSetCounter,   // cnt_xxx = #...
  kLoadX,        // in-data_x = DM_x[]
  kLoadY,        // in-data_y = DM_y[]
  kStoreX,       // DM_x[] = out-data_x
  kStoreY,       // DM_y[] = out-data_y
  kToIp,         // IP_in = in-data
  kFromIp,       // out-data = IP_out
  kToBuffer,     // buff_in[][] = in-data
  kFromBuffer,   // out-data = buff_out[][]
  kStartIp,      // IP_start = 1
  kDecCounter,   // cnt = cnt - 1
  kBranchNZ,     // if (cnt != 0) goto ...
  kBusConnect,   // tri-state/MUX setup for DMA (types 2/3)
  kDmaRead,      // addr/rw strobes moving memory -> IP/buffer (one cycle)
  kDmaWrite,     // addr/rw strobes moving IP/buffer -> memory (one cycle)
  kNop,          // rate padding
};

std::string_view to_string(IfOp op);

/// One line of an interface program: the ops issued in a single cycle.
struct IfLine {
  std::vector<IfOp> ops;
};

/// A loop section of the template (e.g. Fig. 4 lines 2-5 executed once per
/// input-only batch).
struct IfSection {
  std::string name;          // "init", "fill", "steady", "drain", "buffer_in"...
  std::vector<IfLine> body;  // executed once per iteration
  std::int64_t iterations = 1;

  std::int64_t words() const { return static_cast<std::int64_t>(body.size()); }
  std::int64_t cycles() const { return words() * iterations; }
};

/// An instantiated interface program.
struct InterfaceProgram {
  InterfaceType type = InterfaceType::kType0;
  std::vector<IfSection> sections;

  /// Static code size (words of micro-code / FSM states): what occupies code
  /// memory for software interfaces.
  std::int64_t static_words() const;

  /// Dynamic execution cycles of the whole program (all sections, all
  /// iterations). For buffered types this is T_IF_IN + T_IF_OUT + overhead;
  /// the IP runs between the in and out sections.
  std::int64_t execution_cycles() const;

  /// Cycles of the named section (0 when absent).
  std::int64_t section_cycles(std::string_view name) const;

  const IfSection* find_section(std::string_view name) const;

  /// Human-readable dump resembling the paper's figures.
  std::string dump() const;
};

/// Batches of two operands per transfer (one via XDM, one via YDM).
std::int64_t batches(std::int64_t items, int per_cycle);

/// Instantiates the template of `type` for one call of `fn` on `ip`.
/// Precondition: the type is applicable (see model.hpp); violating port or
/// rate limits trips an assertion.
InterfaceProgram expand_template(InterfaceType type, const iplib::IpDescriptor& ip,
                                 const iplib::IpFunction& fn, const KernelParams& kernel);

}  // namespace partita::iface

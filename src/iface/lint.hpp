// IP-library lint: sanity diagnostics for hand-written libraries.
//
// Loader errors catch syntax; the linter catches semantics that silently
// ruin a selection run: IPs whose declared cycle count is slower than any
// plausible software time would ever be (suspicious), blocks that no
// interface type can serve, port/rate combinations that force clock
// slowdown everywhere, duplicate (function, cycles) entries across IPs, and
// zero-area blocks that would make the fixed charge meaningless.
#pragma once

#include <string>
#include <vector>

#include "iface/kernel.hpp"
#include "iplib/library.hpp"

namespace partita::iface {

enum class LintSeverity { kWarning, kError };

struct LintFinding {
  LintSeverity severity = LintSeverity::kWarning;
  std::string ip;       // offending IP name (empty for library-level findings)
  std::string message;
};

/// Checks the library; returns all findings (empty = clean).
/// `kernel` supplies the interface applicability rules.
std::vector<LintFinding> lint_library(const iplib::IpLibrary& lib,
                                      const KernelParams& kernel = {});

/// True if any finding is an error.
bool has_lint_errors(const std::vector<LintFinding>& findings);

/// One line per finding.
std::string render_lint(const std::vector<LintFinding>& findings);

}  // namespace partita::iface

#include "iface/lint.hpp"

#include <map>
#include <sstream>

#include "iface/model.hpp"

namespace partita::iface {

std::vector<LintFinding> lint_library(const iplib::IpLibrary& lib,
                                      const KernelParams& kernel) {
  std::vector<LintFinding> out;
  auto warn = [&](const std::string& ip, std::string msg) {
    out.push_back({LintSeverity::kWarning, ip, std::move(msg)});
  };
  auto error = [&](const std::string& ip, std::string msg) {
    out.push_back({LintSeverity::kError, ip, std::move(msg)});
  };

  std::map<std::string, std::vector<std::string>> implementors;

  for (const iplib::IpDescriptor& ip : lib.all()) {
    if (ip.area <= 0.0) {
      error(ip.name, "area must be positive (the fixed charge is meaningless at 0)");
    }

    // At least one interface type must be able to serve the block.
    bool any_iface = false;
    for (InterfaceType t : kAllInterfaceTypes) {
      any_iface |= applicable(t, ip, kernel).ok;
    }
    if (!any_iface) {
      error(ip.name, "no interface type can serve this port/rate combination");
    }

    if (ip.in_ports > kernel.operands_per_cycle || ip.out_ports > kernel.operands_per_cycle) {
      warn(ip.name, "more than two in/out ports: only buffered interfaces (type 1/3) apply");
    }
    if (ip.in_rate < kernel.sw_template_rate && ip.in_rate == ip.out_rate &&
        ip.in_ports <= kernel.operands_per_cycle) {
      warn(ip.name, "native rate below the type-0 template rate: software interfaces "
                    "will slow the IP clock by " +
                        std::to_string(kernel.sw_template_rate / ip.in_rate) + "x");
    }
    if (!ip.pipelined && ip.latency == 0) {
      warn(ip.name, "combinational block with zero latency looks unspecified");
    }

    for (const iplib::IpFunction& f : ip.functions) {
      if (f.n_in == 0 && f.n_out == 0) {
        warn(ip.name, "function '" + f.function + "' transfers no data");
      }
      if (f.ip_cycles == 0) {
        warn(ip.name, "function '" + f.function +
                          "' derives T_IP from rates/latency (cycles 0); declare it "
                          "if profiled");
      }
      implementors[f.function].push_back(ip.name);
    }
  }

  for (const auto& [fn, ips] : implementors) {
    if (ips.size() >= 4) {
      warn("", "function '" + fn + "' has " + std::to_string(ips.size()) +
                   " implementors; consider pruning the library");
    }
  }
  return out;
}

bool has_lint_errors(const std::vector<LintFinding>& findings) {
  for (const LintFinding& f : findings) {
    if (f.severity == LintSeverity::kError) return true;
  }
  return false;
}

std::string render_lint(const std::vector<LintFinding>& findings) {
  std::ostringstream os;
  for (const LintFinding& f : findings) {
    os << (f.severity == LintSeverity::kError ? "error" : "warning");
    if (!f.ip.empty()) os << " [" << f.ip << ']';
    os << ": " << f.message << '\n';
  }
  return os.str();
}

}  // namespace partita::iface

// The four interface methods of Section 3.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace partita::iface {

/// Interface types, Fig. 3 of the paper. Ordered from cheapest/slowest to
/// most expensive/powerful.
enum class InterfaceType : std::uint8_t {
  kType0,  // software in/out-controller, no buffers
  kType1,  // software controller + in/out buffers
  kType2,  // hardware FSM controller (DMA), no buffers
  kType3,  // hardware FSM controller + buffers
};

inline constexpr std::array<InterfaceType, 4> kAllInterfaceTypes = {
    InterfaceType::kType0, InterfaceType::kType1, InterfaceType::kType2,
    InterfaceType::kType3};

std::string_view to_string(InterfaceType t);

/// "IF0".."IF3", the notation used in the paper's result tables.
std::string_view short_name(InterfaceType t);

/// True for types whose in/out-controller runs as kernel software (µ-code).
bool is_software(InterfaceType t);

/// True for types with in/out buffers.
bool is_buffered(InterfaceType t);

/// True for types that permit the kernel to execute parallel code while the
/// IP runs: buffering removes memory contention (Section 3). Type 2 is
/// excluded -- its DMA occupies the data memories.
bool supports_parallel_execution(InterfaceType t);

}  // namespace partita::iface

#include "iface/types.hpp"

namespace partita::iface {

std::string_view to_string(InterfaceType t) {
  switch (t) {
    case InterfaceType::kType0:
      return "type-0 (software, unbuffered)";
    case InterfaceType::kType1:
      return "type-1 (software, buffered)";
    case InterfaceType::kType2:
      return "type-2 (hardware FSM, unbuffered)";
    case InterfaceType::kType3:
      return "type-3 (hardware FSM, buffered)";
  }
  return "?";
}

std::string_view short_name(InterfaceType t) {
  switch (t) {
    case InterfaceType::kType0:
      return "IF0";
    case InterfaceType::kType1:
      return "IF1";
    case InterfaceType::kType2:
      return "IF2";
    case InterfaceType::kType3:
      return "IF3";
  }
  return "?";
}

bool is_software(InterfaceType t) {
  return t == InterfaceType::kType0 || t == InterfaceType::kType1;
}

bool is_buffered(InterfaceType t) {
  return t == InterfaceType::kType1 || t == InterfaceType::kType3;
}

bool supports_parallel_execution(InterfaceType t) { return is_buffered(t); }

}  // namespace partita::iface

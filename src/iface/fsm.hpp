// Hardware in/out-controller synthesis.
//
// Types 2 and 3 implement the in/out-controller as an FSM (Fig. 6/7: bus
// setup, then counted DMA read/write loops). This module synthesizes that
// FSM from an expanded interface program: one state per template line,
// counted-loop back-edges per section, a terminal accept state. The
// synthesized machine is independently executable, and tests pin its cycle
// count to the analytic template cycles -- the controller really implements
// the schedule the cost model charges for.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "iface/program.hpp"

namespace partita::iface {

struct FsmState {
  std::uint32_t id = 0;
  std::string section;       // owning template section
  std::vector<IfOp> ops;     // strobes asserted in this state
  std::uint32_t next = 0;    // default successor
  /// Counted-loop back edge: when `loop_header` is true, the state
  /// decrements its section counter and jumps to `loop_target` while the
  /// counter is nonzero.
  bool loop_tail = false;
  std::uint32_t loop_target = 0;
};

class ControllerFsm {
 public:
  /// Synthesizes the controller for a hardware interface program. The
  /// program must come from a type-2/3 template.
  static ControllerFsm synthesize(const InterfaceProgram& prog);

  const std::vector<FsmState>& states() const { return states_; }
  std::uint32_t accept_state() const { return accept_; }

  /// Executes the machine: returns total cycles (one per state visit).
  /// Must equal InterfaceProgram::execution_cycles() of the source program.
  std::int64_t simulate() const;

  /// Structural area estimate: states carry flops + strobe decoding,
  /// counters one increment/compare each.
  double estimated_area(double per_state = 0.02, double per_counter = 0.05) const;

  std::size_t counter_count() const { return counters_; }

  std::string dump() const;

 private:
  std::vector<FsmState> states_;
  std::vector<std::int64_t> section_iterations_;  // per loop section
  std::vector<std::uint32_t> state_counter_;      // loop-tail state -> counter id
  std::size_t counters_ = 0;
  std::uint32_t accept_ = 0;
};

}  // namespace partita::iface

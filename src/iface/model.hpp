// Analytic timing and area model of the four interface types (Section 3,
// "Performance gain and implementation cost").
//
// Timing, per one execution of the S-instruction:
//
//   type 0/2 (unbuffered, pipelined IP):  T = MAX(T_IP, T_IF)
//   type 0/2 (non-pipelined IP):          T = T_IF + T_IP
//   type 1/3 (buffered):  T = T_IF_IN + MAX(T_IP, T_B) + T_IF_OUT
//                             - MIN(T_IP, T_C)          (parallel code T_C)
//                         (non-pipelined: T_B splits into in + out phases
//                          sequential with T_IP)
//
// Type 0 additionally slows the IP clock when the IP wants data faster than
// the four-cycle software template can deliver (T_IP scales by
// sw_template_rate / in_rate).
//
// Area: A = A_CNT + A_B + A_PT per interface instance (A_IP is accounted
// once per chip by the selector). A_CNT is code memory for software types
// (word count of the expanded template) and FSM area for hardware types.
#pragma once

#include <cstdint>
#include <string>

#include "iface/kernel.hpp"
#include "iface/program.hpp"
#include "iface/types.hpp"
#include "iplib/ip.hpp"

namespace partita::iface {

/// Why an interface type can(not) serve an IP.
struct Applicability {
  bool ok = true;
  std::string reason;  // set when !ok
};

/// Section 3 rules: type 0/2 are limited to two in/out ports (one operand per
/// data memory per cycle); type 0 additionally cannot serve IPs whose input
/// and output data rates differ (the software template cannot be split).
Applicability applicable(InterfaceType type, const iplib::IpDescriptor& ip,
                         const KernelParams& kernel);

/// Timing breakdown for one S-instruction execution.
struct InterfaceTiming {
  std::int64_t total_cycles = 0;  // net execution time, overlap already deducted
  std::int64_t t_ip = 0;          // effective IP time (clock slowdown applied)
  std::int64_t t_if = 0;          // transfer schedule, types 0/2
  std::int64_t t_if_in = 0;       // buffer fill, types 1/3
  std::int64_t t_b = 0;           // buffer<->IP transfer, types 1/3
  std::int64_t t_if_out = 0;      // buffer drain, types 1/3
  std::int64_t overlap = 0;       // MIN(T_IP, T_C) actually credited
  double clock_slowdown = 1.0;    // >1 when type-0 slowed the IP clock
};

/// Computes the timing of executing `fn` on `ip` through `type`, with
/// `parallel_cycles` (T_C) of kernel code available to overlap. The type must
/// be applicable. Parallel code is credited only for buffered types.
InterfaceTiming interface_timing(InterfaceType type, const iplib::IpDescriptor& ip,
                                 const iplib::IpFunction& fn, std::int64_t parallel_cycles,
                                 const KernelParams& kernel);

/// Area breakdown of one interface instance (excludes the IP itself).
struct InterfaceCost {
  double controller = 0;   // A_CNT: code memory or FSM
  double buffers = 0;      // A_B
  double transformer = 0;  // protocol transformer
  double total() const { return controller + buffers + transformer; }
};

InterfaceCost interface_cost(InterfaceType type, const iplib::IpDescriptor& ip,
                             const iplib::IpFunction& fn, const KernelParams& kernel);

/// Power draw of one interface instance (excludes the IP itself): zero for
/// pure software controllers, FSM + buffer + transformer terms otherwise.
double interface_power(InterfaceType type, const iplib::IpDescriptor& ip,
                       const KernelParams& kernel);

}  // namespace partita::iface

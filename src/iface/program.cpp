#include "iface/program.hpp"

#include <algorithm>
#include <sstream>

#include "support/assert.hpp"

namespace partita::iface {

std::string_view to_string(IfOp op) {
  switch (op) {
    case IfOp::kSetCounter:
      return "set_cnt";
    case IfOp::kLoadX:
      return "load_x";
    case IfOp::kLoadY:
      return "load_y";
    case IfOp::kStoreX:
      return "store_x";
    case IfOp::kStoreY:
      return "store_y";
    case IfOp::kToIp:
      return "to_ip";
    case IfOp::kFromIp:
      return "from_ip";
    case IfOp::kToBuffer:
      return "to_buf";
    case IfOp::kFromBuffer:
      return "from_buf";
    case IfOp::kStartIp:
      return "start_ip";
    case IfOp::kDecCounter:
      return "dec_cnt";
    case IfOp::kBranchNZ:
      return "br_nz";
    case IfOp::kBusConnect:
      return "bus_connect";
    case IfOp::kDmaRead:
      return "dma_read";
    case IfOp::kDmaWrite:
      return "dma_write";
    case IfOp::kNop:
      return "nop";
  }
  return "?";
}

std::int64_t batches(std::int64_t items, int per_cycle) {
  PARTITA_ASSERT(per_cycle > 0);
  return (items + per_cycle - 1) / per_cycle;
}

std::int64_t InterfaceProgram::static_words() const {
  std::int64_t w = 0;
  for (const IfSection& s : sections) w += s.words();
  return w;
}

std::int64_t InterfaceProgram::execution_cycles() const {
  std::int64_t c = 0;
  for (const IfSection& s : sections) c += s.cycles();
  return c;
}

std::int64_t InterfaceProgram::section_cycles(std::string_view name) const {
  const IfSection* s = find_section(name);
  return s ? s->cycles() : 0;
}

const IfSection* InterfaceProgram::find_section(std::string_view name) const {
  auto it = std::find_if(sections.begin(), sections.end(),
                         [&](const IfSection& s) { return s.name == name; });
  return it == sections.end() ? nullptr : &*it;
}

std::string InterfaceProgram::dump() const {
  std::ostringstream os;
  os << "interface program (" << short_name(type) << ")\n";
  for (const IfSection& s : sections) {
    os << "  section " << s.name << " x" << s.iterations << ":\n";
    for (std::size_t i = 0; i < s.body.size(); ++i) {
      os << "    " << i << ":";
      for (IfOp op : s.body[i].ops) os << ' ' << to_string(op);
      os << '\n';
    }
  }
  return os.str();
}

namespace {

IfLine line(std::initializer_list<IfOp> ops) { return IfLine{std::vector<IfOp>(ops)}; }

/// Pads a section body with NOP lines up to `target` lines per iteration
/// (rate matching: slower IPs get fed every in_rate cycles).
void pad_to(std::vector<IfLine>& body, std::int64_t target) {
  while (static_cast<std::int64_t>(body.size()) < target) {
    body.push_back(line({IfOp::kNop}));
  }
}

/// Splits total transferred batches into fill/steady/drain iteration counts
/// given the pipeline depth (batches in flight before the first result).
struct Phases {
  std::int64_t fill = 0;
  std::int64_t steady = 0;
  std::int64_t drain = 0;
};

Phases phases(std::int64_t in_batches, std::int64_t out_batches, std::int64_t depth) {
  Phases p;
  p.steady = std::max<std::int64_t>(
      0, std::min(in_batches - std::min(in_batches, depth), out_batches));
  p.fill = in_batches - p.steady;
  p.drain = out_batches - p.steady;
  return p;
}

InterfaceProgram expand_type0(const iplib::IpDescriptor& ip, const iplib::IpFunction& fn,
                              const KernelParams& k) {
  PARTITA_ASSERT_MSG(ip.in_ports <= k.operands_per_cycle &&
                         ip.out_ports <= k.operands_per_cycle,
                     "type-0 cannot serve IPs with more than two in/out ports");
  PARTITA_ASSERT_MSG(ip.in_rate == ip.out_rate,
                     "type-0 cannot serve IPs with different in/out rates");

  // Template batch period: the Fig. 4 loop is four words; IPs slower than
  // that get NOP padding, faster ones are handled by slowing the IP clock
  // (the timing model applies the slowdown to T_IP, the template stays at
  // its natural rate).
  const std::int64_t rate = std::max<std::int64_t>(k.sw_template_rate, ip.in_rate);
  const std::int64_t in_b = batches(fn.n_in, k.operands_per_cycle);
  const std::int64_t out_b = batches(fn.n_out, k.operands_per_cycle);
  const double slowdown =
      ip.in_rate < k.sw_template_rate
          ? static_cast<double>(k.sw_template_rate) / static_cast<double>(ip.in_rate)
          : 1.0;
  const auto eff_latency = static_cast<std::int64_t>(ip.latency * slowdown);
  const std::int64_t depth =
      ip.pipelined ? (eff_latency + rate - 1) / rate : in_b;  // non-pipelined: feed all first
  const Phases ph = phases(in_b, out_b, depth);

  InterfaceProgram prog;
  prog.type = InterfaceType::kType0;

  prog.sections.push_back({"init", {line({IfOp::kSetCounter})}, 1});

  if (ph.fill > 0) {
    std::vector<IfLine> body = {
        line({IfOp::kLoadX, IfOp::kLoadY}),
        line({IfOp::kToIp}),
        line({IfOp::kDecCounter}),
        line({IfOp::kBranchNZ}),
    };
    pad_to(body, rate);
    prog.sections.push_back({"fill", std::move(body), ph.fill});
  }
  if (ph.steady > 0) {
    std::vector<IfLine> body = {
        line({IfOp::kLoadX, IfOp::kLoadY}),
        line({IfOp::kToIp, IfOp::kFromIp}),
        line({IfOp::kStoreX, IfOp::kStoreY, IfOp::kDecCounter}),
        line({IfOp::kBranchNZ}),
    };
    pad_to(body, rate);
    prog.sections.push_back({"steady", std::move(body), ph.steady});
  }
  if (ph.drain > 0) {
    std::vector<IfLine> body = {
        line({IfOp::kFromIp}),
        line({IfOp::kStoreX, IfOp::kStoreY}),
        line({IfOp::kDecCounter}),
        line({IfOp::kBranchNZ}),
    };
    pad_to(body, rate);
    prog.sections.push_back({"drain", std::move(body), ph.drain});
  }
  return prog;
}

InterfaceProgram expand_type1(const iplib::IpDescriptor& ip, const iplib::IpFunction& fn,
                              const KernelParams& k) {
  (void)ip;  // any port count / rate combination is bufferable
  const std::int64_t in_b = batches(fn.n_in, k.operands_per_cycle);
  const std::int64_t out_b = batches(fn.n_out, k.operands_per_cycle);

  InterfaceProgram prog;
  prog.type = InterfaceType::kType1;
  prog.sections.push_back({"init", {line({IfOp::kSetCounter})}, 1});
  if (in_b > 0) {
    std::vector<IfLine> body = {
        line({IfOp::kLoadX, IfOp::kLoadY, IfOp::kDecCounter}),
        line({IfOp::kToBuffer, IfOp::kBranchNZ}),
    };
    pad_to(body, k.sw_buffer_rate);
    prog.sections.push_back({"buffer_in", std::move(body), in_b});
  }
  prog.sections.push_back({"start", {line({IfOp::kStartIp})}, 1});
  // The IP runs here; the kernel is free to execute parallel code.
  if (out_b > 0) {
    std::vector<IfLine> body = {
        line({IfOp::kFromBuffer, IfOp::kDecCounter}),
        line({IfOp::kStoreX, IfOp::kStoreY, IfOp::kBranchNZ}),
    };
    pad_to(body, k.sw_buffer_rate);
    prog.sections.push_back({"buffer_out", std::move(body), out_b});
  }
  return prog;
}

InterfaceProgram expand_type2(const iplib::IpDescriptor& ip, const iplib::IpFunction& fn,
                              const KernelParams& k) {
  PARTITA_ASSERT_MSG(ip.in_ports <= k.operands_per_cycle &&
                         ip.out_ports <= k.operands_per_cycle,
                     "type-2 cannot serve IPs with more than two in/out ports");
  const std::int64_t in_b = batches(fn.n_in, k.operands_per_cycle);
  const std::int64_t out_b = batches(fn.n_out, k.operands_per_cycle);
  // The FSM strobes a read batch every in_rate cycles (the IP's native
  // acceptance rate; no clock slowdown needed in hardware).
  const std::int64_t p_in = std::max<std::int64_t>(1, ip.in_rate);
  const std::int64_t p_out = std::max<std::int64_t>(1, ip.out_rate);

  InterfaceProgram prog;
  prog.type = InterfaceType::kType2;
  prog.sections.push_back(
      {"setup", {line({IfOp::kBusConnect, IfOp::kSetCounter})}, 1});
  if (in_b > 0) {
    std::vector<IfLine> body = {line({IfOp::kDmaRead, IfOp::kDecCounter, IfOp::kBranchNZ})};
    pad_to(body, p_in);
    prog.sections.push_back({"dma_in", std::move(body), in_b});
  }
  if (out_b > 0) {
    std::vector<IfLine> body = {line({IfOp::kDmaWrite, IfOp::kDecCounter, IfOp::kBranchNZ})};
    pad_to(body, p_out);
    prog.sections.push_back({"dma_out", std::move(body), out_b});
  }
  return prog;
}

InterfaceProgram expand_type3(const iplib::IpDescriptor& ip, const iplib::IpFunction& fn,
                              const KernelParams& k) {
  (void)ip;
  const std::int64_t in_b = batches(fn.n_in, k.operands_per_cycle);
  const std::int64_t out_b = batches(fn.n_out, k.operands_per_cycle);

  InterfaceProgram prog;
  prog.type = InterfaceType::kType3;
  prog.sections.push_back(
      {"setup", {line({IfOp::kBusConnect, IfOp::kSetCounter})}, 1});
  if (in_b > 0) {
    // Memory -> in-buffer at full DMA speed (one batch per cycle); the
    // buffer-to-IP transfer happens at the IP's rate while it runs (T_B).
    prog.sections.push_back(
        {"dma_in", {line({IfOp::kDmaRead, IfOp::kDecCounter, IfOp::kBranchNZ})}, in_b});
  }
  prog.sections.push_back({"start", {line({IfOp::kStartIp})}, 1});
  if (out_b > 0) {
    prog.sections.push_back(
        {"dma_out", {line({IfOp::kDmaWrite, IfOp::kDecCounter, IfOp::kBranchNZ})}, out_b});
  }
  return prog;
}

}  // namespace

InterfaceProgram expand_template(InterfaceType type, const iplib::IpDescriptor& ip,
                                 const iplib::IpFunction& fn, const KernelParams& kernel) {
  switch (type) {
    case InterfaceType::kType0:
      return expand_type0(ip, fn, kernel);
    case InterfaceType::kType1:
      return expand_type1(ip, fn, kernel);
    case InterfaceType::kType2:
      return expand_type2(ip, fn, kernel);
    case InterfaceType::kType3:
      return expand_type3(ip, fn, kernel);
  }
  PARTITA_UNREACHABLE("bad interface type");
}

}  // namespace partita::iface

#include "iface/fsm.hpp"

#include <sstream>

#include "support/assert.hpp"

namespace partita::iface {

ControllerFsm ControllerFsm::synthesize(const InterfaceProgram& prog) {
  PARTITA_ASSERT_MSG(!is_software(prog.type),
                     "FSM synthesis applies to hardware interface types");
  ControllerFsm fsm;

  for (const IfSection& section : prog.sections) {
    if (section.body.empty()) continue;
    const auto first = static_cast<std::uint32_t>(fsm.states_.size());
    for (std::size_t i = 0; i < section.body.size(); ++i) {
      FsmState st;
      st.id = static_cast<std::uint32_t>(fsm.states_.size());
      st.section = section.name;
      st.ops = section.body[i].ops;
      st.next = st.id + 1;
      fsm.states_.push_back(std::move(st));
    }
    if (section.iterations > 1) {
      FsmState& tail = fsm.states_.back();
      tail.loop_tail = true;
      tail.loop_target = first;
      fsm.state_counter_.resize(fsm.states_.size(), 0);
      fsm.state_counter_[tail.id] = static_cast<std::uint32_t>(fsm.counters_);
      fsm.section_iterations_.push_back(section.iterations);
      ++fsm.counters_;
    }
  }
  fsm.state_counter_.resize(fsm.states_.size(), 0);
  fsm.accept_ = static_cast<std::uint32_t>(fsm.states_.size());
  return fsm;
}

std::int64_t ControllerFsm::simulate() const {
  std::vector<std::int64_t> counters = section_iterations_;
  std::int64_t cycles = 0;
  std::uint32_t pc = 0;
  // Generous bound: total scheduled cycles can never exceed
  // sum(iterations * body) which is what the counters encode.
  std::int64_t guard = 1;
  for (std::int64_t it : section_iterations_) guard += it + 1;
  guard *= static_cast<std::int64_t>(states_.size()) + 1;

  while (pc != accept_) {
    PARTITA_ASSERT_MSG(cycles <= guard, "controller FSM failed to terminate");
    const FsmState& st = states_[pc];
    ++cycles;
    if (st.loop_tail) {
      std::int64_t& cnt = counters[state_counter_[st.id]];
      --cnt;
      if (cnt > 0) {
        pc = st.loop_target;
        continue;
      }
    }
    pc = st.next;
  }
  return cycles;
}

double ControllerFsm::estimated_area(double per_state, double per_counter) const {
  return per_state * static_cast<double>(states_.size()) +
         per_counter * static_cast<double>(counters_);
}

std::string ControllerFsm::dump() const {
  std::ostringstream os;
  os << "controller FSM: " << states_.size() << " states, " << counters_ << " counters\n";
  for (const FsmState& st : states_) {
    os << "  s" << st.id << " [" << st.section << "]";
    for (IfOp op : st.ops) os << ' ' << to_string(op);
    if (st.loop_tail) os << " | loop -> s" << st.loop_target;
    os << " | next s" << st.next << '\n';
  }
  return os.str();
}

}  // namespace partita::iface

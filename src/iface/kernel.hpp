// Kernel-side parameters of the interface cost/timing model.
//
// These describe the fixed part of the target: the ASIP-core can move at most
// one operand per data memory per cycle (two total), the type-0 software
// template streams one batch of two operands every four cycles (Fig. 4), and
// the area coefficients translate controller structures into the paper's
// dimensionless area units.
#pragma once

#include "iplib/ip.hpp"

namespace partita::iface {

struct KernelParams {
  /// Operands movable to/from an IP per cycle: one via XDM + one via YDM.
  int operands_per_cycle = 2;

  /// Data rate of the type-0 software template: cycles per batch of two
  /// operands (the four-line steady-state loop of Fig. 4).
  int sw_template_rate = 4;

  /// Cycles per two-operand batch when the kernel fills/drains a buffer in
  /// software (Fig. 5 lines 2-5 / 7-10: load + store per batch).
  int sw_buffer_rate = 2;

  /// Code-memory area per micro-code word (A_CNT of software interfaces).
  double ucode_word_area = 0.02;

  /// Base area of a hardware in/out-controller FSM (types 2/3).
  double fsm_base_area = 0.35;
  /// FSM area increment per IP port handled.
  double fsm_per_port_area = 0.05;
  /// Extra FSM area when input and output controllers must run at different
  /// rates (split in-/out-controller, Section 3).
  double fsm_split_rate_area = 0.15;

  /// Buffer area per buffered data word (A_B).
  double buffer_word_area = 0.015;
  /// Fixed area of one buffer-port controller (types 1/3 instantiate one per
  /// IP port).
  double buffer_port_area = 0.05;

  /// Power coefficients (relative units, matching IpDescriptor::power).
  /// Software controllers draw nothing extra (the kernel runs regardless);
  /// hardware FSMs and buffers add static draw.
  double fsm_power = 0.2;
  double buffer_power_per_port = 0.05;
  double transformer_power = 0.1;  // only for non-synchronous protocols

  /// Area of the protocol transformer for each native IP protocol.
  double protocol_transformer_area(iplib::Protocol p) const {
    switch (p) {
      case iplib::Protocol::kSynchronous:
        return 0.0;  // already the kernel standard
      case iplib::Protocol::kHandshake:
        return 0.3;
      case iplib::Protocol::kStream:
        return 0.15;
    }
    return 0.0;
  }
};

}  // namespace partita::iface

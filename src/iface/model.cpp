#include "iface/model.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace partita::iface {

Applicability applicable(InterfaceType type, const iplib::IpDescriptor& ip,
                         const KernelParams& kernel) {
  const bool few_ports =
      ip.in_ports <= kernel.operands_per_cycle && ip.out_ports <= kernel.operands_per_cycle;
  switch (type) {
    case InterfaceType::kType0:
      if (!few_ports) {
        return {false, "type-0 supports at most two in/out ports (no buffers)"};
      }
      if (ip.in_rate != ip.out_rate) {
        return {false, "type-0 software template cannot serve different in/out rates"};
      }
      return {};
    case InterfaceType::kType2:
      if (!few_ports) {
        return {false, "type-2 supports at most two in/out ports (no buffers)"};
      }
      return {};
    case InterfaceType::kType1:
    case InterfaceType::kType3:
      return {};  // buffers handle any port count and rate
  }
  PARTITA_UNREACHABLE("bad interface type");
}

namespace {

/// Buffer<->IP streaming time (T_B): the buffer controller feeds every IP
/// port at the IP's native rate.
std::int64_t buffer_stream_cycles(const iplib::IpDescriptor& ip,
                                  const iplib::IpFunction& fn, bool input) {
  const std::int64_t items = input ? fn.n_in : fn.n_out;
  const std::int64_t ports = input ? ip.in_ports : ip.out_ports;
  const std::int64_t rate = input ? ip.in_rate : ip.out_rate;
  return batches(items, static_cast<int>(ports)) * rate;
}

}  // namespace

InterfaceTiming interface_timing(InterfaceType type, const iplib::IpDescriptor& ip,
                                 const iplib::IpFunction& fn, std::int64_t parallel_cycles,
                                 const KernelParams& kernel) {
  const Applicability app = applicable(type, ip, kernel);
  PARTITA_ASSERT_MSG(app.ok, "interface_timing on inapplicable type");

  InterfaceTiming t;
  t.t_ip = ip.execution_cycles(fn);

  const InterfaceProgram prog = expand_template(type, ip, fn, kernel);

  switch (type) {
    case InterfaceType::kType0: {
      if (ip.in_rate < kernel.sw_template_rate) {
        // The kernel cannot push a batch more often than every
        // sw_template_rate cycles; the IP clock is divided to match and
        // everything the IP does stretches accordingly.
        t.clock_slowdown = static_cast<double>(kernel.sw_template_rate) /
                           static_cast<double>(ip.in_rate);
        t.t_ip = static_cast<std::int64_t>(std::ceil(t.t_ip * t.clock_slowdown));
      }
      t.t_if = prog.execution_cycles();
      t.total_cycles = ip.pipelined ? std::max(t.t_ip, t.t_if) : t.t_if + t.t_ip;
      break;
    }
    case InterfaceType::kType2: {
      // In- and out-controllers run concurrently in hardware; the out stream
      // starts after the IP's latency.
      const std::int64_t setup = prog.section_cycles("setup");
      const std::int64_t in_sched = prog.section_cycles("dma_in");
      const std::int64_t out_sched = prog.section_cycles("dma_out");
      if (ip.pipelined) {
        t.t_if = setup + std::max(in_sched, ip.latency + out_sched);
        t.total_cycles = std::max(t.t_ip, t.t_if);
      } else {
        t.t_if = setup + in_sched + out_sched;
        t.total_cycles = setup + in_sched + t.t_ip + out_sched;
      }
      break;
    }
    case InterfaceType::kType1:
    case InterfaceType::kType3: {
      const std::int64_t pre =
          prog.section_cycles("init") + prog.section_cycles("setup") +
          prog.section_cycles("buffer_in") + prog.section_cycles("dma_in") +
          prog.section_cycles("start");
      const std::int64_t post =
          prog.section_cycles("buffer_out") + prog.section_cycles("dma_out");
      t.t_if_in = pre;
      t.t_if_out = post;

      const std::int64_t tb_in = buffer_stream_cycles(ip, fn, /*input=*/true);
      const std::int64_t tb_out = buffer_stream_cycles(ip, fn, /*input=*/false);
      std::int64_t core;
      if (ip.pipelined) {
        t.t_b = std::max(tb_in, tb_out);
        core = std::max(t.t_ip, t.t_b);
      } else {
        t.t_b = tb_in + tb_out;
        core = tb_in + t.t_ip + tb_out;
      }

      // Parallel code runs on the kernel while the IP churns (Fig. 2); the
      // credit is MIN(T_IP, T_C), never more than the core it hides inside.
      if (supports_parallel_execution(type) && parallel_cycles > 0) {
        t.overlap = std::min({t.t_ip, parallel_cycles, core});
      }
      t.total_cycles = t.t_if_in + core + t.t_if_out - t.overlap;
      break;
    }
  }
  return t;
}

InterfaceCost interface_cost(InterfaceType type, const iplib::IpDescriptor& ip,
                             const iplib::IpFunction& fn, const KernelParams& kernel) {
  const Applicability app = applicable(type, ip, kernel);
  PARTITA_ASSERT_MSG(app.ok, "interface_cost on inapplicable type");

  InterfaceCost c;
  c.transformer = kernel.protocol_transformer_area(ip.protocol);

  const InterfaceProgram prog = expand_template(type, ip, fn, kernel);
  switch (type) {
    case InterfaceType::kType0:
      c.controller = kernel.ucode_word_area * static_cast<double>(prog.static_words());
      break;
    case InterfaceType::kType1:
      c.controller = kernel.ucode_word_area * static_cast<double>(prog.static_words());
      c.buffers = kernel.buffer_word_area * static_cast<double>(fn.n_in + fn.n_out) +
                  kernel.buffer_port_area * static_cast<double>(ip.in_ports + ip.out_ports);
      break;
    case InterfaceType::kType2:
      c.controller = kernel.fsm_base_area +
                     kernel.fsm_per_port_area *
                         static_cast<double>(ip.in_ports + ip.out_ports) +
                     (ip.in_rate != ip.out_rate ? kernel.fsm_split_rate_area : 0.0);
      break;
    case InterfaceType::kType3:
      c.controller = kernel.fsm_base_area +
                     kernel.fsm_per_port_area *
                         static_cast<double>(ip.in_ports + ip.out_ports) +
                     (ip.in_rate != ip.out_rate ? kernel.fsm_split_rate_area : 0.0);
      c.buffers = kernel.buffer_word_area * static_cast<double>(fn.n_in + fn.n_out) +
                  kernel.buffer_port_area * static_cast<double>(ip.in_ports + ip.out_ports);
      break;
  }
  return c;
}

double interface_power(InterfaceType type, const iplib::IpDescriptor& ip,
                       const KernelParams& kernel) {
  double p = 0.0;
  if (!is_software(type)) p += kernel.fsm_power;
  if (is_buffered(type)) {
    p += kernel.buffer_power_per_port * static_cast<double>(ip.in_ports + ip.out_ports);
  }
  if (ip.protocol != iplib::Protocol::kSynchronous) p += kernel.transformer_power;
  return p;
}

}  // namespace partita::iface

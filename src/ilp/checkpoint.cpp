#include "ilp/checkpoint.hpp"

#include <cstdio>
#include <sstream>

#include "support/fault_injection.hpp"
#include "support/io.hpp"
#include "support/json.hpp"

namespace partita::ilp {

namespace {

namespace json = support::json;

constexpr const char* kFormat = "partita-checkpoint-v1";

std::string u64_hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

bool parse_u64_hex(const std::string& s, std::size_t at, std::uint64_t* out) {
  if (s.size() < at + 16) return false;
  std::uint64_t v = 0;
  for (std::size_t i = at; i < at + 16; ++i) {
    const char c = s[i];
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else return false;
  }
  *out = v;
  return true;
}

void append_doubles(std::ostringstream& os, const char* key,
                    const std::vector<double>& xs) {
  os << json::quote(key) << ": [";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    os << (i ? ", " : "") << json::fmt_double(xs[i]);
  }
  os << "]";
}

bool read_doubles(const json::Object& o, const char* key, std::vector<double>* out) {
  const json::Array* a = json::array_or_null(o, key);
  if (!a) return false;
  out->clear();
  out->reserve(a->size());
  for (const json::Value& v : *a) {
    if (!v.is_number()) return false;
    out->push_back(v.number());
  }
  return true;
}

bool read_ints(const json::Object& o, const char* key, std::vector<int>* out) {
  const json::Array* a = json::array_or_null(o, key);
  if (!a) return false;
  out->clear();
  out->reserve(a->size());
  for (const json::Value& v : *a) {
    if (!v.is_number()) return false;
    out->push_back(static_cast<int>(v.number()));
  }
  return true;
}

}  // namespace

bool resume_compatible(const SearchCheckpoint& cp, const Fingerprint& fp,
                       std::uint64_t digest) {
  return cp.model_fp == fp && cp.options_digest == digest;
}

std::string encode_checkpoint(const SearchCheckpoint& cp) {
  std::ostringstream os;
  os << "{\"v\": " << json::quote(kFormat)
     << ", \"model_fp\": " << json::quote(cp.model_fp.hex())
     << ", \"options_digest\": " << json::quote(u64_hex(cp.options_digest))
     << ", \"waves\": " << cp.waves << ", \"nodes\": " << cp.nodes;
  if (cp.has_incumbent) {
    os << ", ";
    append_doubles(os, "incumbent", cp.incumbent);
  }
  os << ", ";
  append_doubles(os, "pc_sum0", cp.pc_sum[0]);
  os << ", ";
  append_doubles(os, "pc_sum1", cp.pc_sum[1]);
  os << ", \"pc_cnt0\": [";
  for (std::size_t i = 0; i < cp.pc_cnt[0].size(); ++i) {
    os << (i ? ", " : "") << cp.pc_cnt[0][i];
  }
  os << "], \"pc_cnt1\": [";
  for (std::size_t i = 0; i < cp.pc_cnt[1].size(); ++i) {
    os << (i ? ", " : "") << cp.pc_cnt[1][i];
  }
  os << "], \"frontier\": [";
  for (std::size_t n = 0; n < cp.frontier.size(); ++n) {
    const CheckpointNode& node = cp.frontier[n];
    os << (n ? ", " : "") << "{\"bound\": " << json::fmt_double(node.bound);
    if (node.has_parent_obj) {
      os << ", \"parent_obj\": " << json::fmt_double(node.parent_obj);
    }
    os << ", \"branch_var\": " << node.branch_var
       << ", \"branch_frac\": " << json::fmt_double(node.branch_frac)
       << ", \"branch_up\": " << (node.branch_up ? "true" : "false")
       << ", \"fixes\": [";
    for (std::size_t f = 0; f < node.fixes.size(); ++f) {
      os << (f ? ", " : "") << "[" << node.fixes[f].first << ", "
         << json::fmt_double(node.fixes[f].second) << "]";
    }
    os << "], \"basis\": \"";
    // Basis statuses are tiny enums; one digit per entry keeps the document
    // readable and a third the size of a JSON array.
    for (const std::uint8_t st : node.basis) os << static_cast<char>('0' + st);
    os << "\"}";
  }
  os << "]}";
  return os.str();
}

bool decode_checkpoint(const std::string& text, SearchCheckpoint* out,
                       std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error) *error = why;
    return false;
  };
  std::string perr;
  const auto doc = json::parse(text, &perr);
  if (!doc || !doc->is_object()) return fail("bad JSON: " + perr);
  const json::Object& o = doc->object();
  if (json::string_or(o, "v", "") != kFormat) {
    return fail("not a " + std::string(kFormat) + " document");
  }
  SearchCheckpoint cp;
  const std::string fp = json::string_or(o, "model_fp", "");
  if (!parse_u64_hex(fp, 0, &cp.model_fp.hi) || !parse_u64_hex(fp, 16, &cp.model_fp.lo)) {
    return fail("bad model_fp");
  }
  if (!parse_u64_hex(json::string_or(o, "options_digest", ""), 0, &cp.options_digest)) {
    return fail("bad options_digest");
  }
  cp.waves = static_cast<int>(json::int_or(o, "waves", 0));
  cp.nodes = static_cast<int>(json::int_or(o, "nodes", 0));
  if (o.count("incumbent") != 0) {
    if (!read_doubles(o, "incumbent", &cp.incumbent)) return fail("bad incumbent");
    cp.has_incumbent = true;
  }
  if (!read_doubles(o, "pc_sum0", &cp.pc_sum[0]) ||
      !read_doubles(o, "pc_sum1", &cp.pc_sum[1]) ||
      !read_ints(o, "pc_cnt0", &cp.pc_cnt[0]) ||
      !read_ints(o, "pc_cnt1", &cp.pc_cnt[1])) {
    return fail("bad pseudo-cost tables");
  }
  const json::Array* frontier = json::array_or_null(o, "frontier");
  if (!frontier) return fail("missing frontier");
  cp.frontier.reserve(frontier->size());
  for (const json::Value& v : *frontier) {
    if (!v.is_object()) return fail("bad frontier node");
    const json::Object& n = v.object();
    CheckpointNode node;
    node.bound = json::num_or(n, "bound", 0.0);
    if (n.count("parent_obj") != 0) {
      node.has_parent_obj = true;
      node.parent_obj = json::num_or(n, "parent_obj", 0.0);
    }
    node.branch_var = static_cast<std::uint32_t>(json::int_or(n, "branch_var", 0));
    node.branch_frac = json::num_or(n, "branch_frac", 0.0);
    node.branch_up = json::bool_or(n, "branch_up", false);
    const json::Array* fixes = json::array_or_null(n, "fixes");
    if (!fixes) return fail("bad frontier fixes");
    for (const json::Value& fv : *fixes) {
      if (!fv.is_array() || fv.array().size() != 2 || !fv.array()[0].is_number() ||
          !fv.array()[1].is_number()) {
        return fail("bad fix entry");
      }
      node.fixes.emplace_back(static_cast<std::uint32_t>(fv.array()[0].number()),
                              fv.array()[1].number());
    }
    const std::string basis = json::string_or(n, "basis", "");
    node.basis.reserve(basis.size());
    for (const char c : basis) {
      if (c < '0' || c > '2') return fail("bad basis status");
      node.basis.push_back(static_cast<std::uint8_t>(c - '0'));
    }
    cp.frontier.push_back(std::move(node));
  }
  *out = std::move(cp);
  return true;
}

bool write_checkpoint_file(const std::string& path, const SearchCheckpoint& cp) {
  if (support::fault_should_trip("checkpoint.write")) return false;
  std::string framed;
  support::io::encode_frame(encode_checkpoint(cp), &framed);
  return support::io::write_file_atomic(path, framed);
}

bool load_checkpoint_file(const std::string& path, SearchCheckpoint* out,
                          std::string* error) {
  std::string data;
  if (!support::io::read_file(path, &data)) {
    if (error) *error = "cannot read " + path;
    return false;
  }
  std::string payload;
  std::size_t consumed = 0;
  if (support::io::decode_frame(data, 0, &payload, &consumed) !=
      support::io::FrameStatus::kOk) {
    if (error) *error = "torn or corrupt checkpoint frame";
    return false;
  }
  return decode_checkpoint(payload, out, error);
}

}  // namespace partita::ilp

#include "ilp/model.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/assert.hpp"

namespace partita::ilp {

VarIndex Model::add_binary(std::string name, double objective) {
  Variable v;
  v.name = std::move(name);
  v.kind = VarKind::kBinary;
  v.lower = 0.0;
  v.upper = 1.0;
  v.objective = objective;
  vars_.push_back(std::move(v));
  return static_cast<VarIndex>(vars_.size() - 1);
}

VarIndex Model::add_continuous(std::string name, double lower, double upper,
                               double objective) {
  // invariant: models are built programmatically by the Selector; bounds are
  // derived, never user-typed.
  PARTITA_ASSERT(lower <= upper);
  Variable v;
  v.name = std::move(name);
  v.kind = VarKind::kContinuous;
  v.lower = lower;
  v.upper = upper;
  v.objective = objective;
  vars_.push_back(std::move(v));
  return static_cast<VarIndex>(vars_.size() - 1);
}

RowIndex Model::add_row(std::string name, std::vector<Term> terms, RowSense sense,
                        double rhs) {
  // Merge duplicate variables so downstream code sees a clean sparse row.
  std::sort(terms.begin(), terms.end(),
            [](const Term& a, const Term& b) { return a.var < b.var; });
  std::vector<Term> merged;
  for (const Term& t : terms) {
    PARTITA_ASSERT(t.var < vars_.size());
    if (!merged.empty() && merged.back().var == t.var) {
      merged.back().coeff += t.coeff;
    } else {
      merged.push_back(t);
    }
  }
  Row r;
  r.name = std::move(name);
  r.terms = std::move(merged);
  r.sense = sense;
  r.rhs = rhs;
  rows_.push_back(std::move(r));
  return static_cast<RowIndex>(rows_.size() - 1);
}

double Model::objective_value(const std::vector<double>& x) const {
  PARTITA_ASSERT(x.size() == vars_.size());
  double v = 0;
  for (std::size_t i = 0; i < vars_.size(); ++i) v += vars_[i].objective * x[i];
  return v;
}

bool Model::is_feasible(const std::vector<double>& x, double tol) const {
  if (x.size() != vars_.size()) return false;
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    const Variable& v = vars_[i];
    if (x[i] < v.lower - tol || x[i] > v.upper + tol) return false;
    if (v.kind == VarKind::kBinary &&
        std::min(std::abs(x[i]), std::abs(x[i] - 1.0)) > tol) {
      return false;
    }
  }
  for (const Row& r : rows_) {
    double lhs = 0;
    for (const Term& t : r.terms) lhs += t.coeff * x[t.var];
    switch (r.sense) {
      case RowSense::kLessEqual:
        if (lhs > r.rhs + tol) return false;
        break;
      case RowSense::kGreaterEqual:
        if (lhs < r.rhs - tol) return false;
        break;
      case RowSense::kEqual:
        if (std::abs(lhs - r.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

std::string Model::dump() const {
  std::ostringstream os;
  os << (sense_ == Sense::kMinimize ? "minimize" : "maximize") << '\n';
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    if (vars_[i].objective != 0) {
      os << "  " << (vars_[i].objective >= 0 ? "+" : "") << vars_[i].objective << ' '
         << vars_[i].name << '\n';
    }
  }
  os << "subject to\n";
  for (const Row& r : rows_) {
    os << "  " << r.name << ": ";
    for (const Term& t : r.terms) {
      os << (t.coeff >= 0 ? "+" : "") << t.coeff << ' ' << vars_[t.var].name << ' ';
    }
    switch (r.sense) {
      case RowSense::kLessEqual:
        os << "<= ";
        break;
      case RowSense::kGreaterEqual:
        os << ">= ";
        break;
      case RowSense::kEqual:
        os << "= ";
        break;
    }
    os << r.rhs << '\n';
  }
  os << "bounds\n";
  for (const Variable& v : vars_) {
    os << "  " << v.lower << " <= " << v.name << " <= " << v.upper
       << (v.kind == VarKind::kBinary ? " (binary)\n" : "\n");
  }
  return os.str();
}

}  // namespace partita::ilp

#include "ilp/branch_bound.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>

#include "support/assert.hpp"

namespace partita::ilp {

namespace {

/// One open node: the set of binary fixings that defines its subproblem.
struct Node {
  /// Bound in internal (minimization) space; nodes with smaller bounds are
  /// more promising.
  double bound = -kInfinity;
  std::vector<std::pair<VarIndex, double>> fixings;  // (var, fixed value)
};

struct NodeOrder {
  bool operator()(const std::shared_ptr<Node>& a, const std::shared_ptr<Node>& b) const {
    return a->bound > b->bound;  // min-heap on bound
  }
};

class Solver {
 public:
  Solver(const Model& model, const IlpOptions& opt) : model_(model), opt_(opt) {
    sign_ = model.sense() == Sense::kMinimize ? 1.0 : -1.0;
    base_lower_.resize(model.var_count());
    base_upper_.resize(model.var_count());
    for (std::size_t j = 0; j < model.var_count(); ++j) {
      base_lower_[j] = model.var(static_cast<VarIndex>(j)).lower;
      base_upper_[j] = model.var(static_cast<VarIndex>(j)).upper;
    }
  }

  IlpResult run() {
    std::priority_queue<std::shared_ptr<Node>, std::vector<std::shared_ptr<Node>>, NodeOrder>
        open;
    open.push(std::make_shared<Node>());

    while (!open.empty()) {
      if (result_.nodes_explored >= opt_.max_nodes) {
        finish(IlpStatus::kNodeLimit);
        return result_;
      }
      const std::shared_ptr<Node> node = open.top();
      open.pop();
      ++result_.nodes_explored;

      // Bound-based prune (incumbent may have improved since enqueue).
      if (has_incumbent_ && node->bound >= incumbent_obj_ - opt_.gap_tol) continue;

      // Solve this node's relaxation.
      std::vector<double> lo = base_lower_, hi = base_upper_;
      for (const auto& [v, val] : node->fixings) lo[v] = hi[v] = val;
      const LpResult lp = solve_lp(model_, lo, hi, opt_.lp);
      result_.lp_iterations += lp.iterations;

      if (lp.status == LpStatus::kInfeasible) continue;
      if (lp.status == LpStatus::kUnbounded) {
        // A relaxation unbounded in the optimization direction: with all-
        // binary decision variables this indicates an unbounded continuous
        // part; report as no solution.
        continue;
      }

      double node_bound;
      VarIndex branch_var = 0;
      bool have_branch_var = false;

      if (lp.status == LpStatus::kIterationLimit) {
        // No usable bound; keep exploring below this node.
        node_bound = -kInfinity;
        have_branch_var = pick_any_unfixed(*node, branch_var);
      } else {
        node_bound = sign_ * lp.objective;
        if (has_incumbent_ && node_bound >= incumbent_obj_ - opt_.gap_tol) continue;
        have_branch_var = pick_most_fractional(lp.x, branch_var);
        if (!have_branch_var) {
          // Integral: candidate incumbent.
          offer_incumbent(lp.x);
          continue;
        }
        try_rounding(lp.x);
      }

      if (!have_branch_var) continue;

      for (const double val : {1.0, 0.0}) {
        auto child = std::make_shared<Node>();
        child->bound = node_bound;
        child->fixings = node->fixings;
        child->fixings.emplace_back(branch_var, val);
        open.push(std::move(child));
      }
    }

    finish(IlpStatus::kOptimal);
    return result_;
  }

 private:
  void finish(IlpStatus status_if_ok) {
    if (!has_incumbent_) {
      result_.status = status_if_ok == IlpStatus::kNodeLimit ? IlpStatus::kNodeLimit
                                                             : IlpStatus::kInfeasible;
      return;
    }
    result_.status = status_if_ok;
    result_.has_solution = true;
    result_.objective = sign_ * incumbent_obj_;
    result_.x = incumbent_x_;
  }

  bool pick_most_fractional(const std::vector<double>& x, VarIndex& out) const {
    double best = opt_.int_tol;
    bool found = false;
    for (std::size_t j = 0; j < model_.var_count(); ++j) {
      if (model_.var(static_cast<VarIndex>(j)).kind != VarKind::kBinary) continue;
      const double frac = std::abs(x[j] - std::round(x[j]));
      const double score = frac;
      if (score > best ||
          (found && std::abs(score - best) < 1e-12 &&
           std::abs(model_.var(static_cast<VarIndex>(j)).objective) >
               std::abs(model_.var(out).objective))) {
        best = score;
        out = static_cast<VarIndex>(j);
        found = true;
      }
    }
    return found;
  }

  bool pick_any_unfixed(const Node& node, VarIndex& out) const {
    for (std::size_t j = 0; j < model_.var_count(); ++j) {
      if (model_.var(static_cast<VarIndex>(j)).kind != VarKind::kBinary) continue;
      const bool fixed = std::any_of(node.fixings.begin(), node.fixings.end(),
                                     [&](const auto& f) { return f.first == j; });
      if (!fixed) {
        out = static_cast<VarIndex>(j);
        return true;
      }
    }
    return false;
  }

  void offer_incumbent(const std::vector<double>& x) {
    std::vector<double> xi = x;
    for (std::size_t j = 0; j < model_.var_count(); ++j) {
      if (model_.var(static_cast<VarIndex>(j)).kind == VarKind::kBinary) {
        xi[j] = std::round(xi[j]);
      }
    }
    if (!model_.is_feasible(xi)) return;
    const double obj = sign_ * model_.objective_value(xi);
    if (!has_incumbent_ || obj < incumbent_obj_ - opt_.gap_tol) {
      has_incumbent_ = true;
      incumbent_obj_ = obj;
      incumbent_x_ = std::move(xi);
    }
  }

  /// Cheap primal heuristic: round the fractional LP point and keep it if it
  /// happens to be feasible.
  void try_rounding(const std::vector<double>& x) { offer_incumbent(x); }

  const Model& model_;
  const IlpOptions& opt_;
  double sign_ = 1.0;
  std::vector<double> base_lower_, base_upper_;

  bool has_incumbent_ = false;
  double incumbent_obj_ = kInfinity;
  std::vector<double> incumbent_x_;
  IlpResult result_;
};

}  // namespace

IlpResult solve_ilp(const Model& model, const IlpOptions& opt) {
  return Solver(model, opt).run();
}

}  // namespace partita::ilp

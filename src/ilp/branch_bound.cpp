#include "ilp/branch_bound.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "ilp/checkpoint.hpp"
#include "ilp/cuts.hpp"
#include "ilp/fingerprint.hpp"
#include "ilp/presolve.hpp"
#include "support/assert.hpp"
#include "support/fault_injection.hpp"

namespace partita::ilp {

const char* to_string(TerminationReason r) {
  switch (r) {
    case TerminationReason::kCompleted:
      return "completed";
    case TerminationReason::kNodeLimit:
      return "node-limit";
    case TerminationReason::kDeadline:
      return "deadline";
    case TerminationReason::kMemoryLimit:
      return "memory-limit";
    case TerminationReason::kCancelled:
      return "cancelled";
  }
  return "?";
}

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// One search-tree node in the arena. A node does not copy its subproblem's
/// bound vectors: it stores only the fixings it adds on top of its parent
/// (a range in the shared fix arena), and the full bounds are reconstructed
/// by walking the parent chain.
struct Node {
  double bound = -kInfinity;  // internal (minimization) bound from the parent LP
  std::int32_t parent = -1;
  std::int32_t basis_id = -1;  // parent's optimal basis (arena id), -1 = cold
  std::uint32_t first_fix = 0;
  std::uint32_t fix_count = 0;
  VarIndex branch_var = 0;
  float branch_frac = 0.0f;  // fractional part of branch_var at the parent
  bool branch_up = false;    // this node fixed branch_var to 1
  bool has_parent_obj = false;
  double parent_obj = 0.0;
};

struct HeapEntry {
  double bound;
  std::int32_t id;
};

/// Min-heap on (bound, id): smaller bound first, then smaller id -- a total
/// deterministic order.
struct HeapCmp {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.bound != b.bound) return a.bound > b.bound;
    return a.id > b.id;
  }
};

/// Fixed-lane worker pool: run(fn) executes fn(lane) for every lane, lane 0
/// on the calling thread and each other lane always on the same worker
/// thread. No work stealing -- lane k's computation is a pure function of
/// lane k's input, which keeps the search reproducible.
class LanePool {
 public:
  explicit LanePool(int lanes) : lanes_(lanes) {
    for (int k = 1; k < lanes_; ++k) {
      workers_.emplace_back([this, k] { worker_loop(k); });
    }
  }

  ~LanePool() {
    {
      std::lock_guard<std::mutex> g(mu_);
      stop_ = true;
      ++generation_;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  void run(const std::function<void(int)>& fn) {
    if (lanes_ <= 1) {
      fn(0);
      return;
    }
    {
      std::lock_guard<std::mutex> g(mu_);
      fn_ = &fn;
      done_ = 0;
      ++generation_;
    }
    cv_.notify_all();
    fn(0);
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [this] { return done_ == lanes_ - 1; });
    fn_ = nullptr;
  }

 private:
  void worker_loop(int lane) {
    std::uint64_t seen = 0;
    while (true) {
      const std::function<void(int)>* fn = nullptr;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        fn = fn_;
      }
      if (fn) (*fn)(lane);
      {
        std::lock_guard<std::mutex> g(mu_);
        ++done_;
      }
      done_cv_.notify_one();
    }
  }

  const int lanes_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_, done_cv_;
  const std::function<void(int)>* fn_ = nullptr;
  std::uint64_t generation_ = 0;
  int done_ = 0;
  bool stop_ = false;
};

class Solver {
 public:
  Solver(const Model& model, const IlpOptions& opt, BatchContext* batch)
      : model_(model),
        opt_(opt),
        batch_(batch),
        clock_(opt.budget.clock ? *opt.budget.clock : support::Clock::system()) {
    sign_ = model.sense() == Sense::kMinimize ? 1.0 : -1.0;
    lanes_count_ = std::max(1, opt.threads);
    root_lo_.resize(model.var_count());
    root_hi_.resize(model.var_count());
    for (std::size_t j = 0; j < model.var_count(); ++j) {
      root_lo_[j] = model.var(static_cast<VarIndex>(j)).lower;
      root_hi_[j] = model.var(static_cast<VarIndex>(j)).upper;
    }
    const std::size_t n = model.var_count();
    pc_sum_[0].assign(n, 0.0);
    pc_sum_[1].assign(n, 0.0);
    pc_cnt_[0].assign(n, 0);
    pc_cnt_[1].assign(n, 0);
    // Cross-request carry: adopt the neighbor's pseudo-cost tables as the
    // branching prior. Pure search-order heuristics -- the canonical optimum
    // of a completed search is unchanged (see BatchContext).
    if (batch_ != nullptr && batch_->carry_search_state &&
        batch_->has_search_state && batch_->pc_sum[0].size() == n &&
        batch_->pc_sum[1].size() == n && batch_->pc_cnt[0].size() == n &&
        batch_->pc_cnt[1].size() == n) {
      pc_sum_[0] = batch_->pc_sum[0];
      pc_sum_[1] = batch_->pc_sum[1];
      pc_cnt_[0] = batch_->pc_cnt[0];
      pc_cnt_[1] = batch_->pc_cnt[1];
      ++result_.stats.seeded_artifacts;
    }
  }

  IlpResult run() {
    const Clock::time_point t0 = Clock::now();
    budget_start_micros_ = clock_.now_micros();
    result_.stats.threads = lanes_count_;

    // ---- root presolve -----------------------------------------------------
    if (opt_.presolve) {
      const Clock::time_point tp = Clock::now();
      // Batch amortization: the clique table only depends on row structure
      // (not on the retargeted gain RHS values), so later batch items reuse
      // the first item's table instead of re-scanning every row.
      const bool reuse_cliques = batch_ != nullptr && batch_->has_cliques;
      pre_ = presolve(model_, root_lo_, root_hi_, /*extract_cliques=*/!reuse_cliques);
      if (reuse_cliques) {
        pre_.cliques = batch_->cliques;
        pre_.var_cliques = batch_->var_cliques;
        ++result_.stats.batch_hits;
      }
      result_.stats.presolve_seconds = seconds_since(tp);
      result_.stats.presolve_fixed = pre_.fixed_vars;
      result_.stats.presolve_rounds = pre_.rounds;
      if (pre_.infeasible) {
        finish(TerminationReason::kCompleted, t0);  // no incumbent => kInfeasible
        return result_;
      }
      root_lo_ = pre_.lower;
      root_hi_ = pre_.upper;
      if (batch_ != nullptr && !batch_->has_cliques) {
        batch_->cliques = pre_.cliques;
        batch_->var_cliques = pre_.var_cliques;
        batch_->has_cliques = true;
      }
    } else {
      pre_.var_cliques.assign(model_.var_count(), {});
    }

    // ---- root relaxation: batch warm start + cutting planes -----------------
    search_model_ = &model_;
    if (!root_relaxation()) {
      finish(TerminationReason::kCompleted, t0);  // root LP proves infeasible
      return result_;
    }

    // ---- seeded incumbent (cross-request carry) -----------------------------
    // The neighbor's best solution becomes the starting incumbent *iff* it is
    // feasible for this model -- offer_incumbent re-audits it, so a seed
    // invalidated by an RHS retarget is dropped, never served.
    if (batch_ != nullptr && batch_->carry_search_state && batch_->has_incumbent &&
        batch_->incumbent.size() == model_.var_count()) {
      offer_incumbent(batch_->incumbent);
      if (has_incumbent_) ++result_.stats.seeded_artifacts;
    }

    // ---- lanes and root node ----------------------------------------------
    lanes_.resize(lanes_count_);
    for (Lane& lane : lanes_) {
      lane.lp = std::make_unique<SimplexSolver>(*search_model_);
      lane.lo.resize(model_.var_count());
      lane.hi.resize(model_.var_count());
    }
    LanePool pool(lanes_count_);

    // Resume seeds the open set with the checkpointed frontier instead of
    // the root; a checkpoint for a different model or under different
    // answer-affecting options is ignored and the search starts cold.
    bool resumed = false;
    if (opt_.resume != nullptr) resumed = import_checkpoint(*opt_.resume);
    if (!resumed) {
      nodes_.push_back(Node{});
      if (opt_.warm_start && !root_basis_.empty() &&
          root_basis_.status.size() ==
              search_model_->var_count() + search_model_->row_count()) {
        // Node 0 re-prices from the already-optimal root basis instead of
        // re-running phase 1 + 2 on the relaxation just solved above.
        nodes_[0].basis_id = store_basis(std::move(root_basis_));
        basis_refs_[nodes_[0].basis_id] = 1;
      }
      push_open(0);
    }

    // ---- wave loop ---------------------------------------------------------
    // The top of each iteration is a *wave boundary*: the only point where
    // the budget is consulted, so cancellation never interrupts a lane
    // mid-LP and repeated runs with the same thread count stop at the same
    // wave. Checkpoint k happens after k-1 completed waves.
    TerminationReason stop = TerminationReason::kCompleted;
    while (true) {
      if (const auto over = budget_exceeded(t0)) {
        stop = *over;
        break;
      }
      if (result_.stats.nodes >= opt_.max_nodes) {
        stop = TerminationReason::kNodeLimit;
        break;
      }
      if (!fill_lanes()) break;  // every lane idle and the heap is empty
      pool.run([this](int lane) { solve_lane(lane); });
      for (int k = 0; k < lanes_count_; ++k) reduce_lane(k);
      ++result_.stats.waves;
      if (opt_.checkpoint_every_waves > 0 && opt_.checkpoint_sink &&
          result_.stats.waves % opt_.checkpoint_every_waves == 0) {
        opt_.checkpoint_sink(build_checkpoint());
        ++result_.stats.checkpoints_written;
      }
    }

    finish(stop, t0);
    return result_;
  }

 private:
  // --- root relaxation + cutting planes -------------------------------------

  void accumulate_root_lp(const LpResult& lp) {
    result_.stats.lp_iterations += lp.iterations;
    result_.stats.root_lp_iterations += lp.iterations;
    result_.stats.pricing_candidate_scans += lp.candidate_scans;
    result_.stats.pricing_refreshes += lp.pricing_refreshes;
  }

  /// Solves the root relaxation explicitly when cuts or a batch context ask
  /// for it: warm-starts from the batch's previous root basis, separates
  /// root cuts into an extended copy of the model (the *search* model: same
  /// variables, extra <= rows), and leaves the final root basis for node 0.
  /// Returns false iff the root LP proves the subproblem infeasible --
  /// extended-LP infeasibility also qualifies, because cuts retain every
  /// integer-feasible point.
  bool root_relaxation() {
    if (!opt_.cuts && batch_ == nullptr) return true;  // legacy path: node 0 solves cold
    SimplexSolver root(model_);
    LpResult lp;
    if (batch_ != nullptr &&
        batch_->root_basis.status.size() == model_.var_count() + model_.row_count()) {
      lp = root.solve_warm(root_lo_, root_hi_, batch_->root_basis, opt_.lp);
      if (lp.warm_started) ++result_.stats.batch_hits;
    } else {
      lp = root.solve(root_lo_, root_hi_, opt_.lp);
    }
    accumulate_root_lp(lp);
    if (lp.status == LpStatus::kInfeasible) return false;
    if (lp.status != LpStatus::kOptimal) return true;  // no usable fractional point
    if (batch_ != nullptr) batch_->root_basis = root.last_basis();
    root_basis_ = root.last_basis();

    if (!opt_.cuts) return true;
    std::vector<double> x = lp.x;
    for (int round = 0; round < opt_.max_cut_rounds; ++round) {
      // Separating against the *extended* model is self-deduplicating: a cut
      // already present as a row is satisfied by that LP's optimum, so it can
      // never come back violated.
      std::vector<Cut> cuts =
          separate_cuts(*search_model_, pre_.cliques, x, root_lo_, root_hi_);
      if (cuts.empty()) break;
      result_.stats.cuts_separated += static_cast<int>(cuts.size());
      ++result_.stats.cut_rounds;
      if (search_model_ == &model_) {
        ext_model_ = model_;  // copy once, on the first applied round
        search_model_ = &ext_model_;
      }
      for (Cut& cut : cuts) {
        ext_model_.add_row(std::move(cut.name), std::move(cut.terms), cut.sense, cut.rhs);
      }
      result_.stats.cuts_applied += static_cast<int>(cuts.size());
      SimplexSolver ext_root(ext_model_);
      lp = ext_root.solve(root_lo_, root_hi_, opt_.lp);
      accumulate_root_lp(lp);
      if (lp.status == LpStatus::kInfeasible) return false;
      if (lp.status != LpStatus::kOptimal) {
        root_basis_.status.clear();  // shape mismatch with the search model
        return true;
      }
      root_basis_ = ext_root.last_basis();
      x = lp.x;
    }
    return true;
  }

  struct Lane {
    std::unique_ptr<SimplexSolver> lp;
    std::vector<double> lo, hi;  // reconstructed bounds of the current node
    std::int32_t node_id = -1;
    LpResult result;
    Basis opt_basis;  // optimal basis of the current node's LP
    int plunge = 0;   // consecutive dives in this lane
  };

  // --- checkpoint/resume ----------------------------------------------------

  /// Snapshot of the live search at a wave boundary: every open node (heap
  /// + lane-parked plunge continuations) as a fix delta against the
  /// presolved root, the incumbent, and the pseudo-cost tables.
  SearchCheckpoint build_checkpoint() {
    SearchCheckpoint cp;
    cp.model_fp = fingerprint_model(model_);
    cp.options_digest = digest_options(opt_);
    cp.waves = result_.stats.waves;
    cp.nodes = result_.stats.nodes;
    if (has_incumbent_) {
      cp.has_incumbent = true;
      cp.incumbent = incumbent_x_;
    }
    for (int d = 0; d < 2; ++d) {
      cp.pc_sum[d] = pc_sum_[d];
      cp.pc_cnt[d] = pc_cnt_[d];
    }
    const auto add_node = [&](std::int32_t id) {
      const Node& node = nodes_[id];
      CheckpointNode cn;
      // The unsolved root is the only node with an infinite bound and is
      // consumed in wave 1, before any checkpoint; clamp defensively so the
      // JSON document never carries a non-finite number.
      cn.bound = std::isfinite(node.bound) ? node.bound : -1e300;
      cn.has_parent_obj = node.has_parent_obj;
      cn.parent_obj = node.parent_obj;
      cn.branch_var = node.branch_var;
      cn.branch_frac = node.branch_frac;
      cn.branch_up = node.branch_up;
      reconstruct_bounds(id, scratch_lo_, scratch_hi_);
      for (std::size_t j = 0; j < scratch_lo_.size(); ++j) {
        if (scratch_lo_[j] == scratch_hi_[j] && root_lo_[j] != root_hi_[j]) {
          cn.fixes.emplace_back(static_cast<std::uint32_t>(j), scratch_lo_[j]);
        }
      }
      if (node.basis_id >= 0) {
        const Basis& b = bases_[node.basis_id];
        cn.basis.reserve(b.status.size());
        for (const BasisStatus st : b.status) {
          cn.basis.push_back(static_cast<std::uint8_t>(st));
        }
      }
      cp.frontier.push_back(std::move(cn));
    };
    for (const HeapEntry& e : open_) add_node(e.id);
    for (const Lane& lane : lanes_) {
      if (lane.node_id >= 0) add_node(lane.node_id);
    }
    return cp;
  }

  /// Seeds the search from a checkpoint: validates compatibility, restores
  /// the pseudo-cost tables, re-audits the incumbent (offer_incumbent drops
  /// an infeasible seed), and recreates every frontier node as a parentless
  /// arena node whose fixes are the full root-to-node delta. Returns false
  /// (cold start) on any mismatch.
  bool import_checkpoint(const SearchCheckpoint& cp) {
    if (!resume_compatible(cp, fingerprint_model(model_), digest_options(opt_))) {
      return false;
    }
    const std::size_t n = model_.var_count();
    if (cp.has_incumbent && cp.incumbent.size() != n) return false;
    for (const CheckpointNode& cn : cp.frontier) {
      for (const auto& [j, val] : cn.fixes) {
        if (j >= n) return false;
      }
    }
    if (cp.pc_sum[0].size() == n && cp.pc_sum[1].size() == n &&
        cp.pc_cnt[0].size() == n && cp.pc_cnt[1].size() == n) {
      for (int d = 0; d < 2; ++d) {
        pc_sum_[d] = cp.pc_sum[d];
        pc_cnt_[d] = cp.pc_cnt[d];
      }
    }
    if (cp.has_incumbent) offer_incumbent(cp.incumbent);
    const std::size_t basis_len =
        search_model_->var_count() + search_model_->row_count();
    for (const CheckpointNode& cn : cp.frontier) {
      Node node;
      node.bound = cn.bound;
      node.parent = -1;  // fixes are the complete delta vs the presolved root
      node.first_fix = static_cast<std::uint32_t>(fixes_.size());
      for (const auto& [j, val] : cn.fixes) {
        fixes_.emplace_back(static_cast<VarIndex>(j), val);
      }
      node.fix_count = static_cast<std::uint32_t>(fixes_.size()) - node.first_fix;
      node.branch_var = static_cast<VarIndex>(cn.branch_var);
      node.branch_frac = static_cast<float>(cn.branch_frac);
      node.branch_up = cn.branch_up;
      node.has_parent_obj = cn.has_parent_obj;
      node.parent_obj = cn.parent_obj;
      // A basis whose shape no longer matches the search model (e.g. a
      // different cut-row count) is dropped: the node LP solves cold, which
      // is slower but answer-identical.
      if (!cn.basis.empty() && cn.basis.size() == basis_len) {
        Basis b;
        b.status.reserve(cn.basis.size());
        for (const std::uint8_t st : cn.basis) {
          b.status.push_back(static_cast<BasisStatus>(st));
        }
        node.basis_id = store_basis(std::move(b));
        basis_refs_[node.basis_id] = 1;
      }
      nodes_.push_back(node);
      push_open(static_cast<std::int32_t>(nodes_.size()) - 1);
    }
    result_.stats.resumed_frontier = static_cast<int>(cp.frontier.size());
    return true;
  }

  // --- resource budget ------------------------------------------------------

  /// Bytes currently committed to the search arenas (nodes, fix deltas,
  /// parked warm-start bases, open heap). Capacity-based, so it reflects
  /// reserved rather than touched memory.
  std::size_t arena_bytes() const {
    std::size_t bytes = nodes_.capacity() * sizeof(Node) +
                        fixes_.capacity() * sizeof(std::pair<VarIndex, double>) +
                        bases_.capacity() * sizeof(Basis) +
                        basis_refs_.capacity() * sizeof(int) +
                        basis_free_.capacity() * sizeof(std::int32_t) +
                        open_.capacity() * sizeof(HeapEntry);
    for (const Basis& b : bases_) bytes += b.status.capacity() * sizeof(BasisStatus);
    return bytes;
  }

  /// Wave-boundary checkpoint. The "ilp.deadline" fault site models an
  /// expired deadline (trip-at-Nth-checkpoint), which is how tests exercise
  /// the cancellation path without real clock pressure. The cancel token is
  /// consulted first, so a cancelled solve reports kCancelled even when a
  /// deadline expired in the same wave. The deadline reads the *injected*
  /// clock (budget.clock), never steady_clock directly.
  std::optional<TerminationReason> budget_exceeded(Clock::time_point) {
    if (opt_.budget.cancel.cancelled()) {
      return TerminationReason::kCancelled;
    }
    if (support::fault_should_trip("ilp.deadline") ||
        (opt_.budget.time_limit_seconds > 0 &&
         static_cast<double>(clock_.now_micros() - budget_start_micros_) * 1e-6 >=
             opt_.budget.time_limit_seconds)) {
      return TerminationReason::kDeadline;
    }
    const std::size_t bytes = arena_bytes();
    result_.stats.peak_arena_bytes = std::max(result_.stats.peak_arena_bytes, bytes);
    if (arena_alloc_failed_ || (opt_.budget.memory_limit_bytes > 0 &&
                                bytes > opt_.budget.memory_limit_bytes)) {
      return TerminationReason::kMemoryLimit;
    }
    return std::nullopt;
  }

  // --- open set -------------------------------------------------------------

  void push_open(std::int32_t id) {
    open_.push_back({nodes_[id].bound, id});
    std::push_heap(open_.begin(), open_.end(), HeapCmp{});
  }

  std::int32_t pop_open() {
    std::pop_heap(open_.begin(), open_.end(), HeapCmp{});
    const std::int32_t id = open_.back().id;
    open_.pop_back();
    return id;
  }

  /// Assigns a node to every idle lane (plunging lanes keep theirs). Returns
  /// false when no lane received a node -- the search is exhausted.
  bool fill_lanes() {
    bool any = false;
    for (Lane& lane : lanes_) {
      if (lane.node_id >= 0) {  // plunge continuation, counted at assignment
        any = true;
        continue;
      }
      while (!open_.empty() && result_.stats.nodes < opt_.max_nodes) {
        const std::int32_t id = pop_open();
        ++result_.stats.nodes;
        const Node& node = nodes_[id];
        bool prune = false;
        if (has_incumbent_) {
          const double inc = incumbent_obj_.load();
          if (node.bound > inc + opt_.gap_tol) {
            prune = true;
          } else if (node.bound >= inc - opt_.gap_tol) {
            if (opt_.canonical_ties) {
              reconstruct_bounds(id, scratch_lo_, scratch_hi_);
              prune = !lex_improvable(scratch_lo_);
            } else {
              prune = true;
            }
          }
        }
        if (prune) {
          release_basis(node.basis_id);
          continue;  // the incumbent improved since enqueue
        }
        lane.node_id = id;
        lane.plunge = 0;
        any = true;
        break;
      }
    }
    return any;
  }

  // --- wave: parallel node relaxations -------------------------------------

  void solve_lane(int k) {
    Lane& lane = lanes_[k];
    if (lane.node_id < 0) return;
    reconstruct_bounds(lane.node_id, lane.lo, lane.hi);
    const Node& node = nodes_[lane.node_id];
    if (opt_.warm_start && node.basis_id >= 0) {
      lane.result = lane.lp->solve_warm(lane.lo, lane.hi, bases_[node.basis_id], opt_.lp);
    } else {
      lane.result = lane.lp->solve(lane.lo, lane.hi, opt_.lp);
    }
    lane.opt_basis = lane.lp->last_basis();
  }

  void reconstruct_bounds(std::int32_t id, std::vector<double>& lo,
                          std::vector<double>& hi) const {
    lo = root_lo_;
    hi = root_hi_;
    // Deltas applied root-first so a (hypothetical) re-fixing resolves to the
    // deepest decision; order within one node does not matter.
    std::int32_t chain[256];
    int depth = 0;
    for (std::int32_t c = id; c >= 0 && depth < 256; c = nodes_[c].parent) {
      chain[depth++] = c;
    }
    for (int i = depth - 1; i >= 0; --i) {
      const Node& node = nodes_[chain[i]];
      for (std::uint32_t f = 0; f < node.fix_count; ++f) {
        const auto& [v, val] = fixes_[node.first_fix + f];
        lo[v] = hi[v] = val;
      }
    }
  }

  // --- reduction: deterministic, in lane order ------------------------------

  void reduce_lane(int k) {
    Lane& lane = lanes_[k];
    if (lane.node_id < 0) return;
    const std::int32_t id = lane.node_id;
    lane.node_id = -1;
    const Node node = nodes_[id];  // copy: the arena may grow below
    release_basis(node.basis_id);

    const LpResult& lp = lane.result;
    result_.stats.lp_iterations += lp.iterations;
    result_.stats.pricing_candidate_scans += lp.candidate_scans;
    result_.stats.pricing_refreshes += lp.pricing_refreshes;
    if (lp.status == LpStatus::kOptimal || lp.status == LpStatus::kInfeasible) {
      if (lp.warm_started) ++result_.stats.warm_starts;
      else ++result_.stats.cold_starts;
    }

    if (lp.status == LpStatus::kInfeasible) return;
    if (lp.status == LpStatus::kUnbounded) {
      // A relaxation unbounded in the optimization direction: with all-
      // binary decision variables this indicates an unbounded continuous
      // part; report as no solution.
      return;
    }

    double node_bound;
    VarIndex branch_var = 0;
    double branch_frac = 0.0;
    bool have_branch_var = false;

    if (lp.status == LpStatus::kIterationLimit) {
      // No usable bound; keep exploring below this node.
      node_bound = node.bound;
      have_branch_var = pick_any_unfixed(lane.lo, lane.hi, branch_var);
      branch_frac = 0.5;
    } else {
      node_bound = sign_ * lp.objective;
      if (node.has_parent_obj) update_pseudo_cost(node, node_bound);
      if (pruned_by_bound(node_bound, lane.lo)) return;
      have_branch_var = pick_branch_var(lp.x, branch_var, branch_frac);
      if (!have_branch_var) {
        offer_incumbent(lp.x);  // integral: candidate incumbent
        return;
      }
      try_rounding(lp.x);
      if (pruned_by_bound(node_bound, lane.lo)) return;
    }
    if (!have_branch_var) return;

    // Parent basis for the children's warm starts.
    std::int32_t basis_id = -1;
    if (opt_.warm_start && lp.status == LpStatus::kOptimal && !lane.opt_basis.empty()) {
      basis_id = store_basis(std::move(lane.opt_basis));
    }

    // Children: the preferred side continues the lane's plunge, the other
    // goes to the best-bound heap.
    const std::int32_t down = make_child(id, node_bound, lp.status == LpStatus::kOptimal,
                                         basis_id, branch_var, branch_frac,
                                         /*up=*/false, lane.lo, lane.hi);
    const std::int32_t up = make_child(id, node_bound, lp.status == LpStatus::kOptimal,
                                       basis_id, branch_var, branch_frac,
                                       /*up=*/true, lane.lo, lane.hi);
    if (basis_id >= 0 && basis_refs_[basis_id] == 0) free_basis_slot(basis_id);

    const bool prefer_up =
        pc_estimate(1, branch_var) * (1.0 - branch_frac) <=
        pc_estimate(0, branch_var) * branch_frac;
    std::int32_t dive = prefer_up ? up : down;
    std::int32_t other = prefer_up ? down : up;
    if (dive < 0) std::swap(dive, other);

    if (dive >= 0 && lane.plunge < opt_.max_plunge_depth &&
        result_.stats.nodes < opt_.max_nodes) {
      lane.node_id = dive;
      ++lane.plunge;
      ++result_.stats.nodes;
    } else if (dive >= 0) {
      push_open(dive);
    }
    if (other >= 0) push_open(other);
  }

  /// Creates a child node (branch fixing + clique propagation); returns -1
  /// when the child is pruned or proven infeasible immediately.
  std::int32_t make_child(std::int32_t parent, double bound, bool bound_usable,
                          std::int32_t basis_id, VarIndex var, double frac, bool up,
                          const std::vector<double>& lo, const std::vector<double>& hi) {
    if (has_incumbent_ && bound > incumbent_obj_.load() + opt_.gap_tol) return -1;

    // Test-only allocation-failure injection: behaves exactly like a failed
    // arena reservation -- the child is dropped and the next wave-boundary
    // check turns the sticky flag into a kMemoryLimit stop. Runs on the
    // reducer thread, so the checkpoint count is deterministic.
    if (support::fault_should_trip("ilp.node_arena")) {
      arena_alloc_failed_ = true;
      return -1;
    }

    const std::uint32_t first_fix = static_cast<std::uint32_t>(fixes_.size());
    fixes_.emplace_back(var, up ? 1.0 : 0.0);
    if (up) {
      // Fixing a clique member to 1 zeroes every other member. A sibling
      // already fixed to 1 proves the child infeasible outright.
      for (std::uint32_t cl : pre_.var_cliques[var]) {
        for (VarIndex w : pre_.cliques[cl]) {
          if (w == var || hi[w] <= 0.5) continue;
          if (lo[w] > 0.5) {
            fixes_.resize(first_fix);
            return -1;
          }
          fixes_.emplace_back(w, 0.0);
          ++result_.stats.clique_propagations;
        }
      }
    }

    // In the incumbent's tie window the child survives only while it can
    // still improve the canonical (lexicographic) tie-break.
    if (has_incumbent_ && bound >= incumbent_obj_.load() - opt_.gap_tol) {
      bool keep = false;
      if (opt_.canonical_ties) {
        scratch_lo_ = lo;
        for (std::uint32_t f = first_fix; f < fixes_.size(); ++f) {
          scratch_lo_[fixes_[f].first] = fixes_[f].second;
        }
        keep = lex_improvable(scratch_lo_);
      }
      if (!keep) {
        fixes_.resize(first_fix);
        return -1;
      }
    }

    Node child;
    child.bound = bound;
    child.parent = parent;
    child.first_fix = first_fix;
    child.fix_count = static_cast<std::uint32_t>(fixes_.size()) - first_fix;
    child.branch_var = var;
    child.branch_frac = static_cast<float>(frac);
    child.branch_up = up;
    child.has_parent_obj = bound_usable;
    child.parent_obj = bound;
    if (basis_id >= 0) {
      child.basis_id = basis_id;
      ++basis_refs_[basis_id];
    }
    nodes_.push_back(child);
    return static_cast<std::int32_t>(nodes_.size()) - 1;
  }

  // --- basis arena ----------------------------------------------------------

  std::int32_t store_basis(Basis&& basis) {
    std::int32_t id;
    if (!basis_free_.empty()) {
      id = basis_free_.back();
      basis_free_.pop_back();
      bases_[id] = std::move(basis);
      basis_refs_[id] = 0;
    } else {
      id = static_cast<std::int32_t>(bases_.size());
      bases_.push_back(std::move(basis));
      basis_refs_.push_back(0);
    }
    return id;
  }

  void release_basis(std::int32_t id) {
    if (id < 0) return;
    if (--basis_refs_[id] == 0) free_basis_slot(id);
  }

  void free_basis_slot(std::int32_t id) {
    bases_[id].status.clear();
    bases_[id].status.shrink_to_fit();
    basis_free_.push_back(id);
  }

  // --- branching ------------------------------------------------------------

  double pc_estimate(int dir, VarIndex v) const {
    if (pc_cnt_[dir][v] > 0) return pc_sum_[dir][v] / pc_cnt_[dir][v];
    // Uninitialized: degradation proportional to the objective weight.
    return std::abs(model_.var(v).objective) + 1.0;
  }

  void update_pseudo_cost(const Node& node, double node_bound) {
    const double degradation = std::max(0.0, node_bound - node.parent_obj);
    const double f = node.branch_frac;
    const int dir = node.branch_up ? 1 : 0;
    const double dist = node.branch_up ? std::max(1.0 - f, 1e-6) : std::max(f + 0.0, 1e-6);
    pc_sum_[dir][node.branch_var] += degradation / dist;
    ++pc_cnt_[dir][node.branch_var];
  }

  bool pick_branch_var(const std::vector<double>& x, VarIndex& out,
                       double& out_frac) const {
    double best_score = -1.0;
    bool found = false;
    for (std::size_t j = 0; j < model_.var_count(); ++j) {
      if (model_.var(static_cast<VarIndex>(j)).kind != VarKind::kBinary) continue;
      const double frac = std::abs(x[j] - std::round(x[j]));
      if (frac <= opt_.int_tol) continue;
      const double score =
          std::max(pc_estimate(0, static_cast<VarIndex>(j)) * frac, 1e-12) *
          std::max(pc_estimate(1, static_cast<VarIndex>(j)) * (1.0 - frac), 1e-12);
      if (score > best_score) {
        best_score = score;
        out = static_cast<VarIndex>(j);
        out_frac = frac;
        found = true;
      }
    }
    return found;
  }

  bool pick_any_unfixed(const std::vector<double>& lo, const std::vector<double>& hi,
                        VarIndex& out) const {
    for (std::size_t j = 0; j < model_.var_count(); ++j) {
      if (model_.var(static_cast<VarIndex>(j)).kind != VarKind::kBinary) continue;
      if (lo[j] < hi[j] - opt_.int_tol) {
        out = static_cast<VarIndex>(j);
        return true;
      }
    }
    return false;
  }

  // --- pruning --------------------------------------------------------------

  /// True while a subtree whose componentwise lower-bound vector is `lo` can
  /// still contain a solution strictly lex-smaller than the incumbent. Every
  /// solution in the subtree satisfies x >= lo componentwise, and
  /// componentwise >= implies lexicographic >=, so this test is a sound
  /// prune; keeping exactly these nodes alive makes the reported optimum the
  /// lexicographically smallest optimal vector -- a canonical answer that
  /// does not depend on search order or thread count.
  bool lex_improvable(const std::vector<double>& lo) const {
    for (std::size_t j = 0; j < lo.size(); ++j) {
      const double d = lo[j] - incumbent_x_[j];
      if (d < -opt_.int_tol) return true;
      if (d > opt_.int_tol) return false;
    }
    return false;  // equal everywhere: cannot be strictly smaller
  }

  /// Objective-based prune that keeps equal-objective (tie-window) nodes
  /// alive while they may still lex-improve the incumbent.
  bool pruned_by_bound(double bound, const std::vector<double>& lo) const {
    if (!has_incumbent_) return false;
    const double inc = incumbent_obj_.load();
    if (bound > inc + opt_.gap_tol) return true;
    if (bound < inc - opt_.gap_tol) return false;
    return !opt_.canonical_ties || !lex_improvable(lo);
  }

  // --- incumbent ------------------------------------------------------------

  void offer_incumbent(const std::vector<double>& x) {
    std::vector<double> xi = x;
    for (std::size_t j = 0; j < model_.var_count(); ++j) {
      if (model_.var(static_cast<VarIndex>(j)).kind == VarKind::kBinary) {
        xi[j] = std::round(xi[j]);
      }
    }
    if (!model_.is_feasible(xi)) return;
    const double obj = sign_ * model_.objective_value(xi);
    const double inc = incumbent_obj_.load();
    const bool better = !has_incumbent_ || obj < inc - opt_.gap_tol;
    // Equal-objective tie-break on the solution vector keeps the reported
    // selection independent of search order (and therefore of thread count)
    // whenever ties exist at the optimum.
    const bool tie_wins = opt_.canonical_ties && has_incumbent_ &&
                          obj <= inc + opt_.gap_tol &&
                          std::lexicographical_compare(xi.begin(), xi.end(),
                                                       incumbent_x_.begin(),
                                                       incumbent_x_.end());
    if (better || tie_wins) {
      has_incumbent_ = true;
      incumbent_obj_.store(tie_wins ? std::min(obj, inc) : obj);
      incumbent_x_ = std::move(xi);
    }
  }

  /// Cheap primal heuristic: round the fractional LP point and keep it if it
  /// happens to be feasible.
  void try_rounding(const std::vector<double>& x) { offer_incumbent(x); }

  // --- wrap-up --------------------------------------------------------------

  void finish(TerminationReason reason, Clock::time_point t0) {
    // Export the search state for the next same-structure solve. Done before
    // the result is assembled so even infeasible/truncated runs leave their
    // (still valid) branching statistics behind.
    if (batch_ != nullptr && batch_->carry_search_state) {
      for (int d = 0; d < 2; ++d) {
        batch_->pc_sum[d] = pc_sum_[d];
        batch_->pc_cnt[d] = pc_cnt_[d];
      }
      batch_->has_search_state = true;
      if (has_incumbent_) {
        batch_->incumbent = incumbent_x_;
        batch_->has_incumbent = true;
      }
    }
    result_.stats.termination = reason;
    result_.stats.total_seconds = seconds_since(t0);
    result_.stats.search_seconds =
        result_.stats.total_seconds - result_.stats.presolve_seconds;
    result_.stats.peak_arena_bytes =
        std::max(result_.stats.peak_arena_bytes, arena_bytes());
    result_.nodes_explored = result_.stats.nodes;
    result_.lp_iterations = result_.stats.lp_iterations;

    const bool truncated = reason != TerminationReason::kCompleted;
    const IlpStatus truncated_status = reason == TerminationReason::kNodeLimit
                                           ? IlpStatus::kNodeLimit
                                           : IlpStatus::kResourceLimit;

    // Global lower bound (internal sense): open nodes still in the heap or
    // parked in a lane, else the incumbent itself.
    double lb = has_incumbent_ ? incumbent_obj_.load() : kInfinity;
    if (truncated) {
      for (const HeapEntry& e : open_) lb = std::min(lb, e.bound);
      for (const Lane& lane : lanes_) {
        if (lane.node_id >= 0) lb = std::min(lb, nodes_[lane.node_id].bound);
      }
    }

    if (!has_incumbent_) {
      result_.status = truncated ? truncated_status : IlpStatus::kInfeasible;
      result_.best_bound = std::isfinite(lb) ? sign_ * lb : 0.0;
      return;
    }
    result_.status = truncated ? truncated_status : IlpStatus::kOptimal;
    result_.has_solution = true;
    result_.objective = sign_ * incumbent_obj_.load();
    result_.best_bound = sign_ * lb;
    result_.x = incumbent_x_;
  }

  const Model& model_;
  const IlpOptions& opt_;
  BatchContext* batch_ = nullptr;
  // Search model: `model_` itself, or `ext_model_` (model_ + root cut rows)
  // once a separation round applied cuts. Incumbent checks and branching
  // always use `model_` -- the variable set is identical and every cut is
  // valid for the original integer feasible set.
  const Model* search_model_ = nullptr;
  Model ext_model_;
  Basis root_basis_;
  support::Clock& clock_;               // deadline clock (injectable)
  std::int64_t budget_start_micros_ = 0;
  double sign_ = 1.0;
  int lanes_count_ = 1;
  std::vector<double> root_lo_, root_hi_;
  std::vector<double> scratch_lo_, scratch_hi_;  // prune-time reconstruction
  PresolveResult pre_;

  // Arenas.
  std::vector<Node> nodes_;
  std::vector<std::pair<VarIndex, double>> fixes_;
  std::vector<Basis> bases_;
  std::vector<int> basis_refs_;
  std::vector<std::int32_t> basis_free_;

  // Search state.
  std::vector<HeapEntry> open_;
  std::vector<Lane> lanes_;
  std::atomic<double> incumbent_obj_{kInfinity};
  bool has_incumbent_ = false;
  std::vector<double> incumbent_x_;
  std::vector<double> pc_sum_[2];
  std::vector<int> pc_cnt_[2];
  bool arena_alloc_failed_ = false;  // sticky: set by a failed arena reservation
  IlpResult result_;
};

}  // namespace

IlpResult solve_ilp(const Model& model, const IlpOptions& opt) {
  return Solver(model, opt, nullptr).run();
}

IlpResult solve_ilp(const Model& model, const IlpOptions& opt, BatchContext* batch) {
  IlpResult res = Solver(model, opt, batch).run();
  if (batch != nullptr) ++batch->items;
  return res;
}

}  // namespace partita::ilp

#include "ilp/presolve.hpp"

#include <algorithm>
#include <cmath>

namespace partita::ilp {

namespace {

constexpr double kEps = 1e-9;
constexpr int kMaxRounds = 10;

double min_contribution(double coeff, double lb, double ub) {
  return coeff >= 0 ? coeff * lb : coeff * ub;
}

double max_contribution(double coeff, double lb, double ub) {
  return coeff >= 0 ? coeff * ub : coeff * lb;
}

}  // namespace

PresolveResult presolve(const Model& model, const std::vector<double>& lower,
                        const std::vector<double>& upper, bool extract_cliques) {
  PresolveResult res;
  res.lower = lower;
  res.upper = upper;
  const std::size_t n = model.var_count();

  auto is_binary = [&](VarIndex v) {
    return model.var(v).kind == VarKind::kBinary;
  };

  // Tightens one variable bound; returns true on change, flags infeasibility.
  auto tighten_ub = [&](VarIndex v, double nu) -> bool {
    if (!(nu < res.upper[v] - kEps)) return false;
    if (is_binary(v)) {
      if (nu < 1.0 - kEps) nu = std::min(nu, 0.0);  // binary: ub < 1 => 0
      if (nu < -kEps) {
        res.infeasible = true;
        return false;
      }
      nu = std::max(nu, 0.0);
      if (!(nu < res.upper[v] - kEps)) return false;
      ++res.fixed_vars;
    } else {
      ++res.tightenings;
    }
    res.upper[v] = nu;
    if (res.lower[v] > res.upper[v] + kEps) res.infeasible = true;
    return true;
  };
  auto tighten_lb = [&](VarIndex v, double nl) -> bool {
    if (!(nl > res.lower[v] + kEps)) return false;
    if (is_binary(v)) {
      if (nl > kEps) nl = std::max(nl, 1.0);  // binary: lb > 0 => 1
      if (nl > 1.0 + kEps) {
        res.infeasible = true;
        return false;
      }
      nl = std::min(nl, 1.0);
      if (!(nl > res.lower[v] + kEps)) return false;
      ++res.fixed_vars;
    } else {
      ++res.tightenings;
    }
    res.lower[v] = nl;
    if (res.lower[v] > res.upper[v] + kEps) res.infeasible = true;
    return true;
  };

  // --- activity-based bound propagation to a fixpoint -----------------------
  bool changed = true;
  while (changed && !res.infeasible && res.rounds < kMaxRounds) {
    changed = false;
    ++res.rounds;
    for (const Row& row : model.rows()) {
      double min_act = 0, max_act = 0;
      for (const Term& t : row.terms) {
        min_act += min_contribution(t.coeff, res.lower[t.var], res.upper[t.var]);
        max_act += max_contribution(t.coeff, res.lower[t.var], res.upper[t.var]);
      }
      const bool need_le = row.sense != RowSense::kGreaterEqual;
      const bool need_ge = row.sense != RowSense::kLessEqual;
      if (need_le && min_act > row.rhs + kEps) {
        res.infeasible = true;
        break;
      }
      if (need_ge && max_act < row.rhs - kEps) {
        res.infeasible = true;
        break;
      }
      for (const Term& t : row.terms) {
        if (res.lower[t.var] >= res.upper[t.var] - kEps) continue;  // fixed
        if (t.coeff == 0.0) continue;
        if (need_le) {
          const double rest = min_act -
              min_contribution(t.coeff, res.lower[t.var], res.upper[t.var]);
          if (std::isfinite(rest)) {
            const double limit = (row.rhs - rest) / t.coeff;
            changed |= t.coeff > 0 ? tighten_ub(t.var, limit) : tighten_lb(t.var, limit);
          }
        }
        if (need_ge) {
          const double rest = max_act -
              max_contribution(t.coeff, res.lower[t.var], res.upper[t.var]);
          if (std::isfinite(rest)) {
            const double limit = (row.rhs - rest) / t.coeff;
            changed |= t.coeff > 0 ? tighten_lb(t.var, limit) : tighten_ub(t.var, limit);
          }
        }
        if (res.infeasible) break;
      }
      if (res.infeasible) break;
    }
  }
  if (res.infeasible) return res;

  // --- clique extraction (at-most-one rows over binaries) --------------------
  res.var_cliques.assign(n, {});
  if (!extract_cliques) return res;
  for (const Row& row : model.rows()) {
    if (row.sense == RowSense::kGreaterEqual) continue;
    if (row.rhs < 1.0 - kEps || row.rhs >= 2.0 - kEps) continue;
    bool unit = !row.terms.empty();
    for (const Term& t : row.terms) {
      if (std::abs(t.coeff - 1.0) > kEps || !is_binary(t.var)) {
        unit = false;
        break;
      }
    }
    if (!unit) continue;
    std::vector<VarIndex> members;
    for (const Term& t : row.terms) {
      if (res.upper[t.var] > 0.5) members.push_back(t.var);
    }
    if (members.size() < 2) continue;
    const auto id = static_cast<std::uint32_t>(res.cliques.size());
    for (VarIndex v : members) res.var_cliques[v].push_back(id);
    res.cliques.push_back(std::move(members));
  }
  return res;
}

}  // namespace partita::ilp

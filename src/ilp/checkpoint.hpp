// Checkpoint/resume of an in-flight branch & bound search.
//
// A SearchCheckpoint captures everything the solver needs to continue a
// search instead of restarting it cold: the open-node frontier (each node as
// its bound-fix delta against the presolved root, plus its parent's optimal
// basis for the warm start), the incumbent, and the pseudo-cost tables. The
// solver offers one cooperatively at wave boundaries -- the same points
// where budgets and cancellation are checked -- via
// IlpOptions::checkpoint_sink, and consumes one via IlpOptions::resume.
//
// Answer identity. Resuming changes *how* the search reaches the optimum
// (wave composition, plunge order), never *what* it reports: with canonical
// tie-breaking a COMPLETED search always returns the lexicographically
// smallest optimal vector, which is invariant to search order. The frontier
// is exhaustive (open heap + lane-parked plunge nodes), every stored bound
// is a valid subtree bound, and the incumbent is re-audited against the
// model on import, so no optimal solution is lost across the
// checkpoint/resume edge. checkpoint_resume_test proves bit-identity
// differentially.
//
// Wire format: one CRC frame (support/io) holding a partita-checkpoint-v1
// JSON document. The model fingerprint and options digest ride inside;
// resume_compatible() refuses a checkpoint taken for a different model or
// under different answer-affecting options.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ilp/fingerprint.hpp"

namespace partita::ilp {

/// One frontier node: the subtree it roots, as a delta against the presolved
/// root bounds.
struct CheckpointNode {
  /// Internal-sense (minimization) bound inherited from the parent LP.
  double bound = 0.0;
  bool has_parent_obj = false;
  double parent_obj = 0.0;
  /// Branching decision that created this node (pseudo-cost bookkeeping).
  std::uint32_t branch_var = 0;
  double branch_frac = 0.0;
  bool branch_up = false;
  /// Variables fixed on the root-to-node path: (column, value) pairs.
  std::vector<std::pair<std::uint32_t, double>> fixes;
  /// Parent's optimal basis statuses (search-model shape); empty = cold LP.
  std::vector<std::uint8_t> basis;
};

struct SearchCheckpoint {
  /// fingerprint_model of the original model the search was solving.
  Fingerprint model_fp;
  /// digest_options of the answer-affecting solver options.
  std::uint64_t options_digest = 0;
  /// Progress at capture time (observability only).
  int waves = 0;
  int nodes = 0;
  bool has_incumbent = false;
  std::vector<double> incumbent;
  /// Pseudo-cost tables per branch direction (search-order heuristics).
  std::vector<double> pc_sum[2];
  std::vector<int> pc_cnt[2];
  /// Open nodes: best-bound heap entries plus lane-parked plunge nodes.
  std::vector<CheckpointNode> frontier;
};

/// True when `cp` may seed a solve of a model with fingerprint `fp` under
/// options digesting to `digest`.
bool resume_compatible(const SearchCheckpoint& cp, const Fingerprint& fp,
                       std::uint64_t digest);

/// partita-checkpoint-v1 JSON document (no CRC frame).
std::string encode_checkpoint(const SearchCheckpoint& cp);

/// Parses an encode_checkpoint document. Total: malformed input yields false
/// plus a one-line reason, never a crash.
bool decode_checkpoint(const std::string& text, SearchCheckpoint* out,
                       std::string* error);

/// Atomically replaces `path` with the CRC-framed checkpoint (tmp + fsync +
/// rename), so a crash mid-write leaves the previous checkpoint intact.
bool write_checkpoint_file(const std::string& path, const SearchCheckpoint& cp);

/// Loads a write_checkpoint_file file; a missing, torn or corrupt file
/// yields false plus a reason.
bool load_checkpoint_file(const std::string& path, SearchCheckpoint* out,
                          std::string* error);

}  // namespace partita::ilp

// Mixed 0/1 linear program model.
//
// The selector builds its formulation (Eqs. 1-3 of the paper plus the
// conflict rows of Problem 2) in this representation; solver.hpp turns it
// into an optimal assignment via LP-relaxation branch & bound. The model is
// general enough for standalone use: binary and bounded continuous
// variables, <= / >= / = rows, minimize or maximize.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace partita::ilp {

using VarIndex = std::uint32_t;
using RowIndex = std::uint32_t;

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class VarKind : std::uint8_t { kBinary, kContinuous };
enum class RowSense : std::uint8_t { kLessEqual, kGreaterEqual, kEqual };
enum class Sense : std::uint8_t { kMinimize, kMaximize };

struct Variable {
  std::string name;
  VarKind kind = VarKind::kBinary;
  double lower = 0.0;
  double upper = 1.0;
  double objective = 0.0;
};

/// One linear term: coefficient * variable.
struct Term {
  VarIndex var = 0;
  double coeff = 0.0;
};

struct Row {
  std::string name;
  std::vector<Term> terms;
  RowSense sense = RowSense::kLessEqual;
  double rhs = 0.0;
};

class Model {
 public:
  void set_sense(Sense s) { sense_ = s; }
  Sense sense() const { return sense_; }

  VarIndex add_binary(std::string name, double objective = 0.0);
  VarIndex add_continuous(std::string name, double lower, double upper,
                          double objective = 0.0);

  /// Adds `terms (sense) rhs`. Terms with duplicate variables are summed.
  RowIndex add_row(std::string name, std::vector<Term> terms, RowSense sense, double rhs);

  /// Re-targets one row's right-hand side in place. The batch-solve path
  /// uses this to move the required-gain rows between otherwise identical
  /// solves without rebuilding the model.
  void set_rhs(RowIndex r, double rhs) { rows_[r].rhs = rhs; }

  std::size_t var_count() const { return vars_.size(); }
  std::size_t row_count() const { return rows_.size(); }
  const Variable& var(VarIndex v) const { return vars_[v]; }
  Variable& var(VarIndex v) { return vars_[v]; }
  const Row& row(RowIndex r) const { return rows_[r]; }
  const std::vector<Variable>& vars() const { return vars_; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Objective value of an assignment (no feasibility check).
  double objective_value(const std::vector<double>& x) const;

  /// Checks an assignment against every row and the variable bounds,
  /// within tolerance. Binary variables must be within tol of 0 or 1.
  bool is_feasible(const std::vector<double>& x, double tol = 1e-6) const;

  /// LP-file-like dump for debugging.
  std::string dump() const;

 private:
  Sense sense_ = Sense::kMinimize;
  std::vector<Variable> vars_;
  std::vector<Row> rows_;
};

}  // namespace partita::ilp

#include "ilp/cuts.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>

namespace partita::ilp {

namespace {

constexpr double kEps = 1e-9;

bool is_binary(const Model& model, VarIndex v) {
  return model.var(v).kind == VarKind::kBinary;
}

/// Implication cuts from fixed-charge rows: a row
///   sum_j a_j x_j - M z <= 0   (a_j > 0, M > 0, everything binary)
/// forces every x_j to 0 whenever z = 0, so x_j <= z is valid. The big-M
/// aggregate only implies x_j <= (M / a_j) z at the relaxation, which is
/// strictly weaker whenever M > a_j -- the usual case for shared IPs.
void separate_implications(const Model& model, const std::vector<double>& x,
                           const CutOptions& opt, std::vector<Cut>& out) {
  const std::size_t m = model.row_count();
  for (std::size_t r = 0; r < m; ++r) {
    const Row& row = model.row(static_cast<RowIndex>(r));
    if (row.sense != RowSense::kLessEqual) continue;
    if (std::abs(row.rhs) > kEps) continue;
    VarIndex z = 0;
    int negatives = 0;
    bool shape_ok = !row.terms.empty();
    for (const Term& t : row.terms) {
      if (!is_binary(model, t.var)) {
        shape_ok = false;
        break;
      }
      if (t.coeff < -kEps) {
        ++negatives;
        z = t.var;
      } else if (t.coeff <= kEps) {
        shape_ok = false;  // zero coefficient: not a fixed-charge shape
        break;
      }
    }
    if (!shape_ok || negatives != 1) continue;
    for (const Term& t : row.terms) {
      if (t.var == z) continue;
      if (x[t.var] > x[z] + opt.violation_tol) {
        out.push_back({"cut_imp_r" + std::to_string(r) + "_v" + std::to_string(t.var),
                       {{t.var, 1.0}, {z, -1.0}},
                       RowSense::kLessEqual,
                       0.0});
      }
    }
  }
}

/// Clique cuts: greedily extends each presolve clique over the pairwise
/// conflict graph (u conflicts w iff some clique contains both) and emits
/// the extension when the fractional point packs more than 1 into it.
/// Pairwise conflicts make "at most one" valid for every integer point: two
/// members at 1 would violate the at-most-one row that holds their pair.
void separate_cliques(const Model& model,
                      const std::vector<std::vector<VarIndex>>& cliques,
                      const std::vector<double>& x, const CutOptions& opt,
                      std::vector<Cut>& out) {
  if (cliques.empty()) return;
  const std::size_t n = model.var_count();
  std::vector<std::vector<std::uint32_t>> var_cliques(n);
  for (std::uint32_t c = 0; c < cliques.size(); ++c) {
    for (VarIndex v : cliques[c]) var_cliques[v].push_back(c);
  }
  auto conflict = [&](VarIndex u, VarIndex w) {
    const auto& cu = var_cliques[u];
    const auto& cw = var_cliques[w];
    // Clique id lists are ascending by construction; merge-scan them.
    std::size_t a = 0, b = 0;
    while (a < cu.size() && b < cw.size()) {
      if (cu[a] == cw[b]) return true;
      cu[a] < cw[b] ? ++a : ++b;
    }
    return false;
  };

  std::set<std::vector<VarIndex>> emitted;
  for (std::uint32_t c = 0; c < cliques.size() &&
                            out.size() < static_cast<std::size_t>(opt.max_cuts_per_round);
       ++c) {
    std::vector<VarIndex> members = cliques[c];
    // Deterministic greedy extension: lowest conflicting variable first.
    for (VarIndex w = 0; w < n; ++w) {
      if (var_cliques[w].empty()) continue;
      if (std::find(members.begin(), members.end(), w) != members.end()) continue;
      bool all = true;
      for (VarIndex u : members) {
        if (!conflict(u, w)) {
          all = false;
          break;
        }
      }
      if (all) members.push_back(w);
    }
    if (members.size() <= cliques[c].size()) continue;  // no lift: row dominates
    double activity = 0.0;
    for (VarIndex v : members) activity += x[v];
    if (activity <= 1.0 + opt.violation_tol) continue;
    std::vector<VarIndex> key = members;
    std::sort(key.begin(), key.end());
    if (!emitted.insert(key).second) continue;
    Cut cut;
    cut.name = "cut_clique" + std::to_string(c);
    cut.terms.reserve(key.size());
    for (VarIndex v : key) cut.terms.push_back({v, 1.0});
    cut.sense = RowSense::kLessEqual;
    cut.rhs = 1.0;
    out.push_back(std::move(cut));
  }
}

/// Extended cover cuts from all-binary knapsack <= rows: C is a greedy
/// minimal cover (sum_C a_j > rhs, every proper subset fits), which makes
/// sum_C x <= |C| - 1 valid; extending by E = {j : a_j >= max_C a_i} keeps
/// validity (any |C| columns of C u E already overflow the knapsack).
void separate_covers(const Model& model, const std::vector<double>& x,
                     const CutOptions& opt, std::vector<Cut>& out) {
  const std::size_t m = model.row_count();
  for (std::size_t r = 0; r < m; ++r) {
    if (out.size() >= static_cast<std::size_t>(opt.max_cuts_per_round)) return;
    const Row& row = model.row(static_cast<RowIndex>(r));
    if (row.sense != RowSense::kLessEqual) continue;
    if (row.rhs <= kEps || row.terms.size() < 2) continue;
    bool shape_ok = true;
    double total = 0.0;
    for (const Term& t : row.terms) {
      if (!is_binary(model, t.var) || t.coeff <= kEps) {
        shape_ok = false;
        break;
      }
      total += t.coeff;
    }
    if (!shape_ok || total <= row.rhs + kEps) continue;  // never binding

    // Greedy cover: most fractional-weight-per-area first ((1-x)/a
    // ascending), ties to the lower variable index.
    std::vector<const Term*> order;
    order.reserve(row.terms.size());
    for (const Term& t : row.terms) order.push_back(&t);
    std::stable_sort(order.begin(), order.end(), [&](const Term* a, const Term* b) {
      const double ka = (1.0 - x[a->var]) / a->coeff;
      const double kb = (1.0 - x[b->var]) / b->coeff;
      return ka != kb ? ka < kb : a->var < b->var;
    });
    std::vector<const Term*> cover;
    double weight = 0.0;
    for (const Term* t : order) {
      cover.push_back(t);
      weight += t->coeff;
      if (weight > row.rhs + kEps) break;
    }
    if (weight <= row.rhs + kEps) continue;  // all items together fit: no cover
    // Minimalize: drop members whose removal still overflows (heaviest-first
    // keeps the strongest small cover).
    std::stable_sort(cover.begin(), cover.end(), [](const Term* a, const Term* b) {
      return a->coeff != b->coeff ? a->coeff > b->coeff : a->var < b->var;
    });
    for (std::size_t i = 0; i < cover.size();) {
      if (weight - cover[i]->coeff > row.rhs + kEps) {
        weight -= cover[i]->coeff;
        cover.erase(cover.begin() + i);
      } else {
        ++i;
      }
    }
    if (cover.size() < 2) continue;
    double max_cover_coeff = 0.0;
    for (const Term* t : cover) max_cover_coeff = std::max(max_cover_coeff, t->coeff);
    // Extension: columns at least as heavy as every cover member.
    std::vector<VarIndex> lhs;
    for (const Term* t : cover) lhs.push_back(t->var);
    for (const Term& t : row.terms) {
      if (t.coeff >= max_cover_coeff - kEps &&
          std::find(lhs.begin(), lhs.end(), t.var) == lhs.end()) {
        lhs.push_back(t.var);
      }
    }
    const double rhs = static_cast<double>(cover.size()) - 1.0;
    double activity = 0.0;
    for (VarIndex v : lhs) activity += x[v];
    if (activity <= rhs + opt.violation_tol) continue;
    std::sort(lhs.begin(), lhs.end());
    Cut cut;
    cut.name = "cut_cover_r" + std::to_string(r);
    cut.terms.reserve(lhs.size());
    for (VarIndex v : lhs) cut.terms.push_back({v, 1.0});
    cut.sense = RowSense::kLessEqual;
    cut.rhs = rhs;
    out.push_back(std::move(cut));
  }
}

}  // namespace

std::vector<Cut> separate_cuts(const Model& model,
                               const std::vector<std::vector<VarIndex>>& cliques,
                               const std::vector<double>& x,
                               const std::vector<double>& lower,
                               const std::vector<double>& upper,
                               const CutOptions& opt) {
  (void)lower;
  (void)upper;
  std::vector<Cut> out;
  separate_implications(model, x, opt, out);
  separate_cliques(model, cliques, x, opt, out);
  separate_covers(model, x, opt, out);
  if (out.size() > static_cast<std::size_t>(opt.max_cuts_per_round)) {
    out.resize(opt.max_cuts_per_round);
  }
  return out;
}

}  // namespace partita::ilp

// Branch & bound for 0/1 ILPs over the simplex LP relaxation.
//
// Best-bound-first search; branching on the most fractional binary variable
// (ties broken toward the largest objective weight). The LP bound prunes
// nodes that cannot beat the incumbent; an LP-rounding heuristic at every
// node keeps the incumbent tight so the small selection problems of the
// paper close in a handful of nodes.
#pragma once

#include <cstdint>
#include <vector>

#include "ilp/model.hpp"
#include "ilp/simplex.hpp"

namespace partita::ilp {

enum class IlpStatus : std::uint8_t {
  kOptimal,
  kInfeasible,
  kNodeLimit,  // search truncated; best incumbent (if any) returned
};

struct IlpResult {
  IlpStatus status = IlpStatus::kInfeasible;
  bool has_solution = false;
  double objective = 0.0;
  std::vector<double> x;
  int nodes_explored = 0;
  int lp_iterations = 0;
};

struct IlpOptions {
  int max_nodes = 200000;
  LpOptions lp;
  /// A variable within int_tol of an integer counts as integral.
  double int_tol = 1e-6;
  /// Prune nodes whose bound is within gap_tol of the incumbent.
  double gap_tol = 1e-9;
};

/// Solves the model to proven optimality (unless the node limit strikes).
IlpResult solve_ilp(const Model& model, const IlpOptions& opt = {});

}  // namespace partita::ilp

// Branch & bound for 0/1 ILPs over the revised-simplex LP relaxation.
//
// The search combines:
//   * a root presolve (bound propagation + clique table, see presolve.hpp);
//   * an arena-backed node pool -- nodes store only the bound *deltas* they
//     add on top of their parent (branch fixing + clique propagations), and
//     the full bound vectors are reconstructed by a cheap parent-chain walk;
//   * warm starts: every child LP starts from its parent's optimal basis via
//     the dual simplex instead of re-running phase 1 + 2;
//   * pseudo-cost branching with a best-bound + depth-first-plunging hybrid
//     node order;
//   * an optional worker pool. Node relaxations are solved in fixed-size
//     waves (one lane per thread) and the results are reduced in lane order,
//     so a given thread count always reproduces the same search -- and the
//     optimum itself is thread-count independent.
//
// An LP-rounding heuristic at every node keeps the incumbent tight so the
// small selection problems of the paper close in a handful of nodes.
#pragma once

#include <cstdint>
#include <vector>

#include "ilp/model.hpp"
#include "ilp/simplex.hpp"
#include "support/cancel.hpp"
#include "support/clock.hpp"

namespace partita::ilp {

enum class IlpStatus : std::uint8_t {
  kOptimal,
  kInfeasible,
  kNodeLimit,      // search truncated by max_nodes; best incumbent returned
  kResourceLimit,  // search truncated by the ResourceBudget (see stats.termination)
};

/// True when the search stopped before proving optimality or infeasibility;
/// the incumbent (if any) is best-effort and best_bound bounds the gap.
inline bool is_truncated(IlpStatus s) {
  return s == IlpStatus::kNodeLimit || s == IlpStatus::kResourceLimit;
}

/// Why a solve returned. Everything except kCompleted means the answer is
/// best-effort: the caller's degradation ladder decides what to do with it.
enum class TerminationReason : std::uint8_t {
  kCompleted,    // optimality or infeasibility proven
  kNodeLimit,    // max_nodes exhausted
  kDeadline,     // ResourceBudget wall-clock deadline expired
  kMemoryLimit,  // ResourceBudget arena cap hit or an arena allocation failed
  kCancelled,    // ResourceBudget cancel token observed at a wave boundary
};

/// Display name: "completed", "node-limit", "deadline", "memory-limit",
/// "cancelled".
const char* to_string(TerminationReason r);

/// Hard resource envelope for one solve_ilp call. Both limits are checked
/// cooperatively at wave boundaries (between parallel node waves, on the
/// reducer thread), so cancellation is deterministic for a fixed thread
/// count: the same instance + options + budget trip at the same wave every
/// run. One wave is bounded by `threads` node LPs of at most
/// `lp.max_iterations` pivots each, which caps the overshoot past either
/// limit.
struct ResourceBudget {
  /// Wall-clock deadline in seconds; <= 0 disables it.
  double time_limit_seconds = 0.0;
  /// Cap on search-arena memory (nodes + fix deltas + stored warm-start
  /// bases); 0 disables it.
  std::size_t memory_limit_bytes = 0;
  /// Cooperative cancellation: checked (before the deadline) at every wave
  /// boundary; a cancelled token terminates the solve with kCancelled within
  /// one wave. A default-constructed token never cancels.
  support::CancelToken cancel;
  /// Clock consulted for the deadline check; null means Clock::system().
  /// Tests inject a FakeClock so deadline robustness needs no real sleeps.
  support::Clock* clock = nullptr;
};

/// Observability counters for one solve_ilp call. Threaded through the
/// selection flow into bench JSON and the chip report.
struct SolverStats {
  TerminationReason termination = TerminationReason::kCompleted;
  int nodes = 0;            // nodes taken from the open set (incl. pruned)
  int lp_iterations = 0;    // simplex iterations across all node LPs
  int warm_starts = 0;      // node LPs started from a parent basis
  int cold_starts = 0;      // node LPs solved from scratch
  int presolve_fixed = 0;   // binaries fixed before the first LP
  int presolve_rounds = 0;  // propagation rounds until fixpoint
  int clique_propagations = 0;  // extra 0-fixings derived from 1-branches
  int waves = 0;                // parallel node waves executed
  std::size_t peak_arena_bytes = 0;  // high-water mark of the search arenas
  int threads = 1;
  double presolve_seconds = 0.0;
  double search_seconds = 0.0;
  double total_seconds = 0.0;
  double warm_start_hit_rate() const {
    const int lps = warm_starts + cold_starts;
    return lps > 0 ? static_cast<double>(warm_starts) / lps : 0.0;
  }
};

struct IlpResult {
  IlpStatus status = IlpStatus::kInfeasible;
  bool has_solution = false;
  double objective = 0.0;
  std::vector<double> x;
  /// Best proven bound on the optimum, in the model's sense: equals
  /// `objective` when status == kOptimal; after a node-limit truncation
  /// |objective - best_bound| is the remaining optimality gap.
  double best_bound = 0.0;
  int nodes_explored = 0;  // == stats.nodes (kept for existing callers)
  int lp_iterations = 0;   // == stats.lp_iterations
  SolverStats stats;
};

struct IlpOptions {
  int max_nodes = 200000;
  /// Wall-clock + memory envelope; disabled by default.
  ResourceBudget budget;
  LpOptions lp;
  /// A variable within int_tol of an integer counts as integral.
  double int_tol = 1e-6;
  /// Prune nodes whose bound is within gap_tol of the incumbent.
  double gap_tol = 1e-9;
  /// Worker threads for the tree search. Each wave solves up to this many
  /// node relaxations in parallel; reduction is in lane order, so repeated
  /// runs with the same thread count reproduce the same search exactly.
  int threads = 1;
  /// Root presolve (bound propagation + clique table).
  bool presolve = true;
  /// Warm-start child LPs from the parent's optimal basis (dual simplex).
  bool warm_start = true;
  /// Consecutive dives before a lane returns to the best-bound node.
  int max_plunge_depth = 64;
  /// Canonical tie-breaking: keep equal-objective nodes alive while they can
  /// still lexicographically improve the incumbent, so the reported solution
  /// is the lex-smallest optimal vector -- identical across thread counts
  /// and search orders. Turn off when only the objective value matters
  /// (e.g. a pure bound query): models with large equal-objective plateaus
  /// (many zero objective coefficients) then prune ties immediately.
  bool canonical_ties = true;
};

/// Solves the model to proven optimality (unless the node limit strikes).
IlpResult solve_ilp(const Model& model, const IlpOptions& opt = {});

}  // namespace partita::ilp

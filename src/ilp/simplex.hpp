// Bounded-variable revised simplex with sparse column storage.
//
// Solves the LP relaxation of a Model (binary variables relaxed to their
// [lower, upper] interval, optionally tightened per call -- that is how the
// branch & bound fixes variables). Unlike the old dense-tableau code this
// keeps the constraint matrix fixed and sparse (built once per model) and
// maintains a *reduced* basis inverse: only the k x k matrix over the basic
// structural columns and their active rows (k <= min(n, m)), since every
// other basic column is a unit logical. Models with far more rows than
// variables -- the per-path gain systems -- thus pivot in O(k^2), not O(m^2):
//
//   * every row i gets one logical column with coefficient +1 whose bounds
//     encode the sense (<=: [0,inf); >=: (-inf,0]; =: [0,0]), so the
//     all-logical basis is the identity and no artificial columns exist;
//   * phase 1 runs the primal simplex on a dynamic infeasibility objective
//     (cost -1/+1 on basic variables below/above their bounds) until the
//     basic solution is within bounds;
//   * phase 2 prices the real objective; nonbasic variables rest at either
//     bound (upper-bound technique), so binaries do not explode the row
//     count;
//   * Dantzig pricing with a Bland's-rule fallback after a stall, which
//     guarantees termination; the inverse is refactorized periodically for
//     numerical hygiene;
//   * a bounded dual simplex restores primal feasibility from an imported
//     basis, which is how branch & bound warm-starts a child node from its
//     parent's optimal basis after one bound change instead of re-running
//     phase 1 + 2 from scratch.
#pragma once

#include <cstdint>
#include <vector>

#include "ilp/model.hpp"

namespace partita::ilp {

enum class LpStatus : std::uint8_t {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

/// Position of one column (structural variables first, then one logical
/// column per row) relative to a basis.
enum class BasisStatus : std::uint8_t { kAtLower, kAtUpper, kBasic };

/// Compact basis snapshot: one status per structural and logical column.
/// Exported after every optimal solve; importing it into a later solve over
/// the same model (with different bounds) warm-starts that solve.
struct Basis {
  std::vector<BasisStatus> status;
  bool empty() const { return status.empty(); }
};

struct LpResult {
  LpStatus status = LpStatus::kIterationLimit;
  /// Objective in the model's own sense (max problems report the max value).
  double objective = 0.0;
  /// Values of the structural (model) variables.
  std::vector<double> x;
  /// Executed simplex pivots / bound flips (optimality-detection passes that
  /// move nothing are not counted).
  int iterations = 0;
  /// True when this solve started from an imported basis (and did not have
  /// to fall back to a cold start).
  bool warm_started = false;
  /// Columns priced through the bounded candidate list (kCandidateList only;
  /// full refresh scans are not counted here).
  long long candidate_scans = 0;
  /// Full-scan refreshes of the candidate list (kCandidateList only). Each
  /// refresh is equivalent to one Dantzig pricing pass.
  int pricing_refreshes = 0;
};

/// Entering-column pricing strategy of the primal simplex.
enum class PricingMode : std::uint8_t {
  /// Full Dantzig scan over every nonbasic column each iteration.
  kDantzig,
  /// Bounded candidate list, refreshed by a full scan on exhaustion. Same
  /// optimum (the list only restricts *which* improving column enters, and
  /// optimality is only ever declared from a full scan), far fewer column
  /// prices per iteration on the wide selection models.
  kCandidateList,
};

struct LpOptions {
  int max_iterations = 20000;
  double eps = 1e-9;
  /// Entering-column pricing. The Bland's-rule anti-cycling fallback always
  /// prices with a full lowest-index scan regardless of this setting.
  PricingMode pricing = PricingMode::kCandidateList;
  /// Candidate-list capacity for kCandidateList (clamped to >= 4).
  int candidate_list_size = 24;
  /// Non-improving iterations tolerated before switching to Bland's rule
  /// (also bounds the dual simplex's degenerate-step tolerance).
  int stall_limit = 64;
};

/// Public knob surface of the LP engine (the ILP layer nests one of these as
/// `IlpOptions::lp`).
using SolverOptions = LpOptions;

/// Reusable revised-simplex engine for one Model.
///
/// Construction transposes the model into sparse columns once; individual
/// solves only vary the variable bounds, so branch & bound keeps one
/// instance per worker thread for all of its node relaxations.
class SimplexSolver {
 public:
  explicit SimplexSolver(const Model& model);
  ~SimplexSolver();
  SimplexSolver(const SimplexSolver&) = delete;
  SimplexSolver& operator=(const SimplexSolver&) = delete;

  /// Cold solve: phase 1 + phase 2 primal simplex from the all-logical basis.
  LpResult solve(const std::vector<double>& lower, const std::vector<double>& upper,
                 const LpOptions& opt = {});

  /// Warm solve: import `basis`, restore primal feasibility with the dual
  /// simplex, then finish with primal phase 2. Falls back to a cold solve
  /// when the basis cannot be refactorized.
  LpResult solve_warm(const std::vector<double>& lower, const std::vector<double>& upper,
                      const Basis& basis, const LpOptions& opt = {});

  /// Basis snapshot of the most recent solve that ended kOptimal. Empty
  /// before the first optimal solve.
  const Basis& last_basis() const { return last_basis_; }

 private:
  class Impl;
  Impl* impl_;
  Basis last_basis_;
};

/// Solves the LP relaxation with the model's own bounds.
LpResult solve_lp(const Model& model, const LpOptions& opt = {});

/// Solves with per-variable bound overrides (sizes must equal var_count()).
/// Used by branch & bound to fix binaries to 0 or 1.
LpResult solve_lp(const Model& model, const std::vector<double>& lower,
                  const std::vector<double>& upper, const LpOptions& opt = {});

}  // namespace partita::ilp

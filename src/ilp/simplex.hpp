// Bounded-variable two-phase primal simplex.
//
// Solves the LP relaxation of a Model (binary variables relaxed to their
// [lower, upper] interval, optionally tightened per call -- that is how the
// branch & bound fixes variables). Dense tableau implementation:
//
//   * every row is turned into an equality with a slack column
//     (<=: s in [0,inf); >=: -s with s in [0,inf), row pre-scaled; =: s fixed
//     to 0);
//   * infeasible initial slacks get a phase-1 artificial column;
//   * phase 1 minimizes the sum of artificials, phase 2 the real objective;
//   * nonbasic variables rest at either bound (upper-bound technique), so
//     binaries do not explode the row count;
//   * Dantzig pricing with a Bland's-rule fallback after a stall, which
//     guarantees termination.
//
// Problem sizes in this project are tiny by LP standards (hundreds of
// columns), so a dense O(m*n) iteration is the right trade-off.
#pragma once

#include <cstdint>
#include <vector>

#include "ilp/model.hpp"

namespace partita::ilp {

enum class LpStatus : std::uint8_t {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

struct LpResult {
  LpStatus status = LpStatus::kIterationLimit;
  /// Objective in the model's own sense (max problems report the max value).
  double objective = 0.0;
  /// Values of the structural (model) variables.
  std::vector<double> x;
  int iterations = 0;
};

struct LpOptions {
  int max_iterations = 20000;
  double eps = 1e-9;
};

/// Solves the LP relaxation with the model's own bounds.
LpResult solve_lp(const Model& model, const LpOptions& opt = {});

/// Solves with per-variable bound overrides (sizes must equal var_count()).
/// Used by branch & bound to fix binaries to 0 or 1.
LpResult solve_lp(const Model& model, const std::vector<double>& lower,
                  const std::vector<double>& upper, const LpOptions& opt = {});

}  // namespace partita::ilp

// Root cutting planes for the 0/1 selection ILPs.
//
// Three families, all derived from row structure the selection formulation
// actually produces (and valid for any model with the same shape):
//
//   * implication cuts  x_j <= z  from the Eq. 3 fixed-charge rows
//     (sum a_j x_j - M z <= 0, a_j > 0, all binaries): the big-M row only
//     forces z >= a_j x_j / M, the disaggregated form is the full lifting;
//   * clique cuts  sum_{Q} x <= 1  from greedy extensions of the presolve
//     clique table over the pairwise conflict graph (Eq. 1 / SC-PC rows give
//     the seed cliques; an extension merges overlapping at-most-ones);
//   * lifted (extended) cover cuts  sum_{C u E} x <= |C| - 1  from all-binary
//     knapsack <= rows (the power-budget row), with C a minimal cover and
//     E the columns at least as heavy as every cover member.
//
// Every cut is valid for the *original* integer feasible set -- no
// integer-feasible point is ever cut off (the cut-validity property test
// enumerates feasible points against every separated cut). Separation only
// returns cuts violated by the supplied fractional point, which also makes
// repeated root rounds self-deduplicating: a cut already in the LP cannot be
// violated by that LP's optimum again.
#pragma once

#include <string>
#include <vector>

#include "ilp/model.hpp"

namespace partita::ilp {

struct CutOptions {
  /// Minimum violation (activity minus rhs at the fractional point) for a
  /// cut to be worth adding.
  double violation_tol = 1e-6;
  /// Hard cap per separation round, strongest-family-first.
  int max_cuts_per_round = 64;
};

/// One separated inequality, ready for Model::add_row.
struct Cut {
  std::string name;
  std::vector<Term> terms;
  RowSense sense = RowSense::kLessEqual;
  double rhs = 0.0;
};

/// Separates cuts violated by the fractional point `x` (sized var_count()).
/// `cliques` is the presolve clique table; `lower`/`upper` are the bounds the
/// relaxation was solved under. Deterministic: identical inputs produce an
/// identical cut list.
std::vector<Cut> separate_cuts(const Model& model,
                               const std::vector<std::vector<VarIndex>>& cliques,
                               const std::vector<double>& x,
                               const std::vector<double>& lower,
                               const std::vector<double>& upper,
                               const CutOptions& opt = {});

}  // namespace partita::ilp

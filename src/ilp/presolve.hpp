// Presolve for the 0/1 selection ILPs.
//
// Runs bound propagation to a fixpoint before any LP is solved:
//
//   * activity-based implied bounds: for every row, the minimum/maximum
//     activity of the other terms implies a bound on each variable; binaries
//     whose implied interval excludes 0 or 1 are fixed, continuous bounds
//     are tightened;
//   * clique extraction: "at most one" rows over binaries (the paper's Eq. 1
//     rows and the SC-PC conflict rows) are collected as cliques, and fixing
//     any member to 1 immediately fixes the rest to 0;
//   * infeasibility detection: a row whose best-case activity already misses
//     its right-hand side proves the whole (sub)problem infeasible.
//
// The result is a tightened root bound vector plus the clique table, which
// branch & bound also uses to propagate every 1-branch during the search.
#pragma once

#include <cstdint>
#include <vector>

#include "ilp/model.hpp"

namespace partita::ilp {

struct PresolveResult {
  bool infeasible = false;
  /// Tightened bounds (same size as the inputs).
  std::vector<double> lower, upper;
  /// Binaries newly fixed (lower == upper where the input was not fixed).
  int fixed_vars = 0;
  /// Non-fixing bound tightenings on continuous variables.
  int tightenings = 0;
  int rounds = 0;
  /// At-most-one groups of binary variables, by variable index.
  std::vector<std::vector<VarIndex>> cliques;
  /// var -> indices into `cliques` that contain it (empty vector when none).
  std::vector<std::vector<std::uint32_t>> var_cliques;
};

/// Propagates `model`'s rows over the given bounds. The inputs are not
/// modified; sizes must equal model.var_count(). `extract_cliques = false`
/// skips the clique scan (var_cliques still comes back sized) -- the batch
/// solve path reuses the clique table of the first batch item, which is
/// bound-independent up to already-fixed members that the search skips
/// anyway.
PresolveResult presolve(const Model& model, const std::vector<double>& lower,
                        const std::vector<double>& upper,
                        bool extract_cliques = true);

}  // namespace partita::ilp

#include "ilp/fingerprint.hpp"

#include <cstring>

namespace partita::ilp {

namespace {

/// Seed constants: arbitrary odd 64-bit values, distinct per field class so
/// "rhs 2 on a <= row" never collides with "coefficient 2 on variable 0".
constexpr std::uint64_t kSeedVar = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kSeedRow = 0xbf58476d1ce4e5b9ULL;
constexpr std::uint64_t kSeedTerm = 0x94d049bb133111ebULL;
constexpr std::uint64_t kSeedOpt = 0xd6e8feb86659fd93ULL;

std::uint64_t mix2(std::uint64_t a, std::uint64_t b) {
  return fp_mix(a ^ fp_mix(b));
}

}  // namespace

std::uint64_t fp_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fp_double(double v) {
  if (v == 0.0) v = 0.0;  // collapse -0.0
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return fp_mix(bits);
}

std::string Fingerprint::hex() const {
  static const char* digits = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[15 - i] = digits[(hi >> (4 * i)) & 0xf];
    out[31 - i] = digits[(lo >> (4 * i)) & 0xf];
  }
  return out;
}

Fingerprint fingerprint_model(const Model& m) {
  // Column chain: order-sensitive fold over the variables. The chain value
  // after column j depends on every column <= j, so any reordering,
  // insertion or bound change lands in the digest.
  std::uint64_t cols = fp_mix(kSeedVar ^ static_cast<std::uint64_t>(m.var_count()));
  cols = mix2(cols, static_cast<std::uint64_t>(m.sense()));
  for (std::size_t j = 0; j < m.var_count(); ++j) {
    const Variable& v = m.var(static_cast<VarIndex>(j));
    std::uint64_t h = fp_mix(static_cast<std::uint64_t>(v.kind));
    h = mix2(h, fp_double(v.lower));
    h = mix2(h, fp_double(v.upper));
    h = mix2(h, fp_double(v.objective));
    cols = mix2(cols, h);
  }

  // Row set: each row hashed standalone (terms folded commutatively -- a
  // term is identified by its column index + coefficient, so within-row
  // order is irrelevant), then all row hashes combined with two independent
  // commutative reductions (wrapping sum and sum-of-remixed). Two accumulators
  // make "row A twice, row B never" distinguishable from "A once, B once"
  // far beyond what a single sum would.
  std::uint64_t rows_a = kSeedRow ^ static_cast<std::uint64_t>(m.row_count());
  std::uint64_t rows_b = fp_mix(rows_a);
  for (const Row& r : m.rows()) {
    std::uint64_t terms = 0;
    for (const Term& t : r.terms) {
      terms += mix2(kSeedTerm ^ t.var, fp_double(t.coeff));  // commutative
    }
    std::uint64_t h = fp_mix(terms);
    h = mix2(h, static_cast<std::uint64_t>(r.sense));
    h = mix2(h, fp_double(r.rhs));
    rows_a += h;           // commutative across rows
    rows_b += fp_mix(h);   // second, independent reduction
  }

  Fingerprint fp;
  fp.hi = mix2(cols, rows_a);
  fp.lo = mix2(fp_mix(cols), rows_b);
  return fp;
}

std::uint64_t digest_options(const IlpOptions& opt) {
  std::uint64_t d = fp_mix(kSeedOpt);
  d = mix2(d, static_cast<std::uint64_t>(opt.max_nodes));
  d = mix2(d, fp_double(opt.int_tol));
  d = mix2(d, fp_double(opt.gap_tol));
  d = mix2(d, opt.presolve ? 1 : 0);
  d = mix2(d, opt.warm_start ? 1 : 0);
  d = mix2(d, static_cast<std::uint64_t>(opt.max_plunge_depth));
  d = mix2(d, opt.canonical_ties ? 1 : 0);
  d = mix2(d, opt.cuts ? 1 : 0);
  d = mix2(d, static_cast<std::uint64_t>(opt.max_cut_rounds));
  d = mix2(d, static_cast<std::uint64_t>(opt.lp.max_iterations));
  d = mix2(d, fp_double(opt.lp.eps));
  // Budget *limits* change what can truncate; the cancel token and clock are
  // runtime wiring and stay out.
  d = mix2(d, fp_double(opt.budget.time_limit_seconds));
  d = mix2(d, static_cast<std::uint64_t>(opt.budget.memory_limit_bytes));
  return d;
}

}  // namespace partita::ilp

#include "ilp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "support/assert.hpp"
#include "support/fault_injection.hpp"

namespace partita::ilp {

namespace {

/// Per-variable primal feasibility tolerance.
constexpr double kFeasTol = 1e-7;
/// Pivot elements below this magnitude poison the kernel inverse; the step
/// still happens (the row genuinely blocks), but the factorization is rebuilt
/// immediately afterwards instead of compounding 1/alpha roundoff.
constexpr double kPivotTol = 1e-7;
/// Total phase-1 infeasibility below this counts as feasible (matches the
/// old dense implementation's phase-1 exit test).
constexpr double kPhase1Tol = 1e-6;
/// Pivots between refactorizations (numerical hygiene).
// 32 keeps the product-form kernel honest on ill-conditioned cut-augmented
// bases (at 128 the accumulated update roundoff was enough to leak wrong
// bounds into branch & bound on ~800-row models); the Gauss-Jordan rebuild is
// k^3 on the reduced k x k kernel only, so the amortized cost is small.
constexpr int kRefactorInterval = 32;

}  // namespace

// Reduced-basis kernel
// --------------------
// Every basis consists of k structural columns plus m-k logical (unit)
// columns. Instead of a dense m x m inverse we keep only the k x k matrix
//
//   M = A[R, S],   R = rows whose logical column is nonbasic,
//                  S = the basic structural columns,  |R| = |S| = k,
//
// and its inverse. With the invariant "a basic logical always occupies its
// own row's basis slot", B decomposes (up to row permutation) as
// [[M, 0], [C, I]], so every ftran/btran/xb computation reduces to one k x k
// multiply plus sparse column scans, and each pivot is one of four O(k^2)
// rank-1 updates on M^-1 (grow / column replace / shrink / row replace).
// For the selection models the row count m (one gain row per execution path)
// dwarfs the variable count n, so k <= n makes iterations O(k^2 + nnz)
// instead of O(m^2) and refactorizations O(k^3) instead of O(m^3).
class SimplexSolver::Impl {
 public:
  explicit Impl(const Model& model) : model_(model) {
    n_ = model.var_count();
    m_ = model.row_count();
    total_ = n_ + m_;
    sign_ = model.sense() == Sense::kMinimize ? 1.0 : -1.0;

    // Equilibration: power-of-2 row and column scale factors bring every
    // matrix entry to O(1), so the absolute pivot / feasibility tolerances
    // below stay meaningful when gain rows carry coefficients in the 1e6
    // range (gain-per-exec times loop frequency). Powers of two make the
    // scaling exact -- no rounding is introduced anywhere.
    const auto pow2_inverse_scale = [](double mag) {
      return mag > 0.0 && std::isfinite(mag) ? std::exp2(-std::ilogb(mag)) : 1.0;
    };
    row_scale_.assign(m_, 1.0);
    for (std::size_t i = 0; i < m_; ++i) {
      double maxc = 0.0;
      for (const Term& t : model.row(static_cast<RowIndex>(i)).terms) {
        maxc = std::max(maxc, std::abs(t.coeff));
      }
      row_scale_[i] = pow2_inverse_scale(maxc);
    }

    // Transpose the row-wise model into sparse columns; logical column n+i
    // is the unit column of row i with sense-encoded bounds. Entries within
    // a column are in increasing row order (the build loop runs over rows).
    std::vector<int> col_nnz(total_, 0);
    for (std::size_t i = 0; i < m_; ++i) {
      for (const Term& t : model.row(static_cast<RowIndex>(i)).terms) ++col_nnz[t.var];
    }
    col_start_.assign(total_ + 1, 0);
    for (std::size_t j = 0; j < n_; ++j) col_start_[j + 1] = col_start_[j] + col_nnz[j];
    for (std::size_t j = n_; j < total_; ++j) col_start_[j + 1] = col_start_[j] + 1;
    col_entries_.resize(col_start_[total_]);
    std::vector<int> fill(n_, 0);
    rhs_.resize(m_);
    logical_lb_.resize(m_);
    logical_ub_.resize(m_);
    for (std::size_t i = 0; i < m_; ++i) {
      const Row& row = model.row(static_cast<RowIndex>(i));
      for (const Term& t : row.terms) {
        col_entries_[col_start_[t.var] + fill[t.var]++] = {static_cast<int>(i),
                                                          t.coeff * row_scale_[i]};
      }
      col_entries_[col_start_[n_ + i]] = {static_cast<int>(i), 1.0};
      rhs_[i] = row.rhs * row_scale_[i];
      switch (row.sense) {
        case RowSense::kLessEqual:
          logical_lb_[i] = 0.0;
          logical_ub_[i] = kInfinity;
          break;
        case RowSense::kGreaterEqual:
          logical_lb_[i] = -kInfinity;
          logical_ub_[i] = 0.0;
          break;
        case RowSense::kEqual:
          logical_lb_[i] = 0.0;
          logical_ub_[i] = 0.0;
          break;
      }
    }

    // Column pass of the equilibration: internal variable j holds
    // x_j / col_scale_[j], so entries and the objective pick up the factor
    // and bounds (in run()) divide it back out. Columns left O(1) by the
    // row pass keep a factor of exactly 1.
    col_scale_.assign(total_, 1.0);
    for (std::size_t j = 0; j < n_; ++j) {
      double maxe = 0.0;
      for (int e = col_start_[j]; e < col_start_[j + 1]; ++e) {
        maxe = std::max(maxe, std::abs(col_entries_[e].second));
      }
      const double cs = pow2_inverse_scale(maxe);
      if (cs != 1.0) {
        col_scale_[j] = cs;
        for (int e = col_start_[j]; e < col_start_[j + 1]; ++e) {
          col_entries_[e].second *= cs;
        }
      }
    }

    // Row-major mirror (CSR) of the scaled matrix, for pricing scans driven
    // by the *support of the dual vector* instead of per-column dots. Built
    // from col_entries_ so the stored values are the same scaled doubles.
    row_start_.assign(m_ + 1, 0);
    for (const auto& e : col_entries_) ++row_start_[e.first + 1];
    for (std::size_t i = 0; i < m_; ++i) row_start_[i + 1] += row_start_[i];
    row_entries_.resize(col_entries_.size());
    std::vector<int> rfill(m_, 0);
    for (std::size_t j = 0; j < total_; ++j) {
      for (int e = col_start_[j]; e < col_start_[j + 1]; ++e) {
        const int i = col_entries_[e].first;
        row_entries_[row_start_[i] + rfill[i]++] = {static_cast<int>(j),
                                                    col_entries_[e].second};
      }
    }

    cost_.assign(total_, 0.0);
    for (std::size_t j = 0; j < n_; ++j) {
      cost_[j] = sign_ * model.var(static_cast<VarIndex>(j)).objective * col_scale_[j];
    }

    lb_.resize(total_);
    ub_.resize(total_);
    status_.resize(total_);
    basis_.resize(m_);
    xb_.resize(m_);
    y_.resize(m_);
    alpha_.assign(m_, 0.0);
    alpha_mark_.assign(m_, 0);
    alpha_nz_.reserve(m_);
    rho_.resize(m_);
    work_.resize(m_);
    arho_.assign(total_, 0.0);
    ay_.assign(total_, 0.0);
    resid_.assign(m_, 0.0);  // stays all-zero between ftran_accurate calls
    ban_mark_.assign(total_, 0);

    kcap_ = std::min(n_, m_);
    minv_.resize(kcap_ * kcap_);
    rows_.resize(kcap_);
    cols_.resize(kcap_);
    col_slot_.resize(kcap_);
    row_pos_.assign(m_, -1);
    col_pos_.assign(n_, -1);
    red_.resize(kcap_);
    gwork_.resize(kcap_);
    twork_.resize(kcap_);
    kwork_.resize(kcap_);
  }

  LpResult run(const std::vector<double>& lower, const std::vector<double>& upper,
               const LpOptions& opt, const Basis* warm, Basis* out_basis) {
    opt_ = opt;
    opt_.candidate_list_size = std::max(4, opt.candidate_list_size);
    opt_.stall_limit = std::max(1, opt.stall_limit);
    cand_.clear();  // solves must not depend on a previous solve's list
    cand_scans_ = 0;
    cand_refreshes_ = 0;
    LpResult res;

    for (std::size_t j = 0; j < n_; ++j) {
      if (lower[j] > upper[j] + opt.eps) {
        res.status = LpStatus::kInfeasible;  // empty domain from branching
        return res;
      }
      lb_[j] = lower[j] / col_scale_[j];
      ub_[j] = upper[j] / col_scale_[j];
      PARTITA_ASSERT_MSG(std::isfinite(lb_[j]) || std::isfinite(ub_[j]),
                         "structural vars need at least one finite bound");
    }
    for (std::size_t i = 0; i < m_; ++i) {
      lb_[n_ + i] = logical_lb_[i];
      ub_[n_ + i] = logical_ub_[i];
    }

    bool warm_ok = warm != nullptr && load_warm_basis(*warm);
    if (!warm_ok) load_cold_basis();
    res.warm_started = warm_ok;
    compute_xb();

    LpStatus status;
    if (warm_ok) {
      status = dual_simplex(res.iterations);
      // Dual simplex ends primal feasible (or proves infeasibility); a short
      // primal phase-2 run certifies optimality and mops up any residual
      // dual infeasibility from tolerance drift.
      if (status == LpStatus::kOptimal) status = primal(/*phase=*/2, res.iterations);
      if (status == LpStatus::kIterationLimit &&
          res.iterations < opt_.max_iterations) {
        // The imported basis led into a numerical dead end (singular kernel
        // or tiny-pivot ban-out) before the real budget ran out: restart
        // cold, which takes a different pivot trajectory entirely.
        load_cold_basis();
        compute_xb();
        res.warm_started = false;
        status = LpStatus::kOptimal;
        if (total_infeasibility() > kPhase1Tol) {
          status = primal(/*phase=*/1, res.iterations);
        }
        if (status == LpStatus::kOptimal) status = primal(/*phase=*/2, res.iterations);
      }
    } else {
      status = LpStatus::kOptimal;
      if (total_infeasibility() > kPhase1Tol) {
        status = primal(/*phase=*/1, res.iterations);
      }
      if (status == LpStatus::kOptimal) status = primal(/*phase=*/2, res.iterations);
    }
    res.status = status;
    res.candidate_scans = cand_scans_;
    res.pricing_refreshes = cand_refreshes_;
    if (status != LpStatus::kOptimal) {
      have_factorization_ = false;
      return res;
    }

    res.x.assign(n_, 0.0);
    for (std::size_t j = 0; j < n_; ++j) {
      if (status_[j] != BasisStatus::kBasic) res.x[j] = nonbasic_value(j);
    }
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] < static_cast<int>(n_)) res.x[basis_[i]] = xb_[i];
    }
    for (std::size_t j = 0; j < n_; ++j) res.x[j] *= col_scale_[j];
    double obj = 0;
    for (std::size_t j = 0; j < n_; ++j) {
      obj += model_.var(static_cast<VarIndex>(j)).objective * res.x[j];
    }
    res.objective = obj;

    if (out_basis) {
      out_basis->status.assign(status_.begin(), status_.end());
    }
    return res;
  }

 private:
  double nonbasic_value(std::size_t j) const {
    return status_[j] == BasisStatus::kAtLower ? lb_[j] : ub_[j];
  }

  /// A[row, col] for one structural column (entries are sorted by row).
  double coeff_at(int col, int row) const {
    const auto* first = col_entries_.data() + col_start_[col];
    const auto* last = col_entries_.data() + col_start_[col + 1];
    const auto* it = std::lower_bound(
        first, last, row,
        [](const std::pair<int, double>& e, int r) { return e.first < r; });
    return (it != last && it->first == row) ? it->second : 0.0;
  }

  // --- basis management -----------------------------------------------------

  void load_cold_basis() {
    for (std::size_t j = 0; j < n_; ++j) {
      status_[j] = std::isfinite(lb_[j]) ? BasisStatus::kAtLower : BasisStatus::kAtUpper;
    }
    for (std::size_t i = 0; i < m_; ++i) {
      status_[n_ + i] = BasisStatus::kBasic;
      basis_[i] = static_cast<int>(n_ + i);
      row_pos_[i] = -1;
    }
    std::fill(col_pos_.begin(), col_pos_.end(), -1);
    k_ = 0;  // all-logical basis: M is empty and B is the identity
    have_factorization_ = true;
    pivots_since_refactor_ = 0;
  }

  /// Imports a basis snapshot; returns false (leaving the solver ready for a
  /// cold start) when the snapshot is unusable.
  bool load_warm_basis(const Basis& warm) {
    if (warm.status.size() != total_) return false;
    // Test-only forced refactorization failure: the imported basis is
    // treated as numerically singular, which must route the solve through
    // the cold-start fallback (still correct, just slower).
    if (support::fault_should_trip("simplex.warm_refactor")) return false;

    // Reuse the current basis *structure* when the imported basis is the one
    // we just solved with -- the common case when branch & bound plunges into
    // a child right after its parent. The inverse itself is recomputed unless
    // it is pristine: product-form updates accumulated across earlier solves
    // drift, and a stale M^-1 here silently corrupts every node LP downstream
    // (wrong bounds, even false infeasibility -- found by the differential
    // oracle harness).
    if (have_factorization_ &&
        std::equal(warm.status.begin(), warm.status.end(), status_.begin())) {
      sanitize_nonbasic_statuses();
      if (pivots_since_refactor_ == 0) return true;
      if (refactorize()) return true;
      have_factorization_ = false;  // singular: rebuild from the snapshot below
    }

    std::copy(warm.status.begin(), warm.status.end(), status_.begin());
    sanitize_nonbasic_statuses();

    // Rebuild the reduced representation: rows whose logical is nonbasic
    // host the basic structural columns, one each.
    std::vector<int> basic_structs;
    basic_structs.reserve(kcap_);
    for (std::size_t j = 0; j < n_; ++j) {
      if (status_[j] == BasisStatus::kBasic) basic_structs.push_back(static_cast<int>(j));
    }
    std::vector<int> open_rows;
    for (std::size_t i = 0; i < m_; ++i) {
      if (status_[n_ + i] != BasisStatus::kBasic) open_rows.push_back(static_cast<int>(i));
    }
    if (basic_structs.size() > open_rows.size()) return false;  // overfull snapshot
    if (basic_structs.size() > kcap_) return false;
    // Repair a deficient snapshot by promoting logicals (deterministically:
    // lowest open rows first).
    std::size_t excess = open_rows.size() - basic_structs.size();
    for (std::size_t t = 0; t < excess; ++t) {
      status_[n_ + open_rows[t]] = BasisStatus::kBasic;
    }
    open_rows.erase(open_rows.begin(), open_rows.begin() + excess);

    std::fill(row_pos_.begin(), row_pos_.end(), -1);
    std::fill(col_pos_.begin(), col_pos_.end(), -1);
    k_ = basic_structs.size();
    for (std::size_t i = 0; i < m_; ++i) basis_[i] = static_cast<int>(n_ + i);
    for (std::size_t idx = 0; idx < k_; ++idx) {
      rows_[idx] = open_rows[idx];
      cols_[idx] = basic_structs[idx];
      col_slot_[idx] = open_rows[idx];
      row_pos_[open_rows[idx]] = static_cast<int>(idx);
      col_pos_[basic_structs[idx]] = static_cast<int>(idx);
      basis_[open_rows[idx]] = basic_structs[idx];
    }
    if (!refactorize()) return false;
    return true;
  }

  /// A nonbasic column may not rest at an infinite bound.
  void sanitize_nonbasic_statuses() {
    for (std::size_t j = 0; j < total_; ++j) {
      if (status_[j] == BasisStatus::kBasic) continue;
      if (status_[j] == BasisStatus::kAtUpper && !std::isfinite(ub_[j])) {
        status_[j] = BasisStatus::kAtLower;
      } else if (status_[j] == BasisStatus::kAtLower && !std::isfinite(lb_[j])) {
        status_[j] = BasisStatus::kAtUpper;
      }
    }
  }

  /// Rebuilds minv_ = M^-1 by Gauss-Jordan with partial pivoting on the
  /// k x k active matrix A[rows_, cols_].
  bool refactorize() {
    if (k_ == 0) {
      have_factorization_ = true;
      pivots_since_refactor_ = 0;
      return true;
    }
    std::vector<double>& mat = scratch_mat_;
    mat.assign(kcap_ * kcap_, 0.0);
    for (std::size_t b = 0; b < k_; ++b) {
      const int col = cols_[b];
      for (int e = col_start_[col]; e < col_start_[col + 1]; ++e) {
        const int a = row_pos_[col_entries_[e].first];
        if (a >= 0) mat[static_cast<std::size_t>(a) * kcap_ + b] = col_entries_[e].second;
      }
    }
    for (std::size_t b = 0; b < k_; ++b) {
      double* row = &minv_[b * kcap_];
      std::fill(row, row + k_, 0.0);
      row[b] = 1.0;
    }

    for (std::size_t p = 0; p < k_; ++p) {
      std::size_t piv_row = p;
      double piv = std::abs(mat[p * kcap_ + p]);
      for (std::size_t a = p + 1; a < k_; ++a) {
        const double v = std::abs(mat[a * kcap_ + p]);
        if (v > piv) {
          piv = v;
          piv_row = a;
        }
      }
      if (piv < 1e-9) return false;  // singular snapshot
      if (piv_row != p) {
        for (std::size_t c = 0; c < k_; ++c) {
          std::swap(mat[piv_row * kcap_ + c], mat[p * kcap_ + c]);
          std::swap(minv_[piv_row * kcap_ + c], minv_[p * kcap_ + c]);
        }
      }
      const double inv = 1.0 / mat[p * kcap_ + p];
      for (std::size_t c = 0; c < k_; ++c) {
        mat[p * kcap_ + c] *= inv;
        minv_[p * kcap_ + c] *= inv;
      }
      for (std::size_t a = 0; a < k_; ++a) {
        if (a == p) continue;
        const double f = mat[a * kcap_ + p];
        if (f == 0.0) continue;
        for (std::size_t c = 0; c < k_; ++c) {
          mat[a * kcap_ + c] -= f * mat[p * kcap_ + c];
          minv_[a * kcap_ + c] -= f * minv_[p * kcap_ + c];
        }
      }
    }
    have_factorization_ = true;
    pivots_since_refactor_ = 0;
    return true;
  }

  /// xb = B^-1 (b - N x_N), from scratch via the reduced inverse.
  void compute_xb() {
    std::vector<double>& r = work_;
    std::copy(rhs_.begin(), rhs_.end(), r.begin());
    for (std::size_t j = 0; j < total_; ++j) {
      if (status_[j] == BasisStatus::kBasic) continue;
      const double xj = nonbasic_value(j);
      if (xj == 0.0) continue;
      for (int e = col_start_[j]; e < col_start_[j + 1]; ++e) {
        r[col_entries_[e].first] -= col_entries_[e].second * xj;
      }
    }
    // u = M^-1 r[R]; structural basics take u, each logical basic takes its
    // row's residual minus the structural contribution.
    for (std::size_t b = 0; b < k_; ++b) {
      double v = 0;
      const double* mrow = &minv_[b * kcap_];
      for (std::size_t a = 0; a < k_; ++a) v += mrow[a] * r[rows_[a]];
      twork_[b] = v;
    }
    for (std::size_t i = 0; i < m_; ++i) xb_[i] = r[i];
    for (std::size_t b = 0; b < k_; ++b) {
      const double u = twork_[b];
      if (u == 0.0) continue;
      const int col = cols_[b];
      for (int e = col_start_[col]; e < col_start_[col + 1]; ++e) {
        const int row = col_entries_[e].first;
        if (row_pos_[row] < 0) xb_[row] -= col_entries_[e].second * u;
      }
    }
    for (std::size_t b = 0; b < k_; ++b) xb_[col_slot_[b]] = twork_[b];
  }

  double total_infeasibility() const {
    double t = 0;
    for (std::size_t i = 0; i < m_; ++i) {
      const int j = basis_[i];
      if (xb_[i] < lb_[j] - kFeasTol) t += lb_[j] - xb_[i];
      else if (xb_[i] > ub_[j] + kFeasTol) t += xb_[i] - ub_[j];
    }
    return t;
  }

  // --- shared linear algebra -------------------------------------------------

  /// y = cb^T B^-1 for the given slot-indexed basic costs. With the slot
  /// invariant this is y_i = cb_i on logical-basic rows plus one k x k
  /// transpose solve for the active rows.
  void btran(const std::vector<double>& cb) {
    for (std::size_t i = 0; i < m_; ++i) y_[i] = row_pos_[i] < 0 ? cb[i] : 0.0;
    for (std::size_t b = 0; b < k_; ++b) {
      double g = cb[col_slot_[b]];
      const int col = cols_[b];
      for (int e = col_start_[col]; e < col_start_[col + 1]; ++e) {
        const int row = col_entries_[e].first;
        if (row_pos_[row] < 0) g -= y_[row] * col_entries_[e].second;
      }
      gwork_[b] = g;
    }
    for (std::size_t a = 0; a < k_; ++a) {
      double v = 0;
      for (std::size_t b = 0; b < k_; ++b) v += minv_[b * kcap_ + a] * gwork_[b];
      y_[rows_[a]] = v;
    }
  }

  /// rho = row r of B^-1 (a btran with a slot-unit cost vector); the dual
  /// simplex prices the leaving row with it.
  void btran_unit(std::size_t r) {
    std::fill(rho_.begin(), rho_.end(), 0.0);
    if (row_pos_[r] >= 0) {
      // Slot r hosts a structural column: only one g entry is nonzero.
      const std::size_t br = static_cast<std::size_t>(col_pos_[basis_[r]]);
      for (std::size_t a = 0; a < k_; ++a) rho_[rows_[a]] = minv_[br * kcap_ + a];
    } else {
      rho_[r] = 1.0;
      for (std::size_t b = 0; b < k_; ++b) {
        gwork_[b] = -coeff_at(cols_[b], static_cast<int>(r));
      }
      for (std::size_t a = 0; a < k_; ++a) {
        double v = 0;
        for (std::size_t b = 0; b < k_; ++b) v += minv_[b * kcap_ + a] * gwork_[b];
        rho_[rows_[a]] = v;
      }
    }
  }

  /// Records one alpha_ write position (first touch per ftran).
  void alpha_touch(int row) {
    if (alpha_mark_[row] != alpha_epoch_) {
      alpha_mark_[row] = alpha_epoch_;
      alpha_nz_.push_back(row);
    }
  }

  /// alpha = B^-1 a_j; also leaves the reduced solve M^-1 a_j[R] in red_
  /// for the subsequent basis update. Only the touched positions are
  /// (re)written -- alpha_nz_ lists them, so the ratio test and the step
  /// update iterate the pivot column's support instead of all m_ rows.
  void ftran(std::size_t j) {
    for (const int r : alpha_nz_) alpha_[r] = 0.0;
    alpha_nz_.clear();
    ++alpha_epoch_;
    std::fill(gwork_.begin(), gwork_.begin() + k_, 0.0);
    for (int e = col_start_[j]; e < col_start_[j + 1]; ++e) {
      const int row = col_entries_[e].first;
      const int a = row_pos_[row];
      if (a >= 0) {
        gwork_[a] = col_entries_[e].second;
      } else {
        alpha_[row] = col_entries_[e].second;
        alpha_touch(row);
      }
    }
    for (std::size_t b = 0; b < k_; ++b) {
      double v = 0;
      const double* mrow = &minv_[b * kcap_];
      for (std::size_t a = 0; a < k_; ++a) v += mrow[a] * gwork_[a];
      red_[b] = v;
    }
    for (std::size_t b = 0; b < k_; ++b) {
      const double u = red_[b];
      if (u == 0.0) continue;
      const int col = cols_[b];
      for (int e = col_start_[col]; e < col_start_[col + 1]; ++e) {
        const int row = col_entries_[e].first;
        if (row_pos_[row] < 0) {
          alpha_[row] -= col_entries_[e].second * u;
          alpha_touch(row);
        }
      }
    }
    // Slot values are assignments (not accumulations): they overwrite
    // whatever the scans above left there, exactly like the old dense fill.
    for (std::size_t b = 0; b < k_; ++b) {
      alpha_[col_slot_[b]] = red_[b];
      alpha_touch(col_slot_[b]);
    }
    // Ascending row order keeps the ratio test's near-tie decisions (within
    // opt_.eps) identical to the old dense row sweep.
    std::sort(alpha_nz_.begin(), alpha_nz_.end());
  }

  /// True when B * alpha reproduces column j within tolerance. The residual
  /// costs one pass over the support's columns -- about as much as the ftran
  /// itself -- and catches the product-form kernel decaying before a pivot
  /// bakes the drift into M^-1. Callers refactorize and retry on failure.
  bool ftran_accurate(std::size_t j) {
    double norm = 1.0;
    for (const int inz : alpha_nz_) {
      const double ai = alpha_[inz];
      if (ai == 0.0) continue;
      const std::size_t bj = static_cast<std::size_t>(basis_[inz]);
      for (int e = col_start_[bj]; e < col_start_[bj + 1]; ++e) {
        resid_[col_entries_[e].first] += col_entries_[e].second * ai;
      }
    }
    for (int e = col_start_[j]; e < col_start_[j + 1]; ++e) {
      resid_[col_entries_[e].first] -= col_entries_[e].second;
      norm = std::max(norm, std::abs(col_entries_[e].second));
    }
    double err = 0;
    for (const int inz : alpha_nz_) {
      const std::size_t bj = static_cast<std::size_t>(basis_[inz]);
      for (int e = col_start_[bj]; e < col_start_[bj + 1]; ++e) {
        err = std::max(err, std::abs(resid_[col_entries_[e].first]));
        resid_[col_entries_[e].first] = 0.0;
      }
    }
    for (int e = col_start_[j]; e < col_start_[j + 1]; ++e) {
      err = std::max(err, std::abs(resid_[col_entries_[e].first]));
      resid_[col_entries_[e].first] = 0.0;
    }
    return err <= 1e-6 * norm;
  }

  // --- tiny-pivot bans -------------------------------------------------------
  //
  // A column whose only blocking rows carry |alpha| < kPivotTol cannot enter:
  // the rank-1 update's Schur complement IS that alpha, so pivoting on it
  // leaves a numerically singular kernel that the next refactorization
  // rightly refuses to invert. Such columns are banned for the lifetime of
  // the current basis (epoch-cleared on every executed step) and pricing
  // skips them; since a ban is only issued on a freshly refactorized kernel,
  // it reflects the true geometry, not drift.

  bool banned(std::size_t j) const {
    return ban_count_ != 0 && ban_mark_[j] == ban_epoch_;
  }

  void ban_column(std::size_t j) {
    if (ban_mark_[j] != ban_epoch_) {
      ban_mark_[j] = ban_epoch_;
      ++ban_count_;
    }
  }

  void clear_bans() {
    if (ban_count_ != 0) {
      ++ban_epoch_;
      ban_count_ = 0;
    }
  }

  double dot_col(std::size_t j, const std::vector<double>& v) const {
    double d = 0;
    for (int e = col_start_[j]; e < col_start_[j + 1]; ++e) {
      d += v[col_entries_[e].first] * col_entries_[e].second;
    }
    return d;
  }

  /// out = A^T v for every column at once, walking only the rows on v's
  /// support (for the simplex duals that is the ~k active rows, not all m).
  /// The ascending outer row loop accumulates each column's terms in exactly
  /// dot_col's order, so every out[j] matches dot_col(j, v) -- rows where
  /// v is zero contribute only exact +-0.0 terms, which cannot change any
  /// sign or magnitude test downstream.
  void scatter_dots(const std::vector<double>& v, std::vector<double>& out) const {
    std::fill(out.begin(), out.end(), 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      const double vi = v[i];
      if (vi == 0.0) continue;
      for (int e = row_start_[i]; e < row_start_[i + 1]; ++e) {
        out[row_entries_[e].first] += row_entries_[e].second * vi;
      }
    }
  }

  // --- reduced-basis pivots --------------------------------------------------
  //
  // Each basis change is one of four O(k^2) updates on M^-1, selected by
  // whether the entering/leaving columns are structural or logical. alpha_
  // and red_ must hold the ftran of the entering column; in every case the
  // ratio test's pivot alpha_[r] doubles (up to sign) as the update's pivot
  // element, so nonsingularity is guaranteed.

  /// Structural enters, logical leaves: M gains row r and column e
  /// (bordered-inverse update; the Schur complement equals alpha_[r]).
  void grow_basis(std::size_t r, std::size_t e) {
    const double inv_s = 1.0 / alpha_[r];
    for (std::size_t b = 0; b < k_; ++b) {
      kwork_[b] = coeff_at(cols_[b], static_cast<int>(r));  // w = row r over S
    }
    for (std::size_t a = 0; a < k_; ++a) {
      double v = 0;
      for (std::size_t b = 0; b < k_; ++b) v += kwork_[b] * minv_[b * kcap_ + a];
      twork_[a] = v;  // q^T = w^T M^-1
    }
    for (std::size_t b = 0; b < k_; ++b) {
      const double pb = red_[b];
      double* mrow = &minv_[b * kcap_];
      if (pb != 0.0) {
        const double f = pb * inv_s;
        for (std::size_t a = 0; a < k_; ++a) mrow[a] += f * twork_[a];
      }
      mrow[k_] = -pb * inv_s;
    }
    double* lrow = &minv_[k_ * kcap_];
    for (std::size_t a = 0; a < k_; ++a) lrow[a] = -twork_[a] * inv_s;
    lrow[k_] = inv_s;
    rows_[k_] = static_cast<int>(r);
    row_pos_[r] = static_cast<int>(k_);
    cols_[k_] = static_cast<int>(e);
    col_pos_[e] = static_cast<int>(k_);
    col_slot_[k_] = static_cast<int>(r);
    ++k_;
  }

  /// Structural enters, structural leaves: product-form column replacement.
  void replace_col(std::size_t r, std::size_t e) {
    const std::size_t c = static_cast<std::size_t>(col_pos_[basis_[r]]);
    const double inv = 1.0 / red_[c];  // red_[c] == alpha_[r]
    double* crow = &minv_[c * kcap_];
    for (std::size_t a = 0; a < k_; ++a) crow[a] *= inv;
    for (std::size_t b = 0; b < k_; ++b) {
      if (b == c) continue;
      const double f = red_[b];
      if (f == 0.0) continue;
      double* brow = &minv_[b * kcap_];
      for (std::size_t a = 0; a < k_; ++a) brow[a] -= f * crow[a];
    }
    col_pos_[cols_[c]] = -1;
    cols_[c] = static_cast<int>(e);
    col_pos_[e] = static_cast<int>(c);
  }

  /// Logical n+i enters, structural leaves: M loses row i and the leaving
  /// column (rank-1 downdate, then compaction by swapping with the last
  /// index). The deleted-entry pivot M^-1[c][p] equals alpha_[r].
  void shrink_basis(std::size_t r, std::size_t e) {
    const std::size_t i = e - n_;
    PARTITA_ASSERT(row_pos_[i] >= 0);
    const std::size_t p = static_cast<std::size_t>(row_pos_[i]);
    const std::size_t c = static_cast<std::size_t>(col_pos_[basis_[r]]);
    const double invp = 1.0 / minv_[c * kcap_ + p];
    const double* crow = &minv_[c * kcap_];
    for (std::size_t b = 0; b < k_; ++b) {
      if (b == c) continue;
      double* brow = &minv_[b * kcap_];
      const double f = brow[p] * invp;
      if (f == 0.0) continue;
      for (std::size_t a = 0; a < k_; ++a) brow[a] -= f * crow[a];
    }
    const std::size_t tail = k_ - 1;
    col_pos_[basis_[r]] = -1;
    row_pos_[i] = -1;
    if (p != tail) {  // compact the a-space (M^-1 columns)
      for (std::size_t b = 0; b < k_; ++b) minv_[b * kcap_ + p] = minv_[b * kcap_ + tail];
      rows_[p] = rows_[tail];
      row_pos_[rows_[p]] = static_cast<int>(p);
    }
    if (c != tail) {  // compact the b-space (M^-1 rows)
      std::memcpy(&minv_[c * kcap_], &minv_[tail * kcap_], k_ * sizeof(double));
      cols_[c] = cols_[tail];
      col_pos_[cols_[c]] = static_cast<int>(c);
      col_slot_[c] = col_slot_[tail];
    }
    k_ = tail;
  }

  /// Logical n+i enters, logical n+r leaves: row i of M becomes row r
  /// (Sherman-Morrison row replacement; the denominator equals -alpha_[r]).
  void replace_row(std::size_t r, std::size_t e) {
    const std::size_t i = e - n_;
    PARTITA_ASSERT(row_pos_[i] >= 0);
    const std::size_t p = static_cast<std::size_t>(row_pos_[i]);
    for (std::size_t b = 0; b < k_; ++b) {
      kwork_[b] = minv_[b * kcap_ + p];                     // kappa = M^-1 e_p
      gwork_[b] = coeff_at(cols_[b], static_cast<int>(r));  // w = new row
    }
    for (std::size_t a = 0; a < k_; ++a) {
      double v = 0;
      for (std::size_t b = 0; b < k_; ++b) v += gwork_[b] * minv_[b * kcap_ + a];
      twork_[a] = v;  // t^T = w^T M^-1
    }
    const double invp = 1.0 / twork_[p];
    twork_[p] -= 1.0;  // d^T M^-1 = t^T - e_p^T
    for (std::size_t b = 0; b < k_; ++b) {
      const double f = kwork_[b] * invp;
      if (f == 0.0) continue;
      double* brow = &minv_[b * kcap_];
      for (std::size_t a = 0; a < k_; ++a) brow[a] -= f * twork_[a];
    }
    rows_[p] = static_cast<int>(r);
    row_pos_[i] = -1;
    row_pos_[r] = static_cast<int>(p);
  }

  /// Dispatches the pivot (entering column e replaces basis_[r]) to the
  /// matching reduced-basis update.
  void pivot_basis(std::size_t r, std::size_t e) {
    const bool enter_struct = e < n_;
    const bool leave_struct = basis_[r] < static_cast<int>(n_);
    if (enter_struct) {
      if (leave_struct) replace_col(r, e);
      else grow_basis(r, e);
    } else {
      if (leave_struct) shrink_basis(r, e);
      else replace_row(r, e);
    }
    ++pivots_since_refactor_;
  }

  /// Refactorizes when due. Returns false on a (numerically) singular basis,
  /// which can only arise from catastrophic roundoff -- callers abort the
  /// solve rather than continue with a corrupt inverse.
  bool periodic_refactor() {
    if (pivots_since_refactor_ < kRefactorInterval) return true;
    if (!refactorize()) {
      have_factorization_ = false;
      return false;
    }
    compute_xb();
    return true;
  }

  // --- candidate-list pricing ------------------------------------------------

  /// Prices only the surviving candidate columns (dropping entries that went
  /// basic or got fixed since the last refresh) and picks the steepest
  /// eligible one. Returns false when the list yields no improving column.
  bool price_candidates(int phase, std::size_t& enter, int& direction,
                        double& best_score) {
    std::size_t out = 0;
    for (const int cj : cand_) {
      const std::size_t j = static_cast<std::size_t>(cj);
      if (status_[j] == BasisStatus::kBasic) continue;
      if (lb_[j] == ub_[j]) continue;
      cand_[out++] = cj;
      if (banned(j)) continue;
      ++cand_scans_;
      const double d = (phase == 2 ? cost_[j] : 0.0) - dot_col(j, y_);
      if (status_[j] == BasisStatus::kAtLower && d < -best_score) {
        enter = j;
        direction = +1;
        best_score = -d;
      } else if (status_[j] == BasisStatus::kAtUpper && d > best_score) {
        enter = j;
        direction = -1;
        best_score = d;
      }
    }
    cand_.resize(out);
    return enter != total_;
  }

  /// Full Dantzig scan: picks the steepest eligible column (identical choice
  /// to classic Dantzig pricing, first-lowest-index on score ties) and
  /// retains the best candidate_list_size eligible columns for the next
  /// iterations. Leaves enter == total_ exactly when no column improves --
  /// the optimality / phase-1 infeasibility certificate.
  void refresh_candidates(int phase, std::size_t& enter, int& direction,
                          double& best_score) {
    ++cand_refreshes_;
    cand_.clear();
    scored_.clear();
    scatter_dots(y_, ay_);  // one pass over y's support prices every column
    for (std::size_t j = 0; j < total_; ++j) {
      if (status_[j] == BasisStatus::kBasic) continue;
      if (lb_[j] == ub_[j]) continue;
      if (banned(j)) continue;
      const double d = (phase == 2 ? cost_[j] : 0.0) - ay_[j];
      double score;
      int dir;
      if (status_[j] == BasisStatus::kAtLower && d < -opt_.eps) {
        score = -d;
        dir = +1;
      } else if (status_[j] == BasisStatus::kAtUpper && d > opt_.eps) {
        score = d;
        dir = -1;
      } else {
        continue;
      }
      if (score > best_score) {
        enter = j;
        direction = dir;
        best_score = score;
      }
      scored_.push_back({score, static_cast<int>(j)});
    }
    const std::size_t cap = static_cast<std::size_t>(opt_.candidate_list_size);
    if (scored_.size() > cap) {
      // Deterministic top-`cap`: score descending, then lowest index.
      std::nth_element(scored_.begin(), scored_.begin() + cap, scored_.end(),
                       [](const std::pair<double, int>& a, const std::pair<double, int>& b) {
                         return a.first != b.first ? a.first > b.first
                                                  : a.second < b.second;
                       });
      scored_.resize(cap);
    }
    cand_.reserve(scored_.size());
    for (const auto& [score, j] : scored_) cand_.push_back(j);
    // Keep the list in column order: subsequent pricing passes then walk the
    // CSC arrays monotonically and ties keep resolving to the lowest index.
    std::sort(cand_.begin(), cand_.end());
  }

  // --- primal simplex --------------------------------------------------------

  /// Phase 1 minimizes total bound infeasibility of the basic solution with
  /// dynamic costs; phase 2 minimizes the internal objective. Returns
  /// kOptimal / kUnbounded (phase 2 only) / kInfeasible (phase 1 only) /
  /// kIterationLimit.
  LpStatus primal(int phase, int& iterations) {
    std::vector<double> cb(m_, 0.0);
    bool bland = false;
    int stall = 0;
    int spins = 0;
    double last_obj = std::numeric_limits<double>::infinity();
    cand_.clear();  // stale per-phase reduced costs: force a fresh scan
    clear_bans();

    while (true) {
      // `iterations` counts executed pivots/bound flips (the number callers
      // and benches care about); the spin guard bounds pure bookkeeping
      // passes so termination never depends on a pivot happening.
      if (iterations >= opt_.max_iterations) return LpStatus::kIterationLimit;
      if (++spins > 2 * opt_.max_iterations + 64) return LpStatus::kIterationLimit;
      if (!periodic_refactor()) return LpStatus::kIterationLimit;

      // Basic costs. Phase 1: infeasibility direction of each basic column.
      double infeas = 0;
      if (phase == 1) {
        for (std::size_t i = 0; i < m_; ++i) {
          const int j = basis_[i];
          if (xb_[i] < lb_[j] - kFeasTol) {
            cb[i] = -1.0;
            infeas += lb_[j] - xb_[i];
          } else if (xb_[i] > ub_[j] + kFeasTol) {
            cb[i] = 1.0;
            infeas += xb_[i] - ub_[j];
          } else {
            cb[i] = 0.0;
          }
        }
        if (infeas <= kPhase1Tol) return LpStatus::kOptimal;
      } else {
        for (std::size_t i = 0; i < m_; ++i) cb[i] = cost_[basis_[i]];
      }
      btran(cb);

      // --- entering column ---------------------------------------------
      // Bland mode always prices with the full lowest-index scan (the
      // anti-cycling guarantee needs it); otherwise the candidate list
      // restricts pricing to a bounded set, refreshed by one full scan when
      // it runs dry. Optimality/infeasibility is only ever declared from a
      // full scan, so the restriction cannot terminate early.
      std::size_t enter = total_;
      int direction = 0;  // +1 increase from lower, -1 decrease from upper
      double best_score = opt_.eps;
      if (opt_.pricing == PricingMode::kCandidateList && !bland) {
        if (!price_candidates(phase, enter, direction, best_score)) {
          refresh_candidates(phase, enter, direction, best_score);
        }
      } else {
        for (std::size_t j = 0; j < total_; ++j) {
          if (status_[j] == BasisStatus::kBasic) continue;
          if (lb_[j] == ub_[j]) continue;  // fixed column can never move
          if (banned(j)) continue;
          const double d = (phase == 2 ? cost_[j] : 0.0) - dot_col(j, y_);
          if (status_[j] == BasisStatus::kAtLower && d < -best_score) {
            enter = j;
            direction = +1;
            if (bland) break;
            best_score = -d;
          } else if (status_[j] == BasisStatus::kAtUpper && d > best_score) {
            enter = j;
            direction = -1;
            if (bland) break;
            best_score = d;
          }
        }
      }
      if (enter == total_) {
        // Banned columns were excluded from this scan, so it certifies
        // nothing; report the numerical dead end rather than a false
        // optimum (branch & bound treats it as "no usable bound").
        if (ban_count_ != 0) return LpStatus::kIterationLimit;
        return phase == 1 ? LpStatus::kInfeasible : LpStatus::kOptimal;
      }

      ftran(enter);
      if (pivots_since_refactor_ > 0 && !ftran_accurate(enter)) {
        // Kernel drift: rebuild from scratch and re-enter the loop with a
        // fresh factorization (pricing reruns off the recomputed state).
        if (!refactorize()) return LpStatus::kIterationLimit;
        compute_xb();
        continue;
      }

#ifdef PARTITA_LP_TRACE
      {
        // Check B * alpha == a_enter: z = sum_i alpha_i * col(basis_[i]).
        std::vector<double> z(m_, 0.0);
        for (std::size_t i = 0; i < m_; ++i) {
          const double ai = alpha_[i];
          if (ai == 0.0) continue;
          const std::size_t bj = static_cast<std::size_t>(basis_[i]);
          if (bj >= n_) {
            z[bj - n_] += ai;
          } else {
            for (int e2 = col_start_[bj]; e2 < col_start_[bj + 1]; ++e2) {
              z[col_entries_[e2].first] += col_entries_[e2].second * ai;
            }
          }
        }
        if (enter >= n_) {
          z[enter - n_] -= 1.0;
        } else {
          for (int e2 = col_start_[enter]; e2 < col_start_[enter + 1]; ++e2) {
            z[col_entries_[e2].first] -= col_entries_[e2].second;
          }
        }
        double err = 0;
        for (std::size_t i = 0; i < m_; ++i) err = std::max(err, std::abs(z[i]));
        if (err > 1e-6) {
          std::fprintf(stderr, "TRACE ftran wrong: iter=%d enter=%zu err=%.6g\n",
                       iterations, enter, err);
          std::abort();
        }
        // And alpha support completeness: alpha_[i] != 0 must imply marked.
        for (std::size_t i = 0; i < m_; ++i) {
          if (alpha_[i] != 0.0 && alpha_mark_[i] != alpha_epoch_) {
            std::fprintf(stderr, "TRACE support miss: iter=%d row=%zu\n",
                         iterations, i);
            std::abort();
          }
        }
      }
#endif
      // --- ratio test ----------------------------------------------------
      // Entering moves by direction*theta; basic i changes at rate
      // g_i = -direction * alpha_i per unit theta. Only the pivot column's
      // support (alpha_nz_) can block the step.
      double theta = ub_[enter] - lb_[enter];  // bound-flip distance
      std::size_t leave_row = m_;              // m_ => bound flip
      bool leave_at_upper = false;

      // Distance the entering variable can move before basic i hits a bound
      // (kInfinity when row i never blocks the step).
      const auto row_limit = [&](std::size_t i, bool& at_upper) -> double {
        const double g = -direction * alpha_[i];
        at_upper = false;
        if (std::abs(g) <= opt_.eps) return kInfinity;
        const int bj = basis_[i];
        if (phase == 1 && xb_[i] < lb_[bj] - kFeasTol) {
          // Violated below: blocks only when climbing back to its lower
          // bound (it leaves feasible there).
          if (g > 0) return (lb_[bj] - xb_[i]) / g;
        } else if (phase == 1 && xb_[i] > ub_[bj] + kFeasTol) {
          if (g < 0) {
            at_upper = true;
            return (xb_[i] - ub_[bj]) / -g;
          }
        } else if (g < 0) {
          if (std::isfinite(lb_[bj])) return (xb_[i] - lb_[bj]) / -g;
        } else {
          if (std::isfinite(ub_[bj])) {
            at_upper = true;
            return (ub_[bj] - xb_[i]) / g;
          }
        }
        return kInfinity;
      };

      for (const int inz : alpha_nz_) {
        const std::size_t i = static_cast<std::size_t>(inz);
        bool at_upper = false;
        const double limit = row_limit(i, at_upper);
        if (limit >= kInfinity) continue;
        if (limit < theta - opt_.eps ||
            (bland && limit < theta + opt_.eps && leave_row != m_ &&
             basis_[i] < basis_[leave_row])) {
          theta = std::max(0.0, limit);
          leave_row = i;
          leave_at_upper = at_upper;
        }
      }

      // Stability pass: pivoting on a near-zero alpha ruins the product-form
      // kernel update (1/alpha amplifies roundoff through M^-1 and the basic
      // values), so among leaving rows whose limits tie within tolerance take
      // the largest |alpha| instead of the first minimum. Bland mode keeps
      // its lowest-index choice (the anti-cycling proof needs it); the
      // refactorization net below contains any damage there.
      if (!bland && leave_row != m_) {
        double best_mag = std::abs(alpha_[leave_row]);
        for (const int inz : alpha_nz_) {
          const std::size_t i = static_cast<std::size_t>(inz);
          if (i == leave_row) continue;
          const double mag = std::abs(alpha_[i]);
          if (mag <= best_mag) continue;
          bool at_upper = false;
          const double limit = row_limit(i, at_upper);
          // Eligible when snapping row i to its bound at step theta leaves
          // at most a sliver of residual travel ((limit - theta) * |alpha|
          // bounds the displacement this substitution introduces).
          if (limit - theta <= opt_.eps ||
              (limit - theta) * mag <= kFeasTol * 1e-2) {
            leave_row = i;
            leave_at_upper = at_upper;
            best_mag = mag;
          }
        }
      }

      if (!std::isfinite(theta)) {
        // Phase 1 cannot be unbounded (the infeasibility sum is >= 0);
        // hitting this numerically means the instance is hopeless.
        return phase == 1 ? LpStatus::kIterationLimit : LpStatus::kUnbounded;
      }

      if (leave_row != m_ && std::abs(alpha_[leave_row]) < kPivotTol) {
        // The best available pivot is numerically nil. On a stale kernel the
        // tiny alpha may itself be drift, so rebuild and re-derive; on a
        // fresh one the column genuinely cannot enter this basis -- ban it
        // and re-price (the spin guard bounds these detours).
        if (pivots_since_refactor_ > 0) {
          if (!refactorize()) return LpStatus::kIterationLimit;
          compute_xb();
          continue;
        }
        ban_column(enter);
        continue;
      }

      apply_step(enter, direction, theta, leave_row, leave_at_upper);
      ++iterations;
#ifdef PARTITA_LP_TRACE
      {
        // Slot bookkeeping invariants.
        for (std::size_t b = 0; b < k_; ++b) {
          if (basis_[col_slot_[b]] != cols_[b]) {
            std::fprintf(stderr,
                         "TRACE slot bad: iter=%d b=%zu col_slot=%d basis=%d cols=%d\n",
                         iterations, b, col_slot_[b], basis_[col_slot_[b]], cols_[b]);
            std::abort();
          }
          if (col_pos_[cols_[b]] != static_cast<int>(b)) {
            std::fprintf(stderr, "TRACE col_pos bad: iter=%d b=%zu\n", iterations, b);
            std::abort();
          }
          if (row_pos_[rows_[b]] != static_cast<int>(b)) {
            std::fprintf(stderr, "TRACE row_pos bad: iter=%d b=%zu\n", iterations, b);
            std::abort();
          }
        }
        // Kernel inverse: M[a][b] = coeff of cols_[b] at row rows_[a];
        // minv_[b][a] = M^-1. Check (M * M^-1)[a][a2] == I.
        double kerr = 0;
        for (std::size_t a = 0; a < k_; ++a) {
          for (std::size_t a2 = 0; a2 < k_; ++a2) {
            double v = 0;
            for (std::size_t b2 = 0; b2 < k_; ++b2) {
              v += coeff_at(cols_[b2], static_cast<int>(rows_[a])) *
                   minv_[b2 * kcap_ + a2];
            }
            kerr = std::max(kerr, std::abs(v - (a2 == a ? 1.0 : 0.0)));
          }
        }
        if (kerr > 1e-6) {
          std::fprintf(stderr,
                       "TRACE kernel bad: iter=%d enter=%zu leave_row=%zu k=%zu kerr=%.6g "
                       "alpha_r=%.6g theta=%.6g\n",
                       iterations, enter, leave_row, k_, kerr,
                       leave_row == m_ ? 0.0 : alpha_[leave_row], theta);
          std::abort();
        }
      }
#endif
#ifdef PARTITA_LP_TRACE
      if (phase == 2) {
        const double infe = total_infeasibility();
        if (infe > 1e-5) {
          std::fprintf(stderr,
                       "TRACE iter=%d enter=%zu dir=%d theta=%.6g leave_row=%zu "
                       "leave=%d k=%zu infeas=%.6g nz=%zu\n",
                       iterations, enter, direction, theta, leave_row,
                       leave_row == m_ ? -1 : basis_[leave_row], k_, infe,
                       alpha_nz_.size());
          std::abort();
        }
      }
#endif

      // --- stall detection / Bland fallback ------------------------------
      double obj;
      if (phase == 1) {
        obj = total_infeasibility();
      } else {
        obj = 0;
        for (std::size_t i = 0; i < m_; ++i) obj += cost_[basis_[i]] * xb_[i];
        for (std::size_t j = 0; j < total_; ++j) {
          if (status_[j] != BasisStatus::kBasic && cost_[j] != 0.0) {
            obj += cost_[j] * nonbasic_value(j);
          }
        }
      }
      if (obj < last_obj - 1e-12) {
        stall = 0;
        bland = false;
      } else if (++stall > opt_.stall_limit) {
        bland = true;  // anti-cycling
      }
      last_obj = obj;
    }
  }

  /// Executes a primal step: bound flip or basis change. alpha_ and red_
  /// must hold the ftran of the entering column.
  void apply_step(std::size_t enter, int direction, double theta, std::size_t leave_row,
                  bool leave_at_upper) {
    clear_bans();  // bans are scoped to the pre-step basis and point
    if (leave_row == m_) {
      // Bound flip: the entering variable traverses its whole interval and
      // the basic values absorb the move (only the pivot column's support
      // moves at all).
      for (const int i : alpha_nz_) xb_[i] -= theta * direction * alpha_[i];
      status_[enter] = status_[enter] == BasisStatus::kAtLower ? BasisStatus::kAtUpper
                                                               : BasisStatus::kAtLower;
      return;
    }
    const double enter_start = nonbasic_value(enter);
    for (const int inz : alpha_nz_) {
      const std::size_t i = static_cast<std::size_t>(inz);
      if (i != leave_row) xb_[i] -= theta * direction * alpha_[i];
    }
    const int leave = basis_[leave_row];
    status_[leave] = leave_at_upper ? BasisStatus::kAtUpper : BasisStatus::kAtLower;
    pivot_basis(leave_row, enter);
    basis_[leave_row] = static_cast<int>(enter);
    status_[enter] = BasisStatus::kBasic;
    xb_[leave_row] = enter_start + theta * direction;
    if (enter >= n_) {
      // Restore the slot invariant: a basic logical lives in its own row's
      // slot, so the structural column parked there moves to the vacated
      // slot instead.
      const std::size_t i = enter - n_;
      if (i != leave_row) {
        std::swap(basis_[i], basis_[leave_row]);
        std::swap(xb_[i], xb_[leave_row]);
        col_slot_[col_pos_[basis_[leave_row]]] = static_cast<int>(leave_row);
      }
    }
  }

  // --- dual simplex ----------------------------------------------------------

  /// Restores primal feasibility from a dual-feasible basis (the imported
  /// parent optimum). Returns kOptimal when the basic solution is within
  /// bounds, kInfeasible when a violated row admits no entering column.
  LpStatus dual_simplex(int& iterations) {
    std::vector<double> cb(m_);
    int degenerate = 0;
    int spins = 0;
    clear_bans();

    while (true) {
      if (iterations >= opt_.max_iterations) return LpStatus::kIterationLimit;
      if (++spins > 2 * opt_.max_iterations + 64) return LpStatus::kIterationLimit;
      if (!periodic_refactor()) return LpStatus::kIterationLimit;

      // --- leaving row: largest bound violation --------------------------
      std::size_t r = m_;
      double worst = kFeasTol;
      double target = 0;
      bool to_upper = false;
      for (std::size_t i = 0; i < m_; ++i) {
        const int j = basis_[i];
        if (xb_[i] < lb_[j] - worst) {
          worst = lb_[j] - xb_[i];
          r = i;
          target = lb_[j];
          to_upper = false;
        } else if (xb_[i] > ub_[j] + worst) {
          worst = xb_[i] - ub_[j];
          r = i;
          target = ub_[j];
          to_upper = true;
        }
      }
      if (r == m_) return LpStatus::kOptimal;  // primal feasible

      // Reduced costs (phase-2 objective) and row r of B^-1.
      for (std::size_t i = 0; i < m_; ++i) cb[i] = cost_[basis_[i]];
      btran(cb);
      btran_unit(r);

      // Candidate-list mode prices the whole entering scan with two
      // row-major scatters over the duals' support (same numbers as the
      // per-column dots, a fraction of the work); kDantzig keeps the
      // classic column-by-column scan.
      const bool scatter = opt_.pricing == PricingMode::kCandidateList;
      if (scatter) {
        scatter_dots(rho_, arho_);
        scatter_dots(y_, ay_);
      }

      const double delta = target - xb_[r];  // signed move of the leaving basic
      // d(xb_r)/d(x_j) = -alpha_rj; eligibility depends on which way x_j may
      // move from its bound.
      std::size_t enter = total_;
      double best_ratio = kInfinity;
      double best_alpha = 0;
      const bool use_bland = degenerate > opt_.stall_limit;
      for (std::size_t j = 0; j < total_; ++j) {
        if (status_[j] == BasisStatus::kBasic) continue;
        if (lb_[j] == ub_[j]) continue;
        if (banned(j)) continue;
        double a = scatter ? arho_[j] : dot_col(j, rho_);
        if (std::abs(a) <= 1e-9) continue;
        const bool from_lower = status_[j] == BasisStatus::kAtLower;
        // Moving x_j by dx changes xb_r by -a*dx; dx >= 0 from lower,
        // dx <= 0 from upper. Require the change to push xb_r toward target.
        const bool eligible = delta > 0 ? (from_lower ? a < 0 : a > 0)
                                        : (from_lower ? a > 0 : a < 0);
        if (!eligible) continue;
        double d = cost_[j] - (scatter ? ay_[j] : dot_col(j, y_));
        // Dual feasibility keeps d >= 0 at lower and d <= 0 at upper; clamp
        // tolerance drift so ratios stay nonnegative.
        d = from_lower ? std::max(d, 0.0) : std::min(d, 0.0);
        const double ratio = std::abs(d) / std::abs(a);
        if (ratio < best_ratio - opt_.eps ||
            (ratio < best_ratio + opt_.eps &&
             (use_bland ? (enter == total_ || j < enter)
                        : std::abs(a) > std::abs(best_alpha)))) {
          best_ratio = ratio;
          best_alpha = a;
          enter = j;
        }
      }
      if (enter == total_) {
        // With columns banned this scan proved nothing (see primal()).
        return ban_count_ != 0 ? LpStatus::kIterationLimit : LpStatus::kInfeasible;
      }

      ftran(enter);
      if (pivots_since_refactor_ > 0 && !ftran_accurate(enter)) {
        if (!refactorize()) return LpStatus::kIterationLimit;
        compute_xb();
        continue;  // re-derive the worst row from the repaired state
      }
      // ftran gives a fresher alpha_r than the rho dot product; reject a
      // pivot that collapsed numerically (same containment as the primal:
      // refactorize a stale kernel, ban the column on a fresh one).
      const double arj = alpha_[r];
      if (std::abs(arj) < kPivotTol) {
        if (pivots_since_refactor_ > 0) {
          if (!refactorize()) return LpStatus::kIterationLimit;
          compute_xb();
          continue;
        }
        ban_column(enter);
        continue;
      }
      const double dx = delta / -arj;
      const int direction = dx >= 0 ? +1 : -1;
      if (std::abs(dx) <= opt_.eps) ++degenerate;
      else degenerate = 0;
      apply_step(enter, direction, std::abs(dx), r, to_upper);
      ++iterations;
    }
  }

  const Model& model_;
  std::size_t n_ = 0, m_ = 0, total_ = 0;
  double sign_ = 1.0;

  // Immutable sparse columns (CSC) built at construction, plus the CSR
  // mirror that drives the support-sparse pricing scatters.
  std::vector<int> col_start_;
  std::vector<std::pair<int, double>> col_entries_;
  std::vector<int> row_start_;
  std::vector<std::pair<int, double>> row_entries_;
  std::vector<double> row_scale_;  // power-of-2 equilibration, rows
  std::vector<double> col_scale_;  // power-of-2 equilibration, columns
  std::vector<double> rhs_;
  std::vector<double> cost_;  // internal (minimization) phase-2 costs
  std::vector<double> logical_lb_, logical_ub_;

  // Per-solve state.
  LpOptions opt_;
  std::vector<double> lb_, ub_;
  std::vector<BasisStatus> status_;
  std::vector<int> basis_;  // column basic at each basis position (slot = row)
  std::vector<double> xb_;  // basic values, by basis position
  std::vector<double> y_, alpha_, rho_, work_;
  std::vector<double> arho_, ay_;  // scatter_dots outputs (pricing scratch)
  std::vector<double> resid_;  // ftran_accurate scratch, all-zero at rest
  std::vector<int> ban_mark_;  // tiny-pivot bans, valid while == ban_epoch_
  int ban_epoch_ = 1;
  int ban_count_ = 0;
  // Support of alpha_ from the last ftran (epoch-marked to dedup touches).
  std::vector<int> alpha_nz_;
  std::vector<int> alpha_mark_;
  int alpha_epoch_ = 0;
  // Candidate-list pricing state.
  std::vector<int> cand_;
  std::vector<std::pair<double, int>> scored_;
  long long cand_scans_ = 0;
  int cand_refreshes_ = 0;

  // Reduced basis: M = A[rows_, cols_] with minv_ = M^-1 (k_ x k_, stored
  // row-major with fixed stride kcap_; minv_[b][a] pairs M^-1's row index b
  // -- the active-column slot -- with column index a -- the active-row slot).
  std::size_t kcap_ = 0, k_ = 0;
  std::vector<int> rows_;      // active rows (logical nonbasic), size k_
  std::vector<int> cols_;      // basic structural columns, size k_
  std::vector<int> col_slot_;  // basis slot hosting cols_[b]
  std::vector<int> row_pos_;   // row -> index in rows_, or -1
  std::vector<int> col_pos_;   // structural column -> index in cols_, or -1
  std::vector<double> minv_;
  std::vector<double> red_;  // M^-1 a_e[R] from the last ftran
  std::vector<double> gwork_, twork_, kwork_;
  std::vector<double> scratch_mat_;
  bool have_factorization_ = false;
  int pivots_since_refactor_ = 0;
};

SimplexSolver::SimplexSolver(const Model& model) : impl_(new Impl(model)) {}

SimplexSolver::~SimplexSolver() { delete impl_; }

LpResult SimplexSolver::solve(const std::vector<double>& lower,
                              const std::vector<double>& upper, const LpOptions& opt) {
  PARTITA_ASSERT(lower.size() == upper.size());
  LpResult res = impl_->run(lower, upper, opt, nullptr, &last_basis_);
  if (res.status != LpStatus::kOptimal) last_basis_.status.clear();
  return res;
}

LpResult SimplexSolver::solve_warm(const std::vector<double>& lower,
                                   const std::vector<double>& upper, const Basis& basis,
                                   const LpOptions& opt) {
  PARTITA_ASSERT(lower.size() == upper.size());
  LpResult res = impl_->run(lower, upper, opt, basis.empty() ? nullptr : &basis,
                            &last_basis_);
  if (res.status != LpStatus::kOptimal) last_basis_.status.clear();
  return res;
}

LpResult solve_lp(const Model& model, const LpOptions& opt) {
  std::vector<double> lower(model.var_count()), upper(model.var_count());
  for (std::size_t j = 0; j < model.var_count(); ++j) {
    lower[j] = model.var(static_cast<VarIndex>(j)).lower;
    upper[j] = model.var(static_cast<VarIndex>(j)).upper;
  }
  return solve_lp(model, lower, upper, opt);
}

LpResult solve_lp(const Model& model, const std::vector<double>& lower,
                  const std::vector<double>& upper, const LpOptions& opt) {
  PARTITA_ASSERT(lower.size() == model.var_count() && upper.size() == model.var_count());
  SimplexSolver solver(model);
  return solver.solve(lower, upper, opt);
}

}  // namespace partita::ilp

#include "ilp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/assert.hpp"

namespace partita::ilp {

namespace {

enum class ColStatus : std::uint8_t { kBasic, kAtLower, kAtUpper };

class Tableau {
 public:
  Tableau(const Model& model, const std::vector<double>& lower,
          const std::vector<double>& upper, const LpOptions& opt)
      : model_(model), opt_(opt) {
    n_struct_ = model.var_count();
    m_ = model.row_count();
    build(lower, upper);
  }

  LpResult solve() {
    LpResult res;

    // ---- Phase 1: drive artificials to zero --------------------------------
    if (any_artificial_) {
      set_phase1_costs();
      const LpStatus s1 = optimize(res.iterations);
      if (s1 == LpStatus::kIterationLimit) {
        res.status = s1;
        return res;
      }
      // Phase 1 is bounded below by 0, so kUnbounded cannot happen.
      if (current_objective() > 1e-6) {
        res.status = LpStatus::kInfeasible;
        return res;
      }
      pivot_out_artificials();
    }

    // ---- Phase 2: real objective -------------------------------------------
    set_phase2_costs();
    const LpStatus s2 = optimize(res.iterations);
    res.status = s2;
    if (s2 != LpStatus::kOptimal) return res;

    res.x.assign(n_struct_, 0.0);
    const std::vector<double> xs = solution_values();
    for (std::size_t j = 0; j < n_struct_; ++j) res.x[j] = xs[j];
    double obj = 0;
    for (std::size_t j = 0; j < n_struct_; ++j) {
      obj += model_.var(static_cast<VarIndex>(j)).objective * res.x[j];
    }
    res.objective = obj;
    return res;
  }

 private:
  // --- construction ---------------------------------------------------------

  void build(const std::vector<double>& lower, const std::vector<double>& upper) {
    // Column layout: [structural | slack per row | artificial per row (maybe)]
    n_total_ = n_struct_ + m_;  // artificials appended lazily
    a_.assign(m_, {});
    rhs_.assign(m_, 0.0);
    lb_.assign(n_total_, 0.0);
    ub_.assign(n_total_, kInfinity);
    status_.assign(n_total_, ColStatus::kAtLower);
    basis_.assign(m_, 0);

    for (std::size_t j = 0; j < n_struct_; ++j) {
      lb_[j] = lower[j];
      ub_[j] = upper[j];
      PARTITA_ASSERT_MSG(std::isfinite(lb_[j]), "structural vars need finite lower bounds");
      PARTITA_ASSERT_MSG(lb_[j] <= ub_[j] + opt_.eps, "empty variable domain");
    }

    for (std::size_t i = 0; i < m_; ++i) {
      a_[i].assign(n_total_, 0.0);
      const Row& row = model_.row(static_cast<RowIndex>(i));
      for (const Term& t : row.terms) a_[i][t.var] = t.coeff;
      rhs_[i] = row.rhs;
      const std::size_t slack = n_struct_ + i;
      switch (row.sense) {
        case RowSense::kLessEqual:
          a_[i][slack] = 1.0;
          lb_[slack] = 0.0;
          ub_[slack] = kInfinity;
          break;
        case RowSense::kGreaterEqual:
          a_[i][slack] = -1.0;
          lb_[slack] = 0.0;
          ub_[slack] = kInfinity;
          break;
        case RowSense::kEqual:
          a_[i][slack] = 1.0;
          lb_[slack] = 0.0;
          ub_[slack] = 0.0;
          break;
      }
    }

    // Nonbasic structural variables rest at their (finite) lower bound.
    for (std::size_t j = 0; j < n_struct_; ++j) status_[j] = ColStatus::kAtLower;

    // Initial basis: the slack of each row where that works, else an
    // artificial.
    std::vector<std::size_t> needs_artificial;
    for (std::size_t i = 0; i < m_; ++i) {
      const std::size_t slack = n_struct_ + i;
      const double activity = row_activity_nonbasic(i, slack);
      const double needed = (rhs_[i] - activity) / a_[i][slack];
      if (needed >= lb_[slack] - opt_.eps && needed <= ub_[slack] + opt_.eps) {
        make_basic(i, slack);
      } else {
        // Slack parks at the bound nearest the needed value.
        status_[slack] = needed < lb_[slack] ? ColStatus::kAtLower : ColStatus::kAtUpper;
        needs_artificial.push_back(i);
      }
    }

    any_artificial_ = !needs_artificial.empty();
    if (any_artificial_) {
      const std::size_t base = n_total_;
      n_total_ += needs_artificial.size();
      lb_.resize(n_total_, 0.0);
      ub_.resize(n_total_, kInfinity);
      status_.resize(n_total_, ColStatus::kAtLower);
      for (auto& arow : a_) arow.resize(n_total_, 0.0);
      first_artificial_ = base;
      for (std::size_t k = 0; k < needs_artificial.size(); ++k) {
        const std::size_t i = needs_artificial[k];
        const std::size_t art = base + k;
        // Residual the artificial must absorb given all nonbasics at bound.
        const double residual = rhs_[i] - row_activity_nonbasic(i, /*skip=*/art);
        a_[i][art] = residual >= 0 ? 1.0 : -1.0;
        make_basic(i, art);
      }
    } else {
      first_artificial_ = n_total_;
    }
    cost_.assign(n_total_, 0.0);
  }

  /// Activity of row i from all nonbasic columns at their bounds, skipping
  /// column `skip`.
  double row_activity_nonbasic(std::size_t i, std::size_t skip) const {
    double v = 0;
    for (std::size_t j = 0; j < n_total_; ++j) {
      if (j == skip || status_[j] == ColStatus::kBasic) continue;
      const double xj = status_[j] == ColStatus::kAtLower ? lb_[j] : ub_[j];
      if (xj != 0.0) v += a_[i][j] * xj;
    }
    return v;
  }

  /// Makes column j basic in row i, scaling/eliminating so the basis column
  /// is a unit vector.
  void make_basic(std::size_t i, std::size_t j) {
    const double piv = a_[i][j];
    PARTITA_ASSERT_MSG(std::abs(piv) > opt_.eps, "zero pivot while forming basis");
    if (piv != 1.0) {
      for (double& v : a_[i]) v /= piv;
      rhs_[i] /= piv;
    }
    for (std::size_t r = 0; r < m_; ++r) {
      if (r == i) continue;
      const double f = a_[r][j];
      if (std::abs(f) > opt_.eps) {
        for (std::size_t c = 0; c < n_total_; ++c) a_[r][c] -= f * a_[i][c];
        rhs_[r] -= f * rhs_[i];
      } else {
        a_[r][j] = 0.0;
      }
    }
    basis_[i] = j;
    status_[j] = ColStatus::kBasic;
  }

  // --- pricing and iteration ------------------------------------------------

  void set_phase1_costs() {
    std::fill(cost_.begin(), cost_.end(), 0.0);
    for (std::size_t j = first_artificial_; j < n_total_; ++j) cost_[j] = 1.0;
  }

  void set_phase2_costs() {
    std::fill(cost_.begin(), cost_.end(), 0.0);
    const double sgn = model_.sense() == Sense::kMinimize ? 1.0 : -1.0;
    for (std::size_t j = 0; j < n_struct_; ++j) {
      cost_[j] = sgn * model_.var(static_cast<VarIndex>(j)).objective;
    }
    // Artificials must not re-enter.
    for (std::size_t j = first_artificial_; j < n_total_; ++j) {
      if (status_[j] != ColStatus::kBasic) {
        ub_[j] = 0.0;
        status_[j] = ColStatus::kAtLower;
      }
    }
  }

  /// Values of ALL columns at the current basic solution.
  std::vector<double> solution_values() const {
    std::vector<double> x(n_total_, 0.0);
    for (std::size_t j = 0; j < n_total_; ++j) {
      if (status_[j] == ColStatus::kAtLower) x[j] = lb_[j];
      else if (status_[j] == ColStatus::kAtUpper) x[j] = ub_[j];
    }
    for (std::size_t i = 0; i < m_; ++i) {
      double v = rhs_[i];
      for (std::size_t j = 0; j < n_total_; ++j) {
        if (status_[j] != ColStatus::kBasic && x[j] != 0.0) v -= a_[i][j] * x[j];
      }
      x[basis_[i]] = v;
    }
    return x;
  }

  void refresh_basic_values() {
    const std::vector<double> x = solution_values();
    xb_.resize(m_);
    for (std::size_t i = 0; i < m_; ++i) xb_[i] = x[basis_[i]];
  }

  double current_objective() const {
    double obj = 0;
    for (std::size_t j = 0; j < n_total_; ++j) {
      if (status_[j] == ColStatus::kBasic || cost_[j] == 0.0) continue;
      obj += cost_[j] * (status_[j] == ColStatus::kAtLower ? lb_[j] : ub_[j]);
    }
    for (std::size_t i = 0; i < m_; ++i) obj += cost_[basis_[i]] * xb_[i];
    return obj;
  }

  /// Reduced cost of column j: c_j - c_B^T * (B^-1 a_j).
  double reduced_cost(std::size_t j) const {
    double d = cost_[j];
    for (std::size_t i = 0; i < m_; ++i) {
      const double cb = cost_[basis_[i]];
      if (cb != 0.0) d -= cb * a_[i][j];
    }
    return d;
  }

  LpStatus optimize(int& iterations) {
    refresh_basic_values();
    int stall = 0;
    double last_obj = current_objective();
    bool bland = false;
    int since_refresh = 0;

    while (true) {
      if (iterations++ >= opt_.max_iterations) return LpStatus::kIterationLimit;
      if (++since_refresh >= 256) {  // numerical hygiene
        refresh_basic_values();
        since_refresh = 0;
      }

      // --- entering column ---------------------------------------------
      std::size_t enter = n_total_;
      int direction = 0;  // +1 increase from lower, -1 decrease from upper
      double best_score = opt_.eps;
      for (std::size_t j = 0; j < n_total_; ++j) {
        if (status_[j] == ColStatus::kBasic) continue;
        if (lb_[j] == ub_[j]) continue;  // fixed column can never move
        const double d = reduced_cost(j);
        if (status_[j] == ColStatus::kAtLower && d < -best_score) {
          enter = j;
          direction = +1;
          if (bland) break;
          best_score = -d;
        } else if (status_[j] == ColStatus::kAtUpper && d > best_score) {
          enter = j;
          direction = -1;
          if (bland) break;
          best_score = d;
        }
      }
      if (enter == n_total_) return LpStatus::kOptimal;

      // --- ratio test ----------------------------------------------------
      double theta = ub_[enter] - lb_[enter];  // bound flip distance
      std::size_t leave_row = m_;              // m_ => bound flip
      bool leave_at_upper = false;

      for (std::size_t i = 0; i < m_; ++i) {
        const double alpha = a_[i][enter] * direction;
        const std::size_t bj = basis_[i];
        if (alpha > opt_.eps) {
          // Basic variable decreases toward its lower bound.
          if (!std::isfinite(lb_[bj])) continue;
          const double limit = (xb_[i] - lb_[bj]) / alpha;
          if (limit < theta - opt_.eps ||
              (bland && limit < theta + opt_.eps && leave_row != m_ && bj < basis_[leave_row])) {
            theta = std::max(0.0, limit);
            leave_row = i;
            leave_at_upper = false;
          }
        } else if (alpha < -opt_.eps) {
          // Basic variable increases toward its upper bound.
          if (!std::isfinite(ub_[bj])) continue;
          const double limit = (ub_[bj] - xb_[i]) / (-alpha);
          if (limit < theta - opt_.eps ||
              (bland && limit < theta + opt_.eps && leave_row != m_ && bj < basis_[leave_row])) {
            theta = std::max(0.0, limit);
            leave_row = i;
            leave_at_upper = true;
          }
        }
      }

      if (!std::isfinite(theta)) return LpStatus::kUnbounded;

      if (leave_row == m_) {
        // Bound flip: the entering variable traverses its whole interval;
        // basic values absorb the move.
        for (std::size_t i = 0; i < m_; ++i) {
          xb_[i] -= theta * direction * a_[i][enter];
        }
        status_[enter] =
            status_[enter] == ColStatus::kAtLower ? ColStatus::kAtUpper : ColStatus::kAtLower;
      } else {
        const double enter_start =
            status_[enter] == ColStatus::kAtLower ? lb_[enter] : ub_[enter];
        for (std::size_t i = 0; i < m_; ++i) {
          if (i != leave_row) xb_[i] -= theta * direction * a_[i][enter];
        }
        const std::size_t leave = basis_[leave_row];
        status_[leave] = leave_at_upper ? ColStatus::kAtUpper : ColStatus::kAtLower;
        make_basic(leave_row, enter);
        xb_[leave_row] = enter_start + theta * direction;
      }

      // --- stall detection / Bland fallback ------------------------------
      const double obj = current_objective();
      if (obj < last_obj - 1e-12) {
        stall = 0;
        bland = false;
      } else if (++stall > 64) {
        bland = true;  // anti-cycling
      }
      last_obj = obj;
    }
  }

  void pivot_out_artificials() {
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] < first_artificial_) continue;
      // Find any eligible non-artificial column with a nonzero tableau entry.
      std::size_t enter = n_total_;
      for (std::size_t j = 0; j < first_artificial_; ++j) {
        if (status_[j] == ColStatus::kBasic) continue;
        if (std::abs(a_[i][j]) > 1e-7) {
          enter = j;
          break;
        }
      }
      if (enter == n_total_) {
        // Redundant row: freeze the artificial at zero.
        ub_[basis_[i]] = 0.0;
        continue;
      }
      make_basic(i, enter);
    }
    refresh_basic_values();
  }

  const Model& model_;
  const LpOptions& opt_;
  std::size_t n_struct_ = 0;
  std::size_t n_total_ = 0;
  std::size_t m_ = 0;
  std::size_t first_artificial_ = 0;
  bool any_artificial_ = false;

  std::vector<std::vector<double>> a_;  // B^-1 * A, maintained by pivoting
  std::vector<double> rhs_;             // B^-1 * b
  std::vector<double> lb_, ub_, cost_;
  std::vector<ColStatus> status_;
  std::vector<std::size_t> basis_;
  std::vector<double> xb_;  // values of the basic variables, by row
};

}  // namespace

LpResult solve_lp(const Model& model, const LpOptions& opt) {
  std::vector<double> lower(model.var_count()), upper(model.var_count());
  for (std::size_t j = 0; j < model.var_count(); ++j) {
    lower[j] = model.var(static_cast<VarIndex>(j)).lower;
    upper[j] = model.var(static_cast<VarIndex>(j)).upper;
  }
  return solve_lp(model, lower, upper, opt);
}

LpResult solve_lp(const Model& model, const std::vector<double>& lower,
                  const std::vector<double>& upper, const LpOptions& opt) {
  PARTITA_ASSERT(lower.size() == model.var_count() && upper.size() == model.var_count());
  for (std::size_t j = 0; j < model.var_count(); ++j) {
    if (lower[j] > upper[j] + opt.eps) {
      LpResult res;
      res.status = LpStatus::kInfeasible;  // empty domain from branching
      return res;
    }
  }
  Tableau t(model, lower, upper, opt);
  return t.solve();
}

}  // namespace partita::ilp

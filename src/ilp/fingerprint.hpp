// Canonical instance fingerprinting for cross-request solution caching.
//
// fingerprint_model() hashes a Model's *mathematical content* into a 128-bit
// digest with two deliberate symmetry properties:
//
//   * Row-permutation and term-order INVARIANT: rows are hashed individually
//     (terms folded commutatively within a row, then sense + rhs mixed in)
//     and combined with a commutative reduction, so two models that list the
//     same constraints in a different order -- or the same row with its
//     terms shuffled -- fingerprint identically. Row and variable *names*
//     are excluded: they carry arbitrary enumeration indices.
//
//   * Column-order SENSITIVE: variables are folded in column order. This is
//     not an accident. The solver's canonical tie-breaking reports the
//     lexicographically smallest optimal vector, which is a function of the
//     variable order -- permuting columns can legitimately change which
//     optimal selection is "the" answer. A cache keyed by this fingerprint
//     therefore never serves an answer across a column permutation; such
//     instances miss the cache and re-solve, which is vacuously consistent.
//
// digest_options() folds every answer-affecting IlpOptions field into a
// 64-bit digest so a cache key changes whenever the solver contract does.
// Thread count and the resource budget's runtime plumbing (cancel token,
// clock) are excluded: the canonical optimum is thread-count independent,
// and tokens/clocks are per-request wiring, not semantics. Budget *limits*
// are included -- a tighter budget can truncate to a different rung.
#pragma once

#include <cstdint>
#include <string>

#include "ilp/branch_bound.hpp"
#include "ilp/model.hpp"

namespace partita::ilp {

/// 128-bit model digest; value-comparable and hex-printable for logs, cache
/// keys and bench records.
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const Fingerprint& o) const { return hi == o.hi && lo == o.lo; }
  bool operator!=(const Fingerprint& o) const { return !(*this == o); }
  bool operator<(const Fingerprint& o) const {
    return hi != o.hi ? hi < o.hi : lo < o.lo;
  }

  /// 32 lowercase hex chars, hi then lo.
  std::string hex() const;
};

/// 64-bit finalizer (splitmix64); exposed so callers can extend a key with
/// their own fields (tenant ids, selection flags) using the same mixer.
std::uint64_t fp_mix(std::uint64_t x);

/// Hashes a double by its bit pattern, normalizing -0.0 to 0.0 so
/// numerically equal models fingerprint equally.
std::uint64_t fp_double(double v);

/// Canonical structure fingerprint of the model (see file comment for the
/// invariance contract). Everything mathematical is covered: sense, variable
/// kinds/bounds/objectives in column order, and the full row set including
/// each row's sense and right-hand side.
Fingerprint fingerprint_model(const Model& m);

/// Digest of the answer-affecting solver options (see file comment for what
/// is deliberately excluded).
std::uint64_t digest_options(const IlpOptions& opt);

}  // namespace partita::ilp

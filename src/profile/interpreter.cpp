#include "profile/interpreter.hpp"

#include "support/assert.hpp"

namespace partita::profile {

namespace {

class Interp {
 public:
  Interp(const ir::Module& module, support::Rng& rng, SampleRun& out)
      : module_(module), rng_(rng), out_(out) {}

  void run_function(const ir::Function& fn) {
    if (fn.declared_sw_cycles()) {
      out_.cycles += *fn.declared_sw_cycles();
      return;
    }
    run_seq(fn, fn.body());
  }

 private:
  void run_seq(const ir::Function& fn, const std::vector<ir::StmtId>& seq) {
    for (ir::StmtId id : seq) run_stmt(fn, fn.stmt(id));
  }

  void run_stmt(const ir::Function& fn, const ir::Stmt& s) {
    switch (s.kind) {
      case ir::StmtKind::kSeg:
        out_.cycles += s.cycles;
        break;
      case ir::StmtKind::kCall:
        out_.call_site_executions[s.call_site.value()] += 1;
        run_function(module_.function(s.callee));
        break;
      case ir::StmtKind::kIf:
        if (rng_.chance(s.taken_prob)) run_seq(fn, s.then_stmts);
        else run_seq(fn, s.else_stmts);
        break;
      case ir::StmtKind::kLoop:
        for (std::int64_t i = 0; i < s.trip_count; ++i) run_seq(fn, s.body_stmts);
        break;
    }
  }

  const ir::Module& module_;
  support::Rng& rng_;
  SampleRun& out_;
};

}  // namespace

SampleRun sample_execute(const ir::Module& module, support::Rng& rng) {
  // invariant: modules are verified (entry present) before simulation.
  PARTITA_ASSERT(module.entry().valid());
  SampleRun out;
  out.call_site_executions.assign(module.call_sites().size(), 0);
  Interp(module, rng, out).run_function(module.function(module.entry()));
  return out;
}

SampleRun sample_execute_average(const ir::Module& module, support::Rng& rng,
                                 std::size_t runs) {
  // invariant: run counts are validated at the CLI boundary (--runs 1..100000).
  PARTITA_ASSERT(runs > 0);
  SampleRun acc;
  acc.call_site_executions.assign(module.call_sites().size(), 0);
  for (std::size_t r = 0; r < runs; ++r) {
    const SampleRun one = sample_execute(module, rng);
    acc.cycles += one.cycles;
    for (std::size_t i = 0; i < acc.call_site_executions.size(); ++i) {
      acc.call_site_executions[i] += one.call_site_executions[i];
    }
  }
  acc.cycles = (acc.cycles + static_cast<std::int64_t>(runs) / 2) /
               static_cast<std::int64_t>(runs);
  for (auto& c : acc.call_site_executions) {
    c = (c + static_cast<std::int64_t>(runs) / 2) / static_cast<std::int64_t>(runs);
  }
  return acc;
}

}  // namespace partita::profile

// Monte-Carlo sample executor.
//
// Plays the role of Partita's sample execution on typical input data: runs
// the statement IR end-to-end, resolving each conditional with its profile
// probability and a deterministic RNG, and counts cycles and call-site
// executions. Averaged over enough runs the counts converge to the analytic
// expected profile (property-tested in tests/profile_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "ir/function.hpp"
#include "support/rng.hpp"

namespace partita::profile {

/// Result of one (or several averaged) sample run(s).
struct SampleRun {
  std::int64_t cycles = 0;
  /// Executions of each call site, indexed by CallSiteId value.
  std::vector<std::int64_t> call_site_executions;
};

/// Executes the entry function once.
SampleRun sample_execute(const ir::Module& module, support::Rng& rng);

/// Executes `runs` times and returns per-run averages (cycles rounded).
SampleRun sample_execute_average(const ir::Module& module, support::Rng& rng,
                                 std::size_t runs);

}  // namespace partita::profile

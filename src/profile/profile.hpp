// Static (expected-value) profiling.
//
// Partita sample-executes the MOP list on typical input data to obtain the
// running-frequency profile. Our statement IR carries the distilled result of
// such a sample run -- loop trip counts and branch probabilities -- so the
// expected profile can be computed analytically; interpreter.hpp provides the
// matching Monte-Carlo sample executor used to cross-check it.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/function.hpp"

namespace partita::profile {

/// Expected-value profile of a module.
struct ModuleProfile {
  /// Expected software cycles of ONE invocation of each function (indexed by
  /// FuncId value), including everything it calls, with conditional arms
  /// weighted by probability and loop bodies by trip count. This is the
  /// paper's T_SW for the function when it becomes an s-call.
  std::vector<std::int64_t> function_cycles;

  /// Expected number of executions of each call site (indexed by CallSiteId
  /// value) in one run of the entry function.
  std::vector<double> call_site_frequency;

  /// Expected number of invocations of each function per run.
  std::vector<double> function_frequency;

  /// Expected software cycles of one whole run (entry invoked once).
  std::int64_t total_cycles = 0;

  std::int64_t cycles_of(ir::FuncId f) const { return function_cycles[f.value()]; }
  double frequency_of(ir::CallSiteId cs) const { return call_site_frequency[cs.value()]; }
};

/// Computes the expected profile. The module must verify cleanly (acyclic
/// call graph). Functions with a declared sw_cycles use the declaration;
/// otherwise the body is evaluated bottom-up.
ModuleProfile profile_module(const ir::Module& module);

}  // namespace partita::profile

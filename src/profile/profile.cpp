#include "profile/profile.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace partita::profile {

namespace {

/// Expected cycles of one execution of a statement sequence, given per-
/// function cycle numbers for callees.
std::int64_t seq_cycles(const ir::Function& fn, const std::vector<ir::StmtId>& seq,
                        const std::vector<std::int64_t>& func_cycles);

std::int64_t stmt_cycles(const ir::Function& fn, const ir::Stmt& s,
                         const std::vector<std::int64_t>& func_cycles) {
  switch (s.kind) {
    case ir::StmtKind::kSeg:
      return s.cycles;
    case ir::StmtKind::kCall:
      return func_cycles[s.callee.value()];
    case ir::StmtKind::kIf: {
      const double t = static_cast<double>(seq_cycles(fn, s.then_stmts, func_cycles));
      const double e = static_cast<double>(seq_cycles(fn, s.else_stmts, func_cycles));
      return static_cast<std::int64_t>(std::llround(s.taken_prob * t + (1 - s.taken_prob) * e));
    }
    case ir::StmtKind::kLoop:
      return s.trip_count * seq_cycles(fn, s.body_stmts, func_cycles);
  }
  return 0;
}

std::int64_t seq_cycles(const ir::Function& fn, const std::vector<ir::StmtId>& seq,
                        const std::vector<std::int64_t>& func_cycles) {
  std::int64_t total = 0;
  for (ir::StmtId id : seq) total += stmt_cycles(fn, fn.stmt(id), func_cycles);
  return total;
}

/// Accumulates call-site and function frequencies below one statement
/// sequence executed `mult` times per run.
void walk_frequencies(const ir::Module& module, const ir::Function& fn,
                      const std::vector<ir::StmtId>& seq, double mult,
                      ModuleProfile& out);

void visit_stmt(const ir::Module& module, const ir::Function& fn, const ir::Stmt& s,
                double mult, ModuleProfile& out) {
  switch (s.kind) {
    case ir::StmtKind::kSeg:
      break;
    case ir::StmtKind::kCall: {
      out.call_site_frequency[s.call_site.value()] += mult;
      out.function_frequency[s.callee.value()] += mult;
      const ir::Function& callee = module.function(s.callee);
      if (!callee.declared_sw_cycles()) {
        walk_frequencies(module, callee, callee.body(), mult, out);
      }
      break;
    }
    case ir::StmtKind::kIf:
      walk_frequencies(module, fn, s.then_stmts, mult * s.taken_prob, out);
      walk_frequencies(module, fn, s.else_stmts, mult * (1 - s.taken_prob), out);
      break;
    case ir::StmtKind::kLoop:
      walk_frequencies(module, fn, s.body_stmts, mult * static_cast<double>(s.trip_count),
                       out);
      break;
  }
}

void walk_frequencies(const ir::Module& module, const ir::Function& fn,
                      const std::vector<ir::StmtId>& seq, double mult,
                      ModuleProfile& out) {
  for (ir::StmtId id : seq) visit_stmt(module, fn, fn.stmt(id), mult, out);
}

}  // namespace

ModuleProfile profile_module(const ir::Module& module) {
  ModuleProfile out;
  out.function_cycles.assign(module.function_count(), 0);
  out.call_site_frequency.assign(module.call_sites().size(), 0.0);
  out.function_frequency.assign(module.function_count(), 0.0);

  // Bottom-up: callees have final numbers before callers are evaluated.
  for (ir::FuncId f : module.bottom_up_order()) {
    const ir::Function& fn = module.function(f);
    if (fn.declared_sw_cycles()) {
      out.function_cycles[f.value()] = *fn.declared_sw_cycles();
    } else {
      out.function_cycles[f.value()] = seq_cycles(fn, fn.body(), out.function_cycles);
    }
  }

  // invariant: callers run ir::verify_module (which rejects entry-less
  // modules with a diagnostic) before profiling.
  PARTITA_ASSERT(module.entry().valid());
  out.function_frequency[module.entry().value()] += 1.0;
  const ir::Function& entry = module.function(module.entry());
  walk_frequencies(module, entry, entry.body(), 1.0, out);
  out.total_cycles = out.function_cycles[module.entry().value()];
  return out;
}

}  // namespace partita::profile

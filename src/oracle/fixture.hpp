// JSON fixtures for selection instances.
//
// A fixture is the InstanceSpec of one (usually shrunk) failing instance,
// serialized to JSON so it can be checked into tests/fixtures/ and replayed
// byte-identically: `partita_fuzz --replay fixture.json` or
// `oracle::load_fixture` + `differential_check_spec`. Doubles are printed
// with enough digits (%.17g) to round-trip exactly.
#pragma once

#include <optional>
#include <string>

#include "workloads/random_workload.hpp"

namespace partita::oracle {

/// Serializes the spec to a stable, human-diffable JSON document.
std::string fixture_json(const workloads::InstanceSpec& spec);

/// Parses a fixture produced by fixture_json (or hand-written in the same
/// shape). Returns std::nullopt (with a one-line reason in *error when
/// non-null) on malformed input or a spec that fails spec_valid().
std::optional<workloads::InstanceSpec> parse_fixture(const std::string& json,
                                                     std::string* error = nullptr);

/// File convenience wrappers. write_fixture returns false on I/O failure.
bool write_fixture(const std::string& path, const workloads::InstanceSpec& spec);
std::optional<workloads::InstanceSpec> load_fixture(const std::string& path,
                                                    std::string* error = nullptr);

}  // namespace partita::oracle

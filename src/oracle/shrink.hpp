// Greedy delta-debugging shrinker for failing selection instances.
//
// Given a spec on which some predicate holds (typically "the differential
// check fails"), shrink_spec greedily removes structure while the predicate
// keeps holding: ddmin-style chunk removal over call sites, whole-IP
// removal, secondary IP-function removal, then per-site simplifications
// (loop_trip -> 1, depth -> 0, branch_group -> -1, pre_seg_cycles -> 0,
// serial -> true) and a final normalize pass dropping unused kernels. The
// result is a minimal-ish repro; dump it with oracle::write_fixture.
#pragma once

#include <cstdint>
#include <functional>

#include "workloads/random_workload.hpp"

namespace partita::oracle {

/// Returns true when the (valid) candidate spec still exhibits the failure.
/// The shrinker only ever calls it on specs passing spec_valid().
using FailurePredicate = std::function<bool(const workloads::InstanceSpec&)>;

struct ShrinkStats {
  int predicate_calls = 0;
  int accepted_steps = 0;
};

/// Shrinks `spec` (which must satisfy `failing`) to a smaller spec that
/// still satisfies it. Deterministic; terminates because every accepted step
/// strictly reduces a finite measure.
workloads::InstanceSpec shrink_spec(const workloads::InstanceSpec& spec,
                                    const FailurePredicate& failing,
                                    ShrinkStats* stats = nullptr);

}  // namespace partita::oracle

#include "oracle/differential.hpp"

#include <cmath>
#include <string>

#include "ilp/simplex.hpp"
#include "select/flow.hpp"

namespace partita::oracle {

namespace {

constexpr double kAreaTol = 1e-6;

isel::EnumerateOptions enumerate_options(const DiffOptions& opt) {
  isel::EnumerateOptions eo;
  eo.problem2 = opt.problem2;
  return eo;
}

select::SelectOptions select_options(const DiffOptions& opt) {
  select::SelectOptions so;
  so.problem2 = opt.problem2;
  so.ilp.threads = opt.threads;
  return so;
}

std::int64_t derive_rg(const select::Flow& flow, const select::SelectOptions& so,
                       std::int64_t pinned, double fraction) {
  if (pinned > 0) return pinned;
  const std::int64_t gmax = flow.max_feasible_gain(so);
  return static_cast<std::int64_t>(static_cast<double>(gmax) * fraction);
}

DiffResult run_differential(const workloads::Workload& wl, std::int64_t pinned_rg,
                            const DiffOptions& opt) {
  DiffResult r;
  const select::Flow flow(wl.module, wl.library, enumerate_options(opt));
  const select::SelectOptions so = select_options(opt);
  r.required_gain = derive_rg(flow, so, pinned_rg, opt.rg_fraction);

  const select::Selection sel = flow.select(r.required_gain, so);
  r.ilp_feasible = sel.feasible;
  r.ilp_area = sel.total_area();
  r.rung = select::to_string(sel.rung);

  OracleOptions oo;
  oo.problem2 = opt.problem2;
  oo.max_visited = opt.max_visited;
  const OracleResult oracle =
      exhaustive_select(flow.imp_database(), flow.library(), flow.entry_cdfg(),
                        flow.paths(), r.required_gain, oo);
  if (!oracle.exhausted) {
    r.skipped = true;
    r.detail = "oracle enumeration guard struck after " +
               std::to_string(oracle.visited) + " nodes";
    return r;
  }
  r.oracle_feasible = oracle.feasible;
  r.oracle_area = oracle.total_area;

  if (oracle.feasible != sel.feasible) {
    r.detail = std::string("feasibility mismatch: oracle=") +
               (oracle.feasible ? "feasible" : "infeasible") + " ilp=" +
               (sel.feasible ? "feasible" : "infeasible") + " rung=" + r.rung;
    return r;
  }
  if (!sel.feasible) {
    r.ok = true;  // both proved infeasible
    return r;
  }
  if (sel.rung != select::DegradationRung::kOptimal) {
    r.detail = "selector answered on degraded rung '" + r.rung +
               "' for an enumerable instance";
    return r;
  }
  const std::string audit =
      check_selection(flow.imp_database(), flow.entry_cdfg(), flow.paths(),
                      r.required_gain, sel.chosen, oo);
  if (!audit.empty()) {
    r.detail = "ILP selection failed the oracle audit: " + audit;
    return r;
  }
  if (std::fabs(r.ilp_area - r.oracle_area) > kAreaTol) {
    r.detail = "area mismatch: oracle=" + std::to_string(r.oracle_area) +
               " ilp=" + std::to_string(r.ilp_area) +
               " rg=" + std::to_string(r.required_gain);
    return r;
  }
  r.ok = true;
  return r;
}

}  // namespace

DiffResult differential_check(const workloads::Workload& wl, const DiffOptions& opt) {
  return run_differential(wl, 0, opt);
}

DiffResult differential_check_spec(const workloads::InstanceSpec& spec,
                                   const DiffOptions& opt) {
  if (!workloads::spec_valid(spec)) {
    DiffResult r;
    r.detail = "invalid instance spec";
    return r;
  }
  const workloads::Workload wl = workloads::spec_workload(spec);
  return run_differential(wl, spec.required_gain, opt);
}

SandwichResult sandwich_check(const workloads::Workload& wl, const DiffOptions& opt) {
  SandwichResult r;
  const select::Flow flow(wl.module, wl.library, enumerate_options(opt));
  const select::SelectOptions so = select_options(opt);
  r.required_gain = derive_rg(flow, so, 0, opt.rg_fraction);

  const select::Selection sel = flow.select(r.required_gain, so);
  r.feasible = sel.feasible;
  r.ilp_area = sel.total_area();

  const select::Selection greedy = flow.greedy(r.required_gain);
  r.greedy_feasible = greedy.feasible;
  r.greedy_area = greedy.total_area();

  if (!sel.feasible) {
    // Integer infeasibility cannot coexist with a feasible greedy point.
    if (greedy.feasible) {
      r.detail = "ILP reports infeasible but greedy found a feasible point (area " +
                 std::to_string(r.greedy_area) + ")";
      return r;
    }
    r.ok = true;
    return r;
  }

  OracleOptions oo;
  oo.problem2 = opt.problem2;
  const std::string audit =
      check_selection(flow.imp_database(), flow.entry_cdfg(), flow.paths(),
                      r.required_gain, sel.chosen, oo);
  if (!audit.empty()) {
    r.detail = "ILP selection failed the oracle audit: " + audit;
    return r;
  }

  const ilp::Model model = flow.selector().build_model(
      std::vector<std::int64_t>(flow.paths().size(), r.required_gain), so);
  const ilp::LpResult lp = ilp::solve_lp(model);
  if (lp.status == ilp::LpStatus::kOptimal) {
    r.lp_bound = lp.objective;
    if (r.lp_bound > r.ilp_area + kAreaTol) {
      r.detail = "LP lower bound " + std::to_string(r.lp_bound) +
                 " exceeds ILP area " + std::to_string(r.ilp_area);
      return r;
    }
  }
  if (greedy.feasible && r.ilp_area > r.greedy_area + kAreaTol) {
    r.detail = "ILP area " + std::to_string(r.ilp_area) +
               " exceeds greedy upper bound " + std::to_string(r.greedy_area);
    return r;
  }
  r.ok = true;
  return r;
}

}  // namespace partita::oracle

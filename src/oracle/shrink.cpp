#include "oracle/shrink.hpp"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

namespace partita::oracle {

namespace {

using workloads::InstanceSpec;

/// Re-establishes the branch-group invariant after edits: a group that lost
/// an arm is dissolved (its surviving members become unconditional sites).
void repair(InstanceSpec& spec) {
  std::map<int, std::pair<int, int>> arms;  // group -> (#then, #else)
  for (const workloads::SpecCallSite& s : spec.sites) {
    if (s.branch_group < 0) continue;
    auto& a = arms[s.branch_group];
    (s.then_arm ? a.first : a.second)++;
  }
  for (workloads::SpecCallSite& s : spec.sites) {
    if (s.branch_group < 0) continue;
    const auto& a = arms[s.branch_group];
    if (a.first == 0 || a.second == 0) s.branch_group = -1;
  }
}

struct Shrinker {
  const FailurePredicate& failing;
  ShrinkStats& stats;
  InstanceSpec cur;

  bool try_accept(InstanceSpec cand) {
    repair(cand);
    if (!workloads::spec_valid(cand)) return false;
    ++stats.predicate_calls;
    if (!failing(cand)) return false;
    cur = std::move(cand);
    ++stats.accepted_steps;
    return true;
  }

  /// ddmin-style chunked site removal, chunk size halving down to 1.
  bool remove_sites() {
    bool any = false;
    std::size_t chunk = std::max<std::size_t>(1, cur.sites.size() / 2);
    while (true) {
      std::size_t start = 0;
      while (start < cur.sites.size() && cur.sites.size() > 1) {
        InstanceSpec cand = cur;
        const std::size_t end = std::min(cand.sites.size(), start + chunk);
        cand.sites.erase(cand.sites.begin() + static_cast<std::ptrdiff_t>(start),
                         cand.sites.begin() + static_cast<std::ptrdiff_t>(end));
        if (!cand.sites.empty() && try_accept(std::move(cand))) {
          any = true;  // same start now names the next chunk
        } else {
          start = end;
        }
      }
      if (chunk == 1) break;
      chunk = std::max<std::size_t>(1, chunk / 2);
    }
    return any;
  }

  bool remove_ips() {
    bool any = false;
    for (std::size_t i = cur.ips.size(); i-- > 0;) {
      if (cur.ips.size() <= 1) break;
      InstanceSpec cand = cur;
      cand.ips.erase(cand.ips.begin() + static_cast<std::ptrdiff_t>(i));
      if (try_accept(std::move(cand))) any = true;
    }
    return any;
  }

  bool remove_ip_functions() {
    bool any = false;
    for (std::size_t i = 0; i < cur.ips.size(); ++i) {
      for (std::size_t f = cur.ips[i].functions.size(); f-- > 0;) {
        if (cur.ips[i].functions.size() <= 1) break;
        InstanceSpec cand = cur;
        cand.ips[i].functions.erase(cand.ips[i].functions.begin() +
                                    static_cast<std::ptrdiff_t>(f));
        if (try_accept(std::move(cand))) any = true;
      }
    }
    return any;
  }

  bool simplify_sites() {
    bool any = false;
    for (std::size_t i = 0; i < cur.sites.size(); ++i) {
      const auto attempt = [&](auto&& edit) {
        InstanceSpec cand = cur;
        edit(cand.sites[i]);
        if (try_accept(std::move(cand))) any = true;
      };
      if (cur.sites[i].loop_trip > 1)
        attempt([](workloads::SpecCallSite& s) { s.loop_trip = 1; });
      if (cur.sites[i].depth > 0)
        attempt([](workloads::SpecCallSite& s) { s.depth = 0; });
      if (cur.sites[i].branch_group >= 0)
        attempt([](workloads::SpecCallSite& s) { s.branch_group = -1; });
      if (cur.sites[i].pre_seg_cycles > 0)
        attempt([](workloads::SpecCallSite& s) { s.pre_seg_cycles = 0; });
      if (!cur.sites[i].serial)
        attempt([](workloads::SpecCallSite& s) { s.serial = true; });
    }
    return any;
  }

  /// Drops kernels no site reaches (remapping indices) and IP functions that
  /// pointed at them; IPs left without functions disappear.
  bool normalize_kernels() {
    std::vector<bool> used(cur.kernel_cycles.size(), false);
    for (const workloads::SpecCallSite& s : cur.sites) {
      if (s.kernel >= 0 && static_cast<std::size_t>(s.kernel) < used.size()) {
        used[static_cast<std::size_t>(s.kernel)] = true;
      }
    }
    if (std::all_of(used.begin(), used.end(), [](bool u) { return u; })) return false;

    std::vector<int> remap(cur.kernel_cycles.size(), -1);
    InstanceSpec cand = cur;
    cand.kernel_cycles.clear();
    for (std::size_t k = 0; k < used.size(); ++k) {
      if (!used[k]) continue;
      remap[k] = static_cast<int>(cand.kernel_cycles.size());
      cand.kernel_cycles.push_back(cur.kernel_cycles[k]);
    }
    for (workloads::SpecCallSite& s : cand.sites) s.kernel = remap[static_cast<std::size_t>(s.kernel)];
    for (workloads::SpecIp& ip : cand.ips) {
      std::vector<workloads::SpecIpFunction> kept;
      for (workloads::SpecIpFunction f : ip.functions) {
        if (f.kernel < 0 || static_cast<std::size_t>(f.kernel) >= remap.size()) continue;
        if (remap[static_cast<std::size_t>(f.kernel)] < 0) continue;
        f.kernel = remap[static_cast<std::size_t>(f.kernel)];
        kept.push_back(f);
      }
      ip.functions = std::move(kept);
    }
    cand.ips.erase(std::remove_if(cand.ips.begin(), cand.ips.end(),
                                  [](const workloads::SpecIp& ip) {
                                    return ip.functions.empty();
                                  }),
                   cand.ips.end());
    return try_accept(std::move(cand));
  }
};

}  // namespace

InstanceSpec shrink_spec(const InstanceSpec& spec, const FailurePredicate& failing,
                         ShrinkStats* stats) {
  ShrinkStats local;
  Shrinker shrinker{failing, stats ? *stats : local, spec};
  bool progress = true;
  while (progress) {
    progress = false;
    progress |= shrinker.remove_sites();
    progress |= shrinker.remove_ips();
    progress |= shrinker.remove_ip_functions();
    progress |= shrinker.simplify_sites();
    progress |= shrinker.normalize_kernels();
  }
  shrinker.cur.name = spec.name + "_shrunk";
  return shrinker.cur;
}

}  // namespace partita::oracle

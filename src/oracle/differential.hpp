// Differential harness: exhaustive oracle vs. the ILP selection pipeline.
//
// For instances small enough to enumerate, the oracle's optimal area and the
// selector's `optimal`-rung area must agree *exactly* (within floating-point
// tolerance); the selector's chosen assignment must additionally pass the
// oracle's independent feasibility audit. For larger instances the harness
// falls back to a sandwich check: LP-relaxation objective <= ILP area <=
// greedy area.
#pragma once

#include <cstdint>
#include <string>

#include "oracle/exhaustive.hpp"
#include "workloads/random_workload.hpp"
#include "workloads/workloads.hpp"

namespace partita::oracle {

struct DiffOptions {
  bool problem2 = true;
  /// Required gain as a fraction of the instance's max feasible gain, used
  /// when the spec does not pin one (required_gain == 0). A mid fraction
  /// keeps the constraint binding without forcing infeasibility.
  double rg_fraction = 0.6;
  std::uint64_t max_visited = 50'000'000;
  int threads = 1;
};

struct DiffResult {
  /// Oracle and ILP agree (both infeasible, or equal areas + audited ILP
  /// assignment). False means a real divergence, described in `detail`.
  bool ok = false;
  /// The oracle hit its enumeration guard; no verdict (ok stays false but
  /// the instance should be skipped, not reported).
  bool skipped = false;
  std::int64_t required_gain = 0;
  bool oracle_feasible = false;
  bool ilp_feasible = false;
  double oracle_area = 0.0;
  double ilp_area = 0.0;
  /// The selector's degradation rung name ("optimal" expected here).
  std::string rung;
  std::string detail;
};

/// Exact differential check of one workload. The verdict only applies when
/// the selector answers on the `optimal` rung -- degraded answers are
/// reported as failures (tests pick instances small enough not to degrade).
DiffResult differential_check(const workloads::Workload& wl, const DiffOptions& opt = {});

/// Renders the spec and runs differential_check; the spec's required_gain
/// (when non-zero) overrides the rg_fraction derivation.
DiffResult differential_check_spec(const workloads::InstanceSpec& spec,
                                   const DiffOptions& opt = {});

struct SandwichResult {
  bool ok = false;
  std::int64_t required_gain = 0;
  bool feasible = false;
  double lp_bound = 0.0;     // LP-relaxation objective (lower bound)
  double ilp_area = 0.0;
  double greedy_area = 0.0;  // feasible upper bound (when greedy succeeds)
  bool greedy_feasible = false;
  std::string detail;
};

/// Bound-sandwich check for instances too large to enumerate:
/// lp_bound - tol <= ilp_area, and ilp_area <= greedy_area + tol when the
/// greedy baseline finds a feasible point. The ILP answer must also pass the
/// oracle's independent feasibility audit.
SandwichResult sandwich_check(const workloads::Workload& wl, const DiffOptions& opt = {});

}  // namespace partita::oracle

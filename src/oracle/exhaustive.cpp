#include "oracle/exhaustive.hpp"

#include <algorithm>
#include <map>

#include "support/assert.hpp"

namespace partita::oracle {

namespace {

/// (IP, interface) signature for the Problem 1 "same function => same
/// implementation" coupling. Re-derived here on purpose; the oracle must not
/// borrow the selector's notion of "the same way".
using Signature = std::pair<std::uint32_t, int>;

Signature signature_of(const isel::Imp& imp) {
  return {imp.ip.value, static_cast<int>(imp.iface_type)};
}

struct Search {
  const isel::ImpDatabase& db;
  const iplib::IpLibrary& lib;
  const std::vector<cdfg::ExecPath>& paths;
  const OracleOptions& opt;
  std::int64_t rg = 0;

  // One slot per s-call, in ascending site order.
  std::vector<const isel::SCall*> scalls;
  std::vector<std::vector<isel::ImpIndex>> options;  // candidate IMPs per slot
  // contrib[j] holds the per-path gain of IMP j (gain_per_exec * loop freq on
  // paths containing the s-call's node, 0 elsewhere).
  std::vector<std::vector<std::int64_t>> contrib;
  // suffix_best[i][p]: largest gain slots i..end can still add to path p.
  std::vector<std::vector<std::int64_t>> suffix_best;

  // DFS state.
  std::vector<std::int64_t> gains;        // per path
  std::vector<int> ip_refs;               // per IP id: selected IMPs using it
  std::vector<int> implemented;           // per site id: 1 when in hardware
  std::vector<int> consumed;              // per site id: #picked IMPs consuming it
  std::map<std::uint32_t, std::optional<Signature>> p1_committed;  // per callee
  std::vector<isel::ImpIndex> current;
  double area = 0.0;

  OracleResult best;
  std::uint64_t visited = 0;
  bool exhausted = true;

  explicit Search(const isel::ImpDatabase& db_in, const iplib::IpLibrary& lib_in,
                  const cdfg::Cdfg& entry_cdfg,
                  const std::vector<cdfg::ExecPath>& paths_in,
                  std::int64_t required_gain, const OracleOptions& opt_in)
      : db(db_in), lib(lib_in), paths(paths_in), opt(opt_in), rg(required_gain) {
    for (const isel::SCall& sc : db.scalls()) scalls.push_back(&sc);
    std::sort(scalls.begin(), scalls.end(),
              [](const isel::SCall* a, const isel::SCall* b) { return a->site < b->site; });

    std::uint32_t max_site = 0, max_ip = 0;
    contrib.resize(db.imps().size());
    for (const isel::Imp& imp : db.imps()) {
      max_site = std::max(max_site, imp.scall.value());
      max_ip = std::max(max_ip, imp.ip.value);
      for (ir::CallSiteId c : imp.pc_consumed_scalls) {
        max_site = std::max(max_site, c.value());
      }
      std::vector<std::int64_t>& row = contrib[imp.index];
      row.assign(paths.size(), 0);
      const isel::SCall* sc = db.scall_of(imp.scall);
      if (sc && sc->node != cdfg::kInvalidNode) {
        for (std::size_t p = 0; p < paths.size(); ++p) {
          if (paths[p].contains(sc->node)) {
            row[p] = imp.gain_per_exec * entry_cdfg.node(sc->node).loop_frequency;
          }
        }
      }
    }
    for (const isel::SCall* sc : scalls) max_site = std::max(max_site, sc->site.value());

    options.resize(scalls.size());
    for (std::size_t i = 0; i < scalls.size(); ++i) {
      for (isel::ImpIndex j : db.imps_for(scalls[i]->site)) {
        // Problem 1 forbids parallel code that absorbs s-call software.
        if (!opt.problem2 && db.imps()[j].pc_use == isel::PcUse::kWithScallSw) continue;
        options[i].push_back(j);
      }
    }

    suffix_best.assign(scalls.size() + 1, std::vector<std::int64_t>(paths.size(), 0));
    for (std::size_t i = scalls.size(); i-- > 0;) {
      for (std::size_t p = 0; p < paths.size(); ++p) {
        std::int64_t here = 0;  // "none" contributes nothing
        for (isel::ImpIndex j : options[i]) here = std::max(here, contrib[j][p]);
        suffix_best[i][p] = suffix_best[i + 1][p] + here;
      }
    }

    gains.assign(paths.size(), 0);
    ip_refs.assign(max_ip + 1, 0);
    implemented.assign(max_site + 1, 0);
    consumed.assign(max_site + 1, 0);
  }

  bool p1_allows(const isel::SCall& sc, const isel::Imp* imp) {
    if (opt.problem2) return true;
    auto it = p1_committed.find(sc.callee.value());
    if (it == p1_committed.end()) return true;  // first site of this callee
    const std::optional<Signature>& committed = it->second;
    if (!imp) return !committed.has_value();
    return committed.has_value() && *committed == signature_of(*imp);
  }

  void dfs(std::size_t i) {
    if (!exhausted) return;
    if (++visited > opt.max_visited) {
      exhausted = false;
      return;
    }

    // Partial-area bound: areas only grow along a branch.
    if (best.feasible && area > best.total_area - 1e-9) return;
    // Remaining-gain bound: even selecting the best IMP of every remaining
    // s-call cannot rescue a path that is already short.
    for (std::size_t p = 0; p < paths.size(); ++p) {
      if (gains[p] + suffix_best[i][p] < rg) return;
    }

    if (i == scalls.size()) {
      record();
      return;
    }

    const isel::SCall& sc = *scalls[i];
    const bool site_consumed = consumed[sc.site.value()] > 0;

    // Option "none": the s-call stays in software.
    if (p1_allows(sc, nullptr)) {
      const bool fresh = !opt.problem2 ? set_p1(sc, std::nullopt) : false;
      dfs(i + 1);
      if (fresh) p1_committed.erase(sc.callee.value());
    }

    if (site_consumed) return;  // an earlier pick absorbed this s-call's software

    for (isel::ImpIndex j : options[i]) {
      const isel::Imp& imp = db.imps()[j];
      if (!p1_allows(sc, &imp)) continue;
      // SC-PC: the parallel code may only consume s-calls that stay in
      // software (in either direction of the assignment order).
      bool conflict = false;
      for (ir::CallSiteId c : imp.pc_consumed_scalls) {
        if (implemented[c.value()]) conflict = true;
      }
      if (conflict) continue;

      const bool fresh = !opt.problem2 ? set_p1(sc, signature_of(imp)) : false;
      area += imp.interface_area;
      if (ip_refs[imp.ip.value]++ == 0) area += lib.ip(imp.ip).area;
      implemented[sc.site.value()] = 1;
      for (ir::CallSiteId c : imp.pc_consumed_scalls) ++consumed[c.value()];
      for (std::size_t p = 0; p < paths.size(); ++p) gains[p] += contrib[j][p];
      current.push_back(j);

      dfs(i + 1);

      current.pop_back();
      for (std::size_t p = 0; p < paths.size(); ++p) gains[p] -= contrib[j][p];
      for (ir::CallSiteId c : imp.pc_consumed_scalls) --consumed[c.value()];
      implemented[sc.site.value()] = 0;
      if (--ip_refs[imp.ip.value] == 0) area -= lib.ip(imp.ip).area;
      area -= imp.interface_area;
      if (fresh) p1_committed.erase(sc.callee.value());
    }
  }

  /// Commits the callee's Problem 1 signature; true when this call created
  /// the entry (and the caller must erase it on backtrack).
  bool set_p1(const isel::SCall& sc, std::optional<Signature> sig) {
    auto [it, inserted] = p1_committed.emplace(sc.callee.value(), sig);
    (void)it;
    return inserted;
  }

  void record() {
    for (std::size_t p = 0; p < paths.size(); ++p) {
      if (gains[p] < rg) return;  // invariant: the suffix bound should have cut this
    }
    if (best.feasible && area > best.total_area - 1e-9) return;
    best.feasible = true;
    best.chosen = current;
    best.total_area = 0.0;
    best.ip_area = 0.0;
    best.interface_area = 0.0;
    std::vector<std::uint32_t> ips;
    for (isel::ImpIndex j : current) {
      const isel::Imp& imp = db.imps()[j];
      best.interface_area += imp.interface_area;
      if (std::find(ips.begin(), ips.end(), imp.ip.value) == ips.end()) {
        ips.push_back(imp.ip.value);
        best.ip_area += lib.ip(imp.ip).area;
      }
    }
    best.total_area = best.ip_area + best.interface_area;
    best.min_path_gain =
        paths.empty() ? 0 : *std::min_element(gains.begin(), gains.end());
  }
};

}  // namespace

OracleResult exhaustive_select(const isel::ImpDatabase& db, const iplib::IpLibrary& lib,
                               const cdfg::Cdfg& entry_cdfg,
                               const std::vector<cdfg::ExecPath>& paths,
                               std::int64_t required_gain, const OracleOptions& opt) {
  Search search(db, lib, entry_cdfg, paths, required_gain, opt);
  search.dfs(0);
  OracleResult result = std::move(search.best);
  result.visited = search.visited;
  result.exhausted = search.exhausted;
  if (!search.exhausted) result.feasible = false;  // unusable as a reference
  std::sort(result.chosen.begin(), result.chosen.end(),
            [&](isel::ImpIndex a, isel::ImpIndex b) {
              return db.imps()[a].scall < db.imps()[b].scall;
            });
  return result;
}

std::string check_selection(const isel::ImpDatabase& db,
                            const cdfg::Cdfg& entry_cdfg,
                            const std::vector<cdfg::ExecPath>& paths,
                            std::int64_t required_gain,
                            const std::vector<isel::ImpIndex>& chosen,
                            const OracleOptions& opt) {
  std::map<std::uint32_t, const isel::Imp*> by_site;
  for (isel::ImpIndex j : chosen) {
    if (j >= db.imps().size()) return "IMP index out of range";
    const isel::Imp& imp = db.imps()[j];
    if (!by_site.emplace(imp.scall.value(), &imp).second) {
      return "Eq. 1 violated: two IMPs for SC" + std::to_string(imp.scall.value());
    }
  }
  for (const auto& [site, imp] : by_site) {
    for (ir::CallSiteId c : imp->pc_consumed_scalls) {
      if (by_site.count(c.value())) {
        return "SC-PC violated: SC" + std::to_string(site) +
               "'s parallel code consumes hardware-implemented SC" +
               std::to_string(c.value());
      }
    }
  }
  if (!opt.problem2) {
    std::map<std::uint32_t, std::optional<Signature>> sig_of_callee;
    for (const isel::SCall& sc : db.scalls()) {
      auto it = by_site.find(sc.site.value());
      const std::optional<Signature> sig =
          it == by_site.end() ? std::nullopt
                              : std::optional<Signature>(signature_of(*it->second));
      auto [slot, inserted] = sig_of_callee.emplace(sc.callee.value(), sig);
      if (!inserted && slot->second != sig) {
        return "Problem 1 coupling violated for callee " + sc.callee_name;
      }
      if (it != by_site.end() && it->second->pc_use == isel::PcUse::kWithScallSw) {
        return "Problem 1 forbids parallel code with s-call software (SC" +
               std::to_string(sc.site.value()) + ")";
      }
    }
  }
  for (std::size_t p = 0; p < paths.size(); ++p) {
    std::int64_t gain = 0;
    for (const auto& [site, imp] : by_site) {
      const isel::SCall* sc = db.scall_of(imp->scall);
      if (!sc || sc->node == cdfg::kInvalidNode || !paths[p].contains(sc->node)) continue;
      gain += imp->gain_per_exec * entry_cdfg.node(sc->node).loop_frequency;
    }
    if (gain < required_gain) {
      return "Eq. 2 violated: path " + std::to_string(p) + " achieves " +
             std::to_string(gain) + " < " + std::to_string(required_gain);
    }
  }
  return "";
}

}  // namespace partita::oracle

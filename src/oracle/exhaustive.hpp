// Independent exhaustive reference solver for the S-instruction selection
// problem.
//
// Direct enumeration over IMP assignments: every s-call independently picks
// one of its IMPs or stays in software, subject to the paper's constraint
// system -- Eq. 1 (at most one IMP per s-call) by construction, Eq. 2
// (per-path required gain, loop frequencies applied), SC-PC conflict
// filtering (a selected IMP whose parallel code consumes another s-call's
// software body excludes every IMP of that s-call), the Problem 1 coupling
// (same function => same IP/interface) when requested, and Eq. 3 shared-area
// accounting (each distinct IP's area counted exactly once, interface areas
// summed per selected IMP).
//
// This solver deliberately shares NO code with src/ilp/ or src/select/: it
// re-derives feasibility and cost straight from the IMP database so it can
// serve as a differential oracle for the ILP selection pipeline. The only
// concessions to tractability are two safe prunes (a partial-area bound and
// a remaining-gain bound, neither of which can cut off an optimal
// completion) and a visited-node guard that reports `exhausted = false`
// instead of answering when an instance is too large.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cdfg/paths.hpp"
#include "iplib/library.hpp"
#include "isel/enumerate.hpp"

namespace partita::oracle {

struct OracleOptions {
  /// Problem 2 (default): SC-PC conflicts are enforced. Problem 1: IMPs
  /// whose parallel code absorbs s-call software are excluded and s-calls of
  /// the same function must pick the same (IP, interface) signature.
  bool problem2 = true;
  /// Enumeration guard: give up (exhausted = false) after this many visited
  /// partial assignments.
  std::uint64_t max_visited = 50'000'000;
};

struct OracleResult {
  bool feasible = false;
  /// False when the max_visited guard struck before the search space was
  /// covered; the result is then unusable as a reference.
  bool exhausted = true;
  std::uint64_t visited = 0;

  /// Optimal assignment: IMP indices, one per implemented s-call, sorted by
  /// s-call site id. Ties are broken towards the first assignment found in
  /// s-call-site/IMP-index order (NOT necessarily the ILP's canonical
  /// tie-break -- compare areas, not vectors).
  std::vector<isel::ImpIndex> chosen;
  double total_area = 0.0;
  double ip_area = 0.0;
  double interface_area = 0.0;
  std::int64_t min_path_gain = 0;
};

/// Exhaustively minimizes Eq. 3 subject to Eqs. 1-2 and the selection rules,
/// with the same uniform required gain on every execution path.
OracleResult exhaustive_select(const isel::ImpDatabase& db, const iplib::IpLibrary& lib,
                               const cdfg::Cdfg& entry_cdfg,
                               const std::vector<cdfg::ExecPath>& paths,
                               std::int64_t required_gain,
                               const OracleOptions& opt = {});

/// Independent validity check of an arbitrary assignment against the same
/// constraint system. Returns an empty string when `chosen` is feasible for
/// `required_gain`, else a one-line description of the first violation.
/// Used by the differential harness to audit the ILP's decoded selections.
std::string check_selection(const isel::ImpDatabase& db,
                            const cdfg::Cdfg& entry_cdfg,
                            const std::vector<cdfg::ExecPath>& paths,
                            std::int64_t required_gain,
                            const std::vector<isel::ImpIndex>& chosen,
                            const OracleOptions& opt = {});

}  // namespace partita::oracle

#include "oracle/fixture.hpp"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "support/json.hpp"

namespace partita::oracle {

namespace {

using support::json::bool_or;
using support::json::int_or;
using support::json::num_or;
using support::json::string_or;
using support::json::fmt_double;

// --- writer ----------------------------------------------------------------

void append_site(std::ostringstream& os, const workloads::SpecCallSite& s,
                 const char* indent) {
  os << indent << "{\"kernel\": " << s.kernel << ", \"depth\": " << s.depth
     << ", \"loop_trip\": " << s.loop_trip << ", \"branch_group\": " << s.branch_group
     << ", \"then_arm\": " << (s.then_arm ? "true" : "false")
     << ", \"taken_prob\": " << fmt_double(s.taken_prob)
     << ", \"serial\": " << (s.serial ? "true" : "false")
     << ", \"pre_seg_cycles\": " << s.pre_seg_cycles << "}";
}

void append_ip(std::ostringstream& os, const workloads::SpecIp& ip, const char* indent) {
  os << indent << "{\"area\": " << fmt_double(ip.area)
     << ", \"in_ports\": " << ip.in_ports << ", \"out_ports\": " << ip.out_ports
     << ", \"in_rate\": " << ip.in_rate << ", \"out_rate\": " << ip.out_rate
     << ", \"latency\": " << ip.latency
     << ", \"pipelined\": " << (ip.pipelined ? "true" : "false")
     << ", \"protocol\": " << ip.protocol << ",\n"
     << indent << " \"functions\": [";
  for (std::size_t i = 0; i < ip.functions.size(); ++i) {
    const workloads::SpecIpFunction& f = ip.functions[i];
    if (i) os << ", ";
    os << "{\"kernel\": " << f.kernel << ", \"cycles\": " << f.cycles
       << ", \"n_in\": " << f.n_in << ", \"n_out\": " << f.n_out << "}";
  }
  os << "]}";
}

}  // namespace

std::string fixture_json(const workloads::InstanceSpec& spec) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"format\": \"partita-oracle-fixture-v1\",\n";
  os << "  \"name\": \"" << spec.name << "\",\n";
  os << "  \"required_gain\": " << spec.required_gain << ",\n";
  os << "  \"kernel_cycles\": [";
  for (std::size_t i = 0; i < spec.kernel_cycles.size(); ++i) {
    if (i) os << ", ";
    os << spec.kernel_cycles[i];
  }
  os << "],\n";
  os << "  \"sites\": [\n";
  for (std::size_t i = 0; i < spec.sites.size(); ++i) {
    append_site(os, spec.sites[i], "    ");
    os << (i + 1 < spec.sites.size() ? ",\n" : "\n");
  }
  os << "  ],\n";
  os << "  \"ips\": [\n";
  for (std::size_t i = 0; i < spec.ips.size(); ++i) {
    append_ip(os, spec.ips[i], "    ");
    os << (i + 1 < spec.ips.size() ? ",\n" : "\n");
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

std::optional<workloads::InstanceSpec> parse_fixture(const std::string& json,
                                                     std::string* error) {
  std::optional<support::json::Value> root = support::json::parse(json, error);
  if (!root) return std::nullopt;
  if (!root->is_object()) {
    if (error) *error = "fixture root is not an object";
    return std::nullopt;
  }
  const support::json::Object& o = root->object();

  workloads::InstanceSpec spec;
  spec.name = string_or(o, "name", "fixture");
  spec.required_gain = int_or(o, "required_gain", 0);

  auto kc = o.find("kernel_cycles");
  if (kc != o.end() && kc->second.is_array()) {
    for (const support::json::Value& v : kc->second.array()) {
      if (v.is_number()) {
        spec.kernel_cycles.push_back(static_cast<std::int64_t>(v.number()));
      }
    }
  }
  auto sites = o.find("sites");
  if (sites != o.end() && sites->second.is_array()) {
    for (const support::json::Value& v : sites->second.array()) {
      if (!v.is_object()) continue;
      const support::json::Object& so = v.object();
      workloads::SpecCallSite s;
      s.kernel = static_cast<int>(int_or(so, "kernel", 0));
      s.depth = static_cast<int>(int_or(so, "depth", 0));
      s.loop_trip = static_cast<int>(int_or(so, "loop_trip", 1));
      s.branch_group = static_cast<int>(int_or(so, "branch_group", -1));
      s.then_arm = bool_or(so, "then_arm", true);
      s.taken_prob = num_or(so, "taken_prob", 0.5);
      s.serial = bool_or(so, "serial", true);
      s.pre_seg_cycles = int_or(so, "pre_seg_cycles", 0);
      spec.sites.push_back(s);
    }
  }
  auto ips = o.find("ips");
  if (ips != o.end() && ips->second.is_array()) {
    for (const support::json::Value& v : ips->second.array()) {
      if (!v.is_object()) continue;
      const support::json::Object& io = v.object();
      workloads::SpecIp ip;
      ip.area = num_or(io, "area", 1.0);
      ip.in_ports = static_cast<int>(int_or(io, "in_ports", 2));
      ip.out_ports = static_cast<int>(int_or(io, "out_ports", 2));
      ip.in_rate = static_cast<int>(int_or(io, "in_rate", 4));
      ip.out_rate = static_cast<int>(int_or(io, "out_rate", 4));
      ip.latency = static_cast<int>(int_or(io, "latency", 4));
      ip.pipelined = bool_or(io, "pipelined", true);
      ip.protocol = static_cast<int>(int_or(io, "protocol", 0));
      auto fns = io.find("functions");
      if (fns != io.end() && fns->second.is_array()) {
        for (const support::json::Value& fv : fns->second.array()) {
          if (!fv.is_object()) continue;
          const support::json::Object& fo = fv.object();
          workloads::SpecIpFunction f;
          f.kernel = static_cast<int>(int_or(fo, "kernel", 0));
          f.cycles = int_or(fo, "cycles", 100);
          f.n_in = int_or(fo, "n_in", 8);
          f.n_out = int_or(fo, "n_out", 8);
          ip.functions.push_back(f);
        }
      }
      spec.ips.push_back(ip);
    }
  }

  if (!workloads::spec_valid(spec)) {
    if (error) *error = "parsed spec fails spec_valid()";
    return std::nullopt;
  }
  return spec;
}

bool write_fixture(const std::string& path, const workloads::InstanceSpec& spec) {
  std::ofstream out(path);
  if (!out) return false;
  out << fixture_json(spec);
  return static_cast<bool>(out);
}

std::optional<workloads::InstanceSpec> load_fixture(const std::string& path,
                                                    std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_fixture(buf.str(), error);
}

}  // namespace partita::oracle

#include "oracle/fixture.hpp"

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <variant>
#include <vector>

namespace partita::oracle {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

// --- writer ----------------------------------------------------------------

void append_site(std::ostringstream& os, const workloads::SpecCallSite& s,
                 const char* indent) {
  os << indent << "{\"kernel\": " << s.kernel << ", \"depth\": " << s.depth
     << ", \"loop_trip\": " << s.loop_trip << ", \"branch_group\": " << s.branch_group
     << ", \"then_arm\": " << (s.then_arm ? "true" : "false")
     << ", \"taken_prob\": " << fmt_double(s.taken_prob)
     << ", \"serial\": " << (s.serial ? "true" : "false")
     << ", \"pre_seg_cycles\": " << s.pre_seg_cycles << "}";
}

void append_ip(std::ostringstream& os, const workloads::SpecIp& ip, const char* indent) {
  os << indent << "{\"area\": " << fmt_double(ip.area)
     << ", \"in_ports\": " << ip.in_ports << ", \"out_ports\": " << ip.out_ports
     << ", \"in_rate\": " << ip.in_rate << ", \"out_rate\": " << ip.out_rate
     << ", \"latency\": " << ip.latency
     << ", \"pipelined\": " << (ip.pipelined ? "true" : "false")
     << ", \"protocol\": " << ip.protocol << ",\n"
     << indent << " \"functions\": [";
  for (std::size_t i = 0; i < ip.functions.size(); ++i) {
    const workloads::SpecIpFunction& f = ip.functions[i];
    if (i) os << ", ";
    os << "{\"kernel\": " << f.kernel << ", \"cycles\": " << f.cycles
       << ", \"n_in\": " << f.n_in << ", \"n_out\": " << f.n_out << "}";
  }
  os << "]}";
}

// --- minimal JSON reader ---------------------------------------------------
//
// Recursive-descent parser for the subset fixtures use: objects, arrays,
// strings (no escapes beyond \" \\ \/ \n \t), numbers, true/false/null.

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v = nullptr;

  bool is_object() const { return std::holds_alternative<std::shared_ptr<JsonObject>>(v); }
  bool is_array() const { return std::holds_alternative<std::shared_ptr<JsonArray>>(v); }
  const JsonObject& object() const { return *std::get<std::shared_ptr<JsonObject>>(v); }
  const JsonArray& array() const { return *std::get<std::shared_ptr<JsonArray>>(v); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    std::optional<JsonValue> v = value();
    skip_ws();
    if (v && pos_ != s_.size()) {
      fail("trailing characters");
      v.reset();
    }
    if (!v && error) *error = error_;
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  bool fail(const std::string& why) {
    if (error_.empty()) error_ = why + " at offset " + std::to_string(pos_);
    return false;
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }
  bool literal(const char* word) {
    for (const char* p = word; *p; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return fail("bad literal");
    }
    return true;
  }

  std::optional<JsonValue> value() {
    skip_ws();
    if (pos_ >= s_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = s_[pos_];
    JsonValue out;
    switch (c) {
      case '{': {
        auto obj = std::make_shared<JsonObject>();
        ++pos_;
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == '}') {
          ++pos_;
        } else {
          while (true) {
            std::optional<std::string> key = string();
            if (!key) return std::nullopt;
            if (!consume(':')) return std::nullopt;
            std::optional<JsonValue> val = value();
            if (!val) return std::nullopt;
            (*obj)[*key] = *val;
            skip_ws();
            if (pos_ < s_.size() && s_[pos_] == ',') {
              ++pos_;
              continue;
            }
            if (!consume('}')) return std::nullopt;
            break;
          }
        }
        out.v = obj;
        return out;
      }
      case '[': {
        auto arr = std::make_shared<JsonArray>();
        ++pos_;
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == ']') {
          ++pos_;
        } else {
          while (true) {
            std::optional<JsonValue> val = value();
            if (!val) return std::nullopt;
            arr->push_back(*val);
            skip_ws();
            if (pos_ < s_.size() && s_[pos_] == ',') {
              ++pos_;
              continue;
            }
            if (!consume(']')) return std::nullopt;
            break;
          }
        }
        out.v = arr;
        return out;
      }
      case '"': {
        std::optional<std::string> str = string();
        if (!str) return std::nullopt;
        out.v = *str;
        return out;
      }
      case 't':
        if (!literal("true")) return std::nullopt;
        out.v = true;
        return out;
      case 'f':
        if (!literal("false")) return std::nullopt;
        out.v = false;
        return out;
      case 'n':
        if (!literal("null")) return std::nullopt;
        out.v = nullptr;
        return out;
      default: {
        const std::size_t start = pos_;
        if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '-' || s_[pos_] == '+')) {
          ++pos_;
        }
        if (pos_ == start) {
          fail("unexpected character");
          return std::nullopt;
        }
        out.v = std::strtod(s_.c_str() + start, nullptr);
        return out;
      }
    }
  }

  std::optional<std::string> string() {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      fail("expected string");
      return std::nullopt;
    }
    ++pos_;
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) break;
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default: c = esc; break;  // \" \\ \/ and anything else verbatim
        }
      }
      out.push_back(c);
    }
    if (pos_ >= s_.size()) {
      fail("unterminated string");
      return std::nullopt;
    }
    ++pos_;  // closing quote
    return out;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string error_;
};

// --- field extraction ------------------------------------------------------

double num_or(const JsonObject& o, const char* key, double fallback) {
  auto it = o.find(key);
  if (it == o.end() || !std::holds_alternative<double>(it->second.v)) return fallback;
  return std::get<double>(it->second.v);
}

std::int64_t int_or(const JsonObject& o, const char* key, std::int64_t fallback) {
  return static_cast<std::int64_t>(num_or(o, key, static_cast<double>(fallback)));
}

bool bool_or(const JsonObject& o, const char* key, bool fallback) {
  auto it = o.find(key);
  if (it == o.end() || !std::holds_alternative<bool>(it->second.v)) return fallback;
  return std::get<bool>(it->second.v);
}

std::string string_or(const JsonObject& o, const char* key, const std::string& fallback) {
  auto it = o.find(key);
  if (it == o.end() || !std::holds_alternative<std::string>(it->second.v)) return fallback;
  return std::get<std::string>(it->second.v);
}

}  // namespace

std::string fixture_json(const workloads::InstanceSpec& spec) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"format\": \"partita-oracle-fixture-v1\",\n";
  os << "  \"name\": \"" << spec.name << "\",\n";
  os << "  \"required_gain\": " << spec.required_gain << ",\n";
  os << "  \"kernel_cycles\": [";
  for (std::size_t i = 0; i < spec.kernel_cycles.size(); ++i) {
    if (i) os << ", ";
    os << spec.kernel_cycles[i];
  }
  os << "],\n";
  os << "  \"sites\": [\n";
  for (std::size_t i = 0; i < spec.sites.size(); ++i) {
    append_site(os, spec.sites[i], "    ");
    os << (i + 1 < spec.sites.size() ? ",\n" : "\n");
  }
  os << "  ],\n";
  os << "  \"ips\": [\n";
  for (std::size_t i = 0; i < spec.ips.size(); ++i) {
    append_ip(os, spec.ips[i], "    ");
    os << (i + 1 < spec.ips.size() ? ",\n" : "\n");
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

std::optional<workloads::InstanceSpec> parse_fixture(const std::string& json,
                                                     std::string* error) {
  JsonParser parser(json);
  std::optional<JsonValue> root = parser.parse(error);
  if (!root) return std::nullopt;
  if (!root->is_object()) {
    if (error) *error = "fixture root is not an object";
    return std::nullopt;
  }
  const JsonObject& o = root->object();

  workloads::InstanceSpec spec;
  spec.name = string_or(o, "name", "fixture");
  spec.required_gain = int_or(o, "required_gain", 0);

  auto kc = o.find("kernel_cycles");
  if (kc != o.end() && kc->second.is_array()) {
    for (const JsonValue& v : kc->second.array()) {
      if (std::holds_alternative<double>(v.v)) {
        spec.kernel_cycles.push_back(static_cast<std::int64_t>(std::get<double>(v.v)));
      }
    }
  }
  auto sites = o.find("sites");
  if (sites != o.end() && sites->second.is_array()) {
    for (const JsonValue& v : sites->second.array()) {
      if (!v.is_object()) continue;
      const JsonObject& so = v.object();
      workloads::SpecCallSite s;
      s.kernel = static_cast<int>(int_or(so, "kernel", 0));
      s.depth = static_cast<int>(int_or(so, "depth", 0));
      s.loop_trip = static_cast<int>(int_or(so, "loop_trip", 1));
      s.branch_group = static_cast<int>(int_or(so, "branch_group", -1));
      s.then_arm = bool_or(so, "then_arm", true);
      s.taken_prob = num_or(so, "taken_prob", 0.5);
      s.serial = bool_or(so, "serial", true);
      s.pre_seg_cycles = int_or(so, "pre_seg_cycles", 0);
      spec.sites.push_back(s);
    }
  }
  auto ips = o.find("ips");
  if (ips != o.end() && ips->second.is_array()) {
    for (const JsonValue& v : ips->second.array()) {
      if (!v.is_object()) continue;
      const JsonObject& io = v.object();
      workloads::SpecIp ip;
      ip.area = num_or(io, "area", 1.0);
      ip.in_ports = static_cast<int>(int_or(io, "in_ports", 2));
      ip.out_ports = static_cast<int>(int_or(io, "out_ports", 2));
      ip.in_rate = static_cast<int>(int_or(io, "in_rate", 4));
      ip.out_rate = static_cast<int>(int_or(io, "out_rate", 4));
      ip.latency = static_cast<int>(int_or(io, "latency", 4));
      ip.pipelined = bool_or(io, "pipelined", true);
      ip.protocol = static_cast<int>(int_or(io, "protocol", 0));
      auto fns = io.find("functions");
      if (fns != io.end() && fns->second.is_array()) {
        for (const JsonValue& fv : fns->second.array()) {
          if (!fv.is_object()) continue;
          const JsonObject& fo = fv.object();
          workloads::SpecIpFunction f;
          f.kernel = static_cast<int>(int_or(fo, "kernel", 0));
          f.cycles = int_or(fo, "cycles", 100);
          f.n_in = int_or(fo, "n_in", 8);
          f.n_out = int_or(fo, "n_out", 8);
          ip.functions.push_back(f);
        }
      }
      spec.ips.push_back(ip);
    }
  }

  if (!workloads::spec_valid(spec)) {
    if (error) *error = "parsed spec fails spec_valid()";
    return std::nullopt;
  }
  return spec;
}

bool write_fixture(const std::string& path, const workloads::InstanceSpec& spec) {
  std::ofstream out(path);
  if (!out) return false;
  out << fixture_json(spec);
  return static_cast<bool>(out);
}

std::optional<workloads::InstanceSpec> load_fixture(const std::string& path,
                                                    std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_fixture(buf.str(), error);
}

}  // namespace partita::oracle

// Execution-path enumeration.
//
// The per-path performance constraints of the ILP formulation (Eq. 2) need
// the set of execution paths P_k through a function: every resolution of the
// two-armed conditionals yields one path. Loop bodies belong to every path
// (their nodes carry a loop_frequency multiplier); conditionals *inside*
// loops are resolved once per path, which approximates the dominant-iteration
// behaviour the paper's profile-driven flow relies on.
#pragma once

#include <cstdint>
#include <vector>

#include "cdfg/cdfg.hpp"

namespace partita::cdfg {

/// One execution path.
struct ExecPath {
  /// Atomic nodes on the path, in program order.
  std::vector<NodeIndex> nodes;
  /// Profile probability of this path (product of arm probabilities).
  double probability = 1.0;

  bool contains(NodeIndex n) const;

  /// Total software cycles along the path, honouring loop frequencies.
  /// Call-node cycles must have been annotated (Cdfg::annotate_call_cycles).
  std::int64_t software_cycles(const Cdfg& g) const;
};

/// Enumeration options.
struct PathOptions {
  /// Hard cap; enumeration stops adding forks beyond it (the lowest-
  /// probability arms are the ones dropped by construction order).
  std::size_t max_paths = 4096;
};

/// Enumerates execution paths of the function underlying `g`.
/// Always returns at least one path (a straight-line function has exactly
/// one, possibly empty).
std::vector<ExecPath> enumerate_paths(const Cdfg& g, const PathOptions& opt = {});

}  // namespace partita::cdfg

#include "cdfg/cdfg.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace partita::cdfg {

Cdfg::Cdfg(const ir::Module& module, const ir::Function& fn)
    : module_(&module), fn_(&fn) {
  build();
}

void Cdfg::build() {
  walk_seq(fn_->body());
  words_per_row_ = (nodes_.size() + 63) / 64;
  adj_.assign(nodes_.size() * words_per_row_, 0);
  closure_.assign(nodes_.size() * words_per_row_, 0);
  add_dependence_edges();
  close_transitively();
}

void Cdfg::walk_seq(const std::vector<ir::StmtId>& seq) {
  for (ir::StmtId id : seq) {
    const ir::Stmt& s = fn_->stmt(id);
    switch (s.kind) {
      case ir::StmtKind::kSeg:
      case ir::StmtKind::kCall: {
        AtomicNode n;
        n.stmt = id;
        n.is_call = s.kind == ir::StmtKind::kCall;
        if (n.is_call) n.call_site = s.call_site;
        n.cycles = s.kind == ir::StmtKind::kSeg ? s.cycles : 0;
        n.loop_ctx = loop_stack_;
        n.branch_ctx = branch_stack_;
        n.loop_frequency = freq_;
        nodes_.push_back(std::move(n));
        break;
      }
      case ir::StmtKind::kIf:
        branch_stack_.push_back({id, true});
        walk_seq(s.then_stmts);
        branch_stack_.back().then_arm = false;
        walk_seq(s.else_stmts);
        branch_stack_.pop_back();
        break;
      case ir::StmtKind::kLoop:
        loop_stack_.push_back(id);
        freq_ *= s.trip_count;
        walk_seq(s.body_stmts);
        freq_ /= s.trip_count;
        loop_stack_.pop_back();
        break;
    }
  }
}

namespace {

bool intersects(const std::vector<ir::SymbolId>& a, const std::vector<ir::SymbolId>& b) {
  for (ir::SymbolId x : a) {
    if (std::find(b.begin(), b.end(), x) != b.end()) return true;
  }
  return false;
}

}  // namespace

void Cdfg::add_dependence_edges() {
  for (NodeIndex v = 0; v < nodes_.size(); ++v) {
    const ir::Stmt& sv = fn_->stmt(nodes_[v].stmt);
    for (NodeIndex u = 0; u < v; ++u) {
      const ir::Stmt& su = fn_->stmt(nodes_[u].stmt);
      const bool raw = intersects(su.writes, sv.reads);
      const bool war = intersects(su.reads, sv.writes);
      const bool waw = intersects(su.writes, sv.writes);
      if (raw || war || waw) set_bit(adj_, u, v);
    }
  }
}

void Cdfg::close_transitively() {
  // Nodes are numbered in program order and edges only go forward, so one
  // backward sweep computes the closure: closure[u] = adj[u] union of
  // closure[v] for each direct successor v.
  closure_ = adj_;
  if (nodes_.empty()) return;
  for (NodeIndex u = static_cast<NodeIndex>(nodes_.size()); u-- > 0;) {
    for (NodeIndex v = u + 1; v < nodes_.size(); ++v) {
      if (!bit(adj_, u, v)) continue;
      for (std::size_t w = 0; w < words_per_row_; ++w) {
        closure_[u * words_per_row_ + w] |= closure_[v * words_per_row_ + w];
      }
    }
  }
}

NodeIndex Cdfg::node_of_call(ir::CallSiteId cs) const {
  for (NodeIndex i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].is_call && nodes_[i].call_site == cs) return i;
  }
  return kInvalidNode;
}

bool Cdfg::direct_edge(NodeIndex u, NodeIndex v) const {
  PARTITA_ASSERT(u < nodes_.size() && v < nodes_.size());
  return u < v && bit(adj_, u, v);
}

bool Cdfg::depends(NodeIndex u, NodeIndex v) const {
  PARTITA_ASSERT(u < nodes_.size() && v < nodes_.size());
  return u < v && bit(closure_, u, v);
}

}  // namespace partita::cdfg

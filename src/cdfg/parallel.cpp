#include "cdfg/parallel.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace partita::cdfg {

ParallelCode parallel_code_on_path(const Cdfg& g, NodeIndex call_node,
                                   const ExecPath& path, const PcOptions& opt) {
  PARTITA_ASSERT_MSG(g.node(call_node).is_call, "PC is defined for call nodes");
  ParallelCode pc;

  const auto it = std::find(path.nodes.begin(), path.nodes.end(), call_node);
  if (it == path.nodes.end()) return pc;

  // Nodes after the call on this path, program order.
  std::vector<NodeIndex> joined;   // members of the segment
  std::vector<NodeIndex> skipped;  // nodes passed over (dependent or excluded)

  for (auto np = it + 1; np != path.nodes.end(); ++np) {
    const NodeIndex v = *np;
    const AtomicNode& node = g.node(v);

    bool can_join = g.independent(call_node, v) && g.same_loop_ctx(call_node, v);

    bool consumes_scall = false;
    if (can_join && node.is_call) {
      const bool scall = !opt.is_scall || opt.is_scall(node.call_site);
      if (scall) {
        // Another s-call: only its *software* body may serve as parallel
        // code, and only when the generalized problem allows it (and the
        // consumption budget is not exhausted).
        if (opt.allow_scall_software && pc.consumed_scalls.size() < opt.max_consumed) {
          consumes_scall = true;
        } else {
          can_join = false;
        }
      }
      // Non-s-call calls are ordinary software and always eligible.
    }

    if (can_join) {
      // Rule (c): movable next to the call only if no skipped node between
      // the call and v is a transitive predecessor of v.
      for (NodeIndex s : skipped) {
        if (g.depends(s, v)) {
          can_join = false;
          break;
        }
      }
    }

    if (can_join) {
      joined.push_back(v);
      if (consumes_scall) pc.consumed_scalls.push_back(node.call_site);
    } else {
      skipped.push_back(v);
    }
  }

  pc.nodes = std::move(joined);
  for (NodeIndex v : pc.nodes) pc.cycles += g.node(v).cycles;
  if (pc.nodes.empty()) pc.consumed_scalls.clear();
  return pc;
}

ParallelCode parallel_code(const Cdfg& g, NodeIndex call_node,
                           const std::vector<ExecPath>& paths, const PcOptions& opt) {
  ParallelCode best;
  bool first = true;
  for (const ExecPath& p : paths) {
    if (!p.contains(call_node)) continue;
    ParallelCode pc = parallel_code_on_path(g, call_node, p, opt);
    if (first || pc.cycles < best.cycles) {
      best = std::move(pc);
      first = false;
    }
  }
  return best;
}

}  // namespace partita::cdfg

// Parallel-code extraction (Definitions 3-5).
//
// For an s-call occurrence SC_i, the parallel code PC_i is the longest code
// segment (in execution time) that can be rearranged to start right after the
// call and therefore run on the kernel while the IP executes the call's
// function. Per the paper:
//
//  * Definition 3: a node with no transitive dependence either way w.r.t. the
//    s-call is an "independent code" (IC_i);
//  * Definition 4: an ICS_i is a set of IC_i's in the same execution branch
//    that can be listed in a sequence;
//  * Definition 5: PC_i is the largest ICS_i that can be arranged right after
//    the s-call; with several execution paths after the call, the PC of each
//    path is computed and the shortest one is used, guaranteeing the minimum
//    gain on every path.
//
// Our construction, per path containing the call: walk the nodes after the
// call in program order; a node joins the segment when (a) it is independent
// of the call, (b) it shares the call's loop context (so one execution of the
// node overlaps one execution of the IP), and (c) every transitive
// predecessor of the node that lies between the call and the node has itself
// joined -- otherwise the node cannot be moved next to the call without
// violating a dependence. Rule (c) is exactly "can be listed in a sequence"
// made operational.
//
// Problem 1 forbids other s-calls inside a PC; Problem 2 allows the software
// implementation of another s-call to join, recording which call sites were
// consumed so the selector can enforce SC-PC conflicts.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cdfg/cdfg.hpp"
#include "cdfg/paths.hpp"

namespace partita::cdfg {

/// Extraction policy.
struct PcOptions {
  /// Problem 2: allow other s-calls' software bodies inside the PC.
  bool allow_scall_software = false;
  /// Which call sites are s-calls. Calls that are NOT s-calls are ordinary
  /// software and may always join a PC. Null means "every call is an
  /// s-call" (conservative).
  std::function<bool(ir::CallSiteId)> is_scall;
  /// Cap on how many s-call software bodies the PC may absorb. The IMP
  /// enumerator emits one variant per prefix (consuming k = 1..n s-calls),
  /// letting the ILP trade overlap against freeing the consumed s-calls for
  /// their own IPs.
  std::size_t max_consumed = static_cast<std::size_t>(-1);
};

/// A parallel-code segment for one s-call on one path (or the min over
/// paths).
struct ParallelCode {
  /// Nodes forming the segment, in program order.
  std::vector<NodeIndex> nodes;
  /// Total per-execution software cycles of the segment (the paper's T_C).
  std::int64_t cycles = 0;
  /// Call sites whose *software* implementation is part of this PC
  /// (non-empty only under PcOptions::allow_scall_software).
  std::vector<ir::CallSiteId> consumed_scalls;
};

/// PC of `call_node` restricted to one execution path.
/// `call_node` must be on the path.
ParallelCode parallel_code_on_path(const Cdfg& g, NodeIndex call_node,
                                   const ExecPath& path, const PcOptions& opt = {});

/// Definition 5's final PC: computed per path containing the call, returning
/// the one with the smallest cycle count (minimum guaranteed overlap).
/// Returns an empty ParallelCode when the call sits on no enumerated path or
/// some path offers no independent code.
ParallelCode parallel_code(const Cdfg& g, NodeIndex call_node,
                           const std::vector<ExecPath>& paths, const PcOptions& opt = {});

}  // namespace partita::cdfg

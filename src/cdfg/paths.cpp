#include "cdfg/paths.hpp"

#include <algorithm>

namespace partita::cdfg {

bool ExecPath::contains(NodeIndex n) const {
  return std::find(nodes.begin(), nodes.end(), n) != nodes.end();
}

std::int64_t ExecPath::software_cycles(const Cdfg& g) const {
  std::int64_t total = 0;
  for (NodeIndex n : nodes) {
    const AtomicNode& node = g.node(n);
    total += node.cycles * node.loop_frequency;
  }
  return total;
}

namespace {

/// A node belongs to a path iff, for every conditional frame in its branch
/// context, the path picked the same arm. The path is described by the set
/// of (if_stmt, arm) decisions.
class Enumerator {
 public:
  Enumerator(const Cdfg& g, const PathOptions& opt) : g_(g), opt_(opt) {}

  std::vector<ExecPath> run() {
    // Collect the distinct conditionals, outermost-first by first occurrence.
    std::vector<ir::StmtId> ifs;
    for (const AtomicNode& n : g_.nodes()) {
      for (const BranchFrame& f : n.branch_ctx) {
        if (std::find(ifs.begin(), ifs.end(), f.if_stmt) == ifs.end()) {
          ifs.push_back(f.if_stmt);
        }
      }
    }

    std::vector<ExecPath> out;
    std::vector<std::pair<ir::StmtId, bool>> decision;
    expand(ifs, 0, 1.0, decision, out);
    if (out.empty()) out.push_back(ExecPath{});  // function with no nodes
    return dedup(std::move(out));
  }

 private:
  void expand(const std::vector<ir::StmtId>& ifs, std::size_t k, double prob,
              std::vector<std::pair<ir::StmtId, bool>>& decision,
              std::vector<ExecPath>& out) {
    if (out.size() >= opt_.max_paths) return;
    if (k == ifs.size()) {
      out.push_back(materialize(decision, prob));
      return;
    }
    const ir::Stmt& s = g_.function().stmt(ifs[k]);
    decision.emplace_back(ifs[k], true);
    expand(ifs, k + 1, prob * s.taken_prob, decision, out);
    decision.back().second = false;
    expand(ifs, k + 1, prob * (1.0 - s.taken_prob), decision, out);
    decision.pop_back();
  }

  ExecPath materialize(const std::vector<std::pair<ir::StmtId, bool>>& decision,
                       double prob) const {
    ExecPath p;
    p.probability = prob;
    for (NodeIndex i = 0; i < g_.node_count(); ++i) {
      const AtomicNode& n = g_.node(i);
      bool on_path = true;
      for (const BranchFrame& f : n.branch_ctx) {
        for (const auto& [if_stmt, arm] : decision) {
          if (f.if_stmt == if_stmt && f.then_arm != arm) {
            on_path = false;
            break;
          }
        }
        if (!on_path) break;
      }
      if (on_path) p.nodes.push_back(i);
    }
    return p;
  }

  /// Nested conditionals make some decision vectors materialize the same node
  /// set (the inner if is irrelevant when the outer arm excludes it); merge
  /// those paths and add up their probabilities.
  static std::vector<ExecPath> dedup(std::vector<ExecPath> paths) {
    std::vector<ExecPath> out;
    for (ExecPath& p : paths) {
      auto it = std::find_if(out.begin(), out.end(),
                             [&](const ExecPath& q) { return q.nodes == p.nodes; });
      if (it == out.end()) out.push_back(std::move(p));
      else it->probability += p.probability;
    }
    return out;
  }

  const Cdfg& g_;
  const PathOptions& opt_;
};

}  // namespace

std::vector<ExecPath> enumerate_paths(const Cdfg& g, const PathOptions& opt) {
  return Enumerator(g, opt).run();
}

}  // namespace partita::cdfg

// Control/data-flow graph over the atomic statements of one function.
//
// This is the representation behind Definitions 3-5 of the paper: a node per
// MOP-producing statement (straight-line segment or call), directed edges for
// data/control dependence, and the transitive closure that decides which
// nodes are "independent code" with respect to an s-call.
//
// Dependence edges are derived from the declared reads/writes symbol sets
// (RAW, WAR and WAW conflicts) between nodes in program order. The branch
// and loop context of every node is recorded so path enumeration and the
// same-execution-branch requirement of Definition 5 can be enforced.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/function.hpp"

namespace partita::cdfg {

/// Index of an atomic node inside a Cdfg.
using NodeIndex = std::uint32_t;
inline constexpr NodeIndex kInvalidNode = ~NodeIndex{0};

/// One arm of a conditional on the enclosing-branch stack.
struct BranchFrame {
  ir::StmtId if_stmt;
  bool then_arm = true;
  bool operator==(const BranchFrame&) const = default;
};

/// An atomic node: a `seg` or `call` statement occurrence.
struct AtomicNode {
  ir::StmtId stmt;
  bool is_call = false;
  ir::CallSiteId call_site;  // valid iff is_call
  /// Per-execution software cycles. For segments this is the declared cycle
  /// count; for calls it is 0 until annotate_call_cycles() fills in the
  /// callee's T_SW (the CDFG itself does not know cross-function times).
  std::int64_t cycles = 0;
  /// Innermost-to-outermost... actually outermost-first stack of enclosing
  /// loop statements.
  std::vector<ir::StmtId> loop_ctx;
  /// Outermost-first stack of enclosing conditional arms.
  std::vector<BranchFrame> branch_ctx;
  /// Product of enclosing loop trip counts (profile execution frequency of
  /// the node relative to one invocation of the function).
  std::int64_t loop_frequency = 1;
};

/// The graph. Build once per function; immutable afterwards.
class Cdfg {
 public:
  /// Builds the CDFG of `fn` inside `module`.
  Cdfg(const ir::Module& module, const ir::Function& fn);

  const ir::Module& module() const { return *module_; }
  const ir::Function& function() const { return *fn_; }

  std::size_t node_count() const { return nodes_.size(); }
  const AtomicNode& node(NodeIndex i) const { return nodes_[i]; }
  const std::vector<AtomicNode>& nodes() const { return nodes_; }

  /// Node index of a call site, or kInvalidNode.
  NodeIndex node_of_call(ir::CallSiteId cs) const;

  /// Direct dependence edge u -> v (u precedes v and v must stay after u)?
  bool direct_edge(NodeIndex u, NodeIndex v) const;

  /// Transitive dependence u ->* v (program order respected: u < v).
  bool depends(NodeIndex u, NodeIndex v) const;

  /// True when the two nodes have no transitive dependence either way --
  /// Definition 3's "independent code" relation.
  bool independent(NodeIndex a, NodeIndex b) const {
    return !depends(a, b) && !depends(b, a);
  }

  /// Fills in per-execution cycles of call nodes (callee T_SW), used when the
  /// parallel-code extractor measures segment lengths. `cycles_of` maps a
  /// callee FuncId to its software time.
  template <typename F>
  void annotate_call_cycles(F&& cycles_of) {
    for (AtomicNode& n : nodes_) {
      if (n.is_call) {
        n.cycles = cycles_of(module_->call_site(n.call_site).callee);
      }
    }
  }

  /// True when a and b sit in the same execution branch (identical
  /// conditional-arm stacks) -- the Definition 4/5 requirement.
  bool same_branch(NodeIndex a, NodeIndex b) const {
    return nodes_[a].branch_ctx == nodes_[b].branch_ctx;
  }

  /// True when a and b are governed by the same loop nest, so one execution
  /// of a overlaps one execution of b.
  bool same_loop_ctx(NodeIndex a, NodeIndex b) const {
    return nodes_[a].loop_ctx == nodes_[b].loop_ctx;
  }

 private:
  void build();
  void walk_seq(const std::vector<ir::StmtId>& seq);
  void add_dependence_edges();
  void close_transitively();

  const ir::Module* module_;
  const ir::Function* fn_;
  std::vector<AtomicNode> nodes_;
  std::vector<ir::StmtId> loop_stack_;
  std::vector<BranchFrame> branch_stack_;
  std::int64_t freq_ = 1;

  // Adjacency and closure as bitsets: row u holds the set of v with u -> v.
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> adj_;
  std::vector<std::uint64_t> closure_;

  bool bit(const std::vector<std::uint64_t>& m, NodeIndex u, NodeIndex v) const {
    return (m[u * words_per_row_ + v / 64] >> (v % 64)) & 1u;
  }
  void set_bit(std::vector<std::uint64_t>& m, NodeIndex u, NodeIndex v) {
    m[u * words_per_row_ + v / 64] |= std::uint64_t{1} << (v % 64);
  }
};

}  // namespace partita::cdfg

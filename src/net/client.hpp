// Blocking partita-wire-v1 client.
//
// One WireClient owns one connection. The low-level pair send()/recv()
// exposes the raw pipelined stream; call() is the common path -- send one
// request, then read frames until the response whose id matches arrives,
// parking any other responses (answers to still-in-flight `wait`s, say) in
// an internal queue for a later take_pending()/wait_for(). That is the
// client half of the correlation-id multiplexing.
//
// Not thread-safe: one WireClient per thread (the load generator opens one
// per simulated session).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "net/frame.hpp"
#include "net/protocol.hpp"

namespace partita::net {

class WireClient {
 public:
  WireClient() = default;
  ~WireClient() { close(); }

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Connects to "tcp:HOST:PORT" or "unix:PATH".
  bool connect(const std::string& endpoint, std::string* error);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Assigns a fresh correlation id when req.id == 0; returns the id used.
  std::uint64_t send(WireRequest req, std::string* error);

  /// Next response in arrival order (pending queue first). nullopt on
  /// connection loss or a framing/protocol failure.
  std::optional<WireResponse> recv(std::string* error);

  /// Reads until the response with this id arrives; other responses are
  /// parked for later recv()/wait_for().
  std::optional<WireResponse> wait_for(std::uint64_t id, std::string* error);

  /// send() + wait_for(): the simple RPC shape.
  std::optional<WireResponse> call(WireRequest req, std::string* error);

 private:
  /// Reads the next response off the wire, ignoring the pending queue.
  std::optional<WireResponse> recv_socket(std::string* error);

  int fd_ = -1;
  FrameDecoder decoder_;
  std::deque<WireResponse> pending_;
  std::uint64_t next_id_ = 0;
};

}  // namespace partita::net

// Wire framing for partita-wire-v1.
//
// A frame on the socket is:
//
//   [4-byte big-endian length N] [1-byte version] [N-1 bytes JSON payload]
//
// The length counts everything after the prefix (version byte + payload),
// so N >= 1 for any well-formed frame. The version byte is 0x01; a decoder
// that sees anything else stops immediately -- a misframed or hostile peer
// must not be able to desynchronize the stream and have garbage parsed as
// payloads. A length above the configured ceiling likewise kills the
// connection before any allocation of attacker-chosen size.
//
// FrameDecoder is an incremental push parser: feed() whatever bytes arrived,
// then drain complete frames with next(). It never throws and never reads
// the socket itself, so it is trivially fuzzable (see wire_protocol_test).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace partita::net {

/// Protocol version byte carried by every frame.
inline constexpr std::uint8_t kWireVersion = 0x01;

/// Default ceiling on one frame's length field (version byte + payload).
/// Requests and responses are small; 1 MiB leaves two orders of magnitude
/// of headroom while bounding what a hostile length prefix can demand.
inline constexpr std::size_t kDefaultMaxFrameBytes = std::size_t{1} << 20;

/// Encodes one payload into a complete frame (prefix + version + payload).
std::string encode_frame(const std::string& payload);

class FrameDecoder {
 public:
  enum class Error : std::uint8_t {
    kNone,        // stream healthy
    kBadVersion,  // version byte != kWireVersion
    kOversized,   // length field exceeds the ceiling
    kEmpty,       // length field 0 (no room for the version byte)
  };

  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_(max_frame_bytes) {}

  /// Appends raw bytes from the transport. Safe to call after an error
  /// (bytes are dropped; the error is sticky).
  void feed(const char* data, std::size_t n);

  /// Extracts the next complete frame's payload. Returns false when no
  /// complete frame is buffered (either more bytes are needed or the stream
  /// is poisoned -- check error()).
  bool next(std::string* payload);

  /// First framing error seen; sticky. A non-kNone stream must be closed.
  Error error() const { return error_; }
  const char* error_message() const;

  /// Bytes buffered but not yet returned (diagnostics).
  std::size_t buffered() const { return buf_.size(); }

 private:
  std::string buf_;
  std::size_t max_frame_;
  Error error_ = Error::kNone;
};

const char* to_string(FrameDecoder::Error e);

}  // namespace partita::net

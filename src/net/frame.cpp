#include "net/frame.hpp"

namespace partita::net {

std::string encode_frame(const std::string& payload) {
  const std::size_t n = payload.size() + 1;  // version byte + payload
  std::string out;
  out.reserve(4 + n);
  out.push_back(static_cast<char>((n >> 24) & 0xFF));
  out.push_back(static_cast<char>((n >> 16) & 0xFF));
  out.push_back(static_cast<char>((n >> 8) & 0xFF));
  out.push_back(static_cast<char>(n & 0xFF));
  out.push_back(static_cast<char>(kWireVersion));
  out += payload;
  return out;
}

void FrameDecoder::feed(const char* data, std::size_t n) {
  if (error_ != Error::kNone) return;
  buf_.append(data, n);
}

bool FrameDecoder::next(std::string* payload) {
  if (error_ != Error::kNone) return false;
  if (buf_.size() < 4) return false;
  const auto b = [&](std::size_t i) {
    return static_cast<std::size_t>(static_cast<unsigned char>(buf_[i]));
  };
  const std::size_t len = (b(0) << 24) | (b(1) << 16) | (b(2) << 8) | b(3);
  // Validate the header before waiting for (or allocating) the body: a
  // hostile length prefix is rejected from the first 4 bytes alone.
  if (len == 0) {
    error_ = Error::kEmpty;
    return false;
  }
  if (len > max_frame_) {
    error_ = Error::kOversized;
    return false;
  }
  if (buf_.size() < 4 + len) return false;  // body still in flight
  if (static_cast<unsigned char>(buf_[4]) != kWireVersion) {
    error_ = Error::kBadVersion;
    return false;
  }
  if (payload) payload->assign(buf_, 5, len - 1);
  buf_.erase(0, 4 + len);
  return true;
}

const char* to_string(FrameDecoder::Error e) {
  switch (e) {
    case FrameDecoder::Error::kNone: return "ok";
    case FrameDecoder::Error::kBadVersion: return "unsupported frame version";
    case FrameDecoder::Error::kOversized: return "frame exceeds size ceiling";
    case FrameDecoder::Error::kEmpty: return "zero-length frame";
  }
  return "?";
}

const char* FrameDecoder::error_message() const { return to_string(error_); }

}  // namespace partita::net

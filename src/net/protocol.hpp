// partita-wire-v1: the request/response schema of the solve-service socket
// front-end.
//
// Every frame payload (see frame.hpp) is one compact JSON object tagged
// `"v": "partita-wire-v1"`. Requests carry a client-chosen correlation `id`
// that the server echoes on the matching response -- responses may arrive
// out of submission order (a `wait` answers when its ticket turns terminal,
// while later `status` calls answer immediately), so the id is what
// multiplexes many in-flight verbs over one connection.
//
// Verbs:
//   ping    liveness probe; echoes ok.
//   submit  one SolveRequest: a built-in workload by name or a generated
//           spec by seed, plus scheduling metadata (tenant, priority class,
//           deadline) and solver budget. Batch mode via `gains`.
//   cancel  cancel a ticket (queued: immediate; running: within one wave).
//   status  non-blocking terminal/progress snapshot of a ticket.
//   wait    blocks server-side until the ticket is terminal, then answers.
//   stats   service + scheduler + server counters.
//   drain   stop admission, block until everything admitted is terminal.
//
// Numbers are serialized with %.17g (support::json::fmt_double), so doubles
// -- areas, gains, gaps -- survive the wire bit-exactly: a Selection
// round-tripped through the socket compares identical to the in-process
// one. The differential harness (net_service_test) relies on this.
//
// Error taxonomy on the wire: `error.kind` is one of the support::ErrorKind
// names ("permanent", "transient", "cancelled") for solve-side failures, or
// "protocol" for malformed frames/JSON/unknown verbs -- the one kind the
// in-process API cannot produce.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "service/solve_service.hpp"

namespace partita::net {

inline constexpr const char* kWireSchema = "partita-wire-v1";

/// Error kind string for protocol-level failures (bad frame, bad JSON,
/// unknown verb/workload) -- outside the ErrorKind taxonomy on purpose.
inline constexpr const char* kProtocolErrorKind = "protocol";

struct WireError {
  std::string kind;  // "" = no error
  std::string message;
};

/// Generated-instance reference: the server rebuilds the workload from the
/// deterministic spec generator, so the wire never carries KL text.
struct SpecRef {
  std::uint64_t seed = 1;
  int scalls = 6;
  int kernels = 4;
  int ips = 5;
  /// Hardness knobs (see workloads::InstanceGenParams): path count is
  /// 2^branch_groups; hierarchy_depth > 0 exercises IMP flattening.
  int branch_groups = 1;
  int hierarchy_depth = 0;
};

struct WireRequest {
  std::uint64_t id = 0;
  std::string verb;

  // --- submit --------------------------------------------------------------
  std::string workload;  // built-in name; "" when spec is set
  std::optional<SpecRef> spec;
  std::string label;
  std::string tenant;
  int priority = service::kPriorityStandard;
  double deadline_seconds = 0.0;        // 0 = none
  std::int64_t required_gain = -1;      // single mode
  std::vector<std::int64_t> gains;      // batch mode (non-empty wins)
  double time_limit_seconds = 0.0;      // solver budget; 0 = none
  std::size_t memory_limit_mb = 0;      // solver memory cap; 0 = default

  // --- cancel / status / wait ---------------------------------------------
  std::uint64_t ticket = 0;
};

/// Selection summary carried on the wire. Field-for-field from
/// select::Selection; key() gives a canonical one-line rendering used by the
/// differential tests to assert socket == in-process == one-shot.
struct WireSelection {
  bool feasible = false;
  std::vector<std::int64_t> chosen;
  std::vector<std::int64_t> ips_used;
  double ip_area = 0.0;
  double interface_area = 0.0;
  double ip_power = 0.0;
  double interface_power = 0.0;
  std::int64_t min_path_gain = 0;
  int s_instructions = 0;
  int selected_scalls = 0;
  std::string rung;
  bool truncated = false;
  bool greedy_fallback = false;
  double optimality_gap = 0.0;

  /// Canonical rendering of every solution-defining field (doubles via
  /// %.17g); equal keys <=> bit-identical selections.
  std::string key() const;
};

/// Terminal (or in-flight) record of one ticket, the `status`/`wait` answer.
struct WireResult {
  std::uint64_t ticket = 0;
  std::string label;
  std::string state;
  int attempts = 0;
  double retry_after_seconds = 0.0;
  WireError error;
  std::optional<WireSelection> selection;
  /// Solution-cache outcome ("", "bypass", "hit", "neighbor", "miss"); see
  /// service::SolveResponse::cache. Empty when the service runs cacheless.
  std::string cache;
  /// True when the answering request was replayed from the write-ahead
  /// journal after a crash (service::SolveResponse::recovered).
  bool recovered = false;
};

struct WireResponse {
  std::uint64_t id = 0;
  std::string verb;
  bool ok = true;
  WireError error;  // set iff !ok

  // --- submit --------------------------------------------------------------
  std::vector<std::uint64_t> tickets;
  std::string state;  // "queued" | "rejected"
  double retry_after_seconds = 0.0;
  std::string reject_reason;

  // --- cancel --------------------------------------------------------------
  bool cancelled = false;

  // --- status / wait -------------------------------------------------------
  std::optional<WireResult> result;

  // --- stats ---------------------------------------------------------------
  std::map<std::string, double> stats;
  std::string policy;
};

// --- codec -----------------------------------------------------------------

std::string encode_request(const WireRequest& req);
/// nullopt on malformed JSON, wrong/missing schema tag or missing verb;
/// `error` gets a one-line reason.
std::optional<WireRequest> decode_request(const std::string& payload, std::string* error);

std::string encode_response(const WireResponse& resp);
std::optional<WireResponse> decode_response(const std::string& payload, std::string* error);

// --- service-type bridges --------------------------------------------------

WireSelection to_wire(const select::Selection& s);
WireResult to_wire(const service::SolveResponse& r);

/// Resolves the request's workload: a built-in by name ("gsm_encoder",
/// "gsm_decoder", "jpeg_encoder", "fig9", "fig10", "adpcm_codec") or the
/// deterministic spec generator. On success fills `out` (and `out.spec` for
/// spec requests); on failure returns false with a one-line reason.
bool resolve_workload(const WireRequest& req, service::SolveRequest* out,
                      std::string* error);

/// Builds the full service request (workload + scheduling metadata + solver
/// budget) from a submit verb. False + reason on unknown workload. Also
/// stamps SolveRequest::journal_payload with the canonical encoding of the
/// verb, so a journaling service can persist the exact envelope.
bool to_service_request(const WireRequest& req, service::SolveRequest* out,
                        std::string* error);

/// Rebuilds a journaled submit payload into a boot-recovery re-admission:
/// decode_request + to_service_request, with journal_seq pinned to the
/// original admit record and the recovered flag set. False + reason when
/// the payload is not a well-formed submit verb.
bool from_journal_payload(const std::string& payload, std::uint64_t seq,
                          service::SolveRequest* out, std::string* error);

}  // namespace partita::net

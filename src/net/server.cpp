#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "support/result.hpp"

namespace partita::net {

namespace {

/// Writes the whole buffer; false when the peer is gone. MSG_NOSIGNAL: a
/// disconnected client must never SIGPIPE the server.
bool send_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

WireResponse protocol_error(std::uint64_t id, const std::string& verb, std::string why) {
  WireResponse e;
  e.id = id;
  e.verb = verb;
  e.ok = false;
  e.error.kind = kProtocolErrorKind;
  e.error.message = std::move(why);
  return e;
}

}  // namespace

WireServer::WireServer(service::SolveService& svc, ServerConfig cfg)
    : svc_(svc), cfg_(std::move(cfg)) {}

WireServer::~WireServer() { stop(); }

bool WireServer::start(std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error) *error = why + " (" + std::strerror(errno) + ")";
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  };

  const std::string& spec = cfg_.listen;
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos) {
      if (error) *error = "listen spec needs tcp:HOST:PORT";
      return false;
    }
    const std::string host = rest.substr(0, colon);
    const int want_port = std::atoi(rest.c_str() + colon + 1);

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return fail("socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(want_port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      if (error) *error = "bad listen host '" + host + "'";
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      return fail("bind " + spec);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
  } else if (spec.rfind("unix:", 0) == 0) {
    unix_path_ = spec.substr(5);
    sockaddr_un addr{};
    if (unix_path_.size() + 1 > sizeof addr.sun_path) {
      if (error) *error = "unix socket path too long";
      return false;
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return fail("socket");
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, unix_path_.c_str(), sizeof addr.sun_path - 1);
    ::unlink(unix_path_.c_str());  // stale socket from a previous run
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      return fail("bind " + spec);
    }
  } else {
    if (error) *error = "listen spec must be tcp:HOST:PORT or unix:PATH";
    return false;
  }

  if (::listen(listen_fd_, 64) != 0) return fail("listen");
  started_ = true;
  accept_thread_ = std::thread([this] { accept_main(); });
  return true;
}

std::string WireServer::endpoint() const {
  if (!unix_path_.empty()) return "unix:" + unix_path_;
  return "tcp:127.0.0.1:" + std::to_string(port_);
}

void WireServer::stop() {
  if (!started_ || stopping_.exchange(true)) {
    // Never started, or a previous stop already ran to completion.
    if (started_ && accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // Wake the accept loop (shutdown on a listening socket unblocks accept on
  // Linux, which plain close does not reliably do), then join it.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());

  // Kick every session's socket so its reader sees EOF, then join. The
  // reader joins its own waiters before returning, so after this loop no
  // thread of ours is alive.
  std::list<std::unique_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    sessions.swap(sessions_);
  }
  for (auto& s : sessions) {
    ::shutdown(s->fd, SHUT_RDWR);
  }
  for (auto& s : sessions) {
    if (s->reader.joinable()) s->reader.join();
    ::close(s->fd);
  }
}

ServerStats WireServer::stats() const {
  std::lock_guard<std::mutex> lk(sessions_mu_);
  ServerStats s = stats_;
  s.active_sessions = sessions_.size();
  return s;
}

void WireServer::accept_main() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener is gone; nothing to accept on anymore
    }
    std::lock_guard<std::mutex> lk(sessions_mu_);
    reap_finished_locked();
    if (sessions_.size() >= cfg_.max_sessions) {
      ++stats_.sessions_refused;
      send_all(fd, encode_frame(encode_response(
                       protocol_error(0, "", "server session limit reached"))));
      ::close(fd);
      continue;
    }
    ++stats_.sessions_accepted;
    auto session = std::make_unique<Session>();
    session->fd = fd;
    Session* raw = session.get();
    sessions_.push_back(std::move(session));
    raw->reader = std::thread([this, raw] { session_main(raw); });
  }
}

void WireServer::reap_finished_locked() {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if ((*it)->done.load()) {
      if ((*it)->reader.joinable()) (*it)->reader.join();
      ::close((*it)->fd);
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

void WireServer::session_main(Session* session) {
  FrameDecoder decoder(cfg_.max_frame_bytes);
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(session->fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    decoder.feed(buf, static_cast<std::size_t>(n));
    std::string payload;
    while (decoder.next(&payload)) {
      {
        std::lock_guard<std::mutex> lk(sessions_mu_);
        ++stats_.frames_in;
      }
      handle_payload(*session, payload);
    }
    if (decoder.error() != FrameDecoder::Error::kNone) {
      // The stream is desynchronized: answer once, then hang up. Unlike a
      // JSON-level error, nothing after a framing error is trustworthy.
      {
        std::lock_guard<std::mutex> lk(sessions_mu_);
        ++stats_.protocol_errors;
      }
      send_response(*session, protocol_error(0, "", decoder.error_message()));
      break;
    }
  }
  // Join in-flight waits before declaring the session finished; they own
  // references into this Session.
  for (;;) {
    std::thread waiter;
    {
      std::lock_guard<std::mutex> lk(session->waiters_mu);
      if (session->waiters.empty()) break;
      waiter = std::move(session->waiters.front());
      session->waiters.pop_front();
    }
    waiter.join();
  }
  // Hang up so the peer sees EOF now: after a framing error the client may
  // still be blocked reading, and the fd itself is only closed at reap/stop.
  ::shutdown(session->fd, SHUT_RDWR);
  session->done.store(true);
}

void WireServer::handle_payload(Session& session, const std::string& payload) {
  std::string why;
  std::optional<WireRequest> req = decode_request(payload, &why);
  if (!req) {
    // A JSON-level error answers and keeps the connection: the framing is
    // intact, so subsequent frames are still trustworthy.
    {
      std::lock_guard<std::mutex> lk(sessions_mu_);
      ++stats_.protocol_errors;
    }
    send_response(session, protocol_error(0, "", why));
    return;
  }

  if (req->verb == "wait" || req->verb == "drain") {
    // Blocking verbs get their own thread: the reader stays free to serve
    // further frames on this connection (the point of id multiplexing).
    std::lock_guard<std::mutex> lk(session.waiters_mu);
    session.waiters.emplace_back([this, &session, r = *req] {
      WireResponse resp;
      resp.id = r.id;
      resp.verb = r.verb;
      if (r.verb == "wait") {
        resp.result = to_wire(svc_.wait(r.ticket));
      } else {
        svc_.drain();
        resp.state = "drained";
      }
      send_response(session, resp);
    });
    return;
  }

  send_response(session, handle_immediate(*req));
}

WireResponse WireServer::handle_immediate(const WireRequest& req) {
  WireResponse resp;
  resp.id = req.id;
  resp.verb = req.verb;

  if (req.verb == "ping") {
    return resp;
  }
  if (req.verb == "submit") {
    service::SolveRequest sreq;
    std::string why;
    if (!to_service_request(req, &sreq, &why)) {
      return protocol_error(req.id, req.verb, why);
    }
    const service::SubmitOutcome outcome = svc_.submit(std::move(sreq));
    resp.tickets = outcome.tickets;
    resp.state = service::to_string(outcome.state);
    resp.retry_after_seconds = outcome.retry_after_seconds;
    resp.reject_reason = outcome.reject_reason;
    return resp;
  }
  if (req.verb == "cancel") {
    resp.cancelled = svc_.cancel(req.ticket);
    return resp;
  }
  if (req.verb == "status") {
    std::optional<service::SolveResponse> r = svc_.poll(req.ticket);
    if (!r) {
      resp.ok = false;
      resp.error.kind = support::to_string(support::ErrorKind::kPermanent);
      resp.error.message = "unknown ticket";
      return resp;
    }
    resp.result = to_wire(*r);
    return resp;
  }
  if (req.verb == "stats") {
    const service::ServiceStats s = svc_.stats();
    const service::PolicyStats p = svc_.scheduler_stats();
    const ServerStats n = stats();
    auto& m = resp.stats;
    m["submitted"] = static_cast<double>(s.submitted);
    m["completed"] = static_cast<double>(s.completed);
    m["cancelled"] = static_cast<double>(s.cancelled);
    m["rejected"] = static_cast<double>(s.rejected);
    m["failed"] = static_cast<double>(s.failed);
    m["evicted"] = static_cast<double>(s.evicted);
    m["retries"] = static_cast<double>(s.retries);
    m["peak_queue_depth"] = static_cast<double>(s.peak_queue_depth);
    m["peak_admitted_memory_bytes"] = static_cast<double>(s.peak_admitted_memory_bytes);
    m["batches"] = static_cast<double>(s.batches);
    m["batch_items"] = static_cast<double>(s.batch_items);
    m["batch_amortized_hits"] = static_cast<double>(s.batch_amortized_hits);
    m["cache_lookups"] = static_cast<double>(s.cache_lookups);
    m["cache_hits"] = static_cast<double>(s.cache_hits);
    m["cache_misses"] = static_cast<double>(s.cache_misses);
    m["cache_neighbor_seeds"] = static_cast<double>(s.cache_neighbor_seeds);
    m["cache_insertions"] = static_cast<double>(s.cache_insertions);
    m["cache_evictions"] = static_cast<double>(s.cache_evictions);
    m["cache_stale"] = static_cast<double>(s.cache_stale);
    m["cache_seed_fallbacks"] = static_cast<double>(s.cache_seed_fallbacks);
    m["recovered_requests"] = static_cast<double>(s.recovered_requests);
    m["journal_rejects"] = static_cast<double>(s.journal_rejects);
    m["sched_admitted"] = static_cast<double>(p.admitted);
    m["sched_rejected"] = static_cast<double>(p.rejected);
    m["sched_evicted"] = static_cast<double>(p.evicted);
    m["sched_picked"] = static_cast<double>(p.picked);
    m["sched_backfills"] = static_cast<double>(p.backfills);
    m["sched_aged_promotions"] = static_cast<double>(p.aged_promotions);
    m["sched_queued"] = static_cast<double>(p.queued);
    m["net_sessions_accepted"] = static_cast<double>(n.sessions_accepted);
    m["net_sessions_refused"] = static_cast<double>(n.sessions_refused);
    m["net_frames_in"] = static_cast<double>(n.frames_in);
    m["net_frames_out"] = static_cast<double>(n.frames_out);
    m["net_protocol_errors"] = static_cast<double>(n.protocol_errors);
    m["net_active_sessions"] = static_cast<double>(n.active_sessions);
    resp.policy = svc_.policy_name();
    return resp;
  }

  return protocol_error(req.id, req.verb, "unknown verb '" + req.verb + "'");
}

void WireServer::send_response(Session& session, const WireResponse& resp) {
  const std::string frame = encode_frame(encode_response(resp));
  bool sent = false;
  {
    std::lock_guard<std::mutex> lk(session.write_mu);
    sent = send_all(session.fd, frame);
  }
  if (sent) {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    ++stats_.frames_out;
  }
  // A vanished client is not an error: its terminal states live on in the
  // service and the response is simply dropped.
}

}  // namespace partita::net

#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace partita::net {

bool WireClient::connect(const std::string& endpoint, std::string* error) {
  close();
  const auto fail = [&](const std::string& why) {
    if (error) *error = why + " (" + std::strerror(errno) + ")";
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    return false;
  };

  if (endpoint.rfind("tcp:", 0) == 0) {
    const std::string rest = endpoint.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos) {
      if (error) *error = "endpoint needs tcp:HOST:PORT";
      return false;
    }
    const std::string host = rest.substr(0, colon);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(std::atoi(rest.c_str() + colon + 1)));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      if (error) *error = "bad host '" + host + "'";
      return false;
    }
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return fail("socket");
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      return fail("connect " + endpoint);
    }
  } else if (endpoint.rfind("unix:", 0) == 0) {
    const std::string path = endpoint.substr(5);
    sockaddr_un addr{};
    if (path.size() + 1 > sizeof addr.sun_path) {
      if (error) *error = "unix socket path too long";
      return false;
    }
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return fail("socket");
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      return fail("connect " + endpoint);
    }
  } else {
    if (error) *error = "endpoint must be tcp:HOST:PORT or unix:PATH";
    return false;
  }
  return true;
}

void WireClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  decoder_ = FrameDecoder();
  pending_.clear();
}

std::uint64_t WireClient::send(WireRequest req, std::string* error) {
  if (fd_ < 0) {
    if (error) *error = "not connected";
    return 0;
  }
  if (req.id == 0) req.id = ++next_id_;
  const std::string frame = encode_frame(encode_request(req));
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (error) *error = std::string("send failed (") + std::strerror(errno) + ")";
      return 0;
    }
    off += static_cast<std::size_t>(n);
  }
  return req.id;
}

std::optional<WireResponse> WireClient::recv(std::string* error) {
  if (!pending_.empty()) {
    WireResponse r = std::move(pending_.front());
    pending_.pop_front();
    return r;
  }
  return recv_socket(error);
}

std::optional<WireResponse> WireClient::recv_socket(std::string* error) {
  if (fd_ < 0) {
    if (error) *error = "not connected";
    return std::nullopt;
  }
  char buf[4096];
  std::string payload;
  for (;;) {
    if (decoder_.next(&payload)) {
      std::string why;
      std::optional<WireResponse> resp = decode_response(payload, &why);
      if (!resp && error) *error = why;
      return resp;
    }
    if (decoder_.error() != FrameDecoder::Error::kNone) {
      if (error) *error = decoder_.error_message();
      return std::nullopt;
    }
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      if (error) *error = "connection closed";
      return std::nullopt;
    }
    decoder_.feed(buf, static_cast<std::size_t>(n));
  }
}

std::optional<WireResponse> WireClient::wait_for(std::uint64_t id, std::string* error) {
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->id == id) {
      WireResponse r = std::move(*it);
      pending_.erase(it);
      return r;
    }
  }
  for (;;) {
    // Read fresh frames only: the pending queue was already scanned above
    // and holds nothing but non-matches.
    std::optional<WireResponse> resp = recv_socket(error);
    if (!resp) return std::nullopt;
    if (resp->id == id) return resp;
    pending_.push_back(std::move(*resp));
  }
}

std::optional<WireResponse> WireClient::call(WireRequest req, std::string* error) {
  const std::uint64_t id = send(std::move(req), error);
  if (id == 0) return std::nullopt;
  return wait_for(id, error);
}

}  // namespace partita::net

#include "net/protocol.hpp"

#include <utility>

#include "support/json.hpp"

namespace partita::net {

namespace json = support::json;
using json::fmt_double;
using json::quote;

namespace {

std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }
std::string fmt_i64(std::int64_t v) { return std::to_string(v); }

void append_field(std::string& out, const char* key, const std::string& rendered) {
  out += ',';
  out += quote(key);
  out += ':';
  out += rendered;
}

std::string error_json(const WireError& e) {
  return std::string("{\"kind\":") + quote(e.kind) +
         ",\"message\":" + quote(e.message) + "}";
}

template <typename T>
std::string int_array_json(const std::vector<T>& xs) {
  std::string out = "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) out += ',';
    out += fmt_i64(static_cast<std::int64_t>(xs[i]));
  }
  out += ']';
  return out;
}

std::string selection_json(const WireSelection& s) {
  std::string out = "{\"feasible\":";
  out += s.feasible ? "true" : "false";
  append_field(out, "chosen", int_array_json(s.chosen));
  append_field(out, "ips_used", int_array_json(s.ips_used));
  append_field(out, "ip_area", fmt_double(s.ip_area));
  append_field(out, "interface_area", fmt_double(s.interface_area));
  append_field(out, "ip_power", fmt_double(s.ip_power));
  append_field(out, "interface_power", fmt_double(s.interface_power));
  append_field(out, "min_path_gain", fmt_i64(s.min_path_gain));
  append_field(out, "s_instructions", fmt_i64(s.s_instructions));
  append_field(out, "selected_scalls", fmt_i64(s.selected_scalls));
  append_field(out, "rung", quote(s.rung));
  append_field(out, "truncated", s.truncated ? "true" : "false");
  append_field(out, "greedy_fallback", s.greedy_fallback ? "true" : "false");
  append_field(out, "optimality_gap", fmt_double(s.optimality_gap));
  out += '}';
  return out;
}

std::string result_json(const WireResult& r) {
  std::string out = "{\"ticket\":" + fmt_u64(r.ticket);
  append_field(out, "label", quote(r.label));
  append_field(out, "state", quote(r.state));
  append_field(out, "attempts", fmt_i64(r.attempts));
  append_field(out, "retry_after_s", fmt_double(r.retry_after_seconds));
  if (!r.cache.empty()) append_field(out, "cache", quote(r.cache));
  if (r.recovered) append_field(out, "recovered", "true");
  if (!r.error.kind.empty()) append_field(out, "error", error_json(r.error));
  if (r.selection) append_field(out, "selection", selection_json(*r.selection));
  out += '}';
  return out;
}

WireError decode_error(const json::Object* o) {
  WireError e;
  if (o) {
    e.kind = json::string_or(*o, "kind", "");
    e.message = json::string_or(*o, "message", "");
  }
  return e;
}

std::vector<std::int64_t> decode_i64s(const json::Array* a) {
  std::vector<std::int64_t> out;
  if (a) {
    for (const auto& v : *a) {
      if (v.is_number()) out.push_back(static_cast<std::int64_t>(v.number()));
    }
  }
  return out;
}

std::optional<WireSelection> decode_selection(const json::Object* o) {
  if (!o) return std::nullopt;
  WireSelection s;
  s.feasible = json::bool_or(*o, "feasible", false);
  s.chosen = decode_i64s(json::array_or_null(*o, "chosen"));
  s.ips_used = decode_i64s(json::array_or_null(*o, "ips_used"));
  s.ip_area = json::num_or(*o, "ip_area", 0.0);
  s.interface_area = json::num_or(*o, "interface_area", 0.0);
  s.ip_power = json::num_or(*o, "ip_power", 0.0);
  s.interface_power = json::num_or(*o, "interface_power", 0.0);
  s.min_path_gain = json::int_or(*o, "min_path_gain", 0);
  s.s_instructions = static_cast<int>(json::int_or(*o, "s_instructions", 0));
  s.selected_scalls = static_cast<int>(json::int_or(*o, "selected_scalls", 0));
  s.rung = json::string_or(*o, "rung", "");
  s.truncated = json::bool_or(*o, "truncated", false);
  s.greedy_fallback = json::bool_or(*o, "greedy_fallback", false);
  s.optimality_gap = json::num_or(*o, "optimality_gap", 0.0);
  return s;
}

std::optional<WireResult> decode_result(const json::Object* o) {
  if (!o) return std::nullopt;
  WireResult r;
  r.ticket = static_cast<std::uint64_t>(json::int_or(*o, "ticket", 0));
  r.label = json::string_or(*o, "label", "");
  r.state = json::string_or(*o, "state", "");
  r.attempts = static_cast<int>(json::int_or(*o, "attempts", 0));
  r.retry_after_seconds = json::num_or(*o, "retry_after_s", 0.0);
  r.cache = json::string_or(*o, "cache", "");
  r.recovered = json::bool_or(*o, "recovered", false);
  r.error = decode_error(json::object_or_null(*o, "error"));
  r.selection = decode_selection(json::object_or_null(*o, "selection"));
  return r;
}

/// Parses the payload and checks the schema tag; null + reason on failure.
const json::Object* parse_envelope(const std::string& payload, std::optional<json::Value>& hold,
                                   std::string* error) {
  std::string why;
  hold = json::parse(payload, &why);
  if (!hold) {
    if (error) *error = "malformed JSON: " + why;
    return nullptr;
  }
  if (!hold->is_object()) {
    if (error) *error = "payload is not a JSON object";
    return nullptr;
  }
  const json::Object& o = hold->object();
  if (json::string_or(o, "v", "") != kWireSchema) {
    if (error) *error = std::string("missing or unknown schema tag (want ") + kWireSchema + ")";
    return nullptr;
  }
  return &o;
}

}  // namespace

std::string WireSelection::key() const {
  // Every solution-defining field, doubles via %.17g: equal keys iff the
  // selections are bit-identical.
  std::string k = feasible ? "feasible" : "infeasible";
  k += "|chosen=" + int_array_json(chosen);
  k += "|ips=" + int_array_json(ips_used);
  k += "|area=" + fmt_double(ip_area) + "+" + fmt_double(interface_area);
  k += "|power=" + fmt_double(ip_power) + "+" + fmt_double(interface_power);
  k += "|gain=" + fmt_i64(min_path_gain);
  k += "|S=" + fmt_i64(s_instructions) + "|O=" + fmt_i64(selected_scalls);
  k += "|rung=" + rung;
  return k;
}

std::string encode_request(const WireRequest& req) {
  std::string out = "{\"v\":" + quote(kWireSchema);
  append_field(out, "id", fmt_u64(req.id));
  append_field(out, "verb", quote(req.verb));
  if (req.verb == "submit") {
    if (req.spec) {
      std::string spec = "{\"seed\":" + fmt_u64(req.spec->seed);
      append_field(spec, "scalls", fmt_i64(req.spec->scalls));
      append_field(spec, "kernels", fmt_i64(req.spec->kernels));
      append_field(spec, "ips", fmt_i64(req.spec->ips));
      append_field(spec, "branch_groups", fmt_i64(req.spec->branch_groups));
      append_field(spec, "hierarchy_depth", fmt_i64(req.spec->hierarchy_depth));
      spec += '}';
      append_field(out, "spec", spec);
    } else {
      append_field(out, "workload", quote(req.workload));
    }
    if (!req.label.empty()) append_field(out, "label", quote(req.label));
    if (!req.tenant.empty()) append_field(out, "tenant", quote(req.tenant));
    append_field(out, "priority", quote(service::priority_name(req.priority)));
    if (req.deadline_seconds > 0) {
      append_field(out, "deadline_s", fmt_double(req.deadline_seconds));
    }
    if (!req.gains.empty()) {
      append_field(out, "gains", int_array_json(req.gains));
    } else {
      append_field(out, "required_gain", fmt_i64(req.required_gain));
    }
    if (req.time_limit_seconds > 0) {
      append_field(out, "time_limit_s", fmt_double(req.time_limit_seconds));
    }
    if (req.memory_limit_mb > 0) {
      append_field(out, "memory_limit_mb", fmt_u64(req.memory_limit_mb));
    }
  } else if (req.verb == "cancel" || req.verb == "status" || req.verb == "wait") {
    append_field(out, "ticket", fmt_u64(req.ticket));
  }
  out += '}';
  return out;
}

std::optional<WireRequest> decode_request(const std::string& payload, std::string* error) {
  std::optional<json::Value> hold;
  const json::Object* o = parse_envelope(payload, hold, error);
  if (!o) return std::nullopt;

  WireRequest req;
  req.id = static_cast<std::uint64_t>(json::int_or(*o, "id", 0));
  req.verb = json::string_or(*o, "verb", "");
  if (req.verb.empty()) {
    if (error) *error = "missing verb";
    return std::nullopt;
  }
  req.workload = json::string_or(*o, "workload", "");
  if (const json::Object* spec = json::object_or_null(*o, "spec")) {
    SpecRef ref;
    ref.seed = static_cast<std::uint64_t>(json::int_or(*spec, "seed", 1));
    ref.scalls = static_cast<int>(json::int_or(*spec, "scalls", ref.scalls));
    ref.kernels = static_cast<int>(json::int_or(*spec, "kernels", ref.kernels));
    ref.ips = static_cast<int>(json::int_or(*spec, "ips", ref.ips));
    ref.branch_groups = static_cast<int>(json::int_or(*spec, "branch_groups", ref.branch_groups));
    ref.hierarchy_depth = static_cast<int>(json::int_or(*spec, "hierarchy_depth", ref.hierarchy_depth));
    req.spec = ref;
  }
  req.label = json::string_or(*o, "label", "");
  req.tenant = json::string_or(*o, "tenant", "");
  // Priority travels as a class name; numerals are accepted too.
  if (auto it = o->find("priority"); it != o->end()) {
    int p = -1;
    if (it->second.is_string()) p = service::parse_priority(it->second.string());
    else if (it->second.is_number()) p = static_cast<int>(it->second.number());
    if (p < 0) {
      if (error) *error = "unknown priority class";
      return std::nullopt;
    }
    req.priority = service::clamp_priority(p);
  }
  req.deadline_seconds = json::num_or(*o, "deadline_s", 0.0);
  req.required_gain = json::int_or(*o, "required_gain", -1);
  req.gains = decode_i64s(json::array_or_null(*o, "gains"));
  req.time_limit_seconds = json::num_or(*o, "time_limit_s", 0.0);
  req.memory_limit_mb = static_cast<std::size_t>(json::int_or(*o, "memory_limit_mb", 0));
  req.ticket = static_cast<std::uint64_t>(json::int_or(*o, "ticket", 0));
  return req;
}

std::string encode_response(const WireResponse& resp) {
  std::string out = "{\"v\":" + quote(kWireSchema);
  append_field(out, "id", fmt_u64(resp.id));
  append_field(out, "verb", quote(resp.verb));
  append_field(out, "ok", resp.ok ? "true" : "false");
  if (!resp.ok) append_field(out, "error", error_json(resp.error));
  if (!resp.tickets.empty()) {
    append_field(out, "tickets", int_array_json(resp.tickets));
  }
  if (!resp.state.empty()) append_field(out, "state", quote(resp.state));
  if (resp.retry_after_seconds > 0) {
    append_field(out, "retry_after_s", fmt_double(resp.retry_after_seconds));
  }
  if (!resp.reject_reason.empty()) {
    append_field(out, "reject_reason", quote(resp.reject_reason));
  }
  if (resp.verb == "cancel") {
    append_field(out, "cancelled", resp.cancelled ? "true" : "false");
  }
  if (resp.result) append_field(out, "result", result_json(*resp.result));
  if (!resp.stats.empty()) {
    std::string stats = "{";
    bool first = true;
    for (const auto& [k, v] : resp.stats) {
      if (!first) stats += ',';
      first = false;
      stats += quote(k) + ":" + fmt_double(v);
    }
    stats += '}';
    append_field(out, "stats", stats);
  }
  if (!resp.policy.empty()) append_field(out, "policy", quote(resp.policy));
  out += '}';
  return out;
}

std::optional<WireResponse> decode_response(const std::string& payload, std::string* error) {
  std::optional<json::Value> hold;
  const json::Object* o = parse_envelope(payload, hold, error);
  if (!o) return std::nullopt;

  WireResponse resp;
  resp.id = static_cast<std::uint64_t>(json::int_or(*o, "id", 0));
  resp.verb = json::string_or(*o, "verb", "");
  resp.ok = json::bool_or(*o, "ok", false);
  resp.error = decode_error(json::object_or_null(*o, "error"));
  if (const json::Array* ts = json::array_or_null(*o, "tickets")) {
    for (const auto& v : *ts) {
      if (v.is_number()) resp.tickets.push_back(static_cast<std::uint64_t>(v.number()));
    }
  }
  resp.state = json::string_or(*o, "state", "");
  resp.retry_after_seconds = json::num_or(*o, "retry_after_s", 0.0);
  resp.reject_reason = json::string_or(*o, "reject_reason", "");
  resp.cancelled = json::bool_or(*o, "cancelled", false);
  resp.result = decode_result(json::object_or_null(*o, "result"));
  if (const json::Object* stats = json::object_or_null(*o, "stats")) {
    for (const auto& [k, v] : *stats) {
      if (v.is_number()) resp.stats[k] = v.number();
    }
  }
  resp.policy = json::string_or(*o, "policy", "");
  return resp;
}

WireSelection to_wire(const select::Selection& s) {
  WireSelection w;
  w.feasible = s.feasible;
  w.chosen.assign(s.chosen.begin(), s.chosen.end());
  w.ips_used.reserve(s.ips_used.size());
  for (const iplib::IpId ip : s.ips_used) w.ips_used.push_back(ip.value);
  w.ip_area = s.ip_area;
  w.interface_area = s.interface_area;
  w.ip_power = s.ip_power;
  w.interface_power = s.interface_power;
  w.min_path_gain = s.min_path_gain;
  w.s_instructions = s.s_instructions;
  w.selected_scalls = s.selected_scalls;
  w.rung = select::to_string(s.rung);
  w.truncated = s.truncated;
  w.greedy_fallback = s.greedy_fallback;
  w.optimality_gap = s.optimality_gap;
  return w;
}

WireResult to_wire(const service::SolveResponse& r) {
  WireResult w;
  w.ticket = r.ticket;
  w.label = r.label;
  w.state = service::to_string(r.state);
  w.attempts = r.attempts;
  w.retry_after_seconds = r.retry_after_seconds;
  w.cache = r.cache;
  w.recovered = r.recovered;
  if (r.state == service::RequestState::kFailed ||
      r.state == service::RequestState::kRejected) {
    w.error.kind = support::to_string(r.error.kind);
    w.error.message = r.error.message;
  }
  if (r.state == service::RequestState::kCompleted) w.selection = to_wire(r.selection);
  return w;
}

bool resolve_workload(const WireRequest& req, service::SolveRequest* out,
                      std::string* error) {
  if (req.spec) {
    workloads::InstanceGenParams p;
    p.scalls = req.spec->scalls;
    p.kernels = req.spec->kernels;
    p.ips = req.spec->ips;
    p.branch_groups = req.spec->branch_groups;
    p.max_hierarchy_depth = req.spec->hierarchy_depth;
    workloads::InstanceSpec spec = workloads::random_instance_spec(p, req.spec->seed);
    out->label = req.label.empty() ? "spec_" + std::to_string(req.spec->seed) : req.label;
    out->workload = workloads::spec_workload(spec);
    out->spec = std::move(spec);
    return true;
  }
  const std::string& n = req.workload;
  if (n == "gsm_encoder") out->workload = workloads::gsm_encoder();
  else if (n == "gsm_decoder") out->workload = workloads::gsm_decoder();
  else if (n == "jpeg_encoder") out->workload = workloads::jpeg_encoder();
  else if (n == "fig9") out->workload = workloads::fig9_case();
  else if (n == "fig10") out->workload = workloads::fig10_case();
  else if (n == "adpcm_codec") out->workload = workloads::adpcm_codec();
  else {
    if (error) *error = "unknown workload '" + n + "'";
    return false;
  }
  out->label = req.label.empty() ? n : req.label;
  return true;
}

bool to_service_request(const WireRequest& req, service::SolveRequest* out,
                        std::string* error) {
  if (!resolve_workload(req, out, error)) return false;
  out->required_gain = req.required_gain;
  out->required_gains = req.gains;
  out->tenant = req.tenant;
  out->priority = req.priority;
  out->deadline_seconds = req.deadline_seconds;
  if (req.time_limit_seconds > 0) {
    out->options.ilp.budget.time_limit_seconds = req.time_limit_seconds;
  }
  if (req.memory_limit_mb > 0) {
    out->options.ilp.budget.memory_limit_bytes = req.memory_limit_mb << 20;
  }
  // Canonical re-encoding, not the raw frame: what the journal persists is
  // exactly what decode_request understood, so replays cannot drift from
  // the admitted interpretation.
  out->journal_payload = encode_request(req);
  return true;
}

bool from_journal_payload(const std::string& payload, std::uint64_t seq,
                          service::SolveRequest* out, std::string* error) {
  std::optional<WireRequest> req = decode_request(payload, error);
  if (!req) return false;
  if (req->verb != "submit") {
    if (error) *error = "journaled payload is not a submit verb";
    return false;
  }
  if (!to_service_request(*req, out, error)) return false;
  out->journal_seq = seq;  // the admit record already exists; never re-append
  out->recovered = true;
  return true;
}

}  // namespace partita::net

// Socket front-end of the solve service.
//
// WireServer listens on a TCP loopback port (or a unix-domain socket),
// speaks partita-wire-v1 frames (frame.hpp + protocol.hpp) and forwards
// verbs to one shared service::SolveService. Threading model:
//
//   * one accept thread;
//   * one reader thread per connection, which parses frames and answers
//     non-blocking verbs (submit/cancel/status/stats/ping) inline;
//   * blocking verbs (wait, drain) run on detached-from-the-reader waiter
//     threads so one long wait never stalls the connection -- that is what
//     makes the correlation-id multiplexing real. Responses are written
//     under a per-connection write mutex, one frame at a time.
//
// Error containment mirrors the service's quarantine philosophy: a
// malformed JSON payload or unknown verb gets an error response (kind
// "protocol") and the connection lives on; a *framing* error (bad version
// byte, hostile length prefix) poisons the stream and the connection is
// closed after one final error frame. Neither ever takes the server down.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "net/frame.hpp"
#include "net/protocol.hpp"
#include "service/solve_service.hpp"

namespace partita::net {

struct ServerConfig {
  /// "tcp:HOST:PORT" (PORT 0 = ephemeral, read back via port()) or
  /// "unix:PATH".
  std::string listen = "tcp:127.0.0.1:0";
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Concurrent connections; extras are refused with one error frame.
  std::size_t max_sessions = 64;
};

struct ServerStats {
  std::uint64_t sessions_accepted = 0;
  std::uint64_t sessions_refused = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t protocol_errors = 0;  // bad JSON / unknown verb / bad frame
  std::size_t active_sessions = 0;
};

class WireServer {
 public:
  /// The server borrows the service; the caller owns both lifetimes and
  /// must stop() the server before destroying the service.
  explicit WireServer(service::SolveService& svc, ServerConfig cfg = {});
  ~WireServer();

  WireServer(const WireServer&) = delete;
  WireServer& operator=(const WireServer&) = delete;

  /// Binds, listens and starts accepting. False + reason on bind failure.
  bool start(std::string* error);

  /// Stops accepting, shuts every session's socket down and joins all
  /// threads. In-flight waits are joined too, so drain the service first
  /// (or let request budgets expire) for a bounded stop. Idempotent.
  void stop();

  /// Bound TCP port (0 for unix sockets or before start()).
  int port() const { return port_; }
  /// Resolved endpoint, e.g. "tcp:127.0.0.1:41317" -- what a WireClient
  /// passes to connect().
  std::string endpoint() const;

  ServerStats stats() const;

 private:
  struct Session {
    int fd = -1;
    std::thread reader;
    std::mutex write_mu;
    std::mutex waiters_mu;
    std::list<std::thread> waiters;
    std::atomic<bool> done{false};
  };

  void accept_main();
  void session_main(Session* session);
  /// Decodes and dispatches one frame payload; answers inline or spawns a
  /// waiter for blocking verbs.
  void handle_payload(Session& session, const std::string& payload);
  /// Non-blocking verbs; must not sleep or wait (runs on the reader).
  WireResponse handle_immediate(const WireRequest& req);
  void send_response(Session& session, const WireResponse& resp);
  void reap_finished_locked();

  service::SolveService& svc_;
  ServerConfig cfg_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::string unix_path_;  // set when listening on a unix socket
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  mutable std::mutex sessions_mu_;
  std::list<std::unique_ptr<Session>> sessions_;
  ServerStats stats_;
};

}  // namespace partita::net

// Benchmark workloads.
//
// The paper evaluates on a GSM(TDMA) codec and a JPEG encoder compiled by
// the authors' in-house flow; neither the sources nor the IP RTL are
// available. These generators rebuild the *problem instances*: call
// structures, software cycle counts, profile frequencies and IP libraries
// calibrated so the selection problems have the same shape as Tables 1-3
// (18 s-calls / 23 IPs for the GSM encoder, 11 s-calls / 10 IPs for the
// decoder, the C-MUL < FFT < 1D-DCT < 2D-DCT hierarchy for JPEG), plus the
// Fig. 9 / Fig. 10 motivating examples for Problem 2 and a parameterized
// random generator for stress and property tests.
//
// Applications are written in KL text and parsed through the real frontend;
// IP libraries go through the real loader -- the workloads double as
// integration tests of both.
#pragma once

#include <string>

#include "iplib/library.hpp"
#include "ir/function.hpp"

namespace partita::workloads {

struct Workload {
  std::string name;
  ir::Module module;
  iplib::IpLibrary library;
};

/// GSM(TDMA) speech encoder: 18 top-level s-calls, 23 IPs (filters,
/// correlators, quantizers; some functions with two or three alternative
/// IPs). Reproduces Table 1's setting.
Workload gsm_encoder();

/// GSM(TDMA) decoder: 11 s-calls, 10 IPs. Reproduces Table 2's setting,
/// including the IP whose data rate is below the type-0 template rate (the
/// SC10 type-0 -> type-2 switch) .
Workload gsm_decoder();

/// JPEG encoder with the paper's hierarchy: 2D-DCT -> 1D-DCT -> FFT -> C-MUL
/// plus zig-zag; five IPs, one per level. Reproduces Table 3's setting.
Workload jpeg_encoder();

/// Fig. 9: three independent fir() calls whose pure-software form misses the
/// constraint; the optimum runs one in the kernel as parallel code of the
/// IP executing the other two (needs Problem 2).
Workload fig9_case();

/// Fig. 10: two paths share a common fir(); meeting both constraints needs
/// the common fir in software as the parallel code of dct() while P1's other
/// fir()s use the IP (needs Problem 2).
Workload fig10_case();

/// ADPCM speech codec (extra workload, not from the paper's evaluation):
/// exercises the model corners the GSM/JPEG instances do not -- a
/// non-pipelined (combinational-array) predictor IP whose transfer cannot
/// overlap its computation, handshake-protocol IPs paying the protocol
/// transformer, and an M-IP covering the quantize/dequantize pair.
Workload adpcm_codec();

/// KL source text of the named built-in workload (for docs and the
/// quickstart example). Empty when unknown.
std::string workload_source(const std::string& name);

}  // namespace partita::workloads

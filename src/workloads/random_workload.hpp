// Parameterized random workload generation.
//
// Emits a random-but-valid application in KL text plus a matching random IP
// library, then runs both through the real frontend/loader. Used by the
// property tests (the full pipeline must hold its invariants on arbitrary
// instances) and by the solver-scaling bench.
#pragma once

#include <cstdint>
#include <string>

#include "workloads/workloads.hpp"

namespace partita::workloads {

struct RandomWorkloadParams {
  int leaf_functions = 6;     // s-callable kernels
  int call_sites = 12;        // top-level call statements
  int max_loop_trip = 8;      // loops wrap random sub-sequences
  double if_probability = 0.3;  // chance a statement group becomes an if
  int ips = 8;                // library size
  double multi_function_ip_probability = 0.3;
  std::int64_t min_leaf_cycles = 500;
  std::int64_t max_leaf_cycles = 50000;
};

/// Generates a workload; identical (params, seed) pairs produce identical
/// workloads on every platform.
Workload random_workload(const RandomWorkloadParams& params, std::uint64_t seed);

/// The KL text of the last structure generated for (params, seed) -- the
/// generator is pure, so this simply regenerates it.
std::string random_workload_kl(const RandomWorkloadParams& params, std::uint64_t seed);

}  // namespace partita::workloads

// Parameterized random workload generation.
//
// Emits a random-but-valid application in KL text plus a matching random IP
// library, then runs both through the real frontend/loader. Used by the
// property tests (the full pipeline must hold its invariants on arbitrary
// instances) and by the solver-scaling bench.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/workloads.hpp"

namespace partita::workloads {

struct RandomWorkloadParams {
  int leaf_functions = 6;     // s-callable kernels
  int call_sites = 12;        // top-level call statements
  int max_loop_trip = 8;      // loops wrap random sub-sequences
  double if_probability = 0.3;  // chance a statement group becomes an if
  int ips = 8;                // library size
  double multi_function_ip_probability = 0.3;
  std::int64_t min_leaf_cycles = 500;
  std::int64_t max_leaf_cycles = 50000;
};

/// Generates a workload; identical (params, seed) pairs produce identical
/// workloads on every platform.
Workload random_workload(const RandomWorkloadParams& params, std::uint64_t seed);

/// The KL text of the last structure generated for (params, seed) -- the
/// generator is pure, so this simply regenerates it.
std::string random_workload_kl(const RandomWorkloadParams& params, std::uint64_t seed);

// --- structured instance specs (oracle / differential harness) -------------
//
// The free-form generator above emits KL text directly, which makes the
// produced instance impossible to mutate after the fact. The spec layer
// below builds a first-class description of a selection instance -- leaf
// kernels, call sites (with loop / branch / hierarchy attributes) and an IP
// library -- that renders deterministically to KL + library text. The
// oracle's shrinker edits the spec and re-renders; the fixture format
// (src/oracle/fixture.*) serializes it to JSON.

/// One function entry of a spec IP.
struct SpecIpFunction {
  int kernel = 0;              // index into InstanceSpec::kernel_cycles
  std::int64_t cycles = 100;   // T_IP of one call (0 = streaming estimate)
  std::int64_t n_in = 8;       // input operands per call
  std::int64_t n_out = 8;      // results per call
};

/// One IP of the spec library (see iplib::IpDescriptor for the semantics).
struct SpecIp {
  double area = 1.0;
  int in_ports = 2;
  int out_ports = 2;
  int in_rate = 4;
  int out_rate = 4;
  int latency = 4;
  bool pipelined = true;
  int protocol = 0;  // 0 = sync, 1 = handshake, 2 = stream
  std::vector<SpecIpFunction> functions;
};

/// One call site in main. Sites with the same non-negative branch_group are
/// rendered into one two-armed conditional (then_arm picks the arm), so the
/// number of execution paths is 2^(distinct branch groups).
struct SpecCallSite {
  int kernel = 0;          // leaf kernel the call (chain) bottoms out at
  int depth = 0;           // wrapper-chain length; >0 exercises IMP flattening
  int loop_trip = 1;       // >1 wraps the call in `loop N { ... }`
  int branch_group = -1;   // >=0: member of that if/else group
  bool then_arm = true;
  double taken_prob = 0.5;
  bool serial = true;      // reads the live value chain (no parallel overlap)
  std::int64_t pre_seg_cycles = 0;  // independent seg before the call (PC material)
};

/// A complete, mutable selection instance.
struct InstanceSpec {
  std::string name = "oracle_instance";
  std::vector<std::int64_t> kernel_cycles;  // software cycles of kern0..N-1
  std::vector<SpecCallSite> sites;
  std::vector<SpecIp> ips;
  /// Uniform required gain a harness should test at; 0 = derive from the
  /// instance (the differential harness uses a fraction of Gmax).
  std::int64_t required_gain = 0;
};

/// Knobs of the spec generator. Defaults give small, conflict-rich instances
/// the exhaustive oracle can enumerate quickly.
struct InstanceGenParams {
  int scalls = 6;        // call sites in main
  int kernels = 4;       // distinct leaf functions
  int ips = 5;           // library size
  /// Probability that an IP implements one extra kernel (repeated twice), so
  /// higher densities mean more shared-IP fixed-charge interaction.
  double ip_sharing = 0.35;
  /// Two-armed conditionals in main: path count is 2^branch_groups.
  /// Requires 2*branch_groups <= scalls (each arm gets at least one site).
  int branch_groups = 1;
  /// Hierarchy: per-site chance of sitting behind a wrapper chain of
  /// depth 1..max_hierarchy_depth (exercises IMP flattening).
  int max_hierarchy_depth = 0;
  double hierarchy_probability = 0.4;
  double loop_probability = 0.4;
  int max_loop_trip = 6;
  double serial_probability = 0.5;
  /// Chance of an independent seg right before a call (parallel-code fuel).
  double pc_seg_probability = 0.5;
  std::int64_t max_pc_seg_cycles = 4000;
  std::int64_t min_kernel_cycles = 400;
  std::int64_t max_kernel_cycles = 30000;
  // Interface-type mix: wide ports force buffered types, rate mismatch kills
  // type 0, non-sync protocols price in a transformer.
  double pipelined_probability = 0.85;
  double wide_port_probability = 0.25;
  double rate_mismatch_probability = 0.3;
  double nonsync_protocol_probability = 0.3;
};

/// Generates a spec; identical (params, seed) pairs produce identical specs
/// on every platform.
InstanceSpec random_instance_spec(const InstanceGenParams& params, std::uint64_t seed);

/// Deterministic KL rendering of a spec.
std::string spec_kl(const InstanceSpec& spec);

/// Deterministic IP-library rendering of a spec.
std::string spec_library(const InstanceSpec& spec);

/// True when the spec can render to a loadable workload: at least one site
/// and one kernel, every referenced kernel exists, every IP has at least one
/// function, and branch groups are two-armed.
bool spec_valid(const InstanceSpec& spec);

/// Renders and parses the spec through the real frontend/loader. The spec
/// must be spec_valid(); rendering of a valid spec always parses.
Workload spec_workload(const InstanceSpec& spec);

}  // namespace partita::workloads

#include "workloads/workloads.hpp"

#include <map>

#include "frontend/parser.hpp"
#include "iplib/loader.hpp"
#include "support/assert.hpp"

namespace partita::workloads {

namespace {

Workload make(const std::string& name, std::string_view kl, std::string_view lib_text) {
  support::DiagnosticEngine diags;
  std::optional<ir::Module> module = frontend::parse_module(kl, diags);
  if (!module) {
    std::fprintf(stderr, "workload '%s' KL errors:\n%s", name.c_str(),
                 diags.render_all().c_str());
    // invariant: the KL text is compiled into the binary; a parse failure is
    // a programming error in the workload table, not user input.
    PARTITA_ASSERT_MSG(false, "built-in workload failed to parse");
  }
  std::optional<iplib::IpLibrary> lib = iplib::load_library(lib_text, diags);
  if (!lib) {
    std::fprintf(stderr, "workload '%s' library errors:\n%s", name.c_str(),
                 diags.render_all().c_str());
    // invariant: same as above -- built-in text, not user input.
    PARTITA_ASSERT_MSG(false, "built-in IP library failed to parse");
  }
  return Workload{name, std::move(*module), std::move(*lib)};
}

// ---------------------------------------------------------------------------
// GSM(TDMA) encoder: 18 top-level s-calls, 23 IPs. The call structure models
// one speech-frame encode: preprocessing and LPC analysis up front, four
// subframes of short/long-term prediction in a loop, a voiced/unvoiced
// conditional, and a 9-iteration re-estimation filter loop that concentrates
// profile weight on one site (the analogue of the paper's dominant SC13).
// ---------------------------------------------------------------------------

constexpr std::string_view kGsmEncoderKl = R"(
module gsm_encoder;

# Leaf DSP kernels (s-call candidates); cycle counts play the role of the
# profile-measured T_SW of the paper's flow.
func preemph     scall sw_cycles 3200;
func autocorr    scall sw_cycles 52000;
func schur       scall sw_cycles 16000;
func quant_lar   scall sw_cycles 1500;
func dequant_lar scall sw_cycles 1500;
func win_filter  scall sw_cycles 14000;
func ltp_corr    scall sw_cycles 180000;
func rpe_grid    scall sw_cycles 9800;
func quant_rpe   scall sw_cycles 13000;
func update_hist scall sw_cycles 1200;

func main {
  seg init 600 writes(frame);
  call preemph reads(frame) writes(pre);                    # SC: preprocercing
  call autocorr reads(pre) writes(acf);                     # SC: 4-port engine
  seg precompute 1800 reads(frame) writes(pcm2);            # PC material for autocorr
  seg lagwin 900 reads(acf) writes(acfw);
  call schur reads(acfw) writes(lar);
  call quant_lar reads(lar) writes(larq);
  call dequant_lar reads(larq) writes(larr);
  seg interp 1100 reads(larr) writes(coef);
  loop 4 {
    call win_filter reads(coef) writes(sres);
    call ltp_corr reads(sres) writes(ltp);
    seg regen 2600 reads(coef) writes(scratch);             # PC material for ltp_corr
    call rpe_grid reads(ltp) writes(rpe);
    call quant_rpe reads(rpe) writes(rpeq);
    call update_hist reads(rpeq) writes(hist);
  }
  if prob 0.5 {
    call win_filter reads(hist) writes(v1);
    call quant_lar reads(hist) writes(v2);                  # independent: PC of the fir above
    seg vpost 700 reads(v1, v2);
  } else {
    call win_filter reads(hist) writes(u1);
    call update_hist reads(u1) writes(u2);
    seg upost 500 reads(u2);
  }
  seg mid 400 writes(m);
  loop 9 {
    call win_filter reads(m) writes(w);                     # the dominant site
  }
  call quant_rpe reads(w) writes(q2);
  call dequant_lar reads(q2) writes(d2);
  call preemph reads(d2) writes(outp);
}
)";

constexpr std::string_view kGsmEncoderLib = R"(
# 23 IPs for the GSM encoder: several functions have 2-3 alternative IPs
# trading speed against area, plus M-IPs shared across functions.

ip IP1 {   # preemphasis filter, modest S-IP
  area 2
  power 0.24
  ports in 2 out 2
  rate in 4 out 4
  latency 8
  pipelined
  protocol sync
  fn preemph cycles 800 in 48 out 48
}
ip IP2 {   # fast preemphasis, pricier
  area 5
  power 0.6
  ports in 2 out 2
  rate in 4 out 4
  latency 4
  pipelined
  protocol sync
  fn preemph cycles 300 in 48 out 48
}
ip IP3 {   # autocorrelation engine, 4 input ports: buffered interfaces only
  area 12
  power 1.44
  ports in 4 out 2
  rate in 2 out 4
  latency 16
  pipelined
  protocol sync
  fn autocorr cycles 9000 in 160 out 18
}
ip IP4 {   # 2-port autocorrelator, slower but type-0 capable
  area 6
  power 0.72
  ports in 2 out 2
  rate in 4 out 4
  latency 16
  pipelined
  protocol sync
  fn autocorr cycles 22000 in 160 out 18
}
ip IP5 {   # Schur recursion array
  area 7
  power 0.84
  ports in 2 out 2
  rate in 4 out 4
  latency 12
  pipelined
  protocol sync
  fn schur cycles 4000 in 36 out 16
}
ip IP6 {   # M-IP: Schur + LTP correlator (slower than the S-IPs)
  area 10
  power 1.2
  ports in 2 out 2
  rate in 4 out 4
  latency 12
  pipelined
  protocol sync
  fn schur cycles 7000 in 36 out 16
  fn ltp_corr cycles 90000 in 320 out 8
}
ip IP7 {   # streaming Schur (protocol transformer needed)
  area 6
  power 0.72
  ports in 2 out 2
  rate in 4 out 4
  latency 10
  pipelined
  protocol stream
  fn schur cycles 5000 in 36 out 16
}
ip IP8 {   # handshake autocorrelator
  area 10
  power 1.2
  ports in 2 out 2
  rate in 4 out 4
  latency 20
  pipelined
  protocol handshake
  fn autocorr cycles 14000 in 160 out 18
}
ip IP9 {   # 3-port windowed filter: buffered only
  area 9
  power 1.08
  ports in 3 out 3
  rate in 2 out 2
  latency 10
  pipelined
  protocol sync
  fn win_filter cycles 700 in 160 out 160
}
ip IP10 {  # M-IP quantizer/dequantizer pair (the cheap shared block)
  area 2
  power 0.24
  ports in 2 out 2
  rate in 4 out 4
  latency 6
  pipelined
  protocol sync
  fn quant_lar cycles 480 in 16 out 16
  fn dequant_lar cycles 480 in 16 out 16
}
ip IP11 {  # fast windowed-filter S-IP
  area 8
  power 0.3
  ports in 2 out 2
  rate in 4 out 4
  latency 8
  pipelined
  protocol sync
  fn win_filter cycles 400 in 160 out 160
}
ip IP12 {  # M-IP filter bank: serves win_filter and rpe_grid (the shared IP)
  area 3
  power 1.5
  ports in 2 out 2
  rate in 4 out 4
  latency 10
  pipelined
  protocol sync
  fn win_filter cycles 1000 in 160 out 160
  fn rpe_grid cycles 5200 in 160 out 52
}
ip IP13 {  # LTP correlator S-IP (the big buffered win)
  area 15
  power 0.6
  ports in 2 out 2
  rate in 4 out 4
  latency 24
  pipelined
  protocol sync
  fn ltp_corr cycles 15000 in 320 out 8
}
ip IP14 {  # budget LTP correlator
  area 9
  power 2.8
  ports in 2 out 2
  rate in 4 out 4
  latency 24
  pipelined
  protocol sync
  fn ltp_corr cycles 60000 in 320 out 8
}
ip IP15 {  # wide LTP correlator, 4 ports: buffered only
  area 18
  power 2.16
  ports in 4 out 4
  rate in 1 out 1
  latency 20
  pipelined
  protocol sync
  fn ltp_corr cycles 9000 in 320 out 8
}
ip IP16 {  # RPE grid selector with asymmetric rates: type-0 impossible
  area 3
  power 0.36
  ports in 2 out 2
  rate in 2 out 4
  latency 10
  pipelined
  protocol sync
  fn rpe_grid cycles 2000 in 160 out 52
}
ip IP17 {  # APCM quantizer
  area 3
  power 1.0
  ports in 2 out 2
  rate in 4 out 4
  latency 8
  pipelined
  protocol sync
  fn quant_rpe cycles 2500 in 52 out 52
}
ip IP18 {  # history update block
  area 2
  power 0.24
  ports in 2 out 2
  rate in 4 out 4
  latency 4
  pipelined
  protocol sync
  fn update_hist cycles 300 in 40 out 40
}
ip IP19 {  # fast APCM quantizer
  area 6
  power 0.25
  ports in 2 out 2
  rate in 4 out 4
  latency 6
  pipelined
  protocol sync
  fn quant_rpe cycles 900 in 52 out 52
}
ip IP20 {  # M-IP: history update + LAR quantizer
  area 4
  power 0.48
  ports in 2 out 2
  rate in 4 out 4
  latency 6
  pipelined
  protocol sync
  fn update_hist cycles 500 in 40 out 40
  fn quant_lar cycles 700 in 16 out 16
}
ip IP21 {  # minimal RPE grid helper (non-pipelined)
  area 2
  power 0.24
  ports in 1 out 1
  rate in 4 out 4
  latency 40
  combinational
  protocol sync
  fn rpe_grid cycles 7600 in 160 out 52
}
ip IP22 {  # M-IP: RPE grid + APCM quantizer
  area 8
  power 0.96
  ports in 2 out 2
  rate in 4 out 4
  latency 10
  pipelined
  protocol sync
  fn rpe_grid cycles 3000 in 160 out 52
  fn quant_rpe cycles 1600 in 52 out 52
}
ip IP23 {  # M-IP: preemphasis + history update
  area 4
  power 0.48
  ports in 2 out 2
  rate in 4 out 4
  latency 8
  pipelined
  protocol sync
  fn preemph cycles 1200 in 48 out 48
  fn update_hist cycles 600 in 40 out 40
}
)";

// ---------------------------------------------------------------------------
// GSM decoder: 11 s-calls, 10 IPs. Two functions account for eight sites
// (four each, mirroring the paper's IP5/IP2 sharing); the postfilter IP's
// native data rate (2) is below the type-0 template rate, reproducing the
// SC10 type-0 -> type-2 upgrade of Table 2.
// ---------------------------------------------------------------------------

constexpr std::string_view kGsmDecoderKl = R"(
module gsm_decoder;

func dec_unpack  scall sw_cycles 1300;
func short_synth scall sw_cycles 15500;
func ltp_synth   scall sw_cycles 9000;
func postfilter  scall sw_cycles 15200;
func deemph      scall sw_cycles 9700;

func main {
  seg init 400 writes(bits);
  call dec_unpack reads(bits) writes(p1);
  call short_synth reads(p1) writes(s1);
  call dec_unpack reads(bits) writes(p2);
  call short_synth reads(p2) writes(s2);
  call dec_unpack reads(bits) writes(p3);
  call short_synth reads(p3) writes(s3);
  call dec_unpack reads(bits) writes(p4);
  loop 9 {
    call short_synth reads(p4) writes(s4);               # dominant site
  }
  call ltp_synth reads(s4) writes(lt);
  if prob 0.6 {
    seg postA 800 reads(lt) writes(pa);
  } else {
    seg postB 1200 reads(lt) writes(pb);
  }
  call postfilter reads(lt) writes(pf);                  # rate-2 IP target
  call deemph reads(pf) writes(outp);
}
)";

constexpr std::string_view kGsmDecoderLib = R"(
ip IP1 {   # slow parameter decoder
  area 1
  power 0.1
  ports in 2 out 2
  rate in 4 out 4
  latency 6
  pipelined
  protocol sync
  fn dec_unpack cycles 900 in 20 out 20
}
ip IP2 {   # parameter decoder (the cheap shared block)
  area 2
  power 0.45
  ports in 2 out 2
  rate in 4 out 4
  latency 4
  pipelined
  protocol sync
  fn dec_unpack cycles 300 in 20 out 20
}
ip IP3 {   # mid-speed synthesis filter
  area 12
  power 0.9
  ports in 2 out 2
  rate in 4 out 4
  latency 12
  pipelined
  protocol sync
  fn short_synth cycles 4500 in 160 out 160
}
ip IP4 {   # fast synthesis filter (big)
  area 32
  power 0.5
  ports in 2 out 2
  rate in 4 out 4
  latency 10
  pipelined
  protocol sync
  fn short_synth cycles 900 in 160 out 160
}
ip IP5 {   # synthesis filter (the workhorse of Table 2)
  area 4
  power 1.6
  ports in 2 out 2
  rate in 4 out 4
  latency 12
  pipelined
  protocol sync
  fn short_synth cycles 1500 in 160 out 160
}
ip IP6 {   # postfilter with native rate 2: type-0 must slow the IP clock
  area 3
  power 0.85
  ports in 2 out 2
  rate in 2 out 2
  latency 8
  pipelined
  protocol sync
  fn postfilter cycles 300 in 80 out 80
}
ip IP7 {   # alternative postfilter, rate 4
  area 5
  power 0.3
  ports in 2 out 2
  rate in 4 out 4
  latency 8
  pipelined
  protocol sync
  fn postfilter cycles 450 in 80 out 80
}
ip IP8 {   # long-term synthesis block
  area 5
  power 0.6
  ports in 2 out 2
  rate in 4 out 4
  latency 10
  pipelined
  protocol sync
  fn ltp_synth cycles 350 in 44 out 44
}
ip IP9 {   # 4-port deemphasis: buffered only
  area 7
  power 0.84
  ports in 4 out 4
  rate in 2 out 2
  latency 8
  pipelined
  protocol sync
  fn deemph cycles 250 in 160 out 160
}
ip IP10 {  # deemphasis filter
  area 3
  power 0.36
  ports in 2 out 2
  rate in 4 out 4
  latency 8
  pipelined
  protocol sync
  fn deemph cycles 600 in 160 out 160
}
)";

// ---------------------------------------------------------------------------
// JPEG encoder: the hierarchy case. 2D-DCT is two passes of 1D-DCTs, 1D-DCT
// calls an FFT, the FFT performs 32 complex multiplications; an IP exists at
// every level plus one for the zig-zag scan (whose asymmetric rates exclude
// the type-0 interface). IMP flattening generates the Table 3 ladder: C-MUL
// at low RG, then FFT / 1D-DCT, then the full 2D-DCT block.
// ---------------------------------------------------------------------------

constexpr std::string_view kJpegEncoderKl = R"(
module jpeg_encoder;

func cmul scall sw_cycles 42;

func fft scall {
  loop 32 {
    call cmul reads(xr) writes(yr);
    seg butterfly 12 reads(yr) writes(xr);
  }
  seg twiddle 216 reads(xr) writes(spec);
}

func dct1d scall {
  call fft reads(line) writes(spec1);
  seg post_rotate 300 reads(spec1) writes(coef1);
}

func dct2d scall {
  loop 16 {
    call dct1d reads(blk) writes(rowcoef);
  }
  seg transpose 900 reads(rowcoef) writes(coef2);
}

func zigzag scall sw_cycles 640;

func main {
  loop 1000 {
    call dct2d reads(block) writes(coefs);
    seg stats 2800 reads(block) writes(hist);    # independent: PC of dct2d
    call zigzag reads(coefs) writes(zz);
    seg entropy 1500 reads(zz) writes(bits);
  }
}
)";

constexpr std::string_view kJpegEncoderLib = R"(
ip IP1 {   # full 2D-DCT block; native rate 1: type-0 must slow its clock
  area 27
  power 1.8
  ports in 2 out 2
  rate in 1 out 1
  latency 40
  pipelined
  protocol sync
  fn dct2d cycles 2500 in 64 out 64
}
ip IP2 {   # 1D-DCT, 4 input ports: buffered interfaces only
  area 11
  power 0.7
  ports in 4 out 2
  rate in 1 out 2
  latency 16
  pipelined
  protocol sync
  fn dct1d cycles 260 in 16 out 16
}
ip IP3 {   # FFT core
  area 8
  power 0.95
  ports in 2 out 2
  rate in 4 out 4
  latency 24
  pipelined
  protocol sync
  fn fft cycles 420 in 64 out 64
}
ip IP4 {   # complex multiplier
  area 4
  power 1.3
  ports in 2 out 2
  rate in 4 out 4
  latency 2
  pipelined
  protocol sync
  fn cmul cycles 6 in 4 out 2
}
ip IP5 {   # zig-zag scanner, asymmetric rates: type-0 impossible
  area 5
  power 0.5
  ports in 2 out 2
  rate in 1 out 2
  latency 6
  pipelined
  protocol sync
  fn zigzag cycles 120 in 64 out 64
}
)";

// ---------------------------------------------------------------------------
// Fig. 9: three independent fir() calls; the IP is only ~1.7x faster than
// software, so beyond Problem 1's best (all three on the IP) lies a better
// point: one fir stays in the kernel as the parallel code of another's IP
// execution. Problem 2 finds it; Problem 1 cannot.
// ---------------------------------------------------------------------------

constexpr std::string_view kFig9Kl = R"(
module fig9;

func fir scall sw_cycles 10000;

func main {
  call fir reads(a) writes(x);
  call fir reads(b) writes(y);
  call fir reads(c) writes(z);
  seg combine 300 reads(x, y, z);
}
)";

constexpr std::string_view kFig9Lib = R"(
ip IP_FIR {
  area 10
  power 1.2
  ports in 2 out 2
  rate in 4 out 4
  latency 16
  pipelined
  protocol sync
  fn fir cycles 6000 in 64 out 64
}
)";

// ---------------------------------------------------------------------------
// Fig. 10: two execution paths share a common fir(). The dct()-path only
// meets its constraint when the common fir's *software* body overlaps the
// dct IP run; the other path has enough margin to leave that fir in
// software. Problem 1's same-function-same-implementation rule forbids the
// split; Problem 2 allows it.
// ---------------------------------------------------------------------------

constexpr std::string_view kFig10Kl = R"(
module fig10;

func fir scall sw_cycles 10000;
func dct scall sw_cycles 50000;
func iir scall sw_cycles 30000;

func main {
  if prob 0.5 {
    call dct reads(d) writes(dc);          # path P2
    seg dpost 150 reads(dc);
  } else {
    call fir reads(a) writes(x);           # path P1
    call fir reads(b) writes(y);
    call iir reads(x, y) writes(ir);
  }
  call fir reads(c) writes(z);             # the common s-call
  seg post 200 reads(z);
}
)";

constexpr std::string_view kFig10Lib = R"(
ip IP_FIR {
  area 10
  power 1.2
  ports in 2 out 2
  rate in 4 out 4
  latency 16
  pipelined
  protocol sync
  fn fir cycles 6000 in 64 out 64
}
ip IP_DCT {
  area 20
  power 2.4
  ports in 2 out 2
  rate in 4 out 4
  latency 24
  pipelined
  protocol sync
  fn dct cycles 30000 in 64 out 64
}
ip IP_IIR {
  area 12
  power 1.44
  ports in 2 out 2
  rate in 4 out 4
  latency 16
  pipelined
  protocol sync
  fn iir cycles 8000 in 64 out 64
}
)";


// ---------------------------------------------------------------------------
// ADPCM codec (extra workload): one frame = eight blocks of predict ->
// quantize -> pack -> reconstruct -> adapt. The predictor IP is a
// combinational MAC array (non-pipelined: transfers serialize with the
// computation), the quantizer pair shares a handshake-protocol M-IP, and the
// step-size adapter has a pipelined S-IP. Not part of the paper's
// evaluation; covers the model corners GSM/JPEG leave untouched.
// ---------------------------------------------------------------------------

constexpr std::string_view kAdpcmKl = R"(
module adpcm_codec;

func predictor     scall sw_cycles 4200;
func quant_adpcm   scall sw_cycles 2600;
func dequant_adpcm scall sw_cycles 2400;
func step_update   scall sw_cycles 1800;

func main {
  seg frame_in 300 writes(frame);
  loop 8 {
    call predictor reads(frame) writes(pred);
    call quant_adpcm reads(pred) writes(code);
    seg pack 900 reads(frame) writes(bits);          # independent of quant: PC
    call dequant_adpcm reads(code) writes(recon);
    call step_update reads(recon) writes(stepsz);
  }
  if prob 0.3 {
    call predictor reads(stepsz) writes(final1);     # voiced tail refinement
    seg tailA 400 reads(final1);
  } else {
    seg tailB 600 reads(stepsz);
  }
}
)";

constexpr std::string_view kAdpcmLib = R"(
ip PRED_ARRAY {   # combinational MAC array: NON-pipelined
  area 6
  power 0.9
  ports in 2 out 2
  rate in 4 out 4
  latency 30
  combinational
  protocol sync
  fn predictor cycles 900 in 24 out 24
}
ip PRED_PIPE {    # pipelined alternative, pricier
  area 14
  power 0.5
  ports in 2 out 2
  rate in 4 out 4
  latency 12
  pipelined
  protocol sync
  fn predictor cycles 700 in 24 out 24
}
ip QDQ_UNIT {     # handshake M-IP: quantizer + dequantizer
  area 5
  power 0.7
  ports in 2 out 2
  rate in 4 out 4
  latency 8
  pipelined
  protocol handshake
  fn quant_adpcm cycles 500 in 16 out 16
  fn dequant_adpcm cycles 450 in 16 out 16
}
ip STEP_IP {      # step-size adapter
  area 2
  power 0.3
  ports in 2 out 2
  rate in 4 out 4
  latency 6
  pipelined
  protocol sync
  fn step_update cycles 250 in 8 out 8
}
ip QUANT_FAST {   # stream-protocol fast quantizer (S-IP)
  area 7
  power 1.1
  ports in 4 out 2
  rate in 1 out 2
  latency 6
  pipelined
  protocol stream
  fn quant_adpcm cycles 180 in 16 out 16
}
)";

const std::map<std::string, std::pair<std::string_view, std::string_view>>&
registry() {
  static const std::map<std::string, std::pair<std::string_view, std::string_view>> r = {
      {"gsm_encoder", {kGsmEncoderKl, kGsmEncoderLib}},
      {"gsm_decoder", {kGsmDecoderKl, kGsmDecoderLib}},
      {"jpeg_encoder", {kJpegEncoderKl, kJpegEncoderLib}},
      {"fig9", {kFig9Kl, kFig9Lib}},
      {"fig10", {kFig10Kl, kFig10Lib}},
      {"adpcm_codec", {kAdpcmKl, kAdpcmLib}},
  };
  return r;
}

}  // namespace

Workload gsm_encoder() { return make("gsm_encoder", kGsmEncoderKl, kGsmEncoderLib); }
Workload gsm_decoder() { return make("gsm_decoder", kGsmDecoderKl, kGsmDecoderLib); }
Workload jpeg_encoder() { return make("jpeg_encoder", kJpegEncoderKl, kJpegEncoderLib); }
Workload fig9_case() { return make("fig9", kFig9Kl, kFig9Lib); }
Workload fig10_case() { return make("fig10", kFig10Kl, kFig10Lib); }
Workload adpcm_codec() { return make("adpcm_codec", kAdpcmKl, kAdpcmLib); }

std::string workload_source(const std::string& name) {
  auto it = registry().find(name);
  return it == registry().end() ? std::string{} : std::string(it->second.first);
}

}  // namespace partita::workloads

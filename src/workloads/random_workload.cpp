#include "workloads/random_workload.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "frontend/parser.hpp"
#include "iplib/loader.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace partita::workloads {

namespace {

struct Generator {
  const RandomWorkloadParams& p;
  support::Rng rng;
  std::ostringstream kl;
  int next_sym = 0;

  explicit Generator(const RandomWorkloadParams& params, std::uint64_t seed)
      : p(params), rng(seed) {}

  std::string fresh_sym() { return "v" + std::to_string(next_sym++); }

  std::string gen_kl() {
    kl << "module random_workload;\n\n";
    for (int f = 0; f < p.leaf_functions; ++f) {
      kl << "func kern" << f << " scall sw_cycles "
         << rng.uniform_int(p.min_leaf_cycles, p.max_leaf_cycles) << ";\n";
    }
    kl << "\nfunc main {\n";
    std::string live = fresh_sym();
    kl << "  seg init 100 writes(" << live << ");\n";

    int emitted = 0;
    emit_group(live, 1, emitted, p.call_sites);
    kl << "}\n";
    return kl.str();
  }

  /// Emits statements until `emitted` reaches `budget`; may wrap chunks in
  /// loops or conditionals. `live` is the symbol carrying the value chain;
  /// half the statements depend on it (serial), half are independent
  /// (parallel-code material).
  void emit_group(std::string& live, int depth, int& emitted, int budget) {
    while (emitted < budget) {
      const double dice = rng.uniform01();
      if (depth < 3 && dice < p.if_probability && budget - emitted >= 2) {
        kl << std::string(depth * 2, ' ') << "if prob "
           << (0.2 + 0.6 * rng.uniform01()) << " {\n";
        int inner_budget = emitted + static_cast<int>(rng.uniform_int(1, 2));
        emit_group(live, depth + 1, emitted, std::min(inner_budget, budget));
        kl << std::string(depth * 2, ' ') << "} else {\n";
        std::string else_live = live;
        kl << std::string((depth + 1) * 2, ' ') << "seg cold "
           << rng.uniform_int(50, 2000) << " reads(" << else_live << ");\n";
        kl << std::string(depth * 2, ' ') << "}\n";
      } else if (depth < 3 && dice < p.if_probability + 0.2 && budget - emitted >= 2) {
        kl << std::string(depth * 2, ' ') << "loop "
           << rng.uniform_int(2, p.max_loop_trip) << " {\n";
        int inner_budget = emitted + static_cast<int>(rng.uniform_int(1, 3));
        emit_group(live, depth + 1, emitted, std::min(inner_budget, budget));
        kl << std::string(depth * 2, ' ') << "}\n";
      } else {
        emit_leaf_stmt(live, depth, emitted);
      }
    }
  }

  void emit_leaf_stmt(std::string& live, int depth, int& emitted) {
    const std::string pad(depth * 2, ' ');
    if (rng.chance(0.75)) {
      const int f = static_cast<int>(rng.uniform_int(0, p.leaf_functions - 1));
      const std::string out = fresh_sym();
      if (rng.chance(0.5)) {
        // Serial: depends on the live chain.
        kl << pad << "call kern" << f << " reads(" << live << ") writes(" << out
           << ");\n";
        live = out;
      } else {
        // Independent call: PC material / SC-PC conflict material.
        kl << pad << "call kern" << f << " writes(" << out << ");\n";
      }
      ++emitted;
    } else {
      const std::string out = fresh_sym();
      if (rng.chance(0.5)) {
        kl << pad << "seg work " << rng.uniform_int(50, 5000) << " reads(" << live
           << ") writes(" << out << ");\n";
        live = out;
      } else {
        kl << pad << "seg side " << rng.uniform_int(50, 5000) << " writes(" << out
           << ");\n";
      }
    }
  }

  std::string gen_library() {
    std::ostringstream lib;
    for (int i = 0; i < p.ips; ++i) {
      const bool multi = rng.chance(p.multi_function_ip_probability) &&
                         p.leaf_functions >= 2;
      lib << "ip RIP" << i << " {\n";
      lib << "  area " << rng.uniform_int(1, 30) << "\n";
      const int in_ports = rng.chance(0.2) ? 4 : 2;
      lib << "  ports in " << in_ports << " out 2\n";
      const int in_rate = static_cast<int>(rng.uniform_int(1, 6));
      const int out_rate = rng.chance(0.8) ? in_rate : static_cast<int>(rng.uniform_int(1, 6));
      lib << "  rate in " << in_rate << " out " << out_rate << "\n";
      lib << "  latency " << rng.uniform_int(2, 40) << "\n";
      lib << (rng.chance(0.9) ? "  pipelined\n" : "  combinational\n");
      const char* proto = rng.chance(0.7) ? "sync" : (rng.chance(0.5) ? "handshake" : "stream");
      lib << "  protocol " << proto << "\n";
      const int nfuncs = multi ? 2 : 1;
      std::vector<int> picked;
      for (int k = 0; k < nfuncs; ++k) {
        int f;
        do {
          f = static_cast<int>(rng.uniform_int(0, p.leaf_functions - 1));
        } while (std::find(picked.begin(), picked.end(), f) != picked.end());
        picked.push_back(f);
        lib << "  fn kern" << f << " cycles " << rng.uniform_int(50, 20000) << " in "
            << rng.uniform_int(4, 128) << " out " << rng.uniform_int(2, 128) << "\n";
      }
      lib << "}\n";
    }
    return lib.str();
  }
};

}  // namespace

std::string random_workload_kl(const RandomWorkloadParams& params, std::uint64_t seed) {
  Generator gen(params, seed);
  return gen.gen_kl();
}

Workload random_workload(const RandomWorkloadParams& params, std::uint64_t seed) {
  Generator gen(params, seed);
  const std::string kl = gen.gen_kl();
  const std::string lib_text = gen.gen_library();

  support::DiagnosticEngine diags;
  std::optional<ir::Module> module = frontend::parse_module(kl, diags);
  if (!module) {
    std::fprintf(stderr, "random workload KL errors:\n%s\nsource:\n%s\n",
                 diags.render_all().c_str(), kl.c_str());
    // invariant: the generator emits KL itself; a parse failure means the
    // generator produced malformed text (a bug here, not bad user input).
    PARTITA_ASSERT_MSG(false, "random workload failed to parse");
  }
  std::optional<iplib::IpLibrary> lib = iplib::load_library(lib_text, diags);
  // invariant: generator-emitted library text, same contract as above.
  PARTITA_ASSERT_MSG(lib.has_value(), "random library failed to parse");
  return Workload{"random_" + std::to_string(seed), std::move(*module), std::move(*lib)};
}

// --- structured instance specs ---------------------------------------------

bool spec_valid(const InstanceSpec& spec) {
  if (spec.kernel_cycles.empty() || spec.sites.empty() || spec.ips.empty()) return false;
  const int kernels = static_cast<int>(spec.kernel_cycles.size());
  for (const std::int64_t c : spec.kernel_cycles) {
    if (c <= 0) return false;
  }
  std::map<int, std::pair<bool, bool>> arms;  // group -> (has then, has else)
  for (const SpecCallSite& s : spec.sites) {
    if (s.kernel < 0 || s.kernel >= kernels) return false;
    if (s.depth < 0 || s.loop_trip < 1) return false;
    if (s.branch_group >= 0) {
      auto& [has_then, has_else] = arms[s.branch_group];
      (s.then_arm ? has_then : has_else) = true;
      if (!(s.taken_prob > 0.0 && s.taken_prob < 1.0)) return false;
    }
  }
  for (const auto& [group, pair] : arms) {
    if (!pair.first || !pair.second) return false;  // one-armed group
  }
  bool some_function = false;
  for (const SpecIp& ip : spec.ips) {
    if (ip.functions.empty()) return false;
    if (ip.in_ports < 1 || ip.out_ports < 1 || ip.in_rate < 1 || ip.out_rate < 1 ||
        ip.latency < 0 || ip.area < 0 || ip.protocol < 0 || ip.protocol > 2) {
      return false;
    }
    for (const SpecIpFunction& fn : ip.functions) {
      if (fn.kernel < 0 || fn.kernel >= kernels) return false;
      if (fn.cycles < 0 || fn.n_in < 0 || fn.n_out < 0) return false;
      some_function = true;
    }
  }
  return some_function;
}

namespace {

/// Name of the function a site of (kernel, depth) calls: the kernel itself
/// for depth 0, else the top of the shared wrapper chain.
std::string spec_callee_name(int kernel, int depth) {
  if (depth <= 0) return "kern" + std::to_string(kernel);
  return "wrap" + std::to_string(kernel) + "_d" + std::to_string(depth);
}

}  // namespace

std::string spec_kl(const InstanceSpec& spec) {
  std::ostringstream kl;
  kl << "module " << spec.name << ";\n\n";
  for (std::size_t k = 0; k < spec.kernel_cycles.size(); ++k) {
    kl << "func kern" << k << " scall sw_cycles " << spec.kernel_cycles[k] << ";\n";
  }

  // Wrapper chains for hierarchy sites: wrapK_d1 calls kernK, wrapK_d2 calls
  // wrapK_d1, ... Pure single-call bodies, so a wrapper's software time
  // equals its callee's and IMP flattening is exercised without noise.
  std::set<std::pair<int, int>> wrappers;  // (kernel, depth)
  for (const SpecCallSite& s : spec.sites) {
    for (int d = 1; d <= s.depth; ++d) wrappers.insert({s.kernel, d});
  }
  for (const auto& [kernel, depth] : wrappers) {
    kl << "\nfunc " << spec_callee_name(kernel, depth) << " scall {\n"
       << "  call " << spec_callee_name(kernel, depth - 1) << " reads(a" << kernel
       << ") writes(b" << kernel << ");\n}\n";
  }

  kl << "\nfunc main {\n";
  int next_sym = 0;
  auto fresh = [&next_sym] { return "v" + std::to_string(next_sym++); };
  std::string live = fresh();
  kl << "  seg init 100 writes(" << live << ");\n";

  auto emit_site = [&](const SpecCallSite& s, int indent) {
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    if (s.pre_seg_cycles > 0) {
      kl << pad << "seg pc" << next_sym << " " << s.pre_seg_cycles << " writes("
         << fresh() << ");\n";
    }
    const std::string pad_in(
        static_cast<std::size_t>(s.loop_trip > 1 ? indent + 1 : indent) * 2, ' ');
    if (s.loop_trip > 1) kl << pad << "loop " << s.loop_trip << " {\n";
    const std::string out = fresh();
    kl << pad_in << "call " << spec_callee_name(s.kernel, s.depth);
    if (s.serial) {
      kl << " reads(" << live << ")";
      live = out;
    }
    kl << " writes(" << out << ");\n";
    if (s.loop_trip > 1) kl << pad << "}\n";
  };

  std::set<int> emitted_groups;
  for (std::size_t i = 0; i < spec.sites.size(); ++i) {
    const SpecCallSite& s = spec.sites[i];
    if (s.branch_group < 0) {
      emit_site(s, 1);
      continue;
    }
    if (!emitted_groups.insert(s.branch_group).second) continue;
    kl << "  if prob " << s.taken_prob << " {\n";
    for (const SpecCallSite& t : spec.sites) {
      if (t.branch_group == s.branch_group && t.then_arm) emit_site(t, 2);
    }
    kl << "  } else {\n";
    for (const SpecCallSite& t : spec.sites) {
      if (t.branch_group == s.branch_group && !t.then_arm) emit_site(t, 2);
    }
    kl << "  }\n";
  }
  kl << "}\n";
  return kl.str();
}

std::string spec_library(const InstanceSpec& spec) {
  static const char* kProtocols[] = {"sync", "handshake", "stream"};
  std::ostringstream lib;
  for (std::size_t i = 0; i < spec.ips.size(); ++i) {
    const SpecIp& ip = spec.ips[i];
    lib << "ip OIP" << i << " {\n";
    lib << "  area " << ip.area << "\n";
    lib << "  ports in " << ip.in_ports << " out " << ip.out_ports << "\n";
    lib << "  rate in " << ip.in_rate << " out " << ip.out_rate << "\n";
    lib << "  latency " << ip.latency << "\n";
    lib << (ip.pipelined ? "  pipelined\n" : "  combinational\n");
    lib << "  protocol " << kProtocols[ip.protocol] << "\n";
    for (const SpecIpFunction& fn : ip.functions) {
      lib << "  fn kern" << fn.kernel << " cycles " << fn.cycles << " in " << fn.n_in
          << " out " << fn.n_out << "\n";
    }
    lib << "}\n";
  }
  return lib.str();
}

Workload spec_workload(const InstanceSpec& spec) {
  PARTITA_ASSERT_MSG(spec_valid(spec), "spec_workload on an invalid spec");
  const std::string kl = spec_kl(spec);
  const std::string lib_text = spec_library(spec);
  support::DiagnosticEngine diags;
  std::optional<ir::Module> module = frontend::parse_module(kl, diags);
  if (!module) {
    std::fprintf(stderr, "instance spec KL errors:\n%s\nsource:\n%s\n",
                 diags.render_all().c_str(), kl.c_str());
    // invariant: spec_valid specs render to well-formed KL; a failure here is
    // a renderer bug, not bad user input.
    PARTITA_ASSERT_MSG(false, "instance spec failed to parse");
  }
  std::optional<iplib::IpLibrary> lib = iplib::load_library(lib_text, diags);
  // invariant: renderer-emitted library text, same contract as above.
  PARTITA_ASSERT_MSG(lib.has_value(), "instance spec library failed to parse");
  return Workload{spec.name, std::move(*module), std::move(*lib)};
}

InstanceSpec random_instance_spec(const InstanceGenParams& p, std::uint64_t seed) {
  PARTITA_ASSERT_MSG(p.scalls >= 1 && p.kernels >= 1 && p.ips >= 1,
                     "instance generator needs at least one site/kernel/IP");
  PARTITA_ASSERT_MSG(2 * p.branch_groups <= p.scalls,
                     "each branch group needs two dedicated sites");
  support::Rng rng(seed);
  InstanceSpec spec;
  spec.name = "oracle_rand_" + std::to_string(seed);

  for (int k = 0; k < p.kernels; ++k) {
    spec.kernel_cycles.push_back(rng.uniform_int(p.min_kernel_cycles, p.max_kernel_cycles));
  }

  // Sites: round-robin kernels (every kernel gets call sites) plus random
  // structure. Branch groups claim dedicated site slots, one per arm, chosen
  // from a shuffled index list so the conditionals land anywhere in main.
  std::vector<int> order(static_cast<std::size_t>(p.scalls));
  for (int i = 0; i < p.scalls; ++i) order[static_cast<std::size_t>(i)] = i;
  rng.shuffle(order);
  for (int i = 0; i < p.scalls; ++i) {
    SpecCallSite s;
    s.kernel = i % p.kernels;
    if (p.max_hierarchy_depth > 0 && rng.chance(p.hierarchy_probability)) {
      s.depth = static_cast<int>(rng.uniform_int(1, p.max_hierarchy_depth));
    }
    if (rng.chance(p.loop_probability)) {
      s.loop_trip = static_cast<int>(rng.uniform_int(2, std::max(2, p.max_loop_trip)));
    }
    s.serial = rng.chance(p.serial_probability);
    if (rng.chance(p.pc_seg_probability)) {
      s.pre_seg_cycles = rng.uniform_int(200, std::max<std::int64_t>(201, p.max_pc_seg_cycles));
    }
    spec.sites.push_back(s);
  }
  for (int g = 0; g < p.branch_groups; ++g) {
    const double prob = 0.2 + 0.6 * rng.uniform01();
    for (int arm = 0; arm < 2; ++arm) {
      SpecCallSite& s = spec.sites[static_cast<std::size_t>(order[static_cast<std::size_t>(2 * g + arm)])];
      s.branch_group = g;
      s.then_arm = arm == 0;
      s.taken_prob = prob;
    }
  }

  // IPs: ip j starts with kernel j % kernels (coverage), then gains extra
  // kernels with probability ip_sharing (drawn twice -- the density knob).
  for (int j = 0; j < p.ips; ++j) {
    SpecIp ip;
    ip.area = static_cast<double>(rng.uniform_int(2, 30));
    ip.in_ports = rng.chance(p.wide_port_probability) ? 4 : 2;
    ip.out_ports = 2;
    ip.in_rate = static_cast<int>(rng.uniform_int(1, 6));
    ip.out_rate = rng.chance(p.rate_mismatch_probability)
                      ? static_cast<int>(rng.uniform_int(1, 6))
                      : ip.in_rate;
    ip.latency = static_cast<int>(rng.uniform_int(2, 40));
    ip.pipelined = rng.chance(p.pipelined_probability);
    ip.protocol = rng.chance(p.nonsync_protocol_probability)
                      ? (rng.chance(0.5) ? 1 : 2)
                      : 0;
    std::vector<int> picked{j % p.kernels};
    for (int extra = 0; extra < 2; ++extra) {
      if (static_cast<int>(picked.size()) >= p.kernels) break;
      if (!rng.chance(p.ip_sharing)) continue;
      int k;
      do {
        k = static_cast<int>(rng.uniform_int(0, p.kernels - 1));
      } while (std::find(picked.begin(), picked.end(), k) != picked.end());
      picked.push_back(k);
    }
    for (int k : picked) {
      SpecIpFunction fn;
      fn.kernel = k;
      const std::int64_t sw = spec.kernel_cycles[static_cast<std::size_t>(k)];
      fn.cycles = rng.uniform_int(std::max<std::int64_t>(1, sw / 20), std::max<std::int64_t>(2, sw * 3 / 4));
      fn.n_in = rng.uniform_int(2, 64);
      fn.n_out = rng.uniform_int(2, 64);
      ip.functions.push_back(fn);
    }
    spec.ips.push_back(ip);
  }
  return spec;
}

}  // namespace partita::workloads

#include "workloads/random_workload.hpp"

#include <sstream>

#include "frontend/parser.hpp"
#include "iplib/loader.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace partita::workloads {

namespace {

struct Generator {
  const RandomWorkloadParams& p;
  support::Rng rng;
  std::ostringstream kl;
  int next_sym = 0;

  explicit Generator(const RandomWorkloadParams& params, std::uint64_t seed)
      : p(params), rng(seed) {}

  std::string fresh_sym() { return "v" + std::to_string(next_sym++); }

  std::string gen_kl() {
    kl << "module random_workload;\n\n";
    for (int f = 0; f < p.leaf_functions; ++f) {
      kl << "func kern" << f << " scall sw_cycles "
         << rng.uniform_int(p.min_leaf_cycles, p.max_leaf_cycles) << ";\n";
    }
    kl << "\nfunc main {\n";
    std::string live = fresh_sym();
    kl << "  seg init 100 writes(" << live << ");\n";

    int emitted = 0;
    emit_group(live, 1, emitted, p.call_sites);
    kl << "}\n";
    return kl.str();
  }

  /// Emits statements until `emitted` reaches `budget`; may wrap chunks in
  /// loops or conditionals. `live` is the symbol carrying the value chain;
  /// half the statements depend on it (serial), half are independent
  /// (parallel-code material).
  void emit_group(std::string& live, int depth, int& emitted, int budget) {
    while (emitted < budget) {
      const double dice = rng.uniform01();
      if (depth < 3 && dice < p.if_probability && budget - emitted >= 2) {
        kl << std::string(depth * 2, ' ') << "if prob "
           << (0.2 + 0.6 * rng.uniform01()) << " {\n";
        int inner_budget = emitted + static_cast<int>(rng.uniform_int(1, 2));
        emit_group(live, depth + 1, emitted, std::min(inner_budget, budget));
        kl << std::string(depth * 2, ' ') << "} else {\n";
        std::string else_live = live;
        kl << std::string((depth + 1) * 2, ' ') << "seg cold "
           << rng.uniform_int(50, 2000) << " reads(" << else_live << ");\n";
        kl << std::string(depth * 2, ' ') << "}\n";
      } else if (depth < 3 && dice < p.if_probability + 0.2 && budget - emitted >= 2) {
        kl << std::string(depth * 2, ' ') << "loop "
           << rng.uniform_int(2, p.max_loop_trip) << " {\n";
        int inner_budget = emitted + static_cast<int>(rng.uniform_int(1, 3));
        emit_group(live, depth + 1, emitted, std::min(inner_budget, budget));
        kl << std::string(depth * 2, ' ') << "}\n";
      } else {
        emit_leaf_stmt(live, depth, emitted);
      }
    }
  }

  void emit_leaf_stmt(std::string& live, int depth, int& emitted) {
    const std::string pad(depth * 2, ' ');
    if (rng.chance(0.75)) {
      const int f = static_cast<int>(rng.uniform_int(0, p.leaf_functions - 1));
      const std::string out = fresh_sym();
      if (rng.chance(0.5)) {
        // Serial: depends on the live chain.
        kl << pad << "call kern" << f << " reads(" << live << ") writes(" << out
           << ");\n";
        live = out;
      } else {
        // Independent call: PC material / SC-PC conflict material.
        kl << pad << "call kern" << f << " writes(" << out << ");\n";
      }
      ++emitted;
    } else {
      const std::string out = fresh_sym();
      if (rng.chance(0.5)) {
        kl << pad << "seg work " << rng.uniform_int(50, 5000) << " reads(" << live
           << ") writes(" << out << ");\n";
        live = out;
      } else {
        kl << pad << "seg side " << rng.uniform_int(50, 5000) << " writes(" << out
           << ");\n";
      }
    }
  }

  std::string gen_library() {
    std::ostringstream lib;
    for (int i = 0; i < p.ips; ++i) {
      const bool multi = rng.chance(p.multi_function_ip_probability) &&
                         p.leaf_functions >= 2;
      lib << "ip RIP" << i << " {\n";
      lib << "  area " << rng.uniform_int(1, 30) << "\n";
      const int in_ports = rng.chance(0.2) ? 4 : 2;
      lib << "  ports in " << in_ports << " out 2\n";
      const int in_rate = static_cast<int>(rng.uniform_int(1, 6));
      const int out_rate = rng.chance(0.8) ? in_rate : static_cast<int>(rng.uniform_int(1, 6));
      lib << "  rate in " << in_rate << " out " << out_rate << "\n";
      lib << "  latency " << rng.uniform_int(2, 40) << "\n";
      lib << (rng.chance(0.9) ? "  pipelined\n" : "  combinational\n");
      const char* proto = rng.chance(0.7) ? "sync" : (rng.chance(0.5) ? "handshake" : "stream");
      lib << "  protocol " << proto << "\n";
      const int nfuncs = multi ? 2 : 1;
      std::vector<int> picked;
      for (int k = 0; k < nfuncs; ++k) {
        int f;
        do {
          f = static_cast<int>(rng.uniform_int(0, p.leaf_functions - 1));
        } while (std::find(picked.begin(), picked.end(), f) != picked.end());
        picked.push_back(f);
        lib << "  fn kern" << f << " cycles " << rng.uniform_int(50, 20000) << " in "
            << rng.uniform_int(4, 128) << " out " << rng.uniform_int(2, 128) << "\n";
      }
      lib << "}\n";
    }
    return lib.str();
  }
};

}  // namespace

std::string random_workload_kl(const RandomWorkloadParams& params, std::uint64_t seed) {
  Generator gen(params, seed);
  return gen.gen_kl();
}

Workload random_workload(const RandomWorkloadParams& params, std::uint64_t seed) {
  Generator gen(params, seed);
  const std::string kl = gen.gen_kl();
  const std::string lib_text = gen.gen_library();

  support::DiagnosticEngine diags;
  std::optional<ir::Module> module = frontend::parse_module(kl, diags);
  if (!module) {
    std::fprintf(stderr, "random workload KL errors:\n%s\nsource:\n%s\n",
                 diags.render_all().c_str(), kl.c_str());
    // invariant: the generator emits KL itself; a parse failure means the
    // generator produced malformed text (a bug here, not bad user input).
    PARTITA_ASSERT_MSG(false, "random workload failed to parse");
  }
  std::optional<iplib::IpLibrary> lib = iplib::load_library(lib_text, diags);
  // invariant: generator-emitted library text, same contract as above.
  PARTITA_ASSERT_MSG(lib.has_value(), "random library failed to parse");
  return Workload{"random_" + std::to_string(seed), std::move(*module), std::move(*lib)};
}

}  // namespace partita::workloads

// MiniC lexer.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "support/diagnostics.hpp"

namespace partita::minic {

enum class McTok : std::uint8_t {
  kIdent,
  kInt,
  kFloat,     // only inside __prob(...)
  kKwInt,     // int
  kKwVoid,    // void
  kKwIf,
  kKwElse,
  kKwFor,
  kKwIn,
  kKwOut,
  kKwInOut,
  kKwScall,   // __scall
  kKwCycles,  // __cycles
  kKwProb,    // __prob
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kComma,
  kSemi,
  kAssign,  // =
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kAmp,
  kPipe,
  kCaret,
  kShl,  // <<
  kShr,  // >>
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,  // ==
  kNe,  // !=
  kEof,
};

std::string_view to_string(McTok t);

struct McToken {
  McTok kind = McTok::kEof;
  std::string_view text;
  std::int64_t int_value = 0;
  double float_value = 0;
  support::SourceLoc loc;
};

/// Tokenizes MiniC source. `//` and `/* */` comments are skipped. Errors go
/// to `diags`; the stream always ends with kEof.
std::vector<McToken> mc_lex(std::string_view source, support::DiagnosticEngine& diags);

}  // namespace partita::minic

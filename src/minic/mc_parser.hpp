// MiniC parser.
//
// Grammar (see mc_ast.hpp for the subset rationale):
//
//   program  := (global | function)*
//   global   := "int" IDENT ["[" INT "]"] ";"
//   function := ["__scall"] ["__cycles" "(" INT ")"] "void" IDENT
//               "(" [param ("," param)*] ")" (";" | block)
//   param    := ("in"|"out"|"inout") "int" IDENT ["[" "]"]
//   block    := "{" stmt* "}"
//   stmt     := local | assign | callstmt | ifstmt | forstmt | block
//   local    := "int" IDENT ["[" INT "]"] ";"
//   assign   := IDENT ["[" expr "]"] "=" expr ";"
//   callstmt := IDENT "(" [arg ("," arg)*] ")" ";"      arg := IDENT
//   ifstmt   := "if" "(" cond ")" block ["else" block]
//   cond     := "__prob" "(" NUMBER ")" | expr relop expr
//   forstmt  := "for" "(" IDENT "=" INT ";" IDENT "<" INT ";"
//               IDENT "=" IDENT "+" INT ")" block
//   expr     := standard precedence over | ^ & << >> + - * / % and unary -,
//               primaries: INT, IDENT, IDENT "[" expr "]", "(" expr ")"
#pragma once

#include <optional>

#include "minic/mc_ast.hpp"
#include "minic/mc_lexer.hpp"

namespace partita::minic {

/// Parses a MiniC translation unit. Returns nullopt plus diagnostics on any
/// error.
std::optional<Program> mc_parse(std::string_view source,
                                support::DiagnosticEngine& diags);

}  // namespace partita::minic

#include "minic/mc_codegen.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "minic/mc_parser.hpp"
#include "support/assert.hpp"

namespace partita::minic {

std::int64_t expr_cost(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kIntLiteral:
    case ExprKind::kVarRef:
    case ExprKind::kProb:
      return 0;
    case ExprKind::kIndex:
      return 1 + (e.index ? expr_cost(*e.index) : 0);  // AGU + load
    case ExprKind::kUnaryNeg:
      return 1 + (e.operand ? expr_cost(*e.operand) : 0);
    case ExprKind::kBinary:
      return 1 + (e.lhs ? expr_cost(*e.lhs) : 0) + (e.rhs ? expr_cost(*e.rhs) : 0);
  }
  return 0;
}

namespace {

/// Accumulates reads/writes symbol names from expressions.
void collect_reads(const Expr& e, std::set<std::string>& reads) {
  switch (e.kind) {
    case ExprKind::kIntLiteral:
    case ExprKind::kProb:
      break;
    case ExprKind::kVarRef:
      reads.insert(e.name);
      break;
    case ExprKind::kIndex:
      reads.insert(e.name);
      if (e.index) collect_reads(*e.index, reads);
      break;
    case ExprKind::kUnaryNeg:
      if (e.operand) collect_reads(*e.operand, reads);
      break;
    case ExprKind::kBinary:
      if (e.lhs) collect_reads(*e.lhs, reads);
      if (e.rhs) collect_reads(*e.rhs, reads);
      break;
  }
}

class Compiler {
 public:
  Compiler(const Program& prog, std::string module_name, support::DiagnosticEngine& diags)
      : prog_(prog), diags_(diags), module_(std::move(module_name)) {}

  std::optional<ir::Module> run() {
    // Pass 1: declare functions and build the signature table.
    for (const Function& fn : prog_.functions) {
      if (module_.find_function(fn.name).valid()) {
        diags_.error("duplicate function '" + fn.name + "'", fn.loc);
        return std::nullopt;
      }
      ir::Function& f = module_.create_function(fn.name);
      if (fn.is_scall) f.set_ip_mappable(true);
      if (!fn.has_body) f.set_declared_sw_cycles(fn.declared_cycles);
      signatures_[fn.name] = &fn;
    }
    const ir::FuncId entry = module_.find_function("main");
    if (!entry.valid()) {
      diags_.error("MiniC program needs a 'void main()'");
      return std::nullopt;
    }
    module_.set_entry(entry);

    // Pass 2: compile bodies.
    for (const Function& fn : prog_.functions) {
      if (!fn.has_body) continue;
      if (!compile_function(fn)) return std::nullopt;
    }
    if (diags_.has_errors()) return std::nullopt;
    return std::move(module_);
  }

 private:
  struct SegAccum {
    std::int64_t cycles = 0;
    std::set<std::string> reads, writes;
    bool empty() const { return cycles == 0 && reads.empty() && writes.empty(); }
  };

  bool compile_function(const Function& fn) {
    current_ = &module_.function(module_.find_function(fn.name));
    scope_.clear();
    for (const Global& g : prog_.globals) scope_.insert(g.name);
    for (const Param& p : fn.params) scope_.insert(p.name);

    std::vector<ir::StmtId> body;
    SegAccum acc;
    if (!compile_seq(fn.body, body, acc)) return false;
    flush_seg(acc, body);
    current_->body() = std::move(body);
    return true;
  }

  ir::SymbolId sym(const std::string& name) { return module_.intern_symbol(name); }

  void flush_seg(SegAccum& acc, std::vector<ir::StmtId>& out) {
    if (acc.empty()) return;
    ir::Stmt seg;
    seg.kind = ir::StmtKind::kSeg;
    seg.cycles = std::max<std::int64_t>(acc.cycles, 1);
    for (const std::string& r : acc.reads) seg.reads.push_back(sym(r));
    for (const std::string& w : acc.writes) seg.writes.push_back(sym(w));
    out.push_back(current_->add_stmt(std::move(seg)));
    acc = SegAccum{};
  }

  bool check_declared(const std::set<std::string>& names, support::SourceLoc loc) {
    for (const std::string& n : names) {
      if (!scope_.count(n)) {
        diags_.error("use of undeclared variable '" + n + "'", loc);
        return false;
      }
    }
    return true;
  }

  bool compile_seq(const std::vector<StmtPtr>& stmts, std::vector<ir::StmtId>& out,
                   SegAccum& acc) {
    for (const StmtPtr& sp : stmts) {
      if (!compile_stmt(*sp, out, acc)) return false;
    }
    return true;
  }

  bool compile_stmt(const Stmt& s, std::vector<ir::StmtId>& out, SegAccum& acc) {
    switch (s.kind) {
      case StmtKind::kLocalDecl:
        scope_.insert(s.decl_name);
        return true;

      case StmtKind::kBlock:
        return compile_seq(s.body, out, acc);

      case StmtKind::kAssign: {
        std::set<std::string> reads;
        if (s.value) collect_reads(*s.value, reads);
        if (s.target_index) collect_reads(*s.target_index, reads);
        if (!check_declared(reads, s.loc)) return false;
        if (!scope_.count(s.target)) {
          diags_.error("assignment to undeclared variable '" + s.target + "'", s.loc);
          return false;
        }
        acc.cycles += (s.value ? expr_cost(*s.value) : 0) +
                      (s.target_index ? 1 + expr_cost(*s.target_index) : 1);
        acc.reads.insert(reads.begin(), reads.end());
        acc.writes.insert(s.target);
        return true;
      }

      case StmtKind::kCall: {
        auto sig_it = signatures_.find(s.callee);
        if (sig_it == signatures_.end()) {
          diags_.error("call to unknown function '" + s.callee + "'", s.loc);
          return false;
        }
        const Function& callee = *sig_it->second;
        if (s.args.size() != callee.params.size()) {
          diags_.error("'" + s.callee + "' expects " +
                           std::to_string(callee.params.size()) + " arguments, got " +
                           std::to_string(s.args.size()),
                       s.loc);
          return false;
        }
        flush_seg(acc, out);

        ir::Stmt call;
        call.kind = ir::StmtKind::kCall;
        call.callee = module_.find_function(s.callee);
        for (std::size_t a = 0; a < s.args.size(); ++a) {
          const std::string& arg = s.args[a]->name;
          if (!scope_.count(arg)) {
            diags_.error("use of undeclared variable '" + arg + "'", s.args[a]->loc);
            return false;
          }
          const ParamDir dir = callee.params[a].dir;
          if (dir == ParamDir::kIn || dir == ParamDir::kInOut) {
            call.reads.push_back(sym(arg));
          }
          if (dir == ParamDir::kOut || dir == ParamDir::kInOut) {
            call.writes.push_back(sym(arg));
          }
        }
        const ir::StmtId id = current_->add_stmt(std::move(call));
        out.push_back(id);
        module_.register_call_site(current_->id(), id, module_.find_function(s.callee));
        return true;
      }

      case StmtKind::kIf: {
        // Condition evaluation cost joins the preceding segment.
        double prob = 0.5;
        if (s.condition) {
          if (s.condition->kind == ExprKind::kProb) {
            prob = s.condition->prob;
          } else {
            std::set<std::string> reads;
            collect_reads(*s.condition, reads);
            if (!check_declared(reads, s.loc)) return false;
            acc.cycles += expr_cost(*s.condition);
            acc.reads.insert(reads.begin(), reads.end());
          }
        }
        flush_seg(acc, out);

        ir::Stmt iff;
        iff.kind = ir::StmtKind::kIf;
        iff.taken_prob = prob;
        SegAccum then_acc, else_acc;
        if (!compile_seq(s.then_body, iff.then_stmts, then_acc)) return false;
        flush_into(then_acc, iff.then_stmts);
        if (!compile_seq(s.else_body, iff.else_stmts, else_acc)) return false;
        flush_into(else_acc, iff.else_stmts);
        out.push_back(current_->add_stmt(std::move(iff)));
        return true;
      }

      case StmtKind::kFor: {
        flush_seg(acc, out);
        const std::int64_t span = s.to - s.from;
        const std::int64_t trips = span <= 0 ? 0 : (span + s.step - 1) / s.step;
        if (trips <= 0) return true;  // statically empty loop: drop

        scope_.insert(s.loop_var);
        ir::Stmt loop;
        loop.kind = ir::StmtKind::kLoop;
        loop.trip_count = trips;
        SegAccum body_acc;
        // Per-iteration loop control: increment + compare on the loop var.
        body_acc.cycles += 2;
        body_acc.reads.insert(s.loop_var);
        body_acc.writes.insert(s.loop_var);
        if (!compile_seq(s.body, loop.body_stmts, body_acc)) return false;
        flush_into(body_acc, loop.body_stmts);
        out.push_back(current_->add_stmt(std::move(loop)));
        return true;
      }
    }
    return false;
  }

  /// flush_seg variant targeting a nested statement list.
  void flush_into(SegAccum& acc, std::vector<ir::StmtId>& list) { flush_seg(acc, list); }

  const Program& prog_;
  support::DiagnosticEngine& diags_;
  ir::Module module_;
  ir::Function* current_ = nullptr;
  std::set<std::string> scope_;
  std::map<std::string, const Function*> signatures_;
};

}  // namespace

std::optional<ir::Module> mc_compile(const Program& prog, std::string module_name,
                                     support::DiagnosticEngine& diags) {
  return Compiler(prog, std::move(module_name), diags).run();
}

std::optional<ir::Module> mc_compile_source(std::string_view source,
                                            std::string module_name,
                                            support::DiagnosticEngine& diags) {
  std::optional<Program> prog = mc_parse(source, diags);
  if (!prog) return std::nullopt;
  return mc_compile(*prog, std::move(module_name), diags);
}

}  // namespace partita::minic

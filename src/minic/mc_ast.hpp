// MiniC abstract syntax tree.
//
// MiniC is the C-subset frontend: the paper's flow starts from "the
// application program written in C", and this module lets the reproduction
// do the same for programs that fit the subset. The compiler
// (mc_codegen.hpp) derives everything KL declares by hand -- per-statement
// cycle estimates from the operation mix, reads/writes sets from variable
// accesses, loop trip counts from constant `for` bounds, and branch
// probabilities from `__prob()` annotations.
//
// Subset: `int` scalars and fixed-size arrays (globals and locals),
// `void` functions with `in`/`out`/`inout` parameters, assignments over
// +,-,*,/,%,&,|,^,<<,>> and unary -, array indexing, `for` loops with the
// canonical `(i = a; i < b; i = i + s)` shape, `if`/`else`, and calls.
// Function attributes: `__scall` marks an s-call candidate, `__cycles(N)`
// declares a profiled body-less leaf.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/diagnostics.hpp"

namespace partita::minic {

// --- expressions ---------------------------------------------------------

enum class BinOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kMod, kAnd, kOr, kXor, kShl, kShr,
  kLt, kLe, kGt, kGe, kEq, kNe,
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind : std::uint8_t {
  kIntLiteral,
  kVarRef,     // scalar variable
  kIndex,      // array[expr]
  kUnaryNeg,
  kBinary,
  kProb,       // __prob(p) -- only valid as an if-condition
};

struct Expr {
  ExprKind kind = ExprKind::kIntLiteral;
  support::SourceLoc loc;

  std::int64_t int_value = 0;   // kIntLiteral
  std::string name;             // kVarRef / kIndex (array name)
  ExprPtr index;                // kIndex
  ExprPtr operand;              // kUnaryNeg
  BinOp op = BinOp::kAdd;       // kBinary
  ExprPtr lhs, rhs;             // kBinary
  double prob = 0.5;            // kProb
};

// --- statements ----------------------------------------------------------

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind : std::uint8_t {
  kAssign,   // lvalue = expr;
  kCall,     // f(args);
  kIf,
  kFor,
  kBlock,
  kLocalDecl,
};

struct Stmt {
  StmtKind kind = StmtKind::kAssign;
  support::SourceLoc loc;

  // kAssign: target variable or array element.
  std::string target;
  ExprPtr target_index;  // non-null for array element
  ExprPtr value;

  // kCall
  std::string callee;
  std::vector<ExprPtr> args;  // restricted to variable / array names

  // kIf
  ExprPtr condition;
  std::vector<StmtPtr> then_body;
  std::vector<StmtPtr> else_body;

  // kFor: for (var = from; var < to; var = var + step) body
  std::string loop_var;
  std::int64_t from = 0, to = 0, step = 1;
  std::vector<StmtPtr> body;

  // kLocalDecl
  std::string decl_name;
  std::int64_t array_size = 0;  // 0 => scalar
};

// --- declarations ----------------------------------------------------------

enum class ParamDir : std::uint8_t { kIn, kOut, kInOut };

struct Param {
  ParamDir dir = ParamDir::kIn;
  std::string name;
  bool is_array = false;
};

struct Function {
  std::string name;
  bool is_scall = false;
  std::int64_t declared_cycles = 0;  // from __cycles(N); 0 = compute from body
  std::vector<Param> params;
  std::vector<StmtPtr> body;
  bool has_body = false;
  support::SourceLoc loc;
};

struct Global {
  std::string name;
  std::int64_t array_size = 0;  // 0 => scalar
};

struct Program {
  std::vector<Global> globals;
  std::vector<Function> functions;
};

}  // namespace partita::minic

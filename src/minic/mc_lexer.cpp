#include "minic/mc_lexer.hpp"

#include <cctype>
#include <map>

#include "support/strings.hpp"

namespace partita::minic {

std::string_view to_string(McTok t) {
  switch (t) {
    case McTok::kIdent: return "identifier";
    case McTok::kInt: return "integer";
    case McTok::kFloat: return "float";
    case McTok::kKwInt: return "'int'";
    case McTok::kKwVoid: return "'void'";
    case McTok::kKwIf: return "'if'";
    case McTok::kKwElse: return "'else'";
    case McTok::kKwFor: return "'for'";
    case McTok::kKwIn: return "'in'";
    case McTok::kKwOut: return "'out'";
    case McTok::kKwInOut: return "'inout'";
    case McTok::kKwScall: return "'__scall'";
    case McTok::kKwCycles: return "'__cycles'";
    case McTok::kKwProb: return "'__prob'";
    case McTok::kLParen: return "'('";
    case McTok::kRParen: return "')'";
    case McTok::kLBrace: return "'{'";
    case McTok::kRBrace: return "'}'";
    case McTok::kLBracket: return "'['";
    case McTok::kRBracket: return "']'";
    case McTok::kComma: return "','";
    case McTok::kSemi: return "';'";
    case McTok::kAssign: return "'='";
    case McTok::kPlus: return "'+'";
    case McTok::kMinus: return "'-'";
    case McTok::kStar: return "'*'";
    case McTok::kSlash: return "'/'";
    case McTok::kPercent: return "'%'";
    case McTok::kAmp: return "'&'";
    case McTok::kPipe: return "'|'";
    case McTok::kCaret: return "'^'";
    case McTok::kShl: return "'<<'";
    case McTok::kShr: return "'>>'";
    case McTok::kLt: return "'<'";
    case McTok::kLe: return "'<='";
    case McTok::kGt: return "'>'";
    case McTok::kGe: return "'>='";
    case McTok::kEq: return "'=='";
    case McTok::kNe: return "'!='";
    case McTok::kEof: return "end of input";
  }
  return "?";
}

namespace {

const std::map<std::string_view, McTok>& keywords() {
  static const std::map<std::string_view, McTok> kw = {
      {"int", McTok::kKwInt},       {"void", McTok::kKwVoid},
      {"if", McTok::kKwIf},         {"else", McTok::kKwElse},
      {"for", McTok::kKwFor},       {"in", McTok::kKwIn},
      {"out", McTok::kKwOut},       {"inout", McTok::kKwInOut},
      {"__scall", McTok::kKwScall}, {"__cycles", McTok::kKwCycles},
      {"__prob", McTok::kKwProb},
  };
  return kw;
}

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<McToken> mc_lex(std::string_view src, support::DiagnosticEngine& diags) {
  std::vector<McToken> out;
  std::uint32_t line = 1, col = 1;
  std::size_t i = 0;

  auto advance = [&](std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) {
      if (src[i + k] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    i += n;
  };
  auto loc = [&] { return support::SourceLoc{line, col}; };
  auto push = [&](McTok kind, std::size_t len) {
    McToken t;
    t.kind = kind;
    t.text = src.substr(i, len);
    t.loc = loc();
    out.push_back(t);
    advance(len);
  };

  while (i < src.size()) {
    const char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // comments
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      std::size_t n = 0;
      while (i + n < src.size() && src[i + n] != '\n') ++n;
      advance(n);
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      std::size_t n = 2;
      while (i + n + 1 < src.size() && !(src[i + n] == '*' && src[i + n + 1] == '/')) ++n;
      if (i + n + 1 >= src.size()) {
        diags.error("unterminated block comment", loc());
        advance(src.size() - i);
        continue;
      }
      advance(n + 2);
      continue;
    }

    if (ident_start(c)) {
      std::size_t n = 1;
      while (i + n < src.size() && ident_char(src[i + n])) ++n;
      const std::string_view word = src.substr(i, n);
      auto kw = keywords().find(word);
      push(kw != keywords().end() ? kw->second : McTok::kIdent, n);
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t n = 1;
      bool is_float = false;
      while (i + n < src.size() &&
             (std::isdigit(static_cast<unsigned char>(src[i + n])) || src[i + n] == '.')) {
        if (src[i + n] == '.') is_float = true;
        ++n;
      }
      McToken t;
      t.kind = is_float ? McTok::kFloat : McTok::kInt;
      t.text = src.substr(i, n);
      t.loc = loc();
      if (is_float) {
        if (!support::parse_double(t.text, t.float_value)) {
          diags.error("malformed float literal", t.loc);
        }
      } else if (!support::parse_int(t.text, t.int_value)) {
        diags.error("malformed integer literal", t.loc);
      }
      out.push_back(t);
      advance(n);
      continue;
    }

    auto two = [&](char second) {
      return i + 1 < src.size() && src[i + 1] == second;
    };
    switch (c) {
      case '(': push(McTok::kLParen, 1); continue;
      case ')': push(McTok::kRParen, 1); continue;
      case '{': push(McTok::kLBrace, 1); continue;
      case '}': push(McTok::kRBrace, 1); continue;
      case '[': push(McTok::kLBracket, 1); continue;
      case ']': push(McTok::kRBracket, 1); continue;
      case ',': push(McTok::kComma, 1); continue;
      case ';': push(McTok::kSemi, 1); continue;
      case '+': push(McTok::kPlus, 1); continue;
      case '-': push(McTok::kMinus, 1); continue;
      case '*': push(McTok::kStar, 1); continue;
      case '/': push(McTok::kSlash, 1); continue;
      case '%': push(McTok::kPercent, 1); continue;
      case '&': push(McTok::kAmp, 1); continue;
      case '|': push(McTok::kPipe, 1); continue;
      case '^': push(McTok::kCaret, 1); continue;
      case '<':
        if (two('<')) push(McTok::kShl, 2);
        else if (two('=')) push(McTok::kLe, 2);
        else push(McTok::kLt, 1);
        continue;
      case '>':
        if (two('>')) push(McTok::kShr, 2);
        else if (two('=')) push(McTok::kGe, 2);
        else push(McTok::kGt, 1);
        continue;
      case '=':
        if (two('=')) push(McTok::kEq, 2);
        else push(McTok::kAssign, 1);
        continue;
      case '!':
        if (two('=')) {
          push(McTok::kNe, 2);
          continue;
        }
        break;
      default:
        break;
    }
    diags.error(std::string("unexpected character '") + c + "'", loc());
    advance(1);
  }

  McToken eof;
  eof.kind = McTok::kEof;
  eof.loc = loc();
  out.push_back(eof);
  return out;
}

}  // namespace partita::minic

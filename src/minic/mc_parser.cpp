#include "minic/mc_parser.hpp"

namespace partita::minic {

namespace {

class Parser {
 public:
  Parser(std::vector<McToken> toks, support::DiagnosticEngine& diags)
      : toks_(std::move(toks)), diags_(diags) {}

  std::optional<Program> run() {
    Program prog;
    while (!at(McTok::kEof)) {
      if (at(McTok::kKwInt)) {
        // global variable
        next();
        Global g;
        if (!parse_var_tail(g.name, g.array_size)) return std::nullopt;
        prog.globals.push_back(std::move(g));
      } else if (at(McTok::kKwScall) || at(McTok::kKwCycles) || at(McTok::kKwVoid)) {
        Function fn;
        if (!parse_function(fn)) return std::nullopt;
        prog.functions.push_back(std::move(fn));
      } else {
        error("expected a global declaration or function");
        return std::nullopt;
      }
    }
    return prog;
  }

 private:
  // --- token plumbing ------------------------------------------------------

  const McToken& cur() const { return toks_[pos_]; }
  const McToken& next() { return toks_[pos_++]; }
  bool at(McTok k) const { return cur().kind == k; }
  bool accept(McTok k) {
    if (!at(k)) return false;
    next();
    return true;
  }
  bool expect(McTok k) {
    if (accept(k)) return true;
    error("expected " + std::string(to_string(k)) + ", found " +
          std::string(to_string(cur().kind)));
    return false;
  }
  void error(std::string msg) { diags_.error(std::move(msg), cur().loc); }

  // --- declarations ---------------------------------------------------------

  /// After 'int': NAME [ '[' INT ']' ] ';'
  bool parse_var_tail(std::string& name, std::int64_t& array_size) {
    if (!at(McTok::kIdent)) {
      error("expected variable name");
      return false;
    }
    name = std::string(next().text);
    array_size = 0;
    if (accept(McTok::kLBracket)) {
      if (!at(McTok::kInt)) {
        error("expected constant array size");
        return false;
      }
      array_size = next().int_value;
      if (array_size < 1) {
        error("array size must be positive");
        return false;
      }
      if (!expect(McTok::kRBracket)) return false;
    }
    return expect(McTok::kSemi);
  }

  bool parse_function(Function& fn) {
    fn.loc = cur().loc;
    if (accept(McTok::kKwScall)) fn.is_scall = true;
    if (accept(McTok::kKwCycles)) {
      if (!expect(McTok::kLParen)) return false;
      if (!at(McTok::kInt)) {
        error("expected cycle count in __cycles(...)");
        return false;
      }
      fn.declared_cycles = next().int_value;
      if (!expect(McTok::kRParen)) return false;
    }
    if (!expect(McTok::kKwVoid)) return false;
    if (!at(McTok::kIdent)) {
      error("expected function name");
      return false;
    }
    fn.name = std::string(next().text);
    if (!expect(McTok::kLParen)) return false;
    if (!at(McTok::kRParen)) {
      do {
        Param p;
        if (accept(McTok::kKwIn)) p.dir = ParamDir::kIn;
        else if (accept(McTok::kKwOut)) p.dir = ParamDir::kOut;
        else if (accept(McTok::kKwInOut)) p.dir = ParamDir::kInOut;
        else {
          error("expected parameter direction (in/out/inout)");
          return false;
        }
        if (!expect(McTok::kKwInt)) return false;
        if (!at(McTok::kIdent)) {
          error("expected parameter name");
          return false;
        }
        p.name = std::string(next().text);
        if (accept(McTok::kLBracket)) {
          if (!expect(McTok::kRBracket)) return false;
          p.is_array = true;
        }
        fn.params.push_back(std::move(p));
      } while (accept(McTok::kComma));
    }
    if (!expect(McTok::kRParen)) return false;

    if (accept(McTok::kSemi)) {
      fn.has_body = false;
      if (fn.declared_cycles <= 0) {
        diags_.error("prototype '" + fn.name + "' needs __cycles(N)", fn.loc);
        return false;
      }
      return true;
    }
    fn.has_body = true;
    return parse_block(fn.body);
  }

  // --- statements -----------------------------------------------------------

  bool parse_block(std::vector<StmtPtr>& out) {
    if (!expect(McTok::kLBrace)) return false;
    while (!at(McTok::kRBrace)) {
      if (at(McTok::kEof)) {
        error("unexpected end of input inside '{...}'");
        return false;
      }
      StmtPtr s;
      if (!parse_stmt(s)) return false;
      out.push_back(std::move(s));
    }
    next();  // '}'
    return true;
  }

  bool parse_stmt(StmtPtr& out) {
    out = std::make_unique<Stmt>();
    out->loc = cur().loc;

    if (at(McTok::kKwInt)) {  // local declaration
      next();
      out->kind = StmtKind::kLocalDecl;
      return parse_var_tail(out->decl_name, out->array_size);
    }
    if (at(McTok::kKwIf)) return parse_if(*out);
    if (at(McTok::kKwFor)) return parse_for(*out);
    if (at(McTok::kLBrace)) {
      out->kind = StmtKind::kBlock;
      return parse_block(out->body);
    }

    // assignment or call -- both start with an identifier.
    if (!at(McTok::kIdent)) {
      error("expected a statement");
      return false;
    }
    const std::string name(next().text);
    if (at(McTok::kLParen)) {  // call
      next();
      out->kind = StmtKind::kCall;
      out->callee = name;
      if (!at(McTok::kRParen)) {
        do {
          if (!at(McTok::kIdent)) {
            error("call arguments must be variable names");
            return false;
          }
          auto arg = std::make_unique<Expr>();
          arg->kind = ExprKind::kVarRef;
          arg->loc = cur().loc;
          arg->name = std::string(next().text);
          out->args.push_back(std::move(arg));
        } while (accept(McTok::kComma));
      }
      if (!expect(McTok::kRParen)) return false;
      return expect(McTok::kSemi);
    }

    // assignment
    out->kind = StmtKind::kAssign;
    out->target = name;
    if (accept(McTok::kLBracket)) {
      if (!parse_expr(out->target_index)) return false;
      if (!expect(McTok::kRBracket)) return false;
    }
    if (!expect(McTok::kAssign)) return false;
    if (!parse_expr(out->value)) return false;
    return expect(McTok::kSemi);
  }

  bool parse_if(Stmt& s) {
    next();  // 'if'
    s.kind = StmtKind::kIf;
    if (!expect(McTok::kLParen)) return false;
    if (at(McTok::kKwProb)) {
      next();
      if (!expect(McTok::kLParen)) return false;
      auto prob = std::make_unique<Expr>();
      prob->kind = ExprKind::kProb;
      prob->loc = cur().loc;
      if (at(McTok::kFloat)) prob->prob = next().float_value;
      else if (at(McTok::kInt)) prob->prob = static_cast<double>(next().int_value);
      else {
        error("expected probability in __prob(...)");
        return false;
      }
      if (prob->prob < 0.0 || prob->prob > 1.0) {
        error("probability must be within [0,1]");
        return false;
      }
      if (!expect(McTok::kRParen)) return false;
      s.condition = std::move(prob);
    } else {
      ExprPtr lhs;
      if (!parse_expr(lhs)) return false;
      BinOp rel;
      if (accept(McTok::kLt)) rel = BinOp::kLt;
      else if (accept(McTok::kLe)) rel = BinOp::kLe;
      else if (accept(McTok::kGt)) rel = BinOp::kGt;
      else if (accept(McTok::kGe)) rel = BinOp::kGe;
      else if (accept(McTok::kEq)) rel = BinOp::kEq;
      else if (accept(McTok::kNe)) rel = BinOp::kNe;
      else {
        error("expected a comparison in if-condition");
        return false;
      }
      ExprPtr rhs;
      if (!parse_expr(rhs)) return false;
      auto cond = std::make_unique<Expr>();
      cond->kind = ExprKind::kBinary;
      cond->op = rel;
      cond->lhs = std::move(lhs);
      cond->rhs = std::move(rhs);
      s.condition = std::move(cond);
    }
    if (!expect(McTok::kRParen)) return false;
    if (!parse_block(s.then_body)) return false;
    if (accept(McTok::kKwElse)) {
      if (!parse_block(s.else_body)) return false;
    }
    return true;
  }

  bool parse_for(Stmt& s) {
    next();  // 'for'
    s.kind = StmtKind::kFor;
    if (!expect(McTok::kLParen)) return false;
    if (!at(McTok::kIdent)) {
      error("expected loop variable");
      return false;
    }
    s.loop_var = std::string(next().text);
    if (!expect(McTok::kAssign)) return false;
    std::int64_t sign = accept(McTok::kMinus) ? -1 : 1;
    if (!at(McTok::kInt)) {
      error("loop bounds must be integer constants");
      return false;
    }
    s.from = sign * next().int_value;
    if (!expect(McTok::kSemi)) return false;
    if (!at(McTok::kIdent) || std::string(cur().text) != s.loop_var) {
      error("loop condition must test the loop variable");
      return false;
    }
    next();
    if (!expect(McTok::kLt)) return false;
    if (!at(McTok::kInt)) {
      error("loop bounds must be integer constants");
      return false;
    }
    s.to = next().int_value;
    if (!expect(McTok::kSemi)) return false;
    // var = var + step
    if (!at(McTok::kIdent) || std::string(cur().text) != s.loop_var) {
      error("loop increment must assign the loop variable");
      return false;
    }
    next();
    if (!expect(McTok::kAssign)) return false;
    if (!at(McTok::kIdent) || std::string(cur().text) != s.loop_var) {
      error("loop increment must be 'i = i + step'");
      return false;
    }
    next();
    if (!expect(McTok::kPlus)) return false;
    if (!at(McTok::kInt)) {
      error("loop step must be an integer constant");
      return false;
    }
    s.step = next().int_value;
    if (s.step < 1) {
      error("loop step must be positive");
      return false;
    }
    if (!expect(McTok::kRParen)) return false;
    return parse_block(s.body);
  }

  // --- expressions ------------------------------------------------------------
  // precedence (low to high): | , ^ , & , << >> , + - , * / %

  bool parse_expr(ExprPtr& out) { return parse_or(out); }

  bool parse_binary_level(ExprPtr& out, bool (Parser::*sub)(ExprPtr&),
                          std::initializer_list<std::pair<McTok, BinOp>> ops) {
    if (!(this->*sub)(out)) return false;
    while (true) {
      bool matched = false;
      for (const auto& [tok, op] : ops) {
        if (at(tok)) {
          next();
          ExprPtr rhs;
          if (!(this->*sub)(rhs)) return false;
          auto node = std::make_unique<Expr>();
          node->kind = ExprKind::kBinary;
          node->op = op;
          node->lhs = std::move(out);
          node->rhs = std::move(rhs);
          out = std::move(node);
          matched = true;
          break;
        }
      }
      if (!matched) return true;
    }
  }

  bool parse_or(ExprPtr& out) {
    return parse_binary_level(out, &Parser::parse_xor, {{McTok::kPipe, BinOp::kOr}});
  }
  bool parse_xor(ExprPtr& out) {
    return parse_binary_level(out, &Parser::parse_and, {{McTok::kCaret, BinOp::kXor}});
  }
  bool parse_and(ExprPtr& out) {
    return parse_binary_level(out, &Parser::parse_shift, {{McTok::kAmp, BinOp::kAnd}});
  }
  bool parse_shift(ExprPtr& out) {
    return parse_binary_level(out, &Parser::parse_additive,
                              {{McTok::kShl, BinOp::kShl}, {McTok::kShr, BinOp::kShr}});
  }
  bool parse_additive(ExprPtr& out) {
    return parse_binary_level(out, &Parser::parse_multiplicative,
                              {{McTok::kPlus, BinOp::kAdd}, {McTok::kMinus, BinOp::kSub}});
  }
  bool parse_multiplicative(ExprPtr& out) {
    return parse_binary_level(out, &Parser::parse_unary,
                              {{McTok::kStar, BinOp::kMul},
                               {McTok::kSlash, BinOp::kDiv},
                               {McTok::kPercent, BinOp::kMod}});
  }

  bool parse_unary(ExprPtr& out) {
    if (accept(McTok::kMinus)) {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kUnaryNeg;
      node->loc = cur().loc;
      if (!parse_unary(node->operand)) return false;
      out = std::move(node);
      return true;
    }
    return parse_primary(out);
  }

  bool parse_primary(ExprPtr& out) {
    out = std::make_unique<Expr>();
    out->loc = cur().loc;
    if (at(McTok::kInt)) {
      out->kind = ExprKind::kIntLiteral;
      out->int_value = next().int_value;
      return true;
    }
    if (at(McTok::kIdent)) {
      out->name = std::string(next().text);
      if (accept(McTok::kLBracket)) {
        out->kind = ExprKind::kIndex;
        if (!parse_expr(out->index)) return false;
        return expect(McTok::kRBracket);
      }
      out->kind = ExprKind::kVarRef;
      return true;
    }
    if (accept(McTok::kLParen)) {
      if (!parse_expr(out)) return false;
      return expect(McTok::kRParen);
    }
    error("expected an expression");
    return false;
  }

  std::vector<McToken> toks_;
  support::DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Program> mc_parse(std::string_view source,
                                support::DiagnosticEngine& diags) {
  std::vector<McToken> toks = mc_lex(source, diags);
  if (diags.has_errors()) return std::nullopt;
  return Parser(std::move(toks), diags).run();
}

}  // namespace partita::minic

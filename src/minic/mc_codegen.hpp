// MiniC -> statement-IR compilation.
//
// What Partita's real front end did for C, this does for the MiniC subset:
//
//  * straight-line runs of assignments compile into one `seg` whose cycle
//    count is an operation-mix estimate (loads/stores and each ALU op cost
//    one cycle -- the single-cycle MOP model of the target kernel) and whose
//    reads/writes sets are derived from the variables the expressions touch;
//  * `for` loops with constant bounds become counted Loop statements (plus a
//    2-cycle per-iteration control seg);
//  * `if` becomes a two-armed conditional; `__prob(p)` conditions set the
//    profile probability, data conditions default to 0.5;
//  * calls become call statements whose reads/writes follow the callee's
//    `in`/`out`/`inout` parameter directions -- this is where the dependence
//    information that drives parallel-code extraction comes from;
//  * `__scall` functions are marked IP-mappable; `__cycles(N)` prototypes
//    become declared-cycle leaves.
//
// The result verifies under ir::verify_module and feeds the ordinary Flow.
#pragma once

#include <optional>
#include <string>

#include "ir/function.hpp"
#include "minic/mc_ast.hpp"

namespace partita::minic {

/// Cycle estimate of evaluating an expression (loads + ALU ops).
std::int64_t expr_cost(const Expr& e);

/// Compiles a parsed program. Returns nullopt plus diagnostics on semantic
/// errors (unknown callee, undeclared variable, missing main, bad arity).
std::optional<ir::Module> mc_compile(const Program& prog, std::string module_name,
                                     support::DiagnosticEngine& diags);

/// Convenience: parse + compile in one step.
std::optional<ir::Module> mc_compile_source(std::string_view source,
                                            std::string module_name,
                                            support::DiagnosticEngine& diags);

}  // namespace partita::minic

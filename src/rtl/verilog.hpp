// Verilog-2001 emission for the generated hardware.
//
// Section 2: "After generating instructions we start to generate hardware
// modules required... the corresponding IP's are integrated with appropriate
// interfaces. Other necessary hardware modules such as the decoding unit and
// the fetch unit are also synthesized." This module renders those pieces as
// readable Verilog:
//
//  * emit_controller()  -- the type-2/3 in/out-controller FSM (state
//    register, counted loops, DMA/buffer strobes, protocol-transformer
//    hand-off signals);
//  * emit_urom()        -- the optimized two-level micro-store: a pointer
//    ROM per instruction plus the shared nano-store, as case statements;
//  * emit_decoder()     -- the instruction decoder for the Huffman opcode
//    table (priority casez over the instruction register).
//
// The output is structural/behavioral RTL meant for inspection and
// simulation, mirroring what Partita's back end would hand to synthesis; no
// vendor flow is assumed.
#pragma once

#include <string>

#include "iface/fsm.hpp"
#include "ucode/isa.hpp"
#include "ucode/urom.hpp"

namespace partita::rtl {

/// Sanitizes an arbitrary name into a Verilog identifier.
std::string sanitize_identifier(std::string_view name);

/// Verilog module for one hardware interface controller.
/// `module_name` must be a valid identifier (see sanitize_identifier).
std::string emit_controller(const iface::ControllerFsm& fsm, std::string module_name);

/// Verilog for the optimized micro-store: nano-store ROM plus per-sequence
/// pointer ROMs. The Urom must have been optimize()d.
std::string emit_urom(const ucode::Urom& urom, std::string module_name);

/// Verilog instruction decoder for an encoded InstructionSet: a casez
/// priority decode of the (variable-length, left-aligned) opcode register
/// into a one-hot select bus.
std::string emit_decoder(const ucode::InstructionSet& isa, std::string module_name);

}  // namespace partita::rtl

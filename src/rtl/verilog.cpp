#include "rtl/verilog.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

#include "support/assert.hpp"

namespace partita::rtl {

namespace {

int bits_for_count(std::size_t n) {
  int bits = 1;
  while ((std::size_t{1} << bits) < n) ++bits;
  return bits;
}

/// Strobe wire name for an interface micro-op.
std::string strobe_name(iface::IfOp op) {
  std::string s = "do_" + std::string(to_string(op));
  std::replace(s.begin(), s.end(), '+', '_');
  return s;
}

std::string bin(std::uint32_t value, int bits) {
  std::string out;
  for (int b = bits - 1; b >= 0; --b) out += ((value >> b) & 1) ? '1' : '0';
  return out;
}

}  // namespace

std::string sanitize_identifier(std::string_view name) {
  std::string out;
  for (char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) out = "m_" + out;
  return out;
}

std::string emit_controller(const iface::ControllerFsm& fsm, std::string module_name) {
  const auto& states = fsm.states();
  const int state_bits = bits_for_count(states.size() + 1);  // + accept
  const std::uint32_t accept = fsm.accept_state();

  // Collect the distinct strobes this controller asserts.
  std::vector<iface::IfOp> strobes;
  for (const iface::FsmState& st : states) {
    for (iface::IfOp op : st.ops) {
      if (std::find(strobes.begin(), strobes.end(), op) == strobes.end()) {
        strobes.push_back(op);
      }
    }
  }

  std::ostringstream os;
  os << "// Auto-generated in/out-controller (" << states.size() << " states, "
     << fsm.counter_count() << " loop counters)\n";
  os << "module " << module_name << " (\n";
  os << "  input  wire clk,\n";
  os << "  input  wire rst_n,\n";
  os << "  input  wire start,\n";
  os << "  output reg  done";
  for (iface::IfOp op : strobes) {
    os << ",\n  output reg  " << strobe_name(op);
  }
  os << "\n);\n\n";

  os << "  localparam STATE_BITS = " << state_bits << ";\n";
  for (std::size_t i = 0; i < states.size(); ++i) {
    os << "  localparam [STATE_BITS-1:0] S" << i << " = " << state_bits << "'d" << i
       << ";\n";
  }
  os << "  localparam [STATE_BITS-1:0] S_DONE = " << state_bits << "'d" << accept
     << ";\n\n";
  os << "  reg [STATE_BITS-1:0] state;\n";
  for (std::size_t c = 0; c < fsm.counter_count(); ++c) {
    os << "  reg [15:0] cnt" << c << ";\n";
  }
  os << '\n';

  // Counter load values come from the instantiating wrapper via parameters.
  for (std::size_t c = 0; c < fsm.counter_count(); ++c) {
    os << "  parameter CNT" << c << "_INIT = 16'd0;\n";
  }
  os << '\n';

  os << "  always @(posedge clk or negedge rst_n) begin\n";
  os << "    if (!rst_n) begin\n";
  os << "      state <= S_DONE;\n      done  <= 1'b1;\n";
  os << "    end else if (start && state == S_DONE) begin\n";
  os << "      state <= S0;\n      done  <= 1'b0;\n";
  for (std::size_t c = 0; c < fsm.counter_count(); ++c) {
    os << "      cnt" << c << " <= CNT" << c << "_INIT;\n";
  }
  os << "    end else begin\n";
  os << "      case (state)\n";

  // Map loop-tail states to their counters.
  std::map<std::uint32_t, std::size_t> tail_counter;
  {
    std::size_t next_counter = 0;
    for (const iface::FsmState& st : states) {
      if (st.loop_tail) tail_counter[st.id] = next_counter++;
    }
  }

  for (const iface::FsmState& st : states) {
    os << "        S" << st.id << ": ";
    const std::string next = st.next == accept ? std::string("S_DONE")
                                               : "S" + std::to_string(st.next);
    if (st.loop_tail) {
      const std::size_t c = tail_counter.at(st.id);
      os << "begin\n";
      os << "          cnt" << c << " <= cnt" << c << " - 16'd1;\n";
      os << "          if (cnt" << c << " != 16'd1) state <= S" << st.loop_target
         << "; else state <= " << next << ";\n";
      os << "        end\n";
    } else {
      os << "state <= " << next << ";\n";
    }
  }
  os << "        S_DONE: done <= 1'b1;\n";
  os << "        default: state <= S_DONE;\n";
  os << "      endcase\n";
  os << "    end\n";
  os << "  end\n\n";

  // Moore strobes.
  os << "  always @(*) begin\n";
  for (iface::IfOp op : strobes) {
    os << "    " << strobe_name(op) << " = 1'b0;\n";
  }
  os << "    case (state)\n";
  for (const iface::FsmState& st : states) {
    if (st.ops.empty()) continue;
    os << "      S" << st.id << ": begin";
    for (iface::IfOp op : st.ops) os << ' ' << strobe_name(op) << " = 1'b1;";
    os << " end\n";
  }
  os << "      default: ;\n";
  os << "    endcase\n";
  os << "  end\n\n";
  os << "endmodule\n";
  return os.str();
}

std::string emit_urom(const ucode::Urom& urom, std::string module_name) {
  PARTITA_ASSERT_MSG(urom.optimized(), "emit_urom needs an optimized Urom");
  const auto& nano = urom.nano_store();
  const int ptr_bits = bits_for_count(std::max<std::size_t>(nano.size(), 2));

  // Flatten all pointer rows into one micro-store with per-sequence bases.
  std::vector<std::uint32_t> micro;
  std::vector<std::pair<std::string, std::uint32_t>> bases;
  for (std::size_t s = 0; s < urom.sequence_count(); ++s) {
    bases.emplace_back(urom.sequence_name(s), static_cast<std::uint32_t>(micro.size()));
    const auto& row = urom.pointer_row(s);
    micro.insert(micro.end(), row.begin(), row.end());
  }
  const int addr_bits = bits_for_count(std::max<std::size_t>(micro.size(), 2));

  std::ostringstream os;
  os << "// Auto-generated two-level micro-store: " << micro.size()
     << " micro words -> " << nano.size() << " nano words\n";
  os << "module " << module_name << " (\n";
  os << "  input  wire [" << addr_bits - 1 << ":0] uaddr,\n";
  os << "  output reg  [" << ptr_bits - 1 << ":0] nano_sel\n";
  os << ");\n\n";
  for (const auto& [name, base] : bases) {
    os << "  // " << sanitize_identifier(name) << " starts at " << base << '\n';
  }
  os << "\n  always @(*) begin\n    case (uaddr)\n";
  for (std::size_t a = 0; a < micro.size(); ++a) {
    os << "      " << addr_bits << "'d" << a << ": nano_sel = " << ptr_bits << "'d"
       << micro[a] << ";\n";
  }
  os << "      default: nano_sel = " << ptr_bits << "'d0;\n";
  os << "    endcase\n  end\n\n";

  os << "  // nano-store contents (field signatures):\n";
  for (std::size_t n = 0; n < nano.size(); ++n) {
    os << "  //   " << n << ": " << nano[n].signature << '\n';
  }
  os << "endmodule\n";
  return os.str();
}

std::string emit_decoder(const ucode::InstructionSet& isa, std::string module_name) {
  int max_bits = 1;
  for (const ucode::Instruction& i : isa.instructions()) {
    PARTITA_ASSERT_MSG(i.opcode_bits > 0, "encode() the instruction set first");
    max_bits = std::max(max_bits, i.opcode_bits);
  }
  const std::size_t n = isa.size();

  std::ostringstream os;
  os << "// Auto-generated instruction decoder: " << n << " instructions, opcodes up to "
     << max_bits << " bits (canonical Huffman)\n";
  os << "module " << module_name << " (\n";
  os << "  input  wire [" << max_bits - 1 << ":0] opcode,\n";
  os << "  output reg  [" << n - 1 << ":0] select,\n";
  os << "  output reg  [3:0] length\n";
  os << ");\n\n";
  os << "  always @(*) begin\n";
  os << "    select = " << n << "'d0;\n";
  os << "    length = 4'd0;\n";
  os << "    casez (opcode)\n";

  // Sort by opcode length so shorter (higher-priority) codes come first;
  // casez with z-padded suffixes implements the prefix decode.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return isa.instructions()[a].opcode_bits < isa.instructions()[b].opcode_bits;
  });

  for (std::size_t idx : order) {
    const ucode::Instruction& instr = isa.instructions()[idx];
    std::string pattern = bin(instr.opcode, instr.opcode_bits);
    pattern += std::string(static_cast<std::size_t>(max_bits - instr.opcode_bits), '?');
    os << "      " << max_bits << "'b" << pattern << ": begin select["
       << idx << "] = 1'b1; length = 4'd" << instr.opcode_bits << "; end  // "
       << sanitize_identifier(instr.name) << '\n';
  }
  os << "      default: ;\n";
  os << "    endcase\n  end\nendmodule\n";
  return os.str();
}

}  // namespace partita::rtl

#include "report/chip_report.hpp"

#include <map>
#include <sstream>

#include "cinst/cinst.hpp"
#include "iface/fsm.hpp"
#include "ir/lower.hpp"
#include "support/assert.hpp"
#include "support/strings.hpp"
#include "support/text_table.hpp"

namespace partita::report {

ChipReport generate_report(const select::Flow& flow, const select::Selection& selection,
                           const ReportOptions& opts) {
  // An infeasible (or resource-starved) selection still gets a report -- a
  // structured statement of which degradation rung answered and why --
  // instead of aborting the process.
  if (!selection.feasible) {
    ChipReport rep;
    rep.solver = selection.solver;
    rep.software_cycles = flow.profile().total_cycles;
    rep.guaranteed_cycles = rep.software_cycles;
    std::ostringstream os;
    os << "==================== generated ASIP report ====================\n";
    os << "application: " << flow.module().name() << "\n\n";
    os << "NO FEASIBLE SELECTION\n";
    os << "rung       : " << select::to_string(selection.rung) << '\n';
    os << "termination: " << ilp::to_string(selection.solver.termination) << '\n';
    if (!selection.degradation_detail.empty()) {
      os << "reason     : " << selection.degradation_detail << '\n';
    }
    os << "solver     : " << selection.solver.nodes << " nodes, "
       << selection.solver.lp_iterations << " LP iterations\n";
    rep.text = os.str();
    return rep;
  }
  ChipReport rep;
  const ir::Module& module = flow.module();
  const iplib::IpLibrary& lib = flow.library();
  const isel::ImpDatabase& db = flow.imp_database();

  // --- C-instruction plan --------------------------------------------------
  const ir::LoweredModule lowered = ir::lower_module(module);
  const std::vector<cinst::Candidate> candidates =
      cinst::mine_candidates(module, lowered, flow.profile());
  cinst::PlanOptions cplan_opts;
  cplan_opts.urom_word_budget = opts.cinst_urom_budget;
  cplan_opts.max_cinstructions = opts.max_cinstructions;
  const cinst::CInstPlan cplan = cinst::plan_cinstructions(candidates, cplan_opts);

  // --- instruction set -----------------------------------------------------
  // P-class opcode frequencies come from the application's dynamic op mix:
  // static MOP counts per kind weighted by each function's profiled
  // execution frequency.
  {
    std::vector<double> kind_freq;
    for (std::uint32_t f = 0; f < module.function_count(); ++f) {
      const double weight = flow.profile().function_frequency[f];
      if (weight <= 0) continue;
      for (const ir::Mop& mop : lowered.functions[f].mops.mops()) {
        const auto idx = static_cast<std::size_t>(mop.kind);
        if (kind_freq.size() <= idx) kind_freq.resize(idx + 1, 0.0);
        kind_freq[idx] += weight;
      }
    }
    rep.isa.seed_p_class_weighted(kind_freq, /*fallback=*/1.0);
  }
  for (const cinst::Candidate& c : cplan.chosen) {
    ucode::Instruction instr;
    instr.name = c.name();
    instr.cls = ucode::InstrClass::kC;
    instr.frequency = c.dynamic_occurrences;
    instr.urom_words = c.urom_words();
    rep.isa.add(instr);
  }

  // Merged S-instructions: one per distinct (IP, interface type).
  struct SMerge {
    const isel::Imp* imp;
    double frequency = 0;
  };
  std::map<std::pair<std::uint32_t, int>, SMerge> merged;
  for (isel::ImpIndex idx : selection.chosen) {
    const isel::Imp& imp = db.imps()[idx];
    const isel::SCall* sc = db.scall_of(imp.scall);
    SMerge& m = merged[{imp.ip.value, static_cast<int>(imp.iface_type)}];
    m.imp = &imp;
    m.frequency += sc ? sc->frequency : 1.0;
  }

  // --- u-ROM ---------------------------------------------------------------
  ucode::Urom urom(opts.urom_word_bits);
  for (const cinst::Candidate& c : cplan.chosen) {
    std::vector<ucode::UWord> words;
    for (ir::MopKind k : c.pattern) words.push_back({std::string(ir::to_string(k))});
    urom.add_sequence(c.name(), std::move(words));
  }
  for (auto& [key, m] : merged) {
    const iplib::IpDescriptor& ip = lib.ip(m.imp->ip);
    const iface::InterfaceProgram prog = iface::expand_template(
        m.imp->iface_type, ip, *m.imp->ip_function, opts.kernel);

    ucode::Instruction instr;
    instr.name = "s_" + ip.name + "_" + std::string(iface::short_name(m.imp->iface_type));
    instr.cls = ucode::InstrClass::kS;
    instr.frequency = m.frequency;
    instr.iface_type = m.imp->iface_type;

    if (iface::is_software(m.imp->iface_type)) {
      // Software interfaces store their whole template in the u-ROM.
      instr.urom_words = prog.static_words();
      urom.add_sequence(instr.name, ucode::words_from_program(prog));
    } else {
      // Hardware interfaces need only a start/hand-off word; the FSM runs
      // autonomously.
      instr.urom_words = 1;
      urom.add_sequence(instr.name, {ucode::UWord{"start_ip"}});
      iface::ControllerFsm fsm = iface::ControllerFsm::synthesize(prog);
      rep.fsm_states += static_cast<int>(fsm.states().size());
    }
    rep.isa.add(instr);
  }
  urom.optimize();
  rep.urom = urom.stats();

  rep.isa.encode();
  rep.expected_opcode_bits = rep.isa.expected_opcode_bits();

  // --- totals ----------------------------------------------------------------
  rep.accelerator_area = selection.total_area();
  rep.total_area = opts.kernel_base_area + rep.accelerator_area;
  rep.total_power = opts.kernel_base_power + selection.total_power();
  rep.software_cycles = flow.profile().total_cycles;
  rep.guaranteed_cycles = rep.software_cycles - selection.min_path_gain;

  // --- rendering ---------------------------------------------------------------
  std::ostringstream os;
  os << "==================== generated ASIP report ====================\n";
  os << "application: " << module.name() << "\n\n";

  os << "instruction set: " << rep.isa.count_of(ucode::InstrClass::kP) << " P + "
     << rep.isa.count_of(ucode::InstrClass::kC) << " C + "
     << rep.isa.count_of(ucode::InstrClass::kS) << " S instructions\n";
  os << "opcodes: fixed would take " << rep.isa.fixed_opcode_bits()
     << " bits; Huffman expects " << support::compact_double(rep.expected_opcode_bits)
     << " bits/fetch\n\n";

  {
    support::TextTable t({"class", "name", "freq", "uROM words", "opcode bits"});
    t.set_alignment({support::Align::kLeft, support::Align::kLeft, support::Align::kRight,
                     support::Align::kRight, support::Align::kRight});
    for (const ucode::Instruction& i : rep.isa.instructions()) {
      if (i.cls == ucode::InstrClass::kP) continue;  // keep the table short
      t.add_row({std::string(to_string(i.cls)), i.name, support::compact_double(i.frequency),
                 std::to_string(i.urom_words), std::to_string(i.opcode_bits)});
    }
    if (t.row_count() > 0) os << t.render() << '\n';
  }

  os << "u-ROM: " << rep.urom.raw_words << " raw words -> " << rep.urom.unique_words
     << " unique + " << rep.urom.pointer_bits << "-bit pointers ("
     << rep.urom.raw_bits << " -> " << rep.urom.optimized_bits << " bits, x"
     << support::compact_double(rep.urom.compression_ratio()) << ")\n";
  os << "hardware controllers: " << rep.fsm_states << " FSM states synthesized\n\n";

  os << "IPs instantiated:\n";
  for (iplib::IpId ip : selection.ips_used) {
    const iplib::IpDescriptor& d = lib.ip(ip);
    os << "  " << d.name << "  area " << support::compact_double(d.area);
    if (d.power > 0) os << "  power " << support::compact_double(d.power);
    os << '\n';
  }
  os << "\narea : kernel " << support::compact_double(opts.kernel_base_area) << " + IPs "
     << support::compact_double(selection.ip_area) << " + interfaces "
     << support::compact_double(selection.interface_area) << " = "
     << support::compact_double(rep.total_area) << '\n';
  os << "power: " << support::compact_double(rep.total_power) << '\n';
  os << "cycles: " << support::with_commas(rep.software_cycles) << " software -> "
     << support::with_commas(rep.guaranteed_cycles) << " guaranteed ("
     << support::with_commas(rep.software_cycles - rep.guaranteed_cycles) << " gain)\n";

  rep.solver = selection.solver;
  os << "solver: " << rep.solver.nodes << " nodes, " << rep.solver.lp_iterations
     << " LP iterations, warm-start hit rate "
     << support::compact_double(rep.solver.warm_start_hit_rate() * 100.0) << "%";
  if (rep.solver.presolve_fixed > 0) {
    os << ", " << rep.solver.presolve_fixed << " presolve fixings";
  }
  if (rep.solver.cuts_applied > 0) {
    os << ", " << rep.solver.cuts_applied << " root cuts";
  }
  if (rep.solver.batch_hits > 0) {
    os << ", " << rep.solver.batch_hits << " batch-amortized artifacts";
  }
  if (selection.truncated) {
    os << " [" << ilp::to_string(rep.solver.termination) << "; gap <= "
       << support::compact_double(selection.optimality_gap * 100.0) << "%]";
  }
  os << '\n';
  os << "selection quality: " << select::to_string(selection.rung);
  if (!selection.degradation_detail.empty()) {
    os << " (" << selection.degradation_detail << ")";
  }
  os << '\n';
  rep.text = os.str();
  return rep;
}

}  // namespace partita::report

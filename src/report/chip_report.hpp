// Generated-ASIP report.
//
// Section 2 of the paper sketches what happens after selection: hardware
// modules are generated (decoding unit, fetch unit, interfaces), all new
// instructions are encoded, and the u-ROM is optimized to include the C- and
// S-instruction micro-code. This module performs that back-end bookkeeping
// for a Selection and renders a full chip summary:
//
//  * instruction set: P-class seeded from the kernel's MOP repertoire,
//    C-class from the frequent-pattern miner (cinst), S-class one per merged
//    (IP, interface) pair of the selection -- with Huffman opcode encoding;
//  * u-ROM: micro-code sequences of every C/S instruction, two-level
//    optimized, bits before/after;
//  * hardware: IPs (area/power, counted once), interface controllers
//    (synthesized FSM state counts for types 2/3), buffers, protocol
//    transformers;
//  * performance: profiled software cycles vs the guaranteed accelerated
//    cycles.
#pragma once

#include <string>

#include "select/flow.hpp"
#include "ucode/isa.hpp"
#include "ucode/urom.hpp"

namespace partita::report {

struct ReportOptions {
  iface::KernelParams kernel;
  /// Fixed area/power of the ASIP core itself (datapath, register file,
  /// AGU, sequencer) in the same relative units as the IPs.
  double kernel_base_area = 40.0;
  double kernel_base_power = 1.0;
  /// Raw micro-word width for u-ROM sizing.
  int urom_word_bits = 64;
  /// Budget passed to the C-instruction planner.
  std::int64_t cinst_urom_budget = 48;
  std::size_t max_cinstructions = 8;
};

struct ChipReport {
  ucode::InstructionSet isa;
  ucode::UromStats urom;
  double accelerator_area = 0.0;   // IPs + interfaces
  double total_area = 0.0;         // + kernel base
  double total_power = 0.0;
  std::int64_t software_cycles = 0;
  std::int64_t guaranteed_cycles = 0;  // software - min-path gain
  int fsm_states = 0;                  // synthesized hardware controllers
  double expected_opcode_bits = 0.0;
  ilp::SolverStats solver;             // selection solver statistics
  std::string text;                    // rendered report
};

/// Builds the report. An infeasible selection produces a structured
/// infeasibility report (rung, termination reason, evidence) rather than
/// aborting; `text` is always renderable.
ChipReport generate_report(const select::Flow& flow, const select::Selection& selection,
                           const ReportOptions& opts = {});

}  // namespace partita::report

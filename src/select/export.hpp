// Machine-readable selection export (JSON).
//
// Downstream tooling (regression dashboards, design-space plots, the RTL
// flow) wants selections in a structured format rather than the paper-style
// table. The emitter is hand-rolled -- the schema is small and the project
// has no external dependencies.
//
// Schema:
//   {
//     "feasible": true,
//     "required_gain": 123,            // caller-provided context
//     "guaranteed_gain": 456,
//     "area": {"total": 12.5, "ip": 11.0, "interface": 1.5},
//     "power": {"total": 1.2, "ip": 1.0, "interface": 0.2},
//     "s_instructions": 2,
//     "selected_scalls": 3,
//     "ips": ["IP12", "IP13"],
//     "imps": [ {"scall": 7, "callee": "win_filter", "ip": "IP12",
//                "interface": "IF0", "gain": 115037, "gain_per_exec": 13000,
//                "interface_area": 0.26, "flattened": false,
//                "parallel_code": 0, "consumed_scalls": []} ]
//   }
#pragma once

#include <string>

#include "select/selection.hpp"

namespace partita::select {

/// Serializes a selection (feasible or not). `required_gain` is echoed into
/// the output for context.
std::string to_json(const Selection& sel, const isel::ImpDatabase& db,
                    const iplib::IpLibrary& lib, std::int64_t required_gain);

/// Escapes a string for inclusion in JSON output.
std::string json_escape(std::string_view s);

}  // namespace partita::select

// Selection results: the decoded solution of the optimal S-instruction
// generation problem, in the shape of the paper's result tables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cdfg/paths.hpp"
#include "ilp/branch_bound.hpp"
#include "isel/enumerate.hpp"

namespace partita::select {

/// Which rung of the staged degradation ladder produced a Selection. The
/// ladder runs full ILP -> truncated ILP with a proven optimality gap ->
/// greedy baseline -> structured infeasibility report; every answer is
/// labeled honestly so callers (CLI exit codes, export JSON, chip report)
/// can tell a proven optimum from a budget-limited best effort.
enum class DegradationRung : std::uint8_t {
  kOptimal,         // ILP proved optimality
  kGapBounded,      // truncated ILP incumbent, optimality_gap bounds the loss
  kGreedyFallback,  // greedy baseline answered (ILP truncated without a
                    // usable incumbent, or greedy beat the incumbent)
  kInfeasible,      // no rung produced a feasible selection
};

/// Display name: "optimal", "gap-bounded", "greedy-fallback", "infeasible".
const char* to_string(DegradationRung r);

/// The decoded outcome of one selection run (one RG row of Tables 1-3).
struct Selection {
  bool feasible = false;

  /// Indices into the IMP database of the selected IMPs, one per implemented
  /// s-call, ordered by s-call id.
  std::vector<isel::ImpIndex> chosen;

  /// Distinct IPs instantiated and their summed area (each counted once).
  std::vector<iplib::IpId> ips_used;
  double ip_area = 0.0;
  /// Summed interface area of the selected IMPs (c_ij).
  double interface_area = 0.0;
  double total_area() const { return ip_area + interface_area; }

  /// Power of the accelerator subsystem: distinct IPs (once each) plus the
  /// selected interfaces.
  double ip_power = 0.0;
  double interface_power = 0.0;
  double total_power() const { return ip_power + interface_power; }

  /// Number of S-instructions after merging: s-calls implemented with the
  /// same IP and the same interface type share one S-instruction (column S).
  int s_instructions = 0;
  /// Number of s-calls implemented with IPs (column O).
  int selected_scalls = 0;

  /// Guaranteed gain: the minimum over all execution paths of the achieved
  /// gain (column G is reported against this).
  std::int64_t min_path_gain = 0;

  /// Solver statistics (ilp_nodes/lp_iterations mirror solver.nodes and
  /// solver.lp_iterations for existing callers).
  int ilp_nodes = 0;
  int lp_iterations = 0;
  ilp::SolverStats solver;

  /// True when the branch & bound hit its node limit or resource budget
  /// before proving optimality; the selection is then the best incumbent
  /// (or the greedy fallback if that was better) and optimality_gap bounds
  /// how far from the optimum it can be. solver.termination says which
  /// limit struck.
  bool truncated = false;
  /// True when the greedy baseline replaced (or supplied) the solution after
  /// a truncation.
  bool greedy_fallback = false;
  /// Relative gap |area - best_bound| / max(1, |area|); 0 when optimal.
  double optimality_gap = 0.0;

  /// Which degradation rung answered (see DegradationRung).
  DegradationRung rung = DegradationRung::kInfeasible;
  /// One human-readable line on *why* a degraded rung answered ("" when
  /// optimal): the resource that struck, or the infeasibility evidence.
  std::string degradation_detail;

  /// "SC13: IP12,IF0,115037,3"-style summary, paper notation.
  std::string describe(const isel::ImpDatabase& db, const iplib::IpLibrary& lib) const;
};

/// Canonical one-line signature of everything solution-defining in a
/// Selection: feasibility, the chosen IMP set, the instantiated IPs, the
/// exact area/power doubles (%.17g -- bit-faithful), S/O counts, min-path
/// gain and the answering rung. Solver observability counters are
/// deliberately excluded: two solves that found the SAME answer by a
/// different search (e.g. a warm-started one) signature equally. The
/// cache-consistency harness, the soak test and the bench answer gate all
/// compare cached/seeded answers to cold solves through this.
std::string solution_signature(const Selection& sel);

/// Computes the derived fields (areas, S, O, min-path gain) for a set of
/// chosen IMPs. Used by both the ILP selector and the baselines.
Selection decode_selection(const std::vector<isel::ImpIndex>& chosen,
                           const isel::ImpDatabase& db, const iplib::IpLibrary& lib,
                           const cdfg::Cdfg& entry_cdfg,
                           const std::vector<cdfg::ExecPath>& paths);

/// Achieved gain of a chosen IMP set on one execution path: the sum of
/// per-execution gains times the loop frequency of each s-call node on the
/// path.
std::int64_t path_gain(const std::vector<isel::ImpIndex>& chosen,
                       const isel::ImpDatabase& db, const cdfg::Cdfg& entry_cdfg,
                       const cdfg::ExecPath& path);

}  // namespace partita::select

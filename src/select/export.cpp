#include "select/export.hpp"

#include <cstdio>
#include <sstream>

namespace partita::select {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string num(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::string to_json(const Selection& sel, const isel::ImpDatabase& db,
                    const iplib::IpLibrary& lib, std::int64_t required_gain) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"feasible\": " << (sel.feasible ? "true" : "false") << ",\n";
  os << "  \"required_gain\": " << required_gain << ",\n";
  os << "  \"degradation\": {\"rung\": \"" << to_string(sel.rung)
     << "\", \"termination\": \"" << ilp::to_string(sel.solver.termination)
     << "\", \"detail\": \"" << json_escape(sel.degradation_detail) << "\"}";
  if (!sel.feasible) {
    os << "\n}\n";
    return os.str();
  }
  os << ",\n";
  os << "  \"guaranteed_gain\": " << sel.min_path_gain << ",\n";
  os << "  \"area\": {\"total\": " << num(sel.total_area()) << ", \"ip\": "
     << num(sel.ip_area) << ", \"interface\": " << num(sel.interface_area) << "},\n";
  os << "  \"power\": {\"total\": " << num(sel.total_power()) << ", \"ip\": "
     << num(sel.ip_power) << ", \"interface\": " << num(sel.interface_power) << "},\n";
  os << "  \"s_instructions\": " << sel.s_instructions << ",\n";
  os << "  \"selected_scalls\": " << sel.selected_scalls << ",\n";

  os << "  \"solver\": {\"nodes\": " << sel.solver.nodes
     << ", \"lp_iterations\": " << sel.solver.lp_iterations
     << ", \"warm_start_hit_rate\": " << num(sel.solver.warm_start_hit_rate())
     << ", \"presolve_fixed\": " << sel.solver.presolve_fixed
     << ", \"clique_propagations\": " << sel.solver.clique_propagations
     << ", \"threads\": " << sel.solver.threads
     << ", \"waves\": " << sel.solver.waves
     << ", \"peak_arena_bytes\": " << sel.solver.peak_arena_bytes
     << ", \"pricing_candidate_scans\": " << sel.solver.pricing_candidate_scans
     << ", \"pricing_refreshes\": " << sel.solver.pricing_refreshes
     << ", \"root_lp_iterations\": " << sel.solver.root_lp_iterations
     << ", \"cuts_separated\": " << sel.solver.cuts_separated
     << ", \"cuts_applied\": " << sel.solver.cuts_applied
     << ", \"cut_rounds\": " << sel.solver.cut_rounds
     << ", \"batch_hits\": " << sel.solver.batch_hits
     << ", \"seeded_artifacts\": " << sel.solver.seeded_artifacts
     << ", \"truncated\": " << (sel.truncated ? "true" : "false")
     << ", \"optimality_gap\": " << num(sel.optimality_gap)
     << ", \"greedy_fallback\": " << (sel.greedy_fallback ? "true" : "false")
     << "},\n";

  os << "  \"ips\": [";
  for (std::size_t i = 0; i < sel.ips_used.size(); ++i) {
    if (i) os << ", ";
    os << '"' << json_escape(lib.ip(sel.ips_used[i]).name) << '"';
  }
  os << "],\n";

  os << "  \"imps\": [\n";
  for (std::size_t i = 0; i < sel.chosen.size(); ++i) {
    const isel::Imp& imp = db.imps()[sel.chosen[i]];
    const isel::SCall* sc = db.scall_of(imp.scall);
    os << "    {\"scall\": " << imp.scall.value() << ", \"callee\": \""
       << json_escape(sc ? sc->callee_name : "?") << "\", \"ip\": \""
       << json_escape(lib.ip(imp.ip).name) << "\", \"interface\": \""
       << iface::short_name(imp.iface_type) << "\", \"gain\": " << imp.gain
       << ", \"gain_per_exec\": " << imp.gain_per_exec
       << ", \"interface_area\": " << num(imp.interface_area)
       << ", \"flattened\": " << (imp.flattened ? "true" : "false")
       << ", \"parallel_code\": " << imp.parallel_cycles << ", \"consumed_scalls\": [";
    for (std::size_t c = 0; c < imp.pc_consumed_scalls.size(); ++c) {
      if (c) os << ", ";
      os << imp.pc_consumed_scalls[c].value();
    }
    os << "]}" << (i + 1 < sel.chosen.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace partita::select

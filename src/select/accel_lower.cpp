#include "select/accel_lower.hpp"

#include <unordered_map>

#include "support/assert.hpp"

namespace partita::select {

AcceleratedLowering lower_accelerated(const ir::Module& module,
                                      const Selection& selection,
                                      const isel::ImpDatabase& db) {
  // invariant: callers (report, rtl, sim) branch on Selection::feasible and
  // render a structured infeasibility report instead of lowering.
  PARTITA_ASSERT_MSG(selection.feasible, "cannot lower an infeasible selection");
  AcceleratedLowering out;
  out.lowered = ir::lower_function(module, module.function(module.entry()));

  // Which call sites become S-instruction dispatches?
  std::unordered_map<std::uint32_t, bool> dispatch;  // site -> direct (not flattened)
  for (isel::ImpIndex idx : selection.chosen) {
    const isel::Imp& imp = db.imps()[idx];
    dispatch[imp.scall.value()] = !imp.flattened;
  }

  ir::MopList& mops = out.lowered.mops;
  for (std::uint32_t i = 0; i < mops.size(); ++i) {
    ir::Mop& m = mops[ir::MopId{i}];
    if (m.kind != ir::MopKind::kCall || !m.call_site.valid()) continue;
    auto it = dispatch.find(m.call_site.value());
    if (it == dispatch.end()) continue;
    if (it->second) {
      m.kind = ir::MopKind::kIpDispatch;
      ++out.dispatch_mops;
    } else {
      ++out.flattened_calls;
    }
  }

  // Re-pack: the dispatch occupies the sequencer field exactly like a call,
  // so the schedule length is unchanged -- asserted, not assumed.
  const std::size_t cycles = mops.pack_schedule();
  PARTITA_ASSERT(cycles == out.lowered.schedule_cycles);
  return out;
}

}  // namespace partita::select

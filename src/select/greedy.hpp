// Baseline selectors.
//
// greedy_select: marginal gain-per-area heuristic. Repeatedly picks the IMP
// with the best (gain contributed to still-unsatisfied paths) / (marginal
// area: interface + IP if not yet instantiated) ratio until every path meets
// its requirement or no IMP helps. Respects Eq. 1 and the SC-PC conflicts,
// but has no optimality guarantee -- the ablation benches quantify the area
// it wastes versus the ILP.
//
// prior_art_select: models the pre-paper state of the art ([8]-style
// accelerator selection): interfaces are not co-optimized (everything goes
// through the cheapest software interface) and parallel execution is not
// exploited. Realized by filtering the IMP database to type-0, no-PC IMPs and
// running the exact ILP on the rest, so the comparison isolates exactly the
// paper's two contributions.
#pragma once

#include "select/selection.hpp"
#include "select/selector.hpp"

namespace partita::select {

Selection greedy_select(const isel::ImpDatabase& db, const iplib::IpLibrary& lib,
                        const cdfg::Cdfg& entry_cdfg,
                        const std::vector<cdfg::ExecPath>& paths,
                        std::int64_t required_gain);

/// IMP filter used by prior_art_select; exposed for tests.
bool prior_art_allows(const isel::Imp& imp);

Selection prior_art_select(const isel::ImpDatabase& db, const iplib::IpLibrary& lib,
                           const cdfg::Cdfg& entry_cdfg,
                           const std::vector<cdfg::ExecPath>& paths,
                           std::int64_t required_gain, const SelectOptions& opt = {});

}  // namespace partita::select

// End-to-end flow facade.
//
// Owns every analysis stage between a parsed module + IP library and the
// selector: profile, entry-function CDFG (with call cycles annotated),
// execution paths, s-call discovery and the IMP database. Benches, examples
// and integration tests all drive this one object instead of wiring the
// stages by hand.
#pragma once

#include <memory>

#include "isel/enumerate.hpp"
#include "select/greedy.hpp"
#include "select/selector.hpp"
#include "support/result.hpp"

namespace partita::select {

class Flow {
 public:
  /// Fallible factory for user-input paths: verifies the module and checks
  /// module/IP-library consistency, returning either a ready Flow or the
  /// full diagnostic list. Never aborts. References must outlive the Flow.
  static support::Result<std::unique_ptr<Flow>> create(
      const ir::Module& module, const iplib::IpLibrary& library,
      const isel::EnumerateOptions& opts = {});

  /// Asserting convenience constructor for programmatic callers that
  /// guarantee a verified module (tests, benches, built-in workloads).
  /// Anything fed from parsed user input must go through create().
  Flow(const ir::Module& module, const iplib::IpLibrary& library,
       const isel::EnumerateOptions& opts = {});

  const ir::Module& module() const { return *module_; }
  const iplib::IpLibrary& library() const { return *library_; }
  const profile::ModuleProfile& profile() const { return profile_; }
  const cdfg::Cdfg& entry_cdfg() const { return *entry_cdfg_; }
  const std::vector<cdfg::ExecPath>& paths() const { return paths_; }
  const std::vector<isel::SCall>& scalls() const { return db_->scalls(); }
  const isel::ImpDatabase& imp_database() const { return *db_; }
  const Selector& selector() const { return *selector_; }

  /// Optimal selection with uniform required gain.
  Selection select(std::int64_t required_gain, const SelectOptions& opt = {}) const {
    return selector_->select(required_gain, opt);
  }

  /// Batch of uniform-gain selections sharing one model build, clique table
  /// and chained root bases; bit-identical to calling select() per gain.
  std::vector<Selection> select_batch(const std::vector<std::int64_t>& required_gains,
                                      const SelectOptions& opt = {}) const {
    return selector_->select_batch(required_gains, opt);
  }

  Selection greedy(std::int64_t required_gain) const {
    return greedy_select(*db_, *library_, *entry_cdfg_, paths_, required_gain);
  }

  Selection prior_art(std::int64_t required_gain) const {
    return prior_art_select(*db_, *library_, *entry_cdfg_, paths_, required_gain);
  }

  /// Largest uniform required gain that is still feasible: maximizes the
  /// minimum per-path gain subject to the same constraint system (one ILP
  /// solve with an auxiliary continuous variable).
  std::int64_t max_feasible_gain(const SelectOptions& opt = {}) const;

 private:
  Flow() = default;

  /// Runs verification + all analysis stages; false (with diagnostics) when
  /// the input is unusable.
  bool init(const ir::Module& module, const iplib::IpLibrary& library,
            const isel::EnumerateOptions& opts, support::DiagnosticEngine& diags);

  const ir::Module* module_ = nullptr;
  const iplib::IpLibrary* library_ = nullptr;
  profile::ModuleProfile profile_;
  std::unique_ptr<cdfg::Cdfg> entry_cdfg_;
  std::vector<cdfg::ExecPath> paths_;
  std::unique_ptr<isel::ImpDatabase> db_;
  std::unique_ptr<Selector> selector_;
};

}  // namespace partita::select

#include "select/flow.hpp"

#include "ir/verify.hpp"
#include "isel/scall.hpp"
#include "support/assert.hpp"

namespace partita::select {

Flow::Flow(const ir::Module& module, const iplib::IpLibrary& library,
           const isel::EnumerateOptions& opts)
    : module_(&module), library_(&library) {
  support::DiagnosticEngine diags;
  if (!ir::verify_module(module, diags)) {
    std::fprintf(stderr, "flow: module does not verify:\n%s", diags.render_all().c_str());
    PARTITA_ASSERT_MSG(false, "Flow requires a verified module");
  }

  profile_ = profile::profile_module(module);

  entry_cdfg_ = std::make_unique<cdfg::Cdfg>(module, module.function(module.entry()));
  entry_cdfg_->annotate_call_cycles(
      [this](ir::FuncId f) { return profile_.cycles_of(f); });
  paths_ = cdfg::enumerate_paths(*entry_cdfg_);

  const std::vector<isel::SCall> scalls =
      isel::find_scalls(module, profile_, library, *entry_cdfg_);
  db_ = std::make_unique<isel::ImpDatabase>(module, profile_, library, *entry_cdfg_,
                                            paths_, scalls, opts);
  selector_ = std::make_unique<Selector>(*db_, library, *entry_cdfg_, paths_);
}

std::int64_t Flow::max_feasible_gain(const SelectOptions& opt) const {
  return selector_->max_feasible_gain(opt);
}

}  // namespace partita::select

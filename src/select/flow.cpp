#include "select/flow.hpp"

#include "ir/verify.hpp"
#include "isel/scall.hpp"
#include "support/assert.hpp"

namespace partita::select {

bool Flow::init(const ir::Module& module, const iplib::IpLibrary& library,
                const isel::EnumerateOptions& opts,
                support::DiagnosticEngine& diags) {
  if (!ir::verify_module(module, diags)) return false;

  // Module/library consistency: a library none of whose functions exist in
  // the module can only ever answer "no IMPs". Legal, but almost certainly
  // a mismatched file pair, so say so (non-fatal).
  if (library.size() > 0) {
    bool any_match = false;
    for (const std::string& fn : library.supported_functions()) {
      if (module.find_function(fn).valid()) {
        any_match = true;
        break;
      }
    }
    if (!any_match) {
      diags.warning("IP library implements none of the module's functions; "
                    "no s-call can be accelerated");
    }
  }

  module_ = &module;
  library_ = &library;
  profile_ = profile::profile_module(module);

  entry_cdfg_ = std::make_unique<cdfg::Cdfg>(module, module.function(module.entry()));
  entry_cdfg_->annotate_call_cycles(
      [this](ir::FuncId f) { return profile_.cycles_of(f); });
  paths_ = cdfg::enumerate_paths(*entry_cdfg_);

  const std::vector<isel::SCall> scalls =
      isel::find_scalls(module, profile_, library, *entry_cdfg_);
  db_ = std::make_unique<isel::ImpDatabase>(module, profile_, library, *entry_cdfg_,
                                            paths_, scalls, opts);
  selector_ = std::make_unique<Selector>(*db_, library, *entry_cdfg_, paths_);
  return true;
}

support::Result<std::unique_ptr<Flow>> Flow::create(const ir::Module& module,
                                                    const iplib::IpLibrary& library,
                                                    const isel::EnumerateOptions& opts) {
  support::DiagnosticEngine diags;
  std::unique_ptr<Flow> flow(new Flow());
  if (!flow->init(module, library, opts, diags)) {
    return support::Error::from("module/library failed verification", diags);
  }
  return flow;
}

Flow::Flow(const ir::Module& module, const iplib::IpLibrary& library,
           const isel::EnumerateOptions& opts) {
  support::DiagnosticEngine diags;
  if (!init(module, library, opts, diags)) {
    std::fprintf(stderr, "flow: module does not verify:\n%s", diags.render_all().c_str());
    // invariant: the programmatic constructor demands pre-verified inputs;
    // user-input paths reach this code through the fallible create() only.
    PARTITA_ASSERT_MSG(false, "Flow requires a verified module (use Flow::create)");
  }
}

std::int64_t Flow::max_feasible_gain(const SelectOptions& opt) const {
  return selector_->max_feasible_gain(opt);
}

}  // namespace partita::select

// The optimal S-instruction generation problem as a 0/1 ILP (Section 4).
//
// Decision variables:
//   x_ij = 1 iff IMP_ij implements SC_i   (one binary per database IMP)
//   z_k  = 1 iff IP k is instantiated     (fixed-charge)
//
// Constraints:
//   Eq. 1   sum_j x_ij <= 1                       per s-call
//   Eq. 2   sum_{SC_i on P_k} sum_j g^k_ij x_ij >= T_k   per execution path,
//           where g^k_ij = gain_per_exec(IMP_ij) * loop frequency of SC_i
//   FC      sum_{ij : s_ijk=1} x_ij <= M z_k      fixed charge, M = |IMPs|
//   P1      x_iA = x_jB for matching IMPs of s-calls to the same function
//           (Problem 1 only: same function => same implementation)
//   SC-PC   x_A + x_B <= 1 when IMP-A's parallel code contains SC_m's
//           software body and IMP-B implements SC_m (Problem 2)
//
// Objective: minimize  sum_k a_k z_k + sum_ij c_ij x_ij   (Eq. 3)
//
// Re-entrancy: a Selector is immutable after construction -- select(),
// select_per_path(), build_model() and max_feasible_gain() are const, build
// every model and solver state locally, and share nothing mutable between
// calls. Concurrent select() calls on one Selector (or one Flow) from
// different threads are safe and return bit-identical results for identical
// arguments; the solve service's worker pool relies on this. The only global
// the solve path touches is the test-only support::FaultInjector, which is
// itself thread-safe.
#pragma once

#include <functional>
#include <optional>

#include "ilp/branch_bound.hpp"
#include "select/selection.hpp"

namespace partita::select {

struct SelectOptions {
  /// Problem 2 (default): s-calls to the same function may differ, SC-PC
  /// conflict rows enforce the selection rule. Problem 1: same function =>
  /// same implementation, PC-with-software-s-call IMPs are excluded.
  bool problem2 = true;
  /// Optional IMP filter: rejected IMPs are forced to 0 (used by the
  /// prior-art baseline and the interface ablations).
  std::function<bool(const isel::Imp&)> imp_filter;
  /// Optional power budget: sum of IP power (once per instantiated IP) and
  /// interface power of the selected IMPs must stay below this.
  std::optional<double> max_power;
  ilp::IlpOptions ilp;
};

class Selector {
 public:
  Selector(const isel::ImpDatabase& db, const iplib::IpLibrary& lib,
           const cdfg::Cdfg& entry_cdfg, const std::vector<cdfg::ExecPath>& paths)
      : db_(db), lib_(lib), entry_cdfg_(entry_cdfg), paths_(paths) {}

  /// Solves with the same required gain T_k = required_gain on every path.
  Selection select(std::int64_t required_gain, const SelectOptions& opt = {}) const;

  /// Solves with per-path required gains (size must match the path list).
  Selection select_per_path(const std::vector<std::int64_t>& required_gains,
                            const SelectOptions& opt = {}) const;

  /// Called before each batch item's solve with (item index, that item's
  /// solver options); lets callers install per-item cancel tokens or
  /// budgets without giving up the shared amortization context.
  using BatchItemHook = std::function<void(std::size_t, ilp::IlpOptions&)>;

  /// Batch solve: one Selection per uniform required gain, amortizing the
  /// model build, the presolve clique table and the root LP basis across
  /// items (see ilp::BatchContext). Results are bit-identical to calling
  /// select() once per gain -- the model is built a single time and only the
  /// gain-row RHS is retargeted between items, and every reused artifact
  /// (cliques, warm bases) is answer-neutral under canonical tie-breaking.
  std::vector<Selection> select_batch(const std::vector<std::int64_t>& required_gains,
                                      const SelectOptions& opt = {},
                                      const BatchItemHook& per_item = {}) const;

  /// Per-path-gains variant of select_batch: one inner vector per item, each
  /// sized to the path list.
  std::vector<Selection> select_batch_per_path(
      const std::vector<std::vector<std::int64_t>>& items,
      const SelectOptions& opt = {}, const BatchItemHook& per_item = {}) const;

  /// Seeded single solve for the cross-request cache: solves one per-path
  /// gains item through the batch machinery -- the model is built with a
  /// token gain of 1 so every gain row materializes, then the RHS is
  /// retargeted exactly as select_batch_per_path does. That keeps the model
  /// layout identical across ALL same-structure solves, so artifacts carried
  /// in `batch` (clique table, root basis, and -- when
  /// batch->carry_search_state is set -- pseudo-cost tables and a seeded
  /// incumbent) recorded by any previous same-structure solve stay valid
  /// even when this item's gains differ. Bit-identical to select_per_path
  /// for the same gains whenever the search completes; a truncated seeded
  /// search may differ, which is why the solve service re-solves cold on
  /// that path before answering.
  Selection select_seeded(const std::vector<std::int64_t>& required_gains,
                          const SelectOptions& opt, ilp::BatchContext* batch) const;

  /// Number of execution paths (the length build_model/select_per_path
  /// expect of a per-path gains vector).
  std::size_t path_count() const { return paths_.size(); }

  /// Exposes the built ILP (for tests and debugging dumps).
  ilp::Model build_model(const std::vector<std::int64_t>& required_gains,
                         const SelectOptions& opt) const;

  /// Digest of everything a decoded Selection reports that is NOT a function
  /// of the ILP's mathematical content: the column -> (s-call, IP, interface)
  /// identity map and the per-IP area/power the degradation ladder sums. Two
  /// specs can build bit-identical models (e.g. duplicate-parameter IPs
  /// swapped by a column permutation) yet decode the same optimal vector to
  /// different IP indices; a solution cache must key on this digest alongside
  /// ilp::fingerprint_model so such instances miss and re-solve.
  std::uint64_t answer_map_digest() const;

  /// The largest uniform required gain that stays feasible: maximizes an
  /// auxiliary G_min variable with  sum(path gains) >= G_min  on every path,
  /// under the full constraint system. Returns 0 when no IMP exists.
  std::int64_t max_feasible_gain(const SelectOptions& opt = {}) const;

 private:
  /// Decodes one IlpResult into a Selection: degradation ladder, greedy
  /// fallback, rung labeling. Shared by the serial and batch solve paths.
  Selection finish_selection(const ilp::IlpResult& r,
                             const std::vector<std::int64_t>& required_gains,
                             const SelectOptions& opt) const;

  const isel::ImpDatabase& db_;
  const iplib::IpLibrary& lib_;
  const cdfg::Cdfg& entry_cdfg_;
  const std::vector<cdfg::ExecPath>& paths_;
};

}  // namespace partita::select

#include "select/selector.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

#include "ilp/fingerprint.hpp"
#include "select/greedy.hpp"
#include "support/assert.hpp"
#include "support/fault_injection.hpp"

namespace partita::select {

namespace {

/// Signature used by Problem 1's "same function => same implementation"
/// coupling: what the paper calls implementing two s-calls "in the same way".
struct ImplSignature {
  std::uint32_t ip;
  int iface;
  bool operator<(const ImplSignature& o) const {
    return ip != o.ip ? ip < o.ip : iface < o.iface;
  }
};

ImplSignature signature_of(const isel::Imp& imp) {
  return {imp.ip.value, static_cast<int>(imp.iface_type)};
}

/// Locates the gain rows of a token-gain model and computes each row's
/// never-binding floor RHS ((sum of negative coefficients) - 1, satisfied by
/// every 0/1 point) so rg <= 0 items behave exactly like the serial build
/// that omits the row. Shared by the batch and seeded solve paths.
void scan_gain_rows(const ilp::Model& m, std::size_t paths,
                    std::vector<ilp::RowIndex>& gain_row,
                    std::vector<double>& floor_rhs) {
  gain_row.assign(paths, static_cast<ilp::RowIndex>(m.row_count()));
  floor_rhs.assign(paths, -1.0);
  for (std::size_t r = 0; r < m.row_count(); ++r) {
    const ilp::Row& row = m.row(static_cast<ilp::RowIndex>(r));
    if (row.name.rfind("gain_path", 0) != 0) continue;
    const std::size_t p = static_cast<std::size_t>(
        std::stoul(row.name.substr(sizeof("gain_path") - 1)));
    gain_row[p] = static_cast<ilp::RowIndex>(r);
    double floor = -1.0;
    for (const ilp::Term& t : row.terms) floor += std::min(0.0, t.coeff);
    floor_rhs[p] = floor;
  }
}

void retarget_gain_rows(ilp::Model& m, const std::vector<std::int64_t>& item,
                        const std::vector<ilp::RowIndex>& gain_row,
                        const std::vector<double>& floor_rhs) {
  for (std::size_t p = 0; p < item.size(); ++p) {
    if (gain_row[p] >= static_cast<ilp::RowIndex>(m.row_count())) continue;
    m.set_rhs(gain_row[p],
              item[p] > 0 ? static_cast<double>(item[p]) : floor_rhs[p]);
  }
}

}  // namespace

ilp::Model Selector::build_model(const std::vector<std::int64_t>& required_gains,
                                 const SelectOptions& opt) const {
  // invariant: the Selector itself expands RG to one entry per path; no user
  // input reaches this signature.
  PARTITA_ASSERT(required_gains.size() == paths_.size());
  const std::vector<isel::Imp>& imps = db_.imps();

  ilp::Model m;
  m.set_sense(ilp::Sense::kMinimize);

  // Fault site for the differential oracle's shrinker demo: a tripped
  // "select.objective_skew" drops the interface-area terms from the
  // objective, so the solve stays feasible but can return a non-optimal
  // selection the oracle is expected to catch.
  const bool skew_objective = support::fault_should_trip("select.objective_skew");

  // --- x_ij ------------------------------------------------------------
  std::vector<ilp::VarIndex> x(imps.size());
  for (std::size_t j = 0; j < imps.size(); ++j) {
    x[j] = m.add_binary("x_sc" + std::to_string(imps[j].scall.value()) + "_imp" +
                            std::to_string(j),
                        skew_objective ? 0.0 : imps[j].interface_area);
    if (!opt.problem2 && imps[j].pc_use == isel::PcUse::kWithScallSw) {
      // Problem 1 forbids s-call software inside a PC.
      m.var(x[j]).upper = 0.0;
    }
    if (opt.imp_filter && !opt.imp_filter(imps[j])) {
      m.var(x[j]).upper = 0.0;
    }
  }

  // --- z_k (fixed charge per IP actually used) --------------------------
  std::map<std::uint32_t, ilp::VarIndex> z;
  for (const isel::Imp& imp : imps) {
    if (!z.count(imp.ip.value)) {
      z[imp.ip.value] =
          m.add_binary("z_" + lib_.ip(imp.ip).name, lib_.ip(imp.ip).area);
    }
  }

  // --- Eq. 1: at most one IMP per s-call --------------------------------
  for (const isel::SCall& sc : db_.scalls()) {
    std::vector<ilp::Term> terms;
    for (isel::ImpIndex j : db_.imps_for(sc.site)) terms.push_back({x[j], 1.0});
    if (!terms.empty()) {
      m.add_row("one_imp_sc" + std::to_string(sc.site.value()), std::move(terms),
                ilp::RowSense::kLessEqual, 1.0);
    }
  }

  // --- Eq. 2: per-path required gain -------------------------------------
  for (std::size_t p = 0; p < paths_.size(); ++p) {
    if (required_gains[p] <= 0) continue;
    std::vector<ilp::Term> terms;
    for (std::size_t j = 0; j < imps.size(); ++j) {
      const isel::SCall* sc = db_.scall_of(imps[j].scall);
      if (!sc || sc->node == cdfg::kInvalidNode || !paths_[p].contains(sc->node)) continue;
      const double coeff = static_cast<double>(imps[j].gain_per_exec) *
                           static_cast<double>(entry_cdfg_.node(sc->node).loop_frequency);
      terms.push_back({x[j], coeff});
    }
    m.add_row("gain_path" + std::to_string(p), std::move(terms),
              ilp::RowSense::kGreaterEqual, static_cast<double>(required_gains[p]));
  }

  // --- fixed charge: IP area counted once --------------------------------
  // M is the number of IMPs that could possibly use the IP -- the tightest
  // valid constant, which keeps the LP relaxation strong.
  for (const auto& [ip_raw, zvar] : z) {
    std::vector<ilp::Term> terms;
    for (std::size_t j = 0; j < imps.size(); ++j) {
      if (imps[j].ip.value == ip_raw) terms.push_back({x[j], 1.0});
    }
    const double big_m = static_cast<double>(terms.size());
    terms.push_back({zvar, -big_m});
    m.add_row("fc_ip" + std::to_string(ip_raw), std::move(terms),
              ilp::RowSense::kLessEqual, 0.0);
  }

  // --- optional power budget ---------------------------------------------
  if (opt.max_power) {
    std::vector<ilp::Term> terms;
    for (std::size_t j = 0; j < imps.size(); ++j) {
      if (imps[j].interface_power > 0) terms.push_back({x[j], imps[j].interface_power});
    }
    for (const auto& [ip_raw, zvar] : z) {
      const double p = lib_.ip(iplib::IpId{ip_raw}).power;
      if (p > 0) terms.push_back({zvar, p});
    }
    m.add_row("power_budget", std::move(terms), ilp::RowSense::kLessEqual, *opt.max_power);
  }

  // --- Problem 1: same function => same implementation -------------------
  if (!opt.problem2) {
    const auto& scalls = db_.scalls();
    for (std::size_t a = 0; a < scalls.size(); ++a) {
      for (std::size_t b = a + 1; b < scalls.size(); ++b) {
        if (scalls[a].callee != scalls[b].callee) continue;
        // For every implementation signature, both s-calls commit equally.
        std::map<ImplSignature, std::pair<std::vector<ilp::Term>, std::vector<ilp::Term>>>
            by_sig;
        for (isel::ImpIndex j : db_.imps_for(scalls[a].site)) {
          by_sig[signature_of(db_.imps()[j])].first.push_back({x[j], 1.0});
        }
        for (isel::ImpIndex j : db_.imps_for(scalls[b].site)) {
          by_sig[signature_of(db_.imps()[j])].second.push_back({x[j], 1.0});
        }
        int sig_idx = 0;
        for (auto& [sig, pair] : by_sig) {
          std::vector<ilp::Term> terms = pair.first;
          for (ilp::Term t : pair.second) terms.push_back({t.var, -1.0});
          m.add_row("p1_sc" + std::to_string(scalls[a].site.value()) + "_sc" +
                        std::to_string(scalls[b].site.value()) + "_" +
                        std::to_string(sig_idx++),
                    std::move(terms), ilp::RowSense::kEqual, 0.0);
        }
      }
    }
  }

  // --- SC-PC conflicts (Problem 2 selection rule) -------------------------
  // Aggregated form: selecting IMP-A (whose PC absorbs SC_m's software)
  // excludes every IMP of SC_m at once:  x_A + sum_j x_mj <= 1. Equivalent
  // to the pairwise rule but one row per (A, SC_m) and a tighter relaxation.
  if (opt.problem2) {
    for (std::size_t a = 0; a < imps.size(); ++a) {
      for (ir::CallSiteId consumed : imps[a].pc_consumed_scalls) {
        std::vector<ilp::Term> terms{{x[a], 1.0}};
        for (isel::ImpIndex b : db_.imps_for(consumed)) terms.push_back({x[b], 1.0});
        if (terms.size() > 1) {
          m.add_row("scpc_" + std::to_string(a) + "_sc" +
                        std::to_string(consumed.value()),
                    std::move(terms), ilp::RowSense::kLessEqual, 1.0);
        }
      }
    }
  }

  return m;
}

Selection Selector::select_per_path(const std::vector<std::int64_t>& required_gains,
                                    const SelectOptions& opt) const {
  const ilp::Model m = build_model(required_gains, opt);

  // Degradation ladder, rung 1 + 2: the exact ILP under its resource
  // budget. A completed search answers rung 1 (proven optimum) or proves
  // infeasibility; a truncated one leaves the best incumbent for rung 2.
  const ilp::IlpResult r = ilp::solve_ilp(m, opt.ilp);
  return finish_selection(r, required_gains, opt);
}

Selection Selector::finish_selection(const ilp::IlpResult& r,
                                     const std::vector<std::int64_t>& required_gains,
                                     const SelectOptions& opt) const {
  const bool truncated = ilp::is_truncated(r.status);

  Selection sel;
  if (r.has_solution) {
    std::vector<isel::ImpIndex> chosen;
    for (std::size_t j = 0; j < db_.imps().size(); ++j) {
      if (r.x[j] > 0.5) chosen.push_back(static_cast<isel::ImpIndex>(j));
    }
    sel = decode_selection(chosen, db_, lib_, entry_cdfg_, paths_);
  }

  // Rung 3: a truncated search may have no incumbent at all, or one that is
  // far from the proven bound; the greedy baseline is a cheap, deterministic
  // safety net. It only understands the default constraint system and a
  // uniform requirement, so it is skipped for filtered/power-capped/
  // Problem-1 runs -- and for cancelled solves, where the caller asked the
  // work to stop rather than for a cheaper answer.
  const bool cancelled =
      r.stats.termination == ilp::TerminationReason::kCancelled;
  if (truncated && !cancelled && !opt.imp_filter && !opt.max_power && opt.problem2) {
    const std::int64_t uniform = required_gains.empty()
        ? 0
        : *std::max_element(required_gains.begin(), required_gains.end());
    Selection greedy = greedy_select(db_, lib_, entry_cdfg_, paths_, uniform);
    if (greedy.feasible &&
        (!sel.feasible || greedy.total_area() < sel.total_area())) {
      greedy.greedy_fallback = true;
      sel = std::move(greedy);
    }
  }

  sel.solver = r.stats;
  sel.ilp_nodes = r.stats.nodes;
  sel.lp_iterations = r.stats.lp_iterations;
  sel.truncated = truncated;
  if (truncated && sel.feasible) {
    sel.optimality_gap = std::abs(sel.total_area() - r.best_bound) /
                         std::max(1.0, std::abs(sel.total_area()));
  }

  // Label which rung answered and why, so every consumer (CLI, JSON export,
  // chip report) reports an honest quality level instead of a bare answer.
  const char* why = ilp::to_string(r.stats.termination);
  if (!sel.feasible) {
    sel.rung = DegradationRung::kInfeasible;
    sel.degradation_detail = truncated
        ? "search stopped (" + std::string(why) +
              ") before any feasible incumbent; infeasibility not proven"
        : "constraint system proven infeasible: no IMP set meets the "
          "required per-path gains";
  } else if (!truncated) {
    sel.rung = DegradationRung::kOptimal;
  } else if (sel.greedy_fallback) {
    sel.rung = DegradationRung::kGreedyFallback;
    sel.degradation_detail =
        "greedy baseline answered after " + std::string(why) + " truncation";
  } else {
    sel.rung = DegradationRung::kGapBounded;
    sel.degradation_detail = "ILP truncated (" + std::string(why) +
                             "); incumbent proven within " +
                             std::to_string(sel.optimality_gap * 100.0) +
                             "% of the optimum";
  }
  return sel;
}

Selection Selector::select(std::int64_t required_gain, const SelectOptions& opt) const {
  return select_per_path(
      std::vector<std::int64_t>(paths_.size(), required_gain), opt);
}

std::vector<Selection> Selector::select_batch(
    const std::vector<std::int64_t>& required_gains, const SelectOptions& opt,
    const BatchItemHook& per_item) const {
  std::vector<std::vector<std::int64_t>> items;
  items.reserve(required_gains.size());
  for (const std::int64_t rg : required_gains) {
    items.emplace_back(paths_.size(), rg);
  }
  return select_batch_per_path(items, opt, per_item);
}

std::vector<Selection> Selector::select_batch_per_path(
    const std::vector<std::vector<std::int64_t>>& items,
    const SelectOptions& opt, const BatchItemHook& per_item) const {
  std::vector<Selection> out;
  out.reserve(items.size());
  if (items.empty()) return out;
  for (const auto& item : items) PARTITA_ASSERT(item.size() == paths_.size());

  // One model for the whole batch, built with a token gain of 1 so every
  // path row materializes; items only retarget the gain-row RHS below.
  ilp::Model m = build_model(std::vector<std::int64_t>(paths_.size(), 1), opt);
  std::vector<ilp::RowIndex> gain_row;
  std::vector<double> floor_rhs;
  scan_gain_rows(m, paths_.size(), gain_row, floor_rhs);

  ilp::BatchContext ctx;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& item = items[i];
    retarget_gain_rows(m, item, gain_row, floor_rhs);
    ilp::IlpOptions iopt = opt.ilp;
    if (per_item) per_item(i, iopt);
    const ilp::IlpResult r = ilp::solve_ilp(m, iopt, &ctx);
    out.push_back(finish_selection(r, item, opt));
  }
  return out;
}

Selection Selector::select_seeded(const std::vector<std::int64_t>& required_gains,
                                  const SelectOptions& opt,
                                  ilp::BatchContext* batch) const {
  PARTITA_ASSERT(required_gains.size() == paths_.size());
  ilp::Model m = build_model(std::vector<std::int64_t>(paths_.size(), 1), opt);
  std::vector<ilp::RowIndex> gain_row;
  std::vector<double> floor_rhs;
  scan_gain_rows(m, paths_.size(), gain_row, floor_rhs);
  retarget_gain_rows(m, required_gains, gain_row, floor_rhs);
  const ilp::IlpResult r = ilp::solve_ilp(m, opt.ilp, batch);
  return finish_selection(r, required_gains, opt);
}

std::uint64_t Selector::answer_map_digest() const {
  std::uint64_t h = ilp::fp_mix(db_.imps().size());
  for (const isel::Imp& imp : db_.imps()) {
    h = ilp::fp_mix(h ^ imp.scall.value());
    h = ilp::fp_mix(h ^ imp.ip.value);
    h = ilp::fp_mix(h ^ static_cast<std::uint64_t>(imp.iface_type));
    h = ilp::fp_mix(h ^ ilp::fp_double(imp.interface_area));
    h = ilp::fp_mix(h ^ ilp::fp_double(imp.interface_power));
  }
  for (const iplib::IpDescriptor& ip : lib_.all()) {
    h = ilp::fp_mix(h ^ ilp::fp_double(ip.area));
    h = ilp::fp_mix(h ^ ilp::fp_double(ip.power));
  }
  return h;
}

std::int64_t Selector::max_feasible_gain(const SelectOptions& opt) const {
  // Base model with a token requirement of 1 so every path row materializes.
  ilp::Model m = build_model(std::vector<std::int64_t>(paths_.size(), 1), opt);

  // Upper bound for G_min: everything selected at once (ignoring conflicts).
  double ub = 1.0;
  for (const isel::Imp& imp : db_.imps()) {
    ub += static_cast<double>(std::max<std::int64_t>(imp.gain, imp.gain_per_exec)) *
          1024.0;  // generous headroom for loop frequencies
  }

  m.set_sense(ilp::Sense::kMaximize);
  for (std::size_t v = 0; v < m.var_count(); ++v) {
    m.var(static_cast<ilp::VarIndex>(v)).objective = 0.0;  // area is irrelevant here
  }
  const ilp::VarIndex gmin = m.add_continuous("G_min", 0.0, ub, 1.0);

  // Rebuild the gain rows as  sum(gains) - G_min >= 0.
  ilp::Model m2;
  m2.set_sense(ilp::Sense::kMaximize);
  for (std::size_t v = 0; v < m.var_count(); ++v) {
    const ilp::Variable& var = m.var(static_cast<ilp::VarIndex>(v));
    if (var.kind == ilp::VarKind::kBinary) {
      const ilp::VarIndex nv = m2.add_binary(var.name, var.objective);
      m2.var(nv).upper = var.upper;  // preserve filter-forced zeros
    } else {
      m2.add_continuous(var.name, var.lower, var.upper, var.objective);
    }
  }
  for (const ilp::Row& row : m.rows()) {
    if (row.name.rfind("gain_path", 0) == 0) {
      std::vector<ilp::Term> terms = row.terms;
      terms.push_back({gmin, -1.0});
      m2.add_row(row.name, std::move(terms), ilp::RowSense::kGreaterEqual, 0.0);
    } else {
      m2.add_row(row.name, row.terms, row.sense, row.rhs);
    }
  }

  // Only the objective value is consumed here; skip the canonical tie-break
  // (the all-zero binary objective makes the equal-objective plateau huge).
  ilp::IlpOptions bound_opt = opt.ilp;
  bound_opt.canonical_ties = false;
  const ilp::IlpResult r = ilp::solve_ilp(m2, bound_opt);
  if (!r.has_solution) return 0;
  return static_cast<std::int64_t>(r.objective);
}

}  // namespace partita::select

#include "select/selection.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "support/json.hpp"
#include "support/strings.hpp"

namespace partita::select {

const char* to_string(DegradationRung r) {
  switch (r) {
    case DegradationRung::kOptimal:
      return "optimal";
    case DegradationRung::kGapBounded:
      return "gap-bounded";
    case DegradationRung::kGreedyFallback:
      return "greedy-fallback";
    case DegradationRung::kInfeasible:
      return "infeasible";
  }
  return "?";
}

std::int64_t path_gain(const std::vector<isel::ImpIndex>& chosen,
                       const isel::ImpDatabase& db, const cdfg::Cdfg& entry_cdfg,
                       const cdfg::ExecPath& path) {
  std::int64_t g = 0;
  for (isel::ImpIndex idx : chosen) {
    const isel::Imp& imp = db.imps()[idx];
    const isel::SCall* sc = db.scall_of(imp.scall);
    if (!sc || sc->node == cdfg::kInvalidNode) continue;
    if (!path.contains(sc->node)) continue;
    g += imp.gain_per_exec * entry_cdfg.node(sc->node).loop_frequency;
  }
  return g;
}

Selection decode_selection(const std::vector<isel::ImpIndex>& chosen,
                           const isel::ImpDatabase& db, const iplib::IpLibrary& lib,
                           const cdfg::Cdfg& entry_cdfg,
                           const std::vector<cdfg::ExecPath>& paths) {
  Selection sel;
  sel.feasible = true;
  sel.chosen = chosen;
  std::sort(sel.chosen.begin(), sel.chosen.end(),
            [&](isel::ImpIndex a, isel::ImpIndex b) {
              return db.imps()[a].scall < db.imps()[b].scall;
            });

  std::vector<std::pair<std::uint32_t, int>> s_instr;  // (ip, iface) pairs
  for (isel::ImpIndex idx : sel.chosen) {
    const isel::Imp& imp = db.imps()[idx];
    if (std::find(sel.ips_used.begin(), sel.ips_used.end(), imp.ip) ==
        sel.ips_used.end()) {
      sel.ips_used.push_back(imp.ip);
      sel.ip_area += lib.ip(imp.ip).area;
      sel.ip_power += lib.ip(imp.ip).power;
    }
    sel.interface_area += imp.interface_area;
    sel.interface_power += imp.interface_power;
    const std::pair<std::uint32_t, int> key{imp.ip.value,
                                            static_cast<int>(imp.iface_type)};
    if (std::find(s_instr.begin(), s_instr.end(), key) == s_instr.end()) {
      s_instr.push_back(key);
    }
  }
  sel.s_instructions = static_cast<int>(s_instr.size());
  sel.selected_scalls = static_cast<int>(sel.chosen.size());

  sel.min_path_gain = std::numeric_limits<std::int64_t>::max();
  for (const cdfg::ExecPath& p : paths) {
    sel.min_path_gain = std::min(sel.min_path_gain, path_gain(sel.chosen, db, entry_cdfg, p));
  }
  if (paths.empty()) sel.min_path_gain = 0;
  return sel;
}

std::string Selection::describe(const isel::ImpDatabase& db,
                                const iplib::IpLibrary& lib) const {
  if (!feasible) return "(infeasible)";
  std::ostringstream os;
  bool first = true;
  for (isel::ImpIndex idx : chosen) {
    const isel::Imp& imp = db.imps()[idx];
    if (!first) os << ", ";
    first = false;
    os << "SC" << imp.scall.value() << ":" << imp.cell(lib);
  }
  if (truncated) {
    os << " [gap<=" << optimality_gap * 100.0 << "%"
       << (greedy_fallback ? ", greedy fallback" : "") << "]";
  }
  return os.str();
}

std::string solution_signature(const Selection& sel) {
  std::ostringstream os;
  os << "feasible=" << (sel.feasible ? 1 : 0) << "|chosen=";
  for (std::size_t i = 0; i < sel.chosen.size(); ++i) {
    if (i) os << ',';
    os << sel.chosen[i];
  }
  os << "|ips=";
  for (std::size_t i = 0; i < sel.ips_used.size(); ++i) {
    if (i) os << ',';
    os << sel.ips_used[i].value;
  }
  os << "|ip_area=" << support::json::fmt_double(sel.ip_area)
     << "|if_area=" << support::json::fmt_double(sel.interface_area)
     << "|ip_power=" << support::json::fmt_double(sel.ip_power)
     << "|if_power=" << support::json::fmt_double(sel.interface_power)
     << "|S=" << sel.s_instructions << "|O=" << sel.selected_scalls
     << "|gain=" << sel.min_path_gain << "|rung=" << to_string(sel.rung);
  return os.str();
}

}  // namespace partita::select
